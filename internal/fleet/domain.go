// Package fleet scales the platform from one PSU to a datacenter: a
// fault-domain tree (room → rack → enclosure → PSU) in which every node
// owns a power state and a cut can target any node, propagating to every
// drive beneath it, plus a fleet of m+k redundancy groups (Config.Parity
// parity bays each; a group tolerates up to Parity concurrent casualties)
// with standby spares and per-member rebuild state machines running over
// the tree.
//
// The tree replaces the single shared power.PSU assumption with
// placement-derived correlation, in the spirit of Meza et al.'s datacenter
// failure studies: failures cluster by enclosure, rack and room because
// that is where the shared hardware lives. The paper's classic single-PSU
// platform is the degenerate one-node tree (see Degenerate), so existing
// figures are unchanged by construction.
//
// Rebuild reads and writes are ordinary block-layer requests against the
// member drives, so rebuild traffic competes with foreground IO for member
// bandwidth and degraded-mode latency and rebuild-window vulnerability
// emerge from the queueing models rather than closed-form rates.
package fleet

import (
	"fmt"
)

// Level is a fault-domain tier, ordered from the widest blast radius
// (Room) to the narrowest (PSU).
type Level int

// Fault-domain levels. A cut at a level powers off every drive beneath the
// targeted node: a PSU cut hits one enclosure's supply segment, a Room cut
// is the paper's whole-rig switch writ large.
const (
	Room Level = iota
	Rack
	Enclosure
	PSU
	numLevels
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case Room:
		return "room"
	case Rack:
		return "rack"
	case Enclosure:
		return "enclosure"
	case PSU:
		return "psu"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Levels enumerates the tiers from Room down to PSU.
func Levels() []Level { return []Level{Room, Rack, Enclosure, PSU} }

// DomainConfig sizes the fault-domain tree: one room of Racks racks, each
// holding EnclosuresPerRack enclosures with PSUsPerEnclosure power
// segments. Drives hang off the PSU leaves.
type DomainConfig struct {
	Racks             int `json:"racks"`
	EnclosuresPerRack int `json:"enclosures_per_rack"`
	PSUsPerEnclosure  int `json:"psus_per_enclosure"`
}

// DefaultDomains is a small two-deep room: 2 racks × 2 enclosures × 2 PSUs.
func DefaultDomains() DomainConfig {
	return DomainConfig{Racks: 2, EnclosuresPerRack: 2, PSUsPerEnclosure: 2}
}

func (c DomainConfig) withDefaults() DomainConfig {
	if c.Racks == 0 && c.EnclosuresPerRack == 0 && c.PSUsPerEnclosure == 0 {
		return DefaultDomains()
	}
	if c.Racks == 0 {
		c.Racks = 1
	}
	if c.EnclosuresPerRack == 0 {
		c.EnclosuresPerRack = 1
	}
	if c.PSUsPerEnclosure == 0 {
		c.PSUsPerEnclosure = 1
	}
	return c
}

// Validate checks the configuration.
func (c DomainConfig) Validate() error {
	if c.Racks < 1 || c.EnclosuresPerRack < 1 || c.PSUsPerEnclosure < 1 {
		return fmt.Errorf("fleet: domain fan-outs must be >= 1, got %+v", c)
	}
	return nil
}

// Node is one fault domain. Its power state is derived: a node is powered
// iff neither it nor any ancestor is cut.
type Node struct {
	tree     *Tree
	level    Level
	index    int // index within the level, in construction order
	name     string
	parent   *Node
	children []*Node

	cut     int // active cuts targeting this node itself (cuts nest)
	powered bool
	onPower []func(on bool)
}

// Level returns the node's tier.
func (n *Node) Level() Level { return n.level }

// Index returns the node's position within its tier.
func (n *Node) Index() int { return n.index }

// Name returns the node's path-style label ("rack1/enc0/psu1").
func (n *Node) Name() string { return n.name }

// Parent returns the enclosing domain (nil for the root).
func (n *Node) Parent() *Node { return n.parent }

// Children returns the nested domains.
func (n *Node) Children() []*Node { return n.children }

// Powered reports whether the node currently has power (no cut on itself
// or any ancestor).
func (n *Node) Powered() bool { return n.powered }

// OnPower registers fn to run whenever the node's derived power state
// changes; fn receives the new state. Drives attach here to their PSU leaf.
func (n *Node) OnPower(fn func(on bool)) { n.onPower = append(n.onPower, fn) }

// Cut implements Target: it cuts power to this node's whole subtree.
func (n *Node) Cut() { n.tree.CutNode(n) }

// Restore implements Target: it ends this node's cut. Descendant drives
// regain power unless a separate cut still covers them.
func (n *Node) Restore() { n.tree.RestoreNode(n) }

// refresh recomputes the derived power state after a cut or restore and
// fires transition callbacks top-down, so an enclosure's listeners see the
// outage before the drives beneath it do.
func (n *Node) refresh() {
	p := n.cut == 0 && (n.parent == nil || n.parent.powered)
	if p == n.powered {
		return // subtree unchanged: a child's own cut still dominates it
	}
	n.powered = p
	for _, fn := range n.onPower {
		fn(p)
	}
	for _, c := range n.children {
		c.refresh()
	}
}

// Tree is the fault-domain hierarchy. It also keeps the per-level cut and
// restore counts the fleet report surfaces.
type Tree struct {
	root   *Node
	levels [numLevels][]*Node

	cuts     [numLevels]int
	restores [numLevels]int
}

// NewTree builds the room → rack → enclosure → PSU hierarchy described by
// cfg, fully powered.
func NewTree(cfg DomainConfig) (*Tree, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Tree{}
	t.root = t.newNode(Room, nil, "room")
	for r := 0; r < cfg.Racks; r++ {
		rack := t.newNode(Rack, t.root, fmt.Sprintf("rack%d", r))
		for e := 0; e < cfg.EnclosuresPerRack; e++ {
			enc := t.newNode(Enclosure, rack, fmt.Sprintf("%s/enc%d", rack.name, e))
			for p := 0; p < cfg.PSUsPerEnclosure; p++ {
				t.newNode(PSU, enc, fmt.Sprintf("%s/psu%d", enc.name, p))
			}
		}
	}
	return t, nil
}

// Degenerate returns the one-node tree: a single PSU domain, the paper's
// classic platform. Cutting the root is exactly the old global switch.
func Degenerate(name string) *Tree {
	t := &Tree{}
	t.root = t.newNode(PSU, nil, name)
	return t
}

func (t *Tree) newNode(l Level, parent *Node, name string) *Node {
	n := &Node{tree: t, level: l, index: len(t.levels[l]), name: name, parent: parent, powered: true}
	if parent != nil {
		parent.children = append(parent.children, n)
	}
	t.levels[l] = append(t.levels[l], n)
	return n
}

// Root returns the top of the tree (the room, or the single degenerate
// node).
func (t *Tree) Root() *Node { return t.root }

// Nodes returns the nodes of one level in construction order.
func (t *Tree) Nodes(l Level) []*Node {
	if l < 0 || l >= numLevels {
		return nil
	}
	return t.levels[l]
}

// Leaves returns the PSU nodes drives attach to.
func (t *Tree) Leaves() []*Node { return t.levels[PSU] }

// CutNode powers off n's subtree and counts the cut at n's level. Cuts on
// the same node nest: the subtree stays dark until every cut is restored.
func (t *Tree) CutNode(n *Node) {
	t.cuts[n.level]++
	n.cut++
	if n.cut == 1 {
		n.refresh()
	}
}

// RestoreNode ends one cut targeted at n and counts the restore.
func (t *Tree) RestoreNode(n *Node) {
	t.restores[n.level]++
	if n.cut == 0 {
		return
	}
	n.cut--
	if n.cut == 0 {
		n.refresh()
	}
}

// CutsAt returns how many cuts targeted level l.
func (t *Tree) CutsAt(l Level) int {
	if l < 0 || l >= numLevels {
		return 0
	}
	return t.cuts[l]
}

// RestoresAt returns how many restores targeted level l.
func (t *Tree) RestoresAt(l Level) int {
	if l < 0 || l >= numLevels {
		return 0
	}
	return t.restores[l]
}
