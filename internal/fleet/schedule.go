package fleet

import (
	"powerfail/internal/obs"
	"powerfail/internal/sim"
)

// Target is anything a fault schedule can cut and restore: a domain-tree
// Node, or the classic platform's Arduino-driven PSU behind an adapter.
type Target interface {
	Name() string
	Cut()
	Restore()
}

// Schedule is the reusable per-target cut/restore bookkeeping shared by
// the single-PSU FaultScheduler and the fleet's multi-domain fault plan.
// It keeps one command history per target plus the totals the classic
// Report.Cuts/Restores fields expose, so multi-domain scheduling never
// duplicates (or diverges from) the accounting the single-PSU path uses.
type Schedule struct {
	targets  []Target
	cuts     []int
	restores []int

	totalCuts     int
	totalRestores int

	obsSc   obs.Scope
	obsCuts *obs.Counter
	obsRest *obs.Counter
	now     func() sim.Time
}

// NewSchedule starts an empty schedule.
func NewSchedule() *Schedule { return &Schedule{} }

// Add registers a target and returns its id for Cut/Restore calls.
func (s *Schedule) Add(t Target) int {
	s.targets = append(s.targets, t)
	s.cuts = append(s.cuts, 0)
	s.restores = append(s.restores, 0)
	return len(s.targets) - 1
}

// Targets returns the number of registered targets.
func (s *Schedule) Targets() int { return len(s.targets) }

// Target returns the registered target with id i.
func (s *Schedule) Target(i int) Target { return s.targets[i] }

// Observe records every cut/restore command into sc (counters plus one
// KindPower trace event per edge, named after the target). The clock
// comes from now because the schedule itself is kernel-agnostic.
func (s *Schedule) Observe(sc obs.Scope, now func() sim.Time) {
	if !sc.Enabled() || now == nil {
		return
	}
	s.obsSc = sc
	s.obsCuts = sc.Counter("cuts")
	s.obsRest = sc.Counter("restores")
	s.now = now
}

// Cut commands target i off, counting the command per target and in total.
func (s *Schedule) Cut(i int) {
	s.cuts[i]++
	s.totalCuts++
	s.obsCuts.Inc()
	if s.now != nil {
		s.obsSc.Instant(s.now(), obs.KindPower, s.targets[i].Name(), 1)
	}
	s.targets[i].Cut()
}

// Restore commands target i back on.
func (s *Schedule) Restore(i int) {
	s.restores[i]++
	s.totalRestores++
	s.obsRest.Inc()
	if s.now != nil {
		s.obsSc.Instant(s.now(), obs.KindPower, s.targets[i].Name(), 0)
	}
	s.targets[i].Restore()
}

// Cuts returns the total cut commands across every target — the semantics
// Report.Cuts has always had on the one-PSU platform.
func (s *Schedule) Cuts() int { return s.totalCuts }

// Restores returns the total restore commands across every target.
func (s *Schedule) Restores() int { return s.totalRestores }

// CutsOf returns the cut commands sent to target i.
func (s *Schedule) CutsOf(i int) int { return s.cuts[i] }

// RestoresOf returns the restore commands sent to target i.
func (s *Schedule) RestoresOf(i int) int { return s.restores[i] }
