package fleet

import (
	"encoding/json"
	"testing"

	"powerfail/internal/sim"
)

func TestTreePowerPropagation(t *testing.T) {
	tr, err := NewTree(DomainConfig{Racks: 2, EnclosuresPerRack: 2, PSUsPerEnclosure: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Leaves()); got != 8 {
		t.Fatalf("leaves = %d, want 8", got)
	}
	enc := tr.Nodes(Enclosure)[1] // rack0/enc1: leaves 2 and 3
	var transitions []string
	for _, leaf := range tr.Leaves() {
		l := leaf
		l.OnPower(func(on bool) {
			transitions = append(transitions, l.Name())
			_ = on
		})
	}
	tr.CutNode(enc)
	if len(transitions) != 2 {
		t.Fatalf("enclosure cut reached %d leaves (%v), want exactly its 2", len(transitions), transitions)
	}
	for i, leaf := range tr.Leaves() {
		want := i != 2 && i != 3
		if leaf.Powered() != want {
			t.Errorf("leaf %d (%s) powered = %v, want %v", i, leaf.Name(), leaf.Powered(), want)
		}
	}
	if tr.CutsAt(Enclosure) != 1 || tr.CutsAt(PSU) != 0 {
		t.Errorf("cut counted at wrong level: enc=%d psu=%d", tr.CutsAt(Enclosure), tr.CutsAt(PSU))
	}
	tr.RestoreNode(enc)
	for i, leaf := range tr.Leaves() {
		if !leaf.Powered() {
			t.Errorf("leaf %d dark after restore", i)
		}
	}
}

func TestTreeNestedCuts(t *testing.T) {
	tr, err := NewTree(DomainConfig{Racks: 1, EnclosuresPerRack: 1, PSUsPerEnclosure: 1})
	if err != nil {
		t.Fatal(err)
	}
	leaf := tr.Leaves()[0]
	rack := tr.Nodes(Rack)[0]
	// Overlapping cuts at two levels: the leaf stays dark until both end.
	tr.CutNode(rack)
	tr.CutNode(leaf)
	tr.RestoreNode(rack)
	if leaf.Powered() {
		t.Fatal("leaf powered while its own cut is still active")
	}
	tr.RestoreNode(leaf)
	if !leaf.Powered() {
		t.Fatal("leaf dark after all cuts restored")
	}
	// Same-node cuts nest via refcount.
	tr.CutNode(leaf)
	tr.CutNode(leaf)
	tr.RestoreNode(leaf)
	if leaf.Powered() {
		t.Fatal("leaf powered with one of two nested cuts still active")
	}
	tr.RestoreNode(leaf)
	if !leaf.Powered() {
		t.Fatal("leaf dark after nested cuts fully restored")
	}
}

func TestScheduleAccounting(t *testing.T) {
	tr := Degenerate("psu")
	s := NewSchedule()
	id := s.Add(tr.Root())
	for i := 0; i < 3; i++ {
		s.Cut(id)
		s.Restore(id)
	}
	if s.Cuts() != 3 || s.Restores() != 3 || s.CutsOf(id) != 3 || s.RestoresOf(id) != 3 {
		t.Fatalf("schedule counts: cuts=%d restores=%d", s.Cuts(), s.Restores())
	}
}

// scriptedConfig is a small fleet with one scripted cut, sized so a single
// PSU cut declares a failure and triggers a spare rebuild.
func scriptedConfig(script []CutEvent, spares int) Config {
	return Config{
		Domains:   DomainConfig{Racks: 2, EnclosuresPerRack: 2, PSUsPerEnclosure: 2},
		Arrays:    4,
		GroupSize: 4,
		Spares:    spares,
		Member:    MemberProfile{Pages: 1024},
		Rebuild:   RebuildPolicy{Delay: sim.Second, ControllerTick: 500 * sim.Millisecond},
		Faults:    FaultPlan{Script: script},
		Duration:  20 * sim.Second,
	}
}

func TestSpareRebuildAfterPSUCut(t *testing.T) {
	cfg := scriptedConfig([]CutEvent{{At: sim.Time(2 * sim.Second), Level: PSU, Index: 0, Outage: 5 * sim.Second}}, 2)
	st, err := Run(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	if st.DeclaredFailures == 0 {
		t.Fatal("5s outage with 1s grace declared no failures")
	}
	if st.SpareTakes == 0 {
		t.Error("no spare was taken despite 2 standby spares")
	}
	if st.RebuildCompleted == 0 {
		t.Error("no rebuild completed inside the horizon")
	}
	if st.RebuildReadBytes == 0 || st.RebuildWriteBytes == 0 {
		t.Errorf("rebuild traffic not measurable: reads=%d writes=%d", st.RebuildReadBytes, st.RebuildWriteBytes)
	}
	if st.DownTime != 0 {
		t.Errorf("single PSU cut caused %v down time; placement should keep groups degraded only", st.DownTime)
	}
	if st.LossEvents != 0 || st.BytesLost != 0 {
		t.Errorf("single-bay failures lost data: events=%d bytes=%d", st.LossEvents, st.BytesLost)
	}
	if st.CutsByLevel["psu"] != 1 {
		t.Errorf("cuts_by_level[psu] = %d, want 1", st.CutsByLevel["psu"])
	}
}

func TestTransientOutageRecovers(t *testing.T) {
	cfg := scriptedConfig([]CutEvent{{At: sim.Time(2 * sim.Second), Level: PSU, Index: 0, Outage: 200 * sim.Millisecond}}, 2)
	cfg.Rebuild.Delay = 5 * sim.Second // outage well inside the grace window
	st, err := Run(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	if st.DeclaredFailures != 0 {
		t.Errorf("transient outage declared %d failures", st.DeclaredFailures)
	}
	if st.TransientRecoveries == 0 {
		t.Error("no transient recoveries recorded")
	}
	if st.SpareTakes != 0 {
		t.Errorf("transient outage consumed %d spares", st.SpareTakes)
	}
}

func TestDoubleFailureLosesData(t *testing.T) {
	// A rack cut downs every bay of the groups in that rack; with a grace
	// window shorter than the outage, redundancy is exceeded and the group
	// must charge a loss and restore from backup.
	cfg := scriptedConfig([]CutEvent{{At: sim.Time(2 * sim.Second), Level: Rack, Index: 0, Outage: 10 * sim.Second}}, 0)
	cfg.Duration = 40 * sim.Second
	st, err := Run(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if st.LossEvents == 0 || st.BytesLost == 0 {
		t.Fatalf("rack-wide outage beyond grace lost nothing: events=%d bytes=%d", st.LossEvents, st.BytesLost)
	}
	if st.DownTime == 0 {
		t.Error("rack cut caused no down time")
	}
	if st.DurabilityNines >= NinesCap {
		t.Errorf("durability nines = %v despite data loss", st.DurabilityNines)
	}
}

// TestParityTwoSurvivesDoubleFailure pins the m+k loss rule: an enclosure
// cut downs exactly two bays of every group in its rack (placement puts
// one bay per PSU leaf), which exceeds a Parity=1 group's redundancy but
// stays inside a Parity=2 group's.
func TestParityTwoSurvivesDoubleFailure(t *testing.T) {
	script := []CutEvent{{At: sim.Time(2 * sim.Second), Level: Enclosure, Index: 0, Outage: 10 * sim.Second}}
	base := scriptedConfig(script, 0)
	base.Duration = 40 * sim.Second

	st5, err := Run(base, 7)
	if err != nil {
		t.Fatal(err)
	}
	if st5.LossEvents == 0 || st5.DownTime == 0 {
		t.Fatalf("parity=1 fleet survived a two-bay outage: losses=%d down=%v", st5.LossEvents, st5.DownTime)
	}

	raid6 := base
	raid6.Parity = 2
	st6, err := Run(raid6, 7)
	if err != nil {
		t.Fatal(err)
	}
	if st6.Parity != 2 {
		t.Fatalf("stats parity %d, want 2", st6.Parity)
	}
	if st6.LossEvents != 0 || st6.BytesLost != 0 {
		t.Fatalf("parity=2 fleet lost data under two-bay outage: events=%d bytes=%d", st6.LossEvents, st6.BytesLost)
	}
	if st6.DownTime != 0 {
		t.Fatalf("parity=2 fleet went down under two-bay outage: %v", st6.DownTime)
	}
	if st6.DegradedTime == 0 {
		t.Fatal("parity=2 fleet recorded no degraded time despite the outage")
	}
	if st6.RebuildCompleted == 0 {
		t.Fatal("parity=2 fleet completed no resilver after power returned")
	}
}

func TestNinesDecreaseWithCutLevel(t *testing.T) {
	run := func(level Level) *Stats {
		cfg := scriptedConfig([]CutEvent{{At: sim.Time(2 * sim.Second), Level: level, Index: 0, Outage: 5 * sim.Second}}, 2)
		st, err := Run(cfg, 42)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	psu, rack, room := run(PSU), run(Rack), run(Room)
	if !(psu.AvailabilityNines > rack.AvailabilityNines) {
		t.Errorf("psu nines %v not > rack nines %v", psu.AvailabilityNines, rack.AvailabilityNines)
	}
	if !(rack.AvailabilityNines > room.AvailabilityNines) {
		t.Errorf("rack nines %v not > room nines %v", rack.AvailabilityNines, room.AvailabilityNines)
	}
}

func TestSimDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 10 * sim.Second
	a, err := Run(cfg, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, 99)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("same seed diverged:\n%s\n%s", ja, jb)
	}
	c, err := Run(cfg, 100)
	if err != nil {
		t.Fatal(err)
	}
	jc, _ := json.Marshal(c)
	if string(ja) == string(jc) {
		t.Fatal("different seeds produced identical stats")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Arrays: -1},
		{GroupSize: 1},
		{GroupSize: 4, Parity: 4},
		{Parity: -1},
		{Spares: -2},
		{Workload: WorkloadConfig{ReadFraction: 1.5}},
		{Faults: FaultPlan{Script: []CutEvent{{Level: Level(9), Outage: sim.Second}}}},
	}
	for i, c := range bad {
		if err := c.WithDefaults().Validate(); err == nil {
			t.Errorf("config %d validated despite bad field", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}
