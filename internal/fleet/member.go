package fleet

import (
	"errors"
	"fmt"

	"powerfail/internal/addr"
	"powerfail/internal/blockdev"
	"powerfail/internal/content"
	"powerfail/internal/sim"
)

// ErrMemberDown is surfaced by a member drive that has no power or is
// still spinning up after a restore.
var ErrMemberDown = errors.New("fleet: member drive down")

// MemberProfile is the lightweight service model of a fleet drive: a
// single-server queue with a fixed per-IO overhead and a page-transfer
// time. The detailed FTL/DRAM models of the single-device platform are too
// heavy at hundreds of arrays; what the fleet layer needs from a member is
// that rebuild and foreground IO genuinely contend for its bandwidth.
type MemberProfile struct {
	// Pages is the drive capacity in 4 KiB pages (default 4096 = 16 MiB,
	// small so rebuild windows stay observable in short experiments).
	Pages int64 `json:"pages"`
	// IOLatency is the fixed per-request overhead (default 150 µs).
	IOLatency sim.Duration `json:"io_latency_ns"`
	// PageTime is the transfer time per 4 KiB page (default 8 µs,
	// ~500 MB/s sequential).
	PageTime sim.Duration `json:"page_time_ns"`
	// ReadyDelay is the spin-up time after power returns (default 1.5 s).
	ReadyDelay sim.Duration `json:"ready_delay_ns"`
}

func (p MemberProfile) withDefaults() MemberProfile {
	if p.Pages == 0 {
		p.Pages = 4096
	}
	if p.IOLatency == 0 {
		p.IOLatency = 150 * sim.Microsecond
	}
	if p.PageTime == 0 {
		p.PageTime = 8 * sim.Microsecond
	}
	if p.ReadyDelay == 0 {
		p.ReadyDelay = 1500 * sim.Millisecond
	}
	return p
}

// Validate checks the profile.
func (p MemberProfile) Validate() error {
	if p.Pages < 0 || p.IOLatency < 0 || p.PageTime < 0 || p.ReadyDelay < 0 {
		return fmt.Errorf("fleet: member profile values must be non-negative: %+v", p)
	}
	return nil
}

// MemberIOStats counts one member drive's served traffic in pages, split
// by origin so rebuild bytes are visible next to foreground bytes.
type MemberIOStats struct {
	ForegroundReadPages  int64 `json:"fg_read_pages"`
	ForegroundWritePages int64 `json:"fg_write_pages"`
	RebuildReadPages     int64 `json:"rebuild_read_pages"`
	RebuildWritePages    int64 `json:"rebuild_write_pages"`
	Errors               int64 `json:"errors"`
}

// Member is one drive bay of the fleet: a lightweight drive implementing
// blockdev.Drive, powered by a PSU leaf of the fault-domain tree and
// fronted by its own ordinary blockdev.Queue. Both foreground requests and
// rebuild traffic go through that queue, which is what makes rebuilds
// steal real member bandwidth.
type Member struct {
	k    *sim.Kernel
	prof MemberProfile
	id   int
	psu  *Node

	powered  bool
	ready    bool
	nextFree sim.Time
	gen      uint64 // bumped on power loss so stale completions error out

	queue *blockdev.Queue
	stats MemberIOStats

	readyFns []func()
	downFns  []func()

	svcFree []*svcCall
	ioFree  []*ioRec
}

// svcCall is a pooled service-completion record: one per IO in flight at
// the member's single-server queue, recycled when its event fires. fn is
// created once and reused, so steady-state Submit allocates nothing.
type svcCall struct {
	m     *Member
	op    blockdev.Op
	pages int
	gen   uint64
	done  func(err error, result content.Data)
	fn    func()
}

func (m *Member) getSvc(op blockdev.Op, pages int, gen uint64, done func(err error, result content.Data)) *svcCall {
	var c *svcCall
	if n := len(m.svcFree); n > 0 {
		c = m.svcFree[n-1]
		m.svcFree = m.svcFree[:n-1]
	} else {
		c = &svcCall{m: m}
		c.fn = func() {
			op, pages, gen, done := c.op, c.pages, c.gen, c.done
			c.done = nil
			c.m.svcFree = append(c.m.svcFree, c)
			c.m.svcDone(op, pages, gen, done)
		}
	}
	c.op, c.pages, c.gen, c.done = op, pages, gen, done
	return c
}

// svcDone delivers one service completion (the body of the old per-IO
// closure in Submit).
func (m *Member) svcDone(op blockdev.Op, pages int, gen uint64, done func(err error, result content.Data)) {
	if m.gen != gen || !m.ready {
		done(ErrMemberDown, content.Data{})
		return
	}
	if op == blockdev.OpRead {
		done(nil, content.Zeroes(pages))
		return
	}
	done(nil, content.Data{})
}

// ioRec is a pooled submitIO bookkeeping record with a cached Done
// closure, so routing a fleet request through the block layer allocates
// nothing in steady state.
type ioRec struct {
	m       *Member
	op      blockdev.Op
	pages   int
	rebuild bool
	done    func(error)
	fn      func(*blockdev.Request)
}

func (m *Member) getIORec(op blockdev.Op, pages int, rebuild bool, done func(error)) *ioRec {
	var rec *ioRec
	if n := len(m.ioFree); n > 0 {
		rec = m.ioFree[n-1]
		m.ioFree = m.ioFree[:n-1]
	} else {
		rec = &ioRec{m: m}
		rec.fn = func(req *blockdev.Request) {
			op, pages, rebuild, done := rec.op, rec.pages, rec.rebuild, rec.done
			rec.done = nil
			rec.m.ioFree = append(rec.m.ioFree, rec)
			rec.m.ioDone(req, op, pages, rebuild, done)
		}
	}
	rec.op, rec.pages, rec.rebuild, rec.done = op, pages, rebuild, done
	return rec
}

func (m *Member) ioDone(req *blockdev.Request, op blockdev.Op, pages int, rebuild bool, done func(error)) {
	if req.Err != nil {
		m.stats.Errors++
	} else {
		switch {
		case op == blockdev.OpRead && rebuild:
			m.stats.RebuildReadPages += int64(pages)
		case op == blockdev.OpRead:
			m.stats.ForegroundReadPages += int64(pages)
		case rebuild:
			m.stats.RebuildWritePages += int64(pages)
		default:
			m.stats.ForegroundWritePages += int64(pages)
		}
	}
	done(req.Err)
}

// newMember builds a drive on the given PSU leaf and wires its power
// transitions.
func newMember(k *sim.Kernel, prof MemberProfile, id int, psu *Node, host blockdev.Config) (*Member, error) {
	m := &Member{k: k, prof: prof, id: id, psu: psu, powered: psu.Powered(), ready: psu.Powered()}
	q, err := blockdev.New(k, m, nil, host)
	if err != nil {
		return nil, err
	}
	m.queue = q
	psu.OnPower(m.onPower)
	return m, nil
}

// Name implements blockdev.Drive.
func (m *Member) Name() string { return fmt.Sprintf("m%d@%s", m.id, m.psu.Name()) }

// UserPages implements blockdev.Drive.
func (m *Member) UserPages() int64 { return m.prof.Pages }

// Ready implements blockdev.Drive.
func (m *Member) Ready() bool { return m.ready }

// NotifyReady implements blockdev.Drive.
func (m *Member) NotifyReady(fn func()) { m.readyFns = append(m.readyFns, fn) }

// NotifyDown implements blockdev.Drive.
func (m *Member) NotifyDown(fn func()) { m.downFns = append(m.downFns, fn) }

// PSU returns the fault-domain leaf powering the drive.
func (m *Member) PSU() *Node { return m.psu }

// Queue returns the member's host block layer; all fleet IO to this drive
// is submitted here.
func (m *Member) Queue() *blockdev.Queue { return m.queue }

// Stats returns a snapshot of the served-IO counters.
func (m *Member) Stats() MemberIOStats { return m.stats }

func (m *Member) onPower(on bool) {
	if on {
		m.powered = true
		gen := m.gen
		m.k.After(m.prof.ReadyDelay, func() {
			if !m.powered || m.gen != gen {
				return // another outage intervened during spin-up
			}
			m.ready = true
			m.nextFree = m.k.Now()
			for _, fn := range m.readyFns {
				fn()
			}
		})
		return
	}
	m.powered = false
	wasReady := m.ready
	m.ready = false
	m.gen++ // in-flight service completions observe the stale generation
	if wasReady {
		for _, fn := range m.downFns {
			fn()
		}
	}
}

// Submit implements blockdev.Device: a single-server queue in which each
// request occupies the drive for IOLatency + pages·PageTime after the
// previous request finishes. Requests caught by a power cut complete with
// ErrMemberDown at their scheduled instant, like a died-mid-flight drive.
func (m *Member) Submit(op blockdev.Op, lpn addr.LPN, pages int, data content.Data, done func(err error, result content.Data)) {
	if !m.ready {
		m.k.After(100*sim.Microsecond, func() { done(ErrMemberDown, content.Data{}) })
		return
	}
	if op != blockdev.OpFlush && (lpn < 0 || int64(lpn)+int64(pages) > m.prof.Pages) {
		m.k.After(100*sim.Microsecond, func() { done(fmt.Errorf("fleet: member address out of range"), content.Data{}) })
		return
	}
	start := m.k.Now()
	if m.nextFree > start {
		start = m.nextFree
	}
	finish := start.Add(m.prof.IOLatency + sim.Duration(pages)*m.prof.PageTime)
	m.nextFree = finish
	m.k.At(finish, m.getSvc(op, pages, m.gen, done).fn)
}

// submitIO routes one fleet request (foreground or rebuild) through the
// member's block layer, keeping the origin-split counters; done fires with
// the request's final error.
func (m *Member) submitIO(op blockdev.Op, lpn addr.LPN, pages int, rebuild bool, done func(error)) {
	req := m.queue.NewRequest()
	req.Op = op
	req.LPN = lpn
	req.Pages = pages
	if op == blockdev.OpWrite {
		req.Data = content.Zeroes(pages)
	}
	req.Done = m.getIORec(op, pages, rebuild, done).fn
	m.queue.Submit(req)
}
