package fleet

import (
	"fmt"

	"powerfail/internal/blockdev"
	"powerfail/internal/obs"
	"powerfail/internal/sim"
)

// SlotState is the rebuild state machine of one redundancy-group member
// bay, following the sejun000/availability exemplar's SSD states: a slot is
// healthy, degraded (member dark, grace window running), rebuilding (onto a
// spare, a resilvered original, or from backup), or failed (declared dead
// with no rebuild target available).
type SlotState int

// Slot states.
const (
	SlotHealthy SlotState = iota
	SlotDegraded
	SlotRebuilding
	SlotFailed
)

// String implements fmt.Stringer.
func (s SlotState) String() string {
	switch s {
	case SlotHealthy:
		return "healthy"
	case SlotDegraded:
		return "degraded"
	case SlotRebuilding:
		return "rebuilding"
	case SlotFailed:
		return "failed"
	default:
		return fmt.Sprintf("SlotState(%d)", int(s))
	}
}

// rebuildMode distinguishes intra-group rebuilds (reconstruct from the
// surviving members) from inter-group restores (re-seed from an off-fleet
// backup after redundancy was exceeded).
type rebuildMode int

const (
	rebuildIntra rebuildMode = iota
	rebuildInter
)

// Slot is one member bay of a group. The bay keeps its identity while the
// physical drive behind it changes (spare swap-in, original resilvered).
type Slot struct {
	g      *Group
	idx    int
	member *Member

	state SlotState
	mode  rebuildMode
	// rebuilt is the durable prefix (in pages) of the bay's reconstruction;
	// pages beyond it hold stale or no data while not SlotHealthy.
	rebuilt int64
	// window marks an open rebuild window (declared failure not yet fully
	// reconstructed); it spans spare waits and stalls, matching the
	// vulnerability interval rather than just the copy time.
	window      bool
	windowStart sim.Time
	stalled     bool
	grace       sim.Timer
	rbGen       uint64 // invalidates in-flight rebuild chunk callbacks
}

// State returns the bay's current rebuild state.
func (s *Slot) State() SlotState { return s.state }

// Member returns the drive currently behind the bay.
func (s *Slot) Member() *Member { return s.member }

// Group is one redundancy group of the fleet: GroupSize member bays in an
// m+k arrangement (any Config.Parity bays reconstructible from the rest;
// the default Parity of 1 is the RAID-5-like m+1 group). The group tracks
// its own up/degraded/down intervals for the availability nines.
type Group struct {
	f     *Sim
	id    int
	slots []*Slot

	// availability accounting
	class      groupClass
	classSince sim.Time
	upTime     sim.Duration
	degTime    sim.Duration
	downTime   sim.Duration

	// arrive is the cached open-loop arrival callback (one per group, not
	// one per arrival).
	arrive func()
}

type groupClass int

const (
	classUp groupClass = iota
	classDegraded
	classDown
)

// Slots returns the group's member bays.
func (g *Group) Slots() []*Slot { return g.slots }

func newGroup(f *Sim, id int, members []*Member) *Group {
	g := &Group{f: f, id: id}
	for i, m := range members {
		s := &Slot{g: g, idx: i, member: m, state: SlotHealthy, rebuilt: m.prof.Pages}
		g.slots = append(g.slots, s)
		f.assign[m] = s
	}
	return g
}

// unavailable counts bays whose data cannot currently be read directly.
func (g *Group) unavailable() int {
	n := 0
	for _, s := range g.slots {
		if s.state != SlotHealthy {
			n++
		}
	}
	return n
}

// recount reclassifies the group after a slot transition, closing the
// previous up/degraded/down interval. Redundancy is Config.Parity bays:
// with more than that unavailable the group cannot serve reads.
func (g *Group) recount() {
	var c groupClass
	switch u := g.unavailable(); {
	case u == 0:
		c = classUp
	case u <= g.f.cfg.Parity:
		c = classDegraded
	default:
		c = classDown
	}
	if c == g.class {
		return
	}
	g.accumulate()
	g.class = c
}

// accumulate charges the elapsed interval to the current class.
func (g *Group) accumulate() {
	now := g.f.k.Now()
	d := now.Sub(g.classSince)
	switch g.class {
	case classUp:
		g.upTime += d
	case classDegraded:
		g.degTime += d
	default:
		g.downTime += d
	}
	g.classSince = now
}

// memberDown handles the bay's drive losing power.
func (s *Slot) memberDown() {
	switch s.state {
	case SlotHealthy:
		s.setState(SlotDegraded)
		s.g.recount()
		s.grace = s.g.f.k.After(s.g.f.cfg.Rebuild.Delay, func() { s.declare() })
	case SlotRebuilding:
		// The rebuild target went dark mid-copy; the chunk loop errors out
		// and the controller restarts it once the drive answers again.
		s.stall()
	}
}

// memberReady handles the bay's drive answering the host again.
func (s *Slot) memberReady() {
	switch s.state {
	case SlotDegraded:
		// Transient outage: power returned inside the grace window, the
		// bay's data is intact (drives are non-volatile across cuts).
		if s.grace.Pending() {
			s.grace.Stop()
			s.grace = sim.Timer{}
		}
		s.setState(SlotHealthy)
		s.g.recount()
		s.g.f.stats.TransientRecoveries++
	case SlotFailed:
		// No spare ever arrived and the original came back: resilver it.
		// Its pre-cut contents are stale relative to writes served degraded,
		// so it re-enters through a full rebuild.
		s.startRebuild()
	case SlotRebuilding:
		if s.stalled {
			s.startRebuild()
		}
	}
}

// declare fires when the grace window expires with the drive still dark:
// the member is declared failed and rebuild planning starts.
func (s *Slot) declare() {
	if s.state != SlotDegraded {
		return
	}
	s.grace = sim.Timer{}
	f := s.g.f
	f.stats.DeclaredFailures++
	f.obs.declared.Inc()
	s.rebuilt = 0
	s.openWindow()

	// Count bays with declared (not merely transient) invalid data. If this
	// declaration exceeds the group's Parity-bay redundancy, the un-rebuilt
	// data is gone: charge a loss event and fall back to the backup tier.
	declared := 0
	for _, o := range s.g.slots {
		if o.state == SlotRebuilding || o.state == SlotFailed {
			declared++
		}
	}
	if declared >= f.cfg.Parity { // this bay is the k+1-th declared casualty
		f.stats.LossEvents++
		f.stats.BytesLost += s.member.prof.Pages * 4096
		s.mode = rebuildInter
		// Peers still mid-intra-rebuild can no longer reconstruct either:
		// their un-rebuilt remainder is lost too, and they must restore
		// from backup from here on.
		for _, o := range s.g.slots {
			if o.state == SlotRebuilding && o.mode == rebuildIntra {
				f.stats.BytesLost += (o.member.prof.Pages - o.rebuilt) * 4096
				o.mode = rebuildInter
				o.rbGen++
				o.stalled = true
			}
		}
	} else {
		s.mode = rebuildIntra
	}

	old := s.member
	if spare := f.takeSpare(); spare != nil {
		f.retireToSpares(old)
		s.member = spare
		f.assign[spare] = s
		f.stats.SpareTakes++
		s.startRebuild()
	} else {
		f.stats.SpareShortages++
		s.setState(SlotFailed)
		s.g.recount()
	}
}

// openWindow starts the bay's rebuild-vulnerability window.
func (s *Slot) openWindow() {
	if s.window {
		return
	}
	s.window = true
	s.windowStart = s.g.f.k.Now()
	f := s.g.f
	f.activeRebuilds++
	if f.activeRebuilds > f.stats.MaxConcurrentRebuilds {
		f.stats.MaxConcurrentRebuilds = f.activeRebuilds
	}
	f.stats.RebuildWindows++
	f.obs.active.Set(int64(f.activeRebuilds))
}

// closeWindow ends the window after a completed reconstruction.
func (s *Slot) closeWindow() {
	if !s.window {
		return
	}
	s.window = false
	f := s.g.f
	f.activeRebuilds--
	w := f.k.Now().Sub(s.windowStart)
	f.stats.RebuildTime += w
	f.stats.RebuildCompleted++
	f.obs.active.Set(int64(f.activeRebuilds))
	f.obs.windowHist.ObserveDuration(w)
	f.obs.sc.Span(s.windowStart, w, obs.KindSpan, "rebuild "+s.bayName(), s.rebuilt)
}

// stall pauses the chunk loop; the periodic controller retries it.
func (s *Slot) stall() {
	s.stalled = true
	s.rbGen++
}

// startRebuild (re)enters the chunk loop onto the bay's current member.
func (s *Slot) startRebuild() {
	if !s.member.Ready() {
		s.stall()
		if s.state != SlotRebuilding && s.state != SlotFailed {
			s.setState(SlotFailed)
			s.g.recount()
		}
		return
	}
	if s.state != SlotRebuilding {
		s.setState(SlotRebuilding)
		s.g.recount()
	}
	s.openWindow()
	s.stalled = false
	s.rbGen++
	s.step(s.rbGen)
}

// step copies the next chunk. Intra-group mode reads the chunk from every
// surviving bay (RAID-5 reconstruction) and writes the rebuilt chunk to the
// target; inter-group mode writes chunks seeded from the backup tier, paced
// by the backup link bandwidth. All member IO goes through each drive's
// ordinary block layer, so rebuilds contend with foreground traffic.
func (s *Slot) step(gen uint64) {
	if gen != s.rbGen || s.stalled {
		return
	}
	f := s.g.f
	pages := s.member.prof.Pages
	if s.rebuilt >= pages {
		s.finishRebuild()
		return
	}
	chunk := int64(f.cfg.Rebuild.ChunkPages)
	if rem := pages - s.rebuilt; chunk > rem {
		chunk = rem
	}
	lpn := s.rebuilt

	if s.mode == rebuildInter {
		// One chunk from backup: pace the fetch, then write it out.
		pause := sim.Duration(float64(chunk*4096) / float64(f.cfg.Rebuild.BackupBandwidth) * float64(sim.Second))
		f.k.After(pause, func() {
			if gen != s.rbGen || s.stalled {
				return
			}
			s.member.submitIO(blockdev.OpWrite, lpnOf(lpn), int(chunk), true, func(err error) {
				if gen != s.rbGen || s.stalled {
					return
				}
				if err != nil {
					s.stall()
					return
				}
				s.rebuilt += chunk
				s.step(gen)
			})
		})
		return
	}

	// Intra-group: any m of the other bays suffice to reconstruct (all of
	// them when Parity is 1).
	need := len(s.g.slots) - f.cfg.Parity
	var survivors []*Member
	for _, o := range s.g.slots {
		if o == s || o.state != SlotHealthy || !o.member.Ready() {
			continue
		}
		survivors = append(survivors, o.member)
		if len(survivors) == need {
			break
		}
	}
	if len(survivors) < need {
		s.stall()
		return
	}
	remaining := len(survivors)
	failed := false
	for _, m := range survivors {
		m.submitIO(blockdev.OpRead, lpnOf(lpn), int(chunk), true, func(err error) {
			if err != nil {
				failed = true
			}
			remaining--
			if remaining > 0 {
				return
			}
			if gen != s.rbGen || s.stalled {
				return
			}
			if failed {
				s.stall()
				return
			}
			s.member.submitIO(blockdev.OpWrite, lpnOf(lpn), int(chunk), true, func(err error) {
				if gen != s.rbGen || s.stalled {
					return
				}
				if err != nil {
					s.stall()
					return
				}
				s.rebuilt += chunk
				s.step(gen)
			})
		})
	}
}

// finishRebuild returns the bay to service.
func (s *Slot) finishRebuild() {
	s.setState(SlotHealthy)
	s.mode = rebuildIntra
	s.g.recount()
	s.closeWindow()
}

// controllerTick is the fleet controller's periodic pass over the bay:
// retry spare allocation for failed bays and restart stalled rebuilds.
func (s *Slot) controllerTick() {
	f := s.g.f
	switch s.state {
	case SlotFailed:
		if s.member.Ready() {
			// Original answered again between ticks; resilver in place.
			s.startRebuild()
			return
		}
		if spare := f.takeSpare(); spare != nil {
			old := s.member
			f.retireToSpares(old)
			s.member = spare
			f.assign[spare] = s
			f.stats.SpareTakes++
			s.startRebuild()
		}
	case SlotRebuilding:
		if s.stalled && s.member.Ready() {
			s.startRebuild()
		}
	}
}
