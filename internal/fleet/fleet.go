package fleet

import (
	"fmt"
	"math"
	"sort"

	"powerfail/internal/addr"
	"powerfail/internal/blockdev"
	"powerfail/internal/sim"
)

func lpnOf(p int64) addr.LPN { return addr.LPN(p) }

// RebuildPolicy tunes the fleet controller's reaction to member failures.
type RebuildPolicy struct {
	// Delay is the grace window between a member going dark and declaring
	// it failed; outages shorter than this are transient (default 2 s).
	Delay sim.Duration `json:"delay_ns"`
	// ChunkPages is the rebuild copy granularity (default 64 pages).
	ChunkPages int `json:"chunk_pages"`
	// BackupBandwidth paces inter-group restores from the backup tier, in
	// bytes per second (default 50 MiB/s).
	BackupBandwidth int64 `json:"backup_bandwidth"`
	// ControllerTick is how often the controller retries spare allocation
	// and stalled rebuilds (default 1 s).
	ControllerTick sim.Duration `json:"controller_tick_ns"`
}

func (p RebuildPolicy) withDefaults() RebuildPolicy {
	if p.Delay == 0 {
		p.Delay = 2 * sim.Second
	}
	if p.ChunkPages == 0 {
		p.ChunkPages = 64
	}
	if p.BackupBandwidth == 0 {
		p.BackupBandwidth = 50 << 20
	}
	if p.ControllerTick == 0 {
		p.ControllerTick = sim.Second
	}
	return p
}

// Validate checks the policy.
func (p RebuildPolicy) Validate() error {
	if p.Delay < 0 || p.ChunkPages < 1 || p.BackupBandwidth < 1 || p.ControllerTick <= 0 {
		return fmt.Errorf("fleet: invalid rebuild policy: %+v", p)
	}
	return nil
}

// WorkloadConfig shapes the open-loop foreground traffic each group serves
// while faults and rebuilds play out.
type WorkloadConfig struct {
	// MeanInterarrival is the exponential mean between requests per group
	// (default 20 ms); negative disables foreground IO entirely.
	MeanInterarrival sim.Duration `json:"mean_interarrival_ns"`
	// IOPages is the request size (default 8 pages = 32 KiB).
	IOPages int `json:"io_pages"`
	// ReadFraction is the probability a request is a read (default 0.7).
	ReadFraction float64 `json:"read_fraction"`
}

func (w WorkloadConfig) withDefaults() WorkloadConfig {
	if w.MeanInterarrival == 0 {
		w.MeanInterarrival = 20 * sim.Millisecond
	}
	if w.IOPages == 0 {
		w.IOPages = 8
	}
	if w.ReadFraction == 0 {
		w.ReadFraction = 0.7
	}
	return w
}

// Validate checks the workload shape.
func (w WorkloadConfig) Validate() error {
	if w.IOPages < 1 || w.ReadFraction < 0 || w.ReadFraction > 1 {
		return fmt.Errorf("fleet: invalid workload config: %+v", w)
	}
	return nil
}

// CutEvent is one scripted fault: at instant At, cut the Index-th node of
// the given Level for Outage, then restore it.
type CutEvent struct {
	At     sim.Time     `json:"at_ns"`
	Level  Level        `json:"level"`
	Index  int          `json:"index"`
	Outage sim.Duration `json:"outage_ns"`
}

// FaultPlan describes where the fault scheduler draws cut targets from the
// domain tree: either a fixed Script, or Count random cuts at one Level
// with exponential spacing.
type FaultPlan struct {
	// Script, when non-empty, replaces the random plan entirely.
	Script []CutEvent `json:"script,omitempty"`
	// Level is the tier random cuts target (default PSU when the whole
	// plan is zero; note the zero Level value is Room).
	Level Level `json:"level"`
	// Count is the number of random cuts (default 3).
	Count int `json:"count"`
	// MeanBetween selects the spacing model: zero (the default) draws the
	// Count cut instants uniformly inside the horizon so every cut fires;
	// a positive value spaces cuts exponentially with that mean rate, and
	// cuts that land past the horizon are dropped.
	MeanBetween sim.Duration `json:"mean_between_ns"`
	// Outage is how long each random cut lasts (default 5 s).
	Outage sim.Duration `json:"outage_ns"`
}

func (p FaultPlan) withDefaults() FaultPlan {
	if len(p.Script) > 0 {
		return p
	}
	if p.Level == Room && p.Count == 0 && p.Outage == 0 {
		p.Level = PSU
	}
	if p.Count == 0 {
		p.Count = 3
	}
	if p.Outage == 0 {
		p.Outage = 5 * sim.Second
	}
	return p
}

// Validate checks the plan.
func (p FaultPlan) Validate() error {
	for i, ev := range p.Script {
		if ev.Level < 0 || ev.Level >= numLevels || ev.Index < 0 || ev.Outage <= 0 || ev.At < 0 {
			return fmt.Errorf("fleet: invalid script event %d: %+v", i, ev)
		}
	}
	if len(p.Script) > 0 {
		return nil
	}
	if p.Level < 0 || p.Level >= numLevels || p.Count < 0 || p.MeanBetween < 0 || p.Outage <= 0 {
		return fmt.Errorf("fleet: invalid fault plan: %+v", p)
	}
	return nil
}

// Config describes a whole fleet experiment: the fault-domain tree, the
// population of redundancy groups and spares on it, the rebuild policy,
// the fault plan and the foreground workload.
type Config struct {
	// Domains sizes the fault-domain tree (default 2×2×2).
	Domains DomainConfig `json:"domains"`
	// Arrays is the number of redundancy groups (default 8).
	Arrays int `json:"arrays"`
	// GroupSize is members per group (default 4). With the default
	// Parity of 1 this is the RAID-5-like m+1 arrangement.
	GroupSize int `json:"group_size"`
	// Parity is the per-group erasure tolerance k of an m+k code: the
	// group serves degraded with up to Parity bays unavailable and only
	// declares data loss when more than Parity bays hold declared-invalid
	// data (default 1, the RAID-5 rule; 2 models RAID-6 groups).
	Parity int `json:"parity"`
	// Spares is the standby spare drive count; zero means none.
	Spares int `json:"spares"`
	// Member is the drive service model.
	Member MemberProfile `json:"member"`
	// Host tunes each member's block layer (zero → blockdev defaults).
	Host blockdev.Config `json:"-"`
	// Rebuild is the controller policy.
	Rebuild RebuildPolicy `json:"rebuild"`
	// Workload is the foreground traffic shape.
	Workload WorkloadConfig `json:"workload"`
	// Faults is the fault plan over the tree.
	Faults FaultPlan `json:"faults"`
	// Duration is the simulated horizon (default 30 s).
	Duration sim.Duration `json:"duration_ns"`
}

// DefaultConfig is a small fleet: 8 RAID-5 groups of 4 on the default
// 2×2×2 tree with 2 spares, 3 random PSU cuts over 30 s.
func DefaultConfig() Config {
	return Config{Arrays: 8, GroupSize: 4, Spares: 2}.WithDefaults()
}

// WithDefaults fills unset fields. Spares is left alone: zero spares is a
// meaningful configuration.
func (c Config) WithDefaults() Config {
	c.Domains = c.Domains.withDefaults()
	if c.Arrays == 0 {
		c.Arrays = 8
	}
	if c.GroupSize == 0 {
		c.GroupSize = 4
	}
	if c.Parity == 0 {
		c.Parity = 1
	}
	c.Member = c.Member.withDefaults()
	if c.Host == (blockdev.Config{}) {
		c.Host = blockdev.DefaultConfig()
	}
	c.Rebuild = c.Rebuild.withDefaults()
	c.Workload = c.Workload.withDefaults()
	c.Faults = c.Faults.withDefaults()
	if c.Duration == 0 {
		c.Duration = 30 * sim.Second
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Domains.Validate(); err != nil {
		return err
	}
	if c.Arrays < 1 {
		return fmt.Errorf("fleet: need at least one array, got %d", c.Arrays)
	}
	if c.GroupSize < 2 {
		return fmt.Errorf("fleet: group size must be >= 2, got %d", c.GroupSize)
	}
	if c.Parity < 1 || c.Parity >= c.GroupSize {
		return fmt.Errorf("fleet: parity must be in [1, group size), got %d of %d", c.Parity, c.GroupSize)
	}
	if c.Spares < 0 {
		return fmt.Errorf("fleet: spares must be >= 0, got %d", c.Spares)
	}
	if err := c.Member.Validate(); err != nil {
		return err
	}
	if err := c.Host.Validate(); err != nil {
		return err
	}
	if err := c.Rebuild.Validate(); err != nil {
		return err
	}
	if err := c.Workload.Validate(); err != nil {
		return err
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	if c.Duration <= 0 {
		return fmt.Errorf("fleet: duration must be positive, got %v", c.Duration)
	}
	if int64(c.Workload.IOPages) > c.Member.Pages {
		return fmt.Errorf("fleet: io_pages %d exceeds member capacity %d pages", c.Workload.IOPages, c.Member.Pages)
	}
	return nil
}

// Stats is the fleet experiment outcome: per-level fault counts, rebuild
// activity, foreground service quality, and availability/durability nines
// computed from the simulated up/degraded/down intervals.
type Stats struct {
	Arrays    int          `json:"arrays"`
	GroupSize int          `json:"group_size"`
	Parity    int          `json:"parity"`
	Members   int          `json:"members"`
	Spares    int          `json:"spares"`
	Duration  sim.Duration `json:"duration_ns"`
	Events    uint64       `json:"events"`

	Cuts            int            `json:"cuts"`
	Restores        int            `json:"restores"`
	CutsByLevel     map[string]int `json:"cuts_by_level,omitempty"`
	RestoresByLevel map[string]int `json:"restores_by_level,omitempty"`

	DeclaredFailures      int          `json:"declared_failures"`
	TransientRecoveries   int          `json:"transient_recoveries"`
	SpareTakes            int          `json:"spare_takes"`
	SpareShortages        int          `json:"spare_shortages"`
	RebuildWindows        int          `json:"rebuild_windows"`
	RebuildCompleted      int          `json:"rebuilds_completed"`
	RebuildTime           sim.Duration `json:"rebuild_time_ns"`
	MaxConcurrentRebuilds int          `json:"max_concurrent_rebuilds"`
	RebuildReadBytes      int64        `json:"rebuild_read_bytes"`
	RebuildWriteBytes     int64        `json:"rebuild_write_bytes"`

	FgOps             int64        `json:"fg_ops"`
	FgFailed          int64        `json:"fg_failed"`
	FgDegraded        int64        `json:"fg_degraded"`
	FgReadBytes       int64        `json:"fg_read_bytes"`
	FgWriteBytes      int64        `json:"fg_write_bytes"`
	FgMeanLatency     sim.Duration `json:"fg_mean_latency_ns"`
	FgDegradedLatency sim.Duration `json:"fg_degraded_mean_latency_ns"`

	UpTime            sim.Duration `json:"up_time_ns"`
	DegradedTime      sim.Duration `json:"degraded_time_ns"`
	DownTime          sim.Duration `json:"down_time_ns"`
	Availability      float64      `json:"availability"`
	AvailabilityNines float64      `json:"availability_nines"`
	LossEvents        int          `json:"loss_events"`
	BytesLost         int64        `json:"bytes_lost"`
	TotalBytes        int64        `json:"total_bytes"`
	Durability        float64      `json:"durability"`
	DurabilityNines   float64      `json:"durability_nines"`

	fgLatencySum sim.Duration
	fgOKOps      int64
	fgDegLatSum  sim.Duration
	fgDegOKOps   int64
}

// NinesCap bounds reported nines; a run with zero observed downtime is
// reported as the cap rather than +Inf.
const NinesCap = 12.0

// Nines converts a fraction (availability, durability) into "nines":
// 0.999 → 3. Values at or above 1 return NinesCap.
func Nines(x float64) float64 {
	if x >= 1 {
		return NinesCap
	}
	if x < 0 {
		x = 0
	}
	n := -math.Log10(1 - x)
	if n > NinesCap {
		n = NinesCap
	}
	if n <= 0 {
		return 0 // also normalises the -0.0 that -log10(1) produces
	}
	return n
}

// Sim is one fleet experiment instance. It owns its own kernel and RNG so
// campaign items stay independent and deterministic at any parallelism.
type Sim struct {
	cfg Config
	k   *sim.Kernel
	wl  *sim.RNG // workload stream
	fl  *sim.RNG // fault stream

	tree     *Tree
	sched    *Schedule
	schedIdx map[*Node]int

	members []*Member
	groups  []*Group
	spares  []*Member
	assign  map[*Member]*Slot

	activeRebuilds int
	end            sim.Time
	stats          Stats
	obs            fleetObs

	// Foreground-path scratch: target slices reused across arrivals and a
	// free list of completion records with cached callbacks, so serving a
	// foreground op allocates nothing in steady state.
	scratchR []*Member
	scratchW []*Member
	fgFree   []*fgRec
}

// fgRec tracks one foreground op's fan-out: a pooled record whose cached
// fn is handed to every per-member submitIO as the completion callback.
type fgRec struct {
	f         *Sim
	start     sim.Time
	degraded  bool
	remaining int
	anyErr    bool
	fn        func(error)
}

func (f *Sim) getFg(start sim.Time, degraded bool, remaining int) *fgRec {
	var rec *fgRec
	if n := len(f.fgFree); n > 0 {
		rec = f.fgFree[n-1]
		f.fgFree = f.fgFree[:n-1]
	} else {
		rec = &fgRec{f: f}
		rec.fn = func(err error) {
			if err != nil {
				rec.anyErr = true
			}
			rec.remaining--
			if rec.remaining > 0 {
				return
			}
			f := rec.f
			start, degraded, anyErr := rec.start, rec.degraded, rec.anyErr
			f.fgFree = append(f.fgFree, rec)
			f.fgDone(start, degraded, anyErr)
		}
	}
	rec.start, rec.degraded, rec.remaining, rec.anyErr = start, degraded, remaining, false
	return rec
}

// fgDone closes out one foreground op once every member completion is in.
func (f *Sim) fgDone(start sim.Time, degraded, anyErr bool) {
	if anyErr {
		f.stats.FgFailed++
		return
	}
	lat := f.k.Now().Sub(start)
	f.stats.fgLatencySum += lat
	f.stats.fgOKOps++
	f.obs.fgLat.ObserveDuration(lat)
	if degraded {
		f.stats.FgDegraded++
		f.stats.fgDegLatSum += lat
		f.stats.fgDegOKOps++
		f.obs.fgDegLat.ObserveDuration(lat)
	}
}

// NewSim builds a fleet over its own simulation kernel. Placement is
// rack-local: group g lives in rack g mod Racks with members round-robin
// across that rack's PSU leaves, so a PSU cut degrades at most one bay of a
// group (when the rack has at least GroupSize leaves) while rack and room
// cuts exceed redundancy — the placement-derived correlation the domain
// tree exists to express.
func NewSim(cfg Config, seed uint64) (*Sim, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tree, err := NewTree(cfg.Domains)
	if err != nil {
		return nil, err
	}
	root := sim.NewRNG(seed)
	f := &Sim{
		cfg:      cfg,
		k:        sim.New(),
		wl:       root.Fork("fleet/workload"),
		fl:       root.Fork("fleet/faults"),
		tree:     tree,
		sched:    NewSchedule(),
		schedIdx: make(map[*Node]int),
		assign:   make(map[*Member]*Slot),
		end:      sim.Time(0).Add(cfg.Duration),
	}
	for _, l := range Levels() {
		for _, n := range tree.Nodes(l) {
			f.schedIdx[n] = f.sched.Add(n)
		}
	}

	leaves := tree.Leaves()
	perRack := cfg.Domains.EnclosuresPerRack * cfg.Domains.PSUsPerEnclosure
	nextID := 0
	newMemberOn := func(leaf *Node) (*Member, error) {
		m, err := newMember(f.k, cfg.Member, nextID, leaf, cfg.Host)
		if err != nil {
			return nil, err
		}
		nextID++
		f.members = append(f.members, m)
		mm := m
		m.NotifyDown(func() { f.onMemberDown(mm) })
		m.NotifyReady(func() { f.onMemberReady(mm) })
		return m, nil
	}
	for g := 0; g < cfg.Arrays; g++ {
		rack := g % cfg.Domains.Racks
		base := rack * perRack
		var ms []*Member
		for j := 0; j < cfg.GroupSize; j++ {
			leaf := leaves[base+(g/cfg.Domains.Racks+j)%perRack]
			m, err := newMemberOn(leaf)
			if err != nil {
				return nil, err
			}
			ms = append(ms, m)
		}
		f.groups = append(f.groups, newGroup(f, g, ms))
	}
	for s := 0; s < cfg.Spares; s++ {
		m, err := newMemberOn(leaves[s%len(leaves)])
		if err != nil {
			return nil, err
		}
		f.spares = append(f.spares, m)
	}
	return f, nil
}

// Kernel exposes the simulation clock, mainly for tests.
func (f *Sim) Kernel() *sim.Kernel { return f.k }

// Tree exposes the fault-domain hierarchy.
func (f *Sim) Tree() *Tree { return f.tree }

// Groups exposes the redundancy groups, mainly for tests.
func (f *Sim) Groups() []*Group { return f.groups }

// Members exposes every drive in construction order (group members first,
// then spares), mainly for tests.
func (f *Sim) Members() []*Member { return f.members }

// takeSpare removes and returns the first powered, ready spare, or nil.
func (f *Sim) takeSpare() *Member {
	for i, m := range f.spares {
		if m.Ready() {
			f.spares = append(f.spares[:i], f.spares[i+1:]...)
			return m
		}
	}
	return nil
}

// retireToSpares sends a replaced (usually dark) drive to the spare pool;
// it becomes eligible again once it answers the host.
func (f *Sim) retireToSpares(m *Member) {
	delete(f.assign, m)
	f.spares = append(f.spares, m)
}

func (f *Sim) onMemberDown(m *Member) {
	if s := f.assign[m]; s != nil && s.member == m {
		s.memberDown()
	}
}

func (f *Sim) onMemberReady(m *Member) {
	if s := f.assign[m]; s != nil && s.member == m {
		s.memberReady()
	}
}

// scheduleFaults lays the fault plan onto the kernel: either the script
// verbatim, or Count exponentially spaced cuts at the configured level with
// uniformly drawn targets. Cut and restore commands go through the shared
// Schedule so per-target and total accounting match the classic platform's.
func (f *Sim) scheduleFaults() {
	plan := f.cfg.Faults
	fire := func(at sim.Time, level Level, index int, outage sim.Duration) {
		nodes := f.tree.Nodes(level)
		if len(nodes) == 0 {
			return // degenerate trees lack the wider tiers
		}
		id := f.schedIdx[nodes[index%len(nodes)]]
		f.k.At(at, func() {
			f.sched.Cut(id)
			f.k.After(outage, func() { f.sched.Restore(id) })
		})
	}
	if len(plan.Script) > 0 {
		for _, ev := range plan.Script {
			fire(ev.At, ev.Level, ev.Index, ev.Outage)
		}
		return
	}
	nodes := f.tree.Nodes(plan.Level)
	if len(nodes) == 0 {
		return
	}
	if plan.MeanBetween > 0 {
		at := sim.Time(0)
		for i := 0; i < plan.Count; i++ {
			at = at.Add(sim.Duration(f.fl.ExpMean(float64(plan.MeanBetween))))
			fire(at, plan.Level, f.fl.Intn(len(nodes)), plan.Outage)
		}
		return
	}
	// Default spacing: all Count cuts land inside the horizon, placed
	// uniformly with room for the outage to play out.
	span := f.cfg.Duration - plan.Outage
	if span <= 0 {
		span = f.cfg.Duration
	}
	times := make([]sim.Duration, plan.Count)
	for i := range times {
		times[i] = sim.Duration(f.fl.Int63n(int64(span)))
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	for _, at := range times {
		fire(sim.Time(0).Add(at), plan.Level, f.fl.Intn(len(nodes)), plan.Outage)
	}
}

// scheduleController starts the periodic controller pass.
func (f *Sim) scheduleController() {
	f.k.After(f.cfg.Rebuild.ControllerTick, func() {
		for _, g := range f.groups {
			for _, s := range g.slots {
				s.controllerTick()
			}
		}
		f.scheduleController()
	})
}

// startWorkload launches one open-loop arrival process per group.
func (f *Sim) startWorkload() {
	if f.cfg.Workload.MeanInterarrival < 0 {
		return
	}
	for _, g := range f.groups {
		f.scheduleArrival(g)
	}
}

func (f *Sim) scheduleArrival(g *Group) {
	if g.arrive == nil {
		g.arrive = func() {
			f.issueForeground(g)
			f.scheduleArrival(g)
		}
	}
	d := sim.Duration(f.wl.ExpMean(float64(f.cfg.Workload.MeanInterarrival)))
	f.k.After(d, g.arrive)
}

// issueForeground serves one request against the group: reads hit one bay
// (or reconstruct from the survivors when that bay is out), writes hit the
// data bay plus its parity peer. Requests against a down group fail.
func (f *Sim) issueForeground(g *Group) {
	w := f.cfg.Workload
	f.stats.FgOps++
	pages := w.IOPages
	lpn := int64(0)
	if max := f.cfg.Member.Pages - int64(pages); max > 0 {
		lpn = f.wl.Int63n(max + 1)
	}
	si := f.wl.Intn(len(g.slots))
	slot := g.slots[si]
	isRead := f.wl.Prob(w.ReadFraction)
	degraded := g.class != classUp
	start := f.k.Now()

	targetsR := f.scratchR[:0]
	targetsW := f.scratchW[:0]
	need := len(g.slots) - f.cfg.Parity // data shards of the m+k group
	if isRead {
		if slot.state == SlotHealthy {
			targetsR = append(targetsR, slot.member)
		} else {
			// Degraded read: erasure reconstruction needs any m of the
			// other bays (every other bay for the RAID-5-like Parity=1).
			for _, o := range g.slots {
				if o == slot || o.state != SlotHealthy {
					continue
				}
				targetsR = append(targetsR, o.member)
				if len(targetsR) == need {
					break
				}
			}
			if len(targetsR) < need {
				f.stats.FgFailed++
				return
			}
		}
	} else {
		if slot.state == SlotHealthy {
			targetsW = append(targetsW, slot.member)
		}
		for j := 1; j <= f.cfg.Parity; j++ {
			if parity := g.slots[(si+j)%len(g.slots)]; parity.state == SlotHealthy {
				targetsW = append(targetsW, parity.member)
			}
		}
		// A degraded write lands on whichever of the data+parity set is up;
		// the dark bays' copies are reconstructed by the eventual rebuild.
		// (The parity read-modify-write pre-reads are not modelled at fleet
		// scale.)
		if len(targetsW) == 0 {
			f.stats.FgFailed++
			return
		}
	}
	f.scratchR, f.scratchW = targetsR[:0], targetsW[:0]

	rec := f.getFg(start, degraded, len(targetsR)+len(targetsW))
	for _, m := range targetsR {
		m.submitIO(blockdev.OpRead, lpnOf(lpn), pages, false, rec.fn)
	}
	for _, m := range targetsW {
		m.submitIO(blockdev.OpWrite, lpnOf(lpn), pages, false, rec.fn)
	}
}

// Run executes the experiment to its horizon and returns the stats.
func (f *Sim) Run() *Stats {
	f.scheduleFaults()
	f.scheduleController()
	f.startWorkload()
	f.k.RunUntil(f.end)
	f.finalize()
	return &f.stats
}

func (f *Sim) finalize() {
	st := &f.stats
	st.Arrays = f.cfg.Arrays
	st.GroupSize = f.cfg.GroupSize
	st.Parity = f.cfg.Parity
	st.Members = len(f.members)
	st.Spares = f.cfg.Spares
	st.Duration = f.cfg.Duration
	st.Events = f.k.Processed()

	st.Cuts = f.sched.Cuts()
	st.Restores = f.sched.Restores()
	for _, l := range Levels() {
		if c := f.tree.CutsAt(l); c > 0 {
			if st.CutsByLevel == nil {
				st.CutsByLevel = make(map[string]int)
			}
			st.CutsByLevel[l.String()] = c
		}
		if r := f.tree.RestoresAt(l); r > 0 {
			if st.RestoresByLevel == nil {
				st.RestoresByLevel = make(map[string]int)
			}
			st.RestoresByLevel[l.String()] = r
		}
	}

	for _, m := range f.members {
		ms := m.Stats()
		st.RebuildReadBytes += ms.RebuildReadPages * 4096
		st.RebuildWriteBytes += ms.RebuildWritePages * 4096
		st.FgReadBytes += ms.ForegroundReadPages * 4096
		st.FgWriteBytes += ms.ForegroundWritePages * 4096
	}

	now := f.k.Now()
	for _, g := range f.groups {
		g.accumulate()
		st.UpTime += g.upTime
		st.DegradedTime += g.degTime
		st.DownTime += g.downTime
		for _, s := range g.slots {
			if s.window {
				// Open vulnerability windows at the horizon still count
				// toward exposure time.
				st.RebuildTime += now.Sub(s.windowStart)
			}
		}
	}
	total := st.UpTime + st.DegradedTime + st.DownTime
	if total > 0 {
		st.Availability = float64(st.UpTime+st.DegradedTime) / float64(total)
	} else {
		st.Availability = 1
	}
	st.AvailabilityNines = Nines(st.Availability)

	st.TotalBytes = int64(f.cfg.Arrays*f.cfg.GroupSize) * f.cfg.Member.Pages * 4096
	if st.TotalBytes > 0 {
		st.Durability = 1 - float64(st.BytesLost)/float64(st.TotalBytes)
	} else {
		st.Durability = 1
	}
	if st.Durability < 0 {
		st.Durability = 0
	}
	st.DurabilityNines = Nines(st.Durability)

	if st.fgOKOps > 0 {
		st.FgMeanLatency = st.fgLatencySum / sim.Duration(st.fgOKOps)
	}
	if st.fgDegOKOps > 0 {
		st.FgDegradedLatency = st.fgDegLatSum / sim.Duration(st.fgDegOKOps)
	}
}

// Run builds and runs a fleet experiment in one call.
func Run(cfg Config, seed uint64) (*Stats, error) {
	f, err := NewSim(cfg, seed)
	if err != nil {
		return nil, err
	}
	return f.Run(), nil
}
