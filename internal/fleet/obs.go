package fleet

import (
	"fmt"

	"powerfail/internal/obs"
	"powerfail/internal/sim"
)

// fleetObs holds the Sim's observability handles; the zero value is the
// disabled state (nil handles no-op).
type fleetObs struct {
	sc          obs.Scope
	transitions *obs.Counter
	declared    *obs.Counter
	windowHist  *obs.Histogram
	active      *obs.Gauge
	fgLat       *obs.Histogram
	fgDegLat    *obs.Histogram
}

// Observe attaches the fleet to an observability set: power edges per
// tree node through the shared Schedule, slot state transitions and
// rebuild windows under "fleet", and every member's block layer sharing
// one "blockdev" scope (their latency samples merge into one fleet-wide
// distribution). Call before Run; a nil set is a no-op.
func (f *Sim) Observe(set *obs.Set) {
	if set == nil {
		return
	}
	sc := set.Scope("fleet")
	f.obs = fleetObs{
		sc:          sc,
		transitions: sc.Counter("slot_transitions"),
		declared:    sc.Counter("declared_failures"),
		windowHist:  sc.Histogram("rebuild_window_ns"),
		active:      sc.Gauge("active_rebuilds"),
		fgLat:       sc.Histogram("fg_latency_ns"),
		fgDegLat:    sc.Histogram("fg_degraded_latency_ns"),
	}
	f.sched.Observe(set.Scope("power"), func() sim.Time { return f.k.Now() })
	for _, m := range f.members {
		m.queue.Observe(set.Scope("blockdev"))
	}
}

// bayName identifies a slot in trace events: "g3/bay1".
func (s *Slot) bayName() string { return fmt.Sprintf("g%d/bay%d", s.g.id, s.idx) }

// setState performs a state transition, recording it as a KindState
// trace event ("g3/bay1 healthy>rebuilding") and a transition counter
// point. It does not recount the group; call sites keep that.
func (s *Slot) setState(st SlotState) {
	if st == s.state {
		return
	}
	f := s.g.f
	f.obs.transitions.Inc()
	if f.obs.sc.TracingOn() {
		f.obs.sc.Instant(f.k.Now(), obs.KindState,
			s.bayName()+" "+s.state.String()+">"+st.String(), int64(st))
	}
	s.state = st
}
