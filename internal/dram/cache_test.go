package dram

import (
	"testing"

	"powerfail/internal/addr"
	"powerfail/internal/content"
)

func newCache(t *testing.T, pages int) *Cache {
	t.Helper()
	c, err := New(pages)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestWriteReadHit(t *testing.T) {
	c := newCache(t, 8)
	if !c.Write(3, 0xaa) {
		t.Fatal("write rejected")
	}
	fp, ok := c.Read(3)
	if !ok || fp != 0xaa {
		t.Fatalf("read = %x, %v", fp, ok)
	}
	if _, ok := c.Read(4); ok {
		t.Fatal("miss returned ok")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestOverwriteUpdatesContent(t *testing.T) {
	c := newCache(t, 8)
	c.Write(1, 0x1)
	c.Write(1, 0x2)
	if fp, _ := c.Read(1); fp != 0x2 {
		t.Fatalf("read %x after overwrite", fp)
	}
	if c.Len() != 1 || c.DirtyPages() != 1 {
		t.Fatal("overwrite duplicated the entry")
	}
}

func TestBackpressureWhenAllDirty(t *testing.T) {
	c := newCache(t, 4)
	for i := 0; i < 4; i++ {
		if !c.Write(addr.LPN(i), 1) {
			t.Fatal("early write rejected")
		}
	}
	if c.Write(99, 1) {
		t.Fatal("write accepted into a cache full of dirty pages")
	}
}

func TestCleanEviction(t *testing.T) {
	c := newCache(t, 4)
	for i := 0; i < 4; i++ {
		c.Write(addr.LPN(i), content.Fingerprint(i+1))
	}
	ents := c.PopDirty(4)
	for _, e := range ents {
		c.FlushDone(e.LPN, e.Seq)
	}
	// Cache full of clean pages: a new write evicts the LRU one.
	if !c.Write(50, 0x50) {
		t.Fatal("write rejected despite clean pages")
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", c.Stats().Evictions)
	}
	if _, ok := c.Read(0); ok {
		t.Fatal("LRU page survived eviction")
	}
}

func TestPopDirtyFIFO(t *testing.T) {
	c := newCache(t, 16)
	for i := 0; i < 5; i++ {
		c.Write(addr.LPN(10+i), content.Fingerprint(i))
	}
	ents := c.PopDirty(3)
	if len(ents) != 3 {
		t.Fatalf("popped %d", len(ents))
	}
	for i, e := range ents {
		if e.LPN != addr.LPN(10+i) {
			t.Fatalf("pop order wrong: %+v", ents)
		}
	}
	if c.QueuedDirty() != 2 || c.DirtyPages() != 5 {
		t.Fatalf("queued=%d dirty=%d", c.QueuedDirty(), c.DirtyPages())
	}
}

func TestFlushDoneRetires(t *testing.T) {
	c := newCache(t, 8)
	c.Write(1, 0x1)
	e := c.PopDirty(1)[0]
	c.FlushDone(e.LPN, e.Seq)
	if c.DirtyPages() != 0 {
		t.Fatal("flushed page still dirty")
	}
	if fp, ok := c.Read(1); !ok || fp != 0x1 {
		t.Fatal("flushed page lost from cache")
	}
}

// TestOverwriteDuringFlush is the regression test for the flight-count
// bug: data overwritten while its flush is in flight must stay dirty, and
// the dirty accounting must not drift.
func TestOverwriteDuringFlush(t *testing.T) {
	c := newCache(t, 8)
	c.Write(1, 0x1)
	e := c.PopDirty(1)[0]
	c.Write(1, 0x2) // overwrite mid-flush
	c.FlushDone(e.LPN, e.Seq)
	if c.DirtyPages() != 1 {
		t.Fatalf("dirty = %d, want 1 (new data unflushed)", c.DirtyPages())
	}
	if fp, _ := c.Read(1); fp != 0x2 {
		t.Fatal("new data lost")
	}
	e2 := c.PopDirty(1)[0]
	if e2.FP != 0x2 {
		t.Fatalf("second flush carries %x", e2.FP)
	}
	c.FlushDone(e2.LPN, e2.Seq)
	if c.DirtyPages() != 0 {
		t.Fatalf("dirty = %d after final flush, want 0", c.DirtyPages())
	}
}

// TestRepeatedOverwriteFlushCycles drives many overwrite-while-flushing
// rounds and checks the accounting never drifts (the leak that once
// throttled WAW workloads).
func TestRepeatedOverwriteFlushCycles(t *testing.T) {
	c := newCache(t, 8)
	for round := 0; round < 100; round++ {
		c.Write(1, content.Fingerprint(round*2+1))
		e := c.PopDirty(1)[0]
		c.Write(1, content.Fingerprint(round*2+2))
		c.FlushDone(e.LPN, e.Seq)
		e2 := c.PopDirty(1)[0]
		c.FlushDone(e2.LPN, e2.Seq)
		if got := c.DirtyPages(); got != 0 {
			t.Fatalf("round %d: dirty = %d, want 0", round, got)
		}
	}
}

func TestFlushFailedRequeuesFront(t *testing.T) {
	c := newCache(t, 8)
	c.Write(1, 0x1)
	c.Write(2, 0x2)
	ents := c.PopDirty(2)
	c.FlushFailed(ents[0].LPN, ents[0].Seq)
	c.FlushFailed(ents[1].LPN, ents[1].Seq)
	if c.QueuedDirty() != 2 {
		t.Fatalf("queued = %d after failed flush", c.QueuedDirty())
	}
	// Failed pages go back to the front (oldest-first preserved).
	re := c.PopDirty(2)
	if re[0].LPN != 2 || re[1].LPN != 1 {
		t.Logf("requeue order: %+v (front-insertion reverses pairs)", re)
	}
}

func TestDropAllCountsDirty(t *testing.T) {
	c := newCache(t, 16)
	for i := 0; i < 6; i++ {
		c.Write(addr.LPN(i), 1)
	}
	ents := c.PopDirty(2) // 2 flushing + 4 queued, all at risk
	_ = ents
	if lost := c.DropAll(); lost != 6 {
		t.Fatalf("DropAll lost = %d, want 6", lost)
	}
	if c.Len() != 0 || c.DirtyPages() != 0 {
		t.Fatal("cache not empty after DropAll")
	}
}

func TestDropAllSparesCleanCount(t *testing.T) {
	c := newCache(t, 16)
	c.Write(1, 0x1)
	e := c.PopDirty(1)[0]
	c.FlushDone(e.LPN, e.Seq)
	if lost := c.DropAll(); lost != 0 {
		t.Fatalf("clean page counted as lost: %d", lost)
	}
}

func TestInvalidate(t *testing.T) {
	c := newCache(t, 8)
	c.Write(1, 0x1)
	c.Invalidate(1)
	if _, ok := c.Read(1); ok {
		t.Fatal("invalidated page still readable")
	}
	if c.DirtyPages() != 0 {
		t.Fatal("invalidated dirty page still counted")
	}
	c.Invalidate(99) // no-op must not panic
}

func TestDirtyEntriesSnapshot(t *testing.T) {
	c := newCache(t, 16)
	for i := 0; i < 4; i++ {
		c.Write(addr.LPN(i), content.Fingerprint(i+1))
	}
	c.PopDirty(2)
	ents := c.DirtyEntries()
	if len(ents) != 4 {
		t.Fatalf("DirtyEntries = %d, want 4 (2 queued + 2 in flight)", len(ents))
	}
}

func TestStaleFlushDoneIgnored(t *testing.T) {
	c := newCache(t, 8)
	c.Write(1, 0x1)
	e := c.PopDirty(1)[0]
	c.FlushDone(99, e.Seq) // wrong lpn: no-op
	c.FlushDone(e.LPN, e.Seq)
	c.FlushDone(e.LPN, e.Seq) // duplicate: no-op
	if c.DirtyPages() != 0 {
		t.Fatal("accounting broken by stale FlushDone")
	}
}

func TestCapValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := New(-5); err == nil {
		t.Fatal("negative capacity accepted")
	}
	c := newCache(t, 7)
	if c.Cap() != 7 {
		t.Fatal("Cap wrong")
	}
}

func TestPopDirtyZero(t *testing.T) {
	c := newCache(t, 4)
	c.Write(1, 1)
	if got := c.PopDirty(0); got != nil {
		t.Fatal("PopDirty(0) returned entries")
	}
}
