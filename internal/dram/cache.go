// Package dram models the SSD's internal volatile write-back cache: the
// component the paper singles out as a primary source of data loss, since
// writes are acknowledged to the host as soon as they land in DRAM and die
// with it on power failure unless a supercapacitor drains them to flash.
//
// The cache keeps dirty entries in arrival (FIFO) order for the background
// flusher and clean entries on an LRU list for read caching. A page being
// flushed stays readable; if the host overwrites it mid-flush the entry is
// re-dirtied with a new sequence number so the stale flush completion
// cannot mark it clean.
package dram

import (
	"container/list"
	"fmt"

	"powerfail/internal/addr"
	"powerfail/internal/content"
)

// Entry is the host-visible view of one cached page.
type Entry struct {
	LPN addr.LPN
	FP  content.Fingerprint
	Seq uint64
}

type slot struct {
	lpn     addr.LPN
	fp      content.Fingerprint
	seq     uint64
	dirty   bool
	flights int           // outstanding flusher pops for this entry
	elem    *list.Element // position on dirtyQ or cleanLRU
}

func (s *slot) flushing() bool { return s.flights > 0 }

// Stats counts cache activity.
type Stats struct {
	Hits         int64
	Misses       int64
	Inserts      int64
	Evictions    int64
	Flushes      int64
	ReDirties    int64
	DroppedDirty int64 // dirty pages lost to power failures
}

// Cache is the volatile write-back cache.
type Cache struct {
	capPages int
	m        map[addr.LPN]*slot
	dirtyQ   *list.List // *slot, FIFO by first-dirty time
	cleanLRU *list.List // *slot, front = most recent
	flushing int        // pages popped by the flusher, not yet retired
	seq      uint64
	stats    Stats
}

// New builds a cache holding capPages 4 KiB pages.
func New(capPages int) (*Cache, error) {
	if capPages <= 0 {
		return nil, fmt.Errorf("dram: capacity must be positive, got %d", capPages)
	}
	return &Cache{
		capPages: capPages,
		m:        make(map[addr.LPN]*slot),
		dirtyQ:   list.New(),
		cleanLRU: list.New(),
	}, nil
}

// Cap returns the capacity in pages.
func (c *Cache) Cap() int { return c.capPages }

// Len returns the number of resident pages.
func (c *Cache) Len() int { return len(c.m) }

// DirtyPages returns the number of dirty (including flushing) pages.
func (c *Cache) DirtyPages() int { return c.dirtyQ.Len() + c.flushing }

// QueuedDirty returns dirty pages waiting for the flusher (excludes pages
// already being flushed).
func (c *Cache) QueuedDirty() int { return c.dirtyQ.Len() }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// Write inserts or overwrites a page as dirty. It reports false when the
// cache is full of dirty pages and cannot accept more; the controller must
// let the flusher drain before retrying (write backpressure).
func (c *Cache) Write(lpn addr.LPN, fp content.Fingerprint) bool {
	if s, ok := c.m[lpn]; ok {
		s.fp = fp
		c.seq++
		s.seq = c.seq
		switch {
		case s.flushing():
			// Overwritten mid-flush: re-dirty so the in-flight flush
			// completion cannot retire the newer data.
			s.dirty = true
			if s.elem == nil {
				s.elem = c.dirtyQ.PushBack(s)
			}
			c.stats.ReDirties++
		case s.dirty:
			// Already queued dirty; keep FIFO position.
		default:
			c.cleanLRU.Remove(s.elem)
			s.dirty = true
			s.elem = c.dirtyQ.PushBack(s)
		}
		c.stats.Inserts++
		return true
	}
	if len(c.m) >= c.capPages && !c.evictClean() {
		return false
	}
	c.seq++
	s := &slot{lpn: lpn, fp: fp, seq: c.seq, dirty: true}
	s.elem = c.dirtyQ.PushBack(s)
	c.m[lpn] = s
	c.stats.Inserts++
	return true
}

func (c *Cache) evictClean() bool {
	e := c.cleanLRU.Back()
	if e == nil {
		return false
	}
	s := e.Value.(*slot)
	c.cleanLRU.Remove(e)
	delete(c.m, s.lpn)
	c.stats.Evictions++
	return true
}

// Read looks a page up, refreshing its LRU position when clean.
func (c *Cache) Read(lpn addr.LPN) (content.Fingerprint, bool) {
	s, ok := c.m[lpn]
	if !ok {
		c.stats.Misses++
		return content.Zero, false
	}
	if !s.dirty && !s.flushing() && s.elem != nil {
		c.cleanLRU.MoveToFront(s.elem)
	}
	c.stats.Hits++
	return s.fp, true
}

// PopDirty removes up to max pages from the head of the dirty FIFO and
// marks them flushing. The pages stay readable until FlushDone.
func (c *Cache) PopDirty(max int) []Entry {
	if max <= 0 {
		return nil
	}
	var out []Entry
	for len(out) < max {
		e := c.dirtyQ.Front()
		if e == nil {
			break
		}
		s := e.Value.(*slot)
		c.dirtyQ.Remove(e)
		s.elem = nil
		s.dirty = false
		if s.flights == 0 {
			c.flushing++
		}
		s.flights++
		out = append(out, Entry{LPN: s.lpn, FP: s.fp, Seq: s.seq})
	}
	return out
}

// FlushDone retires a flushed page. If the page was overwritten while the
// flush was in flight (sequence mismatch) it stays dirty; otherwise it
// becomes clean and joins the LRU.
func (c *Cache) FlushDone(lpn addr.LPN, seq uint64) {
	s, ok := c.m[lpn]
	if !ok {
		return
	}
	c.retireFlight(s)
	if s.seq != seq {
		// Newer data arrived; its dirty queue entry (added by Write)
		// is already in place.
		return
	}
	s.dirty = false
	if s.elem == nil {
		s.elem = c.cleanLRU.PushFront(s)
	}
	c.stats.Flushes++
}

func (c *Cache) retireFlight(s *slot) {
	if s.flights > 0 {
		s.flights--
		if s.flights == 0 {
			c.flushing--
		}
	}
}

// FlushFailed requeues a page whose flush was interrupted before the
// program completed; the data is still only in DRAM.
func (c *Cache) FlushFailed(lpn addr.LPN, seq uint64) {
	s, ok := c.m[lpn]
	if !ok {
		return
	}
	c.retireFlight(s)
	if s.seq != seq {
		return
	}
	s.dirty = true
	if s.elem == nil {
		s.elem = c.dirtyQ.PushFront(s)
	}
}

// Invalidate drops a page (trim or host discard).
func (c *Cache) Invalidate(lpn addr.LPN) {
	s, ok := c.m[lpn]
	if !ok {
		return
	}
	if s.elem != nil {
		if s.dirty {
			c.dirtyQ.Remove(s.elem)
		} else {
			c.cleanLRU.Remove(s.elem)
		}
	}
	if s.flights > 0 {
		c.flushing--
	}
	delete(c.m, lpn)
}

// DirtyEntries snapshots every dirty or in-flight page, oldest first; the
// supercapacitor panic flush consumes this.
func (c *Cache) DirtyEntries() []Entry {
	var out []Entry
	for e := c.dirtyQ.Front(); e != nil; e = e.Next() {
		s := e.Value.(*slot)
		out = append(out, Entry{LPN: s.lpn, FP: s.fp, Seq: s.seq})
	}
	for _, s := range c.m {
		if s.flushing() && !s.dirty && s.elem == nil {
			out = append(out, Entry{LPN: s.lpn, FP: s.fp, Seq: s.seq})
		}
	}
	return out
}

// DropAll models power loss: every entry vanishes. It returns the number
// of dirty pages (acknowledged data) that were lost.
func (c *Cache) DropAll() int {
	lost := 0
	for _, s := range c.m {
		if s.dirty || s.flushing() {
			lost++
		}
	}
	c.m = make(map[addr.LPN]*slot)
	c.dirtyQ.Init()
	c.cleanLRU.Init()
	c.flushing = 0
	c.stats.DroppedDirty += int64(lost)
	return lost
}
