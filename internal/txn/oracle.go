package txn

import (
	"fmt"
	"sort"
	"strings"

	"powerfail/internal/addr"
	"powerfail/internal/content"
	"powerfail/internal/obs"
)

// Verdict classifies one acknowledged transaction after crash recovery.
type Verdict int

// Verdicts.
const (
	// VerdictIntact: the commit record survived and every page is
	// recoverable (redo from a durable log record, or already at home).
	VerdictIntact Verdict = iota
	// VerdictLostCommit: the commit was acknowledged to the application
	// but no durable commit record exists — recovery rolls the
	// transaction back. The application-level analog of the paper's false
	// write acknowledge.
	VerdictLostCommit
	// VerdictTorn: the commit record survived but one or more pages are
	// unrecoverable — redo cannot complete and atomicity is broken.
	VerdictTorn
	// VerdictOutOfOrder: a lost commit with a later acknowledged commit
	// whose record did survive — durability was reordered across the
	// barrier, the transaction-granularity form of the paper's
	// unserializable writes. With several streams the reordering can span
	// streams: the later commit may belong to a different stream.
	VerdictOutOfOrder
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case VerdictIntact:
		return "intact"
	case VerdictLostCommit:
		return "lost-commit"
	case VerdictTorn:
		return "torn"
	case VerdictOutOfOrder:
		return "out-of-order"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// RecoveryPolicy selects how a recovery implementation scans the log.
// The oracle judges every fault cycle under ALL policies on the same
// observed device state (the ablation); Config.Policy picks which one
// the headline stats reflect.
type RecoveryPolicy int

// Recovery policies.
const (
	// HoleTolerant replays every durable record in the scanned region: a
	// valid record past a torn slot still counts. This is the best any
	// recovery implementation could do — it measures what the device
	// actually kept.
	HoleTolerant RecoveryPolicy = iota
	// StrictScan stops each stream's scan at the first torn slot, the way
	// a classic sequential log scan does: everything behind the tear is
	// unreachable even if it is durable on media. The losses it adds over
	// HoleTolerant are exactly the durable-but-unreachable commits.
	StrictScan

	// NumRecoveryPolicies sizes per-policy arrays.
	NumRecoveryPolicies = 2
)

// String implements fmt.Stringer.
func (p RecoveryPolicy) String() string {
	switch p {
	case HoleTolerant:
		return "hole-tolerant"
	case StrictScan:
		return "strict-scan"
	default:
		return fmt.Sprintf("RecoveryPolicy(%d)", int(p))
	}
}

// MarshalJSON renders the policy by name.
func (p RecoveryPolicy) MarshalJSON() ([]byte, error) { return []byte(`"` + p.String() + `"`), nil }

// UnmarshalJSON parses a policy name.
func (p *RecoveryPolicy) UnmarshalJSON(data []byte) error {
	switch string(data) {
	case `"hole-tolerant"`:
		*p = HoleTolerant
	case `"strict-scan"`:
		*p = StrictScan
	default:
		return fmt.Errorf("txn: unknown recovery policy %s", data)
	}
	return nil
}

// Stats aggregates the engine and oracle counters across an experiment.
// The verdict fields (Evaluated through ScanPages) are those of one
// recovery policy — the Policy field names it; Engine.StatsFor returns
// the same engine counters with another policy's verdicts.
type Stats struct {
	// Policy is the recovery policy the verdict fields below were judged
	// under.
	Policy RecoveryPolicy `json:"policy"`

	// Started counts transactions the engine began; Committed counts
	// commits acknowledged to the application; Retired counts
	// transactions made fully durable by a checkpoint (never judged).
	Started   int64 `json:"started"`
	Committed int64 `json:"committed"`
	Retired   int64 `json:"retired"`

	// Evaluated is the number of acknowledged transactions judged by the
	// oracle at fault cycles; the four verdict classes partition it.
	Evaluated   int64 `json:"evaluated"`
	Intact      int64 `json:"intact"`
	LostCommits int64 `json:"lost_commits"`
	Torn        int64 `json:"torn"`
	OutOfOrder  int64 `json:"out_of_order"`

	// Unacked counts transactions in flight (not yet acknowledged) when a
	// cut landed; they carry no durability promise and are not failures.
	Unacked int64 `json:"unacked"`

	// OldestLostSeq is the smallest commit sequence number among all
	// lost/torn/out-of-order transactions (0 when nothing was lost): how
	// far back the damage reaches. Sequence spaces are per stream, so
	// with several streams this is the minimum across them.
	OldestLostSeq uint64 `json:"oldest_lost_seq"`

	// RecoveryScans counts oracle runs; ScanPages sums the log pages each
	// scan read under this policy (a strict scan stops at the first torn
	// slot, so its scans are shorter).
	RecoveryScans int64 `json:"recovery_scans"`
	ScanPages     int64 `json:"scan_pages"`

	Checkpoints int64 `json:"checkpoints"`
	Flushes     int64 `json:"flushes"`
	LogAppends  int64 `json:"log_appends"`
	HomeWrites  int64 `json:"home_writes"`
}

// Losses returns the transactions whose durability promise was broken.
func (s Stats) Losses() int64 { return s.LostCommits + s.Torn + s.OutOfOrder }

// String renders a compact summary.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "txn[%s]: %d committed (%d retired), %d evaluated: %d intact, %d lost-commit, %d torn, %d out-of-order; %d unacked",
		s.Policy, s.Committed, s.Retired, s.Evaluated, s.Intact, s.LostCommits, s.Torn, s.OutOfOrder, s.Unacked)
	if s.OldestLostSeq > 0 {
		fmt.Fprintf(&b, "; oldest lost seq %d", s.OldestLostSeq)
	}
	return b.String()
}

// policyFold accumulates one policy's verdicts across fault cycles.
type policyFold struct {
	evaluated     int64
	intact        int64
	lostCommits   int64
	torn          int64
	outOfOrder    int64
	scanPages     int64
	oldestLostSeq uint64
}

// StatsFor returns the experiment counters with the verdict fields of
// the given recovery policy.
func (e *Engine) StatsFor(p RecoveryPolicy) Stats {
	s := e.stats
	f := e.folds[p]
	s.Policy = p
	s.Evaluated = f.evaluated
	s.Intact = f.intact
	s.LostCommits = f.lostCommits
	s.Torn = f.torn
	s.OutOfOrder = f.outOfOrder
	s.ScanPages = f.scanPages
	s.OldestLostSeq = f.oldestLostSeq
	return s
}

// Stats returns a snapshot of the engine's counters under the primary
// recovery policy (Config.Policy).
func (e *Engine) Stats() Stats { return e.StatsFor(e.cfg.Policy) }

// observation is the post-recovery content of one page.
type observation struct {
	fp  content.Fingerprint
	err error
	ok  bool
}

// CycleVerdicts is one recovery policy's outcome for one oracle run: the
// per-fault-cycle verdict counts, reported next to the block-level
// PerFault breakdown.
type CycleVerdicts struct {
	Evaluated   int `json:"evaluated"`
	Intact      int `json:"intact"`
	LostCommits int `json:"lost_commits"`
	Torn        int `json:"torn"`
	OutOfOrder  int `json:"out_of_order"`
	Unacked     int `json:"unacked"`
	ScanPages   int `json:"scan_pages"`
}

// Losses returns the cycle's broken durability promises.
func (c CycleVerdicts) Losses() int { return c.LostCommits + c.Torn + c.OutOfOrder }

// CycleOutcome is the outcome of one oracle run: the same observed
// post-fault state judged under every recovery policy. The embedded
// CycleVerdicts are the primary policy's (Config.Policy), so existing
// consumers read the headline numbers directly; Policies carries the
// full ablation, indexed by RecoveryPolicy.
type CycleOutcome struct {
	CycleVerdicts
	Policies [NumRecoveryPolicies]CycleVerdicts `json:"policies"`
}

// Unreachable returns the commits the strict scan abandoned even though
// their records were durable on media: the strict-scan losses minus the
// hole-tolerant losses. It is never negative — strict durable sets are
// subsets of hole-tolerant ones.
func (c CycleOutcome) Unreachable() int {
	return c.Policies[StrictScan].Losses() - c.Policies[HoleTolerant].Losses()
}

// RecoveryReads returns the pages the oracle needs after the device
// recovered: every stream's log partition up to its generation
// high-water mark (the recovery scan), then every ledger transaction's
// home pages. The engine stops producing workload IOs until
// FinishRecovery. Order is deterministic; duplicates are removed.
func (e *Engine) RecoveryReads() []addr.LPN {
	e.recovering = true
	e.obs = make(map[addr.LPN]observation)
	seen := make(map[addr.LPN]bool)
	var out []addr.LPN
	for _, st := range e.streams {
		for rel := 0; rel < st.highWater; rel++ {
			lpn := e.logSlotLPN(st.base + rel)
			if !seen[lpn] {
				seen[lpn] = true
				out = append(out, lpn)
			}
		}
	}
	for _, t := range e.ledger {
		for _, p := range t.pages {
			if !seen[p.homeLPN] {
				seen[p.homeLPN] = true
				out = append(out, p.homeLPN)
			}
		}
	}
	return out
}

// Observe records the post-recovery content of one page (one page per
// call). A read that kept failing is recorded with its error and treated
// as unreadable.
func (e *Engine) Observe(lpn addr.LPN, fp content.Fingerprint, err error) {
	e.obs[lpn] = observation{fp: fp, err: err, ok: err == nil}
}

// replaySets is what one policy's log scan recovered: the commit and
// data records it reached, and how many log pages it read.
type replaySets struct {
	commits map[uint64]bool            // txn id -> commit record reached
	data    map[uint64]map[uint32]bool // txn id -> page index -> record reached
	scanned int
}

// slotDurable reports whether the absolute log slot read back as exactly
// the record the stream wrote there in its current generation, returning
// the record bytes when it did.
func (e *Engine) slotDurable(st *wstream, abs int) ([]byte, bool) {
	ob, ok := e.obs[e.logSlotLPN(abs)]
	if !ok || !ob.ok {
		return nil, false // unread or unreadable: torn slot
	}
	h := e.slots[abs]
	var cur *slotWrite
	for i := len(h) - 1; i >= 0; i-- {
		if h[i].gen == st.gen {
			cur = &h[i]
			break // latest current-generation write
		}
	}
	if cur == nil || ob.fp != cur.fp {
		return nil, false // stale previous content or corruption: torn slot
	}
	return cur.bytes, true
}

// replay scans every stream's partition under the given policy and
// rebuilds the redo and commit sets a recovery pass would see. The
// strict policy stops each stream's scan at the first torn slot (the
// stopping slot counts as read); hole-tolerant reads the whole scan set.
func (e *Engine) replay(policy RecoveryPolicy) replaySets {
	sets := replaySets{
		commits: make(map[uint64]bool),
		data:    make(map[uint64]map[uint32]bool),
	}
	for _, st := range e.streams {
		for rel := 0; rel < st.highWater; rel++ {
			sets.scanned++
			b, ok := e.slotDurable(st, st.base+rel)
			if !ok {
				if policy == StrictScan {
					break // everything behind the tear is unreachable
				}
				continue
			}
			rec, err := DecodeRecord(b)
			if err != nil {
				continue // cannot happen for engine-encoded records; defensive
			}
			switch rec.Type {
			case RecCommit:
				sets.commits[rec.Txn] = true
			case RecData:
				m := sets.data[rec.Txn]
				if m == nil {
					m = make(map[uint32]bool)
					sets.data[rec.Txn] = m
				}
				m[rec.Count] = true
			}
		}
	}
	return sets
}

// judge classifies the acknowledged transactions (in global ack order)
// against one policy's replay sets. laterSurvives[i] reports whether any
// transaction acknowledged after i kept its commit record — the witness
// that turns a lost commit into an out-of-order loss.
func (e *Engine) judge(acked []*Txn, sets replaySets) (CycleVerdicts, uint64) {
	var out CycleVerdicts
	out.ScanPages = sets.scanned
	laterSurvives := make([]bool, len(acked))
	for i := len(acked) - 2; i >= 0; i-- {
		laterSurvives[i] = laterSurvives[i+1] || sets.commits[acked[i+1].id]
	}
	oldestLost := uint64(0)
	for i, t := range acked {
		out.Evaluated++
		var v Verdict
		switch {
		case !sets.commits[t.id]:
			v = VerdictLostCommit
			if laterSurvives[i] {
				v = VerdictOutOfOrder
			}
		default:
			v = VerdictIntact
			for pi, p := range t.pages {
				redo := sets.data[t.id][uint32(pi)]
				home := false
				if ob, ok := e.obs[p.homeLPN]; ok && ob.ok && ob.fp == p.fp {
					home = true
				}
				if !redo && !home {
					v = VerdictTorn
					break
				}
			}
		}
		switch v {
		case VerdictIntact:
			out.Intact++
		case VerdictLostCommit:
			out.LostCommits++
		case VerdictTorn:
			out.Torn++
		case VerdictOutOfOrder:
			out.OutOfOrder++
		}
		if v != VerdictIntact && (oldestLost == 0 || t.commitSeq < oldestLost) {
			oldestLost = t.commitSeq
		}
	}
	return out, oldestLost
}

// FinishRecovery replays the observed log exactly as a recovery pass
// would — decode every reachable durable record in slot order, rebuild
// the redo and commit sets — once per recovery policy, then judges each
// acknowledged ledger transaction under each policy, folds the verdicts
// into the per-policy stats, resets the engine to fresh partition
// generations, and returns the cycle's breakdown.
//
// Both policies see the identical observations, so the outcome is a true
// ablation: the strict scan can only lose more (its durable sets are
// subsets of the hole-tolerant ones), and the difference is exactly the
// durable-but-unreachable commits a first-tear-stops scan abandons.
func (e *Engine) FinishRecovery() CycleOutcome {
	var out CycleOutcome

	var acked []*Txn
	unacked := 0
	for _, t := range e.ledger {
		if t.acked {
			acked = append(acked, t)
		} else {
			unacked++
		}
	}
	// Judge in the order durability promises were made (global ack
	// order). The ledger appends at begin time, which with several
	// streams is not ack order.
	sort.Slice(acked, func(i, j int) bool { return acked[i].ackIdx < acked[j].ackIdx })

	for p := RecoveryPolicy(0); p < NumRecoveryPolicies; p++ {
		sets := e.replay(p)
		verdicts, oldestLost := e.judge(acked, sets)
		verdicts.Unacked = unacked
		out.Policies[p] = verdicts

		f := &e.folds[p]
		f.evaluated += int64(verdicts.Evaluated)
		f.intact += int64(verdicts.Intact)
		f.lostCommits += int64(verdicts.LostCommits)
		f.torn += int64(verdicts.Torn)
		f.outOfOrder += int64(verdicts.OutOfOrder)
		f.scanPages += int64(verdicts.ScanPages)
		if oldestLost > 0 && (f.oldestLostSeq == 0 || oldestLost < f.oldestLostSeq) {
			f.oldestLostSeq = oldestLost
		}
	}
	out.CycleVerdicts = out.Policies[e.cfg.Policy]

	e.stats.Unacked += int64(unacked)
	e.stats.RecoveryScans++
	e.tele.scans.Inc()
	e.tele.scanPages.Add(int64(out.CycleVerdicts.ScanPages))
	e.tele.sc.Instant(e.k.Now(), obs.KindScan, "recovery_scan", int64(out.CycleVerdicts.ScanPages))

	// Reset: the application restarts with an empty ledger and fresh
	// partition generations; in-flight state died with the power.
	e.ledger = nil
	for _, st := range e.streams {
		st.cur = nil
		st.gen++
		st.cursor = 0
		st.highWater = 0
		st.sinceCkpt = 0
		st.ckptDue, st.ckptRecDue = false, false
	}
	e.rr = 0
	e.homeQ = nil
	e.homeRetry = nil
	e.waiters = nil
	e.flushWanted, e.flushCover = false, nil
	e.inFlush = false
	e.outstanding = 0
	e.recovering = false
	e.obs = make(map[addr.LPN]observation)
	return out
}
