package txn

import (
	"fmt"
	"strings"

	"powerfail/internal/addr"
	"powerfail/internal/content"
)

// Verdict classifies one acknowledged transaction after crash recovery.
type Verdict int

// Verdicts.
const (
	// VerdictIntact: the commit record survived and every page is
	// recoverable (redo from a durable log record, or already at home).
	VerdictIntact Verdict = iota
	// VerdictLostCommit: the commit was acknowledged to the application
	// but no durable commit record exists — recovery rolls the
	// transaction back. The application-level analog of the paper's false
	// write acknowledge.
	VerdictLostCommit
	// VerdictTorn: the commit record survived but one or more pages are
	// unrecoverable — redo cannot complete and atomicity is broken.
	VerdictTorn
	// VerdictOutOfOrder: a lost commit with a later acknowledged commit
	// whose record did survive — durability was reordered across the
	// barrier, the transaction-granularity form of the paper's
	// unserializable writes.
	VerdictOutOfOrder
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case VerdictIntact:
		return "intact"
	case VerdictLostCommit:
		return "lost-commit"
	case VerdictTorn:
		return "torn"
	case VerdictOutOfOrder:
		return "out-of-order"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Stats aggregates the engine and oracle counters across an experiment.
type Stats struct {
	// Started counts transactions the engine began; Committed counts
	// commits acknowledged to the application; Retired counts
	// transactions made fully durable by a checkpoint (never judged).
	Started   int64 `json:"started"`
	Committed int64 `json:"committed"`
	Retired   int64 `json:"retired"`

	// Evaluated is the number of acknowledged transactions judged by the
	// oracle at fault cycles; the four verdict classes partition it.
	Evaluated   int64 `json:"evaluated"`
	Intact      int64 `json:"intact"`
	LostCommits int64 `json:"lost_commits"`
	Torn        int64 `json:"torn"`
	OutOfOrder  int64 `json:"out_of_order"`

	// Unacked counts transactions in flight (not yet acknowledged) when a
	// cut landed; they carry no durability promise and are not failures.
	Unacked int64 `json:"unacked"`

	// OldestLostSeq is the smallest commit sequence number among all
	// lost/torn/out-of-order transactions (0 when nothing was lost): how
	// far back the damage reaches.
	OldestLostSeq uint64 `json:"oldest_lost_seq"`

	// RecoveryScans counts oracle runs; ScanPages sums the log pages each
	// scan read (the recovery scan length).
	RecoveryScans int64 `json:"recovery_scans"`
	ScanPages     int64 `json:"scan_pages"`

	Checkpoints int64 `json:"checkpoints"`
	Flushes     int64 `json:"flushes"`
	LogAppends  int64 `json:"log_appends"`
	HomeWrites  int64 `json:"home_writes"`
}

// Losses returns the transactions whose durability promise was broken.
func (s Stats) Losses() int64 { return s.LostCommits + s.Torn + s.OutOfOrder }

// String renders a compact summary.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "txn: %d committed (%d retired), %d evaluated: %d intact, %d lost-commit, %d torn, %d out-of-order; %d unacked",
		s.Committed, s.Retired, s.Evaluated, s.Intact, s.LostCommits, s.Torn, s.OutOfOrder, s.Unacked)
	if s.OldestLostSeq > 0 {
		fmt.Fprintf(&b, "; oldest lost seq %d", s.OldestLostSeq)
	}
	return b.String()
}

// observation is the post-recovery content of one page.
type observation struct {
	fp  content.Fingerprint
	err error
	ok  bool
}

// CycleVerdicts is the outcome of one oracle run: the per-fault-cycle
// slice of Stats, reported next to the block-level PerFault breakdown.
type CycleVerdicts struct {
	Evaluated   int `json:"evaluated"`
	Intact      int `json:"intact"`
	LostCommits int `json:"lost_commits"`
	Torn        int `json:"torn"`
	OutOfOrder  int `json:"out_of_order"`
	Unacked     int `json:"unacked"`
	ScanPages   int `json:"scan_pages"`
}

// RecoveryReads returns the pages the oracle needs after the device
// recovered: the log region up to the generation high-water mark (the
// recovery scan), then every ledger transaction's home pages. The engine
// stops producing workload IOs until FinishRecovery. Order is
// deterministic; duplicates are removed.
func (e *Engine) RecoveryReads() []addr.LPN {
	e.recovering = true
	e.obs = make(map[addr.LPN]observation)
	seen := make(map[addr.LPN]bool)
	out := make([]addr.LPN, 0, e.highWater)
	for slot := 0; slot < e.highWater; slot++ {
		lpn := e.logSlotLPN(slot)
		if !seen[lpn] {
			seen[lpn] = true
			out = append(out, lpn)
		}
	}
	for _, t := range e.ledger {
		for _, p := range t.pages {
			if !seen[p.homeLPN] {
				seen[p.homeLPN] = true
				out = append(out, p.homeLPN)
			}
		}
	}
	return out
}

// Observe records the post-recovery content of one page (one page per
// call). A read that kept failing is recorded with its error and treated
// as unreadable.
func (e *Engine) Observe(lpn addr.LPN, fp content.Fingerprint, err error) {
	e.obs[lpn] = observation{fp: fp, err: err, ok: err == nil}
}

// FinishRecovery replays the observed log exactly as a recovery pass
// would — decode every durable record in slot order, rebuild the redo and
// commit sets — then judges each acknowledged ledger transaction, folds
// the verdicts into the stats, resets the engine to a fresh log
// generation, and returns the cycle's breakdown.
//
// The replay is hole-tolerant: a valid record past a torn slot still
// counts, so the verdicts measure what the device actually kept (the
// best any recovery implementation could do), not a particular scan
// policy's pessimism.
func (e *Engine) FinishRecovery() CycleVerdicts {
	var out CycleVerdicts
	out.ScanPages = e.highWater

	// Pass 1: replay the log region. A slot is durable iff the content
	// read back is exactly the record the engine wrote there in the
	// current generation; its decoded bytes then join the redo state.
	durableCommits := make(map[uint64]bool)         // txn id -> commit record survived
	durableData := make(map[uint64]map[uint32]bool) // txn id -> page index -> record survived
	for slot := 0; slot < e.highWater; slot++ {
		ob, ok := e.obs[e.logSlotLPN(slot)]
		if !ok || !ob.ok {
			continue // unread or unreadable: torn slot
		}
		h := e.slots[slot]
		var cur *slotWrite
		for i := len(h) - 1; i >= 0; i-- {
			if h[i].gen == e.gen {
				cur = &h[i]
				break // latest current-generation write
			}
		}
		if cur == nil || ob.fp != cur.fp {
			continue // stale previous content or corruption: torn slot
		}
		rec, err := DecodeRecord(cur.bytes)
		if err != nil {
			continue // cannot happen for engine-encoded records; defensive
		}
		switch rec.Type {
		case RecCommit:
			durableCommits[rec.Txn] = true
		case RecData:
			m := durableData[rec.Txn]
			if m == nil {
				m = make(map[uint32]bool)
				durableData[rec.Txn] = m
			}
			m[rec.Count] = true
		}
	}

	// Pass 2: judge the ledger in commit-sequence order. laterSurvives[i]
	// reports whether any transaction acknowledged after i kept its
	// commit record — the witness that turns a lost commit into an
	// out-of-order loss.
	var acked []*Txn
	for _, t := range e.ledger {
		if t.acked {
			acked = append(acked, t)
		} else {
			out.Unacked++
		}
	}
	laterSurvives := make([]bool, len(acked))
	for i := len(acked) - 2; i >= 0; i-- {
		laterSurvives[i] = laterSurvives[i+1] || durableCommits[acked[i+1].id]
	}
	oldestLost := uint64(0)
	for i, t := range acked {
		out.Evaluated++
		var v Verdict
		switch {
		case !durableCommits[t.id]:
			v = VerdictLostCommit
			if laterSurvives[i] {
				v = VerdictOutOfOrder
			}
		default:
			v = VerdictIntact
			for i, p := range t.pages {
				redo := durableData[t.id][uint32(i)]
				home := false
				if ob, ok := e.obs[p.homeLPN]; ok && ob.ok && ob.fp == p.fp {
					home = true
				}
				if !redo && !home {
					v = VerdictTorn
					break
				}
			}
		}
		switch v {
		case VerdictIntact:
			out.Intact++
		case VerdictLostCommit:
			out.LostCommits++
		case VerdictTorn:
			out.Torn++
		case VerdictOutOfOrder:
			out.OutOfOrder++
		}
		if v != VerdictIntact && (oldestLost == 0 || t.commitSeq < oldestLost) {
			oldestLost = t.commitSeq
		}
	}

	// Fold into the running stats.
	e.stats.Evaluated += int64(out.Evaluated)
	e.stats.Intact += int64(out.Intact)
	e.stats.LostCommits += int64(out.LostCommits)
	e.stats.Torn += int64(out.Torn)
	e.stats.OutOfOrder += int64(out.OutOfOrder)
	e.stats.Unacked += int64(out.Unacked)
	e.stats.RecoveryScans++
	e.stats.ScanPages += int64(out.ScanPages)
	if oldestLost > 0 && (e.stats.OldestLostSeq == 0 || oldestLost < e.stats.OldestLostSeq) {
		e.stats.OldestLostSeq = oldestLost
	}

	// Reset: the application restarts with an empty ledger and a fresh
	// log generation; in-flight state died with the power.
	e.ledger = nil
	e.cur = nil
	e.homeQ = nil
	e.homeRetry = nil
	e.waiters = nil
	e.flushWanted, e.flushCover = false, nil
	e.inFlush = false
	e.ckptDue, e.ckptRecDue = false, false
	e.outstanding = 0
	e.gen++
	e.cursor = 0
	e.highWater = 0
	e.sinceCkpt = 0
	e.recovering = false
	e.obs = make(map[addr.LPN]observation)
	return out
}
