package txn

import (
	"bytes"
	"testing"
)

// FuzzDecodeRecord: corrupted or truncated log bytes must never panic and
// must never be mistaken for a commit. Two properties are enforced:
//
//  1. DecodeRecord returns (Record, error) for arbitrary input without
//     panicking — a torn log page classifies as torn, never crashes
//     recovery.
//  2. Canonical form: any input that decodes successfully re-encodes to
//     exactly its first RecordSize bytes. A forged or bit-damaged buffer
//     therefore cannot alias a different valid record, so the oracle's
//     fingerprint comparison and the byte-level decoder always agree.
func FuzzDecodeRecord(f *testing.F) {
	// Seed corpus: every record type, the zero record, truncations, and
	// targeted corruptions of a valid commit record.
	seeds := [][]byte{
		EncodeRecord(Record{Type: RecData, Seq: 1, Txn: 2, HomeLPN: 3, Payload: 4, Count: 0}),
		EncodeRecord(Record{Type: RecData, Seq: 1, Txn: 2, HomeLPN: 3, Payload: 4, Count: 0, Stream: 7}),
		EncodeRecord(Record{Type: RecCommit, Seq: 9, Txn: 2, Count: 4}),
		EncodeRecord(Record{Type: RecCommit, Seq: 9, Txn: 2, Count: 4, Stream: MaxStreams - 1}),
		EncodeRecord(Record{Type: RecCheckpoint, Seq: 10, Count: 7, Stream: 1}),
		EncodeRecord(Record{Stream: ^uint32(0)}), // stream ids beyond the engine bound still round-trip
		EncodeRecord(Record{}),
		nil,
		[]byte("PFWL"),
		make([]byte, RecordSize),
		make([]byte, RecordSize+13),
	}
	commit := EncodeRecord(Record{Type: RecCommit, Seq: 77, Txn: 5, Count: 2, Stream: 3})
	for i := 0; i < RecordSize; i += 7 {
		mut := append([]byte(nil), commit...)
		mut[i] ^= 0x40
		seeds = append(seeds, mut)
	}
	seeds = append(seeds, commit[:RecordSize-8]) // checksum torn off
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, b []byte) {
		rec, err := DecodeRecord(b)
		if err != nil {
			return // rejected input: fine, recovery treats it as torn
		}
		if rec.Type > RecCheckpoint {
			t.Fatalf("decoded an unknown record type %d", rec.Type)
		}
		re := EncodeRecord(rec)
		if !bytes.Equal(re, b[:RecordSize]) {
			t.Fatalf("accepted non-canonical bytes:\n in  %x\n out %x", b[:RecordSize], re)
		}
	})
}
