package txn

import (
	"testing"

	"powerfail/internal/addr"
	"powerfail/internal/content"
	"powerfail/internal/sim"
)

// --- record codec ---

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{Type: RecData, Seq: 7, Txn: 3, HomeLPN: 9001, Payload: 0xdeadbeef, Count: 2},
		{Type: RecData, Seq: 7, Txn: 3, HomeLPN: 9001, Payload: 0xdeadbeef, Count: 2, Stream: 5},
		{Type: RecCommit, Seq: 8, Txn: 3, Count: 4, Stream: 63},
		{Type: RecCheckpoint, Seq: 9, Count: 17, Stream: 1},
		{},
	}
	for _, r := range recs {
		b := EncodeRecord(r)
		if len(b) != RecordSize {
			t.Fatalf("encoded %v to %d bytes, want %d", r, len(b), RecordSize)
		}
		got, err := DecodeRecord(b)
		if err != nil {
			t.Fatalf("decode(encode(%v)): %v", r, err)
		}
		if got != r {
			t.Fatalf("round trip changed the record: %v -> %v", r, got)
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	good := EncodeRecord(Record{Type: RecCommit, Seq: 42, Txn: 7, Count: 3})

	if _, err := DecodeRecord(good[:RecordSize-1]); err != ErrTruncated {
		t.Fatalf("truncated: err = %v", err)
	}
	if _, err := DecodeRecord(nil); err != ErrTruncated {
		t.Fatalf("nil: err = %v", err)
	}

	// Any single bit flip must fail decoding: either the checksum breaks,
	// or the flipped bit is in the checksum itself.
	for i := 0; i < RecordSize; i++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), good...)
			mut[i] ^= 1 << bit
			if _, err := DecodeRecord(mut); err == nil {
				t.Fatalf("bit flip at byte %d bit %d decoded cleanly", i, bit)
			}
		}
	}
}

func TestDecodeIgnoresTrailingBytes(t *testing.T) {
	r := Record{Type: RecData, Seq: 1, Txn: 2, HomeLPN: 3, Payload: 4, Count: 5}
	padded := append(EncodeRecord(r), make([]byte, 100)...)
	got, err := DecodeRecord(padded)
	if err != nil || got != r {
		t.Fatalf("padded decode: %v, %v", got, err)
	}
}

// --- engine harness ---
//
// The harness drives the engine synchronously against a two-tier content
// store: writes land in the volatile tier, flushes promote everything to
// the durable tier, and a simulated cut discards the volatile tier. Tests
// then hand-pick what "survived" to pin each oracle verdict class.

type harness struct {
	t        *testing.T
	e        *Engine
	volatile map[addr.LPN]content.Fingerprint
	durable  map[addr.LPN]content.Fingerprint
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	e, err := NewEngine(cfg, sim.New(), sim.NewRNG(99).Fork("txn"), 4096)
	if err != nil {
		t.Fatal(err)
	}
	return &harness{
		t:        t,
		e:        e,
		volatile: make(map[addr.LPN]content.Fingerprint),
		durable:  make(map[addr.LPN]content.Fingerprint),
	}
}

// step pulls one IO and completes it successfully.
func (h *harness) step() IO {
	h.t.Helper()
	io, ok := h.e.Next()
	if !ok {
		h.t.Fatal("engine stalled with zero outstanding IOs")
	}
	if io.Kind == IOFlush {
		for lpn, fp := range h.volatile {
			h.durable[lpn] = fp
		}
		h.volatile = make(map[addr.LPN]content.Fingerprint)
	} else {
		h.volatile[io.LPN] = io.Data.Page(0)
	}
	h.e.Done(io, nil)
	return io
}

func (h *harness) runUntilCommitted(n int64) {
	h.t.Helper()
	for i := 0; h.e.Stats().Committed < n; i++ {
		if i > 100000 {
			h.t.Fatalf("no progress toward %d commits", n)
		}
		h.step()
	}
}

// read returns what a post-cut read of lpn observes: the durable tier
// (the volatile tier died with the power).
func (h *harness) read(lpn addr.LPN) content.Fingerprint { return h.durable[lpn] }

// recover runs the oracle over the durable tier.
func (h *harness) recover() CycleOutcome {
	h.t.Helper()
	for _, lpn := range h.e.RecoveryReads() {
		h.e.Observe(lpn, h.read(lpn), nil)
	}
	return h.e.FinishRecovery()
}

// keep promotes one volatile page into the durable tier, simulating a
// page the device happened to persist before the cut.
func (h *harness) keep(lpn addr.LPN) {
	if fp, ok := h.volatile[lpn]; ok {
		h.durable[lpn] = fp
	}
}

// TestEngineFlushPerCommitAllIntact: with a flush behind every ACK, a cut
// at any commit boundary loses nothing.
func TestEngineFlushPerCommitAllIntact(t *testing.T) {
	cfg := Config{PagesPerTxn: 2, Barrier: FlushPerCommit, LogPages: 64, CheckpointEvery: 100}
	h := newHarness(t, cfg)
	h.runUntilCommitted(5)
	v := h.recover()
	if v.Evaluated != 5 || v.Intact != 5 {
		t.Fatalf("verdicts = %+v, want 5 intact of 5", v)
	}
	if got := h.e.Stats(); got.Losses() != 0 {
		t.Fatalf("losses: %s", got)
	}
}

// TestEngineNoFlushAllLost: nothing flushed, everything volatile — every
// acknowledged commit is a lost commit and none are out-of-order (no
// later commit survived either).
func TestEngineNoFlushAllLost(t *testing.T) {
	cfg := Config{PagesPerTxn: 2, Barrier: NoFlush, LogPages: 64, CheckpointEvery: 100}
	h := newHarness(t, cfg)
	h.runUntilCommitted(3)
	v := h.recover()
	if v.Evaluated != 3 || v.LostCommits != 3 || v.OutOfOrder != 0 {
		t.Fatalf("verdicts = %+v, want 3 lost commits", v)
	}
	if s := h.e.Stats(); s.OldestLostSeq == 0 {
		t.Fatalf("no oldest-lost sequence recorded: %s", s)
	}
}

// TestEngineOutOfOrderDurability: the device kept the third transaction's
// records but dropped the first two — the earlier acknowledged commits
// become out-of-order losses, the later one is intact.
func TestEngineOutOfOrderDurability(t *testing.T) {
	cfg := Config{PagesPerTxn: 2, Barrier: NoFlush, LogPages: 64, CheckpointEvery: 100}
	h := newHarness(t, cfg)
	h.runUntilCommitted(3)

	last := h.e.ledger[2]
	for _, p := range last.pages {
		h.keep(h.e.logSlotLPN(p.slot))
	}
	h.keep(h.e.logSlotLPN(last.commitSlot))

	v := h.recover()
	if v.Intact != 1 || v.OutOfOrder != 2 || v.LostCommits != 0 {
		t.Fatalf("verdicts = %+v, want 1 intact + 2 out-of-order", v)
	}
}

// TestEngineTornTransaction: the commit record survived but one data
// record did not (and its home page never landed) — atomicity is broken
// and the verdict is torn, not lost.
func TestEngineTornTransaction(t *testing.T) {
	cfg := Config{PagesPerTxn: 2, Barrier: NoFlush, LogPages: 64, CheckpointEvery: 100}
	h := newHarness(t, cfg)
	h.runUntilCommitted(1)

	tx := h.e.ledger[0]
	h.keep(h.e.logSlotLPN(tx.commitSlot))
	h.keep(h.e.logSlotLPN(tx.pages[0].slot)) // first data record survives, second does not

	v := h.recover()
	if v.Torn != 1 || v.LostCommits != 0 || v.Intact != 0 {
		t.Fatalf("verdicts = %+v, want exactly 1 torn", v)
	}
}

// TestEngineRedoFromHome: a data record died but the home write landed —
// the page is recoverable and the transaction stays intact.
func TestEngineRedoFromHome(t *testing.T) {
	cfg := Config{PagesPerTxn: 2, Barrier: NoFlush, LogPages: 64, CheckpointEvery: 100}
	h := newHarness(t, cfg)
	h.runUntilCommitted(1)
	// Drain the home writes of the acknowledged transaction.
	for h.e.Stats().HomeWrites < 2 {
		h.step()
	}

	tx := h.e.ledger[0]
	h.keep(h.e.logSlotLPN(tx.commitSlot))
	h.keep(h.e.logSlotLPN(tx.pages[0].slot))
	h.keep(tx.pages[1].homeLPN) // second page recovers from home instead of the log

	v := h.recover()
	if v.Intact != 1 {
		t.Fatalf("verdicts = %+v, want 1 intact via home recovery", v)
	}
}

// TestEngineGroupCommitAcksInBatches: commits acknowledge only when the
// shared flush lands, GroupEvery at a time; transactions committed but
// awaiting the group flush at a cut carry no promise (unacked).
func TestEngineGroupCommitAcksInBatches(t *testing.T) {
	cfg := Config{PagesPerTxn: 1, Barrier: GroupCommit, GroupEvery: 4, LogPages: 64, CheckpointEvery: 100}
	h := newHarness(t, cfg)
	h.runUntilCommitted(4)
	if got := h.e.Stats().Committed; got != 4 {
		t.Fatalf("committed %d mid-batch, want exactly the flushed group of 4", got)
	}
	if flushes := h.e.Stats().Flushes; flushes != 1 {
		t.Fatalf("flushes = %d, want 1 for the first group", flushes)
	}
	// Advance partway into the next group, then cut.
	for h.e.Stats().Started < 7 {
		h.step()
	}
	v := h.recover()
	if v.Unacked == 0 {
		t.Fatalf("no unacked transactions at a mid-group cut: %+v", v)
	}
	if v.Evaluated != 4 {
		t.Fatalf("evaluated %d, want the 4 acknowledged", v.Evaluated)
	}
}

// TestEngineSurvivesBarrierError: an errored commit-barrier flush outside
// a fault cycle (host-queue rejection, timeout) aborts the covered
// transaction instead of wedging the pipeline — the engine keeps
// committing afterwards and the aborted transaction is judged unacked.
func TestEngineSurvivesBarrierError(t *testing.T) {
	cfg := Config{PagesPerTxn: 2, Barrier: FlushPerCommit, LogPages: 64, CheckpointEvery: 100}
	h := newHarness(t, cfg)
	h.runUntilCommitted(1)

	// Fail the next barrier flush; everything else succeeds.
	failed := false
	for !failed {
		io, ok := h.e.Next()
		if !ok {
			t.Fatal("engine stalled before the flush")
		}
		if io.Kind == IOFlush {
			h.e.Done(io, ErrChecksum) // any error
			failed = true
		} else {
			h.volatile[io.LPN] = io.Data.Page(0)
			h.e.Done(io, nil)
		}
	}
	// The engine must still make progress to further commits.
	h.runUntilCommitted(3)
	v := h.recover()
	if v.Unacked != 1 {
		t.Fatalf("aborted transaction not judged unacked: %+v", v)
	}
	if v.Evaluated != 3 {
		t.Fatalf("evaluated %d, want the 3 acknowledged commits", v.Evaluated)
	}
}

// TestEngineRetriesFailedHomeWrite: a home write that errors is reissued
// until it lands, so the transaction can still retire at a checkpoint.
func TestEngineRetriesFailedHomeWrite(t *testing.T) {
	cfg := Config{PagesPerTxn: 2, Barrier: FlushPerCommit, LogPages: 64, CheckpointEvery: 1}
	h := newHarness(t, cfg)
	failedOnce := false
	for h.e.Stats().Checkpoints == 0 {
		io, ok := h.e.Next()
		if !ok {
			t.Fatal("engine stalled")
		}
		if io.Kind == IOHome && !failedOnce {
			failedOnce = true
			h.e.Done(io, ErrChecksum)
			continue
		}
		if io.Kind == IOFlush {
			for lpn, fp := range h.volatile {
				h.durable[lpn] = fp
			}
			h.volatile = make(map[addr.LPN]content.Fingerprint)
		} else {
			h.volatile[io.LPN] = io.Data.Page(0)
		}
		h.e.Done(io, nil)
	}
	if !failedOnce {
		t.Fatal("no home write was failed; test exercised nothing")
	}
	if got := h.e.Stats().Retired; got == 0 {
		t.Fatal("transaction with a retried home write never retired")
	}
	if len(h.e.ledger) != 0 {
		t.Fatalf("ledger holds %d transactions after checkpoint", len(h.e.ledger))
	}
}

// TestEngineCheckpointRetires: a checkpoint flushes, truncates the log
// and retires fully durable transactions so later faults never judge
// them; the scan high-water restarts from the checkpoint record.
func TestEngineCheckpointRetires(t *testing.T) {
	cfg := Config{PagesPerTxn: 2, Barrier: FlushPerCommit, LogPages: 64, CheckpointEvery: 2}
	h := newHarness(t, cfg)
	for h.e.Stats().Checkpoints == 0 {
		h.step()
	}
	s := h.e.Stats()
	if s.Retired < 2 {
		t.Fatalf("retired = %d after a checkpoint, want the checkpointed transactions", s.Retired)
	}
	if len(h.e.ledger) != 0 {
		t.Fatalf("ledger still holds %d transactions after truncation", len(h.e.ledger))
	}
	if cur := h.e.streams[0].cursor; cur > 2 {
		t.Fatalf("cursor = %d after truncation, want the checkpoint record slot region", cur)
	}
	// Everything was durable before truncation, so a cut right here must
	// evaluate nothing and lose nothing.
	v := h.recover()
	if v.Evaluated != 0 || v.LostCommits != 0 {
		t.Fatalf("post-checkpoint verdicts = %+v", v)
	}
}

// TestEngineCheckpointAppliesPartialGroupFirst: a forced checkpoint (log
// wrap) while a partial group awaits its barrier must flush and apply
// that group before truncating — the truncation reuses log slots, so it
// may only retire transactions whose home writes have landed. A cut
// right after the checkpoint must lose nothing.
func TestEngineCheckpointAppliesPartialGroupFirst(t *testing.T) {
	cfg := Config{PagesPerTxn: 2, Barrier: GroupCommit, GroupEvery: 100, LogPages: 12, CheckpointEvery: 1000}
	h := newHarness(t, cfg)
	for h.e.Stats().Checkpoints == 0 {
		h.step()
	}
	s := h.e.Stats()
	if s.Committed != 3 || s.Retired != 3 {
		t.Fatalf("committed=%d retired=%d after the forced checkpoint, want 3/3", s.Committed, s.Retired)
	}
	if len(h.e.ledger) != 0 {
		t.Fatalf("truncated with %d unapplied transactions in the ledger", len(h.e.ledger))
	}
	v := h.recover()
	if v.Evaluated != 0 || v.LostCommits != 0 || v.Torn != 0 {
		t.Fatalf("cut after checkpoint lost data: %+v", v)
	}
}

// TestEngineLogWrapForcesCheckpoint: when the append cursor approaches
// the end of the log region the engine checkpoints instead of starting a
// transaction, so the log never overflows its region.
func TestEngineLogWrapForcesCheckpoint(t *testing.T) {
	cfg := Config{PagesPerTxn: 2, Barrier: FlushPerCommit, LogPages: 8, CheckpointEvery: 1000}
	h := newHarness(t, cfg)
	var maxLPN addr.LPN
	for i := 0; i < 2000; i++ {
		io := h.step()
		if io.Kind != IOHome && io.LPN > maxLPN {
			maxLPN = io.LPN
		}
	}
	if h.e.Stats().Checkpoints == 0 {
		t.Fatal("log wrapped without a checkpoint")
	}
	if maxLPN >= addr.LPN(cfg.LogPages) {
		t.Fatalf("log write at LPN %d escaped the %d-page log region", maxLPN, cfg.LogPages)
	}
}

// TestEngineStaleSlotDetected: after a checkpoint truncates, the log
// slots still hold the previous generation's perfectly valid records on
// media. A post-truncation transaction whose writes die in the volatile
// cache must read as lost — the old-generation bytes beneath it can never
// be mistaken for the new commit.
func TestEngineStaleSlotDetected(t *testing.T) {
	cfg := Config{PagesPerTxn: 1, Barrier: NoFlush, LogPages: 16, CheckpointEvery: 1}
	h := newHarness(t, cfg)
	// Transaction 1 commits, and its checkpoint flushes generation-0
	// records into the durable tier, then truncates the log.
	for h.e.Stats().Checkpoints == 0 {
		h.step()
	}
	// Transaction 2 reuses the same slots in the new generation, but with
	// NoFlush nothing of it ever reaches the durable tier.
	h.runUntilCommitted(2)
	h.volatile = make(map[addr.LPN]content.Fingerprint) // cut
	v := h.recover()
	if v.Evaluated != 1 || v.LostCommits != 1 {
		t.Fatalf("stale old-generation slots misread as durable: %+v", v)
	}
}

// TestConfigValidation rejects impossible tunings.
func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{PagesPerTxn: -1, LogPages: 64, GroupEvery: 1, CheckpointEvery: 1},
		{PagesPerTxn: 4, LogPages: 5, GroupEvery: 1, CheckpointEvery: 1},
		{PagesPerTxn: 4, LogPages: 64, GroupEvery: -2, CheckpointEvery: 1},
		{PagesPerTxn: 4, LogPages: 64, GroupEvery: 1, CheckpointEvery: -3},
		{PagesPerTxn: 4, LogPages: 64, GroupEvery: 1, CheckpointEvery: 1, Barrier: Barrier(9)},
		{PagesPerTxn: 4, LogPages: 64, GroupEvery: 1, CheckpointEvery: 1, Streams: -1},
		{PagesPerTxn: 4, LogPages: 64, GroupEvery: 1, CheckpointEvery: 1, Streams: MaxStreams + 1},
		// 8 streams over 64 pages leave 8-slot partitions: too small for a
		// 63-page transaction plus commit and checkpoint records.
		{PagesPerTxn: 63, LogPages: 512, GroupEvery: 1, CheckpointEvery: 1, Streams: 8},
		// Exactly PagesPerTxn+2 slots per partition livelocks in a
		// checkpoint storm: a fresh generation starts with a checkpoint
		// record in slot 0, leaving one slot too few for a transaction.
		{PagesPerTxn: 4, LogPages: 6, GroupEvery: 1, CheckpointEvery: 1},
		{PagesPerTxn: 4, LogPages: 12, GroupEvery: 1, CheckpointEvery: 1, Streams: 2},
		{PagesPerTxn: 4, LogPages: 64, GroupEvery: 1, CheckpointEvery: 1, Policy: RecoveryPolicy(7)},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	if _, err := NewEngine(DefaultConfig(), sim.New(), sim.NewRNG(1), 100); err == nil {
		t.Error("engine accepted a device smaller than its log region")
	}
}

// TestMinimalPartitionMakesProgress: the smallest partition Validate
// accepts (PagesPerTxn+3 slots) keeps committing across generations —
// one transaction per checkpoint, but never a livelock.
func TestMinimalPartitionMakesProgress(t *testing.T) {
	cfg := Config{PagesPerTxn: 2, Barrier: FlushPerCommit, LogPages: 5, GroupEvery: 1, CheckpointEvery: 1000}
	h := newHarness(t, cfg)
	h.runUntilCommitted(6)
	s := h.e.Stats()
	if s.Checkpoints < 4 {
		t.Fatalf("checkpoints = %d after 6 commits in a minimal partition, want one per transaction", s.Checkpoints)
	}
}

// --- multi-stream WAL ---

// TestMultiStreamPartitionsAndInterleaving: with several streams each
// log/commit record lands in its stream's partition, the on-media record
// carries the stream id, every stream makes progress, and the issue order
// interleaves streams rather than draining one pipeline at a time.
func TestMultiStreamPartitionsAndInterleaving(t *testing.T) {
	cfg := Config{Streams: 4, PagesPerTxn: 2, Barrier: NoFlush, LogPages: 64, CheckpointEvery: 1000}
	h := newHarness(t, cfg)
	per := h.e.perStream
	if per != 16 {
		t.Fatalf("partition size = %d, want 16", per)
	}
	var order []int // partition of each log-region write, in issue order
	for len(order) < 40 {
		io := h.step()
		if io.Kind == IOLog || io.Kind == IOCommit || io.Kind == IOCheckpoint {
			order = append(order, int(io.LPN)/per)
		}
	}
	seen := map[int]bool{}
	for _, p := range order {
		seen[p] = true
	}
	if len(seen) != 4 {
		t.Fatalf("only partitions %v saw traffic, want all 4", seen)
	}
	// The first few writes must already interleave streams: a round-robin
	// engine never issues a whole transaction back to back while other
	// streams are idle.
	head := map[int]bool{}
	for _, p := range order[:4] {
		head[p] = true
	}
	if len(head) < 2 {
		t.Fatalf("first 4 log writes all on partitions %v — streams do not interleave", head)
	}
	// On-media records carry the owning stream id, and sequence spaces
	// are per stream (every stream starts its own space at 0).
	for abs, hist := range h.e.slots {
		rec, err := DecodeRecord(hist[0].bytes)
		if err != nil {
			t.Fatalf("slot %d: %v", abs, err)
		}
		if got, want := int(rec.Stream), abs/per; got != want {
			t.Fatalf("slot %d: record stream %d, want partition owner %d", abs, got, want)
		}
	}
	for i, st := range h.e.streams {
		if st.seq == 0 {
			t.Fatalf("stream %d issued no records", i)
		}
	}
}

// TestMultiStreamGroupCommitBatchesAcrossStreams: the group-commit batch
// fills with commits from different streams, so one shared flush
// acknowledges transactions across stream boundaries.
func TestMultiStreamGroupCommitBatchesAcrossStreams(t *testing.T) {
	cfg := Config{Streams: 4, PagesPerTxn: 1, Barrier: GroupCommit, GroupEvery: 4, LogPages: 64, CheckpointEvery: 1000}
	h := newHarness(t, cfg)
	for h.e.Stats().Flushes == 0 {
		io, ok := h.e.Next()
		if !ok {
			t.Fatal("engine stalled before the first group flush")
		}
		if io.Kind == IOFlush {
			streams := map[int]bool{}
			for _, tx := range io.cover {
				streams[tx.Stream()] = true
			}
			if len(io.cover) != 4 || len(streams) < 2 {
				t.Fatalf("group flush covers %d txns on streams %v, want a 4-txn batch across streams",
					len(io.cover), streams)
			}
		}
		if io.Kind == IOFlush {
			for lpn, fp := range h.volatile {
				h.durable[lpn] = fp
			}
			h.volatile = make(map[addr.LPN]content.Fingerprint)
		} else {
			h.volatile[io.LPN] = io.Data.Page(0)
		}
		h.e.Done(io, nil)
	}
	if got := h.e.Stats().Committed; got != 4 {
		t.Fatalf("committed %d after the first group flush, want 4", got)
	}
}

// TestMultiStreamOutOfOrderSpansStreams: only the latest acknowledged
// transaction survives the cut; every earlier acknowledgement — which
// with round-robin streams lives on other streams too — becomes an
// out-of-order loss against that cross-stream witness.
func TestMultiStreamOutOfOrderSpansStreams(t *testing.T) {
	cfg := Config{Streams: 2, PagesPerTxn: 1, Barrier: NoFlush, LogPages: 64, CheckpointEvery: 1000}
	h := newHarness(t, cfg)
	h.runUntilCommitted(4)
	var last *Txn
	for _, tx := range h.e.ledger {
		if tx.acked && (last == nil || tx.ackIdx > last.ackIdx) {
			last = tx
		}
	}
	for _, p := range last.pages {
		h.keep(h.e.logSlotLPN(p.slot))
	}
	h.keep(h.e.logSlotLPN(last.commitSlot))

	crossStream := false
	for _, tx := range h.e.ledger {
		if tx.acked && tx != last && tx.stream != last.stream {
			crossStream = true
		}
	}
	if !crossStream {
		t.Fatal("all acked transactions on one stream — round-robin broken")
	}
	v := h.recover()
	if v.Intact != 1 || v.OutOfOrder != 3 || v.LostCommits != 0 {
		t.Fatalf("verdicts = %+v, want 1 intact + 3 out-of-order across streams", v.CycleVerdicts)
	}
}

// TestMultiStreamCheckpointTruncatesPerStream: partitions fill and
// truncate independently; no log write ever escapes its partition and
// retired transactions leave the ledger.
func TestMultiStreamCheckpointTruncatesPerStream(t *testing.T) {
	cfg := Config{Streams: 2, PagesPerTxn: 2, Barrier: FlushPerCommit, LogPages: 24, CheckpointEvery: 1000}
	h := newHarness(t, cfg)
	for i := 0; i < 4000 && h.e.Stats().Checkpoints < 4; i++ {
		io := h.step()
		if io.Kind == IOLog || io.Kind == IOCommit || io.Kind == IOCheckpoint {
			if int(io.LPN) >= cfg.LogPages {
				t.Fatalf("log write at LPN %d escaped the %d-page log region", io.LPN, cfg.LogPages)
			}
		}
	}
	s := h.e.Stats()
	if s.Checkpoints < 4 {
		t.Fatalf("checkpoints = %d, want both partitions truncating repeatedly", s.Checkpoints)
	}
	if s.Retired == 0 {
		t.Fatal("checkpoints ran but nothing retired")
	}
	for i, st := range h.e.streams {
		if st.cursor > st.size {
			t.Fatalf("stream %d cursor %d beyond its %d-slot partition", i, st.cursor, st.size)
		}
	}
}

// --- recovery-policy ablation ---

// TestStrictScanStopsAtFirstTear: the device kept only the LAST
// transaction's records. Hole-tolerant replay reaches them (1 intact, 2
// out-of-order); the strict scan hits the torn first slot and stops, so
// even the durable commit is unreachable — 3 lost commits, and the
// difference is exactly the durable-but-unreachable count.
func TestStrictScanStopsAtFirstTear(t *testing.T) {
	cfg := Config{PagesPerTxn: 2, Barrier: NoFlush, LogPages: 64, CheckpointEvery: 100}
	h := newHarness(t, cfg)
	h.runUntilCommitted(3)

	last := h.e.ledger[2]
	for _, p := range last.pages {
		h.keep(h.e.logSlotLPN(p.slot))
	}
	h.keep(h.e.logSlotLPN(last.commitSlot))

	out := h.recover()
	ht, st := out.Policies[HoleTolerant], out.Policies[StrictScan]
	if ht.Intact != 1 || ht.OutOfOrder != 2 {
		t.Fatalf("hole-tolerant = %+v, want 1 intact + 2 out-of-order", ht)
	}
	if st.LostCommits != 3 || st.Intact != 0 || st.OutOfOrder != 0 {
		t.Fatalf("strict-scan = %+v, want 3 lost commits (survivor unreachable past the tear)", st)
	}
	if st.ScanPages >= ht.ScanPages {
		t.Fatalf("strict scan read %d pages, hole-tolerant %d — strict must stop early", st.ScanPages, ht.ScanPages)
	}
	if got := out.Unreachable(); got != 1 {
		t.Fatalf("unreachable = %d, want the 1 durable-but-unreachable commit", got)
	}
	// The primary policy defaults to hole-tolerant: headline == ablation row.
	if out.CycleVerdicts != ht {
		t.Fatalf("primary verdicts %+v != hole-tolerant %+v", out.CycleVerdicts, ht)
	}
}

// TestStrictPolicyAsPrimary: Config.Policy flips which policy the
// headline stats reflect, without changing the ablation rows.
func TestStrictPolicyAsPrimary(t *testing.T) {
	cfg := Config{PagesPerTxn: 2, Barrier: NoFlush, LogPages: 64, CheckpointEvery: 100, Policy: StrictScan}
	h := newHarness(t, cfg)
	h.runUntilCommitted(3)
	last := h.e.ledger[2]
	for _, p := range last.pages {
		h.keep(h.e.logSlotLPN(p.slot))
	}
	h.keep(h.e.logSlotLPN(last.commitSlot))

	out := h.recover()
	if out.CycleVerdicts != out.Policies[StrictScan] {
		t.Fatalf("primary %+v != strict %+v", out.CycleVerdicts, out.Policies[StrictScan])
	}
	s := h.e.Stats()
	if s.Policy != StrictScan || int(s.LostCommits) != out.Policies[StrictScan].LostCommits {
		t.Fatalf("Stats() = %s, want the strict-scan fold", s)
	}
	alt := h.e.StatsFor(HoleTolerant)
	if alt.Policy != HoleTolerant || int(alt.Intact) != out.Policies[HoleTolerant].Intact {
		t.Fatalf("StatsFor(HoleTolerant) = %s", alt)
	}
	if alt.Committed != s.Committed || alt.Flushes != s.Flushes {
		t.Fatal("engine counters diverged between policy views")
	}
}

// TestStrictNeverBeatsHoleTolerant: under arbitrary survival patterns the
// strict scan's durable sets are subsets of the hole-tolerant ones, so it
// can only lose more. Sweep a range of keep patterns and check the
// invariant plus the verdict partition under both policies.
func TestStrictNeverBeatsHoleTolerant(t *testing.T) {
	for pattern := 0; pattern < 32; pattern++ {
		cfg := Config{PagesPerTxn: 2, Barrier: NoFlush, LogPages: 64, CheckpointEvery: 100}
		h := newHarness(t, cfg)
		h.runUntilCommitted(5)
		i := 0
		for _, tx := range h.e.ledger {
			for _, p := range tx.pages {
				if (pattern>>(i%5))&1 == 1 {
					h.keep(h.e.logSlotLPN(p.slot))
				}
				i++
			}
			if (pattern>>(i%5))&1 == 1 {
				h.keep(h.e.logSlotLPN(tx.commitSlot))
			}
			i++
		}
		out := h.recover()
		ht, st := out.Policies[HoleTolerant], out.Policies[StrictScan]
		if st.Losses() < ht.Losses() {
			t.Fatalf("pattern %d: strict losses %d < hole-tolerant %d", pattern, st.Losses(), ht.Losses())
		}
		if st.ScanPages > ht.ScanPages {
			t.Fatalf("pattern %d: strict scanned %d > hole-tolerant %d pages", pattern, st.ScanPages, ht.ScanPages)
		}
		for _, v := range []CycleVerdicts{ht, st} {
			if v.Intact+v.LostCommits+v.Torn+v.OutOfOrder != v.Evaluated {
				t.Fatalf("pattern %d: verdicts %+v do not partition evaluated", pattern, v)
			}
		}
	}
}

// TestGroupCommitCoalescesBackToBackBatches: with enough streams, two
// full group batches can form between consecutive Next calls (all the
// commit records complete before the runner issues the wanted flush).
// The second batch must join the pending flush cover, not replace it —
// otherwise the first batch stays committed-but-unacked forever.
func TestGroupCommitCoalescesBackToBackBatches(t *testing.T) {
	cfg := Config{Streams: 4, PagesPerTxn: 1, Barrier: GroupCommit, GroupEvery: 2, LogPages: 64, CheckpointEvery: 1000}
	h := newHarness(t, cfg)
	// Batch-synchronous driving: pull every issuable IO first, then
	// complete them all, so commit completions cluster exactly like a
	// pipelined closed loop under think-time.
	for round := 0; round < 12; round++ {
		var batch []IO
		for {
			io, ok := h.e.Next()
			if !ok {
				break
			}
			batch = append(batch, io)
		}
		if len(batch) == 0 {
			t.Fatalf("round %d: engine stalled", round)
		}
		for _, io := range batch {
			if io.Kind == IOFlush {
				for lpn, fp := range h.volatile {
					h.durable[lpn] = fp
				}
				h.volatile = make(map[addr.LPN]content.Fingerprint)
			} else {
				h.volatile[io.LPN] = io.Data.Page(0)
			}
			h.e.Done(io, nil)
		}
	}
	stranded := 0
	for _, tx := range h.e.ledger {
		if tx.committed && !tx.acked && !tx.aborted && !h.e.inFlush && !h.e.flushWanted {
			stranded++
		}
	}
	// At most a partial group may legitimately wait for its barrier.
	if inQ := len(h.e.waiters); stranded > inQ {
		t.Fatalf("%d committed transactions stranded un-acked (only %d awaiting a group)", stranded, inQ)
	}
	if got := h.e.Stats().Committed; got < 8 {
		t.Fatalf("committed %d over 12 batch rounds, want the batches to keep acking", got)
	}
}
