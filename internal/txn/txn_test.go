package txn

import (
	"testing"

	"powerfail/internal/addr"
	"powerfail/internal/content"
	"powerfail/internal/sim"
)

// --- record codec ---

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{Type: RecData, Seq: 7, Txn: 3, HomeLPN: 9001, Payload: 0xdeadbeef, Count: 2},
		{Type: RecCommit, Seq: 8, Txn: 3, Count: 4},
		{Type: RecCheckpoint, Seq: 9, Count: 17},
		{},
	}
	for _, r := range recs {
		b := EncodeRecord(r)
		if len(b) != RecordSize {
			t.Fatalf("encoded %v to %d bytes, want %d", r, len(b), RecordSize)
		}
		got, err := DecodeRecord(b)
		if err != nil {
			t.Fatalf("decode(encode(%v)): %v", r, err)
		}
		if got != r {
			t.Fatalf("round trip changed the record: %v -> %v", r, got)
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	good := EncodeRecord(Record{Type: RecCommit, Seq: 42, Txn: 7, Count: 3})

	if _, err := DecodeRecord(good[:RecordSize-1]); err != ErrTruncated {
		t.Fatalf("truncated: err = %v", err)
	}
	if _, err := DecodeRecord(nil); err != ErrTruncated {
		t.Fatalf("nil: err = %v", err)
	}

	// Any single bit flip must fail decoding: either the checksum breaks,
	// or the flipped bit is in the checksum itself.
	for i := 0; i < RecordSize; i++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), good...)
			mut[i] ^= 1 << bit
			if _, err := DecodeRecord(mut); err == nil {
				t.Fatalf("bit flip at byte %d bit %d decoded cleanly", i, bit)
			}
		}
	}
}

func TestDecodeIgnoresTrailingBytes(t *testing.T) {
	r := Record{Type: RecData, Seq: 1, Txn: 2, HomeLPN: 3, Payload: 4, Count: 5}
	padded := append(EncodeRecord(r), make([]byte, 100)...)
	got, err := DecodeRecord(padded)
	if err != nil || got != r {
		t.Fatalf("padded decode: %v, %v", got, err)
	}
}

// --- engine harness ---
//
// The harness drives the engine synchronously against a two-tier content
// store: writes land in the volatile tier, flushes promote everything to
// the durable tier, and a simulated cut discards the volatile tier. Tests
// then hand-pick what "survived" to pin each oracle verdict class.

type harness struct {
	t        *testing.T
	e        *Engine
	volatile map[addr.LPN]content.Fingerprint
	durable  map[addr.LPN]content.Fingerprint
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	e, err := NewEngine(cfg, sim.New(), sim.NewRNG(99).Fork("txn"), 4096)
	if err != nil {
		t.Fatal(err)
	}
	return &harness{
		t:        t,
		e:        e,
		volatile: make(map[addr.LPN]content.Fingerprint),
		durable:  make(map[addr.LPN]content.Fingerprint),
	}
}

// step pulls one IO and completes it successfully.
func (h *harness) step() IO {
	h.t.Helper()
	io, ok := h.e.Next()
	if !ok {
		h.t.Fatal("engine stalled with zero outstanding IOs")
	}
	if io.Kind == IOFlush {
		for lpn, fp := range h.volatile {
			h.durable[lpn] = fp
		}
		h.volatile = make(map[addr.LPN]content.Fingerprint)
	} else {
		h.volatile[io.LPN] = io.Data.Page(0)
	}
	h.e.Done(io, nil)
	return io
}

func (h *harness) runUntilCommitted(n int64) {
	h.t.Helper()
	for i := 0; h.e.Stats().Committed < n; i++ {
		if i > 100000 {
			h.t.Fatalf("no progress toward %d commits", n)
		}
		h.step()
	}
}

// read returns what a post-cut read of lpn observes: the durable tier
// (the volatile tier died with the power).
func (h *harness) read(lpn addr.LPN) content.Fingerprint { return h.durable[lpn] }

// recover runs the oracle over the durable tier.
func (h *harness) recover() CycleVerdicts {
	h.t.Helper()
	for _, lpn := range h.e.RecoveryReads() {
		h.e.Observe(lpn, h.read(lpn), nil)
	}
	return h.e.FinishRecovery()
}

// keep promotes one volatile page into the durable tier, simulating a
// page the device happened to persist before the cut.
func (h *harness) keep(lpn addr.LPN) {
	if fp, ok := h.volatile[lpn]; ok {
		h.durable[lpn] = fp
	}
}

// TestEngineFlushPerCommitAllIntact: with a flush behind every ACK, a cut
// at any commit boundary loses nothing.
func TestEngineFlushPerCommitAllIntact(t *testing.T) {
	cfg := Config{PagesPerTxn: 2, Barrier: FlushPerCommit, LogPages: 64, CheckpointEvery: 100}
	h := newHarness(t, cfg)
	h.runUntilCommitted(5)
	v := h.recover()
	if v.Evaluated != 5 || v.Intact != 5 {
		t.Fatalf("verdicts = %+v, want 5 intact of 5", v)
	}
	if got := h.e.Stats(); got.Losses() != 0 {
		t.Fatalf("losses: %s", got)
	}
}

// TestEngineNoFlushAllLost: nothing flushed, everything volatile — every
// acknowledged commit is a lost commit and none are out-of-order (no
// later commit survived either).
func TestEngineNoFlushAllLost(t *testing.T) {
	cfg := Config{PagesPerTxn: 2, Barrier: NoFlush, LogPages: 64, CheckpointEvery: 100}
	h := newHarness(t, cfg)
	h.runUntilCommitted(3)
	v := h.recover()
	if v.Evaluated != 3 || v.LostCommits != 3 || v.OutOfOrder != 0 {
		t.Fatalf("verdicts = %+v, want 3 lost commits", v)
	}
	if s := h.e.Stats(); s.OldestLostSeq == 0 {
		t.Fatalf("no oldest-lost sequence recorded: %s", s)
	}
}

// TestEngineOutOfOrderDurability: the device kept the third transaction's
// records but dropped the first two — the earlier acknowledged commits
// become out-of-order losses, the later one is intact.
func TestEngineOutOfOrderDurability(t *testing.T) {
	cfg := Config{PagesPerTxn: 2, Barrier: NoFlush, LogPages: 64, CheckpointEvery: 100}
	h := newHarness(t, cfg)
	h.runUntilCommitted(3)

	last := h.e.ledger[2]
	for _, p := range last.pages {
		h.keep(h.e.logSlotLPN(p.slot))
	}
	h.keep(h.e.logSlotLPN(last.commitSlot))

	v := h.recover()
	if v.Intact != 1 || v.OutOfOrder != 2 || v.LostCommits != 0 {
		t.Fatalf("verdicts = %+v, want 1 intact + 2 out-of-order", v)
	}
}

// TestEngineTornTransaction: the commit record survived but one data
// record did not (and its home page never landed) — atomicity is broken
// and the verdict is torn, not lost.
func TestEngineTornTransaction(t *testing.T) {
	cfg := Config{PagesPerTxn: 2, Barrier: NoFlush, LogPages: 64, CheckpointEvery: 100}
	h := newHarness(t, cfg)
	h.runUntilCommitted(1)

	tx := h.e.ledger[0]
	h.keep(h.e.logSlotLPN(tx.commitSlot))
	h.keep(h.e.logSlotLPN(tx.pages[0].slot)) // first data record survives, second does not

	v := h.recover()
	if v.Torn != 1 || v.LostCommits != 0 || v.Intact != 0 {
		t.Fatalf("verdicts = %+v, want exactly 1 torn", v)
	}
}

// TestEngineRedoFromHome: a data record died but the home write landed —
// the page is recoverable and the transaction stays intact.
func TestEngineRedoFromHome(t *testing.T) {
	cfg := Config{PagesPerTxn: 2, Barrier: NoFlush, LogPages: 64, CheckpointEvery: 100}
	h := newHarness(t, cfg)
	h.runUntilCommitted(1)
	// Drain the home writes of the acknowledged transaction.
	for h.e.Stats().HomeWrites < 2 {
		h.step()
	}

	tx := h.e.ledger[0]
	h.keep(h.e.logSlotLPN(tx.commitSlot))
	h.keep(h.e.logSlotLPN(tx.pages[0].slot))
	h.keep(tx.pages[1].homeLPN) // second page recovers from home instead of the log

	v := h.recover()
	if v.Intact != 1 {
		t.Fatalf("verdicts = %+v, want 1 intact via home recovery", v)
	}
}

// TestEngineGroupCommitAcksInBatches: commits acknowledge only when the
// shared flush lands, GroupEvery at a time; transactions committed but
// awaiting the group flush at a cut carry no promise (unacked).
func TestEngineGroupCommitAcksInBatches(t *testing.T) {
	cfg := Config{PagesPerTxn: 1, Barrier: GroupCommit, GroupEvery: 4, LogPages: 64, CheckpointEvery: 100}
	h := newHarness(t, cfg)
	h.runUntilCommitted(4)
	if got := h.e.Stats().Committed; got != 4 {
		t.Fatalf("committed %d mid-batch, want exactly the flushed group of 4", got)
	}
	if flushes := h.e.Stats().Flushes; flushes != 1 {
		t.Fatalf("flushes = %d, want 1 for the first group", flushes)
	}
	// Advance partway into the next group, then cut.
	for h.e.Stats().Started < 7 {
		h.step()
	}
	v := h.recover()
	if v.Unacked == 0 {
		t.Fatalf("no unacked transactions at a mid-group cut: %+v", v)
	}
	if v.Evaluated != 4 {
		t.Fatalf("evaluated %d, want the 4 acknowledged", v.Evaluated)
	}
}

// TestEngineSurvivesBarrierError: an errored commit-barrier flush outside
// a fault cycle (host-queue rejection, timeout) aborts the covered
// transaction instead of wedging the pipeline — the engine keeps
// committing afterwards and the aborted transaction is judged unacked.
func TestEngineSurvivesBarrierError(t *testing.T) {
	cfg := Config{PagesPerTxn: 2, Barrier: FlushPerCommit, LogPages: 64, CheckpointEvery: 100}
	h := newHarness(t, cfg)
	h.runUntilCommitted(1)

	// Fail the next barrier flush; everything else succeeds.
	failed := false
	for !failed {
		io, ok := h.e.Next()
		if !ok {
			t.Fatal("engine stalled before the flush")
		}
		if io.Kind == IOFlush {
			h.e.Done(io, ErrChecksum) // any error
			failed = true
		} else {
			h.volatile[io.LPN] = io.Data.Page(0)
			h.e.Done(io, nil)
		}
	}
	// The engine must still make progress to further commits.
	h.runUntilCommitted(3)
	v := h.recover()
	if v.Unacked != 1 {
		t.Fatalf("aborted transaction not judged unacked: %+v", v)
	}
	if v.Evaluated != 3 {
		t.Fatalf("evaluated %d, want the 3 acknowledged commits", v.Evaluated)
	}
}

// TestEngineRetriesFailedHomeWrite: a home write that errors is reissued
// until it lands, so the transaction can still retire at a checkpoint.
func TestEngineRetriesFailedHomeWrite(t *testing.T) {
	cfg := Config{PagesPerTxn: 2, Barrier: FlushPerCommit, LogPages: 64, CheckpointEvery: 1}
	h := newHarness(t, cfg)
	failedOnce := false
	for h.e.Stats().Checkpoints == 0 {
		io, ok := h.e.Next()
		if !ok {
			t.Fatal("engine stalled")
		}
		if io.Kind == IOHome && !failedOnce {
			failedOnce = true
			h.e.Done(io, ErrChecksum)
			continue
		}
		if io.Kind == IOFlush {
			for lpn, fp := range h.volatile {
				h.durable[lpn] = fp
			}
			h.volatile = make(map[addr.LPN]content.Fingerprint)
		} else {
			h.volatile[io.LPN] = io.Data.Page(0)
		}
		h.e.Done(io, nil)
	}
	if !failedOnce {
		t.Fatal("no home write was failed; test exercised nothing")
	}
	if got := h.e.Stats().Retired; got == 0 {
		t.Fatal("transaction with a retried home write never retired")
	}
	if len(h.e.ledger) != 0 {
		t.Fatalf("ledger holds %d transactions after checkpoint", len(h.e.ledger))
	}
}

// TestEngineCheckpointRetires: a checkpoint flushes, truncates the log
// and retires fully durable transactions so later faults never judge
// them; the scan high-water restarts from the checkpoint record.
func TestEngineCheckpointRetires(t *testing.T) {
	cfg := Config{PagesPerTxn: 2, Barrier: FlushPerCommit, LogPages: 64, CheckpointEvery: 2}
	h := newHarness(t, cfg)
	for h.e.Stats().Checkpoints == 0 {
		h.step()
	}
	s := h.e.Stats()
	if s.Retired < 2 {
		t.Fatalf("retired = %d after a checkpoint, want the checkpointed transactions", s.Retired)
	}
	if len(h.e.ledger) != 0 {
		t.Fatalf("ledger still holds %d transactions after truncation", len(h.e.ledger))
	}
	if h.e.cursor > 2 {
		t.Fatalf("cursor = %d after truncation, want the checkpoint record slot region", h.e.cursor)
	}
	// Everything was durable before truncation, so a cut right here must
	// evaluate nothing and lose nothing.
	v := h.recover()
	if v.Evaluated != 0 || v.LostCommits != 0 {
		t.Fatalf("post-checkpoint verdicts = %+v", v)
	}
}

// TestEngineCheckpointAppliesPartialGroupFirst: a forced checkpoint (log
// wrap) while a partial group awaits its barrier must flush and apply
// that group before truncating — the truncation reuses log slots, so it
// may only retire transactions whose home writes have landed. A cut
// right after the checkpoint must lose nothing.
func TestEngineCheckpointAppliesPartialGroupFirst(t *testing.T) {
	cfg := Config{PagesPerTxn: 2, Barrier: GroupCommit, GroupEvery: 100, LogPages: 12, CheckpointEvery: 1000}
	h := newHarness(t, cfg)
	for h.e.Stats().Checkpoints == 0 {
		h.step()
	}
	s := h.e.Stats()
	if s.Committed != 3 || s.Retired != 3 {
		t.Fatalf("committed=%d retired=%d after the forced checkpoint, want 3/3", s.Committed, s.Retired)
	}
	if len(h.e.ledger) != 0 {
		t.Fatalf("truncated with %d unapplied transactions in the ledger", len(h.e.ledger))
	}
	v := h.recover()
	if v.Evaluated != 0 || v.LostCommits != 0 || v.Torn != 0 {
		t.Fatalf("cut after checkpoint lost data: %+v", v)
	}
}

// TestEngineLogWrapForcesCheckpoint: when the append cursor approaches
// the end of the log region the engine checkpoints instead of starting a
// transaction, so the log never overflows its region.
func TestEngineLogWrapForcesCheckpoint(t *testing.T) {
	cfg := Config{PagesPerTxn: 2, Barrier: FlushPerCommit, LogPages: 8, CheckpointEvery: 1000}
	h := newHarness(t, cfg)
	var maxLPN addr.LPN
	for i := 0; i < 2000; i++ {
		io := h.step()
		if io.Kind != IOHome && io.LPN > maxLPN {
			maxLPN = io.LPN
		}
	}
	if h.e.Stats().Checkpoints == 0 {
		t.Fatal("log wrapped without a checkpoint")
	}
	if maxLPN >= addr.LPN(cfg.LogPages) {
		t.Fatalf("log write at LPN %d escaped the %d-page log region", maxLPN, cfg.LogPages)
	}
}

// TestEngineStaleSlotDetected: after a checkpoint truncates, the log
// slots still hold the previous generation's perfectly valid records on
// media. A post-truncation transaction whose writes die in the volatile
// cache must read as lost — the old-generation bytes beneath it can never
// be mistaken for the new commit.
func TestEngineStaleSlotDetected(t *testing.T) {
	cfg := Config{PagesPerTxn: 1, Barrier: NoFlush, LogPages: 16, CheckpointEvery: 1}
	h := newHarness(t, cfg)
	// Transaction 1 commits, and its checkpoint flushes generation-0
	// records into the durable tier, then truncates the log.
	for h.e.Stats().Checkpoints == 0 {
		h.step()
	}
	// Transaction 2 reuses the same slots in the new generation, but with
	// NoFlush nothing of it ever reaches the durable tier.
	h.runUntilCommitted(2)
	h.volatile = make(map[addr.LPN]content.Fingerprint) // cut
	v := h.recover()
	if v.Evaluated != 1 || v.LostCommits != 1 {
		t.Fatalf("stale old-generation slots misread as durable: %+v", v)
	}
}

// TestConfigValidation rejects impossible tunings.
func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{PagesPerTxn: -1, LogPages: 64, GroupEvery: 1, CheckpointEvery: 1},
		{PagesPerTxn: 4, LogPages: 5, GroupEvery: 1, CheckpointEvery: 1},
		{PagesPerTxn: 4, LogPages: 64, GroupEvery: -2, CheckpointEvery: 1},
		{PagesPerTxn: 4, LogPages: 64, GroupEvery: 1, CheckpointEvery: -3},
		{PagesPerTxn: 4, LogPages: 64, GroupEvery: 1, CheckpointEvery: 1, Barrier: Barrier(9)},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	if _, err := NewEngine(DefaultConfig(), sim.New(), sim.NewRNG(1), 100); err == nil {
		t.Error("engine accepted a device smaller than its log region")
	}
}
