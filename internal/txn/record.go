// Package txn is the application layer of the platform: a write-ahead-log
// transaction engine that runs on top of any blockdev.Drive topology, plus
// a crash-consistency oracle that replays the log after a power fault and
// classifies every acknowledged transaction.
//
// The paper's analysis stops at the block level (data failure, FWA, IO
// error). The follow-on enterprise-cache work by the same group shows the
// damage that matters is what applications observe after recovery: lost
// committed updates, torn multi-page transactions, and reordered
// durability. This package turns the platform's emergent device failures
// into exactly those end-to-end verdicts: the engine issues checksummed,
// sequence-numbered log records through the ordinary host block layer, and
// after each fault the oracle reads the log and home locations back and
// decides, per transaction, whether the WAL contract held.
//
// Nothing here is scripted: a lost commit happens only when the device
// models actually dropped the commit record (dirty DRAM loss, FTL mapping
// reversion, interrupted program), so every application-level verdict is
// corroborated by device-level loss counts in the same report.
package txn

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// RecordType tags a WAL record.
type RecordType uint8

// Record types.
const (
	// RecData carries the redo payload for one home page of a transaction.
	RecData RecordType = iota
	// RecCommit marks a transaction durable once it is on media.
	RecCommit
	// RecCheckpoint marks a log truncation point.
	RecCheckpoint
)

// String implements fmt.Stringer.
func (t RecordType) String() string {
	switch t {
	case RecData:
		return "data"
	case RecCommit:
		return "commit"
	case RecCheckpoint:
		return "checkpoint"
	default:
		return fmt.Sprintf("RecordType(%d)", int(t))
	}
}

// RecordSize is the encoded size of every WAL record. Records are
// fixed-size and page-aligned by the engine (one record per 4 KiB log
// page), so a torn page can never split a record.
const RecordSize = 56

// recordMagic brands every record; recordVersion gates format evolution.
// Version 2 turned the reserved bytes at [44:48) into the stream id for
// the multi-stream WAL; version-1 records are rejected.
const (
	recordMagic   = "PFWL"
	recordVersion = 2
)

// Record is one decoded WAL record. Stream identifies the WAL stream the
// record belongs to (sequence numbers are only ordered within a stream).
// Field use by type:
//
//   - RecData: Stream, Txn, Seq, HomeLPN (redo target), Payload (page
//     content fingerprint), Count (page index within the transaction).
//   - RecCommit: Stream, Txn, Seq, Count (pages in the transaction).
//   - RecCheckpoint: Stream, Seq, Count (transactions retired by the
//     checkpoint).
type Record struct {
	Type    RecordType
	Seq     uint64
	Txn     uint64
	HomeLPN uint64
	Payload uint64
	Count   uint32
	Stream  uint32
}

// Decode errors. ErrTruncated and ErrChecksum are what a recovery scan
// treats as a torn log page; the others indicate the page never held a
// record of this format at all (stale or foreign content).
var (
	ErrTruncated = errors.New("txn: truncated record")
	ErrMagic     = errors.New("txn: bad record magic")
	ErrVersion   = errors.New("txn: unsupported record version")
	ErrType      = errors.New("txn: unknown record type")
	ErrReserved  = errors.New("txn: nonzero reserved bytes")
	ErrChecksum  = errors.New("txn: record checksum mismatch")
)

// crc64 is FNV-1a over b — the same dependency-free checksum the content
// package uses for payload sums.
func crc64(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// EncodeRecord renders r in the canonical on-media layout:
//
//	[0:4)   magic "PFWL"
//	[4]     version
//	[5]     type
//	[6:8)   reserved (zero)
//	[8:16)  sequence number (per stream)
//	[16:24) transaction id
//	[24:32) home LPN
//	[32:40) payload fingerprint
//	[40:44) count
//	[44:48) stream id
//	[48:56) FNV-1a checksum over bytes [0:48)
func EncodeRecord(r Record) []byte {
	b := make([]byte, RecordSize)
	copy(b[0:4], recordMagic)
	b[4] = recordVersion
	b[5] = byte(r.Type)
	binary.LittleEndian.PutUint64(b[8:16], r.Seq)
	binary.LittleEndian.PutUint64(b[16:24], r.Txn)
	binary.LittleEndian.PutUint64(b[24:32], r.HomeLPN)
	binary.LittleEndian.PutUint64(b[32:40], r.Payload)
	binary.LittleEndian.PutUint32(b[40:44], r.Count)
	binary.LittleEndian.PutUint32(b[44:48], r.Stream)
	binary.LittleEndian.PutUint64(b[48:56], crc64(b[:48]))
	return b
}

// DecodeRecord parses the canonical layout. It never panics: corrupted or
// truncated bytes return an error, which the oracle classifies as a torn
// log page rather than a commit. Trailing bytes beyond RecordSize are
// ignored (records are padded to a full page on media).
func DecodeRecord(b []byte) (Record, error) {
	if len(b) < RecordSize {
		return Record{}, ErrTruncated
	}
	if string(b[0:4]) != recordMagic {
		return Record{}, ErrMagic
	}
	if b[4] != recordVersion {
		return Record{}, ErrVersion
	}
	if b[6] != 0 || b[7] != 0 {
		return Record{}, ErrReserved
	}
	if binary.LittleEndian.Uint64(b[48:56]) != crc64(b[:48]) {
		return Record{}, ErrChecksum
	}
	r := Record{
		Type:    RecordType(b[5]),
		Seq:     binary.LittleEndian.Uint64(b[8:16]),
		Txn:     binary.LittleEndian.Uint64(b[16:24]),
		HomeLPN: binary.LittleEndian.Uint64(b[24:32]),
		Payload: binary.LittleEndian.Uint64(b[32:40]),
		Count:   binary.LittleEndian.Uint32(b[40:44]),
		Stream:  binary.LittleEndian.Uint32(b[44:48]),
	}
	if r.Type > RecCheckpoint {
		return Record{}, ErrType
	}
	return r, nil
}
