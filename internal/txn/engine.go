package txn

import (
	"fmt"

	"powerfail/internal/addr"
	"powerfail/internal/content"
	"powerfail/internal/obs"
	"powerfail/internal/sim"
)

// Barrier selects the engine's commit durability policy.
type Barrier int

// Barrier policies.
const (
	// FlushPerCommit issues an OpFlush after every commit record and
	// acknowledges the commit only when the flush completes: the strict
	// fsync-per-transaction discipline. With several streams in flight the
	// flushes coalesce — commits from other streams that land before the
	// barrier is issued ride the same flush, exactly like fsync batching
	// in a real WAL.
	FlushPerCommit Barrier = iota
	// GroupCommit batches commits and issues one flush per GroupEvery
	// acknowledgements-in-waiting; every covered commit acknowledges when
	// the shared flush completes. The batch fills across streams.
	GroupCommit
	// NoFlush acknowledges a commit as soon as the device ACKs the commit
	// record write — exposing whatever volatile-cache lie the device tells.
	NoFlush
)

// String implements fmt.Stringer.
func (b Barrier) String() string {
	switch b {
	case FlushPerCommit:
		return "flush"
	case GroupCommit:
		return "group"
	case NoFlush:
		return "noflush"
	default:
		return fmt.Sprintf("Barrier(%d)", int(b))
	}
}

// MarshalJSON renders the barrier by name.
func (b Barrier) MarshalJSON() ([]byte, error) { return []byte(`"` + b.String() + `"`), nil }

// UnmarshalJSON parses a barrier name, so marshaled configs (run
// archives, report JSON) decode back into typed values.
func (b *Barrier) UnmarshalJSON(data []byte) error {
	switch string(data) {
	case `"flush"`:
		*b = FlushPerCommit
	case `"group"`:
		*b = GroupCommit
	case `"noflush"`:
		*b = NoFlush
	default:
		return fmt.Errorf("txn: unknown barrier %s", data)
	}
	return nil
}

// MaxStreams bounds the stream count (the log region must still hold a
// useful partition per stream).
const MaxStreams = 64

// Config tunes the transaction engine.
type Config struct {
	// Streams is the number of independent WAL streams (default 1). Each
	// stream has its own sequence-number space and log partition and runs
	// its own transaction pipeline; the engine interleaves their IOs, so
	// commit records from different streams mix on the device.
	Streams int `json:"streams,omitempty"`
	// PagesPerTxn is the number of home pages each transaction updates
	// (the atomicity unit; default 4).
	PagesPerTxn int `json:"pages_per_txn"`
	// Barrier is the commit durability policy.
	Barrier Barrier `json:"barrier"`
	// GroupEvery is the group-commit batch size (default 8; only used by
	// the GroupCommit barrier). The batch counts commits across streams.
	GroupEvery int `json:"group_every,omitempty"`
	// CheckpointEvery truncates a stream's log partition after this many
	// acknowledged commits on that stream (default 32). Checkpoints
	// flush, rewrite nothing (home locations are written eagerly after
	// each ack), stamp a checkpoint record, and reset the stream's append
	// cursor.
	CheckpointEvery int `json:"checkpoint_every"`
	// LogPages is the size of the on-device log region in 4 KiB pages
	// (default 512), split evenly into per-stream partitions. The home
	// region is everything above it.
	LogPages int `json:"log_pages"`
	// Policy is the primary recovery policy: the one Stats() and the
	// report's headline TxnStats reflect. The oracle always judges every
	// fault under all policies (the ablation), so the alternative's
	// verdicts are never lost. Default HoleTolerant.
	Policy RecoveryPolicy `json:"recovery_policy"`
}

// DefaultConfig returns the stock engine tuning.
func DefaultConfig() Config {
	return Config{Streams: 1, PagesPerTxn: 4, Barrier: FlushPerCommit, GroupEvery: 8, CheckpointEvery: 32, LogPages: 512}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Streams == 0 {
		c.Streams = d.Streams
	}
	if c.PagesPerTxn == 0 {
		c.PagesPerTxn = d.PagesPerTxn
	}
	if c.GroupEvery == 0 {
		c.GroupEvery = d.GroupEvery
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = d.CheckpointEvery
	}
	if c.LogPages == 0 {
		c.LogPages = d.LogPages
	}
	return c
}

// Validate checks the configuration (after defaulting).
func (c Config) Validate() error {
	if c.Streams < 1 || c.Streams > MaxStreams {
		return fmt.Errorf("txn: Streams %d out of range [1,%d]", c.Streams, MaxStreams)
	}
	if c.PagesPerTxn < 1 || c.PagesPerTxn > 64 {
		return fmt.Errorf("txn: PagesPerTxn %d out of range [1,64]", c.PagesPerTxn)
	}
	if c.Barrier < FlushPerCommit || c.Barrier > NoFlush {
		return fmt.Errorf("txn: unknown barrier %d", int(c.Barrier))
	}
	if c.Policy < HoleTolerant || c.Policy > StrictScan {
		return fmt.Errorf("txn: unknown recovery policy %d", int(c.Policy))
	}
	if c.GroupEvery < 1 {
		return fmt.Errorf("txn: GroupEvery must be positive, got %d", c.GroupEvery)
	}
	if c.CheckpointEvery < 1 {
		return fmt.Errorf("txn: CheckpointEvery must be positive, got %d", c.CheckpointEvery)
	}
	// A partition needs PagesPerTxn data records + a commit + a free slot
	// for the next checkpoint record, ON TOP of the checkpoint record a
	// freshly truncated generation already starts with — one slot short
	// of that and the engine livelocks in a checkpoint storm after its
	// first transaction.
	if per := c.LogPages / c.Streams; per < c.PagesPerTxn+3 {
		return fmt.Errorf("txn: LogPages %d over %d streams leaves %d-page partitions that cannot hold a %d-page transaction plus commit and checkpoint records",
			c.LogPages, c.Streams, per, c.PagesPerTxn)
	}
	return nil
}

// IOKind tags an engine-issued IO.
type IOKind int

// Engine IO kinds.
const (
	IOLog        IOKind = iota // one WAL data-record page
	IOCommit                   // one commit-record page
	IOCheckpoint               // one checkpoint-record page
	IOHome                     // one home-location data page
	IOFlush                    // a commit-barrier or checkpoint flush
)

// String implements fmt.Stringer.
func (k IOKind) String() string {
	switch k {
	case IOLog:
		return "log"
	case IOCommit:
		return "commit"
	case IOCheckpoint:
		return "checkpoint"
	case IOHome:
		return "home"
	case IOFlush:
		return "flush"
	default:
		return fmt.Sprintf("IOKind(%d)", int(k))
	}
}

// IO is one request the engine wants on the wire. Writes are always a
// single page; flushes carry no pages. The unexported fields route the
// completion back to the owning transaction state.
type IO struct {
	Kind IOKind
	LPN  addr.LPN
	Data content.Data // one-page payload for writes; empty for flushes

	t     *Txn
	page  int    // IOLog/IOHome: page index within the transaction
	cover []*Txn // IOFlush: transactions acknowledged when it completes
	ckpt  bool   // IOFlush: this flush opens a checkpoint
}

// Pages returns the request size in pages (0 for flushes).
func (io IO) Pages() int {
	if io.Kind == IOFlush {
		return 0
	}
	return 1
}

// txnPage is one home page of a transaction and its WAL data record.
type txnPage struct {
	homeLPN addr.LPN
	fp      content.Fingerprint // the new home content
	slot    int                 // absolute log slot holding the data record
	recFP   content.Fingerprint // fingerprint of the encoded record page
	seq     uint64
}

// Txn is one transaction's ground truth, kept in the engine's ledger until
// it is retired by a checkpoint or judged by the oracle.
type Txn struct {
	id     uint64
	stream int
	pages  []txnPage

	commitSeq  uint64
	commitSlot int // absolute
	commitFP   content.Fingerprint

	logIssued int // data-record writes handed to the runner
	logAcked  int // data-record writes acknowledged
	committed bool
	acked     bool
	ackedAt   sim.Time
	ackIdx    uint64 // global acknowledgement order (the durability promise order)
	homeNext  int    // next home write to issue
	homeAcked int
	aborted   bool
	startedAt sim.Time
}

// ID returns the transaction id (for tests).
func (t *Txn) ID() uint64 { return t.id }

// Stream returns the WAL stream the transaction ran on (for tests).
func (t *Txn) Stream() int { return t.stream }

// Acked reports whether the application observed the commit.
func (t *Txn) Acked() bool { return t.acked }

// slotWrite is one generation of content written to a log slot; the
// history lets the oracle tell "current record", "stale previous content"
// and "corrupted" apart by fingerprint.
type slotWrite struct {
	gen   uint64
	seq   uint64
	fp    content.Fingerprint
	bytes []byte
}

// slotHistoryCap bounds the per-slot write history; the oracle only ever
// needs the current generation plus enough depth to recognise staleness.
const slotHistoryCap = 4

// homeRef names one home page of a transaction for a retried write.
type homeRef struct {
	t    *Txn
	page int
}

// wstream is one WAL stream's private state: a sequence-number space, a
// log partition with its own append cursor and generation, and a
// transaction pipeline. Everything else — the group-commit batch, the
// barrier flush, home writes, the ledger — is shared across streams.
type wstream struct {
	id   int
	base int // first absolute log slot of the partition
	size int // partition size in slots

	seq       uint64 // next record sequence number (per-stream space)
	gen       uint64 // partition generation, bumped at each truncation
	cursor    int    // next free slot, relative to base
	highWater int    // one past the highest slot written this generation

	cur        *Txn
	sinceCkpt  int
	ckptDue    bool
	ckptRecDue bool
}

// Engine is the multi-stream WAL transaction state machine. The
// experiment runner pulls IOs with Next, issues them through the host
// block layer, and reports completions with Done; the engine never
// touches the device directly, so every one of its writes crosses the
// same split/queue/trace path — and the same analyzer shadow — as plain
// workload traffic. With Streams > 1 the engine round-robins the stream
// pipelines, so log and commit records from different streams interleave
// on the wire and out-of-order durability can span streams.
type Engine struct {
	cfg       Config
	k         *sim.Kernel
	rng       *sim.RNG
	userPages int64

	nextID uint64 // next transaction id (global)
	ackSeq uint64 // next global acknowledgement index

	streams   []*wstream
	perStream int // partition size (LogPages / Streams)
	rr        int // round-robin cursor over streams

	homeQ       []*Txn    // acked transactions with home writes left to issue
	homeRetry   []homeRef // home writes that errored, awaiting reissue
	waiters     []*Txn    // group-commit: committed, awaiting the shared flush
	flushWanted bool      // a commit-barrier flush is due (cover in flushCover)
	flushCover  []*Txn
	inFlush     bool

	outstanding int
	ledger      []*Txn
	slots       map[int][]slotWrite

	recovering bool
	obs        map[addr.LPN]observation

	stats Stats                           // engine counters + policy-independent oracle counters
	folds [NumRecoveryPolicies]policyFold // per-policy verdict accumulation
	tele  engineObs
}

// NewEngine builds an engine over a device of userPages host-visible
// pages. The RNG must be a dedicated fork; the engine consumes it for
// home placement and payload content.
func NewEngine(cfg Config, k *sim.Kernel, rng *sim.RNG, userPages int64) (*Engine, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if userPages < int64(cfg.LogPages)*2 {
		return nil, fmt.Errorf("txn: device too small: %d pages for a %d-page log region", userPages, cfg.LogPages)
	}
	e := &Engine{
		cfg:       cfg,
		k:         k,
		rng:       rng,
		userPages: userPages,
		nextID:    1,
		perStream: cfg.LogPages / cfg.Streams,
		slots:     make(map[int][]slotWrite),
		obs:       make(map[addr.LPN]observation),
	}
	e.streams = make([]*wstream, cfg.Streams)
	for i := range e.streams {
		e.streams[i] = &wstream{id: i, base: i * e.perStream, size: e.perStream}
	}
	return e, nil
}

// Config returns the effective (defaulted) configuration.
func (e *Engine) Config() Config { return e.cfg }

// Outstanding returns engine IOs issued but not yet completed.
func (e *Engine) Outstanding() int { return e.outstanding }

// logSlotLPN maps an absolute log slot to its device address: the log
// region is the first LogPages pages of the device.
func (e *Engine) logSlotLPN(slot int) addr.LPN { return addr.LPN(slot) }

// appendRecord stamps rec into the stream's relative slot: encodes it,
// fingerprints the encoded page, and records the write in the slot
// history (under the stream's current generation) for the oracle. It
// returns the absolute slot and the fingerprint.
func (e *Engine) appendRecord(st *wstream, rel int, rec Record) (int, content.Fingerprint) {
	abs := st.base + rel
	b := EncodeRecord(rec)
	fp := content.FromBytes(b)
	h := e.slots[abs]
	h = append(h, slotWrite{gen: st.gen, seq: rec.Seq, fp: fp, bytes: b})
	if len(h) > slotHistoryCap {
		h = h[len(h)-slotHistoryCap:]
	}
	e.slots[abs] = h
	return abs, fp
}

// beginTxn allocates log slots, payload content and home locations for a
// fresh transaction on st. It requires PagesPerTxn+1 free slots in the
// stream's partition; callers check space first.
func (e *Engine) beginTxn(st *wstream) *Txn {
	k := e.cfg.PagesPerTxn
	t := &Txn{id: e.nextID, stream: st.id, pages: make([]txnPage, k), startedAt: e.k.Now()}
	e.nextID++
	e.tele.begins.Inc()
	e.tele.sc.Instant(e.k.Now(), obs.KindTxn, "begin", int64(t.id))
	homeSpan := e.userPages - int64(e.cfg.LogPages)
	for i := 0; i < k; i++ {
		fp := content.Fingerprint(e.rng.Uint64())
		if fp == content.Zero {
			fp = 1
		}
		home := addr.LPN(int64(e.cfg.LogPages) + e.rng.Int63n(homeSpan))
		seq := st.seq
		st.seq++
		rel := st.cursor
		st.cursor++
		abs, recFP := e.appendRecord(st, rel, Record{
			Type: RecData, Seq: seq, Txn: t.id, Stream: uint32(st.id),
			HomeLPN: uint64(home), Payload: uint64(fp), Count: uint32(i),
		})
		t.pages[i] = txnPage{homeLPN: home, fp: fp, slot: abs, recFP: recFP, seq: seq}
	}
	t.commitSeq = st.seq
	st.seq++
	rel := st.cursor
	st.cursor++
	t.commitSlot, t.commitFP = e.appendRecord(st, rel, Record{
		Type: RecCommit, Seq: t.commitSeq, Txn: t.id, Stream: uint32(st.id), Count: uint32(k),
	})
	e.ledger = append(e.ledger, t)
	e.stats.Started++
	return t
}

// raiseWater lifts the stream's high-water mark to cover the absolute
// slot just put on the wire.
func (st *wstream) raiseWater(abs int) {
	if rel := abs - st.base + 1; rel > st.highWater {
		st.highWater = rel
	}
}

// anyCkptDue reports whether some stream wants a log truncation.
func (e *Engine) anyCkptDue() bool {
	for _, st := range e.streams {
		if st.ckptDue {
			return true
		}
	}
	return false
}

// Next returns the engine's next IO, or ok=false when it is waiting on
// completions (or recovering). Whenever the engine has zero outstanding
// IOs and is not recovering, Next is guaranteed to produce an IO, so a
// closed loop over Next/Done never stalls.
func (e *Engine) Next() (IO, bool) {
	if e.recovering {
		return IO{}, false
	}
	// 1. A wanted commit-barrier flush always goes first: it gates every
	// acknowledgement behind it.
	if e.flushWanted && !e.inFlush {
		e.flushWanted = false
		e.inFlush = true
		io := IO{Kind: IOFlush, cover: e.flushCover}
		e.flushCover = nil
		e.outstanding++
		e.stats.Flushes++
		return io, true
	}
	if e.inFlush {
		// Nothing overtakes a barrier in flight: later writes entering the
		// volatile cache behind the flush would blur what the barrier
		// acknowledged.
		return IO{}, false
	}
	// 2. Checkpoint records that follow a checkpoint flush, one per
	// truncated stream.
	for _, st := range e.streams {
		if !st.ckptRecDue {
			continue
		}
		st.ckptRecDue = false
		seq := st.seq
		st.seq++
		rel := st.cursor
		st.cursor++
		abs, fp := e.appendRecord(st, rel, Record{
			Type: RecCheckpoint, Seq: seq, Stream: uint32(st.id), Count: uint32(e.stats.Retired),
		})
		st.raiseWater(abs)
		e.outstanding++
		return IO{Kind: IOCheckpoint, LPN: e.logSlotLPN(abs), Data: content.Make(fp)}, true
	}
	// 3. Drain home writes of acknowledged transactions, retries first.
	if len(e.homeRetry) > 0 {
		ref := e.homeRetry[0]
		e.homeRetry = e.homeRetry[1:]
		p := ref.t.pages[ref.page]
		e.outstanding++
		e.stats.HomeWrites++
		return IO{Kind: IOHome, LPN: p.homeLPN, Data: content.Make(p.fp), t: ref.t, page: ref.page}, true
	}
	for len(e.homeQ) > 0 {
		t := e.homeQ[0]
		if t.homeNext >= len(t.pages) {
			e.homeQ = e.homeQ[1:]
			continue
		}
		p := t.pages[t.homeNext]
		idx := t.homeNext
		t.homeNext++
		e.outstanding++
		e.stats.HomeWrites++
		return IO{Kind: IOHome, LPN: p.homeLPN, Data: content.Make(p.fp), t: t, page: idx}, true
	}
	// 4. Advance the stream pipelines round-robin: the next stream with an
	// issuable log or commit write goes on the wire, and an idle stream
	// begins a fresh transaction in its turn — so records from different
	// streams interleave on the device instead of one stream flooding the
	// queue. While any stream wants a checkpoint no new transactions
	// start (the quiesce below must complete), but in-flight ones drain
	// normally. A stream whose partition cannot hold another transaction
	// (PagesPerTxn data records + commit + a checkpoint slot) schedules
	// its truncation instead of beginning.
	n := len(e.streams)
	ckptPending := e.anyCkptDue()
	for i := 0; i < n; i++ {
		st := e.streams[(e.rr+i)%n]
		t := st.cur
		if t == nil {
			if ckptPending {
				continue
			}
			if st.cursor+e.cfg.PagesPerTxn+2 > st.size {
				st.ckptDue = true
				ckptPending = true
				continue
			}
			t = e.beginTxn(st)
			st.cur = t
		}
		if t.logIssued < len(t.pages) {
			p := t.pages[t.logIssued]
			idx := t.logIssued
			t.logIssued++
			st.raiseWater(p.slot)
			e.rr = (e.rr + i + 1) % n
			e.outstanding++
			e.stats.LogAppends++
			return IO{Kind: IOLog, LPN: e.logSlotLPN(p.slot), Data: content.Make(p.recFP), t: t, page: idx}, true
		}
		if t.logAcked == len(t.pages) && !t.committed {
			t.committed = true // commit record issued
			st.raiseWater(t.commitSlot)
			e.rr = (e.rr + i + 1) % n
			e.outstanding++
			e.stats.LogAppends++
			return IO{Kind: IOCommit, LPN: e.logSlotLPN(t.commitSlot), Data: content.Make(t.commitFP), t: t}, true
		}
		// This stream is waiting on log ACKs or its commit barrier; give
		// the next stream the slot.
	}
	// 5. Open a checkpoint once the whole pipeline is quiet. A partial
	// group still waiting for its barrier is flushed and applied FIRST:
	// the truncation may only reuse log slots of transactions whose home
	// writes have landed, or a cut after the checkpoint could lose data
	// the application was promised (and the oracle would misjudge). Every
	// stream due for truncation rides the same quiesce.
	if ckptPending {
		if e.outstanding > 0 {
			return IO{}, false
		}
		if len(e.waiters) > 0 {
			cover := e.waiters
			e.waiters = nil
			e.inFlush = true
			e.outstanding++
			e.stats.Flushes++
			return IO{Kind: IOFlush, cover: cover}, true
		}
		e.inFlush = true
		e.outstanding++
		e.stats.Flushes++
		return IO{Kind: IOFlush, ckpt: true}, true
	}
	return IO{}, false // every stream is waiting on completions
}

// Done reports the completion of an IO previously returned by Next. err
// is the host-visible outcome; the engine advances its state machine and
// (for barriers) acknowledges covered commits. Every error path leaves
// the engine issuable — an unacknowledged transaction aborts out of the
// pipeline, a failed home write is retried — so a transient failure
// (host-queue rejection, timeout) can never wedge the closed loop; a
// fault's errors are swept up by FinishRecovery.
func (e *Engine) Done(io IO, err error) {
	e.outstanding--
	switch io.Kind {
	case IOLog:
		t := io.t
		if err != nil {
			e.abort(t)
			return
		}
		t.logAcked++
	case IOCommit:
		t := io.t
		if err != nil {
			e.abort(t)
			return
		}
		switch e.cfg.Barrier {
		case NoFlush:
			e.ack(t)
			e.streams[t.stream].cur = nil
		case FlushPerCommit:
			// Coalesce with a flush already wanted by another stream's
			// commit: one barrier covers every commit that reached the
			// device before it was issued.
			e.flushWanted = true
			e.flushCover = append(e.flushCover, t)
		case GroupCommit:
			e.waiters = append(e.waiters, t)
			e.streams[t.stream].cur = nil
			if len(e.waiters) >= e.cfg.GroupEvery {
				e.flushWanted = true
				// Append, never assign: with enough streams a second batch
				// can fill before the first batch's flush is even issued,
				// and overwriting the cover would strand that batch
				// committed-but-unacked forever.
				e.flushCover = append(e.flushCover, e.waiters...)
				e.waiters = nil
			}
		}
	case IOFlush:
		e.inFlush = false
		if err != nil {
			// The barrier failed: nothing it covered may be acknowledged.
			// The covered transactions abort (they stay in the ledger,
			// unacknowledged — no durability promise was made); a failed
			// checkpoint flush leaves ckptDue set and is retried.
			for _, t := range io.cover {
				e.abort(t)
			}
			return
		}
		for _, t := range io.cover {
			if !t.aborted {
				e.ack(t)
			}
			if st := e.streams[t.stream]; st.cur == t {
				st.cur = nil
			}
		}
		if io.ckpt {
			for _, st := range e.streams {
				if st.ckptDue {
					e.truncate(st)
					st.ckptRecDue = true
					st.ckptDue = false
					e.stats.Checkpoints++
				}
			}
		}
	case IOCheckpoint:
		// Best effort: a lost checkpoint record costs nothing — the ledger
		// it would describe was already retired by the flush before it.
	case IOHome:
		t := io.t
		if err != nil {
			// The page must eventually reach home or the transaction can
			// never retire (a checkpoint would reuse its redo slots).
			e.homeRetry = append(e.homeRetry, homeRef{t: t, page: io.page})
			return
		}
		t.homeAcked++
	}
}

// abort takes an unacknowledged transaction out of the pipeline after an
// IO error. It stays in the ledger (the oracle counts it as in-flight at
// the cut); acknowledged transactions are never aborted.
func (e *Engine) abort(t *Txn) {
	if t.acked {
		return
	}
	t.aborted = true
	e.tele.aborts.Inc()
	e.tele.sc.Instant(e.k.Now(), obs.KindTxn, "abort", int64(t.id))
	if st := e.streams[t.stream]; st.cur == t {
		st.cur = nil
	}
}

// ack marks t durable from the application's point of view and queues its
// home writes. The global acknowledgement index records the order
// durability promises were made in — the order the oracle judges
// out-of-order durability against, across all streams.
func (e *Engine) ack(t *Txn) {
	if t.acked {
		return
	}
	t.acked = true
	t.ackedAt = e.k.Now()
	t.ackIdx = e.ackSeq
	e.ackSeq++
	e.stats.Committed++
	e.tele.commits.Inc()
	lat := t.ackedAt.Sub(t.startedAt)
	e.tele.commitLat.ObserveDuration(lat)
	e.tele.sc.Span(t.startedAt, lat, obs.KindTxn, "commit", int64(t.id))
	e.homeQ = append(e.homeQ, t)
	st := e.streams[t.stream]
	st.sinceCkpt++
	if st.sinceCkpt >= e.cfg.CheckpointEvery {
		st.ckptDue = true
	}
}

// truncate retires every fully-durable ledger transaction of st's stream
// and opens a new partition generation. It runs only behind a completed
// flush with an idle pipeline, so everything in the ledger that was
// acknowledged is on media.
func (e *Engine) truncate(st *wstream) {
	var keep []*Txn
	for _, t := range e.ledger {
		if t.stream == st.id && t.acked && t.homeAcked == len(t.pages) {
			e.stats.Retired++
			continue
		}
		keep = append(keep, t)
	}
	e.ledger = keep
	st.gen++
	st.cursor = 0
	st.highWater = 0
	st.sinceCkpt = 0
}
