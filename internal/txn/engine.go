package txn

import (
	"fmt"

	"powerfail/internal/addr"
	"powerfail/internal/content"
	"powerfail/internal/sim"
)

// Barrier selects the engine's commit durability policy.
type Barrier int

// Barrier policies.
const (
	// FlushPerCommit issues an OpFlush after every commit record and
	// acknowledges the commit only when the flush completes: the strict
	// fsync-per-transaction discipline.
	FlushPerCommit Barrier = iota
	// GroupCommit batches commits and issues one flush per GroupEvery
	// acknowledgements-in-waiting; every covered commit acknowledges when
	// the shared flush completes.
	GroupCommit
	// NoFlush acknowledges a commit as soon as the device ACKs the commit
	// record write — exposing whatever volatile-cache lie the device tells.
	NoFlush
)

// String implements fmt.Stringer.
func (b Barrier) String() string {
	switch b {
	case FlushPerCommit:
		return "flush"
	case GroupCommit:
		return "group"
	case NoFlush:
		return "noflush"
	default:
		return fmt.Sprintf("Barrier(%d)", int(b))
	}
}

// MarshalJSON renders the barrier by name.
func (b Barrier) MarshalJSON() ([]byte, error) { return []byte(`"` + b.String() + `"`), nil }

// Config tunes the transaction engine.
type Config struct {
	// PagesPerTxn is the number of home pages each transaction updates
	// (the atomicity unit; default 4).
	PagesPerTxn int `json:"pages_per_txn"`
	// Barrier is the commit durability policy.
	Barrier Barrier `json:"barrier"`
	// GroupEvery is the group-commit batch size (default 8; only used by
	// the GroupCommit barrier).
	GroupEvery int `json:"group_every,omitempty"`
	// CheckpointEvery truncates the log after this many acknowledged
	// commits (default 32). Checkpoints flush, rewrite nothing (home
	// locations are written eagerly after each ack), stamp a checkpoint
	// record, and reset the append cursor.
	CheckpointEvery int `json:"checkpoint_every"`
	// LogPages is the size of the on-device log region in 4 KiB pages
	// (default 512). The home region is everything above it.
	LogPages int `json:"log_pages"`
}

// DefaultConfig returns the stock engine tuning.
func DefaultConfig() Config {
	return Config{PagesPerTxn: 4, Barrier: FlushPerCommit, GroupEvery: 8, CheckpointEvery: 32, LogPages: 512}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.PagesPerTxn == 0 {
		c.PagesPerTxn = d.PagesPerTxn
	}
	if c.GroupEvery == 0 {
		c.GroupEvery = d.GroupEvery
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = d.CheckpointEvery
	}
	if c.LogPages == 0 {
		c.LogPages = d.LogPages
	}
	return c
}

// Validate checks the configuration (after defaulting).
func (c Config) Validate() error {
	if c.PagesPerTxn < 1 || c.PagesPerTxn > 64 {
		return fmt.Errorf("txn: PagesPerTxn %d out of range [1,64]", c.PagesPerTxn)
	}
	if c.Barrier < FlushPerCommit || c.Barrier > NoFlush {
		return fmt.Errorf("txn: unknown barrier %d", int(c.Barrier))
	}
	if c.GroupEvery < 1 {
		return fmt.Errorf("txn: GroupEvery must be positive, got %d", c.GroupEvery)
	}
	if c.CheckpointEvery < 1 {
		return fmt.Errorf("txn: CheckpointEvery must be positive, got %d", c.CheckpointEvery)
	}
	if c.LogPages < c.PagesPerTxn+2 {
		return fmt.Errorf("txn: LogPages %d cannot hold a %d-page transaction plus commit and checkpoint records",
			c.LogPages, c.PagesPerTxn)
	}
	return nil
}

// IOKind tags an engine-issued IO.
type IOKind int

// Engine IO kinds.
const (
	IOLog        IOKind = iota // one WAL data-record page
	IOCommit                   // one commit-record page
	IOCheckpoint               // one checkpoint-record page
	IOHome                     // one home-location data page
	IOFlush                    // a commit-barrier or checkpoint flush
)

// String implements fmt.Stringer.
func (k IOKind) String() string {
	switch k {
	case IOLog:
		return "log"
	case IOCommit:
		return "commit"
	case IOCheckpoint:
		return "checkpoint"
	case IOHome:
		return "home"
	case IOFlush:
		return "flush"
	default:
		return fmt.Sprintf("IOKind(%d)", int(k))
	}
}

// IO is one request the engine wants on the wire. Writes are always a
// single page; flushes carry no pages. The unexported fields route the
// completion back to the owning transaction state.
type IO struct {
	Kind IOKind
	LPN  addr.LPN
	Data content.Data // one-page payload for writes; empty for flushes

	t     *Txn
	page  int    // IOLog/IOHome: page index within the transaction
	cover []*Txn // IOFlush: transactions acknowledged when it completes
	ckpt  bool   // IOFlush: this flush opens a checkpoint
}

// Pages returns the request size in pages (0 for flushes).
func (io IO) Pages() int {
	if io.Kind == IOFlush {
		return 0
	}
	return 1
}

// txnPage is one home page of a transaction and its WAL data record.
type txnPage struct {
	homeLPN addr.LPN
	fp      content.Fingerprint // the new home content
	slot    int                 // log slot holding the data record
	recFP   content.Fingerprint // fingerprint of the encoded record page
	seq     uint64
}

// Txn is one transaction's ground truth, kept in the engine's ledger until
// it is retired by a checkpoint or judged by the oracle.
type Txn struct {
	id    uint64
	pages []txnPage

	commitSeq  uint64
	commitSlot int
	commitFP   content.Fingerprint

	logIssued int // data-record writes handed to the runner
	logAcked  int // data-record writes acknowledged
	committed bool
	acked     bool
	ackedAt   sim.Time
	homeNext  int // next home write to issue
	homeAcked int
	aborted   bool
}

// ID returns the transaction id (for tests).
func (t *Txn) ID() uint64 { return t.id }

// Acked reports whether the application observed the commit.
func (t *Txn) Acked() bool { return t.acked }

// slotWrite is one generation of content written to a log slot; the
// history lets the oracle tell "current record", "stale previous content"
// and "corrupted" apart by fingerprint.
type slotWrite struct {
	gen   uint64
	seq   uint64
	fp    content.Fingerprint
	bytes []byte
}

// slotHistoryCap bounds the per-slot write history; the oracle only ever
// needs the current generation plus enough depth to recognise staleness.
const slotHistoryCap = 4

// homeRef names one home page of a transaction for a retried write.
type homeRef struct {
	t    *Txn
	page int
}

// Engine is the WAL transaction state machine. The experiment runner
// pulls IOs with Next, issues them through the host block layer, and
// reports completions with Done; the engine never touches the device
// directly, so every one of its writes crosses the same split/queue/trace
// path — and the same analyzer shadow — as plain workload traffic.
type Engine struct {
	cfg       Config
	k         *sim.Kernel
	rng       *sim.RNG
	userPages int64

	seq    uint64 // next record sequence number
	nextID uint64 // next transaction id
	gen    uint64 // log generation, bumped at each truncation

	cursor    int // next free log slot
	highWater int // one past the highest slot written this generation

	cur         *Txn
	homeQ       []*Txn    // acked transactions with home writes left to issue
	homeRetry   []homeRef // home writes that errored, awaiting reissue
	waiters     []*Txn    // group-commit: committed, awaiting the shared flush
	flushWanted bool      // a commit-barrier flush is due (cover in flushCover)
	flushCover  []*Txn
	inFlush     bool

	ckptDue    bool
	ckptRecDue bool

	outstanding int
	ledger      []*Txn
	slots       map[int][]slotWrite

	recovering bool
	obs        map[addr.LPN]observation

	sinceCkpt int
	stats     Stats
}

// NewEngine builds an engine over a device of userPages host-visible
// pages. The RNG must be a dedicated fork; the engine consumes it for
// home placement and payload content.
func NewEngine(cfg Config, k *sim.Kernel, rng *sim.RNG, userPages int64) (*Engine, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if userPages < int64(cfg.LogPages)*2 {
		return nil, fmt.Errorf("txn: device too small: %d pages for a %d-page log region", userPages, cfg.LogPages)
	}
	return &Engine{
		cfg:       cfg,
		k:         k,
		rng:       rng,
		userPages: userPages,
		nextID:    1,
		slots:     make(map[int][]slotWrite),
		obs:       make(map[addr.LPN]observation),
	}, nil
}

// Config returns the effective (defaulted) configuration.
func (e *Engine) Config() Config { return e.cfg }

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats { return e.stats }

// Outstanding returns engine IOs issued but not yet completed.
func (e *Engine) Outstanding() int { return e.outstanding }

// logSlotLPN maps a log slot to its device address: the log region is the
// first LogPages pages of the device.
func (e *Engine) logSlotLPN(slot int) addr.LPN { return addr.LPN(slot) }

// appendRecord stamps rec into slot: encodes it, fingerprints the encoded
// page, and records the write in the slot history for the oracle.
func (e *Engine) appendRecord(slot int, rec Record) content.Fingerprint {
	b := EncodeRecord(rec)
	fp := content.FromBytes(b)
	h := e.slots[slot]
	h = append(h, slotWrite{gen: e.gen, seq: rec.Seq, fp: fp, bytes: b})
	if len(h) > slotHistoryCap {
		h = h[len(h)-slotHistoryCap:]
	}
	e.slots[slot] = h
	return fp
}

// beginTxn allocates log slots, payload content and home locations for a
// fresh transaction. It requires PagesPerTxn+1 free log slots; callers
// check space first.
func (e *Engine) beginTxn() *Txn {
	k := e.cfg.PagesPerTxn
	t := &Txn{id: e.nextID, pages: make([]txnPage, k)}
	e.nextID++
	homeSpan := e.userPages - int64(e.cfg.LogPages)
	for i := 0; i < k; i++ {
		fp := content.Fingerprint(e.rng.Uint64())
		if fp == content.Zero {
			fp = 1
		}
		home := addr.LPN(int64(e.cfg.LogPages) + e.rng.Int63n(homeSpan))
		seq := e.seq
		e.seq++
		slot := e.cursor
		e.cursor++
		recFP := e.appendRecord(slot, Record{
			Type: RecData, Seq: seq, Txn: t.id,
			HomeLPN: uint64(home), Payload: uint64(fp), Count: uint32(i),
		})
		t.pages[i] = txnPage{homeLPN: home, fp: fp, slot: slot, recFP: recFP, seq: seq}
	}
	t.commitSeq = e.seq
	e.seq++
	t.commitSlot = e.cursor
	e.cursor++
	t.commitFP = e.appendRecord(t.commitSlot, Record{
		Type: RecCommit, Seq: t.commitSeq, Txn: t.id, Count: uint32(k),
	})
	e.ledger = append(e.ledger, t)
	e.stats.Started++
	return t
}

// Next returns the engine's next IO, or ok=false when it is waiting on
// completions (or recovering). Whenever the engine has zero outstanding
// IOs and is not recovering, Next is guaranteed to produce an IO, so a
// closed loop over Next/Done never stalls.
func (e *Engine) Next() (IO, bool) {
	if e.recovering {
		return IO{}, false
	}
	// 1. A wanted commit-barrier flush always goes first: it gates every
	// acknowledgement behind it.
	if e.flushWanted && !e.inFlush {
		e.flushWanted = false
		e.inFlush = true
		io := IO{Kind: IOFlush, cover: e.flushCover}
		e.flushCover = nil
		e.outstanding++
		e.stats.Flushes++
		return io, true
	}
	if e.inFlush {
		// Nothing overtakes a barrier in flight: later writes entering the
		// volatile cache behind the flush would blur what the barrier
		// acknowledged.
		return IO{}, false
	}
	// 2. The checkpoint record that follows a checkpoint flush.
	if e.ckptRecDue {
		e.ckptRecDue = false
		seq := e.seq
		e.seq++
		slot := e.cursor
		e.cursor++
		fp := e.appendRecord(slot, Record{Type: RecCheckpoint, Seq: seq, Count: uint32(e.stats.Retired)})
		if e.cursor > e.highWater {
			e.highWater = e.cursor
		}
		e.outstanding++
		return IO{Kind: IOCheckpoint, LPN: e.logSlotLPN(slot), Data: content.Make(fp)}, true
	}
	// 3. Drain home writes of acknowledged transactions, retries first.
	if len(e.homeRetry) > 0 {
		ref := e.homeRetry[0]
		e.homeRetry = e.homeRetry[1:]
		p := ref.t.pages[ref.page]
		e.outstanding++
		e.stats.HomeWrites++
		return IO{Kind: IOHome, LPN: p.homeLPN, Data: content.Make(p.fp), t: ref.t, page: ref.page}, true
	}
	for len(e.homeQ) > 0 {
		t := e.homeQ[0]
		if t.homeNext >= len(t.pages) {
			e.homeQ = e.homeQ[1:]
			continue
		}
		p := t.pages[t.homeNext]
		idx := t.homeNext
		t.homeNext++
		e.outstanding++
		e.stats.HomeWrites++
		return IO{Kind: IOHome, LPN: p.homeLPN, Data: content.Make(p.fp), t: t, page: idx}, true
	}
	// 4. Advance the current transaction.
	if e.cur != nil {
		t := e.cur
		if t.logIssued < len(t.pages) {
			p := t.pages[t.logIssued]
			idx := t.logIssued
			t.logIssued++
			if p.slot+1 > e.highWater {
				e.highWater = p.slot + 1
			}
			e.outstanding++
			e.stats.LogAppends++
			return IO{Kind: IOLog, LPN: e.logSlotLPN(p.slot), Data: content.Make(p.recFP), t: t, page: idx}, true
		}
		if t.logAcked == len(t.pages) && !t.committed {
			t.committed = true // commit record issued
			if t.commitSlot+1 > e.highWater {
				e.highWater = t.commitSlot + 1
			}
			e.outstanding++
			e.stats.LogAppends++
			return IO{Kind: IOCommit, LPN: e.logSlotLPN(t.commitSlot), Data: content.Make(t.commitFP), t: t}, true
		}
		return IO{}, false // waiting for log ACKs or the commit barrier
	}
	// 5. Open a checkpoint once the pipeline is quiet. A partial group
	// still waiting for its barrier is flushed and applied FIRST: the
	// truncation may only reuse log slots of transactions whose home
	// writes have landed, or a cut after the checkpoint could lose data
	// the application was promised (and the oracle would misjudge).
	if e.ckptDue {
		if e.outstanding > 0 {
			return IO{}, false
		}
		if len(e.waiters) > 0 {
			cover := e.waiters
			e.waiters = nil
			e.inFlush = true
			e.outstanding++
			e.stats.Flushes++
			return IO{Kind: IOFlush, cover: cover}, true
		}
		e.inFlush = true
		e.outstanding++
		e.stats.Flushes++
		return IO{Kind: IOFlush, ckpt: true}, true
	}
	// 6. Start a new transaction, or force a checkpoint when the log is
	// out of space (PagesPerTxn data records + commit + a checkpoint slot).
	if e.cursor+e.cfg.PagesPerTxn+2 > e.cfg.LogPages {
		e.ckptDue = true
		return e.Next()
	}
	e.cur = e.beginTxn()
	return e.Next()
}

// Done reports the completion of an IO previously returned by Next. err
// is the host-visible outcome; the engine advances its state machine and
// (for barriers) acknowledges covered commits. Every error path leaves
// the engine issuable — an unacknowledged transaction aborts out of the
// pipeline, a failed home write is retried — so a transient failure
// (host-queue rejection, timeout) can never wedge the closed loop; a
// fault's errors are swept up by FinishRecovery.
func (e *Engine) Done(io IO, err error) {
	e.outstanding--
	switch io.Kind {
	case IOLog:
		t := io.t
		if err != nil {
			e.abort(t)
			return
		}
		t.logAcked++
	case IOCommit:
		t := io.t
		if err != nil {
			e.abort(t)
			return
		}
		switch e.cfg.Barrier {
		case NoFlush:
			e.ack(t)
			e.cur = nil
		case FlushPerCommit:
			e.flushWanted = true
			e.flushCover = []*Txn{t}
		case GroupCommit:
			e.waiters = append(e.waiters, t)
			e.cur = nil
			if len(e.waiters) >= e.cfg.GroupEvery {
				e.flushWanted = true
				e.flushCover = e.waiters
				e.waiters = nil
			}
		}
	case IOFlush:
		e.inFlush = false
		if err != nil {
			// The barrier failed: nothing it covered may be acknowledged.
			// The covered transactions abort (they stay in the ledger,
			// unacknowledged — no durability promise was made); a failed
			// checkpoint flush leaves ckptDue set and is retried.
			for _, t := range io.cover {
				e.abort(t)
			}
			return
		}
		for _, t := range io.cover {
			if !t.aborted {
				e.ack(t)
			}
			if e.cur == t {
				e.cur = nil
			}
		}
		if io.ckpt {
			e.truncate()
			e.ckptRecDue = true
			e.ckptDue = false
			e.stats.Checkpoints++
		}
	case IOCheckpoint:
		// Best effort: a lost checkpoint record costs nothing — the ledger
		// it would describe was already retired by the flush before it.
	case IOHome:
		t := io.t
		if err != nil {
			// The page must eventually reach home or the transaction can
			// never retire (a checkpoint would reuse its redo slots).
			e.homeRetry = append(e.homeRetry, homeRef{t: t, page: io.page})
			return
		}
		t.homeAcked++
	}
}

// abort takes an unacknowledged transaction out of the pipeline after an
// IO error. It stays in the ledger (the oracle counts it as in-flight at
// the cut); acknowledged transactions are never aborted.
func (e *Engine) abort(t *Txn) {
	if t.acked {
		return
	}
	t.aborted = true
	if e.cur == t {
		e.cur = nil
	}
}

// ack marks t durable from the application's point of view and queues its
// home writes.
func (e *Engine) ack(t *Txn) {
	if t.acked {
		return
	}
	t.acked = true
	t.ackedAt = e.k.Now()
	e.stats.Committed++
	e.homeQ = append(e.homeQ, t)
	e.sinceCkptInc()
}

func (e *Engine) sinceCkptInc() {
	e.sinceCkpt++
	if e.sinceCkpt >= e.cfg.CheckpointEvery {
		e.ckptDue = true
	}
}

// truncate retires every fully-durable ledger transaction and opens a new
// log generation. It runs only behind a completed flush with an idle
// pipeline, so everything in the ledger that was acknowledged is on media.
func (e *Engine) truncate() {
	var keep []*Txn
	for _, t := range e.ledger {
		if t.acked && t.homeAcked == len(t.pages) {
			e.stats.Retired++
			continue
		}
		keep = append(keep, t)
	}
	e.ledger = keep
	e.gen++
	e.cursor = 0
	e.highWater = 0
	e.sinceCkpt = 0
}
