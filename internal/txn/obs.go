package txn

import (
	"powerfail/internal/obs"
)

// engineObs holds the engine's observability handles; the zero value is
// the disabled state (nil handles no-op).
type engineObs struct {
	sc        obs.Scope
	begins    *obs.Counter
	commits   *obs.Counter
	aborts    *obs.Counter
	scans     *obs.Counter
	scanPages *obs.Counter
	commitLat *obs.Histogram
}

// Instrument attaches the engine to an observability scope: a
// begin-to-ack commit latency histogram plus txn lifecycle and
// recovery-scan trace events. (Observe is taken by the oracle's
// recovery-read recording.) A disabled scope is a no-op.
func (e *Engine) Instrument(sc obs.Scope) {
	if !sc.Enabled() {
		return
	}
	e.tele = engineObs{
		sc:        sc,
		begins:    sc.Counter("begins"),
		commits:   sc.Counter("commits"),
		aborts:    sc.Counter("aborts"),
		scans:     sc.Counter("recovery_scans"),
		scanPages: sc.Counter("recovery_scan_pages"),
		commitLat: sc.Histogram("commit_latency_ns"),
	}
}
