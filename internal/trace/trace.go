// Package trace parses MSR-Cambridge-style CSV block traces and replays
// them through the fault-injection pipeline. Real storage-reliability
// studies in this paper's lineage validate against block traces, not only
// synthetic mixes; this package is the third IO source the runner can
// drive (next to the synthetic generator and the WAL transaction engine).
//
// Two row formats are accepted, detected by column count and consistent
// per file:
//
//	MSR Cambridge (7 columns):
//	    Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//	    — Timestamp in Windows 100 ns ticks, Type "Read"/"Write",
//	    Offset/Size in bytes (Hostname/DiskNumber/ResponseTime ignored).
//	simple (4 columns):
//	    timestamp_ns,op,offset,size
//	    — timestamp in integer nanoseconds, op R/W (or read/write),
//	    offset/size in bytes.
//
// Blank lines, '#' comments and a single leading header row are skipped;
// any other malformed row is an error naming its line. Accepted rows are
// canonical: timestamps never move backwards, sizes are positive and
// bounded, and a record survives a format/parse round trip byte for byte
// (fuzzed by FuzzParseTrace).
package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"powerfail/internal/addr"
	"powerfail/internal/sim"
)

// Op is the request direction of a trace record.
type Op int

// Record directions.
const (
	OpRead Op = iota
	OpWrite
)

// String implements fmt.Stringer.
func (o Op) String() string {
	if o == OpWrite {
		return "write"
	}
	return "read"
}

// Canonical-row bounds: a single request is at most 1 GiB and no address
// reaches past 1 PiB, which rejects corrupt rows before they can balloon
// into multi-terabyte page allocations at replay time.
const (
	MaxRecordBytes = int64(1) << 30
	MaxOffsetBytes = int64(1) << 50
)

// Record is one parsed trace row, normalized to the platform's 4 KiB page
// granularity and to an arrival offset from the trace's first row.
type Record struct {
	// At is the arrival offset from the first record (the first record's
	// At is always 0).
	At    sim.Duration
	Op    Op
	LPN   addr.LPN
	Pages int
}

// Trace is a parsed block trace.
type Trace struct {
	Name    string
	Records []Record
}

// Extent returns the trace's address-space extent in pages: the smallest
// device (in 4 KiB pages) the trace fits without scaling.
func (t *Trace) Extent() int64 {
	var max int64
	for _, r := range t.Records {
		if end := int64(r.LPN) + int64(r.Pages); end > max {
			max = end
		}
	}
	return max
}

// Duration returns the arrival offset of the last record.
func (t *Trace) Duration() sim.Duration {
	if len(t.Records) == 0 {
		return 0
	}
	return t.Records[len(t.Records)-1].At
}

// Writes returns the number of write records.
func (t *Trace) Writes() int {
	n := 0
	for _, r := range t.Records {
		if r.Op == OpWrite {
			n++
		}
	}
	return n
}

// String implements fmt.Stringer.
func (t *Trace) String() string {
	return fmt.Sprintf("trace %s: %d records (%d writes) over %s, extent %d pages",
		t.Name, len(t.Records), t.Writes(), t.Duration(), t.Extent())
}

// ParseFile parses the trace at path; the trace name is the base filename
// without its extension.
func ParseFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	return Parse(f, name)
}

// Parse reads a trace from r. The row format (MSR or simple) is detected
// from the first data row and must stay consistent; a malformed row fails
// the whole parse with its line number — a trace with silent holes would
// misrepresent the workload it claims to replay.
func Parse(r io.Reader, name string) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var recs []Record
	var t0, prev int64
	var unit sim.Duration
	var cols int
	line := 0
	headerAllowed := true
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		if headerAllowed {
			headerAllowed = false
			if first, _, _ := strings.Cut(s, ","); !startsNumeric(first) {
				continue // one header row, e.g. "Timestamp,Hostname,..."
			}
		}
		fields := strings.Split(s, ",")
		if cols == 0 {
			cols = len(fields)
		} else if len(fields) != cols {
			return nil, fmt.Errorf("trace %s line %d: %d columns in a %d-column trace", name, line, len(fields), cols)
		}
		ts, u, rec, err := parseRow(fields)
		if err != nil {
			return nil, fmt.Errorf("trace %s line %d: %w", name, line, err)
		}
		if len(recs) == 0 {
			t0, unit = ts, u
		} else if ts < prev {
			return nil, fmt.Errorf("trace %s line %d: timestamp moves backwards", name, line)
		}
		prev = ts
		delta := ts - t0
		if delta > math.MaxInt64/int64(unit) {
			return nil, fmt.Errorf("trace %s line %d: timestamp span overflows", name, line)
		}
		rec.At = sim.Duration(delta) * unit
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace %s: %w", name, err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("trace %s: no records", name)
	}
	return &Trace{Name: name, Records: recs}, nil
}

func startsNumeric(field string) bool {
	_, err := strconv.ParseInt(strings.TrimSpace(field), 10, 64)
	return err == nil
}

// parseRow decodes one CSV row into its raw timestamp (with the unit one
// timestamp tick represents) and the address/size-normalized record.
func parseRow(fields []string) (ts int64, unit sim.Duration, rec Record, err error) {
	var opField, offField, sizeField string
	switch len(fields) {
	case 7: // MSR Cambridge: ts,host,disk,type,offset,size,resp
		unit = 100 * sim.Nanosecond
		opField, offField, sizeField = fields[3], fields[4], fields[5]
	case 4: // simple: ts_ns,op,offset,size
		unit = sim.Nanosecond
		opField, offField, sizeField = fields[1], fields[2], fields[3]
	default:
		return 0, 0, rec, fmt.Errorf("%d columns (want 7 MSR or 4 simple)", len(fields))
	}
	ts, err = strconv.ParseInt(strings.TrimSpace(fields[0]), 10, 64)
	if err != nil || ts < 0 {
		return 0, 0, rec, fmt.Errorf("bad timestamp %q", fields[0])
	}
	switch strings.ToLower(strings.TrimSpace(opField)) {
	case "r", "read":
		rec.Op = OpRead
	case "w", "write":
		rec.Op = OpWrite
	default:
		return 0, 0, rec, fmt.Errorf("bad op %q", opField)
	}
	off, err := strconv.ParseInt(strings.TrimSpace(offField), 10, 64)
	if err != nil || off < 0 {
		return 0, 0, rec, fmt.Errorf("bad offset %q", offField)
	}
	size, err := strconv.ParseInt(strings.TrimSpace(sizeField), 10, 64)
	if err != nil {
		return 0, 0, rec, fmt.Errorf("bad size %q", sizeField)
	}
	if size <= 0 {
		return 0, 0, rec, fmt.Errorf("zero-size request")
	}
	if size > MaxRecordBytes {
		return 0, 0, rec, fmt.Errorf("request of %d bytes exceeds the %d-byte bound", size, MaxRecordBytes)
	}
	if off > MaxOffsetBytes-size {
		return 0, 0, rec, fmt.Errorf("offset %d out of range", off)
	}
	rec.LPN = addr.LPNOf(off)
	rec.Pages = addr.PagesFor(off + size - addr.AlignDown(off))
	if int64(rec.Pages)*addr.PageBytes > MaxRecordBytes {
		// An unaligned request right at the size bound would grow past it
		// once page-normalized; reject so accepted rows stay canonical.
		return 0, 0, rec, fmt.Errorf("request of %d pages exceeds the %d-byte bound", rec.Pages, MaxRecordBytes)
	}
	return ts, unit, rec, nil
}

// FormatRecord renders rec as a canonical simple-format row
// ("<ns>,<R|W>,<offset>,<size>"). Parsing a formatted record yields it
// back unchanged — the round-trip property FuzzParseTrace enforces.
func FormatRecord(rec Record) string {
	op := "R"
	if rec.Op == OpWrite {
		op = "W"
	}
	return fmt.Sprintf("%d,%s,%d,%d", int64(rec.At), op, rec.LPN.ByteOffset(), int64(rec.Pages)*addr.PageBytes)
}
