package trace

import (
	"strings"
	"testing"

	"powerfail/internal/addr"
	"powerfail/internal/sim"
)

// TestParseGoldenMSR: the checked-in MSR-format fixture parses with the
// documented unit conversions (100 ns ticks, byte offsets to pages) and
// arrival times relative to the first row.
func TestParseGoldenMSR(t *testing.T) {
	tr, err := ParseFile("testdata/good-msr.csv")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "good-msr" || len(tr.Records) != 3 {
		t.Fatalf("parsed %s with %d records", tr.Name, len(tr.Records))
	}
	want := []Record{
		{At: 0, Op: OpWrite, LPN: 0, Pages: 1},
		{At: sim.Millisecond, Op: OpRead, LPN: 2, Pages: 2},
		{At: 3 * sim.Millisecond, Op: OpWrite, LPN: 5, Pages: 2},
	}
	for i, w := range want {
		if tr.Records[i] != w {
			t.Fatalf("record %d = %+v, want %+v", i, tr.Records[i], w)
		}
	}
}

// TestParseGoldenSimple: the simple-format fixture with comments, a blank
// line, and every accepted op spelling.
func TestParseGoldenSimple(t *testing.T) {
	tr, err := ParseFile("testdata/good-simple.csv")
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		{At: 0, Op: OpWrite, LPN: 0, Pages: 1},
		{At: 250 * sim.Microsecond, Op: OpRead, LPN: 1, Pages: 3},
		{At: 500 * sim.Microsecond, Op: OpWrite, LPN: 256, Pages: 1},
	}
	if len(tr.Records) != len(want) {
		t.Fatalf("parsed %d records, want %d", len(tr.Records), len(want))
	}
	for i, w := range want {
		if tr.Records[i] != w {
			t.Fatalf("record %d = %+v, want %+v", i, tr.Records[i], w)
		}
	}
	if tr.Writes() != 2 || tr.Duration() != 500*sim.Microsecond || tr.Extent() != 257 {
		t.Fatalf("accessors wrong: %s", tr)
	}
}

// TestParseMalformedFixtures: every malformed fixture fails with an error
// naming the offending line — a trace with silent holes would
// misrepresent the workload it claims to replay.
func TestParseMalformedFixtures(t *testing.T) {
	cases := []struct{ file, wantInErr string }{
		{"zero-size.csv", "line 2"},
		{"bad-op.csv", "line 2"},
		{"out-of-range.csv", "line 2"},
		{"backwards-ts.csv", "line 2"},
		{"mixed-columns.csv", "line 2"},
	}
	for _, tc := range cases {
		_, err := ParseFile("testdata/" + tc.file)
		if err == nil {
			t.Errorf("%s: accepted", tc.file)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantInErr) {
			t.Errorf("%s: error %q does not name %q", tc.file, err, tc.wantInErr)
		}
	}
}

func TestParseRejectsEmptyAndJunk(t *testing.T) {
	for _, in := range []string{
		"",
		"# only a comment\n",
		"Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime\n",
		"1,2,3\n",
		"-5,W,0,4096\n",
		"0,W,-4096,4096\n",
		"0,W,0,1073741825\n", // one byte past the request bound
	} {
		if _, err := Parse(strings.NewReader(in), "junk"); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

// TestParseUnalignedOffsets: byte offsets are normalized to the pages the
// request touches.
func TestParseUnalignedOffsets(t *testing.T) {
	tr, err := Parse(strings.NewReader("0,W,100,100\n1000,R,4095,2\n"), "unaligned")
	if err != nil {
		t.Fatal(err)
	}
	if r := tr.Records[0]; r.LPN != 0 || r.Pages != 1 {
		t.Fatalf("record 0: %+v", r)
	}
	if r := tr.Records[1]; r.LPN != 0 || r.Pages != 2 {
		// 4095..4097 straddles the first page boundary.
		t.Fatalf("record 1: %+v", r)
	}
}

// TestFormatRecordRoundTrip: FormatRecord emits the canonical simple row
// and parsing it yields the record back.
func TestFormatRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{At: 0, Op: OpWrite, LPN: 0, Pages: 1},
		{At: 123456789, Op: OpRead, LPN: 777, Pages: 13},
	}
	var b strings.Builder
	for _, r := range recs {
		b.WriteString(FormatRecord(r))
		b.WriteByte('\n')
	}
	tr, err := Parse(strings.NewReader(b.String()), "rt")
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		if tr.Records[i] != r {
			t.Fatalf("round trip %d: %+v != %+v", i, tr.Records[i], r)
		}
	}
}

func smallTrace() *Trace {
	return &Trace{Name: "t", Records: []Record{
		{At: 0, Op: OpWrite, LPN: 0, Pages: 2},
		{At: 100 * sim.Microsecond, Op: OpRead, LPN: 8, Pages: 1},
		{At: 150 * sim.Microsecond, Op: OpWrite, LPN: 4, Pages: 4},
		{At: 400 * sim.Microsecond, Op: OpWrite, LPN: 12, Pages: 2},
	}}
}

// TestReplayerLoopsAndCovers: the replayer wraps to the start when the
// trace runs out and the stats record replays, laps and coverage.
func TestReplayerLoopsAndCovers(t *testing.T) {
	r, err := NewReplayer(Config{Trace: smallTrace()}, 1<<20, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		io := r.Next()
		if io.Pages <= 0 {
			t.Fatalf("io %d has no pages", i)
		}
		if io.Op == OpWrite && io.Data.Pages() != io.Pages {
			t.Fatalf("io %d: payload %d pages for a %d-page write", i, io.Data.Pages(), io.Pages)
		}
		if io.Op == OpRead && io.Data.Pages() != 0 {
			t.Fatalf("io %d: read carries payload", i)
		}
	}
	s := r.Stats()
	if s.Replayed != 10 || s.Laps != 2 || s.Coverage != 1 {
		t.Fatalf("stats: %+v", s)
	}
	if s.Reads+s.Writes != s.Replayed || s.Clamped != 0 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestReplayerScalesToDevice: a trace wider than the device is compressed
// into its address space; every IO stays in bounds and the scaling is
// counted.
func TestReplayerScalesToDevice(t *testing.T) {
	tr := &Trace{Name: "wide", Records: []Record{
		{At: 0, Op: OpWrite, LPN: 0, Pages: 4},
		{At: 1000, Op: OpWrite, LPN: 1 << 30, Pages: 8},
		{At: 2000, Op: OpWrite, LPN: 1 << 31, Pages: 4},
	}}
	const devPages = 1024
	r, err := NewReplayer(Config{Trace: tr}, devPages, sim.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		io := r.Next()
		if int64(io.LPN) < 0 || int64(io.LPN)+int64(io.Pages) > devPages {
			t.Fatalf("io %d out of device bounds: lpn=%d pages=%d", i, io.LPN, io.Pages)
		}
	}
	if s := r.Stats(); s.Clamped == 0 {
		t.Fatalf("wide trace replayed without scaling: %+v", s)
	}
}

// TestReplayerScalesHugeAddresses: scaling addresses near the parser's
// 1 PiB bound onto a large device must not overflow — every placement
// stays in range and preserves relative order.
func TestReplayerScalesHugeAddresses(t *testing.T) {
	tr := &Trace{Name: "huge", Records: []Record{
		{At: 0, Op: OpWrite, LPN: 0, Pages: 1},
		{At: 1000, Op: OpWrite, LPN: 1 << 37, Pages: 1},
		{At: 2000, Op: OpWrite, LPN: (1 << 37) + (1 << 36), Pages: 1},
	}}
	const devPages = int64(1) << 26 // a 256 GiB device
	r, err := NewReplayer(Config{Trace: tr}, devPages, sim.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	var prev addr.LPN = -1
	for i := 0; i < 3; i++ {
		io := r.Next()
		if int64(io.LPN) < 0 || int64(io.LPN)+int64(io.Pages) > devPages {
			t.Fatalf("io %d escaped the device: lpn=%d pages=%d", i, io.LPN, io.Pages)
		}
		if io.LPN <= prev && i > 0 {
			t.Fatalf("scaling lost relative order at io %d: %d after %d", i, io.LPN, prev)
		}
		prev = io.LPN
	}
}

// TestReplayerClampsOversizedRequest: a request bigger than the whole
// device is truncated to it.
func TestReplayerClampsOversizedRequest(t *testing.T) {
	tr := &Trace{Name: "big", Records: []Record{{At: 0, Op: OpWrite, LPN: 0, Pages: 64}}}
	r, err := NewReplayer(Config{Trace: tr}, 16, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	io := r.Next()
	if io.LPN != 0 || io.Pages != 16 {
		t.Fatalf("clamped io: lpn=%d pages=%d", io.LPN, io.Pages)
	}
	if s := r.Stats(); s.Clamped != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestReplayerOpenLoopArrivals: open-loop gaps reproduce the original
// inter-arrival times, wrapped laps continue the cadence, and TimeScale
// stretches the schedule.
func TestReplayerOpenLoopArrivals(t *testing.T) {
	r, err := NewReplayer(Config{Trace: smallTrace(), Mode: OpenLoop}, 1<<20, sim.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	if !r.OpenLoop() {
		t.Fatal("open-loop replayer reports closed loop")
	}
	// Arrivals interleave with issues (the runner's open-loop pattern):
	// each record is armed with its own inter-arrival gap.
	want := []sim.Duration{0, 100 * sim.Microsecond, 50 * sim.Microsecond, 250 * sim.Microsecond}
	for i, w := range want {
		if got := r.NextArrival(); got != w {
			t.Fatalf("gap %d = %v, want %v", i, got, w)
		}
		r.Next()
	}
	// The wrap restarts one mean gap (100us) after the last arrival.
	if got := r.NextArrival(); got != 100*sim.Microsecond {
		t.Fatalf("wrap gap = %v", got)
	}
	// An arrival that fires without an issue (the runner mid-fault-cycle)
	// idles at the trace's mean cadence and does NOT consume the armed
	// record's gap — when issuing resumes, the next record still gets its
	// own spacing.
	if got := r.NextArrival(); got != 100*sim.Microsecond {
		t.Fatalf("paused gap = %v", got)
	}
	r.Next() // lap 1 record 0 issues
	if got := r.NextArrival(); got != 100*sim.Microsecond {
		t.Fatalf("post-pause gap = %v, want the record's own 100us", got)
	}

	slow, err := NewReplayer(Config{Trace: smallTrace(), Mode: OpenLoop, TimeScale: 2}, 1<<20, sim.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	slow.NextArrival()
	slow.Next()
	if got := slow.NextArrival(); got != 200*sim.Microsecond {
		t.Fatalf("scaled gap = %v", got)
	}

	closed, err := NewReplayer(Config{Trace: smallTrace()}, 1<<20, sim.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	if closed.OpenLoop() || closed.NextArrival() != 0 {
		t.Fatal("closed-loop replayer paces arrivals")
	}
}

// TestReplayerDeterministic: the same (config, device, seed) reproduces
// the identical IO stream, payload fingerprints included.
func TestReplayerDeterministic(t *testing.T) {
	mk := func() *Replayer {
		r, err := NewReplayer(Config{Trace: smallTrace()}, 1<<10, sim.NewRNG(7))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := mk(), mk()
	for i := 0; i < 12; i++ {
		x, y := a.Next(), b.Next()
		if x.Op != y.Op || x.LPN != y.LPN || x.Pages != y.Pages || !x.Data.Equal(y.Data) {
			t.Fatalf("io %d diverged: %+v vs %+v", i, x, y)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{},
		{Trace: &Trace{Name: "empty"}},
		{Trace: smallTrace(), Mode: Mode(9)},
		{Trace: smallTrace(), TimeScale: -1},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	if _, err := NewReplayer(Config{Trace: smallTrace()}, 0, sim.NewRNG(1)); err == nil {
		t.Error("zero-page device accepted")
	}
}

// TestConfigJSONSummarizes: a config marshals as a summary — records never
// enter a report.
func TestConfigJSONSummarizes(t *testing.T) {
	c := Config{Trace: smallTrace(), Mode: OpenLoop, TimeScale: 0.5}
	b, err := c.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	got := string(b)
	for _, want := range []string{`"name":"t"`, `"records":4`, `"mode":"open"`, `"time_scale":0.5`} {
		if !strings.Contains(got, want) {
			t.Fatalf("summary %s missing %s", got, want)
		}
	}
	if strings.Contains(got, "4096") || strings.Contains(got, "lpn") {
		t.Fatalf("summary leaks records: %s", got)
	}
	if addr.PageBytes != 4096 {
		t.Fatal("page size drifted; fixtures assume 4 KiB")
	}
}
