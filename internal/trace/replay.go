package trace

import (
	"encoding/json"
	"fmt"
	"math/bits"

	"powerfail/internal/addr"
	"powerfail/internal/content"
	"powerfail/internal/sim"
)

// Mode selects how a Replayer paces the trace's arrivals.
type Mode int

// Replay modes.
const (
	// ClosedLoop replays as fast as possible: the runner's closed loop
	// pulls the next record whenever an outstanding slot frees up.
	ClosedLoop Mode = iota
	// OpenLoop replays with the original inter-arrival times (scaled by
	// Config.TimeScale), so the device sees the trace's own burstiness.
	OpenLoop
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == OpenLoop {
		return "open"
	}
	return "closed"
}

// MarshalJSON renders the mode by name.
func (m Mode) MarshalJSON() ([]byte, error) { return []byte(`"` + m.String() + `"`), nil }

// UnmarshalJSON parses a mode name.
func (m *Mode) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"closed"`:
		*m = ClosedLoop
	case `"open"`:
		*m = OpenLoop
	default:
		return fmt.Errorf("trace: unknown replay mode %s", b)
	}
	return nil
}

// Config selects a parsed trace and its replay pacing.
type Config struct {
	// Trace is the parsed trace to replay (required).
	Trace *Trace
	// Mode is the pacing policy (closed loop by default).
	Mode Mode
	// TimeScale multiplies open-loop inter-arrival gaps (default 1;
	// 0.5 replays twice as fast). Ignored in closed loop.
	TimeScale float64
}

func (c Config) withDefaults() Config {
	if c.TimeScale == 0 {
		c.TimeScale = 1
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Trace == nil || len(c.Trace.Records) == 0 {
		return fmt.Errorf("trace: no trace to replay")
	}
	if c.Mode < ClosedLoop || c.Mode > OpenLoop {
		return fmt.Errorf("trace: unknown mode %d", int(c.Mode))
	}
	if c.TimeScale < 0 {
		return fmt.Errorf("trace: negative TimeScale %g", c.TimeScale)
	}
	return nil
}

// MarshalJSON summarizes the config: name, row count and pacing. The
// records themselves never enter a report — a trace can hold millions of
// rows and reports must stay small and byte-deterministic.
func (c Config) MarshalJSON() ([]byte, error) {
	name, n := "", 0
	if c.Trace != nil {
		name, n = c.Trace.Name, len(c.Trace.Records)
	}
	return json.Marshal(struct {
		Name      string  `json:"name"`
		Records   int     `json:"records"`
		Mode      Mode    `json:"mode"`
		TimeScale float64 `json:"time_scale,omitempty"`
	}{name, n, c.Mode, c.TimeScale})
}

// UnmarshalJSON decodes the compact summary MarshalJSON writes. Only the
// pacing fields are restored — the trace records themselves are never in
// JSON — so a decoded Config describes a replay but cannot re-run one
// (Trace stays nil; Validate rejects it).
func (c *Config) UnmarshalJSON(b []byte) error {
	var s struct {
		Mode      Mode    `json:"mode"`
		TimeScale float64 `json:"time_scale"`
	}
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	c.Trace = nil
	c.Mode = s.Mode
	c.TimeScale = s.TimeScale
	return nil
}

// Stats describes one replay run.
type Stats struct {
	// Records is the number of rows in the trace; Replayed counts IOs
	// issued (laps multiply it); Laps counts completed passes.
	Records  int   `json:"records"`
	Replayed int64 `json:"replayed"`
	Laps     int64 `json:"laps"`
	// Coverage is the fraction of trace rows issued at least once.
	Coverage float64 `json:"coverage"`
	// Clamped counts IOs whose address was scaled or clamped into the
	// device's address space.
	Clamped int64 `json:"clamped"`
	Reads   int64 `json:"reads"`
	Writes  int64 `json:"writes"`
}

// IO is one replayed request, addressed within the device under test.
type IO struct {
	Op    Op
	LPN   addr.LPN
	Pages int
	Data  content.Data // fresh random payload for writes
}

// Replayer walks a trace and emits device-sized IOs. The trace loops when
// exhausted, so a closed loop over Next never stalls; Stats records laps
// and coverage so a report shows how much of the trace a run actually
// exercised. Replay is deterministic: the same (Config, devPages, RNG
// fork) reproduces the same IO stream.
type Replayer struct {
	cfg      Config
	rng      *sim.RNG
	devPages int64
	extent   int64        // trace address extent in pages
	period   sim.Duration // one lap's schedule length (open loop)

	pos     int          // next record to issue
	lap     int64        // completed passes
	armed   int64        // absolute index of the record armed by the last arrival
	prevArm sim.Duration // scheduled (scaled) time of that arrival
	idleGap sim.Duration // pause cadence: the trace's scaled mean gap
	stats   Stats
}

// NewReplayer builds a replayer over a device of devPages host-visible
// pages. The RNG must be a dedicated fork; the replayer consumes it for
// write payload content.
func NewReplayer(cfg Config, devPages int64, rng *sim.RNG) (*Replayer, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if devPages < 1 {
		return nil, fmt.Errorf("trace: device has no pages")
	}
	r := &Replayer{cfg: cfg, rng: rng, devPages: devPages, extent: cfg.Trace.Extent(), armed: -1}
	r.stats.Records = len(cfg.Trace.Records)
	// A wrapped lap restarts the arrival schedule one mean gap after the
	// last record, so looped open-loop replay keeps the trace's cadence.
	gap := cfg.Trace.Duration() / sim.Duration(len(cfg.Trace.Records))
	if gap < sim.Microsecond {
		gap = sim.Microsecond
	}
	r.period = cfg.Trace.Duration() + gap
	r.idleGap = sim.Duration(float64(gap) * cfg.TimeScale)
	if r.idleGap < sim.Microsecond {
		r.idleGap = sim.Microsecond
	}
	return r, nil
}

// Config returns the effective (defaulted) configuration.
func (r *Replayer) Config() Config { return r.cfg }

// OpenLoop reports whether the replayer paces its own arrivals.
func (r *Replayer) OpenLoop() bool { return r.cfg.Mode == OpenLoop }

// Next returns the next replayed IO, wrapping to the start of the trace
// when it runs out.
func (r *Replayer) Next() IO {
	rec := r.cfg.Trace.Records[r.pos]
	r.pos++
	if r.pos == len(r.cfg.Trace.Records) {
		r.pos = 0
		r.lap++
	}
	lpn, pages, clamped := r.place(rec)
	io := IO{Op: rec.Op, LPN: lpn, Pages: pages}
	if rec.Op == OpWrite {
		io.Data = content.Random(r.rng, pages)
		r.stats.Writes++
	} else {
		r.stats.Reads++
	}
	if clamped {
		r.stats.Clamped++
	}
	r.stats.Replayed++
	return io
}

// place fits the record's address into the device's space: a trace wider
// than the device is linearly compressed (preserving relative locality),
// and any residual overhang is clamped to the top of the address space.
func (r *Replayer) place(rec Record) (addr.LPN, int, bool) {
	pages := rec.Pages
	clamped := false
	if int64(pages) > r.devPages {
		pages = int(r.devPages)
		clamped = true
	}
	lpn := int64(rec.LPN)
	if r.extent > r.devPages {
		// 128-bit multiply: lpn can reach 2^38 (the 1 PiB parser bound)
		// and lpn*devPages would overflow int64 on large devices. hi is
		// always below the divisor (lpn < extent and devPages < 2^63), so
		// Div64 cannot panic.
		hi, lo := bits.Mul64(uint64(lpn), uint64(r.devPages))
		q, _ := bits.Div64(hi, lo, uint64(r.extent))
		lpn = int64(q)
		clamped = true
	}
	if lpn+int64(pages) > r.devPages {
		lpn = r.devPages - int64(pages)
		clamped = true
	}
	return addr.LPN(lpn), pages, clamped
}

// NextArrival returns the delay before the next open-loop arrival: the
// next record's own inter-arrival gap, scaled by TimeScale, with wrapped
// laps continuing the schedule at the trace's cadence. The schedule is
// pegged to the record cursor, so a runner pause (a fault cycle's
// verification and recovery, when arrivals fire but nothing issues) never
// consumes record gaps — the replayer idles at the trace's mean cadence
// and each record keeps its original arrival spacing when issuing
// resumes. Closed loop returns 0.
func (r *Replayer) NextArrival() sim.Duration {
	if r.cfg.Mode != OpenLoop {
		return 0
	}
	n := int64(len(r.cfg.Trace.Records))
	idx := r.lap*n + int64(r.pos) // absolute index of the next record to issue
	if idx == r.armed {
		return r.idleGap // armed but not issued: the runner is paused
	}
	r.armed = idx
	at := sim.Duration(float64(sim.Duration(idx/n)*r.period+r.cfg.Trace.Records[idx%n].At) * r.cfg.TimeScale)
	gap := at - r.prevArm
	r.prevArm = at
	if gap < 0 {
		gap = 0
	}
	return gap
}

// Stats returns a snapshot of the replay counters.
func (r *Replayer) Stats() Stats {
	s := r.stats
	s.Laps = r.lap
	distinct := s.Replayed
	if distinct > int64(s.Records) {
		distinct = int64(s.Records)
	}
	if s.Records > 0 {
		s.Coverage = float64(distinct) / float64(s.Records)
	}
	return s
}
