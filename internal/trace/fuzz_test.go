package trace

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"powerfail/internal/addr"
)

// FuzzParseTrace: arbitrary bytes must never panic the parser, and any
// trace it accepts must be canonical. Two properties are enforced:
//
//  1. Parse returns (*Trace, error) for arbitrary input without
//     panicking — a corrupt trace file fails loudly, it never crashes a
//     campaign or replays garbage.
//  2. Canonical form: every accepted record respects the documented
//     bounds (positive page count, bounded size, in-range address,
//     non-decreasing arrivals starting at zero), and re-formatting the
//     records with FormatRecord then re-parsing yields the identical
//     trace — accepted rows have exactly one meaning.
func FuzzParseTrace(f *testing.F) {
	// Seed corpus: the golden fixtures, boundary rows, and targeted
	// corruptions of a valid row.
	for _, fixture := range []string{
		"good-msr.csv", "good-simple.csv", "zero-size.csv", "bad-op.csv",
		"out-of-range.csv", "backwards-ts.csv", "mixed-columns.csv",
	} {
		b, err := os.ReadFile("testdata/" + fixture)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	row := "1000,W,4096,8192\n"
	seeds := []string{
		"",
		"# comment only\n",
		"Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime\n",
		row,
		row + "1000,R,0,1\n",
		"0,W,0,1073741824\n",                      // exactly the size bound
		"0,W,1125899906842623,1\n",                // offset at the address bound
		"9223372036854775807,W,0,4096\n",          // timestamp at int64 max
		"0,w,0,4096\n128166372003061629,W,0,1\n",  // giant timestamp jump
		strings.Repeat("0,W,0,4096\n", 50),        // repeated identical rows
		"128166372003061629,h,0,Write,0,4096,1\n", // MSR row
	}
	for i := 0; i < len(row); i++ {
		mut := []byte(row)
		mut[i] ^= 0x20
		seeds = append(seeds, string(mut))
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, b []byte) {
		tr, err := Parse(bytes.NewReader(b), "fuzz")
		if err != nil {
			return // rejected input: fine, campaigns fail loudly
		}
		if len(tr.Records) == 0 {
			t.Fatal("accepted a trace with no records")
		}
		var prev int64 = -1
		var out strings.Builder
		for i, rec := range tr.Records {
			if rec.Pages <= 0 {
				t.Fatalf("record %d has %d pages", i, rec.Pages)
			}
			if int64(rec.Pages)*addr.PageBytes > MaxRecordBytes {
				t.Fatalf("record %d exceeds the size bound: %d pages", i, rec.Pages)
			}
			if rec.LPN < 0 || rec.LPN.ByteOffset() > MaxOffsetBytes {
				t.Fatalf("record %d out of address range: %v", i, rec.LPN)
			}
			if int64(rec.At) < prev {
				t.Fatalf("record %d arrival moves backwards", i)
			}
			prev = int64(rec.At)
			out.WriteString(FormatRecord(rec))
			out.WriteByte('\n')
		}
		if tr.Records[0].At != 0 {
			t.Fatalf("first arrival at %v, want 0", tr.Records[0].At)
		}
		tr2, err := Parse(strings.NewReader(out.String()), "fuzz")
		if err != nil {
			t.Fatalf("canonical re-encode rejected: %v\n%s", err, out.String())
		}
		if len(tr2.Records) != len(tr.Records) {
			t.Fatalf("round trip changed record count: %d -> %d", len(tr.Records), len(tr2.Records))
		}
		for i := range tr.Records {
			if tr.Records[i] != tr2.Records[i] {
				t.Fatalf("round trip changed record %d: %+v -> %+v", i, tr.Records[i], tr2.Records[i])
			}
		}
	})
}
