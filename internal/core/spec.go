package core

import (
	"fmt"

	"powerfail/internal/sim"
	"powerfail/internal/trace"
	"powerfail/internal/workload"
)

// ExperimentSpec describes one fault-injection experiment.
type ExperimentSpec struct {
	Name string `json:"name"`
	// Source selects the runner's IO source explicitly. The zero value
	// (SourceAuto) infers it: trace replay when Trace is set, the
	// transaction engine when the platform's Options.App is enabled, the
	// synthetic Workload generator otherwise.
	Source   SourceKind    `json:"source,omitempty"`
	Workload workload.Spec `json:"workload"`
	// Trace configures trace replay (required for SourceTrace; selects
	// SourceTrace under SourceAuto). The Workload is ignored when set.
	Trace *trace.Config `json:"trace,omitempty"`
	// Faults is the number of power faults to inject.
	Faults int `json:"faults"`
	// RequestsPerFault spaces fault injections by completed workload
	// requests (jittered by +/-25%).
	RequestsPerFault int `json:"requests_per_fault"`
	// WindowMode pauses the workload after a chosen request completes and
	// injects the fault PostACKDelay later — the Section IV-A experiment
	// measuring data loss after request completion.
	WindowMode   bool         `json:"window_mode,omitempty"`
	PostACKDelay sim.Duration `json:"post_ack_delay_ns,omitempty"`
	// MaxSimTime aborts a runaway experiment (default 6 simulated hours).
	MaxSimTime sim.Duration `json:"max_sim_time_ns,omitempty"`
}

// Validate checks the specification for a platform without an application
// layer (NewRunner re-resolves the source against the platform's actual
// options and validates again).
func (s ExperimentSpec) Validate() error { return s.validate(s.sourceKind(false)) }

// sourceKind resolves the spec's effective source; app reports whether
// the platform has an application layer configured.
func (s ExperimentSpec) sourceKind(app bool) SourceKind {
	if s.Source != SourceAuto {
		return s.Source
	}
	if s.Trace != nil {
		return SourceTrace
	}
	if app {
		return SourceTxn
	}
	return SourceWorkload
}

// validate checks the specification for the resolved source kind — the
// one spec checker every entry point shares.
func (s ExperimentSpec) validate(kind SourceKind) error {
	switch kind {
	case SourceWorkload:
		if err := s.Workload.Validate(); err != nil {
			return err
		}
	case SourceTxn:
		// The engine generates its own IO and is inherently closed-loop;
		// the Workload is ignored except that open-loop pacing is
		// rejected rather than silently dropped.
		if s.Workload.IOPS > 0 {
			return fmt.Errorf("core: the txn source is closed-loop; Workload.IOPS must be 0")
		}
	case SourceTrace:
		if s.Trace == nil {
			return fmt.Errorf("core: source %q needs a Trace config", kind)
		}
		if s.Workload.IOPS > 0 {
			// The replayer paces itself (Trace.Mode); a spec'd IOPS would
			// be silently ignored and then misreported as RequestedIOPS.
			return fmt.Errorf("core: trace replay paces itself; Workload.IOPS must be 0")
		}
		if err := s.Trace.Validate(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("core: cannot validate source kind %v", kind)
	}
	if s.Faults <= 0 {
		return fmt.Errorf("core: Faults must be positive, got %d", s.Faults)
	}
	if s.RequestsPerFault <= 0 {
		return fmt.Errorf("core: RequestsPerFault must be positive, got %d", s.RequestsPerFault)
	}
	if s.WindowMode && s.PostACKDelay < 0 {
		return fmt.Errorf("core: negative PostACKDelay")
	}
	return nil
}
