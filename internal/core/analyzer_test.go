package core

import (
	"errors"
	"testing"

	"powerfail/internal/addr"
	"powerfail/internal/blktrace"
	"powerfail/internal/blockdev"
	"powerfail/internal/content"
	"powerfail/internal/sim"
)

func newAnalyzer() (*sim.Kernel, *Analyzer) {
	k := sim.New()
	return k, NewAnalyzer(k, 2*sim.Second)
}

// issueWrite registers a synthetic completed write packet and drains it
// out of the pending set, mirroring the runner's VerifyCandidates flow.
func issueWrite(a *Analyzer, id uint64, lpn int64, data content.Data) *Packet {
	req := &blockdev.Request{ID: id, Op: blockdev.OpWrite, LPN: addr.LPN(lpn), Pages: data.Pages(), Data: data}
	pkt := a.OnIssue(req)
	a.OnComplete(req)
	pkt.Completed = true
	a.pending = a.pending[:0]
	return pkt
}

func TestClassifyOK(t *testing.T) {
	_, a := newAnalyzer()
	d := content.Make(1, 2, 3)
	pkt := issueWrite(a, 1, 0, d)
	if got := a.Classify(pkt, d, 0); got != FailNone {
		t.Fatalf("classify = %v", got)
	}
	if a.Counters().OKVerified != 1 {
		t.Fatal("OK not counted")
	}
}

func TestClassifyFWA(t *testing.T) {
	_, a := newAnalyzer()
	prev := content.Make(7, 8)
	pkt0 := issueWrite(a, 1, 0, prev)
	a.Classify(pkt0, prev, 0)

	newer := content.Make(9, 10)
	pkt := issueWrite(a, 2, 0, newer)
	// The drive still holds the previous content: FWA.
	if got := a.Classify(pkt, prev, 1); got != FailFWA {
		t.Fatalf("classify = %v, want FWA", got)
	}
	c := a.Counters()
	if c.FWA != 1 || c.DataFailures != 0 {
		t.Fatalf("counters %+v", c)
	}
}

func TestClassifyDataFailure(t *testing.T) {
	_, a := newAnalyzer()
	pkt := issueWrite(a, 1, 0, content.Make(1, 2))
	garbage := content.Make(0xdead, 0xbeef)
	if got := a.Classify(pkt, garbage, 0); got != FailData {
		t.Fatalf("classify = %v, want data failure", got)
	}
}

func TestClassifyPartialFlushIsDataFailure(t *testing.T) {
	_, a := newAnalyzer()
	prev := content.Make(1, 2)
	p0 := issueWrite(a, 1, 0, prev)
	a.Classify(p0, prev, 0)
	want := content.Make(3, 4)
	pkt := issueWrite(a, 2, 0, want)
	// One page flushed, one reverted: neither all-new nor all-old.
	mixed := content.Make(3, 2)
	if got := a.Classify(pkt, mixed, 1); got != FailData {
		t.Fatalf("classify = %v, want data failure", got)
	}
}

func TestClassifyIOError(t *testing.T) {
	_, a := newAnalyzer()
	req := &blockdev.Request{ID: 1, Op: blockdev.OpWrite, LPN: 0, Pages: 1, Data: content.Make(1), Err: errors.New("x")}
	pkt := a.OnIssue(req)
	a.OnComplete(req)
	pkt.Completed = false
	if got := a.Classify(pkt, content.Data{}, 0); got != FailIOError {
		t.Fatalf("classify = %v, want io error", got)
	}
}

func TestClassifyReadNeverDataFailure(t *testing.T) {
	_, a := newAnalyzer()
	req := &blockdev.Request{ID: 1, Op: blockdev.OpRead, LPN: 0, Pages: 4}
	pkt := a.OnIssue(req)
	a.OnComplete(req)
	pkt.Completed = true
	if got := a.Classify(pkt, content.Data{}, 0); got != FailNone {
		t.Fatalf("read classified %v", got)
	}
}

// TestClassifySupersededWAW: the first write of a WAW pair is not a
// failure when the address holds the second write's data.
func TestClassifySupersededWAW(t *testing.T) {
	_, a := newAnalyzer()
	d1 := content.Make(0x11)
	d2 := content.Make(0x22)
	w1 := issueWrite(a, 1, 0, d1)
	w2 := issueWrite(a, 2, 0, d2)
	if got := a.Classify(w1, d2, 0); got != FailNone {
		t.Fatalf("superseded write classified %v", got)
	}
	if got := a.Classify(w2, d2, 0); got != FailNone {
		t.Fatalf("surviving write classified %v", got)
	}
}

// TestClassifyWAWBothLost: both writes of a lost pair are counted, the
// first as FWA (address holds its pre-image) and the second as a data
// failure (holds neither its pre-image nor its payload).
func TestClassifyWAWBothLost(t *testing.T) {
	_, a := newAnalyzer()
	p0 := content.Make(0x01)
	base := issueWrite(a, 1, 0, p0)
	a.Classify(base, p0, 0)

	d1, d2 := content.Make(0x11), content.Make(0x22)
	w1 := issueWrite(a, 2, 0, d1)
	w2 := issueWrite(a, 3, 0, d2)
	if got := a.Classify(w1, p0, 1); got != FailFWA {
		t.Fatalf("w1 = %v, want FWA", got)
	}
	if got := a.Classify(w2, p0, 1); got != FailData {
		t.Fatalf("w2 = %v, want data failure", got)
	}
}

func TestPrevCaptureChains(t *testing.T) {
	_, a := newAnalyzer()
	d1, d2 := content.Make(0x11), content.Make(0x22)
	w1 := issueWrite(a, 1, 0, d1)
	w2 := issueWrite(a, 2, 0, d2)
	if w1.Prev[0] != content.Zero {
		t.Fatal("first write's prev should be Zero")
	}
	if w2.Prev[0] != d1.Page(0) {
		t.Fatal("second write's prev should be the first write's data")
	}
}

func TestNotIssuedSkipsVerification(t *testing.T) {
	_, a := newAnalyzer()
	req := &blockdev.Request{ID: 1, Op: blockdev.OpWrite, LPN: 0, Pages: 1, Data: content.Make(1), NotIssued: true, Err: blockdev.ErrQueueFull}
	a.OnIssue(req)
	a.OnComplete(req) // not-issued packets never join the pending set
	if got := len(a.VerifyCandidates(0)); got != 0 {
		t.Fatalf("not-issued packet in verify set (%d)", got)
	}
	if a.Counters().NotIssued != 1 {
		t.Fatal("NotIssued not counted")
	}
}

func TestRecheckWindowExpiry(t *testing.T) {
	k, a := newAnalyzer()
	d := content.Make(1)
	pkt := issueWrite(a, 1, 0, d)
	a.Classify(pkt, d, 0) // verified clean -> recent set
	// Within the window the packet is re-offered.
	if got := a.VerifyCandidates(k.Now().Add(sim.Second)); len(got) != 1 {
		t.Fatalf("recheck candidates = %d, want 1", len(got))
	}
	a.Classify(pkt, d, 0)
	// Beyond the window it ages out.
	if got := a.VerifyCandidates(k.Now().Add(10 * sim.Second)); len(got) != 0 {
		t.Fatalf("aged candidates = %d, want 0", len(got))
	}
}

func TestLateCorruptionCountsOnce(t *testing.T) {
	_, a := newAnalyzer()
	d := content.Make(0x5)
	pkt := issueWrite(a, 1, 0, d)
	a.Classify(pkt, d, 0)
	// Next fault: the previously verified data is now corrupt.
	bad := content.Make(0x6)
	if got := a.Classify(pkt, bad, 1); got != FailData {
		t.Fatalf("late corruption = %v", got)
	}
	if a.Counters().LateCorruptions != 1 {
		t.Fatal("late corruption not counted")
	}
	// Counting is idempotent per packet.
	a.Classify(pkt, bad, 2)
	if a.Counters().DataFailures != 1 {
		t.Fatal("packet double counted")
	}
}

func TestAttachTrace(t *testing.T) {
	_, a := newAnalyzer()
	req := &blockdev.Request{ID: 42, Op: blockdev.OpWrite, LPN: 0, Pages: 1, Data: content.Make(1)}
	a.OnIssue(req)
	a.OnComplete(req) // stays pending so VerifyCandidates returns it
	ios := []*blktrace.IO{{Req: 42, Subs: 1, SubsDone: 1}}
	a.AttachTrace(ios)
	pkt := a.VerifyCandidates(0)[0]
	if !pkt.Completed {
		t.Fatal("trace completion not attached")
	}
}

func TestPerFaultBreakdown(t *testing.T) {
	_, a := newAnalyzer()
	idx := a.BeginFault(0)
	pkt := issueWrite(a, 1, 0, content.Make(1))
	a.Classify(pkt, content.Make(9), idx)
	pf := a.PerFault()
	if len(pf) != 1 || pf[0].DataFailures != 1 {
		t.Fatalf("per-fault = %+v", pf)
	}
}

func TestFailureKindStrings(t *testing.T) {
	for _, f := range []FailureKind{FailNone, FailData, FailFWA, FailIOError} {
		if f.String() == "" {
			t.Fatal("empty failure string")
		}
	}
}

func TestCountersDataLosses(t *testing.T) {
	c := Counters{DataFailures: 3, FWA: 4}
	if c.DataLosses() != 7 {
		t.Fatal("DataLosses wrong")
	}
}
