package core

import (
	"context"
	"testing"

	"powerfail/internal/sim"
	"powerfail/internal/ssd"
	"powerfail/internal/workload"
)

// TestSmokeExperiment runs a small but complete fault-injection experiment
// end to end and sanity-checks the report.
func TestSmokeExperiment(t *testing.T) {
	prof := ssd.ProfileA()
	prof.CapacityGB = 8 // keep the FTL maps small for the smoke test
	rep, err := RunExperiment(context.Background(), Options{Seed: 42, Profile: prof}, ExperimentSpec{
		Name: "smoke",
		Workload: workload.Spec{
			Name:     "smoke",
			WSSBytes: 1 << 30,
			MinSize:  4 << 10,
			MaxSize:  1 << 20,
			ReadPct:  0,
			Pattern:  workload.Random,
		},
		Faults:           10,
		RequestsPerFault: 16,
		MaxSimTime:       20 * sim.Minute,
	})
	if err != nil {
		t.Fatalf("experiment failed: %v", err)
	}
	t.Logf("report:\n%s", rep)
	if rep.Faults != 10 {
		t.Errorf("faults = %d, want 10", rep.Faults)
	}
	if rep.Requests < 100 {
		t.Errorf("requests = %d, want >= 100", rep.Requests)
	}
	if rep.DataLosses() == 0 {
		t.Errorf("expected some data losses on a write workload, got none")
	}
	if rep.Counters.OKVerified == 0 {
		t.Errorf("expected most requests to verify clean")
	}
}
