package core
