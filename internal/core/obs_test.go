package core

import (
	"context"
	"encoding/json"
	"testing"

	"powerfail/internal/fleet"
	"powerfail/internal/obs"
	"powerfail/internal/sim"
	"powerfail/internal/ssd"
	"powerfail/internal/txn"
	"powerfail/internal/workload"
)

// obsTestSpec is a small single-SSD experiment the observability tests
// share.
func obsTestSpec() ExperimentSpec {
	return ExperimentSpec{
		Name: "obs",
		Workload: workload.Spec{
			Name:     "obs",
			WSSBytes: 1 << 30,
			MinSize:  4 << 10,
			MaxSize:  64 << 10,
			Pattern:  workload.Random,
		},
		Faults:           4,
		RequestsPerFault: 12,
		MaxSimTime:       20 * sim.Minute,
	}
}

func obsTestOpts(cfg *obs.Config) Options {
	prof := ssd.ProfileA()
	prof.CapacityGB = 8
	return Options{Seed: 99, Profile: prof, Obs: cfg}
}

func runObs(t *testing.T, opts Options, spec ExperimentSpec) *Report {
	t.Helper()
	rep, err := RunExperiment(context.Background(), opts, spec)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestObsEquivalence is the acceptance criterion: an experiment run with
// the observability layer fully enabled produces a report byte-identical
// (JSON) to the same experiment with it disabled, once the optional obs
// section is stripped — observation never perturbs the simulation.
func TestObsEquivalence(t *testing.T) {
	spec := obsTestSpec()
	off := runObs(t, obsTestOpts(nil), spec)
	zero := runObs(t, obsTestOpts(&obs.Config{}), spec)
	on := runObs(t, obsTestOpts(&obs.Config{Metrics: true, Trace: true}), spec)

	if off.Obs != nil || zero.Obs != nil {
		t.Fatal("disabled runs must not carry an obs summary")
	}
	if on.Obs == nil || len(on.ObsTrace) == 0 {
		t.Fatal("enabled run carries no obs data")
	}
	stripped := *on
	stripped.Obs = nil

	offJSON, err := json.Marshal(off)
	if err != nil {
		t.Fatal(err)
	}
	zeroJSON, err := json.Marshal(zero)
	if err != nil {
		t.Fatal(err)
	}
	onJSON, err := json.Marshal(&stripped)
	if err != nil {
		t.Fatal(err)
	}
	if string(offJSON) != string(zeroJSON) {
		t.Errorf("nil config and zero config reports diverged:\n%s\n%s", offJSON, zeroJSON)
	}
	if string(offJSON) != string(onJSON) {
		t.Errorf("observability changed the experiment outcome:\n%s\n%s", offJSON, onJSON)
	}
}

// TestObsMetricsPopulated: the enabled run records the block-device,
// power-scheduler and runner instrumentation the platform wires up.
func TestObsMetricsPopulated(t *testing.T) {
	spec := obsTestSpec()
	rep := runObs(t, obsTestOpts(&obs.Config{Metrics: true, Trace: true}), spec)
	s := rep.Obs
	if rep.Events == 0 {
		t.Error("kernel event count missing")
	}
	if s.Counter("blockdev/submitted") == 0 {
		t.Error("blockdev/submitted not counted")
	}
	if got, want := s.Counter("power/cuts"), int64(rep.Cuts); got != want {
		t.Errorf("power/cuts = %d, want %d (report cuts)", got, want)
	}
	if got, want := s.Counter("power/restores"), int64(rep.Restores); got != want {
		t.Errorf("power/restores = %d, want %d (report restores)", got, want)
	}
	if h := s.Histogram("blockdev/q2c_write_ns"); h.Count == 0 {
		t.Error("write latency histogram empty")
	} else if h.P50 < h.Min || h.P99 > h.Max || h.P50 > h.P99 {
		t.Errorf("write latency quantiles inconsistent: %+v", h)
	}
	if h := s.Histogram("runner/fault_cycle_ns"); h.Count != uint64(rep.Faults) {
		t.Errorf("fault_cycle histogram count = %d, want %d", h.Count, rep.Faults)
	}

	var power, qdepth, blk int
	for _, ev := range rep.ObsTrace {
		switch ev.Kind {
		case obs.KindPower:
			power++
		case obs.KindQueueDepth:
			qdepth++
		case obs.KindBlockIO:
			blk++
		}
	}
	if power != rep.Cuts+rep.Restores {
		t.Errorf("power trace events = %d, want %d", power, rep.Cuts+rep.Restores)
	}
	if qdepth == 0 || blk == 0 {
		t.Errorf("queue-depth (%d) or block-IO (%d) trace events missing", qdepth, blk)
	}
}

// TestObsTxnInstrumented: the transactional source wires the engine's
// telemetry through the platform scope.
func TestObsTxnInstrumented(t *testing.T) {
	prof := ssd.ProfileA()
	prof.CapacityGB = 8
	cfg := txn.DefaultConfig()
	opts := Options{
		Seed:    31,
		Profile: prof,
		App:     AppConfig{Txn: &cfg},
		Obs:     &obs.Config{Metrics: true, Trace: true},
	}
	rep := runObs(t, opts, ExperimentSpec{
		Name:             "obs-txn",
		Faults:           3,
		RequestsPerFault: 8,
		MaxSimTime:       20 * sim.Minute,
	})
	s := rep.Obs
	if s.Counter("txn/begins") == 0 || s.Counter("txn/commits") == 0 {
		t.Errorf("txn lifecycle counters empty: begins=%d commits=%d",
			s.Counter("txn/begins"), s.Counter("txn/commits"))
	}
	if got, want := s.Counter("txn/recovery_scans"), int64(rep.TxnStats.RecoveryScans); got != want {
		t.Errorf("txn/recovery_scans = %d, want %d", got, want)
	}
	if h := s.Histogram("txn/commit_latency_ns"); h.Count != uint64(s.Counter("txn/commits")) {
		t.Errorf("commit latency count %d != commits %d", h.Count, s.Counter("txn/commits"))
	}
	var txnEvents int
	for _, ev := range rep.ObsTrace {
		if ev.Kind == obs.KindTxn {
			txnEvents++
		}
	}
	if txnEvents == 0 {
		t.Error("no txn trace events")
	}
}

// TestObsFleetInstrumented: the fleet path wires power, state-machine and
// rebuild-window telemetry, and observation leaves its report unchanged.
func TestObsFleetInstrumented(t *testing.T) {
	fcfg := &fleet.Config{
		Arrays:   4,
		Spares:   2,
		Member:   fleet.MemberProfile{Pages: 1024},
		Rebuild:  fleet.RebuildPolicy{Delay: sim.Second},
		Faults:   fleet.FaultPlan{Level: fleet.PSU, Count: 4, Outage: 3 * sim.Second},
		Duration: 20 * sim.Second,
	}
	run := func(cfg *obs.Config) *Report {
		return runObs(t, Options{Seed: 7, Fleet: fcfg, Obs: cfg},
			ExperimentSpec{Name: "obs-fleet"})
	}
	off := run(nil)
	on := run(&obs.Config{Metrics: true, Trace: true})

	stripped := *on
	stripped.Obs = nil
	offJSON, _ := json.Marshal(off)
	onJSON, _ := json.Marshal(&stripped)
	if string(offJSON) != string(onJSON) {
		t.Errorf("observability changed the fleet outcome:\n%s\n%s", offJSON, onJSON)
	}

	s := on.Obs
	if got, want := s.Counter("power/cuts"), int64(on.Fleet.Cuts); got != want {
		t.Errorf("power/cuts = %d, want %d", got, want)
	}
	if s.Counter("fleet/slot_transitions") == 0 {
		t.Error("no slot transitions recorded")
	}
	if got, want := s.Counter("fleet/declared_failures"), int64(on.Fleet.DeclaredFailures); got != want {
		t.Errorf("fleet/declared_failures = %d, want %d", got, want)
	}
	if h := s.Histogram("fleet/rebuild_window_ns"); h.Count != uint64(on.Fleet.RebuildCompleted) {
		t.Errorf("rebuild window histogram count = %d, want %d", h.Count, on.Fleet.RebuildCompleted)
	}
	var stateEvents int
	for _, ev := range on.ObsTrace {
		if ev.Kind == obs.KindState {
			stateEvents++
		}
	}
	if stateEvents == 0 {
		t.Error("no rebuild state-transition trace events")
	}
}
