package core

import (
	"context"
	"errors"
	"testing"

	"powerfail/internal/sim"
	"powerfail/internal/ssd"
	"powerfail/internal/workload"
)

// smallOpts keeps device maps small and runs fast.
func smallOpts(seed uint64) Options {
	prof := ssd.ProfileA()
	prof.CapacityGB = 8
	return Options{Seed: seed, Profile: prof}
}

func smallWrites() workload.Spec {
	return workload.Spec{
		Name:     "w",
		WSSBytes: 1 << 30,
		MinSize:  4 << 10,
		MaxSize:  1 << 20,
		Pattern:  workload.Random,
	}
}

func runSmall(t *testing.T, opts Options, spec ExperimentSpec) *Report {
	t.Helper()
	rep, err := RunExperiment(context.Background(), opts, spec)
	if err != nil {
		t.Fatalf("experiment: %v", err)
	}
	return rep
}

// TestRunCancelledContext: a pre-cancelled context returns immediately;
// a context cancelled mid-flight stops the simulation promptly with a
// partial report.
func TestRunCancelledContext(t *testing.T) {
	spec := ExperimentSpec{Name: "cancel", Workload: smallWrites(), Faults: 50, RequestsPerFault: 16}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := RunExperiment(cancelled, smallOpts(21), spec)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled ctx: err = %v", err)
	}
	if rep == nil || rep.Faults != 0 {
		t.Fatalf("pre-cancelled ctx ran faults: %+v", rep)
	}

	p, err := NewPlatform(smallOpts(22))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancelMid := context.WithCancel(context.Background())
	p.K.After(sim.Second, cancelMid)
	rep, err = r.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-flight cancel: err = %v", err)
	}
	if rep.Faults >= spec.Faults {
		t.Fatalf("cancelled run completed all %d faults", rep.Faults)
	}
}

func TestDeterministicReports(t *testing.T) {
	spec := ExperimentSpec{Name: "det", Workload: smallWrites(), Faults: 8, RequestsPerFault: 12}
	a := runSmall(t, smallOpts(99), spec)
	b := runSmall(t, smallOpts(99), spec)
	if a.Counters != b.Counters {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a.Counters, b.Counters)
	}
	if a.Requests != b.Requests || a.SimDuration != b.SimDuration {
		t.Fatal("non-counter report fields diverged")
	}
	c := runSmall(t, smallOpts(100), spec)
	if a.Counters == c.Counters {
		t.Fatal("different seeds produced identical counters (suspicious)")
	}
}

// TestWriteWorkloadLosesData: the paper's core finding — write workloads
// suffer data losses under power faults.
func TestWriteWorkloadLosesData(t *testing.T) {
	rep := runSmall(t, smallOpts(1), ExperimentSpec{
		Name: "writes", Workload: smallWrites(), Faults: 12, RequestsPerFault: 16,
	})
	if rep.DataLosses() == 0 {
		t.Fatal("no data losses on a write workload")
	}
	if rep.Counters.OKVerified == 0 {
		t.Fatal("nothing verified clean either; harness broken")
	}
	if rep.Faults != 12 {
		t.Fatalf("faults = %d", rep.Faults)
	}
}

// TestReadOnlyWorkloadNoDataFailures mirrors Fig. 5's 100%-read point:
// IO errors occur but no data failures.
func TestReadOnlyWorkloadNoDataFailures(t *testing.T) {
	w := smallWrites()
	w.ReadPct = 100
	rep := runSmall(t, smallOpts(2), ExperimentSpec{
		Name: "reads", Workload: w, Faults: 12, RequestsPerFault: 16,
	})
	if rep.DataLosses() != 0 {
		t.Fatalf("read-only workload lost data: %+v", rep.Counters)
	}
	if rep.Counters.IOErrors == 0 {
		t.Fatal("read-only workload saw no IO errors across 12 faults")
	}
}

// TestRARSequenceNoDataFailures mirrors Fig. 9's RAR bar.
func TestRARSequenceNoDataFailures(t *testing.T) {
	w := smallWrites()
	w.Sequence = workload.RAR
	rep := runSmall(t, smallOpts(3), ExperimentSpec{
		Name: "rar", Workload: w, Faults: 10, RequestsPerFault: 16,
	})
	if rep.DataLosses() != 0 {
		t.Fatalf("RAR lost data: %+v", rep.Counters)
	}
}

// TestSuperCapEliminatesLosses mirrors the power-loss-protection claim.
func TestSuperCapEliminatesLosses(t *testing.T) {
	opts := smallOpts(4)
	opts.Profile = opts.Profile.WithSuperCap()
	rep := runSmall(t, opts, ExperimentSpec{
		Name: "plp", Workload: smallWrites(), Faults: 12, RequestsPerFault: 16,
	})
	if rep.DataLosses() != 0 {
		t.Fatalf("supercap drive lost data: %+v", rep.Counters)
	}
	if rep.DeviceStats.PanicFlushes == 0 {
		t.Fatal("no panic flushes recorded")
	}
}

// TestCacheDisabledStillFails mirrors Section IV-A: failures are not only
// due to the DRAM cache; they persist with the cache disabled.
func TestCacheDisabledStillFails(t *testing.T) {
	opts := smallOpts(5)
	opts.Profile = opts.Profile.WithCacheDisabled()
	rep := runSmall(t, opts, ExperimentSpec{
		Name: "nocache", Workload: smallWrites(), Faults: 25, RequestsPerFault: 16,
	})
	if rep.DataLosses() == 0 {
		t.Fatal("cache-disabled drive never lost data over 25 faults")
	}
}

// TestWindowModeFarDelayIsSafe: a fault a long time after the last ACK
// finds everything durable.
func TestWindowModeFarDelayIsSafe(t *testing.T) {
	rep := runSmall(t, smallOpts(6), ExperimentSpec{
		Name: "window-far", Workload: smallWrites(), Faults: 8, RequestsPerFault: 12,
		WindowMode: true, PostACKDelay: 3 * sim.Second,
	})
	if rep.DataLosses() != 0 {
		t.Fatalf("losses %d at 3s post-ACK delay", rep.DataLosses())
	}
}

// TestWindowModeImmediateLoses: a fault right at the ACK catches the
// cached data.
func TestWindowModeImmediateLoses(t *testing.T) {
	rep := runSmall(t, smallOpts(7), ExperimentSpec{
		Name: "window-0", Workload: smallWrites(), Faults: 15, RequestsPerFault: 12,
		WindowMode: true, PostACKDelay: 0,
	})
	if rep.DataLosses() == 0 {
		t.Fatal("no losses with faults at ACK+0")
	}
}

func TestIOPSPacedExperiment(t *testing.T) {
	w := smallWrites()
	w.MaxSize = 64 << 10
	w.IOPS = 2000
	rep := runSmall(t, smallOpts(8), ExperimentSpec{
		Name: "paced", Workload: w, Faults: 6, RequestsPerFault: 20,
	})
	if rep.RespondedIOPS < 1000 || rep.RespondedIOPS > 2600 {
		t.Fatalf("responded IOPS = %.0f for requested 2000", rep.RespondedIOPS)
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []ExperimentSpec{
		{Workload: smallWrites(), Faults: 0, RequestsPerFault: 1},
		{Workload: smallWrites(), Faults: 1, RequestsPerFault: 0},
		{Workload: workload.Spec{}, Faults: 1, RequestsPerFault: 1},
		{Workload: smallWrites(), Faults: 1, RequestsPerFault: 1, WindowMode: true, PostACKDelay: -1},
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Errorf("spec %d accepted", i)
		}
	}
}

func TestReportRendering(t *testing.T) {
	rep := runSmall(t, smallOpts(9), ExperimentSpec{
		Name: "render", Workload: smallWrites(), Faults: 5, RequestsPerFault: 8,
	})
	if rep.String() == "" || rep.Row() == "" {
		t.Fatal("report rendering empty")
	}
	if rep.DataFailures() != rep.Counters.DataFailures ||
		rep.FWA() != rep.Counters.FWA || rep.IOErrors() != rep.Counters.IOErrors {
		t.Fatal("report accessors inconsistent")
	}
}

// TestHardwareChainExercised: the fault path runs through the Arduino,
// ATX pin and PSU rather than poking the device directly.
func TestHardwareChainExercised(t *testing.T) {
	p, err := NewPlatform(smallOpts(10))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(p, ExperimentSpec{
		Name: "hw", Workload: smallWrites(), Faults: 4, RequestsPerFault: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if p.Arduino.Commands() != 8 { // cut + restore per fault
		t.Fatalf("arduino commands = %d, want 8", p.Arduino.Commands())
	}
	if p.PSU.Cuts() != 4 || p.PSU.Restores() != 4 {
		t.Fatalf("psu cuts=%d restores=%d", p.PSU.Cuts(), p.PSU.Restores())
	}
	if p.SSD.Stats().Deaths != 4 || p.SSD.Stats().Recoveries != 4 {
		t.Fatalf("device deaths=%d recoveries=%d", p.SSD.Stats().Deaths, p.SSD.Stats().Recoveries)
	}
}

// TestPerFaultOutcomesSum: the per-fault breakdown adds up to the totals.
func TestPerFaultOutcomesSum(t *testing.T) {
	rep := runSmall(t, smallOpts(11), ExperimentSpec{
		Name: "sum", Workload: smallWrites(), Faults: 10, RequestsPerFault: 12,
	})
	var data, fwa, io int
	for _, f := range rep.PerFault {
		data += f.DataFailures
		fwa += f.FWA
		io += f.IOErrors
	}
	if data != rep.Counters.DataFailures || fwa != rep.Counters.FWA || io != rep.Counters.IOErrors {
		t.Fatalf("per-fault sums (%d,%d,%d) != totals (%d,%d,%d)",
			data, fwa, io, rep.Counters.DataFailures, rep.Counters.FWA, rep.Counters.IOErrors)
	}
}

// TestFasterCutLosesMoreOrEqual: the transistor-style instantaneous cut
// denies the drive its 40 ms of powered grace, so it can only do worse
// (or equal) versus the realistic PSU discharge.
func TestFasterCutLosesMoreOrEqual(t *testing.T) {
	spec := ExperimentSpec{Name: "cut", Workload: smallWrites(), Faults: 20, RequestsPerFault: 16}
	slow := runSmall(t, smallOpts(12), spec)

	fast := smallOpts(12)
	fast.PSU.VNominal = 5
	fast.PSU.Capacitance = 2e-6
	fast.PSU.BleedOhms = 27.7
	fast.PSU.RiseTime = sim.Millisecond
	fastRep := runSmall(t, fast, spec)

	if fastRep.DataLosses()+3 < slow.DataLosses() {
		t.Fatalf("instant cut lost far less (%d) than slow discharge (%d)",
			fastRep.DataLosses(), slow.DataLosses())
	}
}
