package core

import (
	"testing"

	"powerfail/internal/array"
	"powerfail/internal/hdd"
	"powerfail/internal/ssd"
	"powerfail/internal/workload"
)

// memberProfile keeps array-member FTL maps small.
func memberProfile() ssd.Profile {
	p := ssd.ProfileA()
	p.CapacityGB = 1
	p.Channels = 4
	p.Dies = 4
	return p
}

func raidOpts(seed uint64, level array.Level, n int) Options {
	members := make([]ssd.Profile, n)
	for i := range members {
		members[i] = memberProfile()
	}
	return Options{
		Seed:     seed,
		Topology: Topology{Kind: TopoArray, Array: array.Config{Level: level, Members: members}},
	}
}

func cacheOpts(seed uint64, policy array.CachePolicy) Options {
	back := hdd.DefaultProfile()
	back.CapacityGB = 4
	return Options{
		Seed: seed,
		Topology: Topology{Kind: TopoArray, Array: array.Config{
			Level: array.Cached, Cache: memberProfile(), Backing: back, Policy: policy,
		}},
	}
}

func tinyWrites(wssMB int) workload.Spec {
	return workload.Spec{
		Name:     "w",
		WSSBytes: int64(wssMB) << 20,
		MinSize:  4 << 10,
		MaxSize:  64 << 10,
		Pattern:  workload.Random,
	}
}

// TestHDDTopology: the single-HDD topology runs the whole platform stack;
// a write-through disk never loses acknowledged data, and the report
// carries the HDD stats and cut/restore counts.
func TestHDDTopology(t *testing.T) {
	rep := runSmall(t, Options{Seed: 31, Topology: Topology{Kind: TopoHDD}}, ExperimentSpec{
		Name: "hdd", Workload: tinyWrites(256), Faults: 4, RequestsPerFault: 8,
	})
	if rep.Profile != "HDD" {
		t.Fatalf("profile = %q", rep.Profile)
	}
	if rep.HDDStats == nil || rep.HDDStats.Deaths == 0 {
		t.Fatalf("hdd stats missing or no deaths: %+v", rep.HDDStats)
	}
	if rep.Cuts != 4 || rep.Restores != 4 {
		t.Fatalf("cuts=%d restores=%d, want 4/4", rep.Cuts, rep.Restores)
	}
	if losses := rep.DataLosses(); losses != 0 {
		t.Fatalf("write-through HDD lost %d acknowledged requests", losses)
	}
}

// TestRAIDTopologiesUnderFaults: RAID-1 and RAID-5 run under fault
// injection with per-member failure attribution in the report.
func TestRAIDTopologiesUnderFaults(t *testing.T) {
	cases := []struct {
		name  string
		level array.Level
		n     int
		wssMB int
	}{
		{"raid1x2", array.RAID1, 2, 256},
		{"raid5x3", array.RAID5, 3, 512},
	}
	for _, tc := range cases {
		rep := runSmall(t, raidOpts(41, tc.level, tc.n), ExperimentSpec{
			Name: tc.name, Workload: tinyWrites(tc.wssMB), Faults: 6, RequestsPerFault: 10,
		})
		if rep.Faults != 6 {
			t.Fatalf("%s: faults=%d", tc.name, rep.Faults)
		}
		if rep.ArrayStats == nil || len(rep.Members) != tc.n {
			t.Fatalf("%s: array stats/members missing: %+v", tc.name, rep.Members)
		}
		served := int64(0)
		attributed := 0
		for _, m := range rep.Members {
			served += m.Reads + m.Writes
			attributed += m.DataFailures + m.FWA + m.IOErrors
			if m.Deaths == 0 {
				t.Fatalf("%s: member %d never died — faults not correlated?", tc.name, m.Index)
			}
		}
		if served == 0 {
			t.Fatalf("%s: members served nothing", tc.name)
		}
		total := rep.Counters.DataFailures + rep.Counters.FWA + rep.Counters.IOErrors
		if total > 0 && attributed == 0 {
			t.Fatalf("%s: %d failures but none attributed to members", tc.name, total)
		}
		if total == 0 {
			t.Logf("%s: no failures this run (seed-dependent)", tc.name)
		}
	}
}

// TestCachePolicyLossUnderFaults is the acceptance assertion: a write-back
// SSD cache over an HDD loses acknowledged data under power faults, while
// the write-through configuration does not.
func TestCachePolicyLossUnderFaults(t *testing.T) {
	spec := ExperimentSpec{
		Name: "cache", Workload: tinyWrites(256), Faults: 6, RequestsPerFault: 12,
	}
	wb := runSmall(t, cacheOpts(51, array.WriteBack), spec)
	if wb.DataLosses() == 0 {
		t.Fatalf("write-back cache lost nothing over %d faults:\n%s", wb.Faults, wb)
	}
	if wb.ArrayStats == nil || wb.ArrayStats.CacheHits == 0 {
		t.Fatalf("write-back ran without cache hits: %+v", wb.ArrayStats)
	}
	// The dirty lines live only on the cache SSD, so the attribution must
	// point at the cache member, not the backing drive.
	if wb.Members[0].Role != "cache" || wb.Members[0].DataFailures+wb.Members[0].FWA == 0 {
		t.Fatalf("loss not attributed to the cache member: %+v", wb.Members)
	}

	wt := runSmall(t, cacheOpts(51, array.WriteThrough), spec)
	if losses := wt.DataLosses(); losses != 0 {
		t.Fatalf("write-through cache lost %d acknowledged requests:\n%s", losses, wt)
	}
}
