package core

import (
	"context"
	"encoding/json"
	"testing"

	"powerfail/internal/fleet"
	"powerfail/internal/sim"
)

// TestDegenerateTreeEquivalence proves the classic single-PSU platform is
// the degenerate case of the fault-domain tree: a scheduler routed through
// an explicit multi-level single-path tree (room → rack → enclosure → PSU,
// fan-out 1 everywhere, cutting the root) produces a byte-identical report
// to the stock scheduler's one-node tree.
func TestDegenerateTreeEquivalence(t *testing.T) {
	spec := ExperimentSpec{Name: "equiv", Workload: smallWrites(), Faults: 4, RequestsPerFault: 12}

	run := func(mutate func(p *Platform)) *Report {
		p, err := NewPlatform(smallOpts(77))
		if err != nil {
			t.Fatal(err)
		}
		if mutate != nil {
			mutate(p)
		}
		r, err := NewRunner(p, spec)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := r.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	base := run(nil)
	deep := run(func(p *Platform) {
		tree, err := fleet.NewTree(fleet.DomainConfig{Racks: 1, EnclosuresPerRack: 1, PSUsPerEnclosure: 1})
		if err != nil {
			t.Fatal(err)
		}
		p.Sched = NewFaultSchedulerOverTree(p.K, p.Arduino, tree)
	})

	jb, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	jd, err := json.Marshal(deep)
	if err != nil {
		t.Fatal(err)
	}
	if string(jb) != string(jd) {
		t.Fatalf("single-path tree diverged from one-node tree:\n%s\n%s", jb, jd)
	}
	if base.Cuts != spec.Faults || base.Restores != spec.Faults {
		t.Fatalf("cut/restore accounting changed: cuts=%d restores=%d want %d", base.Cuts, base.Restores, spec.Faults)
	}
}

// TestFleetExperimentThroughCore runs the fleet path via the ordinary
// RunExperiment entry point.
func TestFleetExperimentThroughCore(t *testing.T) {
	cfg := fleet.Config{
		Arrays:   4,
		Spares:   2,
		Member:   fleet.MemberProfile{Pages: 1024},
		Rebuild:  fleet.RebuildPolicy{Delay: sim.Second},
		Duration: 20 * sim.Second,
	}
	rep, err := RunExperiment(context.Background(), Options{Seed: 5, Fleet: &cfg}, ExperimentSpec{Name: "fleet-smoke"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Source != "fleet" {
		t.Errorf("source = %q, want fleet", rep.Source)
	}
	if rep.Fleet == nil {
		t.Fatal("report has no fleet stats")
	}
	if rep.Cuts == 0 || rep.Cuts != rep.Fleet.Cuts {
		t.Errorf("cuts: report=%d fleet=%d", rep.Cuts, rep.Fleet.Cuts)
	}
	if rep.Fleet.Events == 0 || rep.Requests == 0 {
		t.Errorf("fleet ran no work: events=%d requests=%d", rep.Fleet.Events, rep.Requests)
	}
	if len(rep.String()) == 0 {
		t.Error("empty String()")
	}

	// spec.Faults overrides the random plan's cut count.
	rep2, err := RunExperiment(context.Background(), Options{Seed: 5, Fleet: &cfg}, ExperimentSpec{Name: "fleet-smoke", Faults: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Fleet.Cuts != 5 {
		t.Errorf("spec.Faults=5 produced %d cuts", rep2.Fleet.Cuts)
	}
}
