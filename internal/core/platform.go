package core

import (
	"fmt"

	"powerfail/internal/blktrace"
	"powerfail/internal/blockdev"
	"powerfail/internal/power"
	"powerfail/internal/sim"
	"powerfail/internal/ssd"
)

// Options configures a Platform instance.
type Options struct {
	// Seed drives every random stream; identical (Seed, spec) pairs
	// reproduce identical reports.
	Seed uint64
	// Profile is the drive under test; zero value selects SSD A.
	Profile ssd.Profile
	// Host overrides the block-layer configuration.
	Host blockdev.Config
	// PSU overrides the supply's electrical model.
	PSU power.Config
	// Concurrency is the closed-loop outstanding-request budget
	// (default 1: a synchronous IO thread, as in the paper's generator).
	Concurrency int
	// ThinkTime separates a completion from the next closed-loop issue.
	ThinkTime sim.Duration
	// SettleAfterOff holds the rail at the floor before restoring power.
	SettleAfterOff sim.Duration
	// OffFloorVolts is the rail voltage treated as fully discharged.
	OffFloorVolts float64
	// RecheckWindow bounds re-verification of already verified packets.
	RecheckWindow sim.Duration
	// Trace disables blktrace recording when false is forced; tracing is
	// on by default (required for completed/incomplete detection).
	DisableTrace bool
}

func (o Options) withDefaults() Options {
	if o.Profile.Name == "" {
		o.Profile = ssd.ProfileA()
	}
	if o.Host == (blockdev.Config{}) {
		o.Host = blockdev.DefaultConfig()
	}
	if o.PSU == (power.Config{}) {
		o.PSU = power.DefaultConfig()
	}
	if o.Concurrency == 0 {
		o.Concurrency = 1
	}
	if o.ThinkTime == 0 {
		o.ThinkTime = 300 * sim.Microsecond
	}
	if o.SettleAfterOff == 0 {
		o.SettleAfterOff = 150 * sim.Millisecond
	}
	if o.OffFloorVolts == 0 {
		o.OffFloorVolts = 0.25
	}
	if o.RecheckWindow == 0 {
		o.RecheckWindow = 2 * sim.Second
	}
	return o
}

// Platform wires the hardware part (PSU, ATX, Arduino) to the device under
// test and the software part (scheduler, IO generator, analyzer) exactly
// as in Fig. 1 of the paper.
type Platform struct {
	Opts Options

	K       *sim.Kernel
	RNG     *sim.RNG
	PSU     *power.PSU
	ATX     *power.ATX
	Arduino *power.Arduino
	Dev     *ssd.Device
	Host    *blockdev.Queue
	Tracer  *blktrace.Tracer
	Sched   *FaultScheduler
}

// NewPlatform builds and wires a complete test platform.
func NewPlatform(opts Options) (*Platform, error) {
	opts = opts.withDefaults()
	k := sim.New()
	root := sim.NewRNG(opts.Seed)

	psu, err := power.New(k, opts.PSU)
	if err != nil {
		return nil, fmt.Errorf("core: psu: %w", err)
	}
	atx := power.NewATX(psu)
	ard := power.NewArduino(k, power.DefaultSerialLatency, atx.SetPin16)

	dev, err := ssd.New(k, root.Fork("ssd"), opts.Profile, psu)
	if err != nil {
		return nil, fmt.Errorf("core: device: %w", err)
	}

	var tracer *blktrace.Tracer
	if !opts.DisableTrace {
		tracer = blktrace.NewTracer()
	}
	host, err := blockdev.New(k, dev, tracer, opts.Host)
	if err != nil {
		return nil, fmt.Errorf("core: host: %w", err)
	}

	return &Platform{
		Opts:    opts,
		K:       k,
		RNG:     root,
		PSU:     psu,
		ATX:     atx,
		Arduino: ard,
		Dev:     dev,
		Host:    host,
		Tracer:  tracer,
		Sched:   NewFaultScheduler(k, ard),
	}, nil
}

// FaultScheduler is the paper's Scheduler component: it decides fault
// instants and sends On/Off commands to the microcontroller.
type FaultScheduler struct {
	k   *sim.Kernel
	ard *power.Arduino

	cuts     int
	restores int
}

// NewFaultScheduler wires a scheduler to the Arduino.
func NewFaultScheduler(k *sim.Kernel, ard *power.Arduino) *FaultScheduler {
	return &FaultScheduler{k: k, ard: ard}
}

// Cut commands the hardware to drop PS_ON#, starting the PSU discharge.
func (s *FaultScheduler) Cut() {
	s.cuts++
	if err := s.ard.Send(power.CmdCut); err != nil {
		panic(err)
	}
}

// Restore commands the hardware to re-assert PS_ON#.
func (s *FaultScheduler) Restore() {
	s.restores++
	if err := s.ard.Send(power.CmdRestore); err != nil {
		panic(err)
	}
}

// Cuts returns the number of Cut commands sent.
func (s *FaultScheduler) Cuts() int { return s.cuts }
