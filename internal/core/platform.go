package core

import (
	"fmt"

	"powerfail/internal/array"
	"powerfail/internal/blktrace"
	"powerfail/internal/blockdev"
	"powerfail/internal/fleet"
	"powerfail/internal/hdd"
	"powerfail/internal/obs"
	"powerfail/internal/power"
	"powerfail/internal/sim"
	"powerfail/internal/ssd"
	"powerfail/internal/txn"
)

// AppConfig selects the application layer that drives the platform instead
// of the raw workload generator. The zero value runs no application: the
// paper's plain IO generator issues the requests.
type AppConfig struct {
	// Txn, when non-nil, runs the write-ahead-log transaction engine on
	// top of the device and the crash-consistency oracle after every
	// fault. The experiment's Workload is ignored (the engine generates
	// its own IO); open-loop pacing (Workload.IOPS) is not supported.
	Txn *txn.Config
}

// Enabled reports whether any application layer is configured.
func (a AppConfig) Enabled() bool { return a.Txn != nil }

// TopologyKind selects what hangs behind the block layer.
type TopologyKind int

// Device topologies. The zero value keeps the platform's historical shape:
// one SSD under test.
const (
	TopoSSD TopologyKind = iota
	TopoHDD
	TopoArray
)

// String implements fmt.Stringer.
func (k TopologyKind) String() string {
	switch k {
	case TopoSSD:
		return "ssd"
	case TopoHDD:
		return "hdd"
	case TopoArray:
		return "array"
	default:
		return fmt.Sprintf("TopologyKind(%d)", int(k))
	}
}

// Topology describes the device side of the platform: a single SSD
// (Options.Profile), a single HDD, or a composite array whose members all
// share the platform's one simulated PSU — so a power fault is correlated
// across every member, as in the paper's rig.
type Topology struct {
	Kind TopologyKind
	// HDD configures the single-HDD topology; the zero value selects
	// hdd.DefaultProfile().
	HDD hdd.Profile
	// Array configures the multi-device topology (RAID-0/1/5 or
	// SSD-cache-over-HDD).
	Array array.Config
}

// Options configures a Platform instance.
type Options struct {
	// Seed drives every random stream; identical (Seed, spec) pairs
	// reproduce identical reports.
	Seed uint64
	// Profile is the drive under test for the single-SSD topology; zero
	// value selects SSD A.
	Profile ssd.Profile
	// Topology selects the device side (single SSD by default).
	Topology Topology
	// App selects an optional application layer above the block device
	// (transactional WAL engine + crash-consistency oracle).
	App AppConfig
	// Fleet, when non-nil, replaces the single-device platform with a
	// datacenter fleet: a fault-domain tree of rooms, racks, enclosures and
	// PSUs with N redundancy groups, standby spares and rebuild state
	// machines on top. Profile/Topology/App/Workload are ignored; the fleet
	// generates its own foreground IO and fault plan.
	Fleet *fleet.Config
	// Host overrides the block-layer configuration.
	Host blockdev.Config
	// PSU overrides the supply's electrical model.
	PSU power.Config
	// Concurrency is the closed-loop outstanding-request budget
	// (default 1: a synchronous IO thread, as in the paper's generator).
	// It also sizes the post-fault control-read pipeline: up to this many
	// verification/recovery reads stay in flight at once, so values above
	// 1 shorten fault cycles on multi-channel devices.
	Concurrency int
	// ThinkTime separates a completion from the next closed-loop issue.
	ThinkTime sim.Duration
	// SettleAfterOff holds the rail at the floor before restoring power.
	SettleAfterOff sim.Duration
	// OffFloorVolts is the rail voltage treated as fully discharged.
	OffFloorVolts float64
	// RecheckWindow bounds re-verification of already verified packets.
	RecheckWindow sim.Duration
	// Obs enables the observability layer (sim-time metrics registry and
	// typed trace events) for this run. Nil — the default — disables it
	// entirely: reports are byte-identical to builds without the layer,
	// and the instrumented paths cost one nil check each.
	Obs *obs.Config
	// Trace disables blktrace recording when false is forced; tracing is
	// on by default (required for completed/incomplete detection).
	DisableTrace bool
}

func (o Options) withDefaults() Options {
	if o.Profile.Name == "" {
		o.Profile = ssd.ProfileA()
	}
	if o.Topology.Kind == TopoHDD && o.Topology.HDD.Name == "" {
		o.Topology.HDD = hdd.DefaultProfile()
	}
	if o.Host == (blockdev.Config{}) {
		o.Host = blockdev.DefaultConfig()
	}
	if o.PSU == (power.Config{}) {
		o.PSU = power.DefaultConfig()
	}
	if o.Concurrency == 0 {
		o.Concurrency = 1
	}
	if o.ThinkTime == 0 {
		o.ThinkTime = 300 * sim.Microsecond
	}
	if o.SettleAfterOff == 0 {
		o.SettleAfterOff = 150 * sim.Millisecond
	}
	if o.OffFloorVolts == 0 {
		o.OffFloorVolts = 0.25
	}
	if o.RecheckWindow == 0 {
		o.RecheckWindow = 2 * sim.Second
	}
	return o
}

// Platform wires the hardware part (PSU, ATX, Arduino) to the device under
// test and the software part (scheduler, IO generator, analyzer) exactly
// as in Fig. 1 of the paper. Dev is whatever the Topology selected; the
// typed fields below it expose the concrete device(s) for stats and tests
// (nil for the topologies that do not use them).
type Platform struct {
	Opts Options

	K       *sim.Kernel
	RNG     *sim.RNG
	PSU     *power.PSU
	ATX     *power.ATX
	Arduino *power.Arduino
	Dev     blockdev.Drive
	SSD     *ssd.Device  // single-SSD topology
	HDD     *hdd.Disk    // single-HDD topology
	Array   *array.Array // array topology
	Host    *blockdev.Queue
	Tracer  *blktrace.Tracer
	Sched   *FaultScheduler
	Obs     *obs.Set // nil unless Options.Obs enabled something
}

// NewPlatform builds and wires a complete test platform.
func NewPlatform(opts Options) (*Platform, error) {
	opts = opts.withDefaults()
	k := sim.New()
	root := sim.NewRNG(opts.Seed)

	psu, err := power.New(k, opts.PSU)
	if err != nil {
		return nil, fmt.Errorf("core: psu: %w", err)
	}
	atx := power.NewATX(psu)
	ard := power.NewArduino(k, power.DefaultSerialLatency, atx.SetPin16)

	p := &Platform{
		Opts:    opts,
		K:       k,
		RNG:     root,
		PSU:     psu,
		ATX:     atx,
		Arduino: ard,
		Sched:   nil,
	}
	if opts.Obs != nil {
		p.Obs = obs.NewSet(*opts.Obs)
	}
	switch opts.Topology.Kind {
	case TopoSSD:
		dev, err := ssd.New(k, root.Fork("ssd"), opts.Profile, psu)
		if err != nil {
			return nil, fmt.Errorf("core: device: %w", err)
		}
		p.SSD, p.Dev = dev, dev
	case TopoHDD:
		disk, err := hdd.New(k, root.Fork("hdd"), opts.Topology.HDD, psu)
		if err != nil {
			return nil, fmt.Errorf("core: device: %w", err)
		}
		p.HDD, p.Dev = disk, disk
	case TopoArray:
		arr, err := array.New(k, root, opts.Topology.Array, psu)
		if err != nil {
			return nil, fmt.Errorf("core: device: %w", err)
		}
		arr.Observe(p.Obs.Scope("array"))
		p.Array, p.Dev = arr, arr
	default:
		return nil, fmt.Errorf("core: unknown topology kind %d", int(opts.Topology.Kind))
	}

	if !opts.DisableTrace {
		p.Tracer = blktrace.NewTracer()
	}
	host, err := blockdev.New(k, p.Dev, p.Tracer, opts.Host)
	if err != nil {
		return nil, fmt.Errorf("core: host: %w", err)
	}
	p.Host = host
	host.Observe(p.Obs.Scope("blockdev"))
	p.Sched = NewFaultScheduler(k, ard)
	p.Sched.Instrument(p.Obs.Scope("power"), k)
	return p, nil
}

// ObsScope returns an observability scope for comp, disabled (zero)
// when the platform runs without observability.
func (p *Platform) ObsScope(comp string) obs.Scope { return p.Obs.Scope(comp) }

// FaultScheduler is the paper's Scheduler component: it decides fault
// instants and sends On/Off commands to the microcontroller. Since the
// fleet layer arrived it is built over a fault-domain tree and the shared
// fleet.Schedule bookkeeping: the classic platform is the degenerate
// one-node tree whose root transitions drive the Arduino, so Cuts/Restores
// semantics are unchanged while multi-domain scheduling reuses the same
// accounting instead of duplicating it.
type FaultScheduler struct {
	tree  *fleet.Tree
	sched *fleet.Schedule
	root  int // schedule id of the tree root
}

// NewFaultScheduler wires a scheduler to the Arduino through the degenerate
// single-PSU tree, the paper's rig.
func NewFaultScheduler(k *sim.Kernel, ard *power.Arduino) *FaultScheduler {
	return NewFaultSchedulerOverTree(k, ard, fleet.Degenerate("psu"))
}

// NewFaultSchedulerOverTree wires a scheduler to the Arduino through an
// arbitrary fault-domain tree: the root's power transitions send the
// hardware commands, so any single-path tree behaves byte-identically to
// the classic one-PSU scheduler.
func NewFaultSchedulerOverTree(_ *sim.Kernel, ard *power.Arduino, tree *fleet.Tree) *FaultScheduler {
	tree.Root().OnPower(func(on bool) {
		cmd := power.CmdCut
		if on {
			cmd = power.CmdRestore
		}
		if err := ard.Send(cmd); err != nil {
			panic(err)
		}
	})
	s := &FaultScheduler{tree: tree, sched: fleet.NewSchedule()}
	s.root = s.sched.Add(tree.Root())
	return s
}

// Tree returns the fault-domain tree the scheduler targets.
func (s *FaultScheduler) Tree() *fleet.Tree { return s.tree }

// Cut commands the hardware to drop PS_ON#, starting the PSU discharge.
func (s *FaultScheduler) Cut() { s.sched.Cut(s.root) }

// Restore commands the hardware to re-assert PS_ON#.
func (s *FaultScheduler) Restore() { s.sched.Restore(s.root) }

// Cuts returns the number of Cut commands sent.
func (s *FaultScheduler) Cuts() int { return s.sched.Cuts() }

// Restores returns the number of Restore commands sent.
func (s *FaultScheduler) Restores() int { return s.sched.Restores() }

// Instrument records every cut/restore command into sc as KindPower
// trace events plus counters, stamped on k's clock. A disabled scope is
// a no-op.
func (s *FaultScheduler) Instrument(sc obs.Scope, k *sim.Kernel) {
	s.sched.Observe(sc, func() sim.Time { return k.Now() })
}
