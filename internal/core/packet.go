// Package core implements the software part of the paper's test platform:
// the Scheduler that commands the hardware to inject power faults, the IO
// Generator that issues data packets, and the Analyzer that decides — from
// the blktrace-style per-IO assembly plus checksum comparison — whether
// each request suffered a data failure, a false write-acknowledge (FWA),
// or an IO error. A Runner sequences whole experiments: workload, fault
// cycles (cut, discharge, restore, recovery), and verification passes.
package core

import (
	"fmt"

	"powerfail/internal/addr"
	"powerfail/internal/content"
	"powerfail/internal/sim"
	"powerfail/internal/workload"
)

// FailureKind classifies a request after verification, following the
// paper's Section III-B taxonomy.
type FailureKind int

// Failure kinds.
const (
	FailNone FailureKind = iota
	// FailData: completed=1, notApplied=0, checksum mismatch — the drive
	// acknowledged the write and the address holds neither the written
	// nor the previous content.
	FailData
	// FailFWA: completed=1, notApplied=1 — the drive acknowledged the
	// write but the address still holds the pre-request content.
	FailFWA
	// FailIOError: completed=0 — the request was issued while the drive
	// was unavailable (or timed out).
	FailIOError
)

// String implements fmt.Stringer.
func (f FailureKind) String() string {
	switch f {
	case FailNone:
		return "none"
	case FailData:
		return "data-failure"
	case FailFWA:
		return "fwa"
	case FailIOError:
		return "io-error"
	default:
		return fmt.Sprintf("FailureKind(%d)", int(f))
	}
}

// Packet is the paper's data packet (Fig. 2): the payload plus a header
// carrying size, destination address, queue/completion times, the three
// checksums (initial = content before the request, data = written payload,
// final = content read back after the fault), and the outcome flags.
type Packet struct {
	ReqID uint64
	Op    workload.Op
	LPN   addr.LPN
	Pages int

	// Want is the written payload (its Sum is the "data checksum").
	Want content.Data
	// Prev is the per-page content of the target address prior to issuing
	// (the "initial checksum"), captured from the analyzer's shadow map.
	Prev []content.Fingerprint

	QueueTime    sim.Time
	CompleteTime sim.Time

	Err       error
	NotIssued bool
	// Completed mirrors the btt-derived flag: all block-layer
	// sub-requests reached the complete state.
	Completed bool

	Verified bool
	FailedAs FailureKind
	// FaultIdx is the fault cycle during which the packet was classified.
	FaultIdx int

	// Pool bookkeeping: pooled marks packets owned by the analyzer's free
	// list; released guards against double-free when a test (or recheck)
	// touches a packet after its terminal classification.
	pooled   bool
	released bool
}

// IsRead reports whether the packet is a read request.
func (p *Packet) IsRead() bool { return p.Op == workload.OpRead }

// prevData assembles the initial content as a Data vector.
func (p *Packet) prevData() content.Data {
	return content.Gather(p.Pages, func(i int) content.Fingerprint { return p.Prev[i] })
}

// Counters aggregates the analyzer's findings.
type Counters struct {
	Issued    int `json:"issued"`
	Reads     int `json:"reads"`
	Writes    int `json:"writes"`
	Completed int `json:"completed"`
	Errored   int `json:"errored"`
	NotIssued int `json:"not_issued"`

	DataFailures    int `json:"data_failures"`
	FWA             int `json:"fwa"`
	IOErrors        int `json:"io_errors"`
	OKVerified      int `json:"ok_verified"`
	LateCorruptions int `json:"late_corruptions"` // verified-then-corrupted, caught on recheck
}

// DataLosses returns data failures plus FWAs: the paper's combined
// "data failure / data loss" count.
func (c Counters) DataLosses() int { return c.DataFailures + c.FWA }
