package core

import (
	"testing"

	"powerfail/internal/addr"
	"powerfail/internal/sim"
	"powerfail/internal/trace"
	"powerfail/internal/txn"
)

// testTrace builds a small deterministic write-heavy trace: n records over
// a 256 MiB extent, ~200 us apart, one read in ten.
func testTrace(n int) *trace.Trace {
	recs := make([]trace.Record, n)
	for i := range recs {
		op := trace.OpWrite
		if i%10 == 9 {
			op = trace.OpRead
		}
		recs[i] = trace.Record{
			At:    sim.Duration(i) * 200 * sim.Microsecond,
			Op:    op,
			LPN:   addr.LPN((i * 7919) % 65536),
			Pages: 1 + i%8,
		}
	}
	return &trace.Trace{Name: "unit", Records: recs}
}

// TestTraceSourceClosedLoop: trace replay drives the whole fault pipeline
// end to end — the report records the source kind and replay coverage,
// and a write-heavy trace on a volatile-cache SSD loses data exactly like
// the synthetic generator does.
func TestTraceSourceClosedLoop(t *testing.T) {
	spec := ExperimentSpec{
		Name:   "trace-closed",
		Trace:  &trace.Config{Trace: testTrace(64)},
		Faults: 10, RequestsPerFault: 14,
	}
	rep := runSmall(t, smallOpts(61), spec)
	if rep.Source != "trace" {
		t.Fatalf("report source = %q", rep.Source)
	}
	if rep.Faults != 10 {
		t.Fatalf("faults = %d", rep.Faults)
	}
	s := rep.TraceStats
	if s == nil {
		t.Fatal("no TraceStats on a trace-mode report")
	}
	if s.Records != 64 || s.Replayed == 0 || s.Coverage <= 0 || s.Coverage > 1 {
		t.Fatalf("trace stats: %+v", s)
	}
	if s.Replayed > 64 && s.Laps == 0 {
		t.Fatalf("replayed %d of 64 without counting laps", s.Replayed)
	}
	if rep.TxnStats != nil {
		t.Fatal("trace-mode report carries TxnStats")
	}
	if rep.DataLosses() == 0 {
		t.Fatal("write-heavy trace lost nothing across 10 faults")
	}
	if rep.Counters.OKVerified == 0 {
		t.Fatal("nothing verified clean either; harness broken")
	}
}

// TestTraceSourceOpenLoop: open-loop replay paces arrivals from the
// trace's own timestamps; the pipeline still completes every fault.
func TestTraceSourceOpenLoop(t *testing.T) {
	spec := ExperimentSpec{
		Name:   "trace-open",
		Trace:  &trace.Config{Trace: testTrace(64), Mode: trace.OpenLoop},
		Faults: 6, RequestsPerFault: 10,
	}
	rep := runSmall(t, smallOpts(62), spec)
	if rep.Faults != 6 || rep.TraceStats == nil {
		t.Fatalf("open-loop replay broken: faults=%d stats=%+v", rep.Faults, rep.TraceStats)
	}
	if rep.RespondedIOPS <= 0 {
		t.Fatal("no responded IOPS measured")
	}
}

// TestTraceReplayDeterministic: the same trace + seed reproduces an
// identical report.
func TestTraceReplayDeterministic(t *testing.T) {
	spec := ExperimentSpec{
		Name:   "trace-det",
		Trace:  &trace.Config{Trace: testTrace(48)},
		Faults: 6, RequestsPerFault: 10,
	}
	a := runSmall(t, smallOpts(63), spec)
	b := runSmall(t, smallOpts(63), spec)
	if a.Counters != b.Counters || *a.TraceStats != *b.TraceStats {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a.Counters, b.Counters)
	}
}

// TestSourceSelection: the explicit selector and its auto-inference
// resolve and validate consistently across the configuration matrix.
func TestSourceSelection(t *testing.T) {
	tc := txn.DefaultConfig()
	cycle := ExperimentSpec{Name: "s", Faults: 2, RequestsPerFault: 4}

	// Explicit trace source without a trace config.
	bad := cycle
	bad.Source = SourceTrace
	if bad.Validate() == nil {
		t.Error("SourceTrace without Trace accepted")
	}

	// Trace replay paces itself; a spec'd IOPS would be silently ignored.
	paced := cycle
	paced.Trace = &trace.Config{Trace: testTrace(8)}
	paced.Workload.IOPS = 500
	if paced.Validate() == nil {
		t.Error("trace spec with Workload.IOPS accepted")
	}

	// Explicit txn source on a platform without an application layer.
	p, err := NewPlatform(smallOpts(64))
	if err != nil {
		t.Fatal(err)
	}
	txnSpec := cycle
	txnSpec.Source = SourceTxn
	if _, err := NewRunner(p, txnSpec); err == nil {
		t.Error("SourceTxn accepted without Options.App")
	}

	// A trace spec on a txn platform: contradictory.
	appOpts := smallOpts(65)
	appOpts.App = AppConfig{Txn: &tc}
	p2, err := NewPlatform(appOpts)
	if err != nil {
		t.Fatal(err)
	}
	mixed := cycle
	mixed.Trace = &trace.Config{Trace: testTrace(8)}
	if _, err := NewRunner(p2, mixed); err == nil {
		t.Error("trace spec accepted on an application-layer platform")
	}

	// Auto-inference: workload by default, txn under App, trace with a
	// trace config.
	if got := (ExperimentSpec{}).sourceKind(false); got != SourceWorkload {
		t.Errorf("auto(false) = %v", got)
	}
	if got := (ExperimentSpec{}).sourceKind(true); got != SourceTxn {
		t.Errorf("auto(app) = %v", got)
	}
	if got := mixed.sourceKind(false); got != SourceTrace {
		t.Errorf("auto(trace) = %v", got)
	}
	for _, k := range []SourceKind{SourceAuto, SourceWorkload, SourceTxn, SourceTrace} {
		if k.String() == "" {
			t.Errorf("kind %d has no name", int(k))
		}
	}
}

// TestTxnPerFaultBreakdown: the oracle's per-cycle verdicts are exposed
// like PerFault and sum to the aggregate TxnStats.
func TestTxnPerFaultBreakdown(t *testing.T) {
	rep := runSmall(t, txnOpts(77, txn.NoFlush), txnSpec("txn-perfault", 6))
	s := rep.TxnStats
	if s == nil {
		t.Fatal("no TxnStats")
	}
	if len(rep.TxnPerFault) != rep.Faults {
		t.Fatalf("per-fault cycles = %d, want %d", len(rep.TxnPerFault), rep.Faults)
	}
	var sum txn.CycleVerdicts
	for _, c := range rep.TxnPerFault {
		sum.Evaluated += c.Evaluated
		sum.Intact += c.Intact
		sum.LostCommits += c.LostCommits
		sum.Torn += c.Torn
		sum.OutOfOrder += c.OutOfOrder
		sum.Unacked += c.Unacked
		sum.ScanPages += c.ScanPages
	}
	if int64(sum.Evaluated) != s.Evaluated || int64(sum.Intact) != s.Intact ||
		int64(sum.LostCommits) != s.LostCommits || int64(sum.Torn) != s.Torn ||
		int64(sum.OutOfOrder) != s.OutOfOrder || int64(sum.Unacked) != s.Unacked ||
		int64(sum.ScanPages) != s.ScanPages {
		t.Fatalf("per-fault sums %+v do not match totals %+v", sum, s)
	}
}

// TestPipelinedVerification: with Opts.Concurrency above 1 the
// verification and recovery read-backs keep several control reads in
// flight; the run completes every fault, still verifies cleanly, and is
// deterministic for a fixed seed.
func TestPipelinedVerification(t *testing.T) {
	opts := smallOpts(66)
	opts.Concurrency = 4
	spec := ExperimentSpec{Name: "pipe", Workload: smallWrites(), Faults: 8, RequestsPerFault: 24}
	a := runSmall(t, opts, spec)
	if a.Faults != 8 {
		t.Fatalf("faults = %d", a.Faults)
	}
	if a.Counters.OKVerified == 0 || a.DataLosses() == 0 {
		t.Fatalf("pipelined verify lost the taxonomy: %+v", a.Counters)
	}
	b := runSmall(t, opts, spec)
	if a.Counters != b.Counters {
		t.Fatalf("pipelined run not deterministic:\n%+v\n%+v", a.Counters, b.Counters)
	}

	// The txn oracle's recovery reads pipeline through the same path.
	topts := txnOpts(67, txn.FlushPerCommit)
	topts.Concurrency = 4
	rep := runSmall(t, topts, txnSpec("txn-pipe", 5))
	if rep.TxnStats == nil || rep.TxnStats.Evaluated == 0 {
		t.Fatalf("txn run under pipelined recovery idle: %+v", rep.TxnStats)
	}
	if rep.TxnStats.Losses() != 0 {
		t.Fatalf("flush-per-commit lost transactions under pipelined recovery: %s", rep.TxnStats)
	}
}
