package core

import (
	"encoding/json"
	"testing"

	"powerfail/internal/txn"
	"powerfail/internal/workload"
)

// txnOpts runs the WAL application layer on a small single SSD.
func txnOpts(seed uint64, barrier txn.Barrier) Options {
	cfg := txn.DefaultConfig()
	cfg.Barrier = barrier
	return Options{Seed: seed, Profile: memberProfile(), App: AppConfig{Txn: &cfg}}
}

func txnSpec(name string, faults int) ExperimentSpec {
	return ExperimentSpec{Name: name, Faults: faults, RequestsPerFault: 12}
}

// TestTxnFlushPerCommitNeverLosesCommits: the strict barrier half of the
// acceptance pair. When every commit is acknowledged only after an
// OpFlush completed, the WAL contract holds across power cuts: the oracle
// must report zero lost, torn or reordered commits.
func TestTxnFlushPerCommitNeverLosesCommits(t *testing.T) {
	rep := runSmall(t, txnOpts(71, txn.FlushPerCommit), txnSpec("txn-flush", 6))
	s := rep.TxnStats
	if s == nil {
		t.Fatal("no TxnStats on a txn-mode report")
	}
	if s.Committed == 0 || s.Evaluated == 0 {
		t.Fatalf("engine idle: %+v", s)
	}
	if s.Losses() != 0 {
		t.Fatalf("flush-per-commit broke the WAL contract: %s", s)
	}
	if s.Intact != s.Evaluated {
		t.Fatalf("evaluated %d but intact %d with zero losses", s.Evaluated, s.Intact)
	}
}

// TestTxnNoFlushLosesCommits: the volatile half of the acceptance pair.
// With no commit barrier on a volatile-cache SSD, acknowledged commit
// records die in DRAM and the oracle must observe lost commits.
func TestTxnNoFlushLosesCommits(t *testing.T) {
	rep := runSmall(t, txnOpts(72, txn.NoFlush), txnSpec("txn-noflush", 6))
	s := rep.TxnStats
	if s == nil {
		t.Fatal("no TxnStats on a txn-mode report")
	}
	if s.Committed == 0 || s.Evaluated == 0 {
		t.Fatalf("engine idle: %+v", s)
	}
	if s.LostCommits == 0 {
		t.Fatalf("no-flush on a volatile-cache SSD lost nothing: %s", s)
	}
	if s.OldestLostSeq == 0 {
		t.Fatalf("losses reported without an oldest-lost sequence: %s", s)
	}
}

// TestTxnLostCommitsCorroborated: the emergence criterion. Every
// oracle-level loss must be witnessed by device-level loss in the same
// report — the engine's records are ordinary analyzer packets, so a
// commit record the device dropped is simultaneously an FWA/data failure
// (or at minimum dirty DRAM loss) at the block level. The verdicts are
// derived from the device models, never scripted.
func TestTxnLostCommitsCorroborated(t *testing.T) {
	for _, barrier := range []txn.Barrier{txn.FlushPerCommit, txn.GroupCommit, txn.NoFlush} {
		for seed := uint64(80); seed < 83; seed++ {
			rep := runSmall(t, txnOpts(seed, barrier), txnSpec("txn-corr", 5))
			s := rep.TxnStats
			if s == nil {
				t.Fatal("no TxnStats on a txn-mode report")
			}
			if s.Losses() == 0 {
				continue
			}
			devLoss := rep.Counters.DataLosses()
			dirtyLost := int64(0)
			if rep.DeviceStats != nil {
				dirtyLost = rep.DeviceStats.DirtyPagesLost
			}
			if devLoss == 0 && dirtyLost == 0 {
				t.Fatalf("barrier=%s seed=%d: oracle reports %d losses without any device-level loss (data=%d fwa=%d dirty-lost=%d)",
					barrier, seed, s.Losses(), rep.Counters.DataFailures, rep.Counters.FWA, dirtyLost)
			}
		}
	}
}

// TestTxnOnHDDNoFlushStillDurable: topology contrast — the write-through
// HDD's ACK already implies durability, so even the NoFlush policy loses
// nothing at transaction granularity.
func TestTxnOnHDDNoFlushStillDurable(t *testing.T) {
	cfg := txn.DefaultConfig()
	cfg.Barrier = txn.NoFlush
	opts := Options{
		Seed:     73,
		Topology: Topology{Kind: TopoHDD},
		App:      AppConfig{Txn: &cfg},
	}
	rep := runSmall(t, opts, txnSpec("txn-hdd", 4))
	s := rep.TxnStats
	if s == nil || s.Evaluated == 0 {
		t.Fatalf("engine idle on HDD: %+v", s)
	}
	if s.Losses() != 0 {
		t.Fatalf("write-through HDD lost transactions: %s", s)
	}
}

// TestTxnGroupCommitRuns: the batched barrier makes progress, checkpoints
// truncate the log, and the recovery scans stay bounded by the log region.
func TestTxnGroupCommitRuns(t *testing.T) {
	rep := runSmall(t, txnOpts(74, txn.GroupCommit), txnSpec("txn-group", 5))
	s := rep.TxnStats
	if s == nil || s.Committed == 0 {
		t.Fatalf("group commit made no progress: %+v", s)
	}
	if s.RecoveryScans != int64(rep.Faults) {
		t.Fatalf("scans=%d, want one per fault (%d)", s.RecoveryScans, rep.Faults)
	}
	cfg := txn.DefaultConfig()
	if s.ScanPages > s.RecoveryScans*int64(cfg.LogPages) {
		t.Fatalf("scan length %d exceeds the log region bound", s.ScanPages)
	}
}

// TestTxnCheckpointTruncates: with an aggressive checkpoint cadence the
// engine truncates the log between faults — retired transactions leave
// the ledger (they are never judged) and checkpoints are counted.
func TestTxnCheckpointTruncates(t *testing.T) {
	cfg := txn.DefaultConfig()
	cfg.CheckpointEvery = 4
	opts := Options{Seed: 76, Profile: memberProfile(), App: AppConfig{Txn: &cfg}}
	spec := ExperimentSpec{Name: "txn-ckpt", Faults: 4, RequestsPerFault: 60}
	rep := runSmall(t, opts, spec)
	s := rep.TxnStats
	if s == nil || s.Checkpoints == 0 {
		t.Fatalf("no checkpoints ran: %+v", s)
	}
	if s.Retired == 0 {
		t.Fatalf("checkpoints ran but nothing retired: %s", s)
	}
	if s.Retired+s.Evaluated+s.Unacked < s.Started-1 {
		// Every transaction ends up retired, judged, or in flight at a cut
		// (the last may still be active when the experiment ends).
		t.Fatalf("transactions leaked: started=%d retired=%d evaluated=%d unacked=%d",
			s.Started, s.Retired, s.Evaluated, s.Unacked)
	}
}

// TestTxnRejectsOpenLoop: the application layer is closed-loop by
// construction; an open-loop spec must be rejected up front.
func TestTxnRejectsOpenLoop(t *testing.T) {
	p, err := NewPlatform(txnOpts(75, txn.FlushPerCommit))
	if err != nil {
		t.Fatal(err)
	}
	spec := txnSpec("txn-open", 3)
	spec.Workload = workload.Spec{IOPS: 500}
	if _, err := NewRunner(p, spec); err == nil {
		t.Fatal("open-loop spec accepted in txn mode")
	}
}

// TestTxnMultiStreamRuns: several WAL streams over the volatile-cache SSD
// with a pipelined closed loop. Every report carries the full
// recovery-policy ablation: the primary TxnStats equals the hole-tolerant
// row, strict-scan never loses less, and the per-fault outcomes sum to
// the per-policy totals.
func TestTxnMultiStreamRuns(t *testing.T) {
	cfg := txn.DefaultConfig()
	cfg.Streams = 4
	cfg.Barrier = txn.NoFlush
	opts := Options{Seed: 78, Profile: memberProfile(), App: AppConfig{Txn: &cfg}, Concurrency: 4}
	rep := runSmall(t, opts, txnSpec("txn-streams", 6))
	s := rep.TxnStats
	if s == nil || s.Committed == 0 || s.Evaluated == 0 {
		t.Fatalf("multi-stream engine idle: %+v", s)
	}
	if len(rep.TxnPolicies) != txn.NumRecoveryPolicies {
		t.Fatalf("ablation rows = %d, want %d", len(rep.TxnPolicies), txn.NumRecoveryPolicies)
	}
	ht, strict := rep.TxnPolicy(txn.HoleTolerant), rep.TxnPolicy(txn.StrictScan)
	if *s != ht {
		t.Fatalf("primary stats %+v != hole-tolerant row %+v", *s, ht)
	}
	if strict.Losses() < ht.Losses() {
		t.Fatalf("strict-scan lost %d < hole-tolerant %d", strict.Losses(), ht.Losses())
	}
	if rep.TxnUnreachable() < 0 {
		t.Fatalf("negative unreachable count %d", rep.TxnUnreachable())
	}
	if s.LostCommits == 0 {
		t.Fatalf("no-flush over 4 streams lost nothing: %s", s)
	}
	var sumHT, sumStrict int
	for _, c := range rep.TxnPerFault {
		sumHT += c.Policies[txn.HoleTolerant].Losses()
		sumStrict += c.Policies[txn.StrictScan].Losses()
		if c.Policies[txn.StrictScan].Losses() < c.Policies[txn.HoleTolerant].Losses() {
			t.Fatalf("cycle ablation inverted: %+v", c)
		}
	}
	if int64(sumHT) != ht.Losses() || int64(sumStrict) != strict.Losses() {
		t.Fatalf("per-fault losses (%d, %d) do not sum to totals (%d, %d)",
			sumHT, sumStrict, ht.Losses(), strict.Losses())
	}
}

// TestTxnStreamsDefaultEqualsOne: Streams left zero defaults to the
// single-stream engine — byte-identical reports, so the PR-3 "txn"
// figure verdicts are reproduced by the multi-stream code on identical
// schedules.
func TestTxnStreamsDefaultEqualsOne(t *testing.T) {
	run := func(streams int) string {
		cfg := txn.DefaultConfig()
		cfg.Streams = streams
		cfg.Barrier = txn.NoFlush
		opts := Options{Seed: 79, Profile: memberProfile(), App: AppConfig{Txn: &cfg}}
		rep := runSmall(t, opts, txnSpec("txn-one", 5))
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if a, b := run(0), run(1); a != b {
		t.Fatalf("defaulted streams diverged from explicit Streams=1:\n%s\n%s", a, b)
	}
}

// TestTxnMultiStreamFlushStillLossless: the strict barrier keeps the WAL
// contract across concurrent streams too — and then even the pessimistic
// strict scan reports zero losses, because a flush-per-commit log has no
// acknowledged commit behind an unflushed tear.
func TestTxnMultiStreamFlushStillLossless(t *testing.T) {
	cfg := txn.DefaultConfig()
	cfg.Streams = 8
	opts := Options{Seed: 81, Profile: memberProfile(), App: AppConfig{Txn: &cfg}, Concurrency: 8}
	rep := runSmall(t, opts, txnSpec("txn-streams-flush", 5))
	s := rep.TxnStats
	if s == nil || s.Evaluated == 0 {
		t.Fatalf("engine idle: %+v", s)
	}
	if s.Losses() != 0 {
		t.Fatalf("flush-per-commit over 8 streams broke the WAL contract: %s", s)
	}
	if strict := rep.TxnPolicy(txn.StrictScan); strict.Losses() != 0 {
		t.Fatalf("strict scan lost %d transactions under flush-per-commit: %s", strict.Losses(), strict)
	}
}

// TestTxnStrictPrimaryPolicy: Options can select strict-scan as the
// primary policy; TxnStats then mirrors the strict ablation row while
// the hole-tolerant row stays available.
func TestTxnStrictPrimaryPolicy(t *testing.T) {
	cfg := txn.DefaultConfig()
	cfg.Barrier = txn.NoFlush
	cfg.Policy = txn.StrictScan
	opts := Options{Seed: 82, Profile: memberProfile(), App: AppConfig{Txn: &cfg}}
	rep := runSmall(t, opts, txnSpec("txn-strict", 5))
	s := rep.TxnStats
	if s == nil || s.Policy != txn.StrictScan {
		t.Fatalf("primary policy not honoured: %+v", s)
	}
	if *s != rep.TxnPolicy(txn.StrictScan) {
		t.Fatalf("primary stats do not mirror the strict row")
	}
	if ht := rep.TxnPolicy(txn.HoleTolerant); ht.Policy != txn.HoleTolerant || ht.Committed != s.Committed {
		t.Fatalf("hole-tolerant row lost: %+v", ht)
	}
}
