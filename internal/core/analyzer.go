package core

import (
	"powerfail/internal/addr"
	"powerfail/internal/blktrace"
	"powerfail/internal/blockdev"
	"powerfail/internal/content"
	"powerfail/internal/sim"
	"powerfail/internal/workload"
)

// Analyzer is the failure-detection component. It shadows the expected
// content of every written page, captures each packet's initial checksum
// at issue time, merges the btt per-IO completion state, and classifies
// packets after each fault by reading the drive back.
type Analyzer struct {
	k *sim.Kernel

	shadow  map[addr.LPN]content.Fingerprint
	byReq   map[uint64]*Packet
	pending []*Packet // completed or errored, awaiting verification
	recent  []*Packet // verified clean, rechecked while young

	recheckWindow sim.Duration
	counts        Counters
	perFault      []FaultOutcome

	// attribute maps a failed packet's LPN range to the member indices of
	// a composite device; nil on single-device platforms.
	attribute   func(lpn addr.LPN, pages int) []int
	memberFails []MemberFailureCounts

	// pktFree recycles packets whose verification story has ended (failed
	// terminally, aged out of the recheck window, or rejected by the host
	// queue). Experiments are single-threaded, so no locking.
	pktFree []*Packet
}

// MemberFailureCounts is the per-member slice of the failure taxonomy for
// composite devices.
type MemberFailureCounts struct {
	DataFailures int `json:"data_failures"`
	FWA          int `json:"fwa"`
	IOErrors     int `json:"io_errors"`
}

// FaultOutcome is the per-fault-cycle failure breakdown.
type FaultOutcome struct {
	FaultAt      sim.Time `json:"fault_at_ns"`
	DataFailures int      `json:"data_failures"`
	FWA          int      `json:"fwa"`
	IOErrors     int      `json:"io_errors"`
}

// NewAnalyzer builds an analyzer. recheckWindow bounds how long a
// verified packet remains subject to re-verification (captures corruption
// of previously written data by later faults).
func NewAnalyzer(k *sim.Kernel, recheckWindow sim.Duration) *Analyzer {
	if recheckWindow <= 0 {
		recheckWindow = 2 * sim.Second
	}
	return &Analyzer{
		k:             k,
		shadow:        make(map[addr.LPN]content.Fingerprint),
		byReq:         make(map[uint64]*Packet),
		recheckWindow: recheckWindow,
	}
}

// Counters returns the current totals.
func (a *Analyzer) Counters() Counters { return a.counts }

// SetAttribution installs a composite-device failure attributor over n
// members: every failure classified from here on is also charged to the
// members fn maps the packet's address range to.
func (a *Analyzer) SetAttribution(n int, fn func(lpn addr.LPN, pages int) []int) {
	a.attribute = fn
	a.memberFails = make([]MemberFailureCounts, n)
}

// MemberFailures returns the per-member attributed failures (nil without
// an attributor).
func (a *Analyzer) MemberFailures() []MemberFailureCounts {
	if a.memberFails == nil {
		return nil
	}
	out := make([]MemberFailureCounts, len(a.memberFails))
	copy(out, a.memberFails)
	return out
}

func (a *Analyzer) chargeMembers(pkt *Packet, kind FailureKind) {
	if a.attribute == nil {
		return
	}
	for _, m := range a.attribute(pkt.LPN, pkt.Pages) {
		if m < 0 || m >= len(a.memberFails) {
			continue
		}
		switch kind {
		case FailData:
			a.memberFails[m].DataFailures++
		case FailFWA:
			a.memberFails[m].FWA++
		case FailIOError:
			a.memberFails[m].IOErrors++
		}
	}
}

// PerFault returns the per-cycle breakdown.
func (a *Analyzer) PerFault() []FaultOutcome { return a.perFault }

// BeginFault opens a new fault-cycle record and returns its index.
func (a *Analyzer) BeginFault(at sim.Time) int {
	a.perFault = append(a.perFault, FaultOutcome{FaultAt: at})
	return len(a.perFault) - 1
}

// newPacket pops a recycled packet (or allocates one), reset and ready to
// fill. The Prev backing array survives recycling.
func (a *Analyzer) newPacket() *Packet {
	if n := len(a.pktFree); n > 0 {
		pkt := a.pktFree[n-1]
		a.pktFree = a.pktFree[:n-1]
		prev := pkt.Prev[:0]
		*pkt = Packet{pooled: true, Prev: prev}
		return pkt
	}
	return &Packet{pooled: true}
}

// release retires a packet whose verification story has ended: it leaves
// the request index and joins the free list. Idempotent, so a recheck or
// test touching a terminally classified packet cannot double-free it.
func (a *Analyzer) release(pkt *Packet) {
	if !pkt.pooled || pkt.released {
		return
	}
	pkt.released = true
	delete(a.byReq, pkt.ReqID)
	a.pktFree = append(a.pktFree, pkt)
}

// OnIssue registers a submitted workload request; the packet direction
// is taken from the request itself. For writes it captures the initial
// (pre-request) checksums and advances the shadow expectation, so
// overlapping writes chain correctly (WAW sequences).
func (a *Analyzer) OnIssue(req *blockdev.Request) *Packet {
	pkt := a.newPacket()
	pkt.ReqID = req.ID
	pkt.LPN = req.LPN
	pkt.Pages = req.Pages
	pkt.QueueTime = req.Queued
	a.counts.Issued++
	if req.Op == blockdev.OpWrite {
		pkt.Op = workload.OpWrite
		a.counts.Writes++
		pkt.Want = req.Data
		prev := pkt.Prev[:0]
		for i := 0; i < req.Pages; i++ {
			lpn := req.LPN + addr.LPN(i)
			prev = append(prev, a.shadow[lpn])
			a.shadow[lpn] = req.Data.Page(i)
		}
		pkt.Prev = prev
	} else {
		pkt.Op = workload.OpRead
		a.counts.Reads++
	}
	a.byReq[req.ID] = pkt
	return pkt
}

// OnComplete records the host-visible completion of a workload request.
func (a *Analyzer) OnComplete(req *blockdev.Request) {
	pkt, ok := a.byReq[req.ID]
	if !ok {
		return
	}
	pkt.CompleteTime = req.Completed
	pkt.Err = req.Err
	pkt.NotIssued = req.NotIssued
	if req.Err == nil {
		a.counts.Completed++
	} else {
		a.counts.Errored++
	}
	if req.NotIssued {
		// Never reached the drive; tracked separately from IO errors. The
		// packet is never verified, so it can be recycled right away.
		a.counts.NotIssued++
		pkt.Verified = true
		a.release(pkt)
		return
	}
	a.pending = append(a.pending, pkt)
}

// AttachTrace merges the btt per-IO assembly into the packets: the
// Completed flag the classification rules hinge on comes from the trace,
// exactly as in the paper's modified btt flow.
func (a *Analyzer) AttachTrace(ios []*blktrace.IO) {
	for _, io := range ios {
		if pkt, ok := a.byReq[io.Req]; ok {
			pkt.Completed = io.Complete()
		}
	}
}

// VerifyCandidates returns the packets to verify after a fault: all
// unverified packets plus recently verified ones (recheck catches paired-
// page corruption of previously written data). The pending and recent
// sets are rebuilt by the Classify calls that follow.
func (a *Analyzer) VerifyCandidates(now sim.Time) []*Packet {
	var out []*Packet
	out = append(out, a.pending...)
	a.pending = a.pending[:0]
	for _, pkt := range a.recent {
		if now.Sub(pkt.CompleteTime) <= a.recheckWindow && pkt.FailedAs == FailNone {
			out = append(out, pkt)
		} else {
			// Older or already-failed packets age out of the recheck set
			// for good; recycle them.
			a.release(pkt)
		}
	}
	a.recent = a.recent[:0]
	return out
}

// Classify applies the Section III-B rules to one packet given the
// content read back from the drive. faultIdx attributes the failure to a
// fault cycle; pass obs with zero pages for read packets (no comparison).
func (a *Analyzer) Classify(pkt *Packet, obs content.Data, faultIdx int) FailureKind {
	outcome := a.classify(pkt, obs)
	first := !pkt.Verified
	pkt.Verified = true
	switch outcome {
	case FailIOError:
		if pkt.FailedAs == FailNone {
			pkt.FailedAs = FailIOError
			pkt.FaultIdx = faultIdx
			a.counts.IOErrors++
			a.fault(faultIdx).IOErrors++
			a.chargeMembers(pkt, FailIOError)
		}
	case FailFWA:
		if pkt.FailedAs == FailNone {
			pkt.FailedAs = FailFWA
			pkt.FaultIdx = faultIdx
			a.counts.FWA++
			a.fault(faultIdx).FWA++
			a.chargeMembers(pkt, FailFWA)
			if !first {
				a.counts.LateCorruptions++
			}
		}
	case FailData:
		if pkt.FailedAs == FailNone {
			pkt.FailedAs = FailData
			pkt.FaultIdx = faultIdx
			a.counts.DataFailures++
			a.fault(faultIdx).DataFailures++
			a.chargeMembers(pkt, FailData)
			if !first {
				a.counts.LateCorruptions++
			}
		}
	default:
		if first {
			a.counts.OKVerified++
		}
		if !pkt.released {
			a.recent = append(a.recent, pkt)
		}
	}
	// Re-synchronise the shadow with observed reality so later initial
	// checksums reflect what is actually on the media. Pages already
	// re-expected by a later (still unverified) write are left alone.
	if pkt.Op == workload.OpWrite && obs.Pages() == pkt.Pages && outcome != FailNone {
		for i := 0; i < pkt.Pages; i++ {
			lpn := pkt.LPN + addr.LPN(i)
			if a.shadow[lpn] == pkt.Want.Page(i) {
				a.shadow[lpn] = obs.Page(i)
			}
		}
	}
	if outcome != FailNone {
		// Terminal classification: the packet never re-enters the recheck
		// set (counting is idempotent per packet), so recycle it.
		a.release(pkt)
	}
	return outcome
}

func (a *Analyzer) classify(pkt *Packet, obs content.Data) FailureKind {
	if !pkt.Completed {
		return FailIOError
	}
	if pkt.Op == workload.OpRead {
		return FailNone
	}
	if obs.Pages() != pkt.Pages {
		return FailData
	}
	if obs.Equal(pkt.Want) {
		return FailNone
	}
	// The address may legitimately hold newer data: a later write (WAW
	// sequences) supersedes this packet. If the observed content matches
	// the newest expectation for every page, nothing was lost.
	matchesNewest := true
	for i := 0; i < pkt.Pages; i++ {
		if obs.Page(i) != a.shadow[pkt.LPN+addr.LPN(i)] {
			matchesNewest = false
			break
		}
	}
	if matchesNewest {
		return FailNone
	}
	if obs.Equal(pkt.prevData()) {
		return FailFWA
	}
	return FailData
}

func (a *Analyzer) fault(idx int) *FaultOutcome {
	if idx < 0 || idx >= len(a.perFault) {
		a.perFault = append(a.perFault, FaultOutcome{FaultAt: a.k.Now()})
		return &a.perFault[len(a.perFault)-1]
	}
	return &a.perFault[idx]
}

// Forget drops bookkeeping for packets that can no longer be verified;
// used to bound memory in very long runs.
func (a *Analyzer) Forget(pkt *Packet) { delete(a.byReq, pkt.ReqID) }
