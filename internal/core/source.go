package core

import (
	"fmt"

	"powerfail/internal/addr"
	"powerfail/internal/blockdev"
	"powerfail/internal/content"
	"powerfail/internal/sim"
	"powerfail/internal/trace"
	"powerfail/internal/txn"
	"powerfail/internal/workload"
)

// SourceKind selects the runner's IO source. The zero value infers the
// source from the rest of the configuration (trace replay when the spec
// carries a trace, the transaction engine when Options.App is enabled,
// the synthetic generator otherwise), which keeps every pre-existing
// Options/spec combination working unchanged.
type SourceKind int

// Source kinds.
const (
	SourceAuto SourceKind = iota
	SourceWorkload
	SourceTxn
	SourceTrace
)

// String implements fmt.Stringer.
func (k SourceKind) String() string {
	switch k {
	case SourceAuto:
		return "auto"
	case SourceWorkload:
		return "workload"
	case SourceTxn:
		return "txn"
	case SourceTrace:
		return "trace"
	default:
		return fmt.Sprintf("SourceKind(%d)", int(k))
	}
}

// MarshalJSON renders the kind by name.
func (k SourceKind) MarshalJSON() ([]byte, error) { return []byte(`"` + k.String() + `"`), nil }

// UnmarshalJSON parses a source-kind name, so marshaled specs (run
// archives, report JSON) decode back into typed values.
func (k *SourceKind) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"auto"`:
		*k = SourceAuto
	case `"workload"`:
		*k = SourceWorkload
	case `"txn"`:
		*k = SourceTxn
	case `"trace"`:
		*k = SourceTrace
	default:
		return fmt.Errorf("core: unknown source kind %s", b)
	}
	return nil
}

// SourceIO is one request an IO source wants on the wire. Flushes carry
// no pages or payload. The token field routes the completion back to the
// source's private state (e.g. the transaction the IO belongs to).
type SourceIO struct {
	Op    blockdev.Op
	LPN   addr.LPN
	Pages int
	Data  content.Data // write payload
	token any
}

// Source is the pluggable IO producer that drives an experiment. The
// runner owns exactly one: it pulls requests with Next, issues them
// through the host block layer, and reports host-visible completions with
// Done — the same closed loop for synthetic workloads, the transaction
// engine and trace replay, so any future source (erasure-coded
// applications, mixed fleets) plugs into the one issue path.
type Source interface {
	// Kind identifies the source in reports ("workload", "txn", "trace").
	Kind() string
	// OpenLoop reports whether the source paces its own arrivals; the
	// runner then schedules issues at NextArrival gaps instead of
	// refilling a closed loop on completions.
	OpenLoop() bool
	// NextArrival returns the gap before the next open-loop arrival
	// (unused in closed loop).
	NextArrival() sim.Duration
	// Next returns the next IO to issue, or ok=false when the source is
	// waiting on completions. A closed-loop source must always be
	// issuable at zero outstanding IOs, so the runner's loop never
	// stalls.
	Next() (SourceIO, bool)
	// Done reports the host-visible completion of an IO from Next.
	Done(io SourceIO, err error)
}

// RecoverySource is the optional recovery hook: a source that needs a
// post-fault read-back pass (after the analyzer's packet verification)
// implements it and the runner drives the reads through the same
// control-read retry policy as verification. The transaction engine's
// crash-consistency oracle is the canonical implementation.
type RecoverySource interface {
	Source
	// RecoveryReads returns the pages the source wants read back after
	// the device recovered. The source stops producing IOs until
	// FinishRecovery.
	RecoveryReads() []addr.LPN
	// Observe records the post-recovery content of one page (or its
	// error after retries).
	Observe(lpn addr.LPN, fp content.Fingerprint, err error)
	// FinishRecovery closes the pass: the source judges what it saw and
	// resumes producing IOs.
	FinishRecovery()
}

// reporter lets a source contribute its section to the final Report.
type reporter interface {
	addToReport(rep *Report)
}

// --- workload generator adapter ---

// workloadSource adapts workload.Generator: the paper's synthetic IO
// stream, closed loop or open loop at the spec's requested IOPS.
type workloadSource struct {
	gen *workload.Generator
}

func (s *workloadSource) Kind() string              { return "workload" }
func (s *workloadSource) OpenLoop() bool            { return s.gen.Spec().IOPS > 0 }
func (s *workloadSource) NextArrival() sim.Duration { return s.gen.NextArrival() }

func (s *workloadSource) Next() (SourceIO, bool) {
	item := s.gen.Next()
	io := SourceIO{LPN: item.LPN, Pages: item.Pages}
	if item.Op == workload.OpWrite {
		io.Op = blockdev.OpWrite
		io.Data = item.Data
	} else {
		io.Op = blockdev.OpRead
	}
	return io, true
}

func (s *workloadSource) Done(SourceIO, error) {}

// --- transaction engine adapter ---

// txnSource adapts txn.Engine and absorbs its recovery oracle: after each
// fault the runner reads the engine's scan set back through the adapter
// and the per-cycle verdicts — one row per recovery policy — accumulate
// for the report.
type txnSource struct {
	eng      *txn.Engine
	perFault []txn.CycleOutcome
}

func (s *txnSource) Kind() string              { return "txn" }
func (s *txnSource) OpenLoop() bool            { return false }
func (s *txnSource) NextArrival() sim.Duration { return 0 }

func (s *txnSource) Next() (SourceIO, bool) {
	io, ok := s.eng.Next()
	if !ok {
		return SourceIO{}, false
	}
	out := SourceIO{LPN: io.LPN, Pages: io.Pages(), token: io}
	if io.Kind == txn.IOFlush {
		out.Op = blockdev.OpFlush
	} else {
		out.Op = blockdev.OpWrite
		out.Data = io.Data
	}
	return out, true
}

func (s *txnSource) Done(io SourceIO, err error) { s.eng.Done(io.token.(txn.IO), err) }

func (s *txnSource) RecoveryReads() []addr.LPN { return s.eng.RecoveryReads() }

func (s *txnSource) Observe(lpn addr.LPN, fp content.Fingerprint, err error) {
	s.eng.Observe(lpn, fp, err)
}

func (s *txnSource) FinishRecovery() {
	s.perFault = append(s.perFault, s.eng.FinishRecovery())
}

func (s *txnSource) addToReport(rep *Report) {
	ts := s.eng.Stats()
	rep.TxnStats = &ts
	rep.TxnPolicies = make([]txn.Stats, txn.NumRecoveryPolicies)
	for p := range rep.TxnPolicies {
		rep.TxnPolicies[p] = s.eng.StatsFor(txn.RecoveryPolicy(p))
	}
	rep.TxnPerFault = append([]txn.CycleOutcome(nil), s.perFault...)
}

// --- trace replayer adapter ---

// traceSource adapts trace.Replayer: MSR-style block traces replayed with
// original arrival times (open loop) or as fast as possible (closed
// loop), scaled/clamped to the device's address space.
type traceSource struct {
	rep *trace.Replayer
}

func (s *traceSource) Kind() string              { return "trace" }
func (s *traceSource) OpenLoop() bool            { return s.rep.OpenLoop() }
func (s *traceSource) NextArrival() sim.Duration { return s.rep.NextArrival() }

func (s *traceSource) Next() (SourceIO, bool) {
	io := s.rep.Next()
	out := SourceIO{LPN: io.LPN, Pages: io.Pages}
	if io.Op == trace.OpWrite {
		out.Op = blockdev.OpWrite
		out.Data = io.Data
	} else {
		out.Op = blockdev.OpRead
	}
	return out, true
}

func (s *traceSource) Done(SourceIO, error) {}

func (s *traceSource) addToReport(rep *Report) {
	ts := s.rep.Stats()
	rep.TraceStats = &ts
}

// newSource builds the source kind selects on the platform. The spec has
// already been validated for kind.
func newSource(kind SourceKind, p *Platform, spec ExperimentSpec) (Source, error) {
	switch kind {
	case SourceWorkload:
		if cap := p.Dev.UserPages() << addr.PageShift; spec.Workload.WSSBytes > cap {
			return nil, fmt.Errorf("core: workload WSS %d GB exceeds the device's %d GB capacity",
				spec.Workload.WSSBytes>>30, cap>>30)
		}
		gen, err := workload.NewGenerator(spec.Workload, p.RNG.Fork("workload"))
		if err != nil {
			return nil, err
		}
		return &workloadSource{gen: gen}, nil
	case SourceTxn:
		if !p.Opts.App.Enabled() {
			return nil, fmt.Errorf("core: source %q needs Options.App configured", kind)
		}
		eng, err := txn.NewEngine(*p.Opts.App.Txn, p.K, p.RNG.Fork("txn"), p.Dev.UserPages())
		if err != nil {
			return nil, err
		}
		eng.Instrument(p.ObsScope("txn"))
		return &txnSource{eng: eng}, nil
	case SourceTrace:
		rep, err := trace.NewReplayer(*spec.Trace, p.Dev.UserPages(), p.RNG.Fork("trace"))
		if err != nil {
			return nil, err
		}
		return &traceSource{rep: rep}, nil
	default:
		return nil, fmt.Errorf("core: unknown source kind %d", int(kind))
	}
}
