package core

import (
	"context"
	"errors"
	"fmt"

	"powerfail/internal/addr"
	"powerfail/internal/blktrace"
	"powerfail/internal/blockdev"
	"powerfail/internal/content"
	"powerfail/internal/hdd"
	"powerfail/internal/obs"
	"powerfail/internal/sim"
	"powerfail/internal/ssd"
)

type phase int

const (
	phaseRun      phase = iota // workload flowing
	phaseArming                // cut scheduled, workload still flowing
	phasePaused                // window mode: workload stopped, waiting to cut
	phaseFaulting              // power off, waiting for discharge floor
	phaseRestored              // power restored, waiting for device ready
	phaseVerify                // verification reads in progress
	phaseRecovery              // source recovery pass: read-back + verdicts
	phaseDone
)

// Runner executes one experiment on a platform. A platform instance runs
// one experiment; build a fresh platform per run for independence.
type Runner struct {
	p    *Platform
	spec ExperimentSpec

	// src is the experiment's one IO source (synthetic generator,
	// transaction engine or trace replayer behind the same interface);
	// recovery is non-nil when the source wants a post-fault read-back
	// pass (the transaction oracle). wlSrc devirtualizes the per-IO
	// Next/Done dispatch for the common synthetic-workload source.
	src      Source
	wlSrc    *workloadSource
	recovery RecoverySource

	// Per-IO bookkeeping free lists (experiments are single-threaded).
	recFree []*issueRec
	ctlFree []*ctlRec

	analyzer *Analyzer
	rng      *sim.RNG

	ph          phase
	outstanding int
	issuedTotal int

	completedSinceFault int
	completedActive     int
	nextFaultTarget     int
	faultsDone          int
	faultIdx            int

	// verifyQueue marks a verification pass in progress (nil otherwise);
	// both it and the recovery pass run through controlPump.
	verifyQueue []*Packet

	activeSince  sim.Time
	activeTotal  sim.Duration
	startedAt    sim.Time
	cutAt        sim.Time
	cutFired     bool
	timedOut     bool
	faultErrored bool // open loop: first error observed this fault cycle
	err          error
}

// NewRunner prepares an experiment on the platform.
func NewRunner(p *Platform, spec ExperimentSpec) (*Runner, error) {
	kind := spec.sourceKind(p.Opts.App.Enabled())
	if p.Opts.App.Enabled() && kind != SourceTxn {
		return nil, fmt.Errorf("core: Options.App is configured but the spec selects the %q source", kind)
	}
	if err := spec.validate(kind); err != nil {
		return nil, err
	}
	if spec.MaxSimTime == 0 {
		spec.MaxSimTime = 6 * 60 * sim.Minute
	}
	r := &Runner{
		p:        p,
		spec:     spec,
		analyzer: NewAnalyzer(p.K, p.Opts.RecheckWindow),
		rng:      p.RNG.Fork("runner"),
	}
	src, err := newSource(kind, p, spec)
	if err != nil {
		return nil, err
	}
	r.src = src
	if ws, ok := src.(*workloadSource); ok {
		r.wlSrc = ws
	}
	if rs, ok := src.(RecoverySource); ok {
		r.recovery = rs
	}
	if p.Array != nil {
		r.analyzer.SetAttribution(len(p.Array.Members()), p.Array.Attribute)
	}
	return r, nil
}

// Analyzer exposes the failure bookkeeping (for tests and reports).
func (r *Runner) Analyzer() *Analyzer { return r.analyzer }

// Source exposes the experiment's IO source (for tests).
func (r *Runner) Source() Source { return r.src }

// ctxCheckInterval is how many kernel events fire between context polls.
// An event is microseconds of wall time, so cancellation latency stays in
// the sub-millisecond range without a per-event atomic load.
const ctxCheckInterval = 1024

// Run executes the experiment to completion and assembles the report.
// Cancelling ctx stops the simulation at the next poll point and returns
// the partial report together with the context's error; a nil ctx is
// treated as context.Background().
func (r *Runner) Run(ctx context.Context) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		r.err = err
		return r.report(), r.err
	}
	k := r.p.K
	r.startedAt = k.Now()
	r.activeSince = k.Now()
	r.ph = phaseRun
	r.nextFaultTarget = r.jitteredTarget()

	// Hardware hooks: discharge-floor watch drives the restore, device
	// readiness drives verification.
	r.p.PSU.NotifyBelow(r.p.Opts.OffFloorVolts, r.onRailFloor)
	r.p.Dev.NotifyReady(r.onDeviceReady)

	deadline := k.Now().Add(r.spec.MaxSimTime)
	k.At(deadline, func() {
		if r.ph != phaseDone {
			r.timedOut = true
			r.ph = phaseDone
		}
	})

	if r.src.OpenLoop() {
		r.scheduleArrival()
	} else {
		r.fillClosedLoop()
	}

	steps := 0
	for r.ph != phaseDone && k.Step() {
		steps++
		if steps%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				r.err = err
				return r.report(), r.err
			}
		}
	}
	if r.timedOut {
		r.err = errors.New("core: experiment exceeded MaxSimTime")
	}
	return r.report(), r.err
}

func (r *Runner) jitteredTarget() int {
	base := r.spec.RequestsPerFault
	j := base / 4
	if j < 1 {
		return base
	}
	return base - j + r.rng.Intn(2*j+1)
}

// --- the one issue path ---

func (r *Runner) fillClosedLoop() {
	for r.ph == phaseRun || r.ph == phaseArming {
		if r.outstanding >= r.p.Opts.Concurrency {
			return
		}
		if !r.issueOne() {
			// The source has nothing issuable until a completion advances
			// its state machine; never the case at zero outstanding, so
			// the loop cannot stall.
			return
		}
	}
}

func (r *Runner) scheduleArrival() {
	if r.ph == phaseDone {
		return
	}
	r.p.K.After(r.src.NextArrival(), func() {
		// Like the closed-loop thread, the open-loop source is unaware of
		// the scheduler's fault and keeps submitting through the
		// discharge until errors surface.
		if r.ph == phaseRun || r.ph == phaseArming ||
			(r.ph == phaseFaulting && !r.faultErrored) {
			r.issueOne()
		}
		r.scheduleArrival()
	})
}

// issueRec is the pooled per-IO bookkeeping of the issue path: it carries
// the SourceIO across the request's lifetime and its cached fn is the
// request's Done callback, so issuing an IO allocates nothing in steady
// state.
type issueRec struct {
	r  *Runner
	io SourceIO
	fn func(*blockdev.Request)
}

func (r *Runner) getIssueRec(io SourceIO) *issueRec {
	var rec *issueRec
	if n := len(r.recFree); n > 0 {
		rec = r.recFree[n-1]
		r.recFree = r.recFree[:n-1]
	} else {
		rec = &issueRec{r: r}
		rec.fn = func(req *blockdev.Request) {
			r := rec.r
			io := rec.io
			rec.io = SourceIO{}
			r.recFree = append(r.recFree, rec)
			if r.wlSrc == nil {
				// The synthetic workload source's Done is a no-op; calling
				// through the interface would devirtualize nothing else.
				r.src.Done(io, req.Err)
			}
			r.onIOComplete(req)
		}
	}
	rec.io = io
	return rec
}

// issueOne pulls the source's next IO and puts it on the wire. Writes and
// reads are analyzer packets — they cross the block layer and the
// analyzer's shadow identically whatever produced them, which is what
// makes application-level verdicts corroborable by the device-level
// taxonomy. Barrier flushes carry no payload and are not packets.
func (r *Runner) issueOne() bool {
	var io SourceIO
	var ok bool
	if r.wlSrc != nil {
		io, ok = r.wlSrc.Next()
	} else {
		io, ok = r.src.Next()
	}
	if !ok {
		return false
	}
	req := r.p.Host.NewRequest()
	req.Op = io.Op
	req.LPN = io.LPN
	req.Pages = io.Pages
	req.Data = io.Data
	req.Done = r.getIssueRec(io).fn
	r.outstanding++
	r.issuedTotal++
	r.p.Host.Submit(req)
	if req.Op != blockdev.OpFlush {
		r.analyzer.OnIssue(req)
	}
	return true
}

func (r *Runner) onIOComplete(req *blockdev.Request) {
	r.outstanding--
	r.analyzer.OnComplete(req)
	if !req.NotIssued {
		// Host-queue rejections never reached the drive and do not count
		// toward fault spacing.
		r.completedSinceFault++
	}
	if (r.ph == phaseRun || r.ph == phaseArming) && req.Err == nil {
		r.completedActive++
	}

	switch r.ph {
	case phaseRun:
		if r.faultsDone < r.spec.Faults && r.completedSinceFault >= r.nextFaultTarget {
			r.armFault()
			return
		}
		if req.Err != nil {
			// The IO thread backs off on errors; the fault cycle will
			// resume it.
			return
		}
		r.reissueAfterThink()
	case phaseArming, phaseFaulting:
		// The IO source is oblivious to the scheduler's fault: it keeps
		// issuing through the discharge until it observes an error, which
		// is how requests get caught in flight (IO errors). A host-queue
		// rejection is backpressure, not a device error.
		if req.Err != nil && !req.NotIssued {
			r.faultErrored = true
		} else if req.Err == nil {
			r.reissueAfterThink()
		}
	case phaseVerify, phaseRecovery, phaseRestored, phasePaused:
		// Source requests draining during a fault cycle; nothing to do.
	}
	r.maybeStartVerify()
}

func (r *Runner) reissueAfterThink() {
	if r.src.OpenLoop() {
		return // open loop: arrivals are self-scheduled
	}
	r.p.K.After(r.p.Opts.ThinkTime, func() {
		if (r.ph == phaseRun || r.ph == phaseArming || r.ph == phaseFaulting) &&
			r.outstanding < r.p.Opts.Concurrency {
			if !r.issueOne() {
				return
			}
			// One completion can unlock several source IOs (a commit ACK
			// queues a batch of home writes); keep the closed loop full
			// outside fault cycles.
			r.fillClosedLoop()
		}
	})
}

// --- fault cycle ---

// armFault starts a fault cycle. In window mode the workload pauses and
// the cut lands PostACKDelay after the trigger request's ACK; otherwise
// the cut lands a few random milliseconds ahead while traffic continues,
// so in-flight requests can be caught (the paper's random fault instants).
func (r *Runner) armFault() {
	if r.spec.WindowMode {
		r.ph = phasePaused
		r.p.K.After(r.spec.PostACKDelay, r.fireCut)
		return
	}
	r.ph = phaseArming
	delay := r.rng.DurationRange(0, 5*sim.Millisecond)
	r.p.K.After(delay, r.fireCut)
	r.fillClosedLoop()
}

func (r *Runner) fireCut() {
	if r.ph != phaseArming && r.ph != phasePaused {
		return
	}
	r.noteInactive()
	r.ph = phaseFaulting
	r.cutAt = r.p.K.Now()
	r.cutFired = true
	r.faultIdx = r.analyzer.BeginFault(r.p.K.Now())
	r.p.Sched.Cut()
}

// onRailFloor fires when the rail finishes discharging; after the settle
// hold the scheduler restores power.
func (r *Runner) onRailFloor() {
	if r.ph != phaseFaulting {
		return
	}
	r.p.K.After(r.p.Opts.SettleAfterOff, func() {
		if r.ph != phaseFaulting {
			return
		}
		r.ph = phaseRestored
		r.p.Sched.Restore()
	})
}

func (r *Runner) onDeviceReady() {
	if r.ph != phaseRestored {
		return
	}
	r.ph = phaseVerify
	r.maybeStartVerify()
}

func (r *Runner) maybeStartVerify() {
	if r.ph != phaseVerify || r.outstanding > 0 || r.verifyQueue != nil {
		return
	}
	// Fold the trace into the packets, then reset it to bound memory: the
	// merged Completed flags survive on the packets, so events never need
	// to be replayed and no cursor into the stream has to be kept.
	if r.p.Tracer != nil {
		ios := blktrace.Assemble(r.p.Tracer.Events())
		r.analyzer.AttachTrace(ios)
		// Fold the fault cycle's block IOs into the obs trace as
		// queue-to-complete spans before the raw events are discarded, so
		// block and obs traces share one clock and one export.
		if sc := r.p.ObsScope("blk"); sc.TracingOn() {
			for _, bio := range ios {
				if bio.Complete() {
					sc.Span(bio.QueueAt, bio.Q2C(), obs.KindBlockIO, bio.Op.String(), int64(bio.Req))
				}
			}
		}
		r.p.Tracer.Reset()
	}
	r.verifyQueue = r.analyzer.VerifyCandidates(r.p.K.Now())
	r.newControlPump(len(r.verifyQueue), r.verifyOne, r.finishVerification).pump()
}

// controlPump runs one pipelined control-read pass, keeping up to
// Opts.Concurrency reads in flight. At the default concurrency of 1 a
// pass is a strict in-order walk; higher values pipeline the read-backs,
// which dominate a fault cycle's simulated time on large
// RequestsPerFault experiments. The verification pass and the source
// recovery pass share it, so both always see the same pipelining policy.
type controlPump struct {
	r        *Runner
	n        int
	pos      int
	inFlight int
	// issue starts item i and must call done exactly once when its read
	// completes; it returns false when the item was handled inline with
	// no read (done must not be called then).
	issue  func(i int, done func()) bool
	finish func()
}

func (r *Runner) newControlPump(n int, issue func(i int, done func()) bool, finish func()) *controlPump {
	return &controlPump{r: r, n: n, issue: issue, finish: finish}
}

func (p *controlPump) pump() {
	for p.inFlight < p.r.p.Opts.Concurrency && p.pos < p.n {
		i := p.pos
		p.pos++
		// Completions are their own kernel events, so done can never run
		// before issue returns and the in-flight accounting stays exact.
		if p.issue(i, func() { p.inFlight--; p.pump() }) {
			p.inFlight++
		}
	}
	if p.inFlight == 0 && p.pos >= p.n {
		p.finish()
	}
}

// verifyOne classifies the i-th verification candidate, reading the
// drive back for completed writes.
func (r *Runner) verifyOne(i int, done func()) bool {
	pkt := r.verifyQueue[i]
	if pkt.IsRead() || pkt.NotIssued {
		// Reads carry no durable expectation: only the completed flag
		// matters (IO error detection).
		r.analyzer.Classify(pkt, content.Data{}, r.faultIdx)
		return false
	}
	r.controlRead(pkt.LPN, pkt.Pages, 0, func(result content.Data, err error) {
		if err != nil {
			r.analyzer.Classify(pkt, content.Zeroes(0), r.faultIdx)
		} else {
			r.analyzer.Classify(pkt, result, r.faultIdx)
		}
		done()
	})
	return true
}

// ctlRec is the pooled bookkeeping of one control read, including its
// retries: fn is the request Done callback and retry the timer callback
// that re-issues after a failed attempt, both cached for the record's
// lifetime.
type ctlRec struct {
	r       *Runner
	lpn     addr.LPN
	pages   int
	attempt int
	done    func(result content.Data, err error)
	fn      func(*blockdev.Request)
	retry   func()
}

func (r *Runner) getCtlRec(lpn addr.LPN, pages, attempt int, done func(result content.Data, err error)) *ctlRec {
	var rec *ctlRec
	if n := len(r.ctlFree); n > 0 {
		rec = r.ctlFree[n-1]
		r.ctlFree = r.ctlFree[:n-1]
	} else {
		rec = &ctlRec{r: r}
		rec.retry = func() { rec.r.issueControl(rec) }
		rec.fn = func(req *blockdev.Request) {
			r := rec.r
			if req.Err != nil {
				if rec.attempt < 3 {
					rec.attempt++
					r.p.K.After(10*sim.Millisecond, rec.retry)
					return
				}
				done := rec.done
				rec.done = nil
				r.ctlFree = append(r.ctlFree, rec)
				done(content.Data{}, req.Err)
				return
			}
			done := rec.done
			rec.done = nil
			r.ctlFree = append(r.ctlFree, rec)
			done(req.Result, nil)
		}
	}
	rec.lpn, rec.pages, rec.attempt, rec.done = lpn, pages, attempt, done
	return rec
}

// issueControl puts one control-read attempt on the wire.
func (r *Runner) issueControl(rec *ctlRec) {
	req := r.p.Host.NewRequest()
	req.Op = blockdev.OpRead
	req.LPN = rec.lpn
	req.Pages = rec.pages
	req.Control = true
	req.Done = rec.fn
	r.p.Host.Submit(req)
}

// controlRead issues a post-recovery platform read of [lpn, lpn+pages).
// The drive should be ready, so errors are retried a few times before the
// final outcome is surfaced to done (exactly once). Both the packet
// verification pass and the source recovery pass read through here, so
// the two classifiers always see the device through the same retry policy.
func (r *Runner) controlRead(lpn addr.LPN, pages, attempt int, done func(result content.Data, err error)) {
	r.issueControl(r.getCtlRec(lpn, pages, attempt, done))
}

func (r *Runner) finishVerification() {
	r.verifyQueue = nil
	if r.recovery != nil {
		r.startRecovery()
		return
	}
	r.finishCycle()
}

// --- source recovery pass ---

// startRecovery runs the source's recovery hook after the device-level
// verification pass: read back whatever the source wants to inspect (the
// transaction oracle's log region and home pages), then let it judge what
// survived.
func (r *Runner) startRecovery() {
	r.ph = phaseRecovery
	reads := r.recovery.RecoveryReads()
	r.newControlPump(len(reads), func(i int, done func()) bool {
		lpn := reads[i]
		r.controlRead(lpn, 1, 0, func(result content.Data, err error) {
			if err != nil {
				// Unreadable after retries: the source treats the page as
				// torn.
				r.recovery.Observe(lpn, 0, err)
			} else {
				r.recovery.Observe(lpn, result.Page(0), nil)
			}
			done()
		})
		return true
	}, func() {
		r.recovery.FinishRecovery()
		r.finishCycle()
	}).pump()
}

// finishCycle closes a fault cycle and resumes (or ends) the workload.
func (r *Runner) finishCycle() {
	if r.cutFired {
		r.cutFired = false
		sc := r.p.ObsScope("runner")
		d := r.p.K.Now().Sub(r.cutAt)
		sc.Histogram("fault_cycle_ns").ObserveDuration(d)
		sc.Span(r.cutAt, d, obs.KindSpan, "fault_cycle", int64(r.faultIdx))
	}
	r.faultsDone++
	r.faultErrored = false
	r.completedSinceFault = 0
	r.nextFaultTarget = r.jitteredTarget()
	if r.faultsDone >= r.spec.Faults {
		r.ph = phaseDone
		return
	}
	r.ph = phaseRun
	r.activeSince = r.p.K.Now()
	if !r.src.OpenLoop() {
		r.fillClosedLoop()
	}
}

func (r *Runner) noteInactive() {
	r.activeTotal += r.p.K.Now().Sub(r.activeSince)
}

// --- report ---

func (r *Runner) report() *Report {
	c := r.analyzer.Counters()
	active := r.activeTotal
	if r.ph != phaseDone && (r.ph == phaseRun || r.ph == phaseArming) {
		active += r.p.K.Now().Sub(r.activeSince)
	}
	rep := &Report{
		Name:          r.spec.Name,
		Profile:       r.p.Dev.Name(),
		Source:        r.src.Kind(),
		Spec:          r.spec,
		SimDuration:   r.p.K.Now().Sub(r.startedAt),
		ActiveTime:    active,
		Requests:      c.Issued,
		Reads:         c.Reads,
		Writes:        c.Writes,
		Completed:     c.Completed,
		Errored:       c.Errored,
		NotIssued:     c.NotIssued,
		Faults:        r.faultsDone,
		Cuts:          r.p.Sched.Cuts(),
		Restores:      r.p.Sched.Restores(),
		Counters:      c,
		PerFault:      r.analyzer.PerFault(),
		HostStats:     r.p.Host.Stats(),
		RequestedIOPS: r.spec.Workload.IOPS,
	}
	if rp, ok := r.src.(reporter); ok {
		rp.addToReport(rep)
	}
	if r.p.SSD != nil {
		st := r.p.SSD.Stats()
		rep.DeviceStats = &st
	}
	if r.p.HDD != nil {
		st := r.p.HDD.Stats()
		rep.HDDStats = &st
	}
	if arr := r.p.Array; arr != nil {
		st := arr.Stats()
		rep.ArrayStats = &st
		fails := r.analyzer.MemberFailures()
		for i, ms := range arr.Members() {
			mr := MemberReport{
				Index: i, Name: ms.Name, Role: ms.Role,
				Reads: ms.Reads, Writes: ms.Writes, Errors: ms.Errors,
			}
			switch d := arr.Drive(i).(type) {
			case *ssd.Device:
				ds := d.Stats()
				mr.Deaths, mr.Recoveries, mr.DirtyPagesLost = ds.Deaths, ds.Recoveries, ds.DirtyPagesLost
			case *hdd.Disk:
				ds := d.Stats()
				mr.Deaths, mr.Recoveries, mr.DirtyPagesLost = ds.Deaths, ds.Recoveries, ds.CacheLost
			}
			if i < len(fails) {
				mr.DataFailures, mr.FWA, mr.IOErrors = fails[i].DataFailures, fails[i].FWA, fails[i].IOErrors
			}
			rep.Members = append(rep.Members, mr)
		}
	}
	if active > 0 {
		// Responded IOPS counts only completions during powered workload
		// phases, measured against powered workload time.
		rep.RespondedIOPS = float64(r.completedActive) / active.Seconds()
	}
	rep.Events = r.p.K.Processed()
	if r.p.Obs != nil {
		rep.Obs = r.p.Obs.Summary()
		rep.ObsTrace = r.p.Obs.TraceEvents()
	}
	if rep.Faults > 0 {
		rep.DataLossPerFault = float64(c.DataLosses()) / float64(rep.Faults)
	}
	return rep
}

// RunExperiment is the one-call entry point: build a platform, run the
// spec under ctx, return the report. When Options.Fleet is set the
// datacenter fleet path runs instead of the single-device platform.
func RunExperiment(ctx context.Context, opts Options, spec ExperimentSpec) (*Report, error) {
	if opts.Fleet != nil {
		return runFleetExperiment(ctx, opts, spec)
	}
	p, err := NewPlatform(opts)
	if err != nil {
		return nil, err
	}
	runner, err := NewRunner(p, spec)
	if err != nil {
		return nil, err
	}
	return runner.Run(ctx)
}
