package core

import (
	"context"
	"errors"
	"fmt"

	"powerfail/internal/addr"
	"powerfail/internal/blktrace"
	"powerfail/internal/blockdev"
	"powerfail/internal/content"
	"powerfail/internal/hdd"
	"powerfail/internal/sim"
	"powerfail/internal/ssd"
	"powerfail/internal/txn"
	"powerfail/internal/workload"
)

// ExperimentSpec describes one fault-injection experiment.
type ExperimentSpec struct {
	Name     string        `json:"name"`
	Workload workload.Spec `json:"workload"`
	// Faults is the number of power faults to inject.
	Faults int `json:"faults"`
	// RequestsPerFault spaces fault injections by completed workload
	// requests (jittered by +/-25%).
	RequestsPerFault int `json:"requests_per_fault"`
	// WindowMode pauses the workload after a chosen request completes and
	// injects the fault PostACKDelay later — the Section IV-A experiment
	// measuring data loss after request completion.
	WindowMode   bool         `json:"window_mode,omitempty"`
	PostACKDelay sim.Duration `json:"post_ack_delay_ns,omitempty"`
	// MaxSimTime aborts a runaway experiment (default 6 simulated hours).
	MaxSimTime sim.Duration `json:"max_sim_time_ns,omitempty"`
}

// Validate checks the specification for the plain-workload configuration.
func (s ExperimentSpec) Validate() error { return s.validateFor(false) }

// validateFor checks the specification. With an application layer the
// Workload is ignored by the runner (the application generates its own
// IO), so only the fault-cycle fields are checked — except that open-loop
// pacing is rejected, because the application is inherently closed-loop.
func (s ExperimentSpec) validateFor(app bool) error {
	if app {
		if s.Workload.IOPS > 0 {
			return fmt.Errorf("core: application layer is closed-loop; Workload.IOPS must be 0")
		}
	} else if err := s.Workload.Validate(); err != nil {
		return err
	}
	if s.Faults <= 0 {
		return fmt.Errorf("core: Faults must be positive, got %d", s.Faults)
	}
	if s.RequestsPerFault <= 0 {
		return fmt.Errorf("core: RequestsPerFault must be positive, got %d", s.RequestsPerFault)
	}
	if s.WindowMode && s.PostACKDelay < 0 {
		return fmt.Errorf("core: negative PostACKDelay")
	}
	return nil
}

type phase int

const (
	phaseRun      phase = iota // workload flowing
	phaseArming                // cut scheduled, workload still flowing
	phasePaused                // window mode: workload stopped, waiting to cut
	phaseFaulting              // power off, waiting for discharge floor
	phaseRestored              // power restored, waiting for device ready
	phaseVerify                // verification reads in progress
	phaseOracle                // application recovery: log scan + verdicts
	phaseDone
)

// Runner executes one experiment on a platform. A platform instance runs
// one experiment; build a fresh platform per run for independence.
type Runner struct {
	p    *Platform
	spec ExperimentSpec

	gen      *workload.Generator
	analyzer *Analyzer
	rng      *sim.RNG

	ph          phase
	outstanding int
	issuedTotal int

	completedSinceFault int
	completedActive     int
	nextFaultTarget     int
	faultsDone          int
	faultIdx            int

	verifyQueue []*Packet
	verifyPos   int

	// Application layer (txn mode): the engine replaces the workload
	// generator as the IO source, and after each fault's verification pass
	// the oracle reads the log and home pages back for its verdicts.
	engine      *txn.Engine
	oracleReads []addr.LPN
	oraclePos   int

	activeSince  sim.Time
	activeTotal  sim.Duration
	startedAt    sim.Time
	timedOut     bool
	faultErrored bool // open loop: first error observed this fault cycle
	err          error
}

// NewRunner prepares an experiment on the platform.
func NewRunner(p *Platform, spec ExperimentSpec) (*Runner, error) {
	appMode := p.Opts.App.Enabled()
	if err := spec.validateFor(appMode); err != nil {
		return nil, err
	}
	if spec.MaxSimTime == 0 {
		spec.MaxSimTime = 6 * 60 * sim.Minute
	}
	r := &Runner{
		p:        p,
		spec:     spec,
		analyzer: NewAnalyzer(p.K, p.Opts.RecheckWindow),
		rng:      p.RNG.Fork("runner"),
	}
	if appMode {
		eng, err := txn.NewEngine(*p.Opts.App.Txn, p.K, p.RNG.Fork("txn"), p.Dev.UserPages())
		if err != nil {
			return nil, err
		}
		r.engine = eng
	} else {
		if cap := p.Dev.UserPages() << addr.PageShift; spec.Workload.WSSBytes > cap {
			return nil, fmt.Errorf("core: workload WSS %d GB exceeds the device's %d GB capacity",
				spec.Workload.WSSBytes>>30, cap>>30)
		}
		gen, err := workload.NewGenerator(spec.Workload, p.RNG.Fork("workload"))
		if err != nil {
			return nil, err
		}
		r.gen = gen
	}
	if p.Array != nil {
		r.analyzer.SetAttribution(len(p.Array.Members()), p.Array.Attribute)
	}
	return r, nil
}

// Analyzer exposes the failure bookkeeping (for tests and reports).
func (r *Runner) Analyzer() *Analyzer { return r.analyzer }

// ctxCheckInterval is how many kernel events fire between context polls.
// An event is microseconds of wall time, so cancellation latency stays in
// the sub-millisecond range without a per-event atomic load.
const ctxCheckInterval = 1024

// Run executes the experiment to completion and assembles the report.
// Cancelling ctx stops the simulation at the next poll point and returns
// the partial report together with the context's error; a nil ctx is
// treated as context.Background().
func (r *Runner) Run(ctx context.Context) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		r.err = err
		return r.report(), r.err
	}
	k := r.p.K
	r.startedAt = k.Now()
	r.activeSince = k.Now()
	r.ph = phaseRun
	r.nextFaultTarget = r.jitteredTarget()

	// Hardware hooks: discharge-floor watch drives the restore, device
	// readiness drives verification.
	r.p.PSU.NotifyBelow(r.p.Opts.OffFloorVolts, r.onRailFloor)
	r.p.Dev.NotifyReady(r.onDeviceReady)

	deadline := k.Now().Add(r.spec.MaxSimTime)
	k.At(deadline, func() {
		if r.ph != phaseDone {
			r.timedOut = true
			r.ph = phaseDone
		}
	})

	if r.spec.Workload.IOPS > 0 {
		r.scheduleArrival()
	} else {
		r.fillClosedLoop()
	}

	steps := 0
	for r.ph != phaseDone && k.Step() {
		steps++
		if steps%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				r.err = err
				return r.report(), r.err
			}
		}
	}
	if r.timedOut {
		r.err = errors.New("core: experiment exceeded MaxSimTime")
	}
	return r.report(), r.err
}

func (r *Runner) jitteredTarget() int {
	base := r.spec.RequestsPerFault
	j := base / 4
	if j < 1 {
		return base
	}
	return base - j + r.rng.Intn(2*j+1)
}

// --- workload issue paths ---

func (r *Runner) fillClosedLoop() {
	for r.ph == phaseRun || r.ph == phaseArming {
		if r.outstanding >= r.p.Opts.Concurrency {
			return
		}
		if !r.issueOne() {
			// The application has nothing issuable until a completion
			// advances its state machine; never the case at zero
			// outstanding, so the loop cannot stall.
			return
		}
	}
}

func (r *Runner) scheduleArrival() {
	if r.ph == phaseDone {
		return
	}
	r.p.K.After(r.gen.NextArrival(), func() {
		// Like the closed-loop thread, the open-loop generator is unaware
		// of the scheduler's fault and keeps submitting through the
		// discharge until errors surface.
		if r.ph == phaseRun || r.ph == phaseArming ||
			(r.ph == phaseFaulting && !r.faultErrored) {
			r.issueOne()
		}
		r.scheduleArrival()
	})
}

func (r *Runner) issueOne() bool {
	if r.engine != nil {
		return r.issueEngineIO()
	}
	item := r.gen.Next()
	req := &blockdev.Request{
		Pages: item.Pages,
		LPN:   item.LPN,
		Done:  r.onWorkloadDone,
	}
	if item.Op == workload.OpWrite {
		req.Op = blockdev.OpWrite
		req.Data = item.Data
	} else {
		req.Op = blockdev.OpRead
	}
	r.outstanding++
	r.issuedTotal++
	r.p.Host.Submit(req)
	r.analyzer.OnIssue(req, item.Op)
	return true
}

// issueEngineIO pulls the next IO from the transaction engine. Engine
// writes are ordinary workload requests — they cross the block layer and
// the analyzer's shadow exactly like generator traffic, which is what
// makes the oracle's verdicts corroborable by the device-level taxonomy.
// Barrier flushes carry no payload and are not analyzer packets.
func (r *Runner) issueEngineIO() bool {
	io, ok := r.engine.Next()
	if !ok {
		return false
	}
	req := &blockdev.Request{
		LPN:   io.LPN,
		Pages: io.Pages(),
		Done: func(req *blockdev.Request) {
			r.engine.Done(io, req.Err)
			r.onWorkloadDone(req)
		},
	}
	if io.Kind == txn.IOFlush {
		req.Op = blockdev.OpFlush
	} else {
		req.Op = blockdev.OpWrite
		req.Data = io.Data
	}
	r.outstanding++
	r.issuedTotal++
	r.p.Host.Submit(req)
	if req.Op == blockdev.OpWrite {
		r.analyzer.OnIssue(req, workload.OpWrite)
	}
	return true
}

func (r *Runner) onWorkloadDone(req *blockdev.Request) {
	r.outstanding--
	r.analyzer.OnComplete(req)
	if !req.NotIssued {
		// Host-queue rejections never reached the drive and do not count
		// toward fault spacing.
		r.completedSinceFault++
	}
	if (r.ph == phaseRun || r.ph == phaseArming) && req.Err == nil {
		r.completedActive++
	}

	switch r.ph {
	case phaseRun:
		if r.faultsDone < r.spec.Faults && r.completedSinceFault >= r.nextFaultTarget {
			r.armFault()
			return
		}
		if req.Err != nil {
			// The IO thread backs off on errors; the fault cycle will
			// resume it.
			return
		}
		r.reissueAfterThink()
	case phaseArming, phaseFaulting:
		// The IO generator is oblivious to the scheduler's fault: it keeps
		// issuing through the discharge until it observes an error, which
		// is how requests get caught in flight (IO errors). A host-queue
		// rejection is backpressure, not a device error.
		if req.Err != nil && !req.NotIssued {
			r.faultErrored = true
		} else if req.Err == nil {
			r.reissueAfterThink()
		}
	case phaseVerify, phaseOracle, phaseRestored, phasePaused:
		// Workload requests draining during a fault cycle; nothing to do.
	}
	r.maybeStartVerify()
}

func (r *Runner) reissueAfterThink() {
	if r.spec.Workload.IOPS > 0 {
		return // open loop: arrivals are self-scheduled
	}
	r.p.K.After(r.p.Opts.ThinkTime, func() {
		if (r.ph == phaseRun || r.ph == phaseArming || r.ph == phaseFaulting) &&
			r.outstanding < r.p.Opts.Concurrency {
			if !r.issueOne() {
				return
			}
			if r.engine != nil {
				// One completion can unlock several engine IOs (a commit
				// ACK queues a batch of home writes); keep the closed
				// loop full outside fault cycles.
				r.fillClosedLoop()
			}
		}
	})
}

// --- fault cycle ---

// armFault starts a fault cycle. In window mode the workload pauses and
// the cut lands PostACKDelay after the trigger request's ACK; otherwise
// the cut lands a few random milliseconds ahead while traffic continues,
// so in-flight requests can be caught (the paper's random fault instants).
func (r *Runner) armFault() {
	if r.spec.WindowMode {
		r.ph = phasePaused
		r.p.K.After(r.spec.PostACKDelay, r.fireCut)
		return
	}
	r.ph = phaseArming
	delay := r.rng.DurationRange(0, 5*sim.Millisecond)
	r.p.K.After(delay, r.fireCut)
	r.fillClosedLoop()
}

func (r *Runner) fireCut() {
	if r.ph != phaseArming && r.ph != phasePaused {
		return
	}
	r.noteInactive()
	r.ph = phaseFaulting
	r.faultIdx = r.analyzer.BeginFault(r.p.K.Now())
	r.p.Sched.Cut()
}

// onRailFloor fires when the rail finishes discharging; after the settle
// hold the scheduler restores power.
func (r *Runner) onRailFloor() {
	if r.ph != phaseFaulting {
		return
	}
	r.p.K.After(r.p.Opts.SettleAfterOff, func() {
		if r.ph != phaseFaulting {
			return
		}
		r.ph = phaseRestored
		r.p.Sched.Restore()
	})
}

func (r *Runner) onDeviceReady() {
	if r.ph != phaseRestored {
		return
	}
	r.ph = phaseVerify
	r.maybeStartVerify()
}

func (r *Runner) maybeStartVerify() {
	if r.ph != phaseVerify || r.outstanding > 0 || r.verifyQueue != nil {
		return
	}
	// Fold the trace into the packets, then reset it to bound memory: the
	// merged Completed flags survive on the packets, so events never need
	// to be replayed and no cursor into the stream has to be kept.
	if r.p.Tracer != nil {
		r.analyzer.AttachTrace(blktrace.Assemble(r.p.Tracer.Events()))
		r.p.Tracer.Reset()
	}
	r.verifyQueue = r.analyzer.VerifyCandidates(r.p.K.Now())
	r.verifyPos = 0
	r.verifyNext()
}

func (r *Runner) verifyNext() {
	if r.verifyPos >= len(r.verifyQueue) {
		r.finishVerification()
		return
	}
	pkt := r.verifyQueue[r.verifyPos]
	if pkt.Op == workload.OpRead || pkt.NotIssued {
		// Reads carry no durable expectation: only the completed flag
		// matters (IO error detection).
		r.analyzer.Classify(pkt, content.Data{}, r.faultIdx)
		r.verifyPos++
		r.verifyNext()
		return
	}
	r.controlRead(pkt.LPN, pkt.Pages, 0, func(result content.Data, err error) {
		if err != nil {
			r.analyzer.Classify(pkt, content.Zeroes(0), r.faultIdx)
		} else {
			r.analyzer.Classify(pkt, result, r.faultIdx)
		}
		r.verifyPos++
		r.verifyNext()
	})
}

// controlRead issues a post-recovery platform read of [lpn, lpn+pages).
// The drive should be ready, so errors are retried a few times before the
// final outcome is surfaced to done (exactly once). Both the packet
// verification pass and the transaction oracle read through here, so the
// two classifiers always see the device through the same retry policy.
func (r *Runner) controlRead(lpn addr.LPN, pages, attempt int, done func(result content.Data, err error)) {
	req := &blockdev.Request{
		Op:      blockdev.OpRead,
		LPN:     lpn,
		Pages:   pages,
		Control: true,
		Done: func(req *blockdev.Request) {
			if req.Err != nil {
				if attempt < 3 {
					r.p.K.After(10*sim.Millisecond, func() { r.controlRead(lpn, pages, attempt+1, done) })
					return
				}
				done(content.Data{}, req.Err)
				return
			}
			done(req.Result, nil)
		},
	}
	r.p.Host.Submit(req)
}

func (r *Runner) finishVerification() {
	r.verifyQueue = nil
	if r.engine != nil {
		r.startOracle()
		return
	}
	r.finishCycle()
}

// --- application recovery (txn mode) ---

// startOracle runs the crash-consistency oracle after the device-level
// verification pass: read the log region and the ledger's home pages
// back, then let the engine replay the log and judge every acknowledged
// transaction.
func (r *Runner) startOracle() {
	r.ph = phaseOracle
	r.oracleReads = r.engine.RecoveryReads()
	r.oraclePos = 0
	r.oracleNext()
}

func (r *Runner) oracleNext() {
	if r.oraclePos >= len(r.oracleReads) {
		r.oracleReads = nil
		r.engine.FinishRecovery()
		r.finishCycle()
		return
	}
	lpn := r.oracleReads[r.oraclePos]
	r.controlRead(lpn, 1, 0, func(result content.Data, err error) {
		if err != nil {
			// Unreadable after retries: the oracle treats the page as torn.
			r.engine.Observe(lpn, 0, err)
		} else {
			r.engine.Observe(lpn, result.Page(0), nil)
		}
		r.oraclePos++
		r.oracleNext()
	})
}

// finishCycle closes a fault cycle and resumes (or ends) the workload.
func (r *Runner) finishCycle() {
	r.faultsDone++
	r.faultErrored = false
	r.completedSinceFault = 0
	r.nextFaultTarget = r.jitteredTarget()
	if r.faultsDone >= r.spec.Faults {
		r.ph = phaseDone
		return
	}
	r.ph = phaseRun
	r.activeSince = r.p.K.Now()
	if r.spec.Workload.IOPS <= 0 {
		r.fillClosedLoop()
	}
}

func (r *Runner) noteInactive() {
	r.activeTotal += r.p.K.Now().Sub(r.activeSince)
}

// --- report ---

func (r *Runner) report() *Report {
	c := r.analyzer.Counters()
	active := r.activeTotal
	if r.ph != phaseDone && (r.ph == phaseRun || r.ph == phaseArming) {
		active += r.p.K.Now().Sub(r.activeSince)
	}
	rep := &Report{
		Name:          r.spec.Name,
		Profile:       r.p.Dev.Name(),
		Spec:          r.spec,
		SimDuration:   r.p.K.Now().Sub(r.startedAt),
		ActiveTime:    active,
		Requests:      c.Issued,
		Reads:         c.Reads,
		Writes:        c.Writes,
		Completed:     c.Completed,
		Errored:       c.Errored,
		NotIssued:     c.NotIssued,
		Faults:        r.faultsDone,
		Cuts:          r.p.Sched.Cuts(),
		Restores:      r.p.Sched.Restores(),
		Counters:      c,
		PerFault:      r.analyzer.PerFault(),
		HostStats:     r.p.Host.Stats(),
		RequestedIOPS: r.spec.Workload.IOPS,
	}
	if r.engine != nil {
		ts := r.engine.Stats()
		rep.TxnStats = &ts
	}
	if r.p.SSD != nil {
		st := r.p.SSD.Stats()
		rep.DeviceStats = &st
	}
	if r.p.HDD != nil {
		st := r.p.HDD.Stats()
		rep.HDDStats = &st
	}
	if arr := r.p.Array; arr != nil {
		st := arr.Stats()
		rep.ArrayStats = &st
		fails := r.analyzer.MemberFailures()
		for i, ms := range arr.Members() {
			mr := MemberReport{
				Index: i, Name: ms.Name, Role: ms.Role,
				Reads: ms.Reads, Writes: ms.Writes, Errors: ms.Errors,
			}
			switch d := arr.Drive(i).(type) {
			case *ssd.Device:
				ds := d.Stats()
				mr.Deaths, mr.Recoveries, mr.DirtyPagesLost = ds.Deaths, ds.Recoveries, ds.DirtyPagesLost
			case *hdd.Disk:
				ds := d.Stats()
				mr.Deaths, mr.Recoveries, mr.DirtyPagesLost = ds.Deaths, ds.Recoveries, ds.CacheLost
			}
			if i < len(fails) {
				mr.DataFailures, mr.FWA, mr.IOErrors = fails[i].DataFailures, fails[i].FWA, fails[i].IOErrors
			}
			rep.Members = append(rep.Members, mr)
		}
	}
	if active > 0 {
		// Responded IOPS counts only completions during powered workload
		// phases, measured against powered workload time.
		rep.RespondedIOPS = float64(r.completedActive) / active.Seconds()
	}
	if rep.Faults > 0 {
		rep.DataLossPerFault = float64(c.DataLosses()) / float64(rep.Faults)
	}
	return rep
}

// RunExperiment is the one-call entry point: build a platform, run the
// spec under ctx, return the report.
func RunExperiment(ctx context.Context, opts Options, spec ExperimentSpec) (*Report, error) {
	p, err := NewPlatform(opts)
	if err != nil {
		return nil, err
	}
	runner, err := NewRunner(p, spec)
	if err != nil {
		return nil, err
	}
	return runner.Run(ctx)
}
