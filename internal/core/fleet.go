package core

import (
	"context"
	"fmt"

	"powerfail/internal/fleet"
	"powerfail/internal/obs"
)

// runFleetExperiment is the datacenter-scale path of RunExperiment: instead
// of one device behind one PSU, it runs a fault-domain tree carrying a
// population of redundancy groups with spares and rebuild state machines.
// The spec contributes its name and (for random plans) its fault count; the
// workload and device fields do not apply at fleet scale.
func runFleetExperiment(ctx context.Context, opts Options, spec ExperimentSpec) (*Report, error) {
	cfg := opts.Fleet.WithDefaults()
	if spec.Faults > 0 && len(cfg.Faults.Script) == 0 {
		cfg.Faults.Count = spec.Faults
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	name := spec.Name
	if name == "" {
		name = "fleet"
	}
	f, err := fleet.NewSim(cfg, opts.Seed)
	if err != nil {
		return nil, err
	}
	var set *obs.Set
	if opts.Obs != nil {
		set = obs.NewSet(*opts.Obs)
		f.Observe(set)
	}
	st := f.Run()
	completed := st.FgOps - st.FgFailed
	rep := &Report{
		Name:        name,
		Profile:     fmt.Sprintf("fleet[%dx%d+%ds]", cfg.Arrays, cfg.GroupSize, cfg.Spares),
		Source:      "fleet",
		Spec:        spec,
		SimDuration: cfg.Duration,
		ActiveTime:  cfg.Duration,
		Requests:    int(st.FgOps),
		Completed:   int(completed),
		Errored:     int(st.FgFailed),
		Faults:      st.Cuts,
		Cuts:        st.Cuts,
		Restores:    st.Restores,
		Fleet:       st,
	}
	if cfg.Duration > 0 {
		rep.RespondedIOPS = float64(completed) / cfg.Duration.Seconds()
	}
	if rep.Faults > 0 {
		rep.DataLossPerFault = float64(st.LossEvents) / float64(rep.Faults)
	}
	rep.Events = f.Kernel().Processed()
	if set != nil {
		rep.Obs = set.Summary()
		rep.ObsTrace = set.TraceEvents()
	}
	return rep, nil
}
