package core

import (
	"fmt"
	"strings"

	"powerfail/internal/array"
	"powerfail/internal/blockdev"
	"powerfail/internal/fleet"
	"powerfail/internal/hdd"
	"powerfail/internal/obs"
	"powerfail/internal/sim"
	"powerfail/internal/ssd"
	"powerfail/internal/trace"
	"powerfail/internal/txn"
)

// Report is the outcome of one experiment: the failure counts the paper's
// figures plot, plus enough supporting detail to debug a run. Reports
// marshal to JSON (simulated times are nanosecond integers) so sweeps can
// be post-processed by scripts.
type Report struct {
	Name    string `json:"name"`
	Profile string `json:"profile"`
	// Source records which IO source drove the experiment ("workload",
	// "txn", "trace").
	Source string         `json:"io_source"`
	Spec   ExperimentSpec `json:"spec"`

	SimDuration sim.Duration `json:"sim_ns"`
	// ActiveTime is powered-on workload time (excludes fault cycles);
	// responded IOPS is measured against it.
	ActiveTime sim.Duration `json:"active_ns"`

	Requests  int `json:"requests"`
	Reads     int `json:"reads"`
	Writes    int `json:"writes"`
	Completed int `json:"completed"`
	Errored   int `json:"errored"`
	NotIssued int `json:"not_issued"`

	Faults int `json:"faults"`
	// Cuts and Restores count the scheduler's commands to the Arduino
	// (Cuts can exceed Faults when an experiment is cancelled mid-cycle).
	Cuts     int            `json:"cuts"`
	Restores int            `json:"restores"`
	Counters Counters       `json:"counters"`
	PerFault []FaultOutcome `json:"per_fault,omitempty"`

	DataLossPerFault float64 `json:"data_loss_per_fault"`
	RequestedIOPS    float64 `json:"requested_iops,omitempty"`
	RespondedIOPS    float64 `json:"responded_iops"`

	// DeviceStats is set on the single-SSD topology (nil otherwise, so
	// JSON consumers cannot mistake an absent SSD for an idle one).
	DeviceStats *ssd.Stats     `json:"device_stats,omitempty"`
	HostStats   blockdev.Stats `json:"host_stats"`

	// HDDStats is set on the single-HDD topology.
	HDDStats *hdd.Stats `json:"hdd_stats,omitempty"`
	// ArrayStats and Members are set on the array topology: array-level
	// counters plus the per-member service counters, device health and
	// attributed failures.
	ArrayStats *array.Stats   `json:"array_stats,omitempty"`
	Members    []MemberReport `json:"members,omitempty"`

	// TxnStats is set when the transactional application layer ran: the
	// oracle's per-class verdict counts (intact / lost-commit / torn /
	// out-of-order), the oldest lost commit sequence, and the recovery
	// scan lengths, under the engine's primary recovery policy.
	// TxnPolicies is the recovery-policy ablation — the same faults
	// judged under every policy on identical observations, indexed by
	// txn.RecoveryPolicy (hole-tolerant, strict-scan). TxnPerFault is the
	// per-fault-cycle breakdown, index-aligned with PerFault, each cycle
	// carrying all policies' verdicts.
	TxnStats    *txn.Stats         `json:"txn_stats,omitempty"`
	TxnPolicies []txn.Stats        `json:"txn_policies,omitempty"`
	TxnPerFault []txn.CycleOutcome `json:"txn_per_fault,omitempty"`

	// TraceStats is set when a trace replay drove the experiment: rows
	// replayed, laps over the trace, coverage, and how many addresses had
	// to be scaled/clamped into the device.
	TraceStats *trace.Stats `json:"trace_stats,omitempty"`

	// Fleet is set when the datacenter fleet layer ran instead of the
	// single-device platform: per-domain-level cut counts, rebuild windows
	// and bytes moved, and availability/durability nines from the simulated
	// up/degraded/down intervals.
	Fleet *fleet.Stats `json:"fleet_stats,omitempty"`

	// Events is the number of simulator events the kernel processed. It is
	// always recorded but excluded from JSON so that reports stay
	// byte-identical whether or not telemetry consumers read it.
	Events uint64 `json:"-"`

	// Obs is the observability summary (metrics registry snapshot plus
	// trace-ring accounting). It is nil unless the experiment ran with
	// Options.Obs enabled, so default reports are byte-identical to
	// pre-observability ones.
	Obs *obs.Summary `json:"obs,omitempty"`

	// ObsTrace is the structured event trace captured by the obs ring
	// (empty unless tracing was enabled). It is exported separately
	// (Chrome trace JSON / unified events), never in the report JSON.
	ObsTrace []obs.Event `json:"-"`
}

// MemberReport is one array member's view of the experiment: how much it
// served, how its power cycle went, and which failures the analyzer
// attributed to it (a failure maps to every member that holds the affected
// address range, so mirror failures are charged collectively).
type MemberReport struct {
	Index int    `json:"index"`
	Name  string `json:"name"`
	Role  string `json:"role"`

	Reads  int64 `json:"reads"`
	Writes int64 `json:"writes"`
	Errors int64 `json:"errors"`

	Deaths         int64 `json:"deaths"`
	Recoveries     int64 `json:"recoveries"`
	DirtyPagesLost int64 `json:"dirty_pages_lost"`

	DataFailures int `json:"data_failures"`
	FWA          int `json:"fwa"`
	IOErrors     int `json:"io_errors"`
}

// DataFailures returns the strict data-failure count (excludes FWA).
func (r *Report) DataFailures() int { return r.Counters.DataFailures }

// FWA returns the false-write-acknowledge count.
func (r *Report) FWA() int { return r.Counters.FWA }

// IOErrors returns the IO error count.
func (r *Report) IOErrors() int { return r.Counters.IOErrors }

// DataLosses returns data failures plus FWAs.
func (r *Report) DataLosses() int { return r.Counters.DataLosses() }

// TxnPolicy returns the recovery-policy ablation row for p (zero Stats
// when the transactional layer did not run).
func (r *Report) TxnPolicy(p txn.RecoveryPolicy) txn.Stats {
	if int(p) < len(r.TxnPolicies) {
		return r.TxnPolicies[p]
	}
	return txn.Stats{}
}

// TxnUnreachable returns the durable-but-unreachable commits: losses the
// strict scan adds over hole-tolerant replay on the same observations
// (0 when the transactional layer did not run). Never negative.
func (r *Report) TxnUnreachable() int64 {
	return r.TxnPolicy(txn.StrictScan).Losses() - r.TxnPolicy(txn.HoleTolerant).Losses()
}

// String renders a readable multi-line summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "experiment %q on SSD %s\n", r.Name, r.Profile)
	fmt.Fprintf(&b, "  workload: %s\n", r.Spec.Workload)
	fmt.Fprintf(&b, "  sim time: %s (active %s)\n", r.SimDuration, r.ActiveTime)
	fmt.Fprintf(&b, "  requests: %d (%d reads, %d writes; %d completed, %d errored, %d not issued)\n",
		r.Requests, r.Reads, r.Writes, r.Completed, r.Errored, r.NotIssued)
	fmt.Fprintf(&b, "  faults:   %d injected (%d cuts, %d restores)\n", r.Faults, r.Cuts, r.Restores)
	fmt.Fprintf(&b, "  failures: %d data failures, %d FWA, %d IO errors (%d late corruptions)\n",
		r.Counters.DataFailures, r.Counters.FWA, r.Counters.IOErrors, r.Counters.LateCorruptions)
	fmt.Fprintf(&b, "  data loss per fault: %.2f\n", r.DataLossPerFault)
	if s := r.ArrayStats; s != nil {
		fmt.Fprintf(&b, "  array:    rmw=%d holes=%d reconstructions=%d redirects=%d divergences=%d hits=%d misses=%d destages=%d dropped=%d\n",
			s.ParityRMWs, s.WriteHoles, s.Reconstructions, s.RedirectedReads, s.Divergences,
			s.CacheHits, s.CacheMisses, s.Destages, s.LinesDropped)
	}
	for _, m := range r.Members {
		fmt.Fprintf(&b, "  member %d (%s, %s): reads=%d writes=%d errors=%d deaths=%d dirty-lost=%d | data=%d fwa=%d ioerr=%d\n",
			m.Index, m.Name, m.Role, m.Reads, m.Writes, m.Errors, m.Deaths, m.DirtyPagesLost,
			m.DataFailures, m.FWA, m.IOErrors)
	}
	if s := r.TraceStats; s != nil {
		fmt.Fprintf(&b, "  trace:    %d rows, replayed %d (%d laps, %.0f%% coverage, %d scaled/clamped)\n",
			s.Records, s.Replayed, s.Laps, 100*s.Coverage, s.Clamped)
	}
	if s := r.Fleet; s != nil {
		fmt.Fprintf(&b, "  fleet:    %d arrays x%d (+%d spares), %d members, %d events\n",
			s.Arrays, s.GroupSize, s.Spares, s.Members, s.Events)
		fmt.Fprintf(&b, "  domains:  cuts by level %v, %d declared failures, %d transient recoveries\n",
			s.CutsByLevel, s.DeclaredFailures, s.TransientRecoveries)
		fmt.Fprintf(&b, "  rebuilds: %d windows (%d completed, max %d concurrent), %s exposed, %.1f MiB read / %.1f MiB written, %d spare takes, %d shortages\n",
			s.RebuildWindows, s.RebuildCompleted, s.MaxConcurrentRebuilds, s.RebuildTime,
			float64(s.RebuildReadBytes)/(1<<20), float64(s.RebuildWriteBytes)/(1<<20),
			s.SpareTakes, s.SpareShortages)
		fmt.Fprintf(&b, "  nines:    availability %.6f (%.2f nines; up %s, degraded %s, down %s), durability %.9f (%.2f nines, %d loss events, %d bytes lost)\n",
			s.Availability, s.AvailabilityNines, s.UpTime, s.DegradedTime, s.DownTime,
			s.Durability, s.DurabilityNines, s.LossEvents, s.BytesLost)
	}
	if s := r.TxnStats; s != nil {
		fmt.Fprintf(&b, "  %s\n", s)
		if s.RecoveryScans > 0 {
			fmt.Fprintf(&b, "  txn recovery: %d scans, %.0f log pages/scan; %d checkpoints, %d flushes\n",
				s.RecoveryScans, float64(s.ScanPages)/float64(s.RecoveryScans), s.Checkpoints, s.Flushes)
		}
		if len(r.TxnPolicies) > 0 {
			fmt.Fprintf(&b, "  txn ablation:")
			for _, ps := range r.TxnPolicies {
				fmt.Fprintf(&b, " %s=%d-lost/%d-torn/%d-ooo", ps.Policy, ps.LostCommits, ps.Torn, ps.OutOfOrder)
			}
			fmt.Fprintf(&b, " (%d durable-but-unreachable)\n", r.TxnUnreachable())
		}
	}
	if r.RequestedIOPS > 0 {
		fmt.Fprintf(&b, "  iops: requested %.0f responded %.0f\n", r.RequestedIOPS, r.RespondedIOPS)
	} else {
		fmt.Fprintf(&b, "  iops: responded %.0f\n", r.RespondedIOPS)
	}
	if s := r.Obs; s != nil {
		fmt.Fprintf(&b, "  obs:      %d counters, %d gauges, %d histograms; %d trace events (%d dropped)\n",
			len(s.Counters), len(s.Gauges), len(s.Histograms), s.TraceEvents, s.TraceDropped)
	}
	return b.String()
}

// Row renders a compact single-line summary for sweep tables.
func (r *Report) Row() string {
	return fmt.Sprintf("%-24s faults=%-4d data=%-5d fwa=%-5d ioerr=%-4d loss/fault=%5.2f iops=%6.0f",
		r.Name, r.Faults, r.Counters.DataFailures, r.Counters.FWA, r.Counters.IOErrors,
		r.DataLossPerFault, r.RespondedIOPS)
}
