package core

import (
	"fmt"
	"strings"

	"powerfail/internal/blockdev"
	"powerfail/internal/sim"
	"powerfail/internal/ssd"
)

// Report is the outcome of one experiment: the failure counts the paper's
// figures plot, plus enough supporting detail to debug a run. Reports
// marshal to JSON (simulated times are nanosecond integers) so sweeps can
// be post-processed by scripts.
type Report struct {
	Name    string         `json:"name"`
	Profile string         `json:"profile"`
	Spec    ExperimentSpec `json:"spec"`

	SimDuration sim.Duration `json:"sim_ns"`
	// ActiveTime is powered-on workload time (excludes fault cycles);
	// responded IOPS is measured against it.
	ActiveTime sim.Duration `json:"active_ns"`

	Requests  int `json:"requests"`
	Reads     int `json:"reads"`
	Writes    int `json:"writes"`
	Completed int `json:"completed"`
	Errored   int `json:"errored"`
	NotIssued int `json:"not_issued"`

	Faults   int            `json:"faults"`
	Counters Counters       `json:"counters"`
	PerFault []FaultOutcome `json:"per_fault,omitempty"`

	DataLossPerFault float64 `json:"data_loss_per_fault"`
	RequestedIOPS    float64 `json:"requested_iops,omitempty"`
	RespondedIOPS    float64 `json:"responded_iops"`

	DeviceStats ssd.Stats      `json:"device_stats"`
	HostStats   blockdev.Stats `json:"host_stats"`
}

// DataFailures returns the strict data-failure count (excludes FWA).
func (r *Report) DataFailures() int { return r.Counters.DataFailures }

// FWA returns the false-write-acknowledge count.
func (r *Report) FWA() int { return r.Counters.FWA }

// IOErrors returns the IO error count.
func (r *Report) IOErrors() int { return r.Counters.IOErrors }

// DataLosses returns data failures plus FWAs.
func (r *Report) DataLosses() int { return r.Counters.DataLosses() }

// String renders a readable multi-line summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "experiment %q on SSD %s\n", r.Name, r.Profile)
	fmt.Fprintf(&b, "  workload: %s\n", r.Spec.Workload)
	fmt.Fprintf(&b, "  sim time: %s (active %s)\n", r.SimDuration, r.ActiveTime)
	fmt.Fprintf(&b, "  requests: %d (%d reads, %d writes; %d completed, %d errored, %d not issued)\n",
		r.Requests, r.Reads, r.Writes, r.Completed, r.Errored, r.NotIssued)
	fmt.Fprintf(&b, "  faults:   %d injected\n", r.Faults)
	fmt.Fprintf(&b, "  failures: %d data failures, %d FWA, %d IO errors (%d late corruptions)\n",
		r.Counters.DataFailures, r.Counters.FWA, r.Counters.IOErrors, r.Counters.LateCorruptions)
	fmt.Fprintf(&b, "  data loss per fault: %.2f\n", r.DataLossPerFault)
	if r.RequestedIOPS > 0 {
		fmt.Fprintf(&b, "  iops: requested %.0f responded %.0f\n", r.RequestedIOPS, r.RespondedIOPS)
	} else {
		fmt.Fprintf(&b, "  iops: responded %.0f\n", r.RespondedIOPS)
	}
	return b.String()
}

// Row renders a compact single-line summary for sweep tables.
func (r *Report) Row() string {
	return fmt.Sprintf("%-24s faults=%-4d data=%-5d fwa=%-5d ioerr=%-4d loss/fault=%5.2f iops=%6.0f",
		r.Name, r.Faults, r.Counters.DataFailures, r.Counters.FWA, r.Counters.IOErrors,
		r.DataLossPerFault, r.RespondedIOPS)
}
