// Package content models request payloads and stored page contents as
// 64-bit fingerprints, one per 4 KiB page.
//
// The paper's platform detects failures by comparing checksums of the data
// packet against checksums of what is actually read back from the drive.
// Storing full payload bytes for multi-gigabyte working sets is wasteful;
// instead each page's content is identified by a fingerprint with the
// property that two contents are equal iff their fingerprints are equal
// (modulo the usual hash-collision caveat, irrelevant at 64 bits for the
// few million pages an experiment touches). Corruption is modelled as a
// deterministic transformation of the fingerprint, so corrupted data never
// compares equal to either the written or the previous content.
//
// FromBytes bridges real byte payloads into the same scheme for tests and
// library users that carry actual data.
package content

import (
	"fmt"

	"powerfail/internal/sim"
)

// Fingerprint identifies the content of one 4 KiB page.
type Fingerprint uint64

// Zero is the fingerprint of a never-written (all-zeroes) page.
const Zero Fingerprint = 0

// FromBytes fingerprints a byte slice (one page or less) with FNV-1a.
// An all-zero or empty slice maps to Zero, matching the convention that
// unwritten pages read as zeroes.
func FromBytes(b []byte) Fingerprint {
	allZero := true
	for _, c := range b {
		if c != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		return Zero
	}
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	f := Fingerprint(h)
	if f == Zero {
		f = 1
	}
	return f
}

// Mix derives the fingerprint of a corrupted version of f. The result is
// guaranteed to differ from f and from Zero for any salt, so corrupted
// content never masquerades as intact or erased content.
func Mix(f Fingerprint, salt uint64) Fingerprint {
	z := uint64(f) ^ (salt | 1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	g := Fingerprint(z)
	if g == f {
		g ^= 0xdeadbeef
	}
	if g == Zero {
		g = 0x5bd1e995
	}
	if g == f {
		g++
	}
	return g
}

// Data is an immutable vector of page fingerprints describing the payload
// of a multi-page request or the content read back from a device.
type Data struct {
	pages []Fingerprint
}

// Make builds a Data from explicit page fingerprints.
func Make(pages ...Fingerprint) Data {
	cp := make([]Fingerprint, len(pages))
	copy(cp, pages)
	return Data{pages: cp}
}

// Random generates n pages of fresh random content.
func Random(r *sim.RNG, n int) Data {
	p := make([]Fingerprint, n)
	for i := range p {
		f := Fingerprint(r.Uint64())
		if f == Zero {
			f = 1
		}
		p[i] = f
	}
	return Data{pages: p}
}

// zeroSlab backs Zeroes for common sizes. Data is immutable, so every
// all-zero payload can share one backing array; the slab covers any
// request up to 64 Ki pages (256 MiB of simulated data), far beyond the
// segment and rebuild-chunk sizes on the hot path.
var zeroSlab = make([]Fingerprint, 64*1024)

// Zeroes returns n pages of zero (unwritten) content. Common sizes share
// a static backing array and allocate nothing.
func Zeroes(n int) Data {
	if n <= len(zeroSlab) {
		return Data{pages: zeroSlab[:n]}
	}
	return Data{pages: make([]Fingerprint, n)}
}

// FromByteSlice fingerprints b page by page. The final partial page, if
// any, is fingerprinted as-is (conceptually zero-padded).
func FromByteSlice(b []byte) Data {
	n := (len(b) + 4095) / 4096
	p := make([]Fingerprint, n)
	for i := 0; i < n; i++ {
		lo := i * 4096
		hi := lo + 4096
		if hi > len(b) {
			hi = len(b)
		}
		p[i] = FromBytes(b[lo:hi])
	}
	return Data{pages: p}
}

// Gather assembles a Data of n pages by calling get for each page index.
func Gather(n int, get func(i int) Fingerprint) Data {
	p := make([]Fingerprint, n)
	for i := range p {
		p[i] = get(i)
	}
	return Data{pages: p}
}

// Pages returns the number of pages in d.
func (d Data) Pages() int { return len(d.pages) }

// Bytes returns the payload length in bytes (pages * 4096).
func (d Data) Bytes() int64 { return int64(len(d.pages)) * 4096 }

// Page returns the fingerprint of page i.
func (d Data) Page(i int) Fingerprint { return d.pages[i] }

// Slice returns the sub-vector [off, off+n). The result shares storage
// with d; Data is treated as immutable throughout the repository.
func (d Data) Slice(off, n int) Data {
	return Data{pages: d.pages[off : off+n]}
}

// Sum returns a compositional checksum over the page fingerprints: equal
// Data values have equal sums, and the sum of a concatenation depends only
// on the parts in order. This mirrors the "data checksum" field of the
// paper's data packet header.
func (d Data) Sum() uint64 {
	h := uint64(14695981039346656037)
	for _, f := range d.pages {
		v := uint64(f)
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	return h
}

// Equal reports whether d and e have identical content.
func (d Data) Equal(e Data) bool {
	if len(d.pages) != len(e.pages) {
		return false
	}
	for i := range d.pages {
		if d.pages[i] != e.pages[i] {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer with a short digest form.
func (d Data) String() string {
	return fmt.Sprintf("data{%dp sum=%016x}", d.Pages(), d.Sum())
}
