package content

import (
	"testing"
	"testing/quick"

	"powerfail/internal/sim"
)

func TestFromBytesZero(t *testing.T) {
	if FromBytes(nil) != Zero {
		t.Fatal("nil slice should fingerprint to Zero")
	}
	if FromBytes(make([]byte, 4096)) != Zero {
		t.Fatal("all-zero page should fingerprint to Zero")
	}
	if FromBytes([]byte{1}) == Zero {
		t.Fatal("non-zero content must not map to Zero")
	}
}

func TestFromBytesDistinguishesContent(t *testing.T) {
	a := FromBytes([]byte("hello world"))
	b := FromBytes([]byte("hello worle"))
	if a == b {
		t.Fatal("different content, same fingerprint")
	}
	if a != FromBytes([]byte("hello world")) {
		t.Fatal("fingerprint not deterministic")
	}
}

func TestMixProperties(t *testing.T) {
	r := sim.NewRNG(1)
	for i := 0; i < 10000; i++ {
		f := Fingerprint(r.Uint64())
		salt := r.Uint64()
		g := Mix(f, salt)
		if g == f {
			t.Fatalf("Mix(%x, %x) returned the input", f, salt)
		}
		if g == Zero {
			t.Fatalf("Mix(%x, %x) returned Zero", f, salt)
		}
	}
	// Deterministic.
	if Mix(5, 7) != Mix(5, 7) {
		t.Fatal("Mix not deterministic")
	}
}

func TestRandomData(t *testing.T) {
	r := sim.NewRNG(2)
	d := Random(r, 16)
	if d.Pages() != 16 || d.Bytes() != 16*4096 {
		t.Fatal("Random size wrong")
	}
	for i := 0; i < d.Pages(); i++ {
		if d.Page(i) == Zero {
			t.Fatal("Random produced a Zero page")
		}
	}
}

func TestZeroes(t *testing.T) {
	d := Zeroes(4)
	for i := 0; i < 4; i++ {
		if d.Page(i) != Zero {
			t.Fatal("Zeroes produced non-zero page")
		}
	}
}

func TestSliceSharesContent(t *testing.T) {
	r := sim.NewRNG(3)
	d := Random(r, 10)
	s := d.Slice(2, 5)
	if s.Pages() != 5 {
		t.Fatal("Slice length wrong")
	}
	for i := 0; i < 5; i++ {
		if s.Page(i) != d.Page(i+2) {
			t.Fatal("Slice content wrong")
		}
	}
}

func TestEqual(t *testing.T) {
	r := sim.NewRNG(4)
	d := Random(r, 8)
	if !d.Equal(d) {
		t.Fatal("Data not equal to itself")
	}
	e := Random(r, 8)
	if d.Equal(e) {
		t.Fatal("independent random Data compared equal")
	}
	if d.Equal(d.Slice(0, 7)) {
		t.Fatal("different lengths compared equal")
	}
}

func TestSumMatchesEquality(t *testing.T) {
	r := sim.NewRNG(5)
	d := Random(r, 8)
	cp := Make(func() []Fingerprint {
		out := make([]Fingerprint, 8)
		for i := range out {
			out[i] = d.Page(i)
		}
		return out
	}()...)
	if d.Sum() != cp.Sum() {
		t.Fatal("equal content, different sums")
	}
}

// Property: the sum of a concatenation depends only on the page sequence,
// so slicing and re-gathering preserves it.
func TestQuickSumCompositional(t *testing.T) {
	r := sim.NewRNG(6)
	f := func(nRaw uint8, cut uint8) bool {
		n := int(nRaw%30) + 2
		d := Random(r, n)
		k := int(cut) % (n - 1)
		if k == 0 {
			k = 1
		}
		re := Gather(n, func(i int) Fingerprint {
			if i < k {
				return d.Slice(0, k).Page(i)
			}
			return d.Slice(k, n-k).Page(i - k)
		})
		return re.Sum() == d.Sum() && re.Equal(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFromByteSlice(t *testing.T) {
	b := make([]byte, 4096*2+100)
	for i := range b {
		b[i] = byte(i) ^ byte(i>>8) // aperiodic over a page
	}
	d := FromByteSlice(b)
	if d.Pages() != 3 {
		t.Fatalf("Pages = %d, want 3", d.Pages())
	}
	if d.Page(0) == d.Page(1) {
		t.Fatal("distinct pages fingerprinted equal")
	}
	if FromByteSlice(nil).Pages() != 0 {
		t.Fatal("empty slice should produce empty Data")
	}
}

func TestGather(t *testing.T) {
	d := Gather(5, func(i int) Fingerprint { return Fingerprint(i + 1) })
	for i := 0; i < 5; i++ {
		if d.Page(i) != Fingerprint(i+1) {
			t.Fatal("Gather wrong")
		}
	}
}

func TestStringDigest(t *testing.T) {
	d := Zeroes(3)
	if s := d.String(); s == "" {
		t.Fatal("String empty")
	}
}
