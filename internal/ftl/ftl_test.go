package ftl

import (
	"testing"
	"testing/quick"

	"powerfail/internal/addr"
	"powerfail/internal/content"
	"powerfail/internal/flash"
	"powerfail/internal/sim"
)

// testFTL builds a small chip+FTL pair: 64 blocks of 16 pages, 32 lanes of
// user capacity left after reserves.
func testFTL(t *testing.T, mutate func(*Config)) (*flash.Chip, *FTL) {
	t.Helper()
	chip, err := flash.New(flash.Config{
		Geometry:        flash.Geometry{Dies: 2, PlanesPerDie: 2, BlocksPerPlane: 16, PagesPerBlock: 16},
		Cell:            flash.MLC,
		Timing:          flash.TimingFor(flash.MLC),
		ECC:             flash.ECCConfig{Scheme: "BCH", CorrectPerKB: 40},
		BaseBER:         0,
		WearBERMult:     4,
		EnduranceCycles: 3000,
	}, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(300, 2)
	cfg.ScanWindowPages = 0 // most tests want deterministic loss
	if mutate != nil {
		mutate(&cfg)
	}
	f, err := New(chip, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return chip, f
}

// write performs a full BeginWrite/Program/CompleteWrite cycle.
func write(t *testing.T, chip *flash.Chip, f *FTL, lpn addr.LPN, fp content.Fingerprint, now sim.Time) addr.PPN {
	t.Helper()
	tk, err := f.BeginWrite(lpn)
	if err != nil {
		t.Fatalf("BeginWrite(%v): %v", lpn, err)
	}
	if err := chip.Program(tk.PPN, fp); err != nil {
		t.Fatalf("Program(%v): %v", tk.PPN, err)
	}
	f.CompleteWrite(tk, now)
	return tk.PPN
}

func readBack(t *testing.T, chip *flash.Chip, f *FTL, lpn addr.LPN) content.Fingerprint {
	t.Helper()
	ppn, ok := f.Lookup(lpn)
	if !ok {
		return content.Zero
	}
	res, err := chip.Read(ppn)
	if err != nil {
		t.Fatal(err)
	}
	return res.FP
}

func TestWriteLookupRoundTrip(t *testing.T) {
	chip, f := testFTL(t, nil)
	for i := 0; i < 50; i++ {
		write(t, chip, f, addr.LPN(i), content.Fingerprint(i+100), 0)
	}
	for i := 0; i < 50; i++ {
		if got := readBack(t, chip, f, addr.LPN(i)); got != content.Fingerprint(i+100) {
			t.Fatalf("lpn %d read %x", i, got)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOverwriteInvalidatesOld(t *testing.T) {
	chip, f := testFTL(t, nil)
	p1 := write(t, chip, f, 5, 0xaa, 0)
	p2 := write(t, chip, f, 5, 0xbb, 0)
	if p1 == p2 {
		t.Fatal("overwrite reused the same physical page")
	}
	if got := readBack(t, chip, f, 5); got != 0xbb {
		t.Fatalf("read %x after overwrite", got)
	}
	if f.ValidPages(chip.Geometry().BlockOf(p1)) != 0 {
		t.Fatal("old page still counted valid")
	}
}

func TestBadLPN(t *testing.T) {
	_, f := testFTL(t, nil)
	if _, err := f.BeginWrite(-1); err != ErrBadLPN {
		t.Fatal("negative lpn accepted")
	}
	if _, err := f.BeginWrite(addr.LPN(f.UserPages())); err != ErrBadLPN {
		t.Fatal("out-of-range lpn accepted")
	}
}

func TestJournalCommitClearsPending(t *testing.T) {
	chip, f := testFTL(t, nil)
	now := sim.Time(0)
	for i := 0; i < 10; i++ {
		write(t, chip, f, addr.LPN(i*3), content.Fingerprint(i+1), now)
	}
	f.ForceCloseRun()
	if f.PendingRecords() == 0 {
		t.Fatal("no pending records after writes")
	}
	meta, recs := f.CommitJournal()
	if meta < 1 || recs == 0 {
		t.Fatalf("commit meta=%d recs=%d", meta, recs)
	}
	if f.PendingRecords() != 0 {
		t.Fatal("pending not cleared")
	}
	// Crash after commit loses nothing.
	cs := f.Crash(now)
	if cs.Lost != 0 {
		t.Fatalf("lost %d mappings after full commit", cs.Lost)
	}
}

func TestCrashRevertsUncommitted(t *testing.T) {
	chip, f := testFTL(t, nil)
	now := sim.Time(0)
	write(t, chip, f, 7, 0x01, now)
	f.ForceCloseRun()
	f.CommitJournal()

	// Overwrite without committing: crash must revert to the old data.
	write(t, chip, f, 7, 0x02, now)
	cs := f.Crash(now)
	if cs.Lost != 1 {
		t.Fatalf("lost = %d, want 1", cs.Lost)
	}
	if got := readBack(t, chip, f, 7); got != 0x01 {
		t.Fatalf("after crash read %x, want old 0x01 (the FWA mechanism)", got)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCrashFirstWriteRevertsToUnmapped(t *testing.T) {
	chip, f := testFTL(t, nil)
	write(t, chip, f, 9, 0x5, 0)
	f.Crash(0)
	if _, ok := f.Lookup(9); ok {
		t.Fatal("first-write mapping survived an uncommitted crash")
	}
	_ = chip
}

func TestCrashWAWChainReverts(t *testing.T) {
	chip, f := testFTL(t, nil)
	now := sim.Time(0)
	write(t, chip, f, 3, 0x10, now)
	f.ForceCloseRun()
	f.CommitJournal()
	write(t, chip, f, 3, 0x20, now) // uncommitted
	write(t, chip, f, 3, 0x30, now) // uncommitted
	cs := f.Crash(now)
	if cs.Lost != 1 {
		t.Fatalf("lost = %d (one logical page)", cs.Lost)
	}
	if got := readBack(t, chip, f, 3); got != 0x10 {
		t.Fatalf("chain revert read %x, want 0x10", got)
	}
}

func TestOOBScanRecoversRecent(t *testing.T) {
	chip, f := testFTL(t, func(c *Config) { c.ScanWindowPages = 16 })
	now := sim.Time(0)
	for i := 0; i < 8; i++ {
		write(t, chip, f, addr.LPN(i), content.Fingerprint(0x100+i), now)
	}
	cs := f.Crash(now)
	if cs.Recovered != 8 || cs.Lost != 0 {
		t.Fatalf("crash = %+v, want all 8 recovered by OOB scan", cs)
	}
	for i := 0; i < 8; i++ {
		if got := readBack(t, chip, f, addr.LPN(i)); got != content.Fingerprint(0x100+i) {
			t.Fatalf("recovered lpn %d reads %x", i, got)
		}
	}
}

func TestRunFormationAndClose(t *testing.T) {
	chip, f := testFTL(t, func(c *Config) {
		c.RunMaxPages = 8
		c.RunStaleAfter = 100 * sim.Millisecond
	})
	now := sim.Time(0)
	for i := 0; i < 6; i++ {
		write(t, chip, f, addr.LPN(i), content.Fingerprint(i+1), now)
	}
	if f.OpenRunLen() != 6 {
		t.Fatalf("open run = %d, want 6", f.OpenRunLen())
	}
	// A distant write closes the run.
	write(t, chip, f, 280, 0xff, now)
	if f.PendingRecords() < 6 {
		t.Fatalf("pending = %d after run close", f.PendingRecords())
	}
	// Staleness closes the open run too.
	f.MaybeCloseRun(now.Add(200 * sim.Millisecond))
	if f.OpenRunLen() != 0 {
		t.Fatal("stale run not closed")
	}
}

func TestRunMaxCloses(t *testing.T) {
	chip, f := testFTL(t, func(c *Config) { c.RunMaxPages = 4 })
	for i := 0; i < 9; i++ {
		write(t, chip, f, addr.LPN(i), 1, 0)
	}
	if f.OpenRunLen() > 4 {
		t.Fatalf("open run %d exceeds max 4", f.OpenRunLen())
	}
	if f.Stats().RunsClosed == 0 {
		t.Fatal("no runs closed at RunMax")
	}
}

func TestRunGapTolerance(t *testing.T) {
	chip, f := testFTL(t, nil)
	// Channel-permuted sequential arrivals: 0,2,1,4,3,... stay one run.
	order := []addr.LPN{0, 2, 1, 4, 3, 6, 5, 7}
	for _, lpn := range order {
		write(t, chip, f, lpn, 1, 0)
	}
	if f.OpenRunLen() != len(order) {
		t.Fatalf("permuted sequential stream split: run=%d", f.OpenRunLen())
	}
	if f.Stats().RunsClosed != 0 {
		t.Fatal("tolerant run closed unexpectedly")
	}
}

func TestGCReclaimsAndPreservesData(t *testing.T) {
	chip, f := testFTL(t, func(c *Config) {
		c.UserPages = 128
		c.GCLowBlocks = 50
		c.GCHighBlocks = 52
	})
	now := sim.Time(0)
	// Fill blocks, overwriting so most pages invalidate.
	const rounds = 10
	for round := 0; round < rounds; round++ {
		for i := 0; i < 24; i++ {
			write(t, chip, f, addr.LPN(i), content.Fingerprint(0x1000*round+i), now)
		}
	}
	f.ForceCloseRun()
	f.CommitJournal()
	if !f.NeedGC() {
		t.Fatalf("free=%d, expected GC pressure", f.FreeBlocks())
	}
	freeBefore := f.FreeBlocks()
	for !f.GCSatisfied() {
		plan := f.GCPlan()
		if plan == nil {
			break
		}
		for _, mv := range plan.Moves {
			res, err := chip.Read(mv.From)
			if err != nil {
				t.Fatal(err)
			}
			tk, err := f.BeginWrite(mv.LPN)
			if err != nil {
				t.Fatal(err)
			}
			if err := chip.Program(tk.PPN, res.FP); err != nil {
				t.Fatal(err)
			}
			if !f.CompleteMove(tk, mv.From, now) {
				t.Fatal("move aborted unexpectedly")
			}
		}
		if err := chip.Erase(plan.Victim); err != nil {
			t.Fatal(err)
		}
		f.GCFinish(plan.Victim)
		f.CommitJournal()
	}
	if f.FreeBlocks() <= freeBefore {
		t.Fatal("GC reclaimed nothing")
	}
	for i := 0; i < 24; i++ {
		if got := readBack(t, chip, f, addr.LPN(i)); got != content.Fingerprint(0x1000*(rounds-1)+i) {
			t.Fatalf("post-GC lpn %d reads %x", i, got)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGCSkipsPinnedBlocks(t *testing.T) {
	chip, f := testFTL(t, nil)
	now := sim.Time(0)
	p1 := write(t, chip, f, 1, 0xaa, now)
	f.ForceCloseRun()
	f.CommitJournal()
	// Overwrite leaves the old block pinned until the journal commits.
	write(t, chip, f, 1, 0xbb, now)
	pinnedBlock := chip.Geometry().BlockOf(p1)
	if plan := f.GCPlan(); plan != nil && plan.Victim == pinnedBlock {
		t.Fatal("GC picked a journal-pinned block")
	}
}

func TestCompleteMoveStaleAborts(t *testing.T) {
	chip, f := testFTL(t, nil)
	now := sim.Time(0)
	from := write(t, chip, f, 2, 0x1, now)
	// Host overwrites while the migration is "in flight".
	write(t, chip, f, 2, 0x2, now)
	tk, err := f.BeginWrite(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := chip.Program(tk.PPN, 0x1); err != nil {
		t.Fatal(err)
	}
	if f.CompleteMove(tk, from, now) {
		t.Fatal("stale move applied")
	}
	if got := readBack(t, chip, f, 2); got != 0x2 {
		t.Fatalf("host data lost to stale move: %x", got)
	}
}

func TestCrashResyncsAllocation(t *testing.T) {
	chip, f := testFTL(t, nil)
	// Reserve pages that never get programmed (power died first).
	tk1, _ := f.BeginWrite(1)
	tk2, _ := f.BeginWrite(2)
	f.AbortWrite(tk1)
	f.AbortWrite(tk2)
	f.Crash(0)
	// New writes must land on chip-programmable pages.
	for i := 0; i < 10; i++ {
		write(t, chip, f, addr.LPN(10+i), content.Fingerprint(i), 0)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCapacityRejected(t *testing.T) {
	chip, _ := testFTL(t, nil)
	_, err := New(chip, DefaultConfig(1<<40, 2))
	if err == nil {
		t.Fatal("oversized FTL accepted")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{UserPages: 0, Lanes: 1, GCLowBlocks: 1, GCHighBlocks: 2, JournalBatchPages: 1, RunMaxPages: 1},
		{UserPages: 10, Lanes: 0, GCLowBlocks: 1, GCHighBlocks: 2, JournalBatchPages: 1, RunMaxPages: 1},
		{UserPages: 10, Lanes: 1, GCLowBlocks: 2, GCHighBlocks: 1, JournalBatchPages: 1, RunMaxPages: 1},
		{UserPages: 10, Lanes: 1, GCLowBlocks: 1, GCHighBlocks: 2, JournalBatchPages: 0, RunMaxPages: 1},
		{UserPages: 10, Lanes: 1, GCLowBlocks: 1, GCHighBlocks: 2, JournalBatchPages: 1, RunMaxPages: 1, ScanWindowPages: -1},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

// Property: after any sequence of writes/overwrites plus an optional
// crash, the invariants hold and committed data reads back.
func TestQuickRandomOpsInvariants(t *testing.T) {
	f := func(ops []uint16, crashAt uint8) bool {
		chip, ftl := testFTL(t, nil)
		now := sim.Time(0)
		for i, op := range ops {
			lpn := addr.LPN(op % 200)
			tk, err := ftl.BeginWrite(lpn)
			if err != nil {
				return false
			}
			if err := chip.Program(tk.PPN, content.Fingerprint(op)+1); err != nil {
				return false
			}
			ftl.CompleteWrite(tk, now)
			if i == int(crashAt)%len(ops) {
				ftl.Crash(now)
			}
		}
		return ftl.CheckInvariants() == nil
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverDuration(t *testing.T) {
	_, f := testFTL(t, func(c *Config) { c.ScanWindowPages = 16 })
	if f.RecoverDuration() <= 10*sim.Millisecond {
		t.Fatal("recover duration should include scan reads")
	}
}
