// Package ftl implements the flash translation layer of the simulated SSD:
// a page-level logical-to-physical mapping held in the controller's DRAM,
// a journal that persists mapping updates to flash in batches, detection of
// sequential streams as run extents (the paper: for sequential accesses the
// FTL "only keeps the first address in the mapping table"), an out-of-band
// (OOB) scan that recovers the tail of the active blocks after a crash,
// and greedy garbage collection with wear-aware block allocation.
//
// The crash behaviour is the heart of the model: mapping updates that were
// neither journaled nor recoverable by the OOB scan revert to the previous
// mapping, which is exactly the mechanism behind false write-acknowledge
// (FWA) failures that persist even when the volatile data cache is
// disabled.
package ftl

import (
	"container/heap"
	"errors"
	"fmt"

	"powerfail/internal/addr"
	"powerfail/internal/flash"
	"powerfail/internal/sim"
)

// Config tunes the FTL policies.
type Config struct {
	// UserPages is the host-visible capacity in 4 KiB pages.
	UserPages int64
	// Lanes is the number of parallel allocation streams; the controller
	// maps lanes onto flash channels.
	Lanes int
	// GCLowBlocks triggers garbage collection when free blocks drop below
	// it; GCHighBlocks is the stop threshold.
	GCLowBlocks  int
	GCHighBlocks int
	// JournalBatchPages commits the journal when this many uncommitted
	// single-page records accumulate (closed runs count once per record).
	JournalBatchPages int
	// RunMaxPages closes an open sequential run at this length.
	RunMaxPages int
	// RunStaleAfter closes an open run that has not grown for this long.
	RunStaleAfter sim.Duration
	// ScanWindowPages bounds the OOB crash-recovery scan: the most recent
	// fully programmed pages of each lane's active block whose mapping can
	// be rebuilt without the journal.
	ScanWindowPages int
}

// DefaultConfig returns the policy defaults used by the stock profiles.
func DefaultConfig(userPages int64, lanes int) Config {
	return Config{
		UserPages:         userPages,
		Lanes:             lanes,
		GCLowBlocks:       4,
		GCHighBlocks:      8,
		JournalBatchPages: 256,
		RunMaxPages:       1024,
		RunStaleAfter:     200 * sim.Millisecond,
		ScanWindowPages:   64,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.UserPages <= 0 {
		return fmt.Errorf("ftl: UserPages must be positive, got %d", c.UserPages)
	}
	if c.Lanes <= 0 {
		return fmt.Errorf("ftl: Lanes must be positive, got %d", c.Lanes)
	}
	if c.GCLowBlocks < 1 || c.GCHighBlocks < c.GCLowBlocks {
		return fmt.Errorf("ftl: bad GC thresholds low=%d high=%d", c.GCLowBlocks, c.GCHighBlocks)
	}
	if c.JournalBatchPages <= 0 || c.RunMaxPages <= 0 {
		return fmt.Errorf("ftl: journal/run sizes must be positive")
	}
	if c.ScanWindowPages < 0 {
		return fmt.Errorf("ftl: ScanWindowPages must be non-negative")
	}
	return nil
}

// Ticket reserves a physical page for a logical write. The controller
// programs the page on a channel and then calls CompleteWrite (host data)
// or CompleteMove (GC migration), or AbortWrite if power was lost first.
type Ticket struct {
	LPN  addr.LPN
	PPN  addr.PPN
	Lane int
}

// record is one uncommitted mapping update held in controller DRAM.
type record struct {
	lpn addr.LPN
	old addr.PPN // mapping before this update (InvalidPPN if none)
	new addr.PPN
}

type openRun struct {
	recs    []record
	minLPN  addr.LPN
	maxLPN  addr.LPN
	touched sim.Time
	lane    int
}

// runGapTolerance lets a sequential run absorb mapping updates that arrive
// slightly out of order: flush batches complete channel by channel, so a
// logically contiguous stream commits its mappings permuted within roughly
// one drain's worth of pages.
const runGapTolerance = 256

// freeHeap orders free blocks by erase count (dynamic wear levelling) then
// index for determinism.
type freeBlock struct {
	idx    int
	erases int
}
type freeHeap []freeBlock

func (h freeHeap) Len() int { return len(h) }
func (h freeHeap) Less(i, j int) bool {
	if h[i].erases != h[j].erases {
		return h[i].erases < h[j].erases
	}
	return h[i].idx < h[j].idx
}
func (h freeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *freeHeap) Push(x interface{}) { *h = append(*h, x.(freeBlock)) }
func (h *freeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	b := old[n-1]
	*h = old[:n-1]
	return b
}

// Stats counts FTL activity.
type Stats struct {
	WritesMapped   int64
	MovesCompleted int64
	MovesAborted   int64
	RunsClosed     int64
	Commits        int64
	CommittedRecs  int64
	Crashes        int64
	LostMappings   int64
	RecoveredByOOB int64
	GCCollections  int64
	WastedPages    int64
}

// CrashStats summarises one power-loss event.
type CrashStats struct {
	Uncommitted int // mapping records at risk
	Recovered   int // rebuilt by the OOB scan
	Lost        int // logical pages whose mapping reverted
}

// GCPlan describes one collection: migrate Moves out of Victim, erase it,
// then call GCFinish.
type GCPlan struct {
	Victim int
	Moves  []Move
}

// Move is a single valid-page migration.
type Move struct {
	LPN  addr.LPN
	From addr.PPN
}

// FTL is the translation layer state. It is a pure policy object: it has
// no timers of its own; the controller invokes it at the right simulated
// instants.
type FTL struct {
	cfg  Config
	chip *flash.Chip
	geo  flash.Geometry

	l2p map[addr.LPN]addr.PPN
	p2l map[addr.PPN]addr.LPN

	valid  []int // live pages per block
	pinned []int // uncommitted-journal references per block (GC must skip)

	free    freeHeap
	active  []int // active block per lane, -1 if none
	nextIdx []int // next page index to reserve per lane

	pending []record
	run     *openRun
	seqLast addr.LPN // last written lpn, for run detection

	gcVictim int // block mid-collection, -1 if none

	stats Stats
}

// New builds an FTL over the chip. All blocks start free.
func New(chip *flash.Chip, cfg Config) (*FTL, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	geo := chip.Geometry()
	minPages := cfg.UserPages + int64((cfg.GCHighBlocks+cfg.Lanes+2)*geo.PagesPerBlock)
	if geo.Pages() < minPages {
		return nil, fmt.Errorf("ftl: geometry %s too small for %d user pages plus reserves",
			geo, cfg.UserPages)
	}
	f := &FTL{
		cfg:      cfg,
		chip:     chip,
		geo:      geo,
		l2p:      make(map[addr.LPN]addr.PPN),
		p2l:      make(map[addr.PPN]addr.LPN),
		valid:    make([]int, geo.Blocks()),
		pinned:   make([]int, geo.Blocks()),
		active:   make([]int, cfg.Lanes),
		nextIdx:  make([]int, cfg.Lanes),
		seqLast:  -2,
		gcVictim: -1,
	}
	f.free = make(freeHeap, 0, geo.Blocks())
	for b := 0; b < geo.Blocks(); b++ {
		f.free = append(f.free, freeBlock{idx: b})
	}
	heap.Init(&f.free)
	for lane := range f.active {
		f.active[lane] = -1
	}
	return f, nil
}

// Config returns the FTL configuration.
func (f *FTL) Config() Config { return f.cfg }

// UserPages returns the host-visible capacity in pages.
func (f *FTL) UserPages() int64 { return f.cfg.UserPages }

// Stats returns a snapshot of the counters.
func (f *FTL) Stats() Stats { return f.stats }

// FreeBlocks returns the number of blocks available for allocation.
func (f *FTL) FreeBlocks() int { return f.free.Len() }

// PendingRecords returns uncommitted journal records (excluding the open run).
func (f *FTL) PendingRecords() int { return len(f.pending) }

// OpenRunLen returns the length of the open sequential run.
func (f *FTL) OpenRunLen() int {
	if f.run == nil {
		return 0
	}
	return len(f.run.recs)
}

// Lookup translates a logical page. ok is false for never-written pages.
func (f *FTL) Lookup(lpn addr.LPN) (addr.PPN, bool) {
	p, ok := f.l2p[lpn]
	return p, ok
}

// ErrNoSpace reports allocation failure; it means GC could not keep up.
var ErrNoSpace = errors.New("ftl: out of free blocks")

// ErrBadLPN reports a logical address beyond the exported capacity.
var ErrBadLPN = errors.New("ftl: logical page out of range")

func (f *FTL) allocBlock() (int, error) {
	if f.free.Len() == 0 {
		return 0, ErrNoSpace
	}
	fb := heap.Pop(&f.free).(freeBlock)
	return fb.idx, nil
}

// BeginWrite reserves the next physical page for lpn. Sequential streams
// stay on one lane so their pages remain physically contiguous; other
// writes round-robin across lanes.
func (f *FTL) BeginWrite(lpn addr.LPN) (Ticket, error) {
	if lpn < 0 || int64(lpn) >= f.cfg.UserPages {
		return Ticket{}, ErrBadLPN
	}
	// Writes stripe round-robin across lanes regardless of sequentiality;
	// sequential runs are a *mapping* construct (lpn-contiguous), not a
	// physical-placement one, so sequential streams keep full channel
	// parallelism.
	lane := int(f.stats.WritesMapped) % f.cfg.Lanes
	blk := f.active[lane]
	if blk < 0 || f.nextIdx[lane] >= f.geo.PagesPerBlock {
		nb, err := f.allocBlock()
		if err != nil {
			return Ticket{}, err
		}
		f.active[lane] = nb
		f.nextIdx[lane] = 0
		blk = nb
	}
	ppn := f.geo.PPNOf(blk, f.nextIdx[lane])
	f.nextIdx[lane]++
	f.stats.WritesMapped++
	return Ticket{LPN: lpn, PPN: ppn, Lane: lane}, nil
}

// CompleteWrite applies a host write that finished programming: the
// mapping flips to the new page and the update joins the journal (as part
// of a sequential run when it extends one).
func (f *FTL) CompleteWrite(t Ticket, now sim.Time) {
	old := addr.InvalidPPN
	if cur, ok := f.l2p[t.LPN]; ok {
		old = cur
		f.valid[f.geo.BlockOf(cur)]--
		delete(f.p2l, cur)
		f.pinned[f.geo.BlockOf(cur)]++
	}
	f.l2p[t.LPN] = t.PPN
	f.p2l[t.PPN] = t.LPN
	f.valid[f.geo.BlockOf(t.PPN)]++

	rec := record{lpn: t.LPN, old: old, new: t.PPN}
	extends := f.run != nil && len(f.run.recs) < f.cfg.RunMaxPages &&
		t.LPN >= f.run.minLPN && t.LPN <= f.run.maxLPN+runGapTolerance
	if extends {
		f.run.recs = append(f.run.recs, rec)
		if t.LPN > f.run.maxLPN {
			f.run.maxLPN = t.LPN
		}
		f.run.touched = now
	} else {
		f.closeRun()
		f.run = &openRun{recs: []record{rec}, minLPN: t.LPN, maxLPN: t.LPN, touched: now, lane: t.Lane}
	}
	f.seqLast = t.LPN
}

// CompleteMove applies a GC migration if the logical page still points at
// the source; otherwise the destination page is wasted and the move is
// dropped (the host overwrote the data mid-migration).
func (f *FTL) CompleteMove(t Ticket, from addr.PPN, now sim.Time) bool {
	cur, ok := f.l2p[t.LPN]
	if !ok || cur != from {
		f.stats.MovesAborted++
		f.stats.WastedPages++
		return false
	}
	f.valid[f.geo.BlockOf(from)]--
	delete(f.p2l, from)
	f.pinned[f.geo.BlockOf(from)]++
	f.l2p[t.LPN] = t.PPN
	f.p2l[t.PPN] = t.LPN
	f.valid[f.geo.BlockOf(t.PPN)]++
	f.closeRun()
	f.pending = append(f.pending, record{lpn: t.LPN, old: from, new: t.PPN})
	f.stats.MovesCompleted++
	return true
}

// AbortWrite releases a ticket whose program never completed (power loss).
// The physical page is wasted; the mapping never changed.
func (f *FTL) AbortWrite(Ticket) { f.stats.WastedPages++ }

func (f *FTL) closeRun() {
	if f.run == nil {
		return
	}
	f.pending = append(f.pending, f.run.recs...)
	f.stats.RunsClosed++
	f.run = nil
}

// ForceCloseRun unconditionally moves the open run into the pending
// journal batch; the supercapacitor panic flush uses it before committing.
func (f *FTL) ForceCloseRun() { f.closeRun() }

// MaybeCloseRun closes the open run if it has grown stale or oversized.
// The controller calls this from its periodic journal tick.
func (f *FTL) MaybeCloseRun(now sim.Time) {
	if f.run == nil {
		return
	}
	if len(f.run.recs) >= f.cfg.RunMaxPages || now.Sub(f.run.touched) >= f.cfg.RunStaleAfter {
		f.closeRun()
	}
}

// CommitDue reports whether enough records are pending to force a commit.
func (f *FTL) CommitDue() bool { return len(f.pending) >= f.cfg.JournalBatchPages }

// CommitJournal makes every pending record durable (the controller charges
// the flash program time for the returned number of metadata pages). Open
// runs stay open and remain at risk.
func (f *FTL) CommitJournal() (metaPages, records int) {
	records = len(f.pending)
	if records == 0 {
		return 0, 0
	}
	const recordsPerMetaPage = 512
	metaPages = (records + recordsPerMetaPage - 1) / recordsPerMetaPage
	for _, r := range f.pending {
		if r.old != addr.InvalidPPN {
			f.pinned[f.geo.BlockOf(r.old)]--
		}
	}
	f.pending = f.pending[:0]
	f.stats.Commits++
	f.stats.CommittedRecs += int64(records)
	return metaPages, records
}

// scanSet returns the physical pages recoverable by the OOB scan: the most
// recent fully programmed pages of each lane's active block.
func (f *FTL) scanSet() map[addr.PPN]bool {
	set := make(map[addr.PPN]bool)
	if f.cfg.ScanWindowPages == 0 {
		return set
	}
	for lane, blk := range f.active {
		if blk < 0 {
			continue
		}
		top := f.chip.NextPage(blk)
		lo := top - f.cfg.ScanWindowPages
		if lo < 0 {
			lo = 0
		}
		for pi := lo; pi < top; pi++ {
			ppn := f.geo.PPNOf(blk, pi)
			if f.chip.FullyProgrammed(ppn) {
				set[ppn] = true
			}
		}
		_ = lane
	}
	return set
}

// Crash models power loss: every uncommitted mapping update is lost unless
// the OOB scan can rebuild it. Reverted logical pages point back at their
// previous physical pages (the FWA mechanism). The allocation pointers are
// re-synchronised with the chip, since reserved-but-unprogrammed pages are
// still erased and reusable.
func (f *FTL) Crash(now sim.Time) CrashStats {
	f.stats.Crashes++
	// Gather every at-risk record in application order.
	atRisk := make([]record, 0, len(f.pending)+f.OpenRunLen())
	atRisk = append(atRisk, f.pending...)
	if f.run != nil {
		atRisk = append(atRisk, f.run.recs...)
	}
	f.pending = f.pending[:0]
	f.run = nil

	cs := CrashStats{Uncommitted: len(atRisk)}
	if len(atRisk) > 0 {
		scan := f.scanSet()
		// Group records per logical page, preserving order.
		groups := make(map[addr.LPN][]record)
		order := make([]addr.LPN, 0, len(atRisk))
		for _, r := range atRisk {
			if _, seen := groups[r.lpn]; !seen {
				order = append(order, r.lpn)
			}
			groups[r.lpn] = append(groups[r.lpn], r)
		}
		for _, lpn := range order {
			g := groups[lpn]
			final := g[0].old
			recovered := false
			for i := len(g) - 1; i >= 0; i-- {
				if scan[g[i].new] {
					final = g[i].new
					recovered = true
					break
				}
			}
			if recovered {
				cs.Recovered++
				f.stats.RecoveredByOOB++
			}
			cur, hasCur := f.l2p[lpn]
			if hasCur && cur == final {
				continue // newest update survived
			}
			if hasCur {
				f.valid[f.geo.BlockOf(cur)]--
				delete(f.p2l, cur)
			}
			if final != addr.InvalidPPN {
				f.l2p[lpn] = final
				f.p2l[final] = lpn
				f.valid[f.geo.BlockOf(final)]++
			} else {
				delete(f.l2p, lpn)
			}
			cs.Lost++
			f.stats.LostMappings++
		}
	}
	for b := range f.pinned {
		f.pinned[b] = 0
	}
	// Re-synchronise allocation pointers with the chip: reserved pages
	// that were never programmed are still erased and must be reused,
	// because NAND programs strictly sequentially within a block.
	for lane, blk := range f.active {
		if blk < 0 {
			continue
		}
		f.nextIdx[lane] = f.chip.NextPage(blk)
	}
	return cs
}

// RecoverDuration estimates the mount time after a crash: journal replay
// plus the OOB scan reads.
func (f *FTL) RecoverDuration() sim.Duration {
	scanReads := f.cfg.ScanWindowPages * f.cfg.Lanes
	return 10*sim.Millisecond + sim.Duration(scanReads)*f.chip.Timing().ReadPage
}

// NeedGC reports whether free space is low enough to require collection.
func (f *FTL) NeedGC() bool { return f.free.Len() < f.cfg.GCLowBlocks }

// GCSatisfied reports whether collection may stop.
func (f *FTL) GCSatisfied() bool { return f.free.Len() >= f.cfg.GCHighBlocks }

// GCPlan picks a victim block (greedy: fewest valid pages, skipping free,
// active, and journal-pinned blocks) and lists the migrations required.
// It returns nil when no block is collectable.
func (f *FTL) GCPlan() *GCPlan {
	inFree := make(map[int]bool, f.free.Len())
	for _, fb := range f.free {
		inFree[fb.idx] = true
	}
	activeSet := make(map[int]bool, len(f.active))
	for _, b := range f.active {
		if b >= 0 {
			activeSet[b] = true
		}
	}
	best, bestValid := -1, 1<<30
	for b := 0; b < f.geo.Blocks(); b++ {
		if inFree[b] || activeSet[b] || f.pinned[b] > 0 || b == f.gcVictim {
			continue
		}
		if f.chip.NextPage(b) == 0 && f.chip.State(f.geo.PPNOf(b, 0)) == flash.PageErased {
			continue // untouched block
		}
		if f.valid[b] < bestValid {
			best, bestValid = b, f.valid[b]
		}
	}
	if best < 0 {
		return nil
	}
	plan := &GCPlan{Victim: best}
	for pi := 0; pi < f.geo.PagesPerBlock; pi++ {
		ppn := f.geo.PPNOf(best, pi)
		if lpn, ok := f.p2l[ppn]; ok {
			plan.Moves = append(plan.Moves, Move{LPN: lpn, From: ppn})
		}
	}
	f.gcVictim = best
	return plan
}

// GCFinish returns an erased victim to the free pool.
func (f *FTL) GCFinish(victim int) {
	if victim == f.gcVictim {
		f.gcVictim = -1
	}
	f.valid[victim] = 0
	heap.Push(&f.free, freeBlock{idx: victim, erases: f.chip.EraseCount(victim)})
	f.stats.GCCollections++
}

// GCAbort clears the in-flight victim marker after a crash interrupted a
// collection; the block will be picked again later.
func (f *FTL) GCAbort() { f.gcVictim = -1 }

// ValidPages returns the live-page count of a block (for tests).
func (f *FTL) ValidPages(block int) int { return f.valid[block] }

// CheckInvariants verifies internal consistency; tests call it after
// randomised operation sequences.
func (f *FTL) CheckInvariants() error {
	counts := make([]int, f.geo.Blocks())
	for lpn, ppn := range f.l2p {
		got, ok := f.p2l[ppn]
		if !ok || got != lpn {
			return fmt.Errorf("ftl: l2p/p2l mismatch at %v -> %v", lpn, ppn)
		}
		counts[f.geo.BlockOf(ppn)]++
	}
	if len(f.l2p) != len(f.p2l) {
		return fmt.Errorf("ftl: map size mismatch l2p=%d p2l=%d", len(f.l2p), len(f.p2l))
	}
	for b, want := range counts {
		if f.valid[b] != want {
			return fmt.Errorf("ftl: block %d valid=%d want %d", b, f.valid[b], want)
		}
	}
	return nil
}
