package obs

import (
	"fmt"
	"io"

	"powerfail/internal/sim"
)

// Kind classifies a trace event. The taxonomy is deliberately small:
// each kind fixes how Name/Value/Dur are interpreted and how the Chrome
// exporter renders the event.
type Kind uint8

// Event kinds.
const (
	// KindInstant is a generic point event; Value is kind-specific.
	KindInstant Kind = iota
	// KindSpan is a generic duration event covering [At, At+Dur).
	KindSpan
	// KindPower is a power edge on one fault-domain tree node: Name is
	// the node, Value is 1 for a cut and 0 for a restore.
	KindPower
	// KindState is a state-machine transition: Name is "entity old>new".
	KindState
	// KindTxn is transaction lifecycle: Name is "begin"/"commit"/"abort",
	// Value is the transaction id; commits are spans from begin to ack.
	KindTxn
	// KindScan is a recovery scan: Value is the number of log pages read.
	KindScan
	// KindQueueDepth is a queue-depth sample: Value is the depth.
	KindQueueDepth
	// KindBlockIO is one completed block-layer request rendered as a
	// queue-to-complete span: Name is the op kind, Value the request id.
	KindBlockIO
)

var kindNames = [...]string{
	KindInstant:    "instant",
	KindSpan:       "span",
	KindPower:      "power",
	KindState:      "state",
	KindTxn:        "txn",
	KindScan:       "scan",
	KindQueueDepth: "qdepth",
	KindBlockIO:    "blkio",
}

// String returns the stable lower-case name used in dumps.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseKind inverts Kind.String.
func ParseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if s == name {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("obs: unknown event kind %q", s)
}

// Event is one typed trace record on the simulated clock.
type Event struct {
	At    sim.Time     `json:"at"`
	Dur   sim.Duration `json:"dur,omitempty"`
	Kind  Kind         `json:"kind"`
	Comp  string       `json:"comp"`
	Name  string       `json:"name"`
	Value int64        `json:"value"`
}

// String formats the event as one timeline line.
func (e Event) String() string {
	if e.Dur != 0 {
		return fmt.Sprintf("%.9f %-7s %-16s %s val=%d dur=%s",
			e.At.Seconds(), e.Kind, e.Comp, e.Name, e.Value, e.Dur)
	}
	return fmt.Sprintf("%.9f %-7s %-16s %s val=%d",
		e.At.Seconds(), e.Kind, e.Comp, e.Name, e.Value)
}

// Trace is a bounded ring buffer of events. When full it drops the
// oldest event and counts the drop; because recording order is fixed by
// the single-threaded kernel, the surviving window is deterministic.
type Trace struct {
	buf     []Event
	start   int
	n       int
	dropped uint64
}

// NewTrace returns a ring holding at most capacity events.
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Trace{buf: make([]Event, capacity)}
}

// Record appends e, evicting the oldest event if the ring is full.
// Nil-safe.
func (t *Trace) Record(e Event) {
	if t == nil {
		return
	}
	if t.n == len(t.buf) {
		t.buf[t.start] = e
		t.start = (t.start + 1) % len(t.buf)
		t.dropped++
		return
	}
	t.buf[(t.start+t.n)%len(t.buf)] = e
	t.n++
}

// Len returns the number of retained events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	return t.n
}

// Dropped returns how many events were evicted.
func (t *Trace) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Events returns the retained events oldest-first as a fresh slice.
func (t *Trace) Events() []Event {
	if t == nil || t.n == 0 {
		return nil
	}
	out := make([]Event, t.n)
	head := len(t.buf) - t.start
	if t.n <= head {
		copy(out, t.buf[t.start:t.start+t.n])
	} else {
		copy(out, t.buf[t.start:])
		copy(out[head:], t.buf[:t.n-head])
	}
	return out
}

// WriteTimeline writes events as a human-readable text timeline, one
// line per event in record order.
func WriteTimeline(w io.Writer, events []Event) error {
	for _, e := range events {
		if _, err := fmt.Fprintln(w, e.String()); err != nil {
			return err
		}
	}
	return nil
}
