package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"powerfail/internal/blktrace"
)

// Process groups one simulation's events for Chrome trace export: obs
// events plus (optionally) raw block-layer events, all on the same
// simulated clock. Each Process renders as one Perfetto process row;
// components become named threads inside it.
type Process struct {
	Name   string
	Events []Event
	Blk    []blktrace.Event
}

// chromeEvent is one record of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// Struct (not map) so field order — and therefore output bytes — is
// fixed; args maps are fine because encoding/json sorts map keys.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func usOf(ns int64) float64 { return float64(ns) / 1e3 }

// WriteChromeTrace renders processes as Chrome trace-event JSON viewable
// in Perfetto (https://ui.perfetto.dev) or chrome://tracing. Output is
// deterministic: same inputs, same bytes.
func WriteChromeTrace(w io.Writer, procs []Process) error {
	out := chromeFile{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for pi, p := range procs {
		pid := pi + 1
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": p.Name},
		})
		tids := map[string]int{}
		tidOf := func(comp string) int {
			if t, ok := tids[comp]; ok {
				return t
			}
			t := len(tids) + 1
			tids[comp] = t
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: t,
				Args: map[string]any{"name": comp},
			})
			return t
		}
		events := append([]Event(nil), p.Events...)
		SortEvents(events)
		for _, e := range events {
			ce := chromeEvent{
				Name: e.Name,
				Ts:   usOf(int64(e.At)),
				Pid:  pid,
				Tid:  tidOf(e.Comp),
				Cat:  e.Kind.String(),
			}
			switch {
			case e.Kind == KindQueueDepth:
				ce.Ph = "C"
				ce.Args = map[string]any{"depth": e.Value}
			case e.Kind == KindPower:
				ce.Ph = "i"
				ce.S = "p"
				edge := "restore"
				if e.Value != 0 {
					edge = "cut"
				}
				ce.Name = edge + " " + e.Name
			case e.Dur > 0 || e.Kind == KindSpan || e.Kind == KindBlockIO:
				ce.Ph = "X"
				ce.Dur = usOf(int64(e.Dur))
				ce.Args = map[string]any{"value": e.Value}
			default:
				ce.Ph = "i"
				ce.S = "t"
				ce.Args = map[string]any{"value": e.Value}
			}
			out.TraceEvents = append(out.TraceEvents, ce)
		}
		if len(p.Blk) > 0 {
			tid := tidOf("blk")
			for _, bio := range blktrace.Assemble(p.Blk) {
				ce := chromeEvent{
					Pid: pid, Tid: tid, Cat: "blkio",
					Args: map[string]any{"req": bio.Req, "lpn": int64(bio.LPN), "pages": bio.Pages},
				}
				if bio.Complete() {
					ce.Name = fmt.Sprintf("%c %dp", bio.Op, bio.Pages)
					ce.Ph = "X"
					ce.Ts = usOf(int64(bio.QueueAt))
					ce.Dur = usOf(int64(bio.Q2C()))
				} else {
					ce.Name = fmt.Sprintf("%c %dp incomplete", bio.Op, bio.Pages)
					ce.Ph = "i"
					ce.S = "t"
					ce.Ts = usOf(int64(bio.QueueAt))
				}
				out.TraceEvents = append(out.TraceEvents, ce)
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// validPhases are the trace-event phases this exporter emits.
var validPhases = map[string]bool{"X": true, "i": true, "C": true, "M": true}

// ValidateChromeTrace checks that r holds trace-event JSON of the shape
// WriteChromeTrace emits: a traceEvents array whose records all carry a
// name, a known phase, a non-negative timestamp and pid/tid routing.
// Returns the number of events validated.
func ValidateChromeTrace(r io.Reader) (int, error) {
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return 0, fmt.Errorf("obs: trace JSON: %w", err)
	}
	if f.TraceEvents == nil {
		return 0, fmt.Errorf("obs: trace JSON: missing traceEvents array")
	}
	for i, e := range f.TraceEvents {
		name, ok := e["name"].(string)
		if !ok || name == "" {
			return 0, fmt.Errorf("obs: trace event %d: missing name", i)
		}
		ph, ok := e["ph"].(string)
		if !ok || !validPhases[ph] {
			return 0, fmt.Errorf("obs: trace event %d (%q): bad phase %v", i, name, e["ph"])
		}
		if ph != "M" {
			ts, ok := e["ts"].(float64)
			if !ok || ts < 0 {
				return 0, fmt.Errorf("obs: trace event %d (%q): bad ts %v", i, name, e["ts"])
			}
		}
		if _, ok := e["pid"].(float64); !ok {
			return 0, fmt.Errorf("obs: trace event %d (%q): missing pid", i, name)
		}
		if dur, present := e["dur"]; present {
			if d, ok := dur.(float64); !ok || d < 0 {
				return 0, fmt.Errorf("obs: trace event %d (%q): bad dur %v", i, name, dur)
			}
		}
	}
	return len(f.TraceEvents), nil
}
