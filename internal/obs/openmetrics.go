package obs

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// WriteOpenMetrics renders the summary in OpenMetrics text exposition
// format: one metric family per counter, gauge and histogram, each name
// prefixed with ns and sanitized to the exposition charset. Counters
// become `<ns><name>_total`, gauges expose their last value plus a
// `<name>_max` family, histograms expose the classic cumulative
// `_bucket{le="..."}` / `_count` / `_sum` series built from the exact
// snapshot buckets.
//
// The caller owns the surrounding exposition — in particular the final
// "# EOF" terminator — so campaign-level families and a merged summary
// can share one scrape body.
func (s *Summary) WriteOpenMetrics(w io.Writer, ns string) error {
	if s == nil {
		return nil
	}
	for _, c := range s.Counters {
		name := ns + sanitizeMetricName(c.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s_total %d\n", name, name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		name := ns + sanitizeMetricName(g.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n# TYPE %s_max gauge\n%s_max %d\n",
			name, name, g.Value, name, name, g.Max); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if err := writeOpenMetricsHistogram(w, ns, h); err != nil {
			return err
		}
	}
	return nil
}

func writeOpenMetricsHistogram(w io.Writer, ns string, h HistogramSnapshot) error {
	name := ns + sanitizeMetricName(h.Name)
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	// Snapshot buckets are sorted by index, so a single pass accumulates
	// the cumulative counts the exposition wants.
	var cum uint64
	for _, b := range h.Buckets {
		cum += b.Count
		u := b.Upper()
		if u == math.MaxInt64 {
			continue // covered by the trailing +Inf bucket
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, u, cum); err != nil {
			return err
		}
	}
	if cum < h.Count {
		cum = h.Count // defensive: snapshots always bucket every sample
	}
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_count %d\n%s_sum %d\n",
		name, cum, name, h.Count, name, h.Sum)
	return err
}

// sanitizeMetricName maps a registry metric name onto the OpenMetrics
// name charset [a-zA-Z0-9_:], turning scope separators into underscores.
func sanitizeMetricName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			return r
		default:
			return '_'
		}
	}, name)
}
