// Property tests for the summary-merge algebra and histogram quantile
// edge cases: campaign resume re-aggregates archived per-item summaries,
// so MergeSummaries must behave like a commutative, associative monoid
// over summaries and quantiles must stay sane on degenerate inputs.
package obs

import (
	"encoding/json"
	"math/rand"
	"testing"
)

// randomSummary builds a small random summary from a seeded source, so
// property runs are reproducible. It mixes counters, gauges and
// histograms over a shared name pool to force same-name merging.
func randomSummary(r *rand.Rand) *Summary {
	s := &Summary{TraceEvents: r.Intn(10), TraceDropped: uint64(r.Intn(3))}
	names := []string{"a.x", "a.y", "b.lat_ns", "c.depth"}
	for _, n := range names[:1+r.Intn(len(names))] {
		switch r.Intn(3) {
		case 0:
			s.Counters = append(s.Counters, CounterSnapshot{Name: n, Value: int64(r.Intn(100))})
		case 1:
			s.Gauges = append(s.Gauges, GaugeSnapshot{Name: n, Value: int64(r.Intn(1000)), Max: int64(r.Intn(1000))})
		default:
			var h Histogram
			for i := r.Intn(20); i >= 0; i-- {
				h.Observe(int64(r.Intn(1 << uint(4+r.Intn(30)))))
			}
			s.Histograms = append(s.Histograms, h.Snapshot(n))
		}
	}
	return s
}

// equalSummaries compares through JSON so unexported state and nil-vs-
// empty slice differences cannot cause false negatives.
func equalSummaries(t *testing.T, a, b *Summary) bool {
	t.Helper()
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	return string(ja) == string(jb)
}

// TestMergeSummariesCommutative: merge order of the parts never changes
// the merged summary (campaign items complete in scheduling order, which
// varies with parallelism).
func TestMergeSummariesCommutative(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		parts := make([]*Summary, 2+r.Intn(4))
		for i := range parts {
			parts[i] = randomSummary(r)
		}
		want := MergeSummaries(parts)
		perm := make([]*Summary, len(parts))
		for i, j := range r.Perm(len(parts)) {
			perm[i] = parts[j]
		}
		if got := MergeSummaries(perm); !equalSummaries(t, want, got) {
			t.Fatalf("trial %d: merge not commutative\nwant %+v\ngot  %+v", trial, want, got)
		}
	}
}

// TestMergeSummariesAssociative: merging pre-merged groups equals merging
// everything flat — resume merges archived summaries that were themselves
// merged per figure.
func TestMergeSummariesAssociative(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		parts := make([]*Summary, 3+r.Intn(4))
		for i := range parts {
			parts[i] = randomSummary(r)
		}
		flat := MergeSummaries(parts)
		cut := 1 + r.Intn(len(parts)-1)
		grouped := MergeSummaries([]*Summary{
			MergeSummaries(parts[:cut]),
			MergeSummaries(parts[cut:]),
		})
		if !equalSummaries(t, flat, grouped) {
			t.Fatalf("trial %d: merge not associative (cut %d)\nflat    %+v\ngrouped %+v",
				trial, cut, flat, grouped)
		}
	}
}

// TestMergeSummariesIdentity: nil parts are ignored and all-nil input
// merges to nil (the "observability off" value).
func TestMergeSummariesIdentity(t *testing.T) {
	if got := MergeSummaries([]*Summary{nil, nil}); got != nil {
		t.Fatalf("all-nil merge = %+v, want nil", got)
	}
	r := rand.New(rand.NewSource(3))
	s := randomSummary(r)
	if got := MergeSummaries([]*Summary{nil, s, nil}); !equalSummaries(t, MergeSummaries([]*Summary{s}), got) {
		t.Fatalf("nil parts changed the merge: %+v", got)
	}
}

// TestHistogramQuantileEmpty: a histogram with no samples answers 0 for
// every quantile and snapshots to the zero value.
func TestHistogramQuantileEmpty(t *testing.T) {
	var h Histogram
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%g) = %d, want 0", q, got)
		}
	}
	if s := h.Snapshot("x"); s.Count != 0 || len(s.Buckets) != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
}

// TestHistogramQuantileSingleSample: with one sample every quantile is
// that sample exactly (min == max clamps the bucket upper bound).
func TestHistogramQuantileSingleSample(t *testing.T) {
	for _, v := range []int64{0, 1, 7, 1023, 1 << 40} {
		var h Histogram
		h.Observe(v)
		for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
			if got := h.Quantile(q); got != v {
				t.Fatalf("single-sample(%d) Quantile(%g) = %d", v, q, got)
			}
		}
	}
}

// TestHistogramQuantileOneBucket: many samples of one value keep every
// quantile at that value — the bucket's upper bound must be clamped to
// the exact max, not the bucket boundary.
func TestHistogramQuantileOneBucket(t *testing.T) {
	var h Histogram
	const v = 1000003
	for i := 0; i < 1000; i++ {
		h.Observe(v)
	}
	for _, q := range []float64{0, 0.5, 0.999, 1} {
		if got := h.Quantile(q); got != v {
			t.Fatalf("one-bucket Quantile(%g) = %d, want %d", q, got, v)
		}
	}
	snap := h.Snapshot("x")
	if snap.P50 != v || snap.P99 != v {
		t.Fatalf("one-bucket snapshot quantiles = %d/%d, want %d", snap.P50, snap.P99, v)
	}
}

// FuzzHistogramQuantile drives random sample sets through the histogram
// and checks the quantile invariants: bounded by [min, max], monotone in
// q, and preserved exactly through a snapshot round trip.
func FuzzHistogramQuantile(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4}, uint16(500))
	f.Add([]byte{0}, uint16(0))
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255}, uint16(1000))
	f.Fuzz(func(t *testing.T, raw []byte, qRaw uint16) {
		var h Histogram
		// 8 bytes per sample; a short tail contributes a final small sample.
		for len(raw) > 0 {
			n := 8
			if len(raw) < n {
				n = len(raw)
			}
			var v int64
			for _, b := range raw[:n] {
				v = v<<8 | int64(b)
			}
			if v < 0 {
				v = -v
			}
			h.Observe(v)
			raw = raw[n:]
		}
		if h.Count() == 0 {
			if got := h.Quantile(0.5); got != 0 {
				t.Fatalf("empty Quantile = %d", got)
			}
			return
		}
		q := float64(qRaw%1001) / 1000
		v := h.Quantile(q)
		lo, hi := h.Quantile(0), h.Quantile(1)
		if v < lo || v > hi {
			t.Fatalf("Quantile(%g) = %d outside [%d, %d]", q, v, lo, hi)
		}
		if q2 := q / 2; h.Quantile(q2) > v {
			t.Fatalf("quantiles not monotone: q(%g)=%d > q(%g)=%d", q2, h.Quantile(q2), q, v)
		}
		// Snapshot → Histogram reconstruction preserves quantiles exactly.
		if rec := h.Snapshot("f").Histogram(); rec.Quantile(q) != v {
			t.Fatalf("round-trip Quantile(%g) = %d, want %d", q, rec.Quantile(q), v)
		}
	})
}
