package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"powerfail/internal/blktrace"
	"powerfail/internal/sim"
)

// EventsHeader is the first line of the unified obs/blktrace event
// format. Version 2 supersedes the headerless blkparse-like format that
// blktrace.WriteEvents emits; the version bump buys exact integer-
// nanosecond timestamps (the old format roundtripped through float
// seconds) and one merged clock for block and obs events.
const EventsHeader = "# powerfail-events v2"

// ErrLegacyFormat is wrapped by ReadUnifiedEvents when fed a headerless
// pre-v2 blktrace event dump, so tools can show a usage hint instead of
// misparsing.
var ErrLegacyFormat = fmt.Errorf("legacy blktrace event format (missing %q header)", EventsHeader)

// WriteUnifiedEvents writes obs and block events merged onto one clock in
// the v2 text format:
//
//	# powerfail-events v2
//	t=<ns> blk <act> <op> req=<n> sub=<n> lpn=<n> pages=<n>
//	t=<ns> obs <kind> comp=<s> name=<quoted> val=<n> dur=<ns>
//
// Spans are recorded at completion but stamped with their start time, so
// the inputs need not be time-ordered; the writer stable-sorts copies.
// Ties order block events first.
func WriteUnifiedEvents(w io.Writer, events []Event, blk []blktrace.Event) error {
	events = append([]Event(nil), events...)
	SortEvents(events)
	blk = append([]blktrace.Event(nil), blk...)
	sort.SliceStable(blk, func(i, j int) bool { return blk[i].At < blk[j].At })
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, EventsHeader); err != nil {
		return err
	}
	i, j := 0, 0
	for i < len(events) || j < len(blk) {
		if j < len(blk) && (i >= len(events) || blk[j].At <= events[i].At) {
			b := blk[j]
			j++
			if _, err := fmt.Fprintf(bw, "t=%d blk %c %c req=%d sub=%d lpn=%d pages=%d\n",
				int64(b.At), b.Act, b.Op, b.Req, b.Sub, b.LPN, b.Pages); err != nil {
				return err
			}
			continue
		}
		e := events[i]
		i++
		if _, err := fmt.Fprintf(bw, "t=%d obs %s comp=%s name=%s val=%d dur=%d\n",
			int64(e.At), e.Kind, e.Comp, strconv.Quote(e.Name), e.Value, int64(e.Dur)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadUnifiedEvents parses the WriteUnifiedEvents format back into its
// two streams. A headerless legacy blktrace dump yields an error
// wrapping ErrLegacyFormat.
func ReadUnifiedEvents(r io.Reader) ([]Event, []blktrace.Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	sawHeader := false
	var events []Event
	var blk []blktrace.Event
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if !sawHeader {
			if !strings.HasPrefix(text, "# powerfail-events") {
				return nil, nil, fmt.Errorf("obs: line %d: %w", line, ErrLegacyFormat)
			}
			if text != EventsHeader {
				return nil, nil, fmt.Errorf("obs: line %d: unsupported events version %q (want %q)", line, text, EventsHeader)
			}
			sawHeader = true
			continue
		}
		if strings.HasPrefix(text, "#") {
			continue
		}
		var ns int64
		var tag string
		n, err := fmt.Sscanf(text, "t=%d %s", &ns, &tag)
		if err != nil || n != 2 {
			return nil, nil, fmt.Errorf("obs: parse line %d: bad record prefix", line)
		}
		rest := text[strings.Index(text, tag)+len(tag):]
		switch tag {
		case "blk":
			var act, op string
			var b blktrace.Event
			if _, err := fmt.Sscanf(rest, "%s %s req=%d sub=%d lpn=%d pages=%d",
				&act, &op, &b.Req, &b.Sub, (*int64)(&b.LPN), &b.Pages); err != nil {
				return nil, nil, fmt.Errorf("obs: parse line %d: %w", line, err)
			}
			if len(act) != 1 || len(op) != 1 || !blktrace.Action(act[0]).Valid() {
				return nil, nil, fmt.Errorf("obs: parse line %d: bad action/op", line)
			}
			b.At = sim.Time(ns)
			b.Act = blktrace.Action(act[0])
			b.Op = blktrace.OpKind(op[0])
			blk = append(blk, b)
		case "obs":
			e, err := parseObsLine(ns, strings.TrimSpace(rest))
			if err != nil {
				return nil, nil, fmt.Errorf("obs: parse line %d: %w", line, err)
			}
			events = append(events, e)
		default:
			return nil, nil, fmt.Errorf("obs: parse line %d: unknown record tag %q", line, tag)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if !sawHeader {
		return nil, nil, fmt.Errorf("obs: empty input: %w", ErrLegacyFormat)
	}
	return events, blk, nil
}

func parseObsLine(ns int64, rest string) (Event, error) {
	e := Event{At: sim.Time(ns)}
	fields := strings.SplitN(rest, " ", 3)
	if len(fields) < 3 {
		return e, fmt.Errorf("short obs record")
	}
	kind, err := ParseKind(fields[0])
	if err != nil {
		return e, err
	}
	e.Kind = kind
	if !strings.HasPrefix(fields[1], "comp=") {
		return e, fmt.Errorf("missing comp=")
	}
	e.Comp = strings.TrimPrefix(fields[1], "comp=")
	rest = fields[2]
	if !strings.HasPrefix(rest, "name=") {
		return e, fmt.Errorf("missing name=")
	}
	rest = strings.TrimPrefix(rest, "name=")
	// Name is a Go-quoted string (it may contain spaces); find its end by
	// unquoting the longest valid prefix.
	end := quotedEnd(rest)
	if end < 0 {
		return e, fmt.Errorf("bad quoted name")
	}
	name, err := strconv.Unquote(rest[:end])
	if err != nil {
		return e, fmt.Errorf("bad quoted name: %w", err)
	}
	e.Name = name
	var dur int64
	if _, err := fmt.Sscanf(strings.TrimSpace(rest[end:]), "val=%d dur=%d", &e.Value, &dur); err != nil {
		return e, fmt.Errorf("bad val/dur: %w", err)
	}
	e.Dur = sim.Duration(dur)
	return e, nil
}

// quotedEnd returns the index just past the closing quote of the
// Go-quoted string starting at s[0], or -1.
func quotedEnd(s string) int {
	if len(s) == 0 || s[0] != '"' {
		return -1
	}
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return i + 1
		}
	}
	return -1
}

// SortEvents orders events by time, keeping the original order of
// equal-time events (record order is meaningful within one instant).
func SortEvents(events []Event) {
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
}
