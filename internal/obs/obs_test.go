package obs

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"powerfail/internal/blktrace"
	"powerfail/internal/sim"
)

func TestNilSafety(t *testing.T) {
	// Everything on the disabled path must be callable without panics.
	var set *Set
	sc := set.Scope("x")
	if sc.Enabled() || sc.TracingOn() {
		t.Fatal("zero scope should be disabled")
	}
	sc.Counter("c").Inc()
	sc.Gauge("g").Set(3)
	sc.Histogram("h").Observe(5)
	sc.Instant(0, KindInstant, "e", 1)
	sc.Span(0, 10, KindSpan, "s", 1)
	sc.Sub("child").Counter("c").Add(2)
	if set.Summary() != nil || set.TraceEvents() != nil {
		t.Fatal("nil set should summarize to nil")
	}
	var cfg *Config
	if cfg.Enabled() {
		t.Fatal("nil config should be disabled")
	}
	if NewSet(Config{}) != nil {
		t.Fatal("zero config should build a nil set")
	}
}

func TestBucketLayout(t *testing.T) {
	// Bucket index must be monotone in the value and bucketUpper must be
	// the inclusive upper bound of its bucket.
	last := -1
	for _, v := range []int64{0, 1, 2, 7, 8, 9, 15, 16, 100, 1023, 1024, 1 << 20, 1 << 40, math.MaxInt64} {
		b := bucketOf(v)
		if b < last {
			t.Fatalf("bucketOf not monotone at %d: %d < %d", v, b, last)
		}
		last = b
		if up := bucketUpper(b); v > up {
			t.Fatalf("value %d above its bucket upper %d (bucket %d)", v, up, b)
		}
		if b > 0 {
			if lowUp := bucketUpper(b - 1); v <= lowUp {
				t.Fatalf("value %d should be in bucket %d (upper %d)", v, b-1, lowUp)
			}
		}
	}
	if b := bucketOf(-5); b != 0 {
		t.Fatalf("negative values must clamp to bucket 0, got %d", b)
	}
	if b := bucketOf(math.MaxInt64); b >= numBuckets {
		t.Fatalf("max value bucket %d out of range %d", b, numBuckets)
	}
}

func TestHistogramQuantilesMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := &Histogram{}
	for i := 0; i < 10000; i++ {
		h.Observe(rng.Int63n(1_000_000_000))
	}
	qs := []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1}
	prev := int64(-1)
	for _, q := range qs {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantiles not monotone: q=%v gave %d < %d", q, v, prev)
		}
		prev = v
	}
	s := h.Snapshot("x")
	if !(s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max) {
		t.Fatalf("snapshot quantiles not ordered: %+v", s)
	}
	if s.Max != h.max || s.Min != h.min {
		t.Fatal("snapshot min/max not exact")
	}
}

func TestHistogramMergeEqualsWhole(t *testing.T) {
	// Splitting one sample stream across shards and merging must equal a
	// single histogram fed every sample — bucket counts, sum, quantiles.
	rng := rand.New(rand.NewSource(42))
	whole := &Histogram{}
	shards := []*Histogram{{}, {}, {}, {}}
	for i := 0; i < 5000; i++ {
		v := rng.Int63n(50_000_000)
		whole.Observe(v)
		shards[i%len(shards)].Observe(v)
	}
	merged := &Histogram{}
	for _, s := range shards {
		merged.Merge(s)
	}
	if !reflect.DeepEqual(merged, whole) {
		t.Fatal("merged shards differ from whole histogram")
	}
	// Snapshot → Histogram roundtrip preserves quantiles.
	back := whole.Snapshot("w").Histogram()
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if back.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("roundtrip quantile %v mismatch", q)
		}
	}
}

func TestMergeSummaries(t *testing.T) {
	mk := func(seed int64, n int) *Summary {
		set := NewSet(Config{Metrics: true})
		sc := set.Scope("dev")
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < n; i++ {
			sc.Counter("ops").Inc()
			sc.Histogram("lat").Observe(rng.Int63n(1000))
		}
		sc.Gauge("depth").Set(int64(n))
		return set.Summary()
	}
	a, b := mk(1, 100), mk(2, 200)
	m := MergeSummaries([]*Summary{a, b, nil})
	if got := m.Counter("dev/ops"); got != 300 {
		t.Fatalf("merged counter = %d, want 300", got)
	}
	if h := m.Histogram("dev/lat"); h.Count != 300 {
		t.Fatalf("merged histogram count = %d, want 300", h.Count)
	}
	if MergeSummaries([]*Summary{nil, nil}) != nil {
		t.Fatal("all-nil merge should be nil")
	}
	// Merge is order-independent.
	m2 := MergeSummaries([]*Summary{b, a})
	var d1, d2 bytes.Buffer
	if err := m.Dump(&d1); err != nil {
		t.Fatal(err)
	}
	if err := m2.Dump(&d2); err != nil {
		t.Fatal(err)
	}
	if d1.String() != d2.String() {
		t.Fatal("merge result depends on input order")
	}
}

func TestRegistryDumpDeterministic(t *testing.T) {
	build := func() *Summary {
		set := NewSet(Config{Metrics: true, Trace: true, TraceCap: 4})
		sc := set.Scope("zeta")
		sc.Counter("c").Add(4)
		sc2 := set.Scope("alpha")
		sc2.Counter("c").Add(1)
		sc2.Histogram("h").Observe(99)
		sc2.Gauge("g").Set(-2)
		for i := 0; i < 6; i++ {
			sc.Instant(sim.Time(i), KindInstant, "tick", int64(i))
		}
		return set.Summary()
	}
	var a, b bytes.Buffer
	if err := build().Dump(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().Dump(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("dumps differ:\n%s\n---\n%s", a.String(), b.String())
	}
	if !strings.Contains(a.String(), "trace events=4 dropped=2") {
		t.Fatalf("ring accounting missing from dump:\n%s", a.String())
	}
	// Sorted within a metric kind: counter alpha/c precedes zeta/c.
	if strings.Index(a.String(), "counter alpha/c") > strings.Index(a.String(), "counter zeta/c") {
		t.Fatalf("dump not sorted by name:\n%s", a.String())
	}
}

func TestTraceRing(t *testing.T) {
	tr := NewTrace(3)
	for i := 0; i < 5; i++ {
		tr.Record(Event{At: sim.Time(i), Name: "e", Value: int64(i)})
	}
	ev := tr.Events()
	if len(ev) != 3 || tr.Dropped() != 2 {
		t.Fatalf("ring kept %d dropped %d, want 3/2", len(ev), tr.Dropped())
	}
	for i, e := range ev {
		if e.Value != int64(i+2) {
			t.Fatalf("ring order wrong: %v", ev)
		}
	}
}

func TestUnifiedEventsRoundtrip(t *testing.T) {
	events := []Event{
		{At: 100, Kind: KindPower, Comp: "power", Name: "psu", Value: 1},
		{At: 50, Dur: 200, Kind: KindSpan, Comp: "runner", Name: "fault cycle", Value: 3},
		{At: 300, Kind: KindQueueDepth, Comp: "blockdev", Name: "inflight", Value: 7},
	}
	blk := []blktrace.Event{
		{At: 10, Act: blktrace.ActQueue, Op: blktrace.OpWrite, Req: 1, Sub: -1, LPN: 42, Pages: 8},
		{At: 220, Act: blktrace.ActComplete, Op: blktrace.OpWrite, Req: 1, Sub: 0, LPN: 42, Pages: 8},
	}
	var buf bytes.Buffer
	if err := WriteUnifiedEvents(&buf, events, blk); err != nil {
		t.Fatal(err)
	}
	gotEvents, gotBlk, err := ReadUnifiedEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	wantEvents := append([]Event(nil), events...)
	SortEvents(wantEvents)
	if !reflect.DeepEqual(gotEvents, wantEvents) {
		t.Fatalf("obs events roundtrip:\n got %+v\nwant %+v", gotEvents, wantEvents)
	}
	if !reflect.DeepEqual(gotBlk, blk) {
		t.Fatalf("blk events roundtrip:\n got %+v\nwant %+v", gotBlk, blk)
	}
}

func TestUnifiedEventsRejectsLegacy(t *testing.T) {
	// The pre-v2 blkparse-like format must error cleanly, not misparse.
	var legacy bytes.Buffer
	if err := blktrace.WriteEvents(&legacy, []blktrace.Event{
		{At: 10, Act: blktrace.ActQueue, Op: blktrace.OpRead, Req: 1, Sub: -1, LPN: 1, Pages: 1},
	}); err != nil {
		t.Fatal(err)
	}
	_, _, err := ReadUnifiedEvents(bytes.NewReader(legacy.Bytes()))
	if !errors.Is(err, ErrLegacyFormat) {
		t.Fatalf("legacy input: got %v, want ErrLegacyFormat", err)
	}
	_, _, err = ReadUnifiedEvents(strings.NewReader(""))
	if !errors.Is(err, ErrLegacyFormat) {
		t.Fatalf("empty input: got %v, want ErrLegacyFormat", err)
	}
	_, _, err = ReadUnifiedEvents(strings.NewReader("# powerfail-events v99\n"))
	if err == nil || errors.Is(err, ErrLegacyFormat) {
		t.Fatalf("future version: got %v, want version error", err)
	}
}

func TestChromeTraceWriteValidate(t *testing.T) {
	events := []Event{
		{At: 1000, Kind: KindPower, Comp: "power", Name: "rack0", Value: 1},
		{At: 2000, Dur: 500, Kind: KindTxn, Comp: "txn", Name: "commit", Value: 17},
		{At: 2500, Kind: KindQueueDepth, Comp: "blockdev", Name: "inflight", Value: 3},
		{At: 3000, Kind: KindState, Comp: "fleet", Name: "g0/bay1 healthy>degraded"},
	}
	blk := []blktrace.Event{
		{At: 100, Act: blktrace.ActQueue, Op: blktrace.OpWrite, Req: 9, Sub: -1, LPN: 5, Pages: 4},
		{At: 100, Act: blktrace.ActSplit, Op: blktrace.OpWrite, Req: 9, Sub: 0, LPN: 5, Pages: 4},
		{At: 150, Act: blktrace.ActDispatch, Op: blktrace.OpWrite, Req: 9, Sub: 0, LPN: 5, Pages: 4},
		{At: 900, Act: blktrace.ActComplete, Op: blktrace.OpWrite, Req: 9, Sub: 0, LPN: 5, Pages: 4},
	}
	var a, b bytes.Buffer
	procs := []Process{{Name: "item-0", Events: events, Blk: blk}}
	if err := WriteChromeTrace(&a, procs); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b, procs); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("chrome export is not deterministic")
	}
	n, err := ValidateChromeTrace(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatalf("self-validation failed: %v\n%s", err, a.String())
	}
	// process_name + 5 thread_names (4 comps + blk) + 4 obs events + 1 blk span.
	if n != 11 {
		t.Fatalf("validated %d events, want 11:\n%s", n, a.String())
	}
	if !strings.Contains(a.String(), `"name":"W 4p","ph":"X"`) {
		t.Fatalf("complete block IO should render as a span:\n%s", a.String())
	}
	if _, err := ValidateChromeTrace(strings.NewReader(`{"foo":1}`)); err == nil {
		t.Fatal("missing traceEvents should fail validation")
	}
	if _, err := ValidateChromeTrace(strings.NewReader(`{"traceEvents":[{"ph":"Z","name":"x","ts":0,"pid":1}]}`)); err == nil {
		t.Fatal("unknown phase should fail validation")
	}
}

func TestTimelineOutput(t *testing.T) {
	var buf bytes.Buffer
	err := WriteTimeline(&buf, []Event{
		{At: sim.Time(1500), Kind: KindPower, Comp: "power", Name: "psu", Value: 1},
		{At: sim.Time(2000), Dur: 300, Kind: KindSpan, Comp: "runner", Name: "cycle", Value: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "power") || !strings.Contains(out, "dur=300ns") {
		t.Fatalf("unexpected timeline:\n%s", out)
	}
}
