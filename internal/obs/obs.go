// Package obs is the deterministic observability layer threaded through
// the simulation stack: a sim-time metrics registry (counters, gauges,
// log-bucketed latency histograms), a bounded ring buffer of typed trace
// events, and exporters (text timeline, a unified obs/blktrace event
// format, Chrome trace-event JSON viewable in Perfetto).
//
// Two properties are load-bearing:
//
//   - Zero overhead when disabled. Every handle (Counter, Gauge,
//     Histogram) is nil-safe: methods on a nil receiver return
//     immediately, and a zero-value Scope hands out nil handles. Code can
//     therefore instrument unconditionally; with observability off the
//     instrumented path costs one nil check.
//
//   - Determinism. All metric and trace values are keyed to simulated
//     time and per-item state only — never wall-clock time, map
//     iteration order, or goroutine interleaving — so two runs of the
//     same seed produce byte-identical dumps at any campaign
//     parallelism. Wall-clock telemetry (events/s, per-item duration)
//     lives outside this package's dumps, in campaign-level fields that
//     are excluded from serialized reports.
package obs

import "powerfail/internal/sim"

// DefaultTraceCap bounds the trace ring buffer when Config.TraceCap is
// left zero. Old events are dropped FIFO past the cap (deterministically:
// the drop point depends only on the event sequence, not on timing).
const DefaultTraceCap = 1 << 16

// Config selects which observability features a run records. The zero
// value (and a nil *Config) disables everything; reports produced with
// observability disabled are byte-identical to reports from builds that
// predate this package.
type Config struct {
	// Metrics enables the sim-time registry: counters, gauges and
	// latency histograms keyed by component/metric name.
	Metrics bool
	// Trace enables the typed event ring buffer (power cuts/restores,
	// rebuild state transitions, txn lifecycle, queue-depth samples,
	// block-IO spans).
	Trace bool
	// TraceCap bounds the ring buffer; 0 means DefaultTraceCap.
	TraceCap int
}

// Enabled reports whether any feature is on. Nil-safe.
func (c *Config) Enabled() bool { return c != nil && (c.Metrics || c.Trace) }

// Set is one run's observability state: a registry and a trace ring,
// either of which may be nil depending on Config. A nil *Set is the
// disabled state and is safe to use everywhere.
type Set struct {
	reg *Registry
	tr  *Trace
}

// NewSet builds a Set for cfg, or nil when cfg enables nothing.
func NewSet(cfg Config) *Set {
	if !cfg.Enabled() {
		return nil
	}
	s := &Set{}
	if cfg.Metrics {
		s.reg = NewRegistry()
	}
	if cfg.Trace {
		cap := cfg.TraceCap
		if cap <= 0 {
			cap = DefaultTraceCap
		}
		s.tr = NewTrace(cap)
	}
	return s
}

// Scope returns a handle-factory bound to one component name. Nil-safe:
// a nil Set yields a zero Scope whose handles are all nil.
func (s *Set) Scope(component string) Scope {
	if s == nil {
		return Scope{}
	}
	return Scope{set: s, comp: component}
}

// Registry returns the metrics registry, or nil when metrics are off.
func (s *Set) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Trace returns the event ring, or nil when tracing is off.
func (s *Set) Trace() *Trace {
	if s == nil {
		return nil
	}
	return s.tr
}

// TraceEvents returns the ring contents in record order. Nil-safe.
func (s *Set) TraceEvents() []Event {
	if s == nil || s.tr == nil {
		return nil
	}
	return s.tr.Events()
}

// Summary snapshots the registry (sorted, deterministic) together with
// trace accounting. Nil-safe; returns nil when the Set is nil.
func (s *Set) Summary() *Summary {
	if s == nil {
		return nil
	}
	sum := &Summary{}
	if s.reg != nil {
		s.reg.fill(sum)
	}
	if s.tr != nil {
		sum.TraceEvents = s.tr.Len()
		sum.TraceDropped = s.tr.Dropped()
	}
	return sum
}

// Scope is a Set bound to one component name; metric names it hands out
// are "component/metric". The zero Scope is disabled: it returns nil
// handles and drops events.
type Scope struct {
	set  *Set
	comp string
}

// Enabled reports whether the scope is bound to a live Set.
func (sc Scope) Enabled() bool { return sc.set != nil }

// TracingOn reports whether trace events recorded through this scope are
// kept. Guard expensive event construction (fmt.Sprintf state names)
// behind this.
func (sc Scope) TracingOn() bool { return sc.set != nil && sc.set.tr != nil }

// Component returns the component name ("" for the zero Scope).
func (sc Scope) Component() string { return sc.comp }

// Sub returns a child scope named "component/name".
func (sc Scope) Sub(name string) Scope {
	if sc.set == nil {
		return Scope{}
	}
	return Scope{set: sc.set, comp: sc.comp + "/" + name}
}

// Counter returns the named counter, or nil when metrics are off.
func (sc Scope) Counter(name string) *Counter {
	if sc.set == nil || sc.set.reg == nil {
		return nil
	}
	return sc.set.reg.Counter(sc.comp + "/" + name)
}

// Gauge returns the named gauge, or nil when metrics are off.
func (sc Scope) Gauge(name string) *Gauge {
	if sc.set == nil || sc.set.reg == nil {
		return nil
	}
	return sc.set.reg.Gauge(sc.comp + "/" + name)
}

// Histogram returns the named histogram, or nil when metrics are off.
func (sc Scope) Histogram(name string) *Histogram {
	if sc.set == nil || sc.set.reg == nil {
		return nil
	}
	return sc.set.reg.Histogram(sc.comp + "/" + name)
}

// Instant records a zero-duration event at sim time at.
func (sc Scope) Instant(at sim.Time, kind Kind, name string, value int64) {
	if sc.set == nil || sc.set.tr == nil {
		return
	}
	sc.set.tr.Record(Event{At: at, Kind: kind, Comp: sc.comp, Name: name, Value: value})
}

// Span records an event covering [at, at+dur).
func (sc Scope) Span(at sim.Time, dur sim.Duration, kind Kind, name string, value int64) {
	if sc.set == nil || sc.set.tr == nil {
		return
	}
	sc.set.tr.Record(Event{At: at, Dur: dur, Kind: kind, Comp: sc.comp, Name: name, Value: value})
}
