package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"

	"powerfail/internal/sim"
)

// Counter is a monotonically increasing sim-time metric. All methods are
// nil-safe no-ops so instrumented code never branches on "is obs on".
type Counter struct{ v int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v += n
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge tracks a last-set value and the maximum ever set.
type Gauge struct {
	v, max int64
	set    bool
}

// Set records the gauge's current value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	if !g.set || v > g.max {
		g.max = v
	}
	g.set = true
	g.v = v
}

// Value returns the last-set value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Max returns the maximum value ever set (0 for nil).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max
}

// Histogram bucket layout: values 0..7 get exact buckets; past that each
// power-of-two octave is split into 4 logarithmic sub-buckets (relative
// bucket width 12.5–25%), which is plenty for p50/p95/p99 on latency
// data while keeping the bucket count fixed and merges trivial.
const (
	histExact   = 8 // values < histExact get exact unit buckets
	histSubBits = 2 // sub-buckets per octave = 1<<histSubBits
	numBuckets  = histExact + (64-histSubBits-1)*(1<<histSubBits)
)

func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < histExact {
		return int(u)
	}
	o := bits.Len64(u) // >= 4
	sub := (u >> (o - histSubBits - 1)) & (1<<histSubBits - 1)
	return histExact + (o-4)<<histSubBits + int(sub)
}

// bucketUpper returns the largest value mapping to bucket i (the
// representative used for quantile estimates, biased conservatively
// upward).
func bucketUpper(i int) int64 {
	if i < histExact {
		return int64(i)
	}
	i -= histExact
	o := i>>histSubBits + 4
	sub := uint64(i & (1<<histSubBits - 1))
	if o >= 64 {
		return math.MaxInt64
	}
	lo := uint64(1) << (o - 1)
	width := uint64(1) << (o - histSubBits - 1)
	upper := lo + (sub+1)*width - 1
	if upper > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(upper)
}

// Histogram is a log-bucketed distribution of int64 samples (typically
// simulated-time durations in nanoseconds). Min and max are exact;
// quantiles come from the bucket upper bounds and are therefore monotone
// in q by construction.
type Histogram struct {
	counts [numBuckets]uint64
	count  uint64
	sum    int64
	min    int64
	max    int64
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.counts[bucketOf(v)]++
}

// ObserveDuration records a simulated duration sample.
func (h *Histogram) ObserveDuration(d sim.Duration) { h.Observe(int64(d)) }

// Count returns the number of samples (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Quantile returns an upper bound on the q-th quantile (0 <= q <= 1),
// clamped to the exact observed max. Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil || h.count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum uint64
	for i, n := range h.counts {
		cum += n
		if cum >= rank {
			u := bucketUpper(i)
			if u > h.max {
				u = h.max
			}
			if u < h.min {
				u = h.min
			}
			return u
		}
	}
	return h.max
}

// Merge adds o's samples into h. Merging per-shard histograms is exact:
// bucket counts, sum, count, min and max all combine losslessly, so a
// merge of N shards equals one histogram fed every sample.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil || o.count == 0 {
		return
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.count == 0 || o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
	for i, n := range o.counts {
		h.counts[i] += n
	}
}

// Snapshot freezes the histogram into its serializable form.
func (h *Histogram) Snapshot(name string) HistogramSnapshot {
	s := HistogramSnapshot{Name: name}
	if h == nil || h.count == 0 {
		return s
	}
	s.Count = h.count
	s.Sum = h.sum
	s.Min = h.min
	s.Max = h.max
	s.P50 = h.Quantile(0.50)
	s.P95 = h.Quantile(0.95)
	s.P99 = h.Quantile(0.99)
	for i, n := range h.counts {
		if n != 0 {
			s.Buckets = append(s.Buckets, Bucket{Index: i, Count: n})
		}
	}
	return s
}

// Bucket is one occupied histogram bucket: a fixed global index (the
// layout is the same for every histogram, so snapshots merge by index)
// and its sample count.
type Bucket struct {
	Index int    `json:"i"`
	Count uint64 `json:"n"`
}

// Upper returns the largest sample value mapping to this bucket.
func (b Bucket) Upper() int64 { return bucketUpper(b.Index) }

// HistogramSnapshot is a frozen histogram: exact count/sum/min/max,
// quantile upper bounds, and the occupied buckets.
type HistogramSnapshot struct {
	Name    string   `json:"name"`
	Count   uint64   `json:"count"`
	Sum     int64    `json:"sum"`
	Min     int64    `json:"min"`
	P50     int64    `json:"p50"`
	P95     int64    `json:"p95"`
	P99     int64    `json:"p99"`
	Max     int64    `json:"max"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Histogram reconstructs a live histogram from the snapshot. Quantiles
// of the reconstruction match the snapshot's.
func (s HistogramSnapshot) Histogram() *Histogram {
	h := &Histogram{count: s.Count, sum: s.Sum, min: s.Min, max: s.Max}
	for _, b := range s.Buckets {
		if b.Index >= 0 && b.Index < numBuckets {
			h.counts[b.Index] = b.Count
		}
	}
	return h
}

// CounterSnapshot is one frozen counter.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnapshot is one frozen gauge (last value and max).
type GaugeSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
	Max   int64  `json:"max"`
}

// Summary is the serializable registry snapshot that Report carries when
// observability is enabled. All slices are sorted by name, so equal
// registries summarize to equal bytes.
type Summary struct {
	Counters     []CounterSnapshot   `json:"counters,omitempty"`
	Gauges       []GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms   []HistogramSnapshot `json:"histograms,omitempty"`
	TraceEvents  int                 `json:"trace_events,omitempty"`
	TraceDropped uint64              `json:"trace_dropped,omitempty"`
}

// Histogram returns the named snapshot, or a zero snapshot if absent.
func (s *Summary) Histogram(name string) HistogramSnapshot {
	if s == nil {
		return HistogramSnapshot{}
	}
	for _, h := range s.Histograms {
		if h.Name == name {
			return h
		}
	}
	return HistogramSnapshot{}
}

// Counter returns the named counter value, or 0 if absent.
func (s *Summary) Counter(name string) int64 {
	if s == nil {
		return 0
	}
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// MergeSummaries combines per-item summaries (e.g. every campaign item
// of one figure) into one: counters add, gauges keep the max, histograms
// merge bucket-exactly. Input order does not affect the result.
func MergeSummaries(parts []*Summary) *Summary {
	counters := map[string]int64{}
	gauges := map[string]GaugeSnapshot{}
	hists := map[string]*Histogram{}
	out := &Summary{}
	any := false
	for _, p := range parts {
		if p == nil {
			continue
		}
		any = true
		for _, c := range p.Counters {
			counters[c.Name] += c.Value
		}
		for _, g := range p.Gauges {
			cur, ok := gauges[g.Name]
			if !ok || g.Max > cur.Max {
				cur.Max = g.Max
			}
			cur.Name = g.Name
			cur.Value += g.Value
			gauges[g.Name] = cur
		}
		for _, h := range p.Histograms {
			if hists[h.Name] == nil {
				hists[h.Name] = &Histogram{}
			}
			hists[h.Name].Merge(h.Histogram())
		}
		out.TraceEvents += p.TraceEvents
		out.TraceDropped += p.TraceDropped
	}
	if !any {
		return nil
	}
	for name, v := range counters {
		out.Counters = append(out.Counters, CounterSnapshot{Name: name, Value: v})
	}
	for _, g := range gauges {
		out.Gauges = append(out.Gauges, g)
	}
	for name, h := range hists {
		out.Histograms = append(out.Histograms, h.Snapshot(name))
	}
	sort.Slice(out.Counters, func(i, j int) bool { return out.Counters[i].Name < out.Counters[j].Name })
	sort.Slice(out.Gauges, func(i, j int) bool { return out.Gauges[i].Name < out.Gauges[j].Name })
	sort.Slice(out.Histograms, func(i, j int) bool { return out.Histograms[i].Name < out.Histograms[j].Name })
	return out
}

// Dump writes the summary as a deterministic text metric dump: one line
// per metric, sorted by kind then name.
func (s *Summary) Dump(w io.Writer) error {
	if s == nil {
		return nil
	}
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "counter %s %d\n", c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if _, err := fmt.Fprintf(w, "gauge %s %d max=%d\n", g.Name, g.Value, g.Max); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if _, err := fmt.Fprintf(w, "hist %s count=%d sum=%d min=%d p50=%d p95=%d p99=%d max=%d\n",
			h.Name, h.Count, h.Sum, h.Min, h.P50, h.P95, h.P99, h.Max); err != nil {
			return err
		}
	}
	if s.TraceEvents != 0 || s.TraceDropped != 0 {
		if _, err := fmt.Fprintf(w, "trace events=%d dropped=%d\n", s.TraceEvents, s.TraceDropped); err != nil {
			return err
		}
	}
	return nil
}

// Registry holds one run's metrics. It is not goroutine-safe: like the
// kernel it serves, a registry belongs to exactly one single-threaded
// simulation. Handles for the same name are shared, so two queues
// observing into one scope feed one histogram.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. Nil-safe.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
// Nil-safe.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// fill snapshots the registry into sum, sorted by name.
func (r *Registry) fill(sum *Summary) {
	for name, c := range r.counters {
		sum.Counters = append(sum.Counters, CounterSnapshot{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		sum.Gauges = append(sum.Gauges, GaugeSnapshot{Name: name, Value: g.Value(), Max: g.Max()})
	}
	for name, h := range r.hists {
		sum.Histograms = append(sum.Histograms, h.Snapshot(name))
	}
	sort.Slice(sum.Counters, func(i, j int) bool { return sum.Counters[i].Name < sum.Counters[j].Name })
	sort.Slice(sum.Gauges, func(i, j int) bool { return sum.Gauges[i].Name < sum.Gauges[j].Name })
	sort.Slice(sum.Histograms, func(i, j int) bool { return sum.Histograms[i].Name < sum.Histograms[j].Name })
}
