package addr

import (
	"testing"
	"testing/quick"
)

func TestPagesFor(t *testing.T) {
	cases := []struct {
		bytes int64
		want  int
	}{
		{0, 0}, {-5, 0}, {1, 1}, {4095, 1}, {4096, 1}, {4097, 2},
		{1 << 20, 256}, {1<<20 + 1, 257},
	}
	for _, c := range cases {
		if got := PagesFor(c.bytes); got != c.want {
			t.Errorf("PagesFor(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestByteOffsetRoundTrip(t *testing.T) {
	for _, l := range []LPN{0, 1, 7, 1 << 20, 1 << 40} {
		if LPNOf(l.ByteOffset()) != l {
			t.Errorf("round trip failed for %v", l)
		}
	}
}

func TestAlignment(t *testing.T) {
	if !Aligned(0) || !Aligned(4096) || Aligned(1) || Aligned(4095) {
		t.Fatal("Aligned wrong")
	}
	if AlignDown(4097) != 4096 || AlignDown(4096) != 4096 {
		t.Fatal("AlignDown wrong")
	}
	if AlignUp(4097) != 8192 || AlignUp(4096) != 4096 {
		t.Fatal("AlignUp wrong")
	}
}

func TestQuickAlignInvariants(t *testing.T) {
	f := func(raw uint32) bool {
		off := int64(raw)
		d, u := AlignDown(off), AlignUp(off)
		return d <= off && off <= u && Aligned(d) && Aligned(u) && u-d < PageBytes*2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringers(t *testing.T) {
	if LPN(5).String() != "lpn:5" || PPN(9).String() != "ppn:9" {
		t.Fatal("stringers wrong")
	}
}

func TestInvalidPPN(t *testing.T) {
	if InvalidPPN >= 0 {
		t.Fatal("InvalidPPN must be negative")
	}
}
