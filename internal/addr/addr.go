// Package addr defines the page-granular addressing units shared by the
// whole storage stack: logical page numbers (LPN) as seen by the host block
// layer, and physical page numbers (PPN) inside the NAND flash array. Pages
// are 4 KiB, the paper's smallest request size and the mapping granularity
// of the simulated FTL.
package addr

import "fmt"

const (
	// PageShift is log2 of the page size.
	PageShift = 12
	// PageBytes is the size of one logical/physical page.
	PageBytes = 1 << PageShift
)

// LPN is a logical page number: the host-visible address space divided into
// 4 KiB pages.
type LPN int64

// PPN is a physical page number inside the flash array.
type PPN int64

// InvalidPPN marks an unmapped logical page.
const InvalidPPN PPN = -1

// ByteOffset returns the byte offset of the first byte of the page.
func (l LPN) ByteOffset() int64 { return int64(l) << PageShift }

// String implements fmt.Stringer.
func (l LPN) String() string { return fmt.Sprintf("lpn:%d", int64(l)) }

// String implements fmt.Stringer.
func (p PPN) String() string { return fmt.Sprintf("ppn:%d", int64(p)) }

// PagesFor returns the number of pages needed to hold n bytes (ceiling).
func PagesFor(n int64) int {
	if n <= 0 {
		return 0
	}
	return int((n + PageBytes - 1) >> PageShift)
}

// LPNOf returns the logical page containing byte offset off (floor).
func LPNOf(off int64) LPN { return LPN(off >> PageShift) }

// Aligned reports whether off is page-aligned.
func Aligned(off int64) bool { return off&(PageBytes-1) == 0 }

// AlignDown rounds off down to a page boundary.
func AlignDown(off int64) int64 { return off &^ (PageBytes - 1) }

// AlignUp rounds off up to a page boundary.
func AlignUp(off int64) int64 { return (off + PageBytes - 1) &^ (PageBytes - 1) }
