package ssd

import (
	"fmt"

	"powerfail/internal/addr"
	"powerfail/internal/content"
	"powerfail/internal/flash"
	"powerfail/internal/ftl"
	"powerfail/internal/sim"
)

// itemKind distinguishes the work units a flash channel executes.
type itemKind int

const (
	itemProgram itemKind = iota // host data program (cache flush or write-through)
	itemMove                    // garbage-collection migration program
	itemMeta                    // journal commit metadata program
	itemRead                    // page reads
	itemErase                   // block erase
)

// pageOp is one page worth of channel work.
type pageOp struct {
	ppn    addr.PPN
	fp     content.Fingerprint
	lpn    addr.LPN
	seq    uint64     // cache sequence to retire (0 = no cache entry)
	ticket ftl.Ticket // program/move reservation
	from   addr.PPN   // move source
	rdIdx  int        // read destination index
	rdDst  []content.Fingerprint
	cmd    *command // read error propagation
}

// chItem is a batch executed back-to-back on one channel. A power cut
// lands between or inside its per-page slots; interruption effects are
// computed from elapsed time.
type chItem struct {
	kind    itemKind
	ops     []pageOp
	perPage sim.Duration
	block   int // erase target
	onDone  func()
	startAt sim.Time
}

func (it *chItem) duration() sim.Duration {
	if it.kind == itemErase {
		return it.perPage
	}
	return it.perPage * sim.Duration(len(it.ops))
}

// channel serialises items FIFO, one at a time.
type channel struct {
	idx   int
	queue []*chItem
	cur   *chItem
	timer sim.Timer
}

func must(err error) {
	if err != nil {
		panic(fmt.Sprintf("ssd: invariant violated: %v", err))
	}
}

func (d *Device) channelOf(p addr.PPN) int {
	return d.chip.Geometry().BlockOf(p) % len(d.channels)
}

func (d *Device) enqueue(ch int, it *chItem) {
	c := d.channels[ch]
	c.queue = append(c.queue, it)
	d.kick(c)
}

func (d *Device) kick(c *channel) {
	if c.cur != nil || len(c.queue) == 0 {
		return
	}
	if d.state == StateDead || d.state == StateRecovering {
		return
	}
	it := c.queue[0]
	c.queue = c.queue[1:]
	c.cur = it
	it.startAt = d.k.Now()
	c.timer = d.k.After(it.duration(), func() { d.itemDone(c) })
}

func (d *Device) itemDone(c *channel) {
	it := c.cur
	c.cur = nil
	c.timer = sim.Timer{}
	d.applyComplete(it)
	if it.onDone != nil {
		it.onDone()
	}
	d.kick(c)
}

// applyComplete commits the effects of a fully executed item.
func (d *Device) applyComplete(it *chItem) {
	if it.kind == itemErase {
		must(d.chip.Erase(it.block))
		return
	}
	for i := range it.ops {
		d.applyOp(&it.ops[i], it.kind)
	}
}

// applyOp commits one successfully finished page operation.
func (d *Device) applyOp(op *pageOp, kind itemKind) {
	switch kind {
	case itemProgram:
		must(d.chip.Program(op.ppn, op.fp))
		d.ftlm.CompleteWrite(op.ticket, d.k.Now())
		if d.cache != nil && op.seq != 0 {
			d.cache.FlushDone(op.lpn, op.seq)
		}
		d.stats.PagesProgrammed++
	case itemMove:
		must(d.chip.Program(op.ppn, op.fp))
		d.ftlm.CompleteMove(op.ticket, op.from, d.k.Now())
		d.stats.PagesProgrammed++
	case itemRead:
		res, err := d.chip.Read(op.ppn)
		must(err)
		op.rdDst[op.rdIdx] = res.FP
		if res.Status == flash.ReadUncorrectable && d.prof.UncorrectableAsError &&
			op.cmd != nil && op.cmd.err == nil {
			op.cmd.err = ErrUncorrectable
		}
		d.stats.PagesRead++
	case itemMeta:
		// Durability happens in onDone via CommitJournal.
	}
}

// interruptChannels models the controller dying mid-operation: completed
// page slots of the running item are applied, the in-progress page becomes
// a partial program, and everything queued behind is abandoned.
func (d *Device) interruptChannels() {
	now := d.k.Now()
	for _, c := range d.channels {
		if c.timer.Pending() {
			c.timer.Stop()
			c.timer = sim.Timer{}
		}
		if it := c.cur; it != nil {
			c.cur = nil
			elapsed := now.Sub(it.startAt)
			d.applyInterrupted(it, elapsed)
		}
		for _, it := range c.queue {
			d.abandonItem(it)
		}
		c.queue = nil
	}
	d.metaInFlight = false
	d.gcActive = false
}

func (d *Device) applyInterrupted(it *chItem, elapsed sim.Duration) {
	if it.kind == itemErase {
		frac := float64(elapsed) / float64(it.perPage)
		must(d.chip.ErasePartial(it.block, frac))
		d.ftlm.GCAbort()
		d.stats.InterruptedErases++
		return
	}
	doneN := 0
	if it.perPage > 0 {
		doneN = int(elapsed / it.perPage)
	}
	if doneN > len(it.ops) {
		doneN = len(it.ops)
	}
	for i := 0; i < doneN; i++ {
		d.applyOp(&it.ops[i], it.kind)
	}
	if doneN >= len(it.ops) {
		return
	}
	rem := elapsed - sim.Duration(doneN)*it.perPage
	start := doneN
	if rem > 0 && (it.kind == itemProgram || it.kind == itemMove) {
		frac := float64(rem) / float64(it.perPage)
		op := &it.ops[doneN]
		must(d.chip.ProgramPartial(op.ppn, op.fp, frac))
		d.ftlm.AbortWrite(op.ticket)
		d.stats.InterruptedPrograms++
		start = doneN + 1
	}
	for i := start; i < len(it.ops); i++ {
		if it.kind == itemProgram || it.kind == itemMove {
			d.ftlm.AbortWrite(it.ops[i].ticket)
		}
	}
}

func (d *Device) abandonItem(it *chItem) {
	if it.kind == itemProgram || it.kind == itemMove {
		for i := range it.ops {
			d.ftlm.AbortWrite(it.ops[i].ticket)
		}
	}
}

// supercapComplete is the power-loss-protection path: the supercapacitor
// holds the controller up long enough to finish in-flight work, drain the
// cache, and commit the journal, so nothing volatile is lost.
func (d *Device) supercapComplete() {
	for _, c := range d.channels {
		if c.timer.Pending() {
			c.timer.Stop()
			c.timer = sim.Timer{}
		}
		if it := c.cur; it != nil {
			c.cur = nil
			d.applyComplete(it)
			if it.kind == itemErase {
				d.ftlm.GCFinish(it.block)
			}
		}
		for _, it := range c.queue {
			d.applyComplete(it)
			if it.kind == itemErase {
				d.ftlm.GCFinish(it.block)
			}
		}
		c.queue = nil
	}
	d.metaInFlight = false
	d.gcActive = false
	if d.cache != nil {
		for {
			ents := d.cache.PopDirty(1024)
			if len(ents) == 0 {
				break
			}
			for _, e := range ents {
				t, err := d.ftlm.BeginWrite(e.LPN)
				if err != nil {
					d.cache.FlushFailed(e.LPN, e.Seq)
					break
				}
				must(d.chip.Program(t.PPN, e.FP))
				d.ftlm.CompleteWrite(t, d.k.Now())
				d.cache.FlushDone(e.LPN, e.Seq)
			}
		}
	}
	d.ftlm.ForceCloseRun()
	d.ftlm.CommitJournal()
	d.stats.PanicFlushes++
}
