// Package ssd assembles the device-level model of the drives under test:
// NAND chip, FTL, and volatile write-back cache behind a SATA-like link,
// with the power-failure behaviour the paper investigates. The controller
// owns all timing: link transfers, channel-parallel program/read/erase
// bursts, background cache flushing, journal commits, garbage collection,
// brownout (host link loss at 4.5 V), controller death at a lower voltage,
// optional supercapacitor panic flush, and crash recovery at power-on.
package ssd

import (
	"fmt"

	"powerfail/internal/addr"
	"powerfail/internal/flash"
	"powerfail/internal/ftl"
	"powerfail/internal/sim"
)

// Profile describes one drive model, mirroring and extending the paper's
// Table I. Zero values for advanced fields are filled in by Normalize.
type Profile struct {
	// Identity (Table I columns).
	Name        string
	Vendor      string
	CapacityGB  int
	Interface   string
	ReleaseYear int
	Cell        flash.CellKind
	ECC         flash.ECCConfig
	HasCache    bool
	CacheMB     int
	// SuperCap marks a high-end drive with power-loss protection.
	SuperCap bool

	// Flash array.
	Channels         int
	Dies             int
	Planes           int
	PagesPerBlock    int
	OverprovisionPct int
	Timing           flash.Timing
	BaseBER          float64
	WearBERMult      float64
	EnduranceCycles  int

	// Interface timing.
	LinkBytesPerSec     float64
	CmdOverhead         sim.Duration
	ChanProgBytesPerSec float64

	// Power behaviour.
	BrownoutVolts float64 // host link drops below this rail voltage
	DieVolts      float64 // controller halts below this rail voltage
	LoadOhms      float64 // drive's equivalent load on the 5 V rail

	// Cache flush policy.
	DirtyCapPages   int          // write backpressure threshold
	FlushHighPages  int          // drain when this many pages queue
	FlushIdleAge    sim.Duration // drain entries older than this
	FlushTick       sim.Duration
	FlushBatchPages int

	// Mapping durability policy.
	JournalTick       sim.Duration
	JournalBatchPages int
	RunMaxPages       int
	RunStaleAfter     sim.Duration
	ScanWindowPages   int

	// Error reporting: when true, uncorrectable reads return an IO error;
	// when false (observed on consumer drives and assumed by the paper's
	// checksum methodology) the drive silently returns corrupted data.
	UncorrectableAsError bool

	// Recovery.
	RecoveryBase   sim.Duration
	LinkDownDetect sim.Duration
	FailFast       sim.Duration // latency of errors while unavailable
}

// Normalize fills zero-valued tuning fields with defaults derived from the
// identity fields. It returns a copy.
func (p Profile) Normalize() Profile {
	if p.Cell == 0 {
		p.Cell = flash.MLC
	}
	if p.Timing == (flash.Timing{}) {
		p.Timing = flash.TimingFor(p.Cell)
	}
	if p.ECC.CorrectPerKB == 0 {
		p.ECC = flash.ECCConfig{Scheme: "BCH", CorrectPerKB: 40}
	}
	if p.BaseBER == 0 {
		p.BaseBER = flash.DefaultBER(p.Cell)
	}
	if p.WearBERMult == 0 {
		p.WearBERMult = 4
	}
	if p.EnduranceCycles == 0 {
		p.EnduranceCycles = flash.DefaultEndurance(p.Cell)
	}
	if p.Channels == 0 {
		p.Channels = 8
	}
	if p.Dies == 0 {
		p.Dies = p.Channels
	}
	if p.Planes == 0 {
		p.Planes = 2
	}
	if p.PagesPerBlock == 0 {
		p.PagesPerBlock = 256
	}
	if p.OverprovisionPct == 0 {
		p.OverprovisionPct = 9
	}
	if p.LinkBytesPerSec == 0 {
		p.LinkBytesPerSec = 550e6 // SATA 6 Gb/s payload rate
	}
	if p.CmdOverhead == 0 {
		p.CmdOverhead = 30 * sim.Microsecond
	}
	if p.ChanProgBytesPerSec == 0 {
		p.ChanProgBytesPerSec = 50e6
	}
	if p.BrownoutVolts == 0 {
		p.BrownoutVolts = 4.5
	}
	if p.DieVolts == 0 {
		// Consumer controllers hold themselves in reset once the rail
		// sags below the SATA tolerance, only a whisker under the host
		// brownout point; there is no long grace window for flushing.
		// The ~1 ms gap between link loss and controller reset is what
		// leaves programs interrupted mid-ISPP.
		p.DieVolts = 4.49
	}
	if p.LoadOhms == 0 {
		p.LoadOhms = 60.5
	}
	if p.CacheMB == 0 && p.HasCache {
		p.CacheMB = 32
	}
	if p.DirtyCapPages == 0 {
		p.DirtyCapPages = 512
	}
	if p.FlushHighPages == 0 {
		p.FlushHighPages = 128
	}
	if p.FlushIdleAge == 0 {
		p.FlushIdleAge = 650 * sim.Millisecond
	}
	if p.FlushTick == 0 {
		p.FlushTick = 10 * sim.Millisecond
	}
	if p.FlushBatchPages == 0 {
		p.FlushBatchPages = 64
	}
	if p.JournalTick == 0 {
		p.JournalTick = 10 * sim.Millisecond
	}
	if p.JournalBatchPages == 0 {
		p.JournalBatchPages = 256
	}
	if p.RunMaxPages == 0 {
		p.RunMaxPages = 384
	}
	if p.RunStaleAfter == 0 {
		p.RunStaleAfter = 250 * sim.Millisecond
	}
	if p.ScanWindowPages == 0 {
		p.ScanWindowPages = 64
	}
	if p.RecoveryBase == 0 {
		p.RecoveryBase = 50 * sim.Millisecond
	}
	if p.LinkDownDetect == 0 {
		p.LinkDownDetect = 2 * sim.Millisecond
	}
	if p.FailFast == 0 {
		p.FailFast = 500 * sim.Microsecond
	}
	return p
}

// Validate checks a normalized profile.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("ssd: profile needs a name")
	}
	if p.CapacityGB <= 0 {
		return fmt.Errorf("ssd: profile %s: capacity must be positive", p.Name)
	}
	if !p.Cell.Valid() {
		return fmt.Errorf("ssd: profile %s: bad cell kind", p.Name)
	}
	if p.Channels <= 0 || p.Dies <= 0 || p.Planes <= 0 || p.PagesPerBlock <= 0 {
		return fmt.Errorf("ssd: profile %s: bad array dimensions", p.Name)
	}
	if p.BrownoutVolts <= p.DieVolts {
		return fmt.Errorf("ssd: profile %s: BrownoutVolts must exceed DieVolts", p.Name)
	}
	if p.HasCache && p.CacheMB <= 0 {
		return fmt.Errorf("ssd: profile %s: cache enabled but CacheMB=0", p.Name)
	}
	return nil
}

// UserPages returns the host-visible capacity in 4 KiB pages.
func (p Profile) UserPages() int64 {
	return int64(p.CapacityGB) << 30 >> addr.PageShift
}

// Geometry derives the flash array geometry for the profile.
func (p Profile) Geometry() flash.Geometry {
	return flash.GeometryForCapacity(int64(p.CapacityGB)<<30, p.OverprovisionPct,
		p.Dies, p.Planes, p.PagesPerBlock)
}

// ChipConfig derives the NAND chip configuration.
func (p Profile) ChipConfig() flash.Config {
	return flash.Config{
		Geometry:        p.Geometry(),
		Cell:            p.Cell,
		Timing:          p.Timing,
		ECC:             p.ECC,
		BaseBER:         p.BaseBER,
		WearBERMult:     p.WearBERMult,
		EnduranceCycles: p.EnduranceCycles,
	}
}

// FTLConfig derives the translation-layer configuration.
func (p Profile) FTLConfig() ftl.Config {
	cfg := ftl.DefaultConfig(p.UserPages(), p.Channels)
	cfg.JournalBatchPages = p.JournalBatchPages
	cfg.RunMaxPages = p.RunMaxPages
	cfg.RunStaleAfter = p.RunStaleAfter
	cfg.ScanWindowPages = p.ScanWindowPages
	return cfg
}

// CachePages returns the cache capacity in pages (0 when disabled).
func (p Profile) CachePages() int {
	if !p.HasCache {
		return 0
	}
	return p.CacheMB << 20 >> addr.PageShift
}

// WithCacheDisabled returns a copy of the profile with the internal
// write-back cache turned off (the paper's disabled-cache experiments).
func (p Profile) WithCacheDisabled() Profile {
	p.HasCache = false
	p.CacheMB = 0
	p.Name = p.Name + "-nocache"
	return p
}

// WithSuperCap returns a copy of the profile with power-loss protection.
func (p Profile) WithSuperCap() Profile {
	p.SuperCap = true
	p.Name = p.Name + "-plp"
	return p
}

// String implements fmt.Stringer with a Table I style row.
func (p Profile) String() string {
	cache := "No"
	if p.HasCache {
		cache = fmt.Sprintf("Yes(%dMB)", p.CacheMB)
	}
	year := "NA"
	if p.ReleaseYear > 0 {
		year = fmt.Sprintf("%d", p.ReleaseYear)
	}
	return fmt.Sprintf("%s %dGB %s cache=%s ecc=%s(%d/KB) cell=%s year=%s",
		p.Name, p.CapacityGB, p.Interface, cache, p.ECC.Scheme, p.ECC.CorrectPerKB, p.Cell, year)
}

// ProfileA models SSD "A" of Table I: 256 GB SATA MLC, internal cache and
// BCH ECC, released 2013.
func ProfileA() Profile {
	return Profile{
		Name: "A", Vendor: "vendor-a", CapacityGB: 256, Interface: "SATA",
		ReleaseYear: 2013, Cell: flash.MLC,
		ECC:      flash.ECCConfig{Scheme: "BCH", CorrectPerKB: 40},
		HasCache: true, CacheMB: 32,
	}.Normalize()
}

// ProfileB models SSD "B": 120 GB SATA TLC with LDPC ECC, released 2015.
func ProfileB() Profile {
	return Profile{
		Name: "B", Vendor: "vendor-b", CapacityGB: 120, Interface: "SATA",
		ReleaseYear: 2015, Cell: flash.TLC,
		ECC:      flash.ECCConfig{Scheme: "LDPC", CorrectPerKB: 100},
		HasCache: true, CacheMB: 16,
		Channels: 4,
	}.Normalize()
}

// ProfileC models SSD "C": 120 GB SATA MLC with cache and BCH ECC,
// release year not published.
func ProfileC() Profile {
	return Profile{
		Name: "C", Vendor: "vendor-c", CapacityGB: 120, Interface: "SATA",
		Cell:     flash.MLC,
		ECC:      flash.ECCConfig{Scheme: "BCH", CorrectPerKB: 40},
		HasCache: true, CacheMB: 16,
		Channels: 4,
	}.Normalize()
}

// ProfileQ models a dense budget drive beyond the paper's rig: 512 GB
// SATA QLC with a large volatile cache, slow channel programs, and LDPC
// ECC working against a high raw bit error rate. In a heterogeneous
// array it is the weakest member: more dirty pages die in its cache on a
// cut, and its interrupted programs corrupt more paired pages.
func ProfileQ() Profile {
	return Profile{
		Name: "Q", Vendor: "vendor-q", CapacityGB: 512, Interface: "SATA",
		ReleaseYear: 2019, Cell: flash.QLC,
		ECC:      flash.ECCConfig{Scheme: "LDPC", CorrectPerKB: 100},
		HasCache: true, CacheMB: 64,
		Channels: 4, ChanProgBytesPerSec: 25e6,
		FlushIdleAge: 900 * sim.Millisecond,
	}.Normalize()
}

// Profiles returns the Table I drive models in order.
func Profiles() []Profile { return []Profile{ProfileA(), ProfileB(), ProfileC()} }

// ProfileByName finds a stock profile: the Table I drives plus the QLC
// extension "Q".
func ProfileByName(name string) (Profile, bool) {
	for _, p := range append(Profiles(), ProfileQ()) {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
