package ssd

import (
	"errors"
	"fmt"
	"os"

	"powerfail/internal/addr"
	"powerfail/internal/blockdev"
	"powerfail/internal/content"
	"powerfail/internal/dram"
	"powerfail/internal/flash"
	"powerfail/internal/ftl"
	"powerfail/internal/power"
	"powerfail/internal/sim"
)

// State is the device lifecycle state as seen across the power cycle.
type State int

// Device states. StateUnavailable means the host link dropped (rail below
// the brownout voltage) while the controller core still runs off the
// decaying rail; StateDead means the controller halted too.
const (
	StateReady State = iota
	StateUnavailable
	StateDead
	StateRecovering
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateReady:
		return "ready"
	case StateUnavailable:
		return "unavailable"
	case StateDead:
		return "dead"
	case StateRecovering:
		return "recovering"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Errors surfaced to the host.
var (
	ErrUnavailable   = errors.New("ssd: device unavailable")
	ErrUncorrectable = errors.New("ssd: uncorrectable read error")
	ErrNoSpace       = errors.New("ssd: no space")
)

// Stats counts device activity across the experiment.
type Stats struct {
	HostReads   int64
	HostWrites  int64
	HostFlushes int64
	HostErrors  int64

	PagesProgrammed int64
	PagesRead       int64
	PagesFlushed    int64
	CacheStalls     int64

	Brownouts           int64
	Deaths              int64
	Recoveries          int64
	PanicFlushes        int64
	InterruptedPrograms int64
	InterruptedErases   int64
	DirtyPagesLost      int64
	MappingsLost        int64
}

type command struct {
	op       blockdev.Op
	lpn      addr.LPN
	pages    int
	data     content.Data
	done     func(error, content.Data)
	result   []content.Fingerprint
	parts    int
	err      error
	finished bool
}

// Device is the SSD under test.
type Device struct {
	k    *sim.Kernel
	r    *sim.RNG
	prof Profile

	chip  *flash.Chip
	ftlm  *ftl.FTL
	cache *dram.Cache // nil when the internal cache is disabled

	state    State
	channels []*channel

	linkBusyUntil sim.Time
	outstanding   []*command
	flushWaiters  []*command

	flushTimer    sim.Timer
	journalTimer  sim.Timer
	recoveryTimer sim.Timer
	metaInFlight  bool
	gcActive      bool

	hasDirtySince  bool
	firstDirtyAt   sim.Time
	readyListeners []func()
	downListeners  []func()

	stats Stats
}

// New builds the device over a PSU rail and registers its voltage watches
// and electrical load. The device starts Ready (powered).
func New(k *sim.Kernel, r *sim.RNG, prof Profile, psu *power.PSU) (*Device, error) {
	prof = prof.Normalize()
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	chip, err := flash.New(prof.ChipConfig(), r.Fork("chip"))
	if err != nil {
		return nil, err
	}
	f, err := ftl.New(chip, prof.FTLConfig())
	if err != nil {
		return nil, err
	}
	var cache *dram.Cache
	if prof.HasCache {
		cache, err = dram.New(prof.CachePages())
		if err != nil {
			return nil, err
		}
	}
	d := &Device{
		k:     k,
		r:     r.Fork("device"),
		prof:  prof,
		chip:  chip,
		ftlm:  f,
		cache: cache,
		state: StateReady,
	}
	d.channels = make([]*channel, prof.Channels)
	for i := range d.channels {
		d.channels[i] = &channel{idx: i}
	}
	if psu != nil {
		psu.Connect("ssd-"+prof.Name, prof.LoadOhms)
		psu.NotifyBelow(prof.BrownoutVolts, d.onBrownout)
		psu.NotifyBelow(prof.DieVolts, d.onDie)
		psu.NotifyAbove(prof.BrownoutVolts+0.25, d.onPowerGood)
	}
	d.startJournalTick()
	return d, nil
}

// Profile returns the normalized drive profile.
func (d *Device) Profile() Profile { return d.prof }

// Name implements blockdev.Drive.
func (d *Device) Name() string { return d.prof.Name }

// UserPages implements blockdev.Drive.
func (d *Device) UserPages() int64 { return d.prof.UserPages() }

// Ready implements blockdev.Drive: the drive answers the host.
func (d *Device) Ready() bool { return d.state == StateReady }

// State returns the lifecycle state.
func (d *Device) State() State { return d.state }

// Stats returns a snapshot of the counters.
func (d *Device) Stats() Stats { return d.stats }

// Chip exposes the NAND model for tests and tools.
func (d *Device) Chip() *flash.Chip { return d.chip }

// FTL exposes the translation layer for tests and tools.
func (d *Device) FTL() *ftl.FTL { return d.ftlm }

// DirtyCachePages reports acknowledged-but-unflushed pages.
func (d *Device) DirtyCachePages() int {
	if d.cache == nil {
		return 0
	}
	return d.cache.DirtyPages()
}

// CacheStats exposes cache counters (zero value when disabled).
func (d *Device) CacheStats() dram.Stats {
	if d.cache == nil {
		return dram.Stats{}
	}
	return d.cache.Stats()
}

// NotifyReady registers fn to run every time the device transitions to
// Ready after a recovery.
func (d *Device) NotifyReady(fn func()) { d.readyListeners = append(d.readyListeners, fn) }

// NotifyDown registers fn to run every time the host link drops (rail
// below the brownout voltage).
func (d *Device) NotifyDown(fn func()) { d.downListeners = append(d.downListeners, fn) }

// perPageProg is the effective channel occupancy of one page program
// (multi-die pipelining folded into a bandwidth figure).
func (d *Device) perPageProg() sim.Duration {
	return sim.Duration(float64(addr.PageBytes) / d.prof.ChanProgBytesPerSec * 1e9)
}

// ErrOutOfRange reports an access beyond the drive's exported capacity.
var ErrOutOfRange = errors.New("ssd: address beyond device capacity")

// Submit implements blockdev.Device.
func (d *Device) Submit(op blockdev.Op, lpn addr.LPN, pages int, data content.Data, done func(error, content.Data)) {
	cmd := &command{op: op, lpn: lpn, pages: pages, data: data, done: done}
	if lpn < 0 || int64(lpn)+int64(pages) > d.prof.UserPages() {
		d.stats.HostErrors++
		d.k.After(d.prof.FailFast, func() { done(ErrOutOfRange, content.Data{}) })
		return
	}
	if d.state != StateReady {
		d.stats.HostErrors++
		d.k.After(d.prof.FailFast, func() { done(ErrUnavailable, content.Data{}) })
		return
	}
	d.outstanding = append(d.outstanding, cmd)
	switch op {
	case blockdev.OpWrite:
		d.startWrite(cmd)
	case blockdev.OpRead:
		d.startRead(cmd)
	case blockdev.OpFlush:
		d.startFlush(cmd)
	default:
		d.completeCmd(cmd, fmt.Errorf("ssd: unknown op %v", op))
	}
}

func (d *Device) completeCmd(cmd *command, err error) {
	if cmd.finished {
		return
	}
	cmd.finished = true
	for i, c := range d.outstanding {
		if c == cmd {
			d.outstanding = append(d.outstanding[:i], d.outstanding[i+1:]...)
			break
		}
	}
	if err != nil {
		d.stats.HostErrors++
		cmd.done(err, content.Data{})
		return
	}
	switch cmd.op {
	case blockdev.OpRead:
		d.stats.HostReads++
		cmd.done(nil, content.Gather(cmd.pages, func(i int) content.Fingerprint { return cmd.result[i] }))
	case blockdev.OpWrite:
		d.stats.HostWrites++
		cmd.done(nil, content.Data{})
	default:
		d.stats.HostFlushes++
		cmd.done(nil, content.Data{})
	}
}

func (d *Device) linkTransfer(bytes int64, fn func()) {
	start := d.k.Now()
	if d.linkBusyUntil > start {
		start = d.linkBusyUntil
	}
	dur := d.prof.CmdOverhead + sim.Duration(float64(bytes)/d.prof.LinkBytesPerSec*1e9)
	d.linkBusyUntil = start.Add(dur)
	d.k.At(d.linkBusyUntil, fn)
}

// --- write path ---

func (d *Device) startWrite(cmd *command) {
	d.linkTransfer(int64(cmd.pages)*addr.PageBytes, func() {
		if cmd.finished {
			return
		}
		if d.cache == nil {
			d.writeThrough(cmd)
			return
		}
		d.insertWrite(cmd, 0)
	})
}

// insertWrite places write pages into the volatile cache, stalling (write
// backpressure) while the dirty population is at its cap. The ACK that
// completes the command fires as soon as the last page is cached: this is
// the false-write-acknowledge window the paper measures.
func (d *Device) insertWrite(cmd *command, from int) {
	if cmd.finished {
		return
	}
	for i := from; i < cmd.pages; i++ {
		if d.cache.DirtyPages() >= d.prof.DirtyCapPages || !d.cache.Write(cmd.lpn+addr.LPN(i), cmd.data.Page(i)) {
			// Write backpressure: drain immediately and retry once the
			// flusher has retired pages.
			d.stats.CacheStalls++
			d.noteDirty()
			d.drainCache()
			idx := i
			d.k.After(200*sim.Microsecond, func() { d.insertWrite(cmd, idx) })
			return
		}
	}
	d.noteDirty()
	d.completeCmd(cmd, nil)
	d.scheduleFlushTick()
}

func (d *Device) noteDirty() {
	if d.cache != nil && d.cache.QueuedDirty() > 0 && !d.hasDirtySince {
		d.hasDirtySince = true
		d.firstDirtyAt = d.k.Now()
	}
}

// writeThrough programs pages synchronously (internal cache disabled); the
// ACK waits for every program to finish.
func (d *Device) writeThrough(cmd *command) {
	groups := make([][]pageOp, len(d.channels))
	for i := 0; i < cmd.pages; i++ {
		t, err := d.ftlm.BeginWrite(cmd.lpn + addr.LPN(i))
		if err != nil {
			d.completeCmd(cmd, ErrNoSpace)
			return
		}
		ch := d.channelOf(t.PPN)
		groups[ch] = append(groups[ch], pageOp{ppn: t.PPN, fp: cmd.data.Page(i), lpn: t.LPN, ticket: t})
	}
	per := d.perPageProg()
	for ch, ops := range groups {
		if len(ops) == 0 {
			continue
		}
		cmd.parts++
		d.enqueue(ch, &chItem{kind: itemProgram, ops: ops, perPage: per, onDone: func() {
			cmd.parts--
			if cmd.parts == 0 {
				d.completeCmd(cmd, cmd.err)
			}
			d.afterBackgroundWork()
		}})
	}
	if cmd.parts == 0 {
		d.completeCmd(cmd, nil)
	}
}

// --- read path ---

func (d *Device) startRead(cmd *command) {
	d.linkTransfer(64, func() { // command frame only
		if cmd.finished {
			return
		}
		d.resolveRead(cmd)
	})
}

func (d *Device) resolveRead(cmd *command) {
	cmd.result = make([]content.Fingerprint, cmd.pages)
	groups := make([][]pageOp, len(d.channels))
	flashPages := 0
	for i := 0; i < cmd.pages; i++ {
		lpn := cmd.lpn + addr.LPN(i)
		if d.cache != nil {
			if fp, ok := d.cache.Read(lpn); ok {
				cmd.result[i] = fp
				continue
			}
		}
		ppn, ok := d.ftlm.Lookup(lpn)
		if !ok {
			cmd.result[i] = content.Zero
			continue
		}
		ch := d.channelOf(ppn)
		groups[ch] = append(groups[ch], pageOp{ppn: ppn, rdIdx: i, rdDst: cmd.result, cmd: cmd})
		flashPages++
	}
	if flashPages == 0 {
		d.respondRead(cmd)
		return
	}
	for ch, ops := range groups {
		if len(ops) == 0 {
			continue
		}
		cmd.parts++
		d.enqueue(ch, &chItem{kind: itemRead, ops: ops, perPage: d.prof.Timing.ReadPage, onDone: func() {
			cmd.parts--
			if cmd.parts == 0 {
				d.respondRead(cmd)
			}
		}})
	}
}

func (d *Device) respondRead(cmd *command) {
	if cmd.finished {
		return
	}
	d.linkTransfer(int64(cmd.pages)*addr.PageBytes, func() {
		d.completeCmd(cmd, cmd.err)
	})
}

// --- flush command ---

func (d *Device) startFlush(cmd *command) {
	d.k.After(d.prof.CmdOverhead, func() {
		if cmd.finished {
			return
		}
		if d.cache == nil || d.cache.DirtyPages() == 0 {
			d.completeCmd(cmd, nil)
			return
		}
		d.flushWaiters = append(d.flushWaiters, cmd)
		d.drainCache()
	})
}

// --- background flusher ---

func (d *Device) scheduleFlushTick() {
	if d.cache == nil || d.flushTimer.Pending() || d.state == StateDead || d.state == StateRecovering {
		return
	}
	d.flushTimer = d.k.After(d.prof.FlushTick, d.flushTick)
}

func (d *Device) flushTick() {
	d.flushTimer = sim.Timer{}
	if d.cache == nil || d.state == StateDead || d.state == StateRecovering {
		return
	}
	queued := d.cache.QueuedDirty()
	if queued == 0 {
		d.hasDirtySince = false
		return
	}
	idle := d.hasDirtySince && d.k.Now().Sub(d.firstDirtyAt) >= d.prof.FlushIdleAge
	if queued >= d.prof.FlushHighPages || idle || len(d.flushWaiters) > 0 {
		d.drainCache()
	}
	d.scheduleFlushTick()
}

// drainCache pops every queued dirty page and spreads program batches over
// the channels.
func (d *Device) drainCache() {
	if d.cache == nil {
		return
	}
	for {
		ents := d.cache.PopDirty(d.prof.FlushBatchPages)
		if len(ents) == 0 {
			break
		}
		groups := make([][]pageOp, len(d.channels))
		for _, e := range ents {
			t, err := d.ftlm.BeginWrite(e.LPN)
			if err != nil {
				d.cache.FlushFailed(e.LPN, e.Seq)
				continue
			}
			ch := d.channelOf(t.PPN)
			groups[ch] = append(groups[ch], pageOp{ppn: t.PPN, fp: e.FP, lpn: e.LPN, seq: e.Seq, ticket: t})
		}
		per := d.perPageProg()
		for ch, ops := range groups {
			if len(ops) == 0 {
				continue
			}
			n := int64(len(ops))
			d.enqueue(ch, &chItem{kind: itemProgram, ops: ops, perPage: per, onDone: func() {
				d.stats.PagesFlushed += n
				d.afterBackgroundWork()
			}})
		}
	}
	d.hasDirtySince = false
}

// afterBackgroundWork runs the controller's housekeeping after any program
// batch completes: flush-command waiters, journal pressure, GC pressure,
// and rescheduling the flusher.
func (d *Device) afterBackgroundWork() {
	if d.state == StateDead || d.state == StateRecovering {
		return
	}
	if d.cache != nil && len(d.flushWaiters) > 0 && d.cache.DirtyPages() == 0 {
		waiters := d.flushWaiters
		d.flushWaiters = nil
		for _, w := range waiters {
			d.completeCmd(w, nil)
		}
	}
	if d.ftlm.CommitDue() && !d.metaInFlight {
		d.startMetaCommit()
	}
	d.checkGC()
	if d.cache != nil && d.cache.QueuedDirty() > 0 {
		d.noteDirty()
		d.scheduleFlushTick()
	}
}

// --- journal ---

func (d *Device) startJournalTick() {
	if d.journalTimer.Pending() {
		return
	}
	d.journalTimer = d.k.After(d.prof.JournalTick, d.journalTick)
}

func (d *Device) journalTick() {
	d.journalTimer = sim.Timer{}
	if d.state == StateDead || d.state == StateRecovering {
		return
	}
	d.ftlm.MaybeCloseRun(d.k.Now())
	if d.ftlm.PendingRecords() > 0 && !d.metaInFlight {
		d.startMetaCommit()
	}
	d.startJournalTick()
}

// startMetaCommit charges the flash time of persisting the pending mapping
// records; durability takes effect only when the metadata program ends, so
// a cut mid-commit loses the batch.
func (d *Device) startMetaCommit() {
	pending := d.ftlm.PendingRecords()
	if pending == 0 {
		return
	}
	metaPages := (pending + 511) / 512
	d.metaInFlight = true
	ops := make([]pageOp, metaPages)
	d.enqueue(0, &chItem{kind: itemMeta, ops: ops, perPage: d.perPageProg(), onDone: func() {
		d.metaInFlight = false
		d.ftlm.CommitJournal()
	}})
}

// --- garbage collection ---

func (d *Device) checkGC() {
	if d.gcActive || d.state == StateDead || d.state == StateRecovering {
		return
	}
	if !d.ftlm.NeedGC() {
		return
	}
	d.gcActive = true
	d.gcStep()
}

func (d *Device) gcStep() {
	if d.state == StateDead || d.state == StateRecovering {
		d.gcActive = false
		return
	}
	if d.ftlm.GCSatisfied() {
		d.gcActive = false
		return
	}
	plan := d.ftlm.GCPlan()
	if plan == nil {
		d.gcActive = false
		return
	}
	if len(plan.Moves) == 0 {
		d.gcErase(plan.Victim)
		return
	}
	// Phase 1: read every valid page out of the victim.
	fps := make([]content.Fingerprint, len(plan.Moves))
	groups := make([][]pageOp, len(d.channels))
	for i, mv := range plan.Moves {
		ch := d.channelOf(mv.From)
		groups[ch] = append(groups[ch], pageOp{ppn: mv.From, rdIdx: i, rdDst: fps})
	}
	parts := 0
	onReads := func() {
		parts--
		if parts > 0 {
			return
		}
		d.gcProgram(plan, fps)
	}
	for ch, ops := range groups {
		if len(ops) == 0 {
			continue
		}
		parts++
		d.enqueue(ch, &chItem{kind: itemRead, ops: ops, perPage: d.prof.Timing.ReadPage, onDone: onReads})
	}
}

func (d *Device) gcProgram(plan *ftl.GCPlan, fps []content.Fingerprint) {
	if d.state == StateDead || d.state == StateRecovering {
		d.gcActive = false
		return
	}
	groups := make([][]pageOp, len(d.channels))
	for i, mv := range plan.Moves {
		t, err := d.ftlm.BeginWrite(mv.LPN)
		if err != nil {
			d.gcActive = false
			return
		}
		ch := d.channelOf(t.PPN)
		groups[ch] = append(groups[ch], pageOp{ppn: t.PPN, fp: fps[i], lpn: mv.LPN, ticket: t, from: mv.From})
	}
	parts := 0
	onProg := func() {
		parts--
		if parts > 0 {
			return
		}
		d.gcErase(plan.Victim)
	}
	per := d.perPageProg()
	for ch, ops := range groups {
		if len(ops) == 0 {
			continue
		}
		parts++
		d.enqueue(ch, &chItem{kind: itemMove, ops: ops, perPage: per, onDone: onProg})
	}
	if parts == 0 {
		d.gcErase(plan.Victim)
	}
}

func (d *Device) gcErase(victim int) {
	ch := victim % len(d.channels)
	d.enqueue(ch, &chItem{kind: itemErase, block: victim, perPage: d.prof.Timing.EraseBlock, onDone: func() {
		d.ftlm.GCFinish(victim)
		d.gcStep()
	}})
}

// --- power events ---

func (d *Device) onBrownout() {
	if d.state == StateDead || d.state == StateUnavailable {
		return
	}
	d.stats.Brownouts++
	if d.state == StateRecovering && d.recoveryTimer.Pending() {
		d.recoveryTimer.Stop()
		d.recoveryTimer = sim.Timer{}
	}
	d.state = StateUnavailable
	for _, fn := range d.downListeners {
		fn()
	}
	// The host notices the link dropping shortly after; every outstanding
	// command errors. Internal work (flusher, channels) keeps running off
	// the decaying rail until the die voltage.
	pending := make([]*command, len(d.outstanding))
	copy(pending, d.outstanding)
	d.k.After(d.prof.LinkDownDetect, func() {
		for _, cmd := range pending {
			d.completeCmd(cmd, ErrUnavailable)
		}
	})
	if d.prof.SuperCap {
		// Power-loss protection starts its panic flush immediately at
		// brownout; the supercap guarantees completion (modelled as
		// finishing at the die instant in supercapComplete).
		return
	}
}

func (d *Device) onDie() {
	if d.state == StateDead {
		return
	}
	if os.Getenv("PFDEBUG") != "" {
		q, fl := 0, 0
		if d.cache != nil {
			q = d.cache.QueuedDirty()
			fl = d.cache.DirtyPages() - q
		}
		fmt.Printf("DIE t=%s queued=%d flushing=%d pendingRec=%d openRun=%d\n",
			d.k.Now(), q, fl, d.ftlm.PendingRecords(), d.ftlm.OpenRunLen())
	}
	d.stats.Deaths++
	if d.prof.SuperCap {
		d.supercapComplete()
	} else {
		d.interruptChannels()
	}
	if d.cache != nil {
		d.stats.DirtyPagesLost += int64(d.cache.DropAll())
	}
	cs := d.ftlm.Crash(d.k.Now())
	d.stats.MappingsLost += int64(cs.Lost)
	if d.flushTimer.Pending() {
		d.flushTimer.Stop()
		d.flushTimer = sim.Timer{}
	}
	if d.journalTimer.Pending() {
		d.journalTimer.Stop()
		d.journalTimer = sim.Timer{}
	}
	d.hasDirtySince = false
	d.flushWaiters = nil
	d.state = StateDead
}

func (d *Device) onPowerGood() {
	switch d.state {
	case StateReady, StateRecovering:
		return
	case StateUnavailable:
		// Rail dipped below brownout but recovered before the controller
		// died: the link comes straight back.
		d.state = StateReady
		d.notifyReady()
		return
	}
	d.state = StateRecovering
	d.stats.Recoveries++
	d.linkBusyUntil = 0
	dur := d.prof.RecoveryBase + d.ftlm.RecoverDuration()
	d.recoveryTimer = d.k.After(dur, func() {
		d.recoveryTimer = sim.Timer{}
		d.state = StateReady
		d.startJournalTick()
		d.notifyReady()
	})
}

func (d *Device) notifyReady() {
	for _, fn := range d.readyListeners {
		fn()
	}
}
