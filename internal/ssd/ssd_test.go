package ssd

import (
	"testing"

	"powerfail/internal/addr"
	"powerfail/internal/blockdev"
	"powerfail/internal/content"
	"powerfail/internal/flash"
	"powerfail/internal/power"
	"powerfail/internal/sim"
)

// smallProfile keeps FTL maps tiny for device-level tests.
func smallProfile() Profile {
	p := ProfileA()
	p.CapacityGB = 1
	p.Channels = 4
	p.Dies = 4
	return p.Normalize()
}

type rig struct {
	k   *sim.Kernel
	psu *power.PSU
	dev *Device
}

func newRig(t *testing.T, prof Profile) *rig {
	t.Helper()
	k := sim.New()
	psu, err := power.New(k, power.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	dev, err := New(k, sim.NewRNG(7), prof, psu)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{k: k, psu: psu, dev: dev}
}

func (r *rig) write(t *testing.T, lpn addr.LPN, data content.Data) error {
	t.Helper()
	var out error
	done := false
	r.dev.Submit(blockdev.OpWrite, lpn, data.Pages(), data, func(err error, _ content.Data) {
		out = err
		done = true
	})
	r.k.RunWhile(func() bool { return !done })
	if !done {
		t.Fatal("write never completed")
	}
	return out
}

func (r *rig) read(t *testing.T, lpn addr.LPN, pages int) (content.Data, error) {
	t.Helper()
	var out content.Data
	var rerr error
	done := false
	r.dev.Submit(blockdev.OpRead, lpn, pages, content.Data{}, func(err error, d content.Data) {
		out, rerr = d, err
		done = true
	})
	r.k.RunWhile(func() bool { return !done })
	if !done {
		t.Fatal("read never completed")
	}
	return out, rerr
}

func (r *rig) flush(t *testing.T) {
	t.Helper()
	done := false
	r.dev.Submit(blockdev.OpFlush, 0, 0, content.Data{}, func(error, content.Data) { done = true })
	r.k.RunWhile(func() bool { return !done })
	if !done {
		t.Fatal("flush never completed")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	r := newRig(t, smallProfile())
	payload := content.Random(sim.NewRNG(1), 64)
	if err := r.write(t, 1000, payload); err != nil {
		t.Fatal(err)
	}
	got, err := r.read(t, 1000, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(payload) {
		t.Fatal("read differs from written (cache path)")
	}
	// After an explicit flush the data must come back from flash too.
	r.flush(t)
	if r.dev.DirtyCachePages() != 0 {
		t.Fatalf("dirty=%d after flush", r.dev.DirtyCachePages())
	}
	got, err = r.read(t, 1000, 64)
	if err != nil || !got.Equal(payload) {
		t.Fatal("read differs from written (flash path)")
	}
}

func TestUnmappedReadsZero(t *testing.T) {
	r := newRig(t, smallProfile())
	got, err := r.read(t, 5000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(content.Zeroes(8)) {
		t.Fatal("unwritten range not zero")
	}
}

func TestWriteThroughWhenCacheDisabled(t *testing.T) {
	r := newRig(t, smallProfile().WithCacheDisabled())
	payload := content.Random(sim.NewRNG(2), 16)
	if err := r.write(t, 10, payload); err != nil {
		t.Fatal(err)
	}
	// ACK means durable: the chip already holds every page.
	if r.dev.Stats().PagesProgrammed != 16 {
		t.Fatalf("programmed=%d at ACK", r.dev.Stats().PagesProgrammed)
	}
	got, err := r.read(t, 10, 16)
	if err != nil || !got.Equal(payload) {
		t.Fatal("write-through round trip failed")
	}
}

func TestBackgroundFlusherDrains(t *testing.T) {
	r := newRig(t, smallProfile())
	r.write(t, 0, content.Random(sim.NewRNG(3), 256))
	if r.dev.DirtyCachePages() == 0 {
		t.Fatal("no dirty pages after a cached write")
	}
	r.k.RunFor(2 * sim.Second) // well past FlushIdleAge
	if r.dev.DirtyCachePages() != 0 {
		t.Fatalf("dirty=%d after idle period", r.dev.DirtyCachePages())
	}
}

func TestPowerCycleCleanRecovery(t *testing.T) {
	r := newRig(t, smallProfile())
	payload := content.Random(sim.NewRNG(4), 32)
	r.write(t, 100, payload)
	r.flush(t)
	r.k.RunFor(200 * sim.Millisecond) // let the journal commit

	r.psu.PowerOff()
	r.k.RunFor(2 * sim.Second)
	if r.dev.State() != StateDead {
		t.Fatalf("state = %v after discharge", r.dev.State())
	}
	r.psu.PowerOn()
	r.k.RunFor(500 * sim.Millisecond)
	if r.dev.State() != StateReady {
		t.Fatalf("state = %v after restore", r.dev.State())
	}
	got, err := r.read(t, 100, 32)
	if err != nil || !got.Equal(payload) {
		t.Fatal("durable data lost across a clean power cycle")
	}
}

func TestUnavailableFailsFast(t *testing.T) {
	r := newRig(t, smallProfile())
	r.psu.PowerOff()
	r.k.RunFor(60 * sim.Millisecond) // past brownout
	var gotErr error
	done := false
	r.dev.Submit(blockdev.OpRead, 0, 1, content.Data{}, func(err error, _ content.Data) {
		gotErr = err
		done = true
	})
	r.k.RunFor(10 * sim.Millisecond)
	if !done || gotErr != ErrUnavailable {
		t.Fatalf("submit while down: done=%v err=%v", done, gotErr)
	}
}

func TestOutstandingFailOnBrownout(t *testing.T) {
	r := newRig(t, smallProfile())
	var gotErr error
	done := false
	// A large write whose transfer outlives the cut.
	payload := content.Random(sim.NewRNG(5), 256)
	r.dev.Submit(blockdev.OpWrite, 0, 256, payload, func(err error, _ content.Data) {
		gotErr = err
		done = true
	})
	r.psu.PowerOff()
	r.k.RunFor(2 * sim.Second)
	if !done {
		t.Fatal("outstanding command never resolved")
	}
	if gotErr == nil {
		// The transfer may have completed within the 40 ms brownout
		// window; that is legal. Force the interesting case instead.
		t.Skip("command completed before brownout; covered by core tests")
	}
	if gotErr != ErrUnavailable {
		t.Fatalf("err = %v", gotErr)
	}
}

// TestDirtyCacheLostOnPowerFail is the FWA mechanism end to end at device
// level: ACKed data vanishes, the address reads back old content.
func TestDirtyCacheLostOnPowerFail(t *testing.T) {
	r := newRig(t, smallProfile())
	old := content.Random(sim.NewRNG(6), 8)
	r.write(t, 500, old)
	r.flush(t)
	r.k.RunFor(500 * sim.Millisecond) // commit mapping

	fresh := content.Random(sim.NewRNG(7), 8)
	if err := r.write(t, 500, fresh); err != nil {
		t.Fatal(err)
	}
	// ACK received; cut immediately, before any flush tick.
	r.psu.PowerOff()
	r.k.RunFor(2 * sim.Second)
	r.psu.PowerOn()
	r.k.RunFor(500 * sim.Millisecond)

	got, err := r.read(t, 500, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got.Equal(fresh) {
		t.Fatal("acknowledged write survived; expected cache loss")
	}
	if !got.Equal(old) {
		t.Fatal("address holds neither old nor new content")
	}
	if r.dev.Stats().DirtyPagesLost == 0 {
		t.Fatal("no dirty pages recorded lost")
	}
}

// TestSuperCapPreservesDirtyData: with power-loss protection the same
// scenario loses nothing.
func TestSuperCapPreservesDirtyData(t *testing.T) {
	r := newRig(t, smallProfile().WithSuperCap())
	fresh := content.Random(sim.NewRNG(8), 8)
	if err := r.write(t, 500, fresh); err != nil {
		t.Fatal(err)
	}
	r.psu.PowerOff()
	r.k.RunFor(2 * sim.Second)
	r.psu.PowerOn()
	r.k.RunFor(500 * sim.Millisecond)

	got, err := r.read(t, 500, 8)
	if err != nil || !got.Equal(fresh) {
		t.Fatal("supercap drive lost acknowledged data")
	}
	if r.dev.Stats().PanicFlushes != 1 {
		t.Fatalf("panic flushes = %d", r.dev.Stats().PanicFlushes)
	}
}

func TestReadyNotification(t *testing.T) {
	r := newRig(t, smallProfile())
	readyCount := 0
	r.dev.NotifyReady(func() { readyCount++ })
	r.psu.PowerOff()
	r.k.RunFor(2 * sim.Second)
	r.psu.PowerOn()
	r.k.RunFor(500 * sim.Millisecond)
	if readyCount != 1 {
		t.Fatalf("ready fired %d times", readyCount)
	}
}

func TestGCUnderSteadyOverwrites(t *testing.T) {
	p := smallProfile()
	p.CapacityGB = 1
	r := newRig(t, p)
	rng := sim.NewRNG(9)
	// Overwrite a small region repeatedly: roughly 4x the drive's spare
	// blocks worth of churn, forcing collections.
	for round := 0; round < 6; round++ {
		for i := 0; i < 40; i++ {
			if err := r.write(t, addr.LPN(i*64), content.Random(rng, 64)); err != nil {
				t.Fatalf("round %d write %d: %v", round, i, err)
			}
		}
		r.k.RunFor(time500())
	}
	r.flush(t)
	r.k.RunFor(2 * sim.Second)
	if r.dev.FTL().Stats().GCCollections == 0 {
		t.Skip("churn did not reach GC pressure on this geometry")
	}
}

func time500() sim.Duration { return 500 * sim.Millisecond }

func TestProfilesTableI(t *testing.T) {
	profs := Profiles()
	if len(profs) != 3 {
		t.Fatalf("profiles = %d, want 3 (Table I)", len(profs))
	}
	wantCells := []flash.CellKind{flash.MLC, flash.TLC, flash.MLC}
	wantSizes := []int{256, 120, 120}
	for i, p := range profs {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", p.Name, err)
		}
		if p.Cell != wantCells[i] || p.CapacityGB != wantSizes[i] {
			t.Errorf("profile %s = %v/%dGB", p.Name, p.Cell, p.CapacityGB)
		}
		if !p.HasCache {
			t.Errorf("profile %s should have an internal cache", p.Name)
		}
		if p.String() == "" {
			t.Error("empty profile string")
		}
	}
	if ProfileB().ECC.Scheme != "LDPC" {
		t.Error("SSD B should use LDPC (Table I)")
	}
	if _, ok := ProfileByName("B"); !ok {
		t.Error("ProfileByName failed")
	}
	if _, ok := ProfileByName("nope"); ok {
		t.Error("unknown profile found")
	}
}

func TestProfileDerivations(t *testing.T) {
	p := ProfileA()
	if p.UserPages() != int64(256)<<30>>12 {
		t.Fatal("UserPages wrong")
	}
	if p.Geometry().CapacityBytes() < int64(256)<<30 {
		t.Fatal("geometry smaller than capacity")
	}
	if p.CachePages() != 32<<20>>12 {
		t.Fatal("CachePages wrong")
	}
	if p.WithCacheDisabled().CachePages() != 0 {
		t.Fatal("cache-disabled pages wrong")
	}
	nc := p.WithCacheDisabled()
	if nc.HasCache || nc.Name == p.Name {
		t.Fatal("WithCacheDisabled wrong")
	}
	sc := p.WithSuperCap()
	if !sc.SuperCap || sc.Name == p.Name {
		t.Fatal("WithSuperCap wrong")
	}
}

func TestProfileValidation(t *testing.T) {
	p := ProfileA()
	p.Name = ""
	if p.Validate() == nil {
		t.Fatal("nameless profile accepted")
	}
	p = ProfileA()
	p.DieVolts = 4.9
	if p.Validate() == nil {
		t.Fatal("die above brownout accepted")
	}
	p = ProfileA()
	p.CapacityGB = 0
	if p.Validate() == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestUncorrectableAsErrorMode(t *testing.T) {
	p := smallProfile()
	p.BaseBER = 0.05 // every flash read uncorrectable
	p.UncorrectableAsError = true
	r := newRig(t, p)
	payload := content.Random(sim.NewRNG(10), 4)
	r.write(t, 0, payload)
	r.flush(t)
	// Drop the cache copy so the read must hit flash.
	r.psu.PowerOff()
	r.k.RunFor(2 * sim.Second)
	r.psu.PowerOn()
	r.k.RunFor(500 * sim.Millisecond)
	_, err := r.read(t, 0, 4)
	if err != ErrUncorrectable {
		t.Fatalf("err = %v, want ErrUncorrectable", err)
	}
}

func TestStateStrings(t *testing.T) {
	for _, s := range []State{StateReady, StateUnavailable, StateDead, StateRecovering} {
		if s.String() == "" {
			t.Fatal("state string empty")
		}
	}
}
