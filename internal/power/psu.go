// Package power models the hardware part of the paper's test platform: an
// independent ATX power supply whose 5 V rail drives the SSD under test, an
// ATX controller with the active-low PS_ON# pin (pin 16), and an Arduino
// UNO whose output pin 13 drives PS_ON# on command from the software part.
//
// The distinguishing feature of the paper's platform versus earlier
// transistor-based cutters is that the drive experiences the *slow
// capacitive discharge* of the PSU: the 5 V rail decays exponentially with
// a time constant set by the PSU bulk capacitance against the bleed
// resistance in parallel with the attached loads. The default configuration
// is calibrated to the paper's Fig. 4: about 1400 ms from 5 V to near zero
// with no load, about 900 ms with one SSD attached, and the SSD crossing
// its 4.5 V brownout threshold roughly 40 ms after the cut.
package power

import (
	"fmt"
	"math"

	"powerfail/internal/sim"
)

// Config describes the electrical model of the PSU's 5 V rail.
type Config struct {
	// VNominal is the regulated rail voltage while the supply is on.
	VNominal float64
	// Capacitance is the effective bulk capacitance on the rail, farads.
	Capacitance float64
	// BleedOhms is the internal discharge resistance with no loads.
	BleedOhms float64
	// RiseTime is the ramp from 0 V to VNominal at power-on.
	RiseTime sim.Duration
}

// DefaultConfig returns the Fig. 4 calibration: tau(unloaded) = 554 ms and,
// with the default SSD load attached, tau(loaded) = 380 ms, which puts the
// 4.5 V crossing at 40 ms and the visually-zero crossing near 900 ms.
func DefaultConfig() Config {
	return Config{
		VNominal:    5.0,
		Capacitance: 0.020, // 20,000 uF equivalent bulk capacitance
		BleedOhms:   27.7,
		RiseTime:    5 * sim.Millisecond,
	}
}

// Validate checks the configuration for physical plausibility.
func (c Config) Validate() error {
	if c.VNominal <= 0 {
		return fmt.Errorf("power: VNominal must be positive, got %g", c.VNominal)
	}
	if c.Capacitance <= 0 {
		return fmt.Errorf("power: Capacitance must be positive, got %g", c.Capacitance)
	}
	if c.BleedOhms <= 0 {
		return fmt.Errorf("power: BleedOhms must be positive, got %g", c.BleedOhms)
	}
	if c.RiseTime < 0 {
		return fmt.Errorf("power: RiseTime must be non-negative, got %s", c.RiseTime)
	}
	return nil
}

// Load is a device attached to the rail, modelled as an ohmic resistance.
type Load struct {
	psu       *PSU
	name      string
	ohms      float64
	connected bool
}

// Name returns the label given at Connect time.
func (l *Load) Name() string { return l.name }

// Ohms returns the load's equivalent resistance.
func (l *Load) Ohms() float64 { return l.ohms }

// Connected reports whether the load currently draws from the rail.
func (l *Load) Connected() bool { return l.connected }

// SetConnected attaches or detaches the load, re-planning watch crossings.
func (l *Load) SetConnected(on bool) {
	if l.connected == on {
		return
	}
	l.connected = on
	l.psu.replanAll()
}

// Watch is a persistent voltage-threshold trigger. It fires its callback
// every time the rail crosses its threshold in the watched direction
// (downward for NotifyBelow, upward for NotifyAbove).
type Watch struct {
	psu       *PSU
	threshold float64
	below     bool // true: fire on downward crossing
	fn        func()
	timer     sim.Timer
	wasBelow  bool
	cancelled bool
}

// Cancel permanently disables the watch.
func (w *Watch) Cancel() {
	w.cancelled = true
	w.timer.Stop()
	w.timer = sim.Timer{}
}

// PSU models the independent ATX supply driving the device under test.
type PSU struct {
	k   *sim.Kernel
	cfg Config

	on         bool
	switchedAt sim.Time
	vAtSwitch  float64 // rail voltage at the moment of the last switch

	loads   []*Load
	watches []*Watch

	cuts     int
	restores int
}

// New builds a PSU in the powered-on steady state.
func New(k *sim.Kernel, cfg Config) (*PSU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &PSU{
		k:          k,
		cfg:        cfg,
		on:         true,
		switchedAt: k.Now(),
		vAtSwitch:  cfg.VNominal,
	}, nil
}

// Config returns the electrical configuration.
func (p *PSU) Config() Config { return p.cfg }

// On reports whether the supply is switched on (the rail may still be
// ramping or discharging; see Voltage).
func (p *PSU) On() bool { return p.on }

// Cuts returns the number of power-off commands processed.
func (p *PSU) Cuts() int { return p.cuts }

// Restores returns the number of power-on commands processed.
func (p *PSU) Restores() int { return p.restores }

// Connect attaches a named ohmic load to the rail.
func (p *PSU) Connect(name string, ohms float64) *Load {
	if ohms <= 0 {
		panic("power: load resistance must be positive")
	}
	l := &Load{psu: p, name: name, ohms: ohms, connected: true}
	p.loads = append(p.loads, l)
	p.replanAll()
	return l
}

// Tau returns the current discharge time constant in seconds, accounting
// for connected loads in parallel with the bleed resistance.
func (p *PSU) Tau() float64 {
	g := 1.0 / p.cfg.BleedOhms
	for _, l := range p.loads {
		if l.connected {
			g += 1.0 / l.ohms
		}
	}
	return p.cfg.Capacitance / g
}

// PowerOff cuts the supply; the rail begins its capacitive discharge from
// the present voltage.
func (p *PSU) PowerOff() {
	if !p.on {
		return
	}
	p.vAtSwitch = p.VoltageAt(p.k.Now())
	p.on = false
	p.switchedAt = p.k.Now()
	p.cuts++
	p.replanAll()
}

// PowerOn restores the supply; the rail ramps from the present voltage to
// nominal over the configured rise time.
func (p *PSU) PowerOn() {
	if p.on {
		return
	}
	p.vAtSwitch = p.VoltageAt(p.k.Now())
	p.on = true
	p.switchedAt = p.k.Now()
	p.restores++
	p.replanAll()
}

// VoltageAt computes the rail voltage at instant t (t at or after the last
// state change; earlier instants are answered for the current phase too,
// by extrapolation, and are only used by tests).
func (p *PSU) VoltageAt(t sim.Time) float64 {
	dt := t.Sub(p.switchedAt).Seconds()
	if dt < 0 {
		dt = 0
	}
	if p.on {
		if p.cfg.RiseTime <= 0 {
			return p.cfg.VNominal
		}
		rise := p.cfg.RiseTime.Seconds()
		v := p.vAtSwitch + (p.cfg.VNominal-p.vAtSwitch)*(dt/rise)
		if v > p.cfg.VNominal {
			v = p.cfg.VNominal
		}
		return v
	}
	return p.vAtSwitch * math.Exp(-dt/p.Tau())
}

// Voltage returns the rail voltage now.
func (p *PSU) Voltage() float64 { return p.VoltageAt(p.k.Now()) }

// NotifyBelow registers fn to run whenever the rail crosses v downward.
// If the rail is already below v the watch arms for the next crossing
// (after a power-on takes it back above).
func (p *PSU) NotifyBelow(v float64, fn func()) *Watch {
	w := &Watch{psu: p, threshold: v, below: true, fn: fn}
	w.wasBelow = p.Voltage() < v
	p.watches = append(p.watches, w)
	p.replan(w)
	return w
}

// NotifyAbove registers fn to run whenever the rail crosses v upward.
func (p *PSU) NotifyAbove(v float64, fn func()) *Watch {
	w := &Watch{psu: p, threshold: v, below: false, fn: fn}
	w.wasBelow = p.Voltage() < v
	p.watches = append(p.watches, w)
	p.replan(w)
	return w
}

// crossingDelay returns the time from now until the rail crosses w's
// threshold in w's direction, or ok=false if it never will in the current
// phase.
func (p *PSU) crossingDelay(w *Watch) (sim.Duration, bool) {
	now := p.k.Now()
	v := p.VoltageAt(now)
	if w.below {
		if !p.on && v > w.threshold && w.threshold > 0 {
			secs := p.Tau() * math.Log(v/w.threshold)
			return sim.Seconds(secs), true
		}
		return 0, false
	}
	// Upward crossing: only while on and ramping.
	if p.on && v < w.threshold && w.threshold <= p.cfg.VNominal {
		if p.cfg.RiseTime <= 0 {
			return 0, true
		}
		rise := p.cfg.RiseTime.Seconds()
		frac := (w.threshold - v) / (p.cfg.VNominal - v)
		return sim.Seconds(rise * frac * (1 - p.switchProgress())), true
	}
	return 0, false
}

// switchProgress returns how far through the rise ramp we already are; the
// crossing math in crossingDelay works from the *current* voltage, so no
// additional progress correction is needed. Kept as a named helper for
// clarity and future non-linear ramps.
func (p *PSU) switchProgress() float64 { return 0 }

func (p *PSU) replanAll() {
	for _, w := range p.watches {
		p.replan(w)
	}
}

func (p *PSU) replan(w *Watch) {
	if w.cancelled {
		return
	}
	w.timer.Stop()
	w.timer = sim.Timer{}
	v := p.Voltage()
	isBelow := v < w.threshold
	// Detect a crossing that logically happened at the state change itself.
	w.wasBelow = isBelow
	d, ok := p.crossingDelay(w)
	if !ok {
		return
	}
	w.timer = p.k.After(d, func() {
		if w.cancelled {
			return
		}
		w.timer = sim.Timer{}
		w.wasBelow = w.below
		w.fn()
	})
}
