package power

import (
	"fmt"

	"powerfail/internal/sim"
)

// ATX models the PSU's ATX controller connector. Pin 16 (PS_ON#) is active
// low: driving it high cuts the supply output, pulling it low restores it.
// This mirrors Fig. 3 of the paper, where Arduino pin 13 drives pin 16.
type ATX struct {
	psu   *PSU
	pin16 bool // true = high = supply off
}

// NewATX wires an ATX controller to the supply, with PS_ON# asserted
// (supply on).
func NewATX(psu *PSU) *ATX { return &ATX{psu: psu, pin16: false} }

// Pin16 reports the PS_ON# level (true = high = off).
func (a *ATX) Pin16() bool { return a.pin16 }

// SetPin16 drives PS_ON#. High cuts the output; low restores it.
func (a *ATX) SetPin16(high bool) {
	if a.pin16 == high {
		return
	}
	a.pin16 = high
	if high {
		a.psu.PowerOff()
	} else {
		a.psu.PowerOn()
	}
}

// Arduino command bytes understood by the microcontroller firmware: the
// scheduler sends CmdCut to inject a fault and CmdRestore to end it.
const (
	CmdCut     byte = '1' // drive pin 13 high -> PS_ON# high -> supply off
	CmdRestore byte = '0' // drive pin 13 low  -> PS_ON# low  -> supply on
)

// Arduino models the UNO board (ATmega328) from the paper's hardware part.
// Commands arrive over a serial link with a small latency (USB-serial
// transfer plus firmware loop) before pin 13 changes level.
type Arduino struct {
	k             *sim.Kernel
	serialLatency sim.Duration
	pin13         bool
	wire          func(high bool)
	commands      int
}

// NewArduino builds the board with the given serial+loop latency. The wire
// callback is invoked whenever pin 13 changes level; wire it to
// ATX.SetPin16 to complete the hardware chain.
func NewArduino(k *sim.Kernel, serialLatency sim.Duration, wire func(high bool)) *Arduino {
	if serialLatency < 0 {
		serialLatency = 0
	}
	return &Arduino{k: k, serialLatency: serialLatency, wire: wire}
}

// DefaultSerialLatency approximates one command byte at 115200 baud plus
// the firmware polling loop.
const DefaultSerialLatency = 200 * sim.Microsecond

// Pin13 reports the current output pin level.
func (a *Arduino) Pin13() bool { return a.pin13 }

// Commands returns how many commands the firmware has processed.
func (a *Arduino) Commands() int { return a.commands }

// Send transmits a command byte from the host. The pin change takes effect
// after the serial latency, like the real firmware's receive-then-set loop.
func (a *Arduino) Send(cmd byte) error {
	var high bool
	switch cmd {
	case CmdCut:
		high = true
	case CmdRestore:
		high = false
	default:
		return fmt.Errorf("power: unknown arduino command %q", cmd)
	}
	a.k.After(a.serialLatency, func() {
		a.commands++
		if a.pin13 == high {
			return
		}
		a.pin13 = high
		if a.wire != nil {
			a.wire(high)
		}
	})
	return nil
}
