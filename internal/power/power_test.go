package power

import (
	"math"
	"testing"
	"testing/quick"

	"powerfail/internal/sim"
)

func newPSU(t *testing.T) (*sim.Kernel, *PSU) {
	t.Helper()
	k := sim.New()
	p, err := New(k, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return k, p
}

func TestSteadyStateVoltage(t *testing.T) {
	_, p := newPSU(t)
	if v := p.Voltage(); v != 5.0 {
		t.Fatalf("steady voltage = %g, want 5", v)
	}
}

// TestFig4Unloaded checks the paper's Fig. 4a: with no device attached the
// rail takes about 1400 ms to discharge to near zero.
func TestFig4Unloaded(t *testing.T) {
	k, p := newPSU(t)
	p.PowerOff()
	v := p.VoltageAt(k.Now().Add(1400 * sim.Millisecond))
	if v > 0.5 || v < 0.2 {
		t.Fatalf("V(1400ms) = %.3f, want ~0.4 (visually zero)", v)
	}
}

// TestFig4Loaded checks Fig. 4b: with one SSD attached the discharge
// reaches near zero around 900 ms and crosses 4.5 V at about 40 ms.
func TestFig4Loaded(t *testing.T) {
	k, p := newPSU(t)
	p.Connect("ssd", 60.5)
	p.PowerOff()
	if v := p.VoltageAt(k.Now().Add(900 * sim.Millisecond)); v > 0.6 {
		t.Fatalf("V(900ms) = %.3f, want < 0.6", v)
	}
	v40 := p.VoltageAt(k.Now().Add(40 * sim.Millisecond))
	if math.Abs(v40-4.5) > 0.1 {
		t.Fatalf("V(40ms) = %.3f, want ~4.5", v40)
	}
}

func TestLoadSpeedsDischarge(t *testing.T) {
	if DefaultConfig().Validate() != nil {
		t.Fatal("default config invalid")
	}
	k1 := sim.New()
	p1, _ := New(k1, DefaultConfig())
	p1.PowerOff()
	k2 := sim.New()
	p2, _ := New(k2, DefaultConfig())
	p2.Connect("ssd", 60.5)
	p2.PowerOff()
	at := sim.Time(0).Add(300 * sim.Millisecond)
	if p2.VoltageAt(at) >= p1.VoltageAt(at) {
		t.Fatal("loaded rail should discharge faster")
	}
}

func TestNotifyBelowFiresAtCrossing(t *testing.T) {
	k, p := newPSU(t)
	p.Connect("ssd", 60.5)
	var firedAt sim.Time
	p.NotifyBelow(4.5, func() { firedAt = k.Now() })
	p.PowerOff()
	k.Run()
	ms := firedAt.Millis()
	if ms < 35 || ms > 47 {
		t.Fatalf("brownout watch fired at %.1f ms, want ~40", ms)
	}
}

func TestWatchOrderingByThreshold(t *testing.T) {
	k, p := newPSU(t)
	var order []string
	p.NotifyBelow(4.5, func() { order = append(order, "brownout") })
	p.NotifyBelow(4.45, func() { order = append(order, "die") })
	p.NotifyBelow(0.25, func() { order = append(order, "floor") })
	p.PowerOff()
	k.Run()
	if len(order) != 3 || order[0] != "brownout" || order[1] != "die" || order[2] != "floor" {
		t.Fatalf("watch order wrong: %v", order)
	}
}

func TestWatchRearmsAcrossCycles(t *testing.T) {
	k, p := newPSU(t)
	count := 0
	p.NotifyBelow(4.5, func() { count++ })
	for i := 0; i < 3; i++ {
		p.PowerOff()
		k.RunFor(2 * sim.Second)
		p.PowerOn()
		k.RunFor(100 * sim.Millisecond)
	}
	if count != 3 {
		t.Fatalf("brownout watch fired %d times, want 3", count)
	}
}

func TestNotifyAboveOnRestore(t *testing.T) {
	k, p := newPSU(t)
	var restored bool
	p.NotifyAbove(4.75, func() { restored = true })
	p.PowerOff()
	k.RunFor(2 * sim.Second)
	if restored {
		t.Fatal("power-good fired during discharge")
	}
	p.PowerOn()
	k.RunFor(50 * sim.Millisecond)
	if !restored {
		t.Fatal("power-good never fired after restore")
	}
}

func TestWatchCancel(t *testing.T) {
	k, p := newPSU(t)
	fired := false
	w := p.NotifyBelow(4.5, func() { fired = true })
	w.Cancel()
	p.PowerOff()
	k.Run()
	if fired {
		t.Fatal("cancelled watch fired")
	}
}

func TestPowerOnRamp(t *testing.T) {
	k, p := newPSU(t)
	p.PowerOff()
	k.RunFor(2 * sim.Second)
	low := p.Voltage()
	p.PowerOn()
	mid := p.VoltageAt(k.Now().Add(2 * sim.Millisecond))
	if mid <= low || mid >= 5 {
		t.Fatalf("ramp voltage %g not between %g and 5", mid, low)
	}
	if v := p.VoltageAt(k.Now().Add(10 * sim.Millisecond)); v != 5 {
		t.Fatalf("post-ramp voltage %g, want 5", v)
	}
}

func TestLoadDisconnect(t *testing.T) {
	k, p := newPSU(t)
	l := p.Connect("ssd", 60.5)
	tauLoaded := p.Tau()
	l.SetConnected(false)
	if p.Tau() <= tauLoaded {
		t.Fatal("disconnecting load should slow the discharge")
	}
	if l.Connected() {
		t.Fatal("load still connected")
	}
	_ = k
}

func TestCutsRestoresCounters(t *testing.T) {
	k, p := newPSU(t)
	p.PowerOff()
	p.PowerOff() // idempotent
	k.RunFor(sim.Second)
	p.PowerOn()
	p.PowerOn()
	if p.Cuts() != 1 || p.Restores() != 1 {
		t.Fatalf("cuts=%d restores=%d, want 1/1", p.Cuts(), p.Restores())
	}
}

// Property: the discharge curve is monotonically non-increasing.
func TestQuickDischargeMonotonic(t *testing.T) {
	k, p := newPSU(t)
	p.Connect("ssd", 60.5)
	p.PowerOff()
	f := func(aRaw, bRaw uint16) bool {
		a, b := sim.Duration(aRaw)*sim.Millisecond/10, sim.Duration(bRaw)*sim.Millisecond/10
		if a > b {
			a, b = b, a
		}
		return p.VoltageAt(k.Now().Add(a)) >= p.VoltageAt(k.Now().Add(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{VNominal: 0, Capacitance: 1, BleedOhms: 1},
		{VNominal: 5, Capacitance: 0, BleedOhms: 1},
		{VNominal: 5, Capacitance: 1, BleedOhms: 0},
		{VNominal: 5, Capacitance: 1, BleedOhms: 1, RiseTime: -1},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
}

func TestArduinoCommands(t *testing.T) {
	k := sim.New()
	p, _ := New(k, DefaultConfig())
	atx := NewATX(p)
	ard := NewArduino(k, DefaultSerialLatency, atx.SetPin16)

	if err := ard.Send(CmdCut); err != nil {
		t.Fatal(err)
	}
	if !p.On() {
		t.Fatal("cut took effect before serial latency")
	}
	k.RunFor(sim.Millisecond)
	if p.On() {
		t.Fatal("PSU still on after cut command")
	}
	if !ard.Pin13() || !atx.Pin16() {
		t.Fatal("pin levels wrong after cut")
	}
	if err := ard.Send(CmdRestore); err != nil {
		t.Fatal(err)
	}
	k.RunFor(sim.Millisecond)
	if !p.On() {
		t.Fatal("PSU off after restore command")
	}
	if ard.Commands() != 2 {
		t.Fatalf("commands = %d, want 2", ard.Commands())
	}
}

func TestArduinoUnknownCommand(t *testing.T) {
	k := sim.New()
	ard := NewArduino(k, 0, nil)
	if err := ard.Send('x'); err == nil {
		t.Fatal("unknown command accepted")
	}
}

func TestATXIdempotent(t *testing.T) {
	k := sim.New()
	p, _ := New(k, DefaultConfig())
	atx := NewATX(p)
	atx.SetPin16(true)
	atx.SetPin16(true)
	if p.Cuts() != 1 {
		t.Fatalf("cuts = %d, want 1", p.Cuts())
	}
}
