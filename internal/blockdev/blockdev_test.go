package blockdev

import (
	"errors"
	"testing"

	"powerfail/internal/addr"
	"powerfail/internal/blktrace"
	"powerfail/internal/content"
	"powerfail/internal/sim"
)

// fakeDevice is a scriptable in-memory device for block-layer tests.
type fakeDevice struct {
	k        *sim.Kernel
	latency  sim.Duration
	failAll  bool
	silent   bool // never answer (forces host timeout)
	pages    map[addr.LPN]content.Fingerprint
	maxInfly int
	infly    int
}

func newFake(k *sim.Kernel) *fakeDevice {
	return &fakeDevice{k: k, latency: 100 * sim.Microsecond, pages: make(map[addr.LPN]content.Fingerprint)}
}

func (d *fakeDevice) Submit(op Op, lpn addr.LPN, pages int, data content.Data, done func(error, content.Data)) {
	d.infly++
	if d.infly > d.maxInfly {
		d.maxInfly = d.infly
	}
	if d.silent {
		return // never completes
	}
	d.k.After(d.latency, func() {
		d.infly--
		if d.failAll {
			done(errors.New("fake device error"), content.Data{})
			return
		}
		switch op {
		case OpWrite:
			for i := 0; i < pages; i++ {
				d.pages[lpn+addr.LPN(i)] = data.Page(i)
			}
			done(nil, content.Data{})
		case OpRead:
			done(nil, content.Gather(pages, func(i int) content.Fingerprint {
				return d.pages[lpn+addr.LPN(i)]
			}))
		default:
			done(nil, content.Data{})
		}
	})
}

func harness(t *testing.T, cfg Config) (*sim.Kernel, *fakeDevice, *Queue, *blktrace.Tracer) {
	t.Helper()
	k := sim.New()
	dev := newFake(k)
	tr := blktrace.NewTracer()
	q, err := New(k, dev, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k, dev, q, tr
}

func TestWriteReadRoundTrip(t *testing.T) {
	k, _, q, _ := harness(t, DefaultConfig())
	r := sim.NewRNG(1)
	payload := content.Random(r, 300) // splits into 128+128+44
	var wrote, read bool
	q.Submit(&Request{Op: OpWrite, LPN: 1000, Pages: 300, Data: payload, Done: func(req *Request) {
		if req.Err != nil {
			t.Errorf("write err: %v", req.Err)
		}
		wrote = true
	}})
	k.Run()
	if !wrote {
		t.Fatal("write never completed")
	}
	q.Submit(&Request{Op: OpRead, LPN: 1000, Pages: 300, Done: func(req *Request) {
		if req.Err != nil {
			t.Errorf("read err: %v", req.Err)
		}
		if !req.Result.Equal(payload) {
			t.Error("read payload differs from written")
		}
		read = true
	}})
	k.Run()
	if !read {
		t.Fatal("read never completed")
	}
	if q.Stats().Splits != 4 {
		t.Fatalf("splits = %d, want 4 (2 per 300-page request)", q.Stats().Splits)
	}
}

func TestSplitBoundaries(t *testing.T) {
	k, _, q, tr := harness(t, DefaultConfig())
	q.Submit(&Request{Op: OpWrite, LPN: 0, Pages: 257, Data: content.Zeroes(257), Done: func(*Request) {}})
	k.Run()
	var subs []blktrace.Event
	for _, e := range tr.Events() {
		if e.Act == blktrace.ActSplit {
			subs = append(subs, e)
		}
	}
	if len(subs) != 3 {
		t.Fatalf("sub-requests = %d, want 3", len(subs))
	}
	if subs[0].Pages != 128 || subs[1].Pages != 128 || subs[2].Pages != 1 {
		t.Fatalf("split sizes wrong: %+v", subs)
	}
	if subs[1].LPN != 128 || subs[2].LPN != 256 {
		t.Fatalf("split offsets wrong: %+v", subs)
	}
}

func TestDepthRespected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Depth = 4
	k, dev, q, _ := harness(t, cfg)
	for i := 0; i < 20; i++ {
		q.Submit(&Request{Op: OpWrite, LPN: addr.LPN(i * 10), Pages: 1, Data: content.Zeroes(1), Done: func(*Request) {}})
	}
	k.Run()
	if dev.maxInfly > 4 {
		t.Fatalf("device saw %d in flight, depth is 4", dev.maxInfly)
	}
	if q.Stats().Completed != 20 {
		t.Fatalf("completed = %d", q.Stats().Completed)
	}
}

func TestQueueFullRejection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PendingCap = 2
	cfg.Depth = 1
	k, dev, q, tr := harness(t, cfg)
	dev.latency = 10 * sim.Millisecond
	rejected := 0
	for i := 0; i < 10; i++ {
		q.Submit(&Request{Op: OpWrite, LPN: addr.LPN(i), Pages: 1, Data: content.Zeroes(1), Done: func(req *Request) {
			if req.NotIssued {
				if req.Err != ErrQueueFull {
					t.Errorf("rejected with %v", req.Err)
				}
				rejected++
			}
		}})
	}
	k.Run()
	if rejected == 0 {
		t.Fatal("no rejections despite tiny queue")
	}
	if int(q.Stats().Rejected) != rejected {
		t.Fatalf("stats.Rejected=%d, callbacks=%d", q.Stats().Rejected, rejected)
	}
	sawReject := false
	for _, e := range tr.Events() {
		if e.Act == blktrace.ActReject {
			sawReject = true
		}
	}
	if !sawReject {
		t.Fatal("no reject trace event")
	}
}

func TestDeviceErrorPropagates(t *testing.T) {
	k, dev, q, tr := harness(t, DefaultConfig())
	dev.failAll = true
	var gotErr error
	q.Submit(&Request{Op: OpWrite, LPN: 0, Pages: 200, Data: content.Zeroes(200), Done: func(req *Request) {
		gotErr = req.Err
	}})
	k.Run()
	if gotErr == nil {
		t.Fatal("device error not surfaced")
	}
	errs := 0
	for _, e := range tr.Events() {
		if e.Act == blktrace.ActError {
			errs++
		}
	}
	if errs != 2 {
		t.Fatalf("error events = %d, want 2 (one per sub)", errs)
	}
	if q.Stats().Errored != 1 {
		t.Fatalf("stats errored = %d", q.Stats().Errored)
	}
}

func TestTimeout(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Timeout = 100 * sim.Millisecond
	k, dev, q, tr := harness(t, cfg)
	dev.silent = true
	var gotErr error
	done := false
	q.Submit(&Request{Op: OpWrite, LPN: 0, Pages: 1, Data: content.Zeroes(1), Done: func(req *Request) {
		gotErr = req.Err
		done = true
	}})
	k.Run()
	if !done || gotErr != ErrTimeout {
		t.Fatalf("timeout not delivered: done=%v err=%v", done, gotErr)
	}
	sawTimeout := false
	for _, e := range tr.Events() {
		if e.Act == blktrace.ActTimeout {
			sawTimeout = true
		}
	}
	if !sawTimeout {
		t.Fatal("no timeout trace event")
	}
	if k.Now() < sim.Time(100*sim.Millisecond) {
		t.Fatal("completed before the timeout deadline")
	}
}

func TestFlushRequest(t *testing.T) {
	k, _, q, _ := harness(t, DefaultConfig())
	done := false
	q.Submit(&Request{Op: OpFlush, Done: func(req *Request) {
		if req.Err != nil {
			t.Errorf("flush err: %v", req.Err)
		}
		done = true
	}})
	k.Run()
	if !done {
		t.Fatal("flush never completed")
	}
}

func TestTraceLifecycle(t *testing.T) {
	k, _, q, tr := harness(t, DefaultConfig())
	q.Submit(&Request{Op: OpWrite, LPN: 5, Pages: 1, Data: content.Zeroes(1), Done: func(*Request) {}})
	k.Run()
	var acts []blktrace.Action
	for _, e := range tr.Events() {
		acts = append(acts, e.Act)
	}
	want := []blktrace.Action{blktrace.ActQueue, blktrace.ActSplit, blktrace.ActDispatch, blktrace.ActComplete}
	if len(acts) != len(want) {
		t.Fatalf("events: %v", acts)
	}
	for i := range want {
		if acts[i] != want[i] {
			t.Fatalf("event %d = %c, want %c", i, acts[i], want[i])
		}
	}
}

func TestConfigValidation(t *testing.T) {
	k := sim.New()
	if _, err := New(k, newFake(k), nil, Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
	if _, err := New(k, nil, nil, DefaultConfig()); err == nil {
		t.Fatal("nil device accepted")
	}
}

func TestPanicsOnBadRequests(t *testing.T) {
	k, _, q, _ := harness(t, DefaultConfig())
	assertPanics(t, func() { q.Submit(&Request{Op: OpWrite, Pages: 0}) })
	assertPanics(t, func() { q.Submit(&Request{Op: OpWrite, Pages: 2, Data: content.Zeroes(1)}) })
	_ = k
}

func assertPanics(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

func TestOpStrings(t *testing.T) {
	if OpRead.String() != "read" || OpWrite.String() != "write" || OpFlush.String() != "flush" {
		t.Fatal("op strings wrong")
	}
}
