package blockdev

import (
	"testing"

	"powerfail/internal/addr"
	"powerfail/internal/content"
	"powerfail/internal/sim"
)

// benchDevice completes every sub-request after a fixed latency without
// allocating: completion records are pooled with their fire closure
// created once, mirroring the queue's own free-list discipline so the
// benchmark isolates the block layer's allocations.
type benchDevice struct {
	k    *sim.Kernel
	free []*benchDone
}

type benchDone struct {
	d    *benchDevice
	done func(error, content.Data)
	fn   func()
}

func (d *benchDevice) Submit(op Op, lpn addr.LPN, pages int, data content.Data, done func(err error, result content.Data)) {
	var r *benchDone
	if n := len(d.free); n > 0 {
		r, d.free = d.free[n-1], d.free[:n-1]
	} else {
		r = &benchDone{d: d}
		r.fn = func() {
			done := r.done
			r.done = nil
			r.d.free = append(r.d.free, r)
			done(nil, content.Data{})
		}
	}
	r.done = done
	d.k.After(50*sim.Microsecond, r.fn)
}

func nopDone(*Request) {}

// BenchmarkQueueSubmitComplete drives one pooled write request through
// submit → split → dispatch → complete per iteration; allocs/op is the
// figure of merit for the per-IO hot path.
func BenchmarkQueueSubmitComplete(b *testing.B) {
	k := sim.New()
	dev := &benchDevice{k: k}
	q, err := New(k, dev, nil, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	payload := content.Zeroes(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := q.NewRequest()
		req.Op = OpWrite
		req.LPN = addr.LPN((i % 1024) * 8)
		req.Pages = 8
		req.Data = payload
		req.Done = nopDone
		q.Submit(req)
		k.Run()
	}
}

// BenchmarkQueueSubmitCompleteSplit is the same path with a request large
// enough to split into multiple sub-requests.
func BenchmarkQueueSubmitCompleteSplit(b *testing.B) {
	k := sim.New()
	dev := &benchDevice{k: k}
	q, err := New(k, dev, nil, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	payload := content.Zeroes(300)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := q.NewRequest()
		req.Op = OpWrite
		req.LPN = addr.LPN((i % 64) * 300)
		req.Pages = 300
		req.Data = payload
		req.Done = nopDone
		q.Submit(req)
		k.Run()
	}
}
