// Package blockdev models the host side of the IO path: the operating
// system block layer between the paper's IO generator and the SSD. It
// splits large requests into sub-requests at a segment limit, dispatches
// them to the device under a bounded queue depth, records blktrace events
// for every state transition, aggregates sub-request completions, and
// enforces the 30 second request timeout the paper's analyzer uses to
// declare delayed requests incomplete.
//
// The queue is on the per-IO hot path of every experiment, so it is
// allocation-free in steady state: sub-requests are inline values in the
// parent request, the dispatch FIFO is a reusable ring of direct
// {request, index} entries (no per-sub map), device completion callbacks
// come from a free list of records with cached closures, and requests
// obtained from NewRequest are recycled through a per-queue free list.
// Queues are single-threaded (campaign parallelism is across
// experiments), so the free lists need no locking. Generation counters
// on recycled requests make stale dispatch entries and late device
// completions safely ignorable, replacing the old map-deletion protocol.
package blockdev

import (
	"errors"
	"fmt"

	"powerfail/internal/addr"
	"powerfail/internal/blktrace"
	"powerfail/internal/content"
	"powerfail/internal/sim"
)

// Op is the request direction.
type Op int

// Request operations.
const (
	OpRead Op = iota
	OpWrite
	OpFlush
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpFlush:
		return "flush"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

func (o Op) traceKind() blktrace.OpKind {
	switch o {
	case OpRead:
		return blktrace.OpRead
	case OpWrite:
		return blktrace.OpWrite
	default:
		return blktrace.OpFlush
	}
}

// Errors surfaced to request completion callbacks.
var (
	ErrQueueFull  = errors.New("blockdev: host queue full, request not issued")
	ErrTimeout    = errors.New("blockdev: request timed out")
	ErrDeviceGone = errors.New("blockdev: device unavailable")
)

// Request is one host IO. Fill Op, LPN, Pages and (for writes) Data, then
// Submit it; Done fires exactly once with the final state.
//
// Requests may be built directly (&Request{...}) or taken from the
// queue's free list with NewRequest. Pooled requests are recycled
// automatically after Done returns, so callers must not retain them (or
// their Result slice headers may be cleared; the page data itself is
// immutable and safe to keep).
type Request struct {
	ID    uint64
	Op    Op
	LPN   addr.LPN
	Pages int
	// Data is the write payload.
	Data content.Data
	// Result is the read payload, assembled from sub-request completions.
	Result content.Data
	// Control marks platform verification traffic that experiments must
	// not count as workload.
	Control bool

	Queued    sim.Time
	Completed sim.Time
	Err       error
	// NotIssued is set when the host queue rejected the request, the
	// "Not Issued?" flag of the paper's data packet header.
	NotIssued bool

	Done func(*Request)

	subs      []subRequest
	remaining int
	timeout   sim.Timer
	finished  bool

	// Pooling state. gen identifies the current occupancy of a recycled
	// request: dispatch entries and device callbacks carry the gen they
	// were created under and are ignored once it is stale. The closures
	// are allocated once per pooled request and reused for its lifetime.
	q         *Queue
	gen       uint32
	pooled    bool
	timeoutFn func()
	doneEv    func()
}

type subRequest struct {
	idx    int
	lpn    addr.LPN
	pages  int
	off    int // page offset within the parent
	done   bool
	result content.Data
}

// pendingSub is one dispatch-FIFO entry: a direct {request, sub index}
// pair plus the request generation it was queued under.
type pendingSub struct {
	r   *Request
	idx int
	gen uint32
}

// subCall is a pooled device-completion record. cb is created once,
// capturing the record; each dispatch refills r/idx/gen and hands the
// same closure to the device, so steady-state dispatch allocates nothing.
type subCall struct {
	q   *Queue
	r   *Request
	idx int
	gen uint32
	cb  func(err error, result content.Data)
}

// Device is the disk interface the block layer drives. Submit must invoke
// done exactly once at the simulated completion instant, with the read
// payload for reads. Devices are free to fail fast (unavailable) or never
// answer (dead mid-operation); the block layer's timeout covers the rest.
type Device interface {
	Submit(op Op, lpn addr.LPN, pages int, data content.Data, done func(err error, result content.Data))
}

// Drive is the full device contract the platform hangs behind the block
// layer: request submission plus identity, capacity and power-state
// signals. The SSD and HDD models implement it directly; internal/array
// composes several Drives into one (RAID levels, SSD cache over HDD).
type Drive interface {
	Device
	// Name identifies the device in reports ("A", "HDD", "raid5x4[A]").
	Name() string
	// UserPages is the host-visible capacity in 4 KiB pages.
	UserPages() int64
	// Ready reports whether the device currently answers the host.
	Ready() bool
	// NotifyReady registers fn to run every time the device transitions
	// back to answering the host after an outage.
	NotifyReady(fn func())
	// NotifyDown registers fn to run every time the host link drops.
	NotifyDown(fn func())
}

// Config tunes the block layer.
type Config struct {
	// MaxSegPages splits requests larger than this many pages.
	MaxSegPages int
	// Depth bounds sub-requests in flight at the device (NCQ depth).
	Depth int
	// PendingCap bounds requests waiting for dispatch; beyond it requests
	// are rejected as not-issued.
	PendingCap int
	// Timeout abandons requests that have not completed.
	Timeout sim.Duration
}

// DefaultConfig mirrors a stock Linux SATA setup: 512 KiB segments, NCQ 32,
// 30 s timeout.
func DefaultConfig() Config {
	return Config{MaxSegPages: 128, Depth: 32, PendingCap: 4096, Timeout: 30 * sim.Second}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.MaxSegPages <= 0 || c.Depth <= 0 || c.PendingCap <= 0 || c.Timeout <= 0 {
		return fmt.Errorf("blockdev: all config values must be positive: %+v", c)
	}
	return nil
}

// Stats counts block-layer activity.
type Stats struct {
	Submitted int64
	Rejected  int64
	Completed int64
	Errored   int64
	TimedOut  int64
	Splits    int64
}

// Queue is the host block layer instance.
type Queue struct {
	k      *sim.Kernel
	dev    Device
	tracer *blktrace.Tracer
	cfg    Config

	nextID   uint64
	pending  []pendingSub // dispatch FIFO: live entries are pending[pendHead:]
	pendHead int
	inflight int
	stats    Stats
	obs      queueObs

	reqFree  []*Request
	callFree []*subCall
}

// New builds a block layer over dev, recording events into tracer (which
// may be nil to disable tracing).
func New(k *sim.Kernel, dev Device, tracer *blktrace.Tracer, cfg Config) (*Queue, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if dev == nil {
		return nil, errors.New("blockdev: nil device")
	}
	return &Queue{k: k, dev: dev, tracer: tracer, cfg: cfg}, nil
}

// Stats returns a snapshot of the counters.
func (q *Queue) Stats() Stats { return q.stats }

// Inflight returns sub-requests currently at the device.
func (q *Queue) Inflight() int { return q.inflight }

// PendingSubs returns sub-requests waiting for dispatch.
func (q *Queue) PendingSubs() int { return len(q.pending) - q.pendHead }

// NewRequest returns a zeroed request from the queue's free list,
// allocating one with cached callback closures on a miss. The request
// must be submitted to this queue with a non-nil Done; it is recycled
// automatically after Done returns.
func (q *Queue) NewRequest() *Request {
	if n := len(q.reqFree); n > 0 {
		r := q.reqFree[n-1]
		q.reqFree = q.reqFree[:n-1]
		return r
	}
	r := &Request{q: q, pooled: true}
	r.timeoutFn = func() { r.q.onTimeout(r) }
	r.doneEv = func() {
		r.Done(r)
		r.q.release(r)
	}
	return r
}

// release recycles a pooled request. Advancing gen first makes every
// outstanding reference (pending ring entries after a timeout, late
// device completions) stale before the fields are cleared.
func (q *Queue) release(r *Request) {
	gen := r.gen + 1
	for i := range r.subs {
		r.subs[i] = subRequest{}
	}
	subs := r.subs[:0]
	*r = Request{q: q, pooled: true, gen: gen, subs: subs, timeoutFn: r.timeoutFn, doneEv: r.doneEv}
	q.reqFree = append(q.reqFree, r)
}

func (q *Queue) trace(e blktrace.Event) {
	if q.tracer != nil {
		q.tracer.Record(e)
	}
}

// Submit queues a request. The request's Done callback fires exactly once;
// rejected requests complete immediately with ErrQueueFull and NotIssued
// set.
func (q *Queue) Submit(r *Request) {
	if r.Op != OpFlush && r.Pages <= 0 {
		panic("blockdev: request with no pages")
	}
	if r.Op == OpWrite && r.Data.Pages() != r.Pages {
		panic("blockdev: write payload size mismatch")
	}
	q.nextID++
	r.ID = q.nextID
	r.Queued = q.k.Now()
	q.stats.Submitted++
	q.obs.submitted.Inc()
	kind := r.Op.traceKind()
	if q.PendingSubs() >= q.cfg.PendingCap {
		r.NotIssued = true
		r.Err = ErrQueueFull
		q.stats.Rejected++
		q.obs.rejected.Inc()
		q.trace(blktrace.Event{At: q.k.Now(), Act: blktrace.ActReject, Op: kind, Req: r.ID, Sub: -1, LPN: r.LPN, Pages: r.Pages})
		q.finish(r)
		return
	}
	q.trace(blktrace.Event{At: q.k.Now(), Act: blktrace.ActQueue, Op: kind, Req: r.ID, Sub: -1, LPN: r.LPN, Pages: r.Pages})
	q.split(r)
	for i := range r.subs {
		s := &r.subs[i]
		q.trace(blktrace.Event{At: q.k.Now(), Act: blktrace.ActSplit, Op: kind, Req: r.ID, Sub: s.idx, LPN: s.lpn, Pages: s.pages})
		q.pending = append(q.pending, pendingSub{r: r, idx: i, gen: r.gen})
	}
	r.remaining = len(r.subs)
	if r.pooled {
		r.timeout = q.k.After(q.cfg.Timeout, r.timeoutFn)
	} else {
		r.timeout = q.k.After(q.cfg.Timeout, func() { q.onTimeout(r) })
	}
	q.pump()
}

func (q *Queue) split(r *Request) {
	r.subs = r.subs[:0]
	if r.Op == OpFlush {
		r.subs = append(r.subs, subRequest{idx: 0, lpn: r.LPN, pages: 0})
		return
	}
	seg := q.cfg.MaxSegPages
	for off := 0; off < r.Pages; off += seg {
		n := r.Pages - off
		if n > seg {
			n = seg
		}
		r.subs = append(r.subs, subRequest{idx: len(r.subs), lpn: r.LPN + addr.LPN(off), pages: n, off: off})
	}
	if len(r.subs) > 1 {
		q.stats.Splits += int64(len(r.subs) - 1)
		q.obs.splits.Add(int64(len(r.subs) - 1))
	}
}

// popPending removes and returns the FIFO head. The consumed prefix is
// compacted away once it dominates the slice, so the ring's backing array
// reaches a steady size and then stops allocating.
func (q *Queue) popPending() pendingSub {
	e := q.pending[q.pendHead]
	q.pending[q.pendHead] = pendingSub{}
	q.pendHead++
	if q.pendHead == len(q.pending) {
		q.pending = q.pending[:0]
		q.pendHead = 0
	} else if q.pendHead >= 256 && q.pendHead*2 >= len(q.pending) {
		n := copy(q.pending, q.pending[q.pendHead:])
		for i := n; i < len(q.pending); i++ {
			q.pending[i] = pendingSub{}
		}
		q.pending = q.pending[:n]
		q.pendHead = 0
	}
	return e
}

// getCall pops (or allocates) a completion record aimed at sub idx of r.
func (q *Queue) getCall(r *Request, idx int) *subCall {
	var c *subCall
	if n := len(q.callFree); n > 0 {
		c = q.callFree[n-1]
		q.callFree = q.callFree[:n-1]
	} else {
		c = &subCall{q: q}
		c.cb = func(err error, result content.Data) {
			r, idx, gen := c.r, c.idx, c.gen
			c.r = nil
			c.q.callFree = append(c.q.callFree, c)
			c.q.onSubDone(r, idx, gen, err, result)
		}
	}
	c.r, c.idx, c.gen = r, idx, r.gen
	return c
}

func (q *Queue) pump() {
	for q.inflight < q.cfg.Depth && q.pendHead < len(q.pending) {
		e := q.popPending()
		r := e.r
		if r.gen != e.gen || r.finished {
			continue // request timed out (or was recycled) while queued
		}
		s := &r.subs[e.idx]
		q.inflight++
		kind := r.Op.traceKind()
		q.trace(blktrace.Event{At: q.k.Now(), Act: blktrace.ActDispatch, Op: kind, Req: r.ID, Sub: s.idx, LPN: s.lpn, Pages: s.pages})
		var payload content.Data
		if r.Op == OpWrite {
			payload = r.Data.Slice(s.off, s.pages)
		}
		c := q.getCall(r, e.idx)
		q.dev.Submit(r.Op, s.lpn, s.pages, payload, c.cb)
	}
	q.obsSampleDepth()
}

func (q *Queue) onSubDone(r *Request, idx int, gen uint32, err error, result content.Data) {
	q.inflight--
	defer q.pump()
	if r.gen != gen || r.finished {
		return // stale completion after timeout (or recycle)
	}
	s := &r.subs[idx]
	if s.done {
		return
	}
	s.done = true
	kind := r.Op.traceKind()
	if err != nil {
		q.trace(blktrace.Event{At: q.k.Now(), Act: blktrace.ActError, Op: kind, Req: r.ID, Sub: s.idx, LPN: s.lpn, Pages: s.pages})
		if r.Err == nil {
			r.Err = err
		}
	} else {
		q.trace(blktrace.Event{At: q.k.Now(), Act: blktrace.ActComplete, Op: kind, Req: r.ID, Sub: s.idx, LPN: s.lpn, Pages: s.pages})
		s.result = result
	}
	r.remaining--
	if r.remaining > 0 {
		return
	}
	r.timeout.Stop()
	if r.Op == OpRead && r.Err == nil {
		if len(r.subs) == 1 {
			// Unsplit read: the device's payload is the result. Data is
			// immutable, so sharing it is safe.
			r.Result = r.subs[0].result
		} else {
			r.Result = content.Gather(r.Pages, func(i int) content.Fingerprint {
				for j := range r.subs {
					sub := &r.subs[j]
					if i >= sub.off && i < sub.off+sub.pages {
						return sub.result.Page(i - sub.off)
					}
				}
				return content.Zero
			})
		}
	}
	if r.Err != nil {
		q.stats.Errored++
	} else {
		q.stats.Completed++
	}
	q.obsDone(r)
	q.finish(r)
}

func (q *Queue) onTimeout(r *Request) {
	if r.finished {
		return
	}
	q.stats.TimedOut++
	q.obs.timedOut.Inc()
	r.Err = ErrTimeout
	q.trace(blktrace.Event{At: q.k.Now(), Act: blktrace.ActTimeout, Op: r.Op.traceKind(), Req: r.ID, Sub: -1, LPN: r.LPN, Pages: r.Pages})
	// Outstanding subs are abandoned implicitly: pending ring entries and
	// late device completions both check finished (and gen, once the
	// request is recycled).
	q.finish(r)
}

func (q *Queue) finish(r *Request) {
	if r.finished {
		return
	}
	r.finished = true
	r.Completed = q.k.Now()
	if r.Done != nil {
		// Completion callbacks run as their own event so that device
		// callback stacks unwind first.
		if r.pooled {
			q.k.After(0, r.doneEv)
		} else {
			q.k.After(0, func() { r.Done(r) })
		}
	}
}
