// Package blockdev models the host side of the IO path: the operating
// system block layer between the paper's IO generator and the SSD. It
// splits large requests into sub-requests at a segment limit, dispatches
// them to the device under a bounded queue depth, records blktrace events
// for every state transition, aggregates sub-request completions, and
// enforces the 30 second request timeout the paper's analyzer uses to
// declare delayed requests incomplete.
package blockdev

import (
	"errors"
	"fmt"

	"powerfail/internal/addr"
	"powerfail/internal/blktrace"
	"powerfail/internal/content"
	"powerfail/internal/sim"
)

// Op is the request direction.
type Op int

// Request operations.
const (
	OpRead Op = iota
	OpWrite
	OpFlush
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpFlush:
		return "flush"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

func (o Op) traceKind() blktrace.OpKind {
	switch o {
	case OpRead:
		return blktrace.OpRead
	case OpWrite:
		return blktrace.OpWrite
	default:
		return blktrace.OpFlush
	}
}

// Errors surfaced to request completion callbacks.
var (
	ErrQueueFull  = errors.New("blockdev: host queue full, request not issued")
	ErrTimeout    = errors.New("blockdev: request timed out")
	ErrDeviceGone = errors.New("blockdev: device unavailable")
)

// Request is one host IO. Fill Op, LPN, Pages and (for writes) Data, then
// Submit it; Done fires exactly once with the final state.
type Request struct {
	ID    uint64
	Op    Op
	LPN   addr.LPN
	Pages int
	// Data is the write payload.
	Data content.Data
	// Result is the read payload, assembled from sub-request completions.
	Result content.Data
	// Control marks platform verification traffic that experiments must
	// not count as workload.
	Control bool

	Queued    sim.Time
	Completed sim.Time
	Err       error
	// NotIssued is set when the host queue rejected the request, the
	// "Not Issued?" flag of the paper's data packet header.
	NotIssued bool

	Done func(*Request)

	subs      []*subRequest
	remaining int
	timeout   *sim.Timer
	finished  bool
}

type subRequest struct {
	idx    int
	lpn    addr.LPN
	pages  int
	off    int // page offset within the parent
	done   bool
	result content.Data
}

// Device is the disk interface the block layer drives. Submit must invoke
// done exactly once at the simulated completion instant, with the read
// payload for reads. Devices are free to fail fast (unavailable) or never
// answer (dead mid-operation); the block layer's timeout covers the rest.
type Device interface {
	Submit(op Op, lpn addr.LPN, pages int, data content.Data, done func(err error, result content.Data))
}

// Drive is the full device contract the platform hangs behind the block
// layer: request submission plus identity, capacity and power-state
// signals. The SSD and HDD models implement it directly; internal/array
// composes several Drives into one (RAID levels, SSD cache over HDD).
type Drive interface {
	Device
	// Name identifies the device in reports ("A", "HDD", "raid5x4[A]").
	Name() string
	// UserPages is the host-visible capacity in 4 KiB pages.
	UserPages() int64
	// Ready reports whether the device currently answers the host.
	Ready() bool
	// NotifyReady registers fn to run every time the device transitions
	// back to answering the host after an outage.
	NotifyReady(fn func())
	// NotifyDown registers fn to run every time the host link drops.
	NotifyDown(fn func())
}

// Config tunes the block layer.
type Config struct {
	// MaxSegPages splits requests larger than this many pages.
	MaxSegPages int
	// Depth bounds sub-requests in flight at the device (NCQ depth).
	Depth int
	// PendingCap bounds requests waiting for dispatch; beyond it requests
	// are rejected as not-issued.
	PendingCap int
	// Timeout abandons requests that have not completed.
	Timeout sim.Duration
}

// DefaultConfig mirrors a stock Linux SATA setup: 512 KiB segments, NCQ 32,
// 30 s timeout.
func DefaultConfig() Config {
	return Config{MaxSegPages: 128, Depth: 32, PendingCap: 4096, Timeout: 30 * sim.Second}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.MaxSegPages <= 0 || c.Depth <= 0 || c.PendingCap <= 0 || c.Timeout <= 0 {
		return fmt.Errorf("blockdev: all config values must be positive: %+v", c)
	}
	return nil
}

// Stats counts block-layer activity.
type Stats struct {
	Submitted int64
	Rejected  int64
	Completed int64
	Errored   int64
	TimedOut  int64
	Splits    int64
}

// Queue is the host block layer instance.
type Queue struct {
	k      *sim.Kernel
	dev    Device
	tracer *blktrace.Tracer
	cfg    Config

	nextID   uint64
	pending  []*subRequest // dispatch FIFO
	byIdx    map[*subRequest]*Request
	inflight int
	stats    Stats
	obs      queueObs
}

// New builds a block layer over dev, recording events into tracer (which
// may be nil to disable tracing).
func New(k *sim.Kernel, dev Device, tracer *blktrace.Tracer, cfg Config) (*Queue, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if dev == nil {
		return nil, errors.New("blockdev: nil device")
	}
	return &Queue{k: k, dev: dev, tracer: tracer, cfg: cfg, byIdx: make(map[*subRequest]*Request)}, nil
}

// Stats returns a snapshot of the counters.
func (q *Queue) Stats() Stats { return q.stats }

// Inflight returns sub-requests currently at the device.
func (q *Queue) Inflight() int { return q.inflight }

// PendingSubs returns sub-requests waiting for dispatch.
func (q *Queue) PendingSubs() int { return len(q.pending) }

func (q *Queue) trace(e blktrace.Event) {
	if q.tracer != nil {
		q.tracer.Record(e)
	}
}

// Submit queues a request. The request's Done callback fires exactly once;
// rejected requests complete immediately with ErrQueueFull and NotIssued
// set.
func (q *Queue) Submit(r *Request) {
	if r.Op != OpFlush && r.Pages <= 0 {
		panic("blockdev: request with no pages")
	}
	if r.Op == OpWrite && r.Data.Pages() != r.Pages {
		panic("blockdev: write payload size mismatch")
	}
	q.nextID++
	r.ID = q.nextID
	r.Queued = q.k.Now()
	q.stats.Submitted++
	q.obs.submitted.Inc()
	kind := r.Op.traceKind()
	if len(q.pending) >= q.cfg.PendingCap {
		r.NotIssued = true
		r.Err = ErrQueueFull
		q.stats.Rejected++
		q.obs.rejected.Inc()
		q.trace(blktrace.Event{At: q.k.Now(), Act: blktrace.ActReject, Op: kind, Req: r.ID, Sub: -1, LPN: r.LPN, Pages: r.Pages})
		q.finish(r)
		return
	}
	q.trace(blktrace.Event{At: q.k.Now(), Act: blktrace.ActQueue, Op: kind, Req: r.ID, Sub: -1, LPN: r.LPN, Pages: r.Pages})
	q.split(r)
	for _, s := range r.subs {
		q.trace(blktrace.Event{At: q.k.Now(), Act: blktrace.ActSplit, Op: kind, Req: r.ID, Sub: s.idx, LPN: s.lpn, Pages: s.pages})
		q.pending = append(q.pending, s)
		q.byIdx[s] = r
	}
	r.remaining = len(r.subs)
	r.timeout = q.k.After(q.cfg.Timeout, func() { q.onTimeout(r) })
	q.pump()
}

func (q *Queue) split(r *Request) {
	if r.Op == OpFlush {
		r.subs = []*subRequest{{idx: 0, lpn: r.LPN, pages: 0}}
		return
	}
	seg := q.cfg.MaxSegPages
	for off := 0; off < r.Pages; off += seg {
		n := r.Pages - off
		if n > seg {
			n = seg
		}
		r.subs = append(r.subs, &subRequest{idx: len(r.subs), lpn: r.LPN + addr.LPN(off), pages: n, off: off})
	}
	if len(r.subs) > 1 {
		q.stats.Splits += int64(len(r.subs) - 1)
		q.obs.splits.Add(int64(len(r.subs) - 1))
	}
}

func (q *Queue) pump() {
	for q.inflight < q.cfg.Depth && len(q.pending) > 0 {
		s := q.pending[0]
		q.pending = q.pending[1:]
		r, ok := q.byIdx[s]
		if !ok || r.finished {
			continue
		}
		q.inflight++
		kind := r.Op.traceKind()
		q.trace(blktrace.Event{At: q.k.Now(), Act: blktrace.ActDispatch, Op: kind, Req: r.ID, Sub: s.idx, LPN: s.lpn, Pages: s.pages})
		var payload content.Data
		if r.Op == OpWrite {
			payload = r.Data.Slice(s.off, s.pages)
		}
		sub := s
		q.dev.Submit(r.Op, s.lpn, s.pages, payload, func(err error, result content.Data) {
			q.onSubDone(r, sub, err, result)
		})
	}
	q.obsSampleDepth()
}

func (q *Queue) onSubDone(r *Request, s *subRequest, err error, result content.Data) {
	q.inflight--
	defer q.pump()
	if r.finished || s.done {
		return // stale completion after timeout
	}
	s.done = true
	delete(q.byIdx, s)
	kind := r.Op.traceKind()
	if err != nil {
		q.trace(blktrace.Event{At: q.k.Now(), Act: blktrace.ActError, Op: kind, Req: r.ID, Sub: s.idx, LPN: s.lpn, Pages: s.pages})
		if r.Err == nil {
			r.Err = err
		}
	} else {
		q.trace(blktrace.Event{At: q.k.Now(), Act: blktrace.ActComplete, Op: kind, Req: r.ID, Sub: s.idx, LPN: s.lpn, Pages: s.pages})
		s.result = result
	}
	r.remaining--
	if r.remaining > 0 {
		return
	}
	if r.timeout != nil {
		r.timeout.Stop()
	}
	if r.Op == OpRead && r.Err == nil {
		r.Result = content.Gather(r.Pages, func(i int) content.Fingerprint {
			for _, sub := range r.subs {
				if i >= sub.off && i < sub.off+sub.pages {
					return sub.result.Page(i - sub.off)
				}
			}
			return content.Zero
		})
	}
	if r.Err != nil {
		q.stats.Errored++
	} else {
		q.stats.Completed++
	}
	q.obsDone(r)
	q.finish(r)
}

func (q *Queue) onTimeout(r *Request) {
	if r.finished {
		return
	}
	q.stats.TimedOut++
	q.obs.timedOut.Inc()
	r.Err = ErrTimeout
	q.trace(blktrace.Event{At: q.k.Now(), Act: blktrace.ActTimeout, Op: r.Op.traceKind(), Req: r.ID, Sub: -1, LPN: r.LPN, Pages: r.Pages})
	// Abandon outstanding subs: drop pending ones and ignore late
	// completions (onSubDone checks finished).
	for _, s := range r.subs {
		if !s.done {
			delete(q.byIdx, s)
		}
	}
	q.finish(r)
}

func (q *Queue) finish(r *Request) {
	if r.finished {
		return
	}
	r.finished = true
	r.Completed = q.k.Now()
	if r.Done != nil {
		// Completion callbacks run as their own event so that device
		// callback stacks unwind first.
		q.k.After(0, func() { r.Done(r) })
	}
}
