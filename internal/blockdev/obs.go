package blockdev

import (
	"powerfail/internal/obs"
)

// queueObs holds one Queue's observability handles. The zero value is
// the disabled state: every handle is nil and nil handles no-op, so the
// hot path pays one nil check when observability is off.
type queueObs struct {
	sc        obs.Scope
	submitted *obs.Counter
	rejected  *obs.Counter
	completed *obs.Counter
	errored   *obs.Counter
	timedOut  *obs.Counter
	splits    *obs.Counter
	inflight  *obs.Gauge
	q2cRead   *obs.Histogram
	q2cWrite  *obs.Histogram
	q2cFlush  *obs.Histogram
	q2cCtrl   *obs.Histogram
	lastDepth int
	sampled   bool
}

// Observe attaches the queue to an observability scope. Handles are
// resolved once here; several queues observing into the same scope (the
// fleet's member queues) share metrics by name. A disabled scope is a
// no-op.
func (q *Queue) Observe(sc obs.Scope) {
	if !sc.Enabled() {
		return
	}
	q.obs = queueObs{
		sc:        sc,
		submitted: sc.Counter("submitted"),
		rejected:  sc.Counter("rejected"),
		completed: sc.Counter("completed"),
		errored:   sc.Counter("errored"),
		timedOut:  sc.Counter("timed_out"),
		splits:    sc.Counter("splits"),
		inflight:  sc.Gauge("inflight"),
		q2cRead:   sc.Histogram("q2c_read_ns"),
		q2cWrite:  sc.Histogram("q2c_write_ns"),
		q2cFlush:  sc.Histogram("q2c_flush_ns"),
		q2cCtrl:   sc.Histogram("q2c_control_ns"),
	}
}

// obsSampleDepth records the device-inflight depth when it changed since
// the last sample: a gauge point always, a trace event when tracing is
// on.
func (q *Queue) obsSampleDepth() {
	o := &q.obs
	if o.inflight == nil && !o.sc.TracingOn() {
		return
	}
	if o.sampled && q.inflight == o.lastDepth {
		return
	}
	o.sampled = true
	o.lastDepth = q.inflight
	o.inflight.Set(int64(q.inflight))
	o.sc.Instant(q.k.Now(), obs.KindQueueDepth, "inflight", int64(q.inflight))
}

// obsDone records the queue-to-complete latency of a finished request.
// Control (verification) traffic gets its own histogram so workload
// latency quantiles stay clean.
func (q *Queue) obsDone(r *Request) {
	o := &q.obs
	if o.completed == nil {
		return
	}
	if r.Err != nil {
		o.errored.Inc()
		return
	}
	o.completed.Inc()
	d := int64(q.k.Now().Sub(r.Queued))
	switch {
	case r.Control:
		o.q2cCtrl.Observe(d)
	case r.Op == OpRead:
		o.q2cRead.Observe(d)
	case r.Op == OpWrite:
		o.q2cWrite.Observe(d)
	default:
		o.q2cFlush.Observe(d)
	}
}
