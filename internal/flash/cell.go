package flash

import (
	"fmt"

	"powerfail/internal/sim"
)

// CellKind is the number of bits stored per flash cell.
type CellKind int

// Supported cell technologies. The paper's drives are MLC (SSDs A and C)
// and TLC (SSD B); QLC extends the scale past the paper's rig for the
// heterogeneous-array experiments, where one denser, more fragile member
// dominates an erasure-coded array's failure profile.
const (
	SLC CellKind = iota + 1
	MLC
	TLC
	QLC
)

// String implements fmt.Stringer.
func (c CellKind) String() string {
	switch c {
	case SLC:
		return "SLC"
	case MLC:
		return "MLC"
	case TLC:
		return "TLC"
	case QLC:
		return "QLC"
	default:
		return fmt.Sprintf("CellKind(%d)", int(c))
	}
}

// BitsPerCell returns the bits stored in one cell.
func (c CellKind) BitsPerCell() int { return int(c) }

// Valid reports whether c is a known technology.
func (c CellKind) Valid() bool { return c >= SLC && c <= QLC }

// ProgramSteps is the number of incremental step pulse programming (ISPP)
// iterations a full page program performs. A power cut lands between
// iterations; the later it lands, the closer the cell distributions are to
// their targets and the more likely ECC can still rescue the page.
func (c CellKind) ProgramSteps() int {
	switch c {
	case SLC:
		return 2
	case MLC:
		return 8
	case TLC:
		return 16
	case QLC:
		return 32
	default:
		return 8
	}
}

// PairedLowerPages returns the in-block page indices whose cells are shared
// with the given page and were programmed earlier. Programming (or
// interrupting a program of) the given page can disturb these pages. The
// stride model is a simplification of real shared-page maps: MLC pairs
// page p with p-4, TLC groups p with p-3 and p-6.
func (c CellKind) PairedLowerPages(page int) []int {
	switch c {
	case MLC:
		if page >= 4 {
			return []int{page - 4}
		}
	case TLC:
		var out []int
		if page >= 3 {
			out = append(out, page-3)
		}
		if page >= 6 {
			out = append(out, page-6)
		}
		return out
	case QLC:
		var out []int
		for _, d := range []int{2, 4, 6} {
			if page >= d {
				out = append(out, page-d)
			}
		}
		return out
	}
	return nil
}

// PairCorruptProb is the peak probability that an interrupted program of an
// upper page corrupts one of its paired lower pages. TLC's tighter voltage
// margins make it more fragile.
func (c CellKind) PairCorruptProb() float64 {
	switch c {
	case SLC:
		return 0
	case MLC:
		return 0.45
	case TLC:
		return 0.65
	case QLC:
		return 0.8
	default:
		return 0.45
	}
}

// Timing gives the nominal latencies of the three NAND operations.
type Timing struct {
	ReadPage    sim.Duration
	ProgramPage sim.Duration
	EraseBlock  sim.Duration
}

// TimingFor returns datasheet-flavoured latencies for the cell technology.
func TimingFor(c CellKind) Timing {
	switch c {
	case SLC:
		return Timing{ReadPage: 25 * sim.Microsecond, ProgramPage: 300 * sim.Microsecond, EraseBlock: 2 * sim.Millisecond}
	case TLC:
		return Timing{ReadPage: 90 * sim.Microsecond, ProgramPage: 2200 * sim.Microsecond, EraseBlock: 5 * sim.Millisecond}
	case QLC:
		return Timing{ReadPage: 140 * sim.Microsecond, ProgramPage: 3500 * sim.Microsecond, EraseBlock: 8 * sim.Millisecond}
	default: // MLC
		return Timing{ReadPage: 60 * sim.Microsecond, ProgramPage: 900 * sim.Microsecond, EraseBlock: 3500 * sim.Microsecond}
	}
}

// Validate checks timing sanity.
func (t Timing) Validate() error {
	if t.ReadPage <= 0 || t.ProgramPage <= 0 || t.EraseBlock <= 0 {
		return fmt.Errorf("flash: timing values must be positive: %+v", t)
	}
	return nil
}

// ECCConfig models the controller's per-page error correction strength.
type ECCConfig struct {
	// Scheme is a label such as "BCH" or "LDPC"; informational.
	Scheme string
	// CorrectPerKB is the number of raw bit errors correctable per 1 KiB
	// codeword. Typical values: BCH ~40, LDPC ~100.
	CorrectPerKB int
}

// CorrectPerPage returns the total correctable bits across the page's
// codewords. This approximates per-codeword budgets at page granularity,
// which is accurate enough for failure-rate modelling and documented in
// DESIGN.md.
func (e ECCConfig) CorrectPerPage() int {
	return e.CorrectPerKB * (4096 / 1024)
}

// Validate checks the ECC configuration.
func (e ECCConfig) Validate() error {
	if e.CorrectPerKB < 0 {
		return fmt.Errorf("flash: ECC CorrectPerKB must be non-negative, got %d", e.CorrectPerKB)
	}
	return nil
}
