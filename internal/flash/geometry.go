// Package flash models a raw NAND flash array at the level of detail the
// paper's failure modes require: pages programmed by iterative ISPP pulses
// that a power cut can interrupt mid-way, multi-level cells whose upper
// page program can corrupt a previously written paired lower page, erase
// operations long enough to be interrupted, per-page ECC of configurable
// strength (BCH/LDPC), and wear-dependent raw bit error rates.
//
// The chip mutates state synchronously; the SSD controller (internal/ssd)
// owns all timing and calls Program/ProgramPartial/Erase/ErasePartial at
// the simulated instants the operations complete or are interrupted.
package flash

import (
	"fmt"

	"powerfail/internal/addr"
)

// Geometry describes the physical array layout. PPNs are linear:
// ppn = block*PagesPerBlock + page, with blocks striped across dies and
// planes by the FTL's allocation policy.
type Geometry struct {
	Dies           int
	PlanesPerDie   int
	BlocksPerPlane int
	PagesPerBlock  int
}

// Validate checks that every dimension is positive.
func (g Geometry) Validate() error {
	if g.Dies <= 0 || g.PlanesPerDie <= 0 || g.BlocksPerPlane <= 0 || g.PagesPerBlock <= 0 {
		return fmt.Errorf("flash: geometry dimensions must be positive: %+v", g)
	}
	return nil
}

// Blocks returns the total number of erase blocks.
func (g Geometry) Blocks() int { return g.Dies * g.PlanesPerDie * g.BlocksPerPlane }

// Pages returns the total number of physical pages.
func (g Geometry) Pages() int64 { return int64(g.Blocks()) * int64(g.PagesPerBlock) }

// CapacityBytes returns the raw array capacity.
func (g Geometry) CapacityBytes() int64 { return g.Pages() * addr.PageBytes }

// BlockBytes returns the size of one erase block.
func (g Geometry) BlockBytes() int64 { return int64(g.PagesPerBlock) * addr.PageBytes }

// BlockOf returns the erase block containing ppn.
func (g Geometry) BlockOf(p addr.PPN) int { return int(int64(p) / int64(g.PagesPerBlock)) }

// PageOf returns the page index of ppn within its block.
func (g Geometry) PageOf(p addr.PPN) int { return int(int64(p) % int64(g.PagesPerBlock)) }

// PPNOf composes a physical page number from block and in-block page index.
func (g Geometry) PPNOf(block, page int) addr.PPN {
	return addr.PPN(int64(block)*int64(g.PagesPerBlock) + int64(page))
}

// DieOf returns the die owning the block. Blocks are laid out die-major so
// that consecutive block numbers rotate across dies, which is what lets the
// FTL stripe active blocks over independent channels.
func (g Geometry) DieOf(block int) int { return block % g.Dies }

// Contains reports whether ppn addresses a real page.
func (g Geometry) Contains(p addr.PPN) bool {
	return p >= 0 && int64(p) < g.Pages()
}

// String implements fmt.Stringer.
func (g Geometry) String() string {
	return fmt.Sprintf("%dd x %dpl x %dblk x %dpg (%.1f GiB)",
		g.Dies, g.PlanesPerDie, g.BlocksPerPlane, g.PagesPerBlock,
		float64(g.CapacityBytes())/(1<<30))
}

// GeometryForCapacity derives a geometry with the requested usable capacity
// plus overprovisioning, given dies and pages per block. The block count is
// rounded up so the array always holds at least the requested bytes.
func GeometryForCapacity(bytes int64, overprovisionPct int, dies, planes, pagesPerBlock int) Geometry {
	if dies <= 0 {
		dies = 8
	}
	if planes <= 0 {
		planes = 2
	}
	if pagesPerBlock <= 0 {
		pagesPerBlock = 256
	}
	total := bytes + bytes*int64(overprovisionPct)/100
	blockBytes := int64(pagesPerBlock) * addr.PageBytes
	blocks := (total + blockBytes - 1) / blockBytes
	perPlane := (blocks + int64(dies*planes) - 1) / int64(dies*planes)
	if perPlane < 4 {
		perPlane = 4
	}
	return Geometry{
		Dies:           dies,
		PlanesPerDie:   planes,
		BlocksPerPlane: int(perPlane),
		PagesPerBlock:  pagesPerBlock,
	}
}
