package flash

import (
	"testing"
	"testing/quick"

	"powerfail/internal/addr"
	"powerfail/internal/content"
	"powerfail/internal/sim"
)

func testChip(t *testing.T, mutate func(*Config)) *Chip {
	t.Helper()
	cfg := Config{
		Geometry:        Geometry{Dies: 2, PlanesPerDie: 2, BlocksPerPlane: 8, PagesPerBlock: 16},
		Cell:            MLC,
		Timing:          TimingFor(MLC),
		ECC:             ECCConfig{Scheme: "BCH", CorrectPerKB: 40},
		BaseBER:         0, // deterministic unless a test opts in
		WearBERMult:     4,
		EnduranceCycles: 3000,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGeometryMath(t *testing.T) {
	g := Geometry{Dies: 2, PlanesPerDie: 2, BlocksPerPlane: 8, PagesPerBlock: 16}
	if g.Blocks() != 32 || g.Pages() != 512 {
		t.Fatalf("blocks=%d pages=%d", g.Blocks(), g.Pages())
	}
	if g.CapacityBytes() != 512*addr.PageBytes {
		t.Fatal("capacity wrong")
	}
	p := g.PPNOf(5, 7)
	if g.BlockOf(p) != 5 || g.PageOf(p) != 7 {
		t.Fatal("PPN round trip failed")
	}
	if !g.Contains(p) || g.Contains(addr.PPN(g.Pages())) || g.Contains(-1) {
		t.Fatal("Contains wrong")
	}
}

func TestQuickGeometryRoundTrip(t *testing.T) {
	g := Geometry{Dies: 4, PlanesPerDie: 2, BlocksPerPlane: 100, PagesPerBlock: 64}
	f := func(bRaw, pRaw uint16) bool {
		b := int(bRaw) % g.Blocks()
		p := int(pRaw) % g.PagesPerBlock
		ppn := g.PPNOf(b, p)
		return g.BlockOf(ppn) == b && g.PageOf(ppn) == p && g.Contains(ppn)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestGeometryForCapacity(t *testing.T) {
	g := GeometryForCapacity(1<<30, 9, 4, 2, 128)
	if g.CapacityBytes() < (1<<30)+(1<<30)*9/100 {
		t.Fatalf("derived geometry too small: %s", g)
	}
	if g.Validate() != nil {
		t.Fatal("derived geometry invalid")
	}
}

func TestProgramReadRoundTrip(t *testing.T) {
	c := testChip(t, nil)
	fp := content.Fingerprint(0xabcdef)
	if err := c.Program(0, fp); err != nil {
		t.Fatal(err)
	}
	res, err := c.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.FP != fp || res.Status != ReadClean {
		t.Fatalf("read = %+v", res)
	}
}

func TestProgramOrderEnforced(t *testing.T) {
	c := testChip(t, nil)
	if err := c.Program(1, 1); err != ErrProgramOrder {
		t.Fatalf("out-of-order program: %v", err)
	}
	if err := c.Program(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Program(0, 2); err == nil {
		t.Fatal("double program accepted")
	}
	if err := c.Program(2, 1); err != ErrProgramOrder {
		t.Fatalf("skip program: %v", err)
	}
}

func TestEraseResets(t *testing.T) {
	c := testChip(t, nil)
	for i := 0; i < 4; i++ {
		if err := c.Program(addr.PPN(i), content.Fingerprint(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Erase(0); err != nil {
		t.Fatal(err)
	}
	if c.EraseCount(0) != 1 || c.NextPage(0) != 0 {
		t.Fatal("erase bookkeeping wrong")
	}
	res, _ := c.Read(0)
	if res.FP != content.Zero {
		t.Fatal("erased page should read zero")
	}
	if err := c.Program(0, 9); err != nil {
		t.Fatalf("program after erase: %v", err)
	}
}

func TestReadErasedAndUnbacked(t *testing.T) {
	c := testChip(t, nil)
	res, err := c.Read(100)
	if err != nil || res.FP != content.Zero || res.Status != ReadClean {
		t.Fatalf("unbacked read = %+v, %v", res, err)
	}
}

func TestBadAddresses(t *testing.T) {
	c := testChip(t, nil)
	if err := c.Program(addr.PPN(1<<40), 1); err != ErrBadAddress {
		t.Fatal("bad program address accepted")
	}
	if _, err := c.Read(-1); err != ErrBadAddress {
		t.Fatal("bad read address accepted")
	}
	if err := c.Erase(-1); err != ErrBadAddress {
		t.Fatal("bad erase accepted")
	}
	if err := c.ErasePartial(9999, 0.5); err != ErrBadAddress {
		t.Fatal("bad partial erase accepted")
	}
}

// TestProgramPartialEarlyCorrupts: a program interrupted early leaves the
// page unreadable even through ECC.
func TestProgramPartialEarlyCorrupts(t *testing.T) {
	c := testChip(t, nil)
	if err := c.ProgramPartial(0, 0x1234, 0.05); err != nil {
		t.Fatal(err)
	}
	if c.State(0) != PageCorrupt {
		t.Fatalf("state = %v", c.State(0))
	}
	uncorrectable := 0
	for i := 0; i < 50; i++ {
		res, _ := c.Read(0)
		if res.Status == ReadUncorrectable {
			uncorrectable++
			if res.FP == 0x1234 {
				t.Fatal("uncorrectable read returned intact content")
			}
		}
	}
	if uncorrectable < 45 {
		t.Fatalf("early-interrupted page was readable %d/50 times", 50-uncorrectable)
	}
}

// TestProgramPartialLateOftenSurvives: interruption in the final ISPP step
// leaves distributions close enough for ECC.
func TestProgramPartialLateOftenSurvives(t *testing.T) {
	c := testChip(t, nil)
	if err := c.ProgramPartial(0, 0x9999, 0.99); err != nil {
		t.Fatal(err)
	}
	clean := 0
	for i := 0; i < 50; i++ {
		res, _ := c.Read(0)
		if res.Status != ReadUncorrectable {
			clean++
		}
	}
	if clean < 40 {
		t.Fatalf("late-interrupted page survived only %d/50 reads", clean)
	}
}

// TestPairedPageCorruption: interrupting an upper-page program can corrupt
// the paired lower page written earlier (MLC stride 4).
func TestPairedPageCorruption(t *testing.T) {
	corrupted := 0
	const trials = 200
	for seed := 0; seed < trials; seed++ {
		cfg := Config{
			Geometry: Geometry{Dies: 1, PlanesPerDie: 1, BlocksPerPlane: 2, PagesPerBlock: 16},
			Cell:     MLC, Timing: TimingFor(MLC),
			ECC:     ECCConfig{Scheme: "BCH", CorrectPerKB: 40},
			BaseBER: 0, WearBERMult: 4, EnduranceCycles: 3000,
		}
		c, err := New(cfg, sim.NewRNG(uint64(seed)))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			if err := c.Program(addr.PPN(i), content.Fingerprint(i+1)); err != nil {
				t.Fatal(err)
			}
		}
		// Interrupt page 4 mid-way; its paired lower page is page 0.
		if err := c.ProgramPartial(4, 0xffff, 0.5); err != nil {
			t.Fatal(err)
		}
		if c.State(0) == PageCorrupt {
			corrupted++
		}
		if c.State(1) == PageCorrupt || c.State(2) == PageCorrupt {
			t.Fatal("non-paired page corrupted")
		}
	}
	// Peak probability is PairCorruptProb(MLC) = 0.45 at frac=0.5.
	if corrupted < trials/4 || corrupted > trials*3/4 {
		t.Fatalf("paired corruption rate %d/%d, want around 45%%", corrupted, trials)
	}
}

func TestTLCPairedPages(t *testing.T) {
	if got := TLC.PairedLowerPages(7); len(got) != 2 || got[0] != 4 || got[1] != 1 {
		t.Fatalf("TLC pairs of page 7 = %v", got)
	}
	if got := MLC.PairedLowerPages(2); got != nil {
		t.Fatalf("MLC page 2 should have no pair, got %v", got)
	}
	if got := SLC.PairedLowerPages(10); got != nil {
		t.Fatal("SLC has no paired pages")
	}
}

func TestErasePartial(t *testing.T) {
	c := testChip(t, nil)
	for i := 0; i < 8; i++ {
		if err := c.Program(addr.PPN(i), content.Fingerprint(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.ErasePartial(0, 0.3); err != nil {
		t.Fatal(err)
	}
	if c.State(0) != PageUnreliable {
		t.Fatalf("state after partial erase = %v", c.State(0))
	}
	// The block must demand a full erase before reuse.
	if err := c.Program(8, 1); err != ErrNeedsErase {
		t.Fatalf("program on half-erased block: %v", err)
	}
	if err := c.Erase(0); err != nil {
		t.Fatal(err)
	}
	if err := c.Program(0, 1); err != nil {
		t.Fatalf("program after recovery erase: %v", err)
	}
}

func TestECCCorrectsModerateBER(t *testing.T) {
	c := testChip(t, func(cfg *Config) {
		cfg.BaseBER = 1e-5 // lambda ~ 0.33 bits/page, far below 160 correctable
	})
	if err := c.Program(0, 0x77); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		res, _ := c.Read(0)
		if res.FP != 0x77 {
			t.Fatalf("ECC failed at trivial BER: %+v", res)
		}
	}
}

func TestECCOverwhelmedByHighBER(t *testing.T) {
	c := testChip(t, func(cfg *Config) {
		cfg.BaseBER = 0.05 // lambda ~ 1638 >> 160 correctable
	})
	if err := c.Program(0, 0x77); err != nil {
		t.Fatal(err)
	}
	res, _ := c.Read(0)
	if res.Status != ReadUncorrectable {
		t.Fatalf("expected uncorrectable read, got %+v", res)
	}
	if res.FP == 0x77 || res.FP == content.Zero {
		t.Fatal("uncorrectable read must return distinct corrupted content")
	}
}

func TestWearRaisesBER(t *testing.T) {
	c := testChip(t, func(cfg *Config) {
		cfg.BaseBER = 2e-3 // lambda ~ 65 fresh; 4x wear multiplier pushes past 160
		cfg.WearBERMult = 10
		cfg.EnduranceCycles = 10
	})
	// Wear block 0 out.
	for i := 0; i < 30; i++ {
		if err := c.Erase(0); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Program(0, 0x5); err != nil {
		t.Fatal(err)
	}
	unc := 0
	for i := 0; i < 100; i++ {
		res, _ := c.Read(0)
		if res.Status == ReadUncorrectable {
			unc++
		}
	}
	if unc < 90 {
		t.Fatalf("worn block uncorrectable only %d/100", unc)
	}
}

// TestReadDisturbAccumulates: heavy re-reading of a block raises its raw
// error rate until ECC gives up; an erase resets the disturb counter.
func TestReadDisturbAccumulates(t *testing.T) {
	c := testChip(t, func(cfg *Config) {
		cfg.BaseBER = 1e-7
		cfg.ReadDisturbBER = 2.0 // absurdly strong so few reads suffice
	})
	if err := c.Program(0, 0x42); err != nil {
		t.Fatal(err)
	}
	unc := false
	for i := 0; i < 5000 && !unc; i++ {
		res, _ := c.Read(0)
		unc = res.Status == ReadUncorrectable
	}
	if !unc {
		t.Fatal("read disturb never overwhelmed ECC")
	}
	if c.ReadCount(0) == 0 {
		t.Fatal("read counter not tracked")
	}
	if err := c.Erase(0); err != nil {
		t.Fatal(err)
	}
	if c.ReadCount(0) != 0 {
		t.Fatal("erase did not reset the disturb counter")
	}
	if err := c.Program(0, 0x42); err != nil {
		t.Fatal(err)
	}
	if res, _ := c.Read(0); res.Status == ReadUncorrectable {
		t.Fatal("fresh block already uncorrectable")
	}
}

func TestStatsCounting(t *testing.T) {
	c := testChip(t, nil)
	c.Program(0, 1)
	c.Read(0)
	c.ProgramPartial(1, 2, 0.5)
	c.Erase(1)
	s := c.Stats()
	if s.Programs != 1 || s.Reads != 1 || s.PartialPrograms != 1 || s.Erases != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestCellKindHelpers(t *testing.T) {
	if MLC.BitsPerCell() != 2 || TLC.BitsPerCell() != 3 || SLC.BitsPerCell() != 1 {
		t.Fatal("bits per cell wrong")
	}
	if !MLC.Valid() || CellKind(0).Valid() || CellKind(9).Valid() {
		t.Fatal("Valid wrong")
	}
	if TLC.ProgramSteps() <= MLC.ProgramSteps() {
		t.Fatal("TLC should need more ISPP steps than MLC")
	}
	if TLC.PairCorruptProb() <= MLC.PairCorruptProb() {
		t.Fatal("TLC should be more pair-fragile than MLC")
	}
	for _, k := range []CellKind{SLC, MLC, TLC} {
		if k.String() == "" || TimingFor(k).Validate() != nil {
			t.Fatal("timing/string wrong")
		}
		if DefaultBER(k) <= 0 || DefaultEndurance(k) <= 0 {
			t.Fatal("defaults wrong")
		}
	}
	if DefaultBER(TLC) <= DefaultBER(MLC) {
		t.Fatal("TLC BER should exceed MLC")
	}
	if DefaultEndurance(TLC) >= DefaultEndurance(MLC) {
		t.Fatal("TLC endurance should be below MLC")
	}
}

func TestConfigValidation(t *testing.T) {
	good := testChip(t, nil).Config()
	bad := good
	bad.BaseBER = 0.9
	if bad.Validate() == nil {
		t.Fatal("absurd BER accepted")
	}
	bad = good
	bad.EnduranceCycles = 0
	if bad.Validate() == nil {
		t.Fatal("zero endurance accepted")
	}
	bad = good
	bad.Cell = CellKind(99)
	if bad.Validate() == nil {
		t.Fatal("bad cell kind accepted")
	}
	if _, err := New(good, nil); err == nil {
		t.Fatal("nil RNG accepted")
	}
}

func TestECCConfigPerPage(t *testing.T) {
	e := ECCConfig{Scheme: "BCH", CorrectPerKB: 40}
	if e.CorrectPerPage() != 160 {
		t.Fatalf("CorrectPerPage = %d, want 160", e.CorrectPerPage())
	}
	if (ECCConfig{CorrectPerKB: -1}).Validate() == nil {
		t.Fatal("negative ECC accepted")
	}
}

func TestFullyProgrammedAndOOB(t *testing.T) {
	c := testChip(t, nil)
	c.Program(0, 1)
	c.ProgramPartial(1, 2, 0.2)
	if !c.FullyProgrammed(0) {
		t.Fatal("clean page not fully programmed")
	}
	if c.FullyProgrammed(1) {
		t.Fatal("partial page reported fully programmed")
	}
	if c.FullyProgrammed(2) {
		t.Fatal("erased page reported fully programmed")
	}
}

func TestStateStrings(t *testing.T) {
	for _, s := range []PageState{PageErased, PageProgrammed, PageCorrupt, PageUnreliable} {
		if s.String() == "" {
			t.Fatal("empty state string")
		}
	}
	for _, s := range []ReadStatus{ReadClean, ReadCorrected, ReadUncorrectable} {
		if s.String() == "" {
			t.Fatal("empty status string")
		}
	}
}
