package flash

import (
	"errors"
	"fmt"

	"powerfail/internal/addr"
	"powerfail/internal/content"
	"powerfail/internal/sim"
)

// Errors returned by chip operations. These signal FTL bugs (ordering or
// double-program violations), not simulated media failures.
var (
	ErrNotErased    = errors.New("flash: program on a page that is not erased")
	ErrProgramOrder = errors.New("flash: pages must be programmed sequentially within a block")
	ErrBadAddress   = errors.New("flash: address out of range")
	ErrNeedsErase   = errors.New("flash: block needs a full erase before reuse")
)

// PageState describes the condition of a physical page.
type PageState uint8

// Page states.
const (
	PageErased PageState = iota
	PageProgrammed
	// PageCorrupt marks a page whose program was interrupted or whose
	// cells were disturbed by an interrupted paired-page program. The
	// stored fingerprint is the intended content; severity controls how
	// many raw bit errors reads will see.
	PageCorrupt
	// PageUnreliable marks a page caught in a partially erased block.
	PageUnreliable
)

// String implements fmt.Stringer.
func (s PageState) String() string {
	switch s {
	case PageErased:
		return "erased"
	case PageProgrammed:
		return "programmed"
	case PageCorrupt:
		return "corrupt"
	case PageUnreliable:
		return "unreliable"
	default:
		return fmt.Sprintf("PageState(%d)", uint8(s))
	}
}

type page struct {
	state    PageState
	fp       content.Fingerprint
	severity float64 // extra raw BER for corrupt/unreliable pages
	seq      uint64  // global program sequence, 0 if never programmed
}

type block struct {
	pages      []page
	eraseCount int
	readCount  int64 // reads since the last erase (read disturb)
	nextPage   int
	needsErase bool // set when an erase was interrupted
}

// Config assembles the chip model parameters.
type Config struct {
	Geometry Geometry
	Cell     CellKind
	Timing   Timing
	ECC      ECCConfig

	// BaseBER is the raw bit error rate of a freshly written page on a
	// young block.
	BaseBER float64
	// WearBERMult scales BaseBER linearly with consumed endurance: at
	// EnduranceCycles erases the effective BER is BaseBER*(1+WearBERMult).
	WearBERMult float64
	// EnduranceCycles is the rated program/erase endurance per block.
	EnduranceCycles int
	// ReadDisturbBER is the extra raw bit error rate accumulated per
	// 100,000 reads of a block since its last erase (read disturb).
	ReadDisturbBER float64
}

// DefaultBER returns a plausible raw bit error rate for the technology.
func DefaultBER(c CellKind) float64 {
	switch c {
	case SLC:
		return 1e-8
	case TLC:
		return 3e-5
	case QLC:
		return 8e-5
	default:
		return 1e-5
	}
}

// DefaultEndurance returns a rated P/E cycle count for the technology.
func DefaultEndurance(c CellKind) int {
	switch c {
	case SLC:
		return 100000
	case TLC:
		return 1500
	case QLC:
		return 500
	default:
		return 3000
	}
}

// Validate checks the chip configuration.
func (c Config) Validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if !c.Cell.Valid() {
		return fmt.Errorf("flash: invalid cell kind %d", int(c.Cell))
	}
	if err := c.Timing.Validate(); err != nil {
		return err
	}
	if err := c.ECC.Validate(); err != nil {
		return err
	}
	if c.BaseBER < 0 || c.BaseBER > 0.5 {
		return fmt.Errorf("flash: BaseBER out of range: %g", c.BaseBER)
	}
	if c.EnduranceCycles <= 0 {
		return fmt.Errorf("flash: EnduranceCycles must be positive, got %d", c.EnduranceCycles)
	}
	return nil
}

// Stats counts chip-level operations and media events.
type Stats struct {
	Programs           int64
	PartialPrograms    int64
	PairCorruptions    int64
	Reads              int64
	CorrectedReads     int64
	UncorrectableReads int64
	Erases             int64
	PartialErases      int64
}

// Chip is the NAND array state machine.
type Chip struct {
	cfg    Config
	r      *sim.RNG
	blocks []*block // lazily allocated
	seq    uint64
	stats  Stats
}

// New builds a chip. Blocks are allocated lazily so very large arrays cost
// memory only for the blocks actually touched.
func New(cfg Config, r *sim.RNG) (*Chip, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if r == nil {
		return nil, errors.New("flash: nil RNG")
	}
	return &Chip{
		cfg:    cfg,
		r:      r,
		blocks: make([]*block, cfg.Geometry.Blocks()),
	}, nil
}

// Config returns the chip configuration.
func (c *Chip) Config() Config { return c.cfg }

// Geometry returns the array geometry.
func (c *Chip) Geometry() Geometry { return c.cfg.Geometry }

// Timing returns the nominal operation latencies.
func (c *Chip) Timing() Timing { return c.cfg.Timing }

// Stats returns a snapshot of the operation counters.
func (c *Chip) Stats() Stats { return c.stats }

func (c *Chip) blk(i int) *block {
	b := c.blocks[i]
	if b == nil {
		b = &block{pages: make([]page, c.cfg.Geometry.PagesPerBlock)}
		c.blocks[i] = b
	}
	return b
}

// EraseCount returns the erase cycles consumed by a block.
func (c *Chip) EraseCount(blockIdx int) int {
	if c.blocks[blockIdx] == nil {
		return 0
	}
	return c.blocks[blockIdx].eraseCount
}

// ReadCount returns the reads a block has absorbed since its last erase.
func (c *Chip) ReadCount(blockIdx int) int64 {
	if c.blocks[blockIdx] == nil {
		return 0
	}
	return c.blocks[blockIdx].readCount
}

// NextPage returns the program pointer of a block (the only page index a
// Program may target next).
func (c *Chip) NextPage(blockIdx int) int {
	if c.blocks[blockIdx] == nil {
		return 0
	}
	return c.blocks[blockIdx].nextPage
}

// State returns the state of a physical page.
func (c *Chip) State(p addr.PPN) PageState {
	if !c.cfg.Geometry.Contains(p) {
		return PageErased
	}
	b := c.blocks[c.cfg.Geometry.BlockOf(p)]
	if b == nil {
		return PageErased
	}
	return b.pages[c.cfg.Geometry.PageOf(p)].state
}

// FullyProgrammed reports whether the page completed its program cleanly,
// which is what makes its out-of-band metadata trustworthy during the
// FTL's crash-recovery scan.
func (c *Chip) FullyProgrammed(p addr.PPN) bool {
	return c.State(p) == PageProgrammed
}

// Program writes fp into page p. NAND constraints are enforced: the page
// must be the block's next sequential page and the block must be erased
// (and not pending a re-erase after an interrupted erase).
func (c *Chip) Program(p addr.PPN, fp content.Fingerprint) error {
	g := c.cfg.Geometry
	if !g.Contains(p) {
		return ErrBadAddress
	}
	b := c.blk(g.BlockOf(p))
	pi := g.PageOf(p)
	if b.needsErase {
		return ErrNeedsErase
	}
	if pi != b.nextPage {
		return ErrProgramOrder
	}
	pg := &b.pages[pi]
	if pg.state != PageErased {
		return ErrNotErased
	}
	c.seq++
	pg.state = PageProgrammed
	pg.fp = fp
	pg.severity = 0
	pg.seq = c.seq
	b.nextPage++
	c.stats.Programs++
	return nil
}

// ProgramPartial records a program interrupted after fraction frac of its
// ISPP steps (0 <= frac < 1). The page is consumed: it holds the intended
// fingerprint but with a severity-scaled raw error rate, and paired lower
// pages written earlier may be corrupted, which is how a power cut damages
// previously completed data.
func (c *Chip) ProgramPartial(p addr.PPN, fp content.Fingerprint, frac float64) error {
	g := c.cfg.Geometry
	if !g.Contains(p) {
		return ErrBadAddress
	}
	if frac < 0 {
		frac = 0
	}
	if frac >= 1 {
		frac = 0.999
	}
	b := c.blk(g.BlockOf(p))
	pi := g.PageOf(p)
	if b.needsErase {
		return ErrNeedsErase
	}
	if pi != b.nextPage {
		return ErrProgramOrder
	}
	pg := &b.pages[pi]
	if pg.state != PageErased {
		return ErrNotErased
	}
	// Quantise to ISPP steps: interruption within the final step leaves
	// distributions close to target and the page often survives via ECC.
	steps := float64(c.cfg.Cell.ProgramSteps())
	done := float64(int(frac * steps))
	remaining := 1 - done/steps
	c.seq++
	pg.state = PageCorrupt
	pg.fp = fp
	pg.severity = interruptedBER(remaining)
	pg.seq = c.seq
	b.nextPage++
	c.stats.PartialPrograms++

	// Disturb paired lower pages written earlier in the block. The
	// probability peaks for cuts in the middle of the program, when the
	// shared cells are furthest from any stable state.
	pk := c.cfg.Cell.PairCorruptProb() * 4 * frac * (1 - frac)
	for _, lower := range c.cfg.Cell.PairedLowerPages(pi) {
		lp := &b.pages[lower]
		if lp.state != PageProgrammed && lp.state != PageCorrupt {
			continue
		}
		if !c.r.Prob(pk) {
			continue
		}
		lp.state = PageCorrupt
		lp.severity += interruptedBER(0.5)
		c.stats.PairCorruptions++
	}
	return nil
}

// interruptedBER maps the remaining (un-executed) fraction of a program to
// an additional raw bit error rate. Near-complete programs (remaining->0)
// add little; barely-started ones read as garbage.
func interruptedBER(remaining float64) float64 {
	return 0.25 * remaining * remaining
}

// Erase resets all pages of a block and consumes one endurance cycle.
func (c *Chip) Erase(blockIdx int) error {
	if blockIdx < 0 || blockIdx >= len(c.blocks) {
		return ErrBadAddress
	}
	b := c.blk(blockIdx)
	for i := range b.pages {
		b.pages[i] = page{}
	}
	b.nextPage = 0
	b.eraseCount++
	b.readCount = 0
	b.needsErase = false
	c.stats.Erases++
	return nil
}

// ErasePartial records an erase interrupted after fraction frac. Every
// page that still held data becomes unreliable, and the block must be
// fully erased before it can be programmed again.
func (c *Chip) ErasePartial(blockIdx int, frac float64) error {
	if blockIdx < 0 || blockIdx >= len(c.blocks) {
		return ErrBadAddress
	}
	b := c.blk(blockIdx)
	for i := range b.pages {
		pg := &b.pages[i]
		if pg.state == PageProgrammed || pg.state == PageCorrupt {
			pg.state = PageUnreliable
			pg.severity += 0.3 * (1 - frac)
		}
	}
	b.needsErase = true
	c.stats.PartialErases++
	return nil
}

// ReadStatus classifies the outcome of a page read.
type ReadStatus uint8

// Read outcomes.
const (
	ReadClean ReadStatus = iota
	ReadCorrected
	ReadUncorrectable
)

// String implements fmt.Stringer.
func (s ReadStatus) String() string {
	switch s {
	case ReadClean:
		return "clean"
	case ReadCorrected:
		return "corrected"
	case ReadUncorrectable:
		return "uncorrectable"
	default:
		return fmt.Sprintf("ReadStatus(%d)", uint8(s))
	}
}

// ReadResult carries the outcome of a page read. FP is the content the
// controller hands upstream: the intended data when ECC succeeds, a
// deterministic corruption of it when ECC fails.
type ReadResult struct {
	FP        content.Fingerprint
	Status    ReadStatus
	BitErrors int
}

// Read samples a page read through the ECC pipeline. Erased pages return
// zero content.
func (c *Chip) Read(p addr.PPN) (ReadResult, error) {
	g := c.cfg.Geometry
	if !g.Contains(p) {
		return ReadResult{}, ErrBadAddress
	}
	c.stats.Reads++
	b := c.blocks[g.BlockOf(p)]
	if b == nil {
		return ReadResult{FP: content.Zero, Status: ReadClean}, nil
	}
	b.readCount++
	pg := &b.pages[g.PageOf(p)]
	if pg.state == PageErased {
		return ReadResult{FP: content.Zero, Status: ReadClean}, nil
	}
	ber := c.effectiveBER(b, pg)
	lambda := ber * 8 * addr.PageBytes
	errs := c.r.Poisson(lambda)
	limit := c.cfg.ECC.CorrectPerPage()
	switch {
	case errs == 0:
		return ReadResult{FP: pg.fp, Status: ReadClean}, nil
	case errs <= limit:
		c.stats.CorrectedReads++
		return ReadResult{FP: pg.fp, Status: ReadCorrected, BitErrors: errs}, nil
	default:
		c.stats.UncorrectableReads++
		return ReadResult{
			FP:        content.Mix(pg.fp, c.r.Uint64()),
			Status:    ReadUncorrectable,
			BitErrors: errs,
		}, nil
	}
}

func (c *Chip) effectiveBER(b *block, pg *page) float64 {
	wear := float64(b.eraseCount) / float64(c.cfg.EnduranceCycles)
	ber := c.cfg.BaseBER * (1 + c.cfg.WearBERMult*wear)
	ber += c.cfg.ReadDisturbBER * float64(b.readCount) / 1e5
	return ber + pg.severity
}
