// Package array composes several simulated drives into one composite
// blockdev.Drive: striping (RAID-0), mirroring (RAID-1), rotating
// distributed parity with read-modify-write (RAID-5), double parity over
// GF(256) (RAID-6), general m+k Reed-Solomon (RS, any Parity erasures
// reconstructable), and an SSD cache fronting an HDD in write-back or
// write-through policy. Members may use heterogeneous SSD profiles, so a
// mixed array can carry one weak (e.g. QLC) drive among stronger ones.
//
// The decisive property of the platform is that every member hangs off the
// same simulated PSU, exactly like the drives in the paper's rig share one
// Arduino-switched ATX supply: a power cut is *correlated* across the
// array, hitting every member mid-flight. The interesting multi-device
// failures — the RAID-5 write hole, mirror divergence, dirty write-back
// cache lines dying in front of a durable backend — are not scripted here;
// they emerge from each member's own power-failure model (volatile DRAM
// caches, interrupted programs, lost mapping runs) composing with the
// array-level redundancy and ordering.
//
// Parity is computed over page fingerprints (content.Fingerprint is a
// 64-bit content identifier, so XOR of fingerprints is a faithful stand-in
// for XOR of page bytes: equal iff the underlying parity bytes are equal).
// The coded levels extend this lane-wise: GF(256) multiplication applies
// to each of a fingerprint's eight bytes, so Reed-Solomon algebra over
// fingerprints stands in for the same algebra over page bytes.
package array

import (
	"errors"
	"fmt"
	"strings"

	"powerfail/internal/addr"
	"powerfail/internal/blockdev"
	"powerfail/internal/content"
	"powerfail/internal/hdd"
	"powerfail/internal/obs"
	"powerfail/internal/power"
	"powerfail/internal/sim"
	"powerfail/internal/ssd"
)

// Level selects the composition.
type Level int

// Array levels. Cached is the SSD-cache-over-HDD mode; the RAID levels
// stripe, mirror, or rotate parity over the member SSDs. RAID6 rotates
// two parities (P+Q over GF(256)) and RS is the general m+k
// Reed-Solomon level whose parity count Config.Parity picks.
const (
	RAID0 Level = iota
	RAID1
	RAID5
	Cached
	RAID6
	RS
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case RAID0:
		return "raid0"
	case RAID1:
		return "raid1"
	case RAID5:
		return "raid5"
	case Cached:
		return "cache"
	case RAID6:
		return "raid6"
	case RS:
		return "rs"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// CachePolicy selects when a Cached array acknowledges writes.
type CachePolicy int

// Cache policies. WriteBack acknowledges once the SSD holds the data (the
// dangerous, fast mode); WriteThrough waits for the backing HDD too.
const (
	WriteBack CachePolicy = iota
	WriteThrough
)

// String implements fmt.Stringer.
func (p CachePolicy) String() string {
	if p == WriteThrough {
		return "write-through"
	}
	return "write-back"
}

// Config describes a composite device.
type Config struct {
	Level Level
	// Members are the per-member SSD models of a RAID or RS array (ignored
	// by Cached). The entries need not be identical: a heterogeneous array
	// mixes drive models (capacities, cache sizes, cell technologies), and
	// the composite exports the capacity of its smallest member times the
	// data-member count. Per-member failure attribution (MemberReport)
	// makes the weakest member's contribution measurable.
	Members []ssd.Profile
	// StripePages is the striped levels' chunk size in 4 KiB pages
	// (default 16, a 64 KiB chunk).
	StripePages int
	// Parity is the parity-shard count per stripe for the erasure-coded
	// levels: fixed at 1 for RAID5 and 2 for RAID6; for RS any value with
	// at least two data members left (default 2). Ignored elsewhere.
	Parity int

	// Cache and Backing configure the Cached level: an SSD in front of an
	// HDD. Zero values select ssd.ProfileA() and hdd.DefaultProfile().
	Cache   ssd.Profile
	Backing hdd.Profile
	Policy  CachePolicy
	// DestageTick paces the write-back destage scan (default 20 ms).
	DestageTick sim.Duration
	// DestageBatchPages bounds lines destaged per tick (default 64).
	DestageBatchPages int
}

func (c Config) withDefaults() Config {
	if c.StripePages == 0 {
		c.StripePages = 16
	}
	switch c.Level {
	case RAID5:
		c.Parity = 1
	case RAID6:
		c.Parity = 2
	case RS:
		if c.Parity == 0 {
			c.Parity = 2
		}
	default:
		c.Parity = 0
	}
	if c.Level == Cached {
		if c.Cache.Name == "" {
			c.Cache = ssd.ProfileA()
		}
		if c.Backing.Name == "" {
			c.Backing = hdd.DefaultProfile()
		}
		if c.DestageTick == 0 {
			c.DestageTick = 20 * sim.Millisecond
		}
		if c.DestageBatchPages == 0 {
			c.DestageBatchPages = 64
		}
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.StripePages <= 0 {
		return fmt.Errorf("array: StripePages must be positive, got %d", c.StripePages)
	}
	switch c.Level {
	case RAID0:
		if len(c.Members) < 2 {
			return fmt.Errorf("array: raid0 needs >= 2 members, got %d", len(c.Members))
		}
	case RAID1:
		if len(c.Members) < 2 {
			return fmt.Errorf("array: raid1 needs >= 2 members, got %d", len(c.Members))
		}
	case RAID5:
		if len(c.Members) < 3 {
			return fmt.Errorf("array: raid5 needs >= 3 members, got %d", len(c.Members))
		}
	case RAID6:
		if len(c.Members) < 4 {
			return fmt.Errorf("array: raid6 needs >= 4 members, got %d", len(c.Members))
		}
	case RS:
		if c.Parity < 1 {
			return fmt.Errorf("array: rs needs Parity >= 1, got %d", c.Parity)
		}
		if len(c.Members) < c.Parity+2 {
			return fmt.Errorf("array: rs with %d parities needs >= %d members, got %d",
				c.Parity, c.Parity+2, len(c.Members))
		}
		if len(c.Members) > 255 {
			return fmt.Errorf("array: rs supports at most 255 members (GF(256) shards), got %d", len(c.Members))
		}
	case Cached:
		if len(c.Members) != 0 {
			return fmt.Errorf("array: cached level takes Cache/Backing, not Members")
		}
		if err := c.Backing.Validate(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("array: unknown level %d", int(c.Level))
	}
	return nil
}

// ErrOutOfRange reports an access beyond the array's exported capacity.
var ErrOutOfRange = errors.New("array: address beyond array capacity")

// Stats counts array-level activity. Member-device internals (deaths,
// dirty pages lost, interrupted programs) live on the members themselves.
type Stats struct {
	HostReads   int64 `json:"host_reads"`
	HostWrites  int64 `json:"host_writes"`
	HostFlushes int64 `json:"host_flushes"`
	HostErrors  int64 `json:"host_errors"`

	// RAID counters.
	ParityRMWs      int64 `json:"parity_rmws,omitempty"`
	WriteHoles      int64 `json:"write_holes,omitempty"` // stripe update where a proper subset of data+parity writes was acknowledged
	Reconstructions int64 `json:"reconstructions,omitempty"`
	RedirectedReads int64 `json:"redirected_reads,omitempty"`
	Divergences     int64 `json:"divergences,omitempty"` // mirror writes acknowledged by only a subset
	// RedundancyExceededLosses counts failure attributions made while more
	// members were down than the array's code tolerates (more than one for
	// RAID-5, more than k for RAID-6/RS): the affected stripes are
	// unrecoverable data loss, not a single-member event.
	RedundancyExceededLosses int64 `json:"redundancy_exceeded_losses,omitempty"`

	// Cache counters.
	CacheHits    int64 `json:"cache_hits,omitempty"`
	CacheMisses  int64 `json:"cache_misses,omitempty"`
	Destages     int64 `json:"destages,omitempty"`
	LinesDropped int64 `json:"lines_dropped,omitempty"` // invalidated on crash recovery
	Bypasses     int64 `json:"bypasses,omitempty"`      // cache full: request went straight to the backing drive
}

// MemberStats is the array's view of one member's service counters.
type MemberStats struct {
	Name   string `json:"name"`
	Role   string `json:"role"` // "data", "mirror", "cache", "backing"
	Reads  int64  `json:"reads"`
	Writes int64  `json:"writes"`
	Errors int64  `json:"errors"`
}

// Array is the composite device under test.
type Array struct {
	k   *sim.Kernel
	cfg Config

	members   []blockdev.Drive
	ssds      []*ssd.Device
	backing   *hdd.Disk
	perMember []MemberStats
	up        []bool

	// RAID geometry.
	memberPages int64 // usable pages per member (stripe-rounded for the striped levels)
	userPages   int64
	code        *Code // erasure code of the RAID6/RS levels (nil otherwise)

	rrNext      int // raid1 read rotation cursor
	stripeLocks map[int64][]func()
	tele        arrayObs

	// Cached level state.
	lines     map[addr.LPN]*cline
	dirtyHead *cline // FIFO of dirty lines awaiting destage
	dirtyTail *cline
	freeSlots []addr.LPN
	nextSlot  addr.LPN
	ssdPages  int64
	destaging sim.Timer

	stats          Stats
	readyListeners []func()
	downListeners  []func()
}

// New builds the composite device, constructing every member over the same
// PSU rail so one power fault hits the whole array. psu may be nil for
// unpowered unit tests.
func New(k *sim.Kernel, r *sim.RNG, cfg Config, psu *power.PSU) (*Array, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	a := &Array{k: k, cfg: cfg, stripeLocks: make(map[int64][]func())}

	if cfg.Level == Cached {
		cache, err := ssd.New(k, r.Fork("cache"), cfg.Cache, psu)
		if err != nil {
			return nil, fmt.Errorf("array: cache member: %w", err)
		}
		back, err := hdd.New(k, r.Fork("backing"), cfg.Backing, psu)
		if err != nil {
			return nil, fmt.Errorf("array: backing member: %w", err)
		}
		a.members = []blockdev.Drive{cache, back}
		a.ssds = []*ssd.Device{cache}
		a.backing = back
		a.perMember = []MemberStats{
			{Name: cache.Name(), Role: "cache"},
			{Name: back.Name(), Role: "backing"},
		}
		a.ssdPages = cache.UserPages()
		a.userPages = back.UserPages()
		a.lines = make(map[addr.LPN]*cline)
	} else {
		role := "data"
		if cfg.Level == RAID1 {
			role = "mirror"
		}
		minPages := int64(-1)
		for i, prof := range cfg.Members {
			dev, err := ssd.New(k, r.Fork(fmt.Sprintf("member%d", i)), prof, psu)
			if err != nil {
				return nil, fmt.Errorf("array: member %d: %w", i, err)
			}
			a.members = append(a.members, dev)
			a.ssds = append(a.ssds, dev)
			a.perMember = append(a.perMember, MemberStats{Name: dev.Name(), Role: role})
			if minPages < 0 || dev.UserPages() < minPages {
				minPages = dev.UserPages()
			}
		}
		sp := int64(cfg.StripePages)
		n := int64(len(a.members))
		switch cfg.Level {
		case RAID0:
			a.memberPages = (minPages / sp) * sp
			a.userPages = n * a.memberPages
		case RAID1:
			a.memberPages = minPages
			a.userPages = minPages
		case RAID5:
			a.memberPages = (minPages / sp) * sp
			a.userPages = (n - 1) * a.memberPages
		case RAID6, RS:
			kp := int64(cfg.Parity)
			a.memberPages = (minPages / sp) * sp
			a.userPages = (n - kp) * a.memberPages
			a.code = newCode(int(n-kp), int(kp))
		}
	}

	a.up = make([]bool, len(a.members))
	for i := range a.members {
		idx := i
		a.up[i] = true
		a.members[i].NotifyDown(func() { a.onMemberDown(idx) })
		a.members[i].NotifyReady(func() { a.onMemberReady(idx) })
	}
	return a, nil
}

// Config returns the (defaulted) configuration.
func (a *Array) Config() Config { return a.cfg }

// Name implements blockdev.Drive: "raid5x4[A]" or "cache-wb[A/HDD]".
func (a *Array) Name() string {
	if a.cfg.Level == Cached {
		pol := "wb"
		if a.cfg.Policy == WriteThrough {
			pol = "wt"
		}
		return fmt.Sprintf("cache-%s[%s/%s]", pol, a.members[0].Name(), a.members[1].Name())
	}
	names := make([]string, 0, len(a.members))
	same := true
	for _, m := range a.members {
		if m.Name() != a.members[0].Name() {
			same = false
		}
		names = append(names, m.Name())
	}
	label := a.members[0].Name()
	if !same {
		label = strings.Join(names, ",")
	}
	return fmt.Sprintf("%sx%d[%s]", a.cfg.Level, len(a.members), label)
}

// UserPages implements blockdev.Drive.
func (a *Array) UserPages() int64 { return a.userPages }

// Ready implements blockdev.Drive: the array answers once every member does.
func (a *Array) Ready() bool {
	for _, m := range a.members {
		if !m.Ready() {
			return false
		}
	}
	return true
}

// NotifyReady implements blockdev.Drive; fn fires when the *last* member of
// a downed array comes back (after the array's own crash recovery, such as
// dropping stale cache lines, has run).
func (a *Array) NotifyReady(fn func()) { a.readyListeners = append(a.readyListeners, fn) }

// NotifyDown implements blockdev.Drive; fn fires when the first member of a
// fully-up array drops.
func (a *Array) NotifyDown(fn func()) { a.downListeners = append(a.downListeners, fn) }

// Stats returns a snapshot of the array-level counters.
func (a *Array) Stats() Stats { return a.stats }

// Members returns the per-member service counters, index-aligned with the
// construction order (RAID members, or [cache, backing]).
func (a *Array) Members() []MemberStats {
	out := make([]MemberStats, len(a.perMember))
	copy(out, a.perMember)
	return out
}

// Drive returns member i's device for stats inspection.
func (a *Array) Drive(i int) blockdev.Drive { return a.members[i] }

// SSDs returns the SSD members (all RAID members, or the cache).
func (a *Array) SSDs() []*ssd.Device { return a.ssds }

// Backing returns the backing HDD of a Cached array (nil otherwise).
func (a *Array) Backing() *hdd.Disk { return a.backing }

func (a *Array) onMemberDown(i int) {
	wasUp := true
	for _, u := range a.up {
		wasUp = wasUp && u
	}
	a.up[i] = false
	if wasUp {
		for _, fn := range a.downListeners {
			fn()
		}
	}
}

func (a *Array) onMemberReady(i int) {
	a.up[i] = true
	for _, u := range a.up {
		if !u {
			return
		}
	}
	// Last member back: run the array's own recovery before telling the
	// platform the composite device is ready again.
	if a.cfg.Level == Cached {
		a.recoverCache()
	}
	for _, fn := range a.readyListeners {
		fn()
	}
}

// memberSubmit routes one operation to member i, keeping service counters.
func (a *Array) memberSubmit(i int, op blockdev.Op, lpn addr.LPN, pages int, data content.Data, done func(error, content.Data)) {
	ms := &a.perMember[i]
	switch op {
	case blockdev.OpRead:
		ms.Reads++
	case blockdev.OpWrite:
		ms.Writes++
	}
	a.members[i].Submit(op, lpn, pages, data, func(err error, res content.Data) {
		if err != nil {
			ms.Errors++
		}
		done(err, res)
	})
}

// Submit implements blockdev.Device.
func (a *Array) Submit(op blockdev.Op, lpn addr.LPN, pages int, data content.Data, done func(error, content.Data)) {
	if op != blockdev.OpFlush && (lpn < 0 || int64(lpn)+int64(pages) > a.userPages) {
		a.stats.HostErrors++
		a.k.After(500*sim.Microsecond, func() { done(ErrOutOfRange, content.Data{}) })
		return
	}
	finish := func(err error, res content.Data) {
		if err != nil {
			a.stats.HostErrors++
		} else {
			switch op {
			case blockdev.OpRead:
				a.stats.HostReads++
			case blockdev.OpWrite:
				a.stats.HostWrites++
			default:
				a.stats.HostFlushes++
			}
		}
		done(err, res)
	}
	if op == blockdev.OpFlush {
		a.submitFlush(finish)
		return
	}
	switch a.cfg.Level {
	case RAID0:
		a.submitRAID0(op, lpn, pages, data, finish)
	case RAID1:
		a.submitRAID1(op, lpn, pages, data, finish)
	case RAID5:
		a.submitRAID5(op, lpn, pages, data, finish)
	case RAID6, RS:
		a.submitCoded(op, lpn, pages, data, finish)
	default:
		a.submitCached(op, lpn, pages, data, finish)
	}
}

// submitFlush fans the flush out to every member; a Cached write-back
// array first forces its dirty lines toward the backing drive.
func (a *Array) submitFlush(done func(error, content.Data)) {
	if a.cfg.Level == Cached && a.cfg.Policy == WriteBack {
		a.destageAll()
	}
	parts := len(a.members)
	var firstErr error
	for i := range a.members {
		a.memberSubmit(i, blockdev.OpFlush, 0, 0, content.Data{}, func(err error, _ content.Data) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
			parts--
			if parts == 0 {
				done(firstErr, content.Data{})
			}
		})
	}
}

// Attribute maps an LPN range to the member indices that hold (or held)
// the affected data: the striped members for RAID-0, every mirror for
// RAID-1 (a divergent mirror cannot be singled out without a scrub), the
// data plus parity members of the touched stripes for the parity levels,
// and for the Cached level the cache SSD for pages with a resident line
// (dirty lines live nowhere else) or the backing drive for uncached pages.
//
// A parity-level range touched while more members are down than the code
// tolerates (more than k erasures: two members for RAID-5's single
// parity, k+1 for RAID-6/RS) is explicit data loss — every stripe spans
// every member, so no touched stripe can be reconstructed. The
// attribution is then the set of down members (the joint casualties), not
// the single-failure data+parity set, and the loss is counted in
// Stats.RedundancyExceededLosses.
func (a *Array) Attribute(lpn addr.LPN, pages int) []int {
	if kp := a.parityCount(); kp > 0 {
		var down []int
		for i, u := range a.up {
			if !u {
				down = append(down, i)
			}
		}
		if len(down) > kp {
			a.stats.RedundancyExceededLosses++
			a.tele.redundancyExceeded.Inc()
			a.tele.sc.Instant(a.k.Now(), obs.KindInstant, "redundancy_exceeded_loss", int64(lpn))
			return down
		}
	}
	switch a.cfg.Level {
	case RAID1:
		out := make([]int, len(a.members))
		for i := range out {
			out[i] = i
		}
		return out
	case Cached:
		var set [2]bool
		for i := 0; i < pages; i++ {
			if _, ok := a.lines[lpn+addr.LPN(i)]; ok {
				set[0] = true
			} else {
				set[1] = true
			}
		}
		var out []int
		for i, on := range set {
			if on {
				out = append(out, i)
			}
		}
		return out
	}
	seen := make(map[int]bool)
	var out []int
	add := func(m int) {
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	kp := a.parityCount()
	for _, cr := range a.chunksOf(lpn, pages) {
		add(cr.member)
		for j := 0; j < kp; j++ {
			add(a.parityMember(cr.parity, j))
		}
	}
	return out
}

// chunkRange maps a contiguous page run of a host request onto one member.
type chunkRange struct {
	member int      // data member index
	mlpn   addr.LPN // member-local page address
	off    int      // page offset within the host request
	n      int      // pages
	stripe int64    // parity levels: global stripe id (lock key)
	parity int      // parity levels: first parity member of the stripe's rotation
	didx   int      // parity levels: logical data-shard index within the stripe
}

// parityCount returns the parity shards per stripe (0 for the non-parity
// levels).
func (a *Array) parityCount() int {
	switch a.cfg.Level {
	case RAID5, RAID6, RS:
		return a.cfg.Parity
	}
	return 0
}

// parityMember returns the member holding the j-th parity shard of a
// stripe whose rotating parity run starts at member p0.
func (a *Array) parityMember(p0, j int) int { return (p0 + j) % len(a.members) }

// isParityMember reports whether member m holds one of the k parity
// shards of a stripe whose parity run starts at p0.
func (a *Array) isParityMember(p0, m int) bool {
	d := m - p0
	if d < 0 {
		d += len(a.members)
	}
	return d < a.parityCount()
}

// dataMember returns the member holding logical data shard idx of a
// stripe whose parity run starts at p0: members in increasing index
// order, skipping the parity run. (For RAID-5's single parity this is the
// classic skip-one layout.)
func (a *Array) dataMember(p0, idx int) int {
	for m := 0; ; m++ {
		if a.isParityMember(p0, m) {
			continue
		}
		if idx == 0 {
			return m
		}
		idx--
	}
}

// slotOf returns member m's logical shard slot in a stripe whose parity
// run starts at p0: data shards 0..m-1 in member order, then parity
// shards in rotation order.
func (a *Array) slotOf(p0, m int) int {
	if a.isParityMember(p0, m) {
		d := m - p0
		if d < 0 {
			d += len(a.members)
		}
		return len(a.members) - a.parityCount() + d
	}
	slot := 0
	for i := 0; i < m; i++ {
		if !a.isParityMember(p0, i) {
			slot++
		}
	}
	return slot
}

// chunksOf splits [lpn, lpn+pages) into per-member chunk ranges for the
// striped levels (RAID-0 and the parity levels).
func (a *Array) chunksOf(lpn addr.LPN, pages int) []chunkRange {
	sp := int64(a.cfg.StripePages)
	n := int64(len(a.members))
	var out []chunkRange
	for off := 0; off < pages; {
		cur := int64(lpn) + int64(off)
		chunk := cur / sp
		in := cur % sp
		run := int(sp - in)
		if rem := pages - off; run > rem {
			run = rem
		}
		cr := chunkRange{off: off, n: run}
		switch a.cfg.Level {
		case RAID5, RAID6, RS:
			dataPer := n - int64(a.cfg.Parity)
			stripe := chunk / dataPer
			idx := int(chunk % dataPer)
			parity := int(stripe % n)
			cr.member = a.dataMember(parity, idx)
			cr.parity = parity
			cr.didx = idx
			cr.stripe = stripe
			cr.mlpn = addr.LPN(stripe*sp + in)
		default: // RAID0
			cr.member = int(chunk % n)
			cr.mlpn = addr.LPN((chunk/n)*sp + in)
		}
		out = append(out, cr)
		off += run
	}
	return out
}

// lockStripe serializes parity read-modify-write cycles per stripe; fn
// runs once the stripe is free and must call the returned release exactly
// once when its updates are complete.
func (a *Array) lockStripe(stripe int64, fn func(release func())) {
	release := func() {
		q, ok := a.stripeLocks[stripe]
		if !ok {
			return
		}
		if len(q) == 0 {
			delete(a.stripeLocks, stripe)
			return
		}
		next := q[0]
		a.stripeLocks[stripe] = q[1:]
		next()
	}
	run := func() { fn(release) }
	if _, busy := a.stripeLocks[stripe]; busy {
		a.stripeLocks[stripe] = append(a.stripeLocks[stripe], run)
		return
	}
	a.stripeLocks[stripe] = nil
	run()
}
