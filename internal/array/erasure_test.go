package array

import (
	"testing"

	"powerfail/internal/addr"
	"powerfail/internal/content"
	"powerfail/internal/sim"
	"powerfail/internal/ssd"
)

func rsConfig(n, parity int) Config {
	members := make([]ssd.Profile, n)
	for i := range members {
		members[i] = smallSSD()
	}
	return Config{Level: RS, Members: members, Parity: parity}
}

func TestCodedGeometry(t *testing.T) {
	r := newRig(t, raidConfig(RAID6, 5))
	member := r.arr.Drive(0).UserPages()
	sp := int64(r.arr.Config().StripePages)
	if got := r.arr.UserPages(); got != 3*(member/sp)*sp {
		t.Fatalf("raid6x5 capacity %d, want %d", got, 3*(member/sp)*sp)
	}
	if c := r.arr.code; c.M() != 3 || c.K() != 2 {
		t.Fatalf("raid6x5 code %d+%d, want 3+2", c.M(), c.K())
	}

	r = newRig(t, rsConfig(6, 3))
	member = r.arr.Drive(0).UserPages()
	if got := r.arr.UserPages(); got != 3*(member/sp)*sp {
		t.Fatalf("rs3+3 capacity %d, want %d", got, 3*(member/sp)*sp)
	}

	// Every stripe keeps its k parity members distinct from its data
	// members, and the parity run rotates across all members.
	seenParity := map[int]bool{}
	for s := int64(0); s < 6; s++ {
		first := addr.LPN(s * 3 * sp) // 3 data chunks per stripe
		crs := r.arr.chunksOf(first, int(3*sp))
		for _, cr := range crs {
			seenParity[cr.parity] = true
			if r.arr.isParityMember(cr.parity, cr.member) {
				t.Fatalf("stripe %d: data chunk on a parity member: %+v", s, cr)
			}
			if cr.stripe != s {
				t.Fatalf("stripe id %d, want %d", cr.stripe, s)
			}
		}
	}
	if len(seenParity) != 6 {
		t.Fatalf("parity run rotated over %d members, want 6", len(seenParity))
	}
}

func TestCodedRoundTripAndParity(t *testing.T) {
	for _, cfg := range []Config{raidConfig(RAID6, 4), rsConfig(6, 3)} {
		r := newRig(t, cfg)
		sp := r.arr.Config().StripePages
		kp := r.arr.parityCount()
		payload := content.Random(sim.NewRNG(5), 2*sp)
		if err := r.write(t, 0, payload); err != nil {
			t.Fatalf("%v: %v", cfg.Level, err)
		}
		got, err := r.read(t, 0, 2*sp)
		if err != nil || !got.Equal(payload) {
			t.Fatalf("%v round trip: err=%v equal=%v", cfg.Level, err, got.Equal(payload))
		}
		if r.arr.Stats().ParityRMWs == 0 {
			t.Fatalf("%v: no parity RMW cycles recorded", cfg.Level)
		}

		// Re-encoding the data shards of every touched row must give the
		// shards stored on the parity members.
		n := len(cfg.Members)
		for _, cr := range r.arr.chunksOf(0, 2*sp) {
			rows := make([]content.Data, n)
			for m := 0; m < n; m++ {
				rows[m] = readMember(t, r, m, cr.mlpn, cr.n)
			}
			for i := 0; i < cr.n; i++ {
				data := make([]content.Fingerprint, n-kp)
				for m := 0; m < n; m++ {
					if slot := r.arr.slotOf(cr.parity, m); slot < n-kp {
						data[slot] = rows[m].Page(i)
					}
				}
				parity := r.arr.code.Encode(data)
				for j := 0; j < kp; j++ {
					pm := r.arr.parityMember(cr.parity, j)
					if rows[pm].Page(i) != parity[j] {
						t.Fatalf("%v: parity %d inconsistent at chunk %+v page %d", cfg.Level, j, cr, i)
					}
				}
			}
		}
	}
}

// TestCodedReconstructEveryChunk drives the degraded-read path directly:
// for every chunk of a written range, reconstruction from the other
// members must reproduce the direct read, whichever member is missing.
func TestCodedReconstructEveryChunk(t *testing.T) {
	r := newRig(t, rsConfig(6, 3))
	sp := r.arr.Config().StripePages
	payload := content.Random(sim.NewRNG(6), 3*sp)
	if err := r.write(t, 0, payload); err != nil {
		t.Fatal(err)
	}
	before := r.arr.Stats().Reconstructions
	for _, cr := range r.arr.chunksOf(0, 3*sp) {
		direct := readMember(t, r, cr.member, cr.mlpn, cr.n)
		result := make([]content.Fingerprint, cr.off+cr.n)
		done := false
		var rerr error
		r.arr.codeReconstruct(cr, result, func(err error) { rerr = err; done = true })
		r.k.RunWhile(func() bool { return !done })
		if rerr != nil {
			t.Fatalf("reconstruct chunk %+v: %v", cr, rerr)
		}
		for i := 0; i < cr.n; i++ {
			if result[cr.off+i] != direct.Page(i) {
				t.Fatalf("chunk %+v page %d: reconstructed %x, direct %x", cr, i, result[cr.off+i], direct.Page(i))
			}
		}
	}
	if got := r.arr.Stats().Reconstructions - before; got == 0 {
		t.Fatal("no reconstructions recorded")
	}
}

// TestAttributeRedundancyExceeded generalizes the RAID-5 double-failure
// rule: a RAID-6 array tolerates any two dark members and only counts a
// redundancy-exceeded loss at the third.
func TestAttributeRedundancyExceeded(t *testing.T) {
	r := newRig(t, raidConfig(RAID6, 5))

	// One and two members down: ordinary data+parity attribution, no loss.
	r.arr.onMemberDown(1)
	r.arr.onMemberDown(3)
	got := r.arr.Attribute(0, 1)
	if len(got) != 3 { // data member + 2 parity members of the stripe
		t.Fatalf("two-failure attribution %v, want data+2 parity", got)
	}
	if n := r.arr.Stats().RedundancyExceededLosses; n != 0 {
		t.Fatalf("k simultaneous failures counted as loss: %d", n)
	}

	// Third member down: the code's tolerance is exceeded.
	r.arr.onMemberDown(0)
	got = r.arr.Attribute(0, 1)
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 3 {
		t.Fatalf("k+1-failure attribution %v, want the down members [0 1 3]", got)
	}
	if n := r.arr.Stats().RedundancyExceededLosses; n != 1 {
		t.Fatalf("RedundancyExceededLosses = %d, want 1", n)
	}

	// Recovery drops back below the threshold.
	r.arr.onMemberReady(0)
	if got = r.arr.Attribute(0, 1); len(got) != 3 {
		t.Fatalf("post-recovery attribution %v, want data+2 parity", got)
	}
	if n := r.arr.Stats().RedundancyExceededLosses; n != 1 {
		t.Fatalf("RedundancyExceededLosses = %d, want 1", n)
	}
}

func TestCodedFaultRecovery(t *testing.T) {
	for _, cfg := range []Config{raidConfig(RAID6, 4), rsConfig(5, 2)} {
		r := newRig(t, cfg)
		payload := content.Random(sim.NewRNG(7), 4)
		if err := r.write(t, 10, payload); err != nil {
			t.Fatalf("%v: %v", cfg.Level, err)
		}
		r.fault(t)
		if _, err := r.read(t, 10, 4); err != nil {
			t.Fatalf("%v: read after recovery: %v", cfg.Level, err)
		}
	}
}

func TestCodedConfigValidation(t *testing.T) {
	if _, err := New(sim.New(), sim.NewRNG(1), raidConfig(RAID6, 3), nil); err == nil {
		t.Fatal("raid6 with 3 members validated")
	}
	if _, err := New(sim.New(), sim.NewRNG(1), rsConfig(3, 2), nil); err == nil {
		t.Fatal("rs leaving one data member validated")
	}
	cfg := rsConfig(4, 0) // Parity 0 defaults to 2
	arr, err := New(sim.New(), sim.NewRNG(1), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if arr.Config().Parity != 2 {
		t.Fatalf("rs default parity %d, want 2", arr.Config().Parity)
	}
}
