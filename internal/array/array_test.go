package array

import (
	"testing"

	"powerfail/internal/addr"
	"powerfail/internal/blockdev"
	"powerfail/internal/content"
	"powerfail/internal/hdd"
	"powerfail/internal/power"
	"powerfail/internal/sim"
	"powerfail/internal/ssd"
)

// smallSSD keeps member FTL maps tiny.
func smallSSD() ssd.Profile {
	p := ssd.ProfileA()
	p.CapacityGB = 1
	p.Channels = 4
	p.Dies = 4
	return p.Normalize()
}

func raidConfig(level Level, n int) Config {
	members := make([]ssd.Profile, n)
	for i := range members {
		members[i] = smallSSD()
	}
	return Config{Level: level, Members: members}
}

type rig struct {
	k   *sim.Kernel
	psu *power.PSU
	arr *Array
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	k := sim.New()
	psu, err := power.New(k, power.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	arr, err := New(k, sim.NewRNG(7), cfg, psu)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{k: k, psu: psu, arr: arr}
}

func (r *rig) write(t *testing.T, lpn addr.LPN, data content.Data) error {
	t.Helper()
	var out error
	done := false
	r.arr.Submit(blockdev.OpWrite, lpn, data.Pages(), data, func(err error, _ content.Data) {
		out = err
		done = true
	})
	r.k.RunWhile(func() bool { return !done })
	if !done {
		t.Fatal("write never completed")
	}
	return out
}

func (r *rig) read(t *testing.T, lpn addr.LPN, pages int) (content.Data, error) {
	t.Helper()
	var out content.Data
	var rerr error
	done := false
	r.arr.Submit(blockdev.OpRead, lpn, pages, content.Data{}, func(err error, d content.Data) {
		out, rerr = d, err
		done = true
	})
	r.k.RunWhile(func() bool { return !done })
	if !done {
		t.Fatal("read never completed")
	}
	return out, rerr
}

// fault cuts the shared supply, lets the rail fully discharge, restores
// power, and waits until the whole array answers again.
func (r *rig) fault(t *testing.T) {
	t.Helper()
	r.psu.PowerOff()
	r.k.RunFor(2 * sim.Second)
	r.psu.PowerOn()
	r.k.RunFor(6 * sim.Second)
	if !r.arr.Ready() {
		t.Fatal("array not ready after power restore")
	}
}

func TestGeometryRAID0(t *testing.T) {
	r := newRig(t, raidConfig(RAID0, 3))
	member := r.arr.Drive(0).UserPages()
	if got := r.arr.UserPages(); got != 3*member {
		t.Fatalf("raid0 capacity %d, want %d", got, 3*member)
	}
	sp := r.arr.Config().StripePages
	// Consecutive chunks land on consecutive members, same row.
	crs := r.arr.chunksOf(0, 3*sp)
	if len(crs) != 3 {
		t.Fatalf("chunks: %d", len(crs))
	}
	for i, cr := range crs {
		if cr.member != i || cr.mlpn != 0 || cr.n != sp {
			t.Fatalf("chunk %d: %+v", i, cr)
		}
	}
	// The next stripe starts one row down on member 0.
	crs = r.arr.chunksOf(addr.LPN(3*sp), 1)
	if crs[0].member != 0 || crs[0].mlpn != addr.LPN(sp) {
		t.Fatalf("wrap chunk: %+v", crs[0])
	}
}

func TestGeometryRAID5(t *testing.T) {
	r := newRig(t, raidConfig(RAID5, 4))
	member := r.arr.Drive(0).UserPages()
	sp := int64(r.arr.Config().StripePages)
	if got := r.arr.UserPages(); got != 3*(member/sp)*sp {
		t.Fatalf("raid5 capacity %d, want %d", got, 3*(member/sp)*sp)
	}
	// Every stripe uses a distinct parity member and never places data on it.
	seenParity := map[int]bool{}
	for s := int64(0); s < 4; s++ {
		first := addr.LPN(s * 3 * sp) // 3 data chunks per stripe
		crs := r.arr.chunksOf(first, int(3*sp))
		par := crs[0].parity
		seenParity[par] = true
		for _, cr := range crs {
			if cr.parity != par {
				t.Fatalf("stripe %d: parity moved within stripe: %+v", s, crs)
			}
			if cr.member == par {
				t.Fatalf("stripe %d: data chunk on parity member: %+v", s, cr)
			}
			if cr.stripe != s {
				t.Fatalf("stripe id %d, want %d", cr.stripe, s)
			}
		}
	}
	if len(seenParity) != 4 {
		t.Fatalf("parity rotated over %d members, want 4", len(seenParity))
	}
}

func TestRAID0RoundTrip(t *testing.T) {
	r := newRig(t, raidConfig(RAID0, 2))
	payload := content.Random(sim.NewRNG(1), 64) // spans multiple chunks
	if err := r.write(t, 100, payload); err != nil {
		t.Fatal(err)
	}
	got, err := r.read(t, 100, 64)
	if err != nil || !got.Equal(payload) {
		t.Fatalf("raid0 round trip: err=%v equal=%v", err, got.Equal(payload))
	}
	ms := r.arr.Members()
	if ms[0].Writes == 0 || ms[1].Writes == 0 {
		t.Fatalf("striping did not touch both members: %+v", ms)
	}
}

func TestRAID1RoundTripAndRotation(t *testing.T) {
	r := newRig(t, raidConfig(RAID1, 2))
	payload := content.Random(sim.NewRNG(2), 8)
	if err := r.write(t, 40, payload); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		got, err := r.read(t, 40, 8)
		if err != nil || !got.Equal(payload) {
			t.Fatalf("mirror read %d: err=%v", i, err)
		}
	}
	ms := r.arr.Members()
	if ms[0].Writes != 1 || ms[1].Writes != 1 {
		t.Fatalf("mirror writes: %+v", ms)
	}
	if ms[0].Reads == 0 || ms[1].Reads == 0 {
		t.Fatalf("reads did not rotate: %+v", ms)
	}
}

func TestRAID5RoundTripAndParity(t *testing.T) {
	r := newRig(t, raidConfig(RAID5, 3))
	sp := r.arr.Config().StripePages
	payload := content.Random(sim.NewRNG(3), 2*sp) // two chunks, one stripe
	if err := r.write(t, 0, payload); err != nil {
		t.Fatal(err)
	}
	got, err := r.read(t, 0, 2*sp)
	if err != nil || !got.Equal(payload) {
		t.Fatalf("raid5 round trip: err=%v", err)
	}
	if r.arr.Stats().ParityRMWs == 0 {
		t.Fatal("no parity RMW cycles recorded")
	}
	// Reconstruction: XOR of the two siblings of any row must give the data.
	crs := r.arr.chunksOf(0, 2*sp)
	for _, cr := range crs {
		var sib []int
		for m := 0; m < 3; m++ {
			if m != cr.member {
				sib = append(sib, m)
			}
		}
		direct := readMember(t, r, cr.member, cr.mlpn, cr.n)
		x0 := readMember(t, r, sib[0], cr.mlpn, cr.n)
		x1 := readMember(t, r, sib[1], cr.mlpn, cr.n)
		for i := 0; i < cr.n; i++ {
			want := content.Fingerprint(uint64(x0.Page(i)) ^ uint64(x1.Page(i)))
			if direct.Page(i) != want {
				t.Fatalf("parity inconsistent at chunk %+v page %d", cr, i)
			}
		}
	}
}

func readMember(t *testing.T, r *rig, m int, lpn addr.LPN, pages int) content.Data {
	t.Helper()
	var out content.Data
	done := false
	r.arr.Drive(m).Submit(blockdev.OpRead, lpn, pages, content.Data{}, func(err error, d content.Data) {
		if err != nil {
			t.Fatalf("member %d read: %v", m, err)
		}
		out = d
		done = true
	})
	r.k.RunWhile(func() bool { return !done })
	return out
}

func TestArrayFaultRecovery(t *testing.T) {
	for _, level := range []Level{RAID0, RAID1, RAID5} {
		n := 2
		if level == RAID5 {
			n = 3
		}
		r := newRig(t, raidConfig(level, n))
		payload := content.Random(sim.NewRNG(4), 4)
		if err := r.write(t, 10, payload); err != nil {
			t.Fatalf("%v: %v", level, err)
		}
		readyFired := 0
		r.arr.NotifyReady(func() { readyFired++ })
		r.fault(t)
		if readyFired == 0 {
			t.Fatalf("%v: composite ready notification never fired", level)
		}
		if _, err := r.read(t, 10, 4); err != nil {
			t.Fatalf("%v: read after recovery: %v", level, err)
		}
	}
}

func TestAttribute(t *testing.T) {
	r := newRig(t, raidConfig(RAID5, 3))
	sp := r.arr.Config().StripePages
	got := r.arr.Attribute(0, 1)
	if len(got) != 2 {
		t.Fatalf("raid5 attribution %v, want data+parity", got)
	}
	got = r.arr.Attribute(0, 2*sp) // full stripe: both data members + parity
	if len(got) != 3 {
		t.Fatalf("raid5 full-stripe attribution %v", got)
	}

	m := newRig(t, raidConfig(RAID1, 3))
	if got := m.arr.Attribute(7, 2); len(got) != 3 {
		t.Fatalf("raid1 attribution %v, want all mirrors", got)
	}
}

// TestAttributeDoubleMemberFailure: with two RAID-5 members down at once,
// redundancy is exceeded and Attribute must return the explicit data-loss
// set (the down members) instead of falling into the single-failure
// data+parity path, and count the loss.
func TestAttributeDoubleMemberFailure(t *testing.T) {
	r := newRig(t, raidConfig(RAID5, 4))

	// One member down: still the ordinary data+parity attribution, no loss.
	r.arr.onMemberDown(2)
	got := r.arr.Attribute(0, 1)
	if len(got) != 2 {
		t.Fatalf("single-failure attribution %v, want data+parity", got)
	}
	if n := r.arr.Stats().RedundancyExceededLosses; n != 0 {
		t.Fatalf("single failure counted as double: %d", n)
	}

	// Second member down: every touched stripe is unrecoverable.
	r.arr.onMemberDown(0)
	got = r.arr.Attribute(0, 1)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("double-failure attribution %v, want the down members [0 2]", got)
	}
	if n := r.arr.Stats().RedundancyExceededLosses; n != 1 {
		t.Fatalf("RedundancyExceededLosses = %d, want 1", n)
	}

	// Three down: all three casualties are attributed.
	r.arr.onMemberDown(3)
	if got = r.arr.Attribute(0, 1); len(got) != 3 {
		t.Fatalf("triple-failure attribution %v, want 3 down members", got)
	}

	// Recovery drops back to the single-failure path.
	r.arr.onMemberReady(0)
	r.arr.onMemberReady(3)
	if got = r.arr.Attribute(0, 1); len(got) != 2 {
		t.Fatalf("post-recovery attribution %v, want data+parity", got)
	}
	if n := r.arr.Stats().RedundancyExceededLosses; n != 2 {
		t.Fatalf("RedundancyExceededLosses = %d, want 2", n)
	}
}

func cacheConfig(policy CachePolicy) Config {
	back := hdd.DefaultProfile()
	back.CapacityGB = 2
	return Config{Level: Cached, Cache: smallSSD(), Backing: back, Policy: policy}
}

func TestCacheHitMissAndDestage(t *testing.T) {
	r := newRig(t, cacheConfig(WriteBack))
	payload := content.Random(sim.NewRNG(5), 8)
	if err := r.write(t, 100, payload); err != nil {
		t.Fatal(err)
	}
	if r.arr.DirtyLines() != 8 {
		t.Fatalf("dirty lines %d, want 8", r.arr.DirtyLines())
	}
	got, err := r.read(t, 100, 8)
	if err != nil || !got.Equal(payload) {
		t.Fatalf("cached read: err=%v", err)
	}
	if r.arr.Stats().CacheHits != 8 {
		t.Fatalf("hits %d, want 8", r.arr.Stats().CacheHits)
	}
	if _, err := r.read(t, 5000, 4); err != nil {
		t.Fatal(err)
	}
	if r.arr.Stats().CacheMisses != 4 {
		t.Fatalf("misses %d, want 4", r.arr.Stats().CacheMisses)
	}
	// Destage drains the dirty population onto the backing drive.
	r.k.RunFor(2 * sim.Second)
	if r.arr.DirtyLines() != 0 {
		t.Fatalf("dirty lines %d after destage window", r.arr.DirtyLines())
	}
	if r.arr.Stats().Destages == 0 {
		t.Fatal("no destages recorded")
	}
	back := readBacking(t, r, 100, 8)
	if !back.Equal(payload) {
		t.Fatal("backing drive content differs after destage")
	}
}

func readBacking(t *testing.T, r *rig, lpn addr.LPN, pages int) content.Data {
	t.Helper()
	var out content.Data
	done := false
	r.arr.Backing().Submit(blockdev.OpRead, lpn, pages, content.Data{}, func(err error, d content.Data) {
		if err != nil {
			t.Fatalf("backing read: %v", err)
		}
		out = d
		done = true
	})
	r.k.RunWhile(func() bool { return !done })
	return out
}

// TestWriteThroughDurableUnderFault / TestWriteBackLosesUnderFault: the
// core acceptance pair. Write-through acknowledges only after the durable
// backend has the data, so a fault right after the ACK loses nothing;
// write-back acknowledges out of the cache SSD's volatile DRAM, so the
// same fault schedule loses acknowledged lines.
func TestWriteThroughDurableUnderFault(t *testing.T) {
	r := newRig(t, cacheConfig(WriteThrough))
	rng := sim.NewRNG(6)
	type rec struct {
		lpn  addr.LPN
		data content.Data
	}
	var acked []rec
	for cycle := 0; cycle < 4; cycle++ {
		for i := 0; i < 6; i++ {
			p := rec{lpn: addr.LPN(rng.Intn(1 << 16)), data: content.Random(rng, 1+rng.Intn(8))}
			if err := r.write(t, p.lpn, p.data); err == nil {
				acked = append(acked, p)
			}
		}
		r.fault(t)
	}
	if len(acked) == 0 {
		t.Fatal("no writes acknowledged")
	}
	if r.arr.Stats().LinesDropped == 0 {
		t.Fatal("write-through recovery should drop the cache")
	}
	for _, p := range acked {
		got, err := r.read(t, p.lpn, p.data.Pages())
		if err != nil {
			t.Fatalf("verify read: %v", err)
		}
		if !got.Equal(p.data) {
			t.Fatalf("write-through lost acknowledged data at %v", p.lpn)
		}
	}
}

func TestWriteBackLosesUnderFault(t *testing.T) {
	r := newRig(t, cacheConfig(WriteBack))
	rng := sim.NewRNG(6)
	lost := 0
	for cycle := 0; cycle < 4; cycle++ {
		type rec struct {
			lpn  addr.LPN
			data content.Data
		}
		var acked []rec
		for i := 0; i < 6; i++ {
			p := rec{lpn: addr.LPN(rng.Intn(1 << 16)), data: content.Random(rng, 1+rng.Intn(8))}
			if err := r.write(t, p.lpn, p.data); err == nil {
				acked = append(acked, p)
			}
		}
		// Cut immediately after the last ACK: dirty lines sit in the cache
		// SSD's volatile DRAM and die with it.
		r.fault(t)
		for _, p := range acked {
			got, err := r.read(t, p.lpn, p.data.Pages())
			if err != nil || !got.Equal(p.data) {
				lost++
			}
		}
	}
	if lost == 0 {
		t.Fatal("write-back cache never lost acknowledged data under faults")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Level: RAID0, Members: []ssd.Profile{smallSSD()}},
		{Level: RAID1, Members: []ssd.Profile{smallSSD()}},
		{Level: RAID5, Members: []ssd.Profile{smallSSD(), smallSSD()}},
		{Level: Cached, Members: []ssd.Profile{smallSSD()}},
		{Level: Level(99)},
	}
	for i, cfg := range bad {
		if err := cfg.withDefaults().Validate(); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
	if err := raidConfig(RAID5, 3).withDefaults().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOutOfRange(t *testing.T) {
	r := newRig(t, raidConfig(RAID0, 2))
	done := false
	var gotErr error
	r.arr.Submit(blockdev.OpWrite, addr.LPN(r.arr.UserPages()), 1, content.Zeroes(1), func(err error, _ content.Data) {
		gotErr = err
		done = true
	})
	r.k.RunWhile(func() bool { return !done })
	if gotErr == nil {
		t.Fatal("out-of-range write accepted")
	}
}

func TestArrayDeterminism(t *testing.T) {
	run := func() (Stats, []MemberStats, content.Data) {
		r := newRigT(cacheConfig(WriteBack))
		rng := sim.NewRNG(9)
		for i := 0; i < 10; i++ {
			lpn := addr.LPN(rng.Intn(1 << 14))
			data := content.Random(rng, 1+rng.Intn(4))
			done := false
			r.arr.Submit(blockdev.OpWrite, lpn, data.Pages(), data, func(error, content.Data) { done = true })
			r.k.RunWhile(func() bool { return !done })
		}
		r.psu.PowerOff()
		r.k.RunFor(2 * sim.Second)
		r.psu.PowerOn()
		r.k.RunFor(6 * sim.Second)
		var out content.Data
		done := false
		r.arr.Submit(blockdev.OpRead, 0, 8, content.Data{}, func(_ error, d content.Data) {
			out = d
			done = true
		})
		r.k.RunWhile(func() bool { return !done })
		return r.arr.Stats(), r.arr.Members(), out
	}
	s1, m1, d1 := run()
	s2, m2, d2 := run()
	if s1 != s2 {
		t.Fatalf("stats diverged:\n%+v\n%+v", s1, s2)
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatalf("member %d diverged: %+v vs %+v", i, m1[i], m2[i])
		}
	}
	if !d1.Equal(d2) {
		t.Fatal("read-back content diverged")
	}
}

// newRigT builds a rig without a testing.T (determinism runs).
func newRigT(cfg Config) *rig {
	k := sim.New()
	psu, err := power.New(k, power.DefaultConfig())
	if err != nil {
		panic(err)
	}
	arr, err := New(k, sim.NewRNG(7), cfg, psu)
	if err != nil {
		panic(err)
	}
	return &rig{k: k, psu: psu, arr: arr}
}

// TestBypassDoesNotResurrectStaleDestage: when a full cache forces a
// write to bypass to the backing drive, the overlapping dirty line is
// invalidated and its slot reused — but its old dirty-FIFO entry must
// never destage the reused slot's content to the old backing address,
// and the dirty line may only be dropped once the bypass write is
// durable.
func TestBypassDoesNotResurrectStaleDestage(t *testing.T) {
	r := newRig(t, cacheConfig(WriteBack))
	r.arr.ssdPages = 4 // white-box: shrink the cache to 4 slots

	base := content.Random(sim.NewRNG(10), 4)
	if err := r.write(t, 0, base); err != nil { // fills every slot, all dirty
		t.Fatal(err)
	}
	bypass := content.Random(sim.NewRNG(11), 2)
	if err := r.write(t, 3, bypass); err != nil { // lpn 4 has no slot: bypass
		t.Fatal(err)
	}
	if r.arr.Stats().Bypasses == 0 {
		t.Fatal("bypass path not exercised")
	}
	reuse := content.Random(sim.NewRNG(12), 1)
	if err := r.write(t, 20, reuse); err != nil { // reuses lpn 3's freed slot
		t.Fatal(err)
	}
	r.k.RunFor(2 * sim.Second) // let every destage settle

	got, err := r.read(t, 3, 2)
	if err != nil || !got.Equal(bypass) {
		t.Fatalf("bypass write lost (err=%v)", err)
	}
	if back := readBacking(t, r, 3, 1); back.Page(0) != bypass.Page(0) {
		t.Fatal("stale destage resurrected old content on the backing drive")
	}
	got, err = r.read(t, 20, 1)
	if err != nil || !got.Equal(reuse) {
		t.Fatalf("slot-reusing write lost (err=%v)", err)
	}
	if back := readBacking(t, r, 0, 3); !back.Equal(base.Slice(0, 3)) {
		t.Fatal("untouched dirty lines did not destage their own content")
	}
}

// TestFlushDuringBypassDoesNotHang: OpFlush while a bypass write holds a
// pin on a dirty line must complete — destageAll drains the queue before
// destaging, so the pinned line's synchronous re-queue cannot livelock it.
func TestFlushDuringBypassDoesNotHang(t *testing.T) {
	r := newRig(t, cacheConfig(WriteBack))
	r.arr.ssdPages = 4
	if err := r.write(t, 0, content.Random(sim.NewRNG(13), 4)); err != nil {
		t.Fatal(err)
	}
	writeDone, flushDone := false, false
	r.arr.Submit(blockdev.OpWrite, 3, 2, content.Random(sim.NewRNG(14), 2),
		func(error, content.Data) { writeDone = true })
	// The bypass backing write is now in flight and pins the dirty line.
	r.arr.Submit(blockdev.OpFlush, 0, 0, content.Data{},
		func(error, content.Data) { flushDone = true })
	r.k.RunWhile(func() bool { return !(writeDone && flushDone) })
	if !writeDone || !flushDone {
		t.Fatalf("hung: write=%v flush=%v", writeDone, flushDone)
	}
}
