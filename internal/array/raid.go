package array

import (
	"powerfail/internal/addr"
	"powerfail/internal/blockdev"
	"powerfail/internal/content"
	"powerfail/internal/obs"
)

// --- RAID-0: striping ---

func (a *Array) submitRAID0(op blockdev.Op, lpn addr.LPN, pages int, data content.Data, done func(error, content.Data)) {
	chunks := a.chunksOf(lpn, pages)
	result := make([]content.Fingerprint, pages)
	parts := len(chunks)
	var firstErr error
	for _, cr := range chunks {
		cr := cr
		var payload content.Data
		if op == blockdev.OpWrite {
			payload = data.Slice(cr.off, cr.n)
		}
		a.memberSubmit(cr.member, op, cr.mlpn, cr.n, payload, func(err error, res content.Data) {
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
			} else if op == blockdev.OpRead {
				for i := 0; i < cr.n; i++ {
					result[cr.off+i] = res.Page(i)
				}
			}
			parts--
			if parts == 0 {
				a.finishStriped(op, pages, result, firstErr, done)
			}
		})
	}
}

func (a *Array) finishStriped(op blockdev.Op, pages int, result []content.Fingerprint, err error, done func(error, content.Data)) {
	if err != nil {
		done(err, content.Data{})
		return
	}
	if op == blockdev.OpRead {
		done(nil, content.Gather(pages, func(i int) content.Fingerprint { return result[i] }))
		return
	}
	done(nil, content.Data{})
}

// --- RAID-1: mirroring ---

func (a *Array) submitRAID1(op blockdev.Op, lpn addr.LPN, pages int, data content.Data, done func(error, content.Data)) {
	if op == blockdev.OpWrite {
		parts := len(a.members)
		acks := 0
		var firstErr error
		for i := range a.members {
			a.memberSubmit(i, op, lpn, pages, data, func(err error, _ content.Data) {
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
				} else {
					acks++
				}
				parts--
				if parts == 0 {
					if acks > 0 && acks < len(a.members) {
						// The copies no longer agree; the host is told the
						// write failed, but a replica carries the new data.
						a.stats.Divergences++
					}
					done(firstErr, content.Data{})
				}
			})
		}
		return
	}
	a.mirrorRead(lpn, pages, a.nextReplica(), 0, done)
}

// nextReplica rotates reads across the ready mirrors; with no mirror
// ready it still rotates so error latency comes from a real member.
func (a *Array) nextReplica() int {
	n := len(a.members)
	for tries := 0; tries < n; tries++ {
		i := a.rrNext % n
		a.rrNext++
		if a.members[i].Ready() {
			return i
		}
	}
	return a.rrNext % n
}

// mirrorRead serves the read from one replica, redirecting to the next on
// error until every mirror has been tried.
func (a *Array) mirrorRead(lpn addr.LPN, pages, member, tried int, done func(error, content.Data)) {
	a.memberSubmit(member, blockdev.OpRead, lpn, pages, content.Data{}, func(err error, res content.Data) {
		if err == nil {
			done(nil, res)
			return
		}
		if tried+1 < len(a.members) {
			a.stats.RedirectedReads++
			a.mirrorRead(lpn, pages, (member+1)%len(a.members), tried+1, done)
			return
		}
		done(err, content.Data{})
	})
}

// --- RAID-5: rotating parity with read-modify-write ---

func (a *Array) submitRAID5(op blockdev.Op, lpn addr.LPN, pages int, data content.Data, done func(error, content.Data)) {
	chunks := a.chunksOf(lpn, pages)
	result := make([]content.Fingerprint, pages)
	parts := len(chunks)
	var firstErr error
	finishChunk := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
		parts--
		if parts == 0 {
			a.finishStriped(op, pages, result, firstErr, done)
		}
	}
	for _, cr := range chunks {
		cr := cr
		if op == blockdev.OpRead {
			a.raid5Read(cr, result, finishChunk)
		} else {
			a.lockStripe(cr.stripe, func(release func()) {
				a.raid5RMW(cr, data, func(err error) {
					release()
					finishChunk(err)
				})
			})
		}
	}
}

// raid5Read reads the data member directly and falls back to
// reconstruction from the surviving members plus parity on error.
func (a *Array) raid5Read(cr chunkRange, result []content.Fingerprint, done func(error)) {
	a.memberSubmit(cr.member, blockdev.OpRead, cr.mlpn, cr.n, content.Data{}, func(err error, res content.Data) {
		if err == nil {
			for i := 0; i < cr.n; i++ {
				result[cr.off+i] = res.Page(i)
			}
			done(nil)
			return
		}
		a.raid5Reconstruct(cr, result, done)
	})
}

// raid5Reconstruct recovers cr's pages as the XOR of the same rows on
// every other member (the data siblings and the parity chunk).
func (a *Array) raid5Reconstruct(cr chunkRange, result []content.Fingerprint, done func(error)) {
	a.stats.Reconstructions++
	a.tele.reconstructions.Inc()
	a.tele.sc.Instant(a.k.Now(), obs.KindInstant, "reconstruction", int64(cr.mlpn))
	acc := make([]uint64, cr.n)
	parts := 0
	var firstErr error
	for m := range a.members {
		if m == cr.member {
			continue
		}
		parts++
		a.memberSubmit(m, blockdev.OpRead, cr.mlpn, cr.n, content.Data{}, func(err error, res content.Data) {
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
			} else {
				for i := 0; i < cr.n; i++ {
					acc[i] ^= uint64(res.Page(i))
				}
			}
			parts--
			if parts == 0 {
				if firstErr != nil {
					done(firstErr)
					return
				}
				for i := 0; i < cr.n; i++ {
					result[cr.off+i] = content.Fingerprint(acc[i])
				}
				done(nil)
			}
		})
	}
}

// raid5RMW performs the small-write cycle on one chunk range: read old
// data and old parity, delta the parity, then write both concurrently.
// A fault landing between the two write acknowledgements is the write
// hole; it is counted when exactly one side lands.
func (a *Array) raid5RMW(cr chunkRange, data content.Data, done func(error)) {
	a.stats.ParityRMWs++
	a.tele.parityRMWs.Inc()
	var oldData, oldParity content.Data
	reads := 2
	var readErr error
	afterReads := func() {
		if readErr != nil {
			// Nothing was written: the stripe is untouched, no hole.
			done(readErr)
			return
		}
		newData := data.Slice(cr.off, cr.n)
		newParity := content.Gather(cr.n, func(i int) content.Fingerprint {
			return content.Fingerprint(uint64(oldParity.Page(i)) ^ uint64(oldData.Page(i)) ^ uint64(newData.Page(i)))
		})
		writes := 2
		var dataErr, parityErr error
		afterWrites := func() {
			if (dataErr == nil) != (parityErr == nil) {
				a.stats.WriteHoles++
				a.tele.writeHoles.Inc()
				a.tele.sc.Instant(a.k.Now(), obs.KindInstant, "write_hole", int64(cr.mlpn))
			}
			if dataErr != nil {
				done(dataErr)
			} else {
				done(parityErr)
			}
		}
		a.memberSubmit(cr.member, blockdev.OpWrite, cr.mlpn, cr.n, newData, func(err error, _ content.Data) {
			dataErr = err
			writes--
			if writes == 0 {
				afterWrites()
			}
		})
		a.memberSubmit(cr.parity, blockdev.OpWrite, cr.mlpn, cr.n, newParity, func(err error, _ content.Data) {
			parityErr = err
			writes--
			if writes == 0 {
				afterWrites()
			}
		})
	}
	a.memberSubmit(cr.member, blockdev.OpRead, cr.mlpn, cr.n, content.Data{}, func(err error, res content.Data) {
		if err != nil && readErr == nil {
			readErr = err
		}
		oldData = res
		reads--
		if reads == 0 {
			afterReads()
		}
	})
	a.memberSubmit(cr.parity, blockdev.OpRead, cr.mlpn, cr.n, content.Data{}, func(err error, res content.Data) {
		if err != nil && readErr == nil {
			readErr = err
		}
		oldParity = res
		reads--
		if reads == 0 {
			afterReads()
		}
	})
}
