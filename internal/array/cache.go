package array

import (
	"sort"

	"powerfail/internal/addr"
	"powerfail/internal/blockdev"
	"powerfail/internal/content"
	"powerfail/internal/sim"
)

// Cached-level member indices.
const (
	cacheIdx   = 0
	backingIdx = 1
)

// cline is one cached backing page: its slot on the cache SSD, the dirty
// flag, and a sequence number so a stale destage completion can never mark
// a re-written line clean. Dirty lines form an intrusive FIFO.
type cline struct {
	lpn   addr.LPN // backing address
	slot  addr.LPN // cache-SSD address
	dirty bool
	seq   uint64
	next  *cline // dirty-FIFO link (nil when not queued)
	inQ   bool
	// pins holds off destaging while a bypass write to the same backing
	// range is in flight (the destage would land after it and resurrect
	// the old content).
	pins int
}

func (a *Array) pushDirty(ln *cline) {
	if ln.inQ {
		return
	}
	ln.inQ = true
	ln.next = nil
	if a.dirtyTail == nil {
		a.dirtyHead, a.dirtyTail = ln, ln
	} else {
		a.dirtyTail.next = ln
		a.dirtyTail = ln
	}
}

func (a *Array) popDirty() *cline {
	ln := a.dirtyHead
	if ln == nil {
		return nil
	}
	a.dirtyHead = ln.next
	if a.dirtyHead == nil {
		a.dirtyTail = nil
	}
	ln.next = nil
	ln.inQ = false
	return ln
}

// DirtyLines reports lines acknowledged to the host but not yet destaged
// to the backing drive (write-back exposure).
func (a *Array) DirtyLines() int {
	n := 0
	for _, ln := range a.lines {
		if ln.dirty {
			n++
		}
	}
	return n
}

func (a *Array) allocSlot() (addr.LPN, bool) {
	if n := len(a.freeSlots); n > 0 {
		s := a.freeSlots[n-1]
		a.freeSlots = a.freeSlots[:n-1]
		return s, true
	}
	if int64(a.nextSlot) < a.ssdPages {
		s := a.nextSlot
		a.nextSlot++
		return s, true
	}
	return 0, false
}

func (a *Array) dropLine(ln *cline) {
	if a.lines[ln.lpn] == ln {
		delete(a.lines, ln.lpn)
		a.freeSlots = append(a.freeSlots, ln.slot)
	}
}

// recoverCache runs when the last member of a downed array comes back: a
// write-through cache is disposable and is dropped wholesale; a write-back
// cache may drop clean lines but *must* keep the dirty ones — the cache
// SSD holds the only copy, so whatever that SSD lost is simply gone.
func (a *Array) recoverCache() {
	// Walk the line map in address order: dropLine returns slots to the
	// free list, and a map-order walk would make post-recovery slot
	// allocation — and with it the whole simulation — nondeterministic.
	lpns := make([]addr.LPN, 0, len(a.lines))
	for lpn := range a.lines {
		lpns = append(lpns, lpn)
	}
	sort.Slice(lpns, func(i, j int) bool { return lpns[i] < lpns[j] })
	for _, lpn := range lpns {
		if ln := a.lines[lpn]; a.cfg.Policy == WriteThrough || !ln.dirty {
			a.dropLine(ln)
			a.stats.LinesDropped++
		}
	}
}

func (a *Array) submitCached(op blockdev.Op, lpn addr.LPN, pages int, data content.Data, done func(error, content.Data)) {
	if op == blockdev.OpRead {
		a.cachedRead(lpn, pages, done)
		return
	}
	a.cachedWrite(lpn, pages, data, done)
}

// slotRun is a maximal run of request pages whose cache slots (hits) or
// backing addresses (misses) are contiguous, so it can go out as one
// member request.
type slotRun struct {
	member int
	at     addr.LPN
	off    int
	n      int
}

// cachedRead serves hits from the cache SSD and misses from the backing
// drive, page-run by page-run.
func (a *Array) cachedRead(lpn addr.LPN, pages int, done func(error, content.Data)) {
	var runs []slotRun
	for i := 0; i < pages; i++ {
		p := lpn + addr.LPN(i)
		var member int
		var at addr.LPN
		if ln, ok := a.lines[p]; ok {
			a.stats.CacheHits++
			member, at = cacheIdx, ln.slot
		} else {
			a.stats.CacheMisses++
			member, at = backingIdx, p
		}
		if n := len(runs); n > 0 && runs[n-1].member == member && runs[n-1].at+addr.LPN(runs[n-1].n) == at {
			runs[n-1].n++
			continue
		}
		runs = append(runs, slotRun{member: member, at: at, off: i, n: 1})
	}
	result := make([]content.Fingerprint, pages)
	parts := len(runs)
	var firstErr error
	for _, r := range runs {
		r := r
		a.memberSubmit(r.member, blockdev.OpRead, r.at, r.n, content.Data{}, func(err error, res content.Data) {
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
			} else {
				for i := 0; i < r.n; i++ {
					result[r.off+i] = res.Page(i)
				}
			}
			parts--
			if parts == 0 {
				a.finishStriped(blockdev.OpRead, pages, result, firstErr, done)
			}
		})
	}
}

// cachedWrite places the pages on the cache SSD and, depending on policy,
// acknowledges immediately (write-back: the lines turn dirty and destage
// later) or also writes the backing drive and waits for both
// (write-through). With no free slots the request bypasses the cache.
func (a *Array) cachedWrite(lpn addr.LPN, pages int, data content.Data, done func(error, content.Data)) {
	// Reserve every slot up front; bail to the bypass path on pressure.
	lines := make([]*cline, pages)
	ok := true
	for i := 0; i < pages; i++ {
		p := lpn + addr.LPN(i)
		if ln, exists := a.lines[p]; exists {
			lines[i] = ln
			continue
		}
		slot, got := a.allocSlot()
		if !got {
			ok = false
			break
		}
		ln := &cline{lpn: p, slot: slot}
		a.lines[p] = ln
		lines[i] = ln
	}
	if !ok {
		// Write through to the backing drive. Fresh allocations and clean
		// overlaps are invalidated now (the backing drive is about to hold
		// newer data); dirty overlaps still guard the only copy of earlier
		// acknowledged writes, so they are dropped only once the replacing
		// backing write is durable — and kept if it fails.
		var dirtyOverlaps []*cline
		for i := 0; i < pages; i++ {
			switch ln := lines[i]; {
			case ln == nil:
			case ln.dirty:
				ln.pins++
				dirtyOverlaps = append(dirtyOverlaps, ln)
			default:
				a.dropLine(ln)
			}
		}
		a.stats.Bypasses++
		a.memberSubmit(backingIdx, blockdev.OpWrite, lpn, pages, data, func(err error, _ content.Data) {
			for _, ln := range dirtyOverlaps {
				ln.pins--
				if err == nil {
					a.dropLine(ln)
				}
			}
			done(err, content.Data{})
		})
		return
	}

	seqs := make([]uint64, pages)
	for i, ln := range lines {
		ln.seq++
		seqs[i] = ln.seq
	}

	// Group the (possibly discontiguous) slots into contiguous SSD writes.
	var runs []slotRun
	for i, ln := range lines {
		if n := len(runs); n > 0 && runs[n-1].at+addr.LPN(runs[n-1].n) == ln.slot {
			runs[n-1].n++
			continue
		}
		runs = append(runs, slotRun{member: cacheIdx, at: ln.slot, off: i, n: 1})
	}

	parts := len(runs)
	var ssdErr error
	hddPending := a.cfg.Policy == WriteThrough
	var hddErr error
	finish := func() {
		if parts > 0 || hddPending {
			return
		}
		if a.cfg.Policy == WriteBack {
			if ssdErr != nil {
				// The slots hold unknown content; drop the lines that are
				// not protecting earlier acknowledged (dirty) data.
				for i, ln := range lines {
					if a.lines[ln.lpn] == ln && ln.seq == seqs[i] && !ln.dirty {
						a.dropLine(ln)
					}
				}
				done(ssdErr, content.Data{})
				return
			}
			for i, ln := range lines {
				if a.lines[ln.lpn] == ln && ln.seq == seqs[i] {
					ln.dirty = true
					a.pushDirty(ln)
				}
			}
			a.scheduleDestage()
			done(nil, content.Data{})
			return
		}
		// Write-through: the backing drive is authoritative. A cache-side
		// failure only costs the lines; a backing failure fails the write.
		if ssdErr != nil {
			for _, ln := range lines {
				a.dropLine(ln)
			}
		}
		done(hddErr, content.Data{})
	}
	for _, r := range runs {
		r := r
		a.memberSubmit(cacheIdx, blockdev.OpWrite, r.at, r.n, data.Slice(r.off, r.n), func(err error, _ content.Data) {
			if err != nil && ssdErr == nil {
				ssdErr = err
			}
			parts--
			finish()
		})
	}
	if a.cfg.Policy == WriteThrough {
		a.memberSubmit(backingIdx, blockdev.OpWrite, lpn, pages, data, func(err error, _ content.Data) {
			hddErr = err
			hddPending = false
			finish()
		})
	}
}

// --- write-back destaging ---

func (a *Array) scheduleDestage() {
	if a.destaging.Pending() || a.dirtyHead == nil {
		return
	}
	a.destaging = a.k.After(a.cfg.DestageTick, a.destageTick)
}

func (a *Array) destageTick() {
	a.destaging = sim.Timer{}
	// With a member down the copies can only fail; hold the dirty queue
	// and let the tick idle until the array recovers.
	if a.members[cacheIdx].Ready() && a.members[backingIdx].Ready() {
		for n := 0; n < a.cfg.DestageBatchPages; n++ {
			ln := a.popDirty()
			if ln == nil {
				break
			}
			a.destageLine(ln)
		}
	}
	a.scheduleDestage()
}

// destageAll pushes the whole dirty population at the backing drive now
// (flush command path). The queue is drained before any line is destaged:
// a pinned line re-queues itself synchronously, so popping while destaging
// would spin on it forever.
func (a *Array) destageAll() {
	var batch []*cline
	for {
		ln := a.popDirty()
		if ln == nil {
			break
		}
		batch = append(batch, ln)
	}
	for _, ln := range batch {
		a.destageLine(ln)
	}
}

// destageLine copies one dirty line from the cache SSD to the backing
// drive. The content read from the SSD is trusted: if a power fault
// corrupted the line on the cache device, the corruption propagates — the
// array has no second copy to compare against.
func (a *Array) destageLine(ln *cline) {
	// The queue entry may be stale: the line can have been invalidated
	// (bypass, crash recovery) or cleaned since it was pushed. Its slot
	// may already belong to another line, so touching it would copy the
	// wrong content to the old backing address.
	if a.lines[ln.lpn] != ln || !ln.dirty {
		return
	}
	snap := ln.seq
	requeue := func() {
		if a.lines[ln.lpn] == ln && ln.dirty {
			a.pushDirty(ln)
			a.scheduleDestage()
		}
	}
	if ln.pins > 0 {
		requeue()
		return
	}
	a.memberSubmit(cacheIdx, blockdev.OpRead, ln.slot, 1, content.Data{}, func(err error, res content.Data) {
		if err != nil {
			requeue()
			return
		}
		if a.lines[ln.lpn] != ln || !ln.dirty {
			return // invalidated or cleaned while the read was in flight
		}
		if ln.pins > 0 {
			requeue()
			return
		}
		a.memberSubmit(backingIdx, blockdev.OpWrite, ln.lpn, 1, res, func(err error, _ content.Data) {
			if err != nil {
				requeue()
				return
			}
			a.stats.Destages++
			if a.lines[ln.lpn] == ln {
				if ln.seq == snap {
					ln.dirty = false
				} else {
					a.pushDirty(ln)
					a.scheduleDestage()
				}
			}
		})
	})
}
