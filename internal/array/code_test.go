package array

import (
	"errors"
	"math/bits"
	"testing"

	"powerfail/internal/content"
	"powerfail/internal/sim"
)

func TestGFAlgebra(t *testing.T) {
	// exp/log tables invert each other.
	for a := 1; a < 256; a++ {
		if int(gfExp[gfLog[a]]) != a {
			t.Fatalf("exp/log mismatch at %d", a)
		}
	}
	// Multiplication: identity, commutativity, inverse, distributivity
	// over XOR (GF addition) on a sampled grid.
	for a := 0; a < 256; a += 7 {
		ab := byte(a)
		if gfMul(ab, 1) != ab {
			t.Fatalf("1 is not the multiplicative identity for %d", a)
		}
		if ab != 0 {
			if gfMul(ab, gfInv(ab)) != 1 {
				t.Fatalf("a*inv(a) != 1 for %d", a)
			}
		}
		for b := 0; b < 256; b += 11 {
			bb := byte(b)
			if gfMul(ab, bb) != gfMul(bb, ab) {
				t.Fatalf("multiplication not commutative at %d,%d", a, b)
			}
			for c := 0; c < 256; c += 29 {
				cb := byte(c)
				if gfMul(ab, bb^cb) != gfMul(ab, bb)^gfMul(ab, cb) {
					t.Fatalf("not distributive at %d,%d,%d", a, b, c)
				}
			}
		}
	}
}

func TestGFMulFPPerLane(t *testing.T) {
	// Multiplying a fingerprint is multiplying each of its 8 byte lanes.
	rng := sim.NewRNG(41)
	data := content.Random(rng, 64)
	for i := 0; i < 64; i++ {
		f := uint64(data.Page(i))
		c := byte(i*5 + 1)
		got := gfMulFP(c, f)
		for sh := uint(0); sh < 64; sh += 8 {
			want := gfMul(c, byte(f>>sh))
			if byte(got>>sh) != want {
				t.Fatalf("lane %d of gfMulFP(%d, %x): got %x want %x", sh/8, c, f, byte(got>>sh), want)
			}
		}
	}
}

// TestCodeReconstructAllPatterns pins the MDS property exhaustively for
// every geometry the figures use: any pattern of at most k erasures
// round-trips exactly, and any larger pattern reports ErrTooManyErasures.
func TestCodeReconstructAllPatterns(t *testing.T) {
	geometries := []struct{ m, k int }{
		{4, 1}, // raid5x5
		{3, 2},
		{4, 2}, // raid6x6
		{8, 3}, // rs8+3
		{6, 4},
	}
	for _, g := range geometries {
		c := newCode(g.m, g.k)
		n := g.m + g.k
		data := make([]content.Fingerprint, g.m)
		src := content.Random(sim.NewRNG(uint64(g.m*100+g.k)), g.m)
		for i := range data {
			data[i] = src.Page(i)
		}
		parity := c.Encode(data)
		full := append(append([]content.Fingerprint{}, data...), parity...)

		shards := make([]content.Fingerprint, n)
		present := make([]bool, n)
		for mask := 1; mask < 1<<n; mask++ {
			missing := bits.OnesCount(uint(mask))
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					shards[i], present[i] = 0, false
				} else {
					shards[i], present[i] = full[i], true
				}
			}
			err := c.Reconstruct(shards, present)
			if missing > g.k {
				var tooMany ErrTooManyErasures
				if !errors.As(err, &tooMany) || tooMany.Missing != missing {
					t.Fatalf("%d+%d mask %b: want ErrTooManyErasures(%d), got %v", g.m, g.k, mask, missing, err)
				}
				continue
			}
			if err != nil {
				t.Fatalf("%d+%d mask %b: reconstruct failed: %v", g.m, g.k, mask, err)
			}
			for i := 0; i < n; i++ {
				if shards[i] != full[i] {
					t.Fatalf("%d+%d mask %b: shard %d reconstructed to %x, want %x", g.m, g.k, mask, i, shards[i], full[i])
				}
			}
		}
	}
}

// TestCodeK1IsXOR pins that the single-parity code is plain XOR — the
// algebra the RAID-5 path implements directly.
func TestCodeK1IsXOR(t *testing.T) {
	c := newCode(4, 1)
	data := []content.Fingerprint{0x1122334455667788, 0xa5a5a5a5a5a5a5a5, 0xdeadbeefcafef00d, 0x0123456789abcdef}
	var x uint64
	for _, d := range data {
		x ^= uint64(d)
	}
	if p := c.Encode(data); uint64(p[0]) != x {
		t.Fatalf("k=1 parity %x, want plain XOR %x", p[0], x)
	}
}

func TestCodeGeometryPanics(t *testing.T) {
	for _, g := range []struct{ m, k int }{{0, 1}, {1, 0}, {250, 6}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("newCode(%d, %d) did not panic", g.m, g.k)
				}
			}()
			newCode(g.m, g.k)
		}()
	}
}
