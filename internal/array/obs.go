package array

import (
	"powerfail/internal/obs"
)

// arrayObs holds the composite's observability handles; the zero value
// is the disabled state (nil handles no-op).
type arrayObs struct {
	sc                 obs.Scope
	writeHoles         *obs.Counter
	reconstructions    *obs.Counter
	parityRMWs         *obs.Counter
	redundancyExceeded *obs.Counter
}

// Observe attaches the array to an observability scope, recording the
// multi-device failure phenomena as counters plus trace instants: parity
// write holes, degraded-read reconstructions and redundancy-exceeded
// losses. A disabled scope is a no-op.
func (a *Array) Observe(sc obs.Scope) {
	if !sc.Enabled() {
		return
	}
	a.tele = arrayObs{
		sc:                 sc,
		writeHoles:         sc.Counter("write_holes"),
		reconstructions:    sc.Counter("reconstructions"),
		parityRMWs:         sc.Counter("parity_rmws"),
		redundancyExceeded: sc.Counter("redundancy_exceeded_losses"),
	}
}
