package array

import (
	"fmt"

	"powerfail/internal/content"
)

// Code is an m+k maximum-distance-separable erasure code over page
// fingerprints: m data shards produce k parity shards, and the stripe
// survives the loss of any k of its m+k shards. Shards are indexed by
// logical slot: data 0..m-1, then parity m..m+k-1.
//
// The parity matrix depends on k:
//
//   - k=1 is the all-ones row — plain XOR, the RAID-5 parity.
//   - k=2 is the classic RAID-6 P+Q pair: P is the XOR row, Q weights
//     data shard i by g^i. Any two erasures are reconstructable for
//     m <= 255 (the standard RAID-6 result).
//   - k>=3 uses a Cauchy matrix, coeff(j,i) = 1/(x_j ^ y_i) with
//     x_j = m+j and y_i = i. Every square submatrix of a Cauchy matrix
//     is invertible, so any k erasures of [I; C] are reconstructable.
//
// The ≤k-erasure round-trip invariant is pinned exhaustively by the
// GF(256) property tests for every geometry the figures use.
type Code struct {
	m, k int
	rows [][]byte // k parity rows × m data coefficients
}

// newCode builds the m+k code. It panics on geometries Validate rejects
// (m < 1, k < 1, m+k > 255).
func newCode(m, k int) *Code {
	if m < 1 || k < 1 || m+k > 255 {
		panic(fmt.Sprintf("array: unsupported code geometry %d+%d", m, k))
	}
	c := &Code{m: m, k: k, rows: make([][]byte, k)}
	for j := range c.rows {
		c.rows[j] = make([]byte, m)
	}
	switch {
	case k == 1:
		for i := 0; i < m; i++ {
			c.rows[0][i] = 1
		}
	case k == 2:
		for i := 0; i < m; i++ {
			c.rows[0][i] = 1
			c.rows[1][i] = gfExp[i%255]
		}
	default:
		for j := 0; j < k; j++ {
			for i := 0; i < m; i++ {
				c.rows[j][i] = gfInv(byte(m+j) ^ byte(i))
			}
		}
	}
	return c
}

// M returns the data shard count.
func (c *Code) M() int { return c.m }

// K returns the parity shard count.
func (c *Code) K() int { return c.k }

// ParityCoeff returns the weight of data shard i in parity row j; the
// delta-update of parity j after rewriting shard i XORs in
// gfMulFP(ParityCoeff(j,i), old^new).
func (c *Code) ParityCoeff(j, i int) byte { return c.rows[j][i] }

// Encode computes the k parity fingerprints of one stripe row from its m
// data fingerprints.
func (c *Code) Encode(data []content.Fingerprint) []content.Fingerprint {
	if len(data) != c.m {
		panic(fmt.Sprintf("array: Encode got %d data shards, want %d", len(data), c.m))
	}
	out := make([]content.Fingerprint, c.k)
	for j := 0; j < c.k; j++ {
		var acc uint64
		for i, d := range data {
			acc ^= gfMulFP(c.rows[j][i], uint64(d))
		}
		out[j] = content.Fingerprint(acc)
	}
	return out
}

// ErrTooManyErasures reports a stripe row with more than k shards missing:
// the data is unrecoverable.
type ErrTooManyErasures struct{ Missing, K int }

func (e ErrTooManyErasures) Error() string {
	return fmt.Sprintf("array: %d shards missing exceeds the code's %d-erasure tolerance", e.Missing, e.K)
}

// Reconstruct fills the absent shards of one stripe row in place. shards
// and present are indexed by logical slot (data 0..m-1, parity m..m+k-1);
// entries with present[i] false are recomputed from the survivors. Any
// combination of at most k absences succeeds exactly; more returns
// ErrTooManyErasures.
func (c *Code) Reconstruct(shards []content.Fingerprint, present []bool) error {
	m, k := c.m, c.k
	if len(shards) != m+k || len(present) != m+k {
		panic(fmt.Sprintf("array: Reconstruct got %d/%d shards, want %d", len(shards), len(present), m+k))
	}
	missing := 0
	for _, p := range present {
		if !p {
			missing++
		}
	}
	if missing == 0 {
		return nil
	}
	if missing > k {
		return ErrTooManyErasures{Missing: missing, K: k}
	}

	// Take the first m surviving rows of the generator [I; rows] and solve
	// A·d = v for the data vector by Gauss-Jordan elimination over GF(256),
	// carrying the survivor values alongside the matrix.
	a := make([][]byte, m)
	v := make([]content.Fingerprint, m)
	got := 0
	for s := 0; s < m+k && got < m; s++ {
		if !present[s] {
			continue
		}
		row := make([]byte, m)
		if s < m {
			row[s] = 1
		} else {
			copy(row, c.rows[s-m])
		}
		a[got] = row
		v[got] = shards[s]
		got++
	}

	for col := 0; col < m; col++ {
		pivot := -1
		for r := col; r < m; r++ {
			if a[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			// Cannot happen for the constructions above (any m rows of the
			// generator are independent); guard anyway.
			return fmt.Errorf("array: singular reconstruction matrix at column %d", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		v[col], v[pivot] = v[pivot], v[col]
		if inv := a[col][col]; inv != 1 {
			iv := gfInv(inv)
			for cc := 0; cc < m; cc++ {
				a[col][cc] = gfMul(iv, a[col][cc])
			}
			v[col] = content.Fingerprint(gfMulFP(iv, uint64(v[col])))
		}
		for r := 0; r < m; r++ {
			if r == col || a[r][col] == 0 {
				continue
			}
			f := a[r][col]
			for cc := 0; cc < m; cc++ {
				a[r][cc] ^= gfMul(f, a[col][cc])
			}
			v[r] = content.Fingerprint(uint64(v[r]) ^ gfMulFP(f, uint64(v[col])))
		}
	}

	// v now holds the data shards; refill every absent slot.
	for i := 0; i < m; i++ {
		if !present[i] {
			shards[i] = v[i]
		}
	}
	for j := 0; j < k; j++ {
		if present[m+j] {
			continue
		}
		var acc uint64
		for i := 0; i < m; i++ {
			acc ^= gfMulFP(c.rows[j][i], uint64(v[i]))
		}
		shards[m+j] = content.Fingerprint(acc)
	}
	return nil
}
