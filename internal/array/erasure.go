package array

import (
	"powerfail/internal/addr"
	"powerfail/internal/blockdev"
	"powerfail/internal/content"
	"powerfail/internal/obs"
)

// --- RAID-6 / RS: rotating multi-parity with read-modify-write ---
//
// The coded levels generalise the RAID-5 path: each stripe carries k
// parity shards on a rotating run of members, small writes delta-update
// every parity under the stripe lock, and a degraded read reconstructs
// the missing chunk from any m surviving shards via the GF(256) code.
// The write hole widens accordingly: a fault between the 1+k write
// acknowledgements leaves the stripe internally inconsistent whenever a
// proper, non-empty subset of the writes landed.

func (a *Array) submitCoded(op blockdev.Op, lpn addr.LPN, pages int, data content.Data, done func(error, content.Data)) {
	chunks := a.chunksOf(lpn, pages)
	result := make([]content.Fingerprint, pages)
	parts := len(chunks)
	var firstErr error
	finishChunk := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
		parts--
		if parts == 0 {
			a.finishStriped(op, pages, result, firstErr, done)
		}
	}
	for _, cr := range chunks {
		cr := cr
		if op == blockdev.OpRead {
			a.codeRead(cr, result, finishChunk)
		} else {
			a.lockStripe(cr.stripe, func(release func()) {
				a.codeRMW(cr, data, func(err error) {
					release()
					finishChunk(err)
				})
			})
		}
	}
}

// codeRead reads the data member directly and falls back to
// reconstruction from the surviving shards on error.
func (a *Array) codeRead(cr chunkRange, result []content.Fingerprint, done func(error)) {
	a.memberSubmit(cr.member, blockdev.OpRead, cr.mlpn, cr.n, content.Data{}, func(err error, res content.Data) {
		if err == nil {
			for i := 0; i < cr.n; i++ {
				result[cr.off+i] = res.Page(i)
			}
			done(nil)
			return
		}
		a.codeReconstruct(cr, result, done)
	})
}

// codeReconstruct recovers cr's pages from the same rows on the other
// members: every shard that answers contributes, and the code solves for
// the missing chunk as long as at least m shards survive. Up to k-1
// sibling failures on top of the unreadable data member still succeed;
// beyond that the read fails (the stripe has more than k erasures).
func (a *Array) codeReconstruct(cr chunkRange, result []content.Fingerprint, done func(error)) {
	a.stats.Reconstructions++
	a.tele.reconstructions.Inc()
	a.tele.sc.Instant(a.k.Now(), obs.KindInstant, "reconstruction", int64(cr.mlpn))
	n := len(a.members)
	rows := make([]content.Data, n)
	ok := make([]bool, n)
	parts := 0
	var firstErr error
	finish := func() {
		m := n - a.parityCount()
		shards := make([]content.Fingerprint, n)
		present := make([]bool, n)
		survivors := 0
		for mm := 0; mm < n; mm++ {
			if ok[mm] {
				survivors++
			}
		}
		if survivors < m {
			done(firstErr)
			return
		}
		target := a.slotOf(cr.parity, cr.member)
		for i := 0; i < cr.n; i++ {
			for mm := 0; mm < n; mm++ {
				if slot := a.slotOf(cr.parity, mm); ok[mm] {
					shards[slot] = rows[mm].Page(i)
					present[slot] = true
				} else {
					shards[slot] = 0
					present[slot] = false
				}
			}
			if err := a.code.Reconstruct(shards, present); err != nil {
				done(err)
				return
			}
			result[cr.off+i] = shards[target]
		}
		done(nil)
	}
	for mm := range a.members {
		if mm == cr.member {
			continue
		}
		mm := mm
		parts++
		a.memberSubmit(mm, blockdev.OpRead, cr.mlpn, cr.n, content.Data{}, func(err error, res content.Data) {
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
			} else {
				rows[mm] = res
				ok[mm] = true
			}
			parts--
			if parts == 0 {
				finish()
			}
		})
	}
}

// codeRMW performs the small-write cycle on one chunk range: read the old
// data and all k old parities, delta every parity with the coded data
// delta, then write the data and all parities concurrently. A fault
// landing between the acknowledgements is the (multi-parity) write hole;
// it is counted when a proper, non-empty subset of the 1+k writes lands.
func (a *Array) codeRMW(cr chunkRange, data content.Data, done func(error)) {
	a.stats.ParityRMWs++
	a.tele.parityRMWs.Inc()
	kp := a.parityCount()
	var oldData content.Data
	oldParity := make([]content.Data, kp)
	reads := 1 + kp
	var readErr error
	afterReads := func() {
		if readErr != nil {
			// Nothing was written: the stripe is untouched, no hole.
			done(readErr)
			return
		}
		newData := data.Slice(cr.off, cr.n)
		newParity := make([]content.Data, kp)
		for j := 0; j < kp; j++ {
			coeff := a.code.ParityCoeff(j, cr.didx)
			old := oldParity[j]
			newParity[j] = content.Gather(cr.n, func(i int) content.Fingerprint {
				delta := uint64(oldData.Page(i)) ^ uint64(newData.Page(i))
				return content.Fingerprint(uint64(old.Page(i)) ^ gfMulFP(coeff, delta))
			})
		}
		writes := 1 + kp
		acked := 0
		var dataErr, parityErr error
		afterWrites := func() {
			if acked > 0 && acked < 1+kp {
				a.stats.WriteHoles++
				a.tele.writeHoles.Inc()
				a.tele.sc.Instant(a.k.Now(), obs.KindInstant, "write_hole", int64(cr.mlpn))
			}
			if dataErr != nil {
				done(dataErr)
			} else {
				done(parityErr)
			}
		}
		a.memberSubmit(cr.member, blockdev.OpWrite, cr.mlpn, cr.n, newData, func(err error, _ content.Data) {
			dataErr = err
			if err == nil {
				acked++
			}
			writes--
			if writes == 0 {
				afterWrites()
			}
		})
		for j := 0; j < kp; j++ {
			a.memberSubmit(a.parityMember(cr.parity, j), blockdev.OpWrite, cr.mlpn, cr.n, newParity[j], func(err error, _ content.Data) {
				if err != nil {
					if parityErr == nil {
						parityErr = err
					}
				} else {
					acked++
				}
				writes--
				if writes == 0 {
					afterWrites()
				}
			})
		}
	}
	a.memberSubmit(cr.member, blockdev.OpRead, cr.mlpn, cr.n, content.Data{}, func(err error, res content.Data) {
		if err != nil && readErr == nil {
			readErr = err
		}
		oldData = res
		reads--
		if reads == 0 {
			afterReads()
		}
	})
	for j := 0; j < kp; j++ {
		j := j
		a.memberSubmit(a.parityMember(cr.parity, j), blockdev.OpRead, cr.mlpn, cr.n, content.Data{}, func(err error, res content.Data) {
			if err != nil && readErr == nil {
				readErr = err
			}
			oldParity[j] = res
			reads--
			if reads == 0 {
				afterReads()
			}
		})
	}
}
