// Package workload generates the IO streams of the paper's experiments:
// uniform-random or sequential access over a configurable working set,
// request sizes fixed or drawn from 4 KiB-1 MiB, read/write mixes from
// fully-read to fully-write, pair sequences (RAR, RAW, WAR, WAW) that
// target the previous request's address, and open-loop arrival pacing for
// the requested-IOPS sweep.
package workload

import (
	"fmt"

	"powerfail/internal/addr"
	"powerfail/internal/content"
	"powerfail/internal/sim"
)

// Op is the request direction.
type Op int

// Operations.
const (
	OpRead Op = iota
	OpWrite
)

// String implements fmt.Stringer.
func (o Op) String() string {
	if o == OpRead {
		return "read"
	}
	return "write"
}

// Pattern selects the address distribution.
type Pattern int

// Access patterns.
const (
	Random Pattern = iota
	Sequential
)

// String implements fmt.Stringer.
func (p Pattern) String() string {
	if p == Sequential {
		return "sequential"
	}
	return "random"
}

// MarshalJSON renders the pattern by name.
func (p Pattern) MarshalJSON() ([]byte, error) { return []byte(`"` + p.String() + `"`), nil }

// UnmarshalJSON parses a pattern name, so marshaled specs (run archives,
// report JSON) decode back into typed values.
func (p *Pattern) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"random"`:
		*p = Random
	case `"sequential"`:
		*p = Sequential
	default:
		return fmt.Errorf("workload: unknown pattern %s", b)
	}
	return nil
}

// SeqMode selects the paper's access-sequence experiments: pairs of
// requests where the second targets the address of the first.
type SeqMode int

// Sequence modes.
const (
	SeqNone SeqMode = iota
	RAR             // read after read
	RAW             // read after write
	WAR             // write after read
	WAW             // write after write
)

// String implements fmt.Stringer.
func (m SeqMode) String() string {
	switch m {
	case RAR:
		return "RAR"
	case RAW:
		return "RAW"
	case WAR:
		return "WAR"
	case WAW:
		return "WAW"
	default:
		return "none"
	}
}

// MarshalJSON renders the sequence mode by name.
func (m SeqMode) MarshalJSON() ([]byte, error) { return []byte(`"` + m.String() + `"`), nil }

// UnmarshalJSON parses a sequence-mode name.
func (m *SeqMode) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"none"`:
		*m = SeqNone
	case `"RAR"`:
		*m = RAR
	case `"RAW"`:
		*m = RAW
	case `"WAR"`:
		*m = WAR
	case `"WAW"`:
		*m = WAW
	default:
		return fmt.Errorf("workload: unknown sequence mode %s", b)
	}
	return nil
}

// ops returns the pair (first, second) for a sequence mode. The name
// reads "X after Y": Y is issued first, then X on the same address.
func (m SeqMode) ops() (first, second Op) {
	switch m {
	case RAR:
		return OpRead, OpRead
	case RAW:
		return OpWrite, OpRead
	case WAR:
		return OpRead, OpWrite
	case WAW:
		return OpWrite, OpWrite
	default:
		return OpWrite, OpWrite
	}
}

// Spec describes a workload.
type Spec struct {
	Name string `json:"name"`
	// WSSBytes is the working set size; addresses are drawn from it.
	WSSBytes int64 `json:"wss_bytes"`
	// MinSize/MaxSize bound the uniform request size distribution in
	// bytes; both are rounded to 4 KiB pages. When FixedSize is non-zero
	// it overrides the range.
	MinSize   int `json:"min_size,omitempty"`
	MaxSize   int `json:"max_size,omitempty"`
	FixedSize int `json:"fixed_size,omitempty"`
	// ReadPct is the percentage of read requests (0 = fully write).
	ReadPct int `json:"read_pct"`
	// Pattern is the address pattern for SeqNone workloads.
	Pattern Pattern `json:"pattern"`
	// Sequence switches to paired accesses (RAR/RAW/WAR/WAW).
	Sequence SeqMode `json:"sequence"`
	// IOPS > 0 paces arrivals at the requested rate (open loop);
	// 0 runs closed loop (the runner controls concurrency/think time).
	IOPS float64 `json:"iops,omitempty"`
}

// Validate checks the specification.
func (s Spec) Validate() error {
	if s.WSSBytes < addr.PageBytes {
		return fmt.Errorf("workload: WSS %d smaller than one page", s.WSSBytes)
	}
	if s.FixedSize == 0 {
		if s.MinSize <= 0 || s.MaxSize < s.MinSize {
			return fmt.Errorf("workload: bad size range [%d,%d]", s.MinSize, s.MaxSize)
		}
	} else if s.FixedSize <= 0 {
		return fmt.Errorf("workload: bad fixed size %d", s.FixedSize)
	}
	if s.ReadPct < 0 || s.ReadPct > 100 {
		return fmt.Errorf("workload: ReadPct %d out of range", s.ReadPct)
	}
	if s.IOPS < 0 {
		return fmt.Errorf("workload: negative IOPS")
	}
	maxPages := addr.PagesFor(int64(s.maxBytes()))
	if int64(maxPages) > s.WSSBytes>>addr.PageShift {
		return fmt.Errorf("workload: max request (%d pages) exceeds WSS", maxPages)
	}
	return nil
}

func (s Spec) maxBytes() int {
	if s.FixedSize > 0 {
		return s.FixedSize
	}
	return s.MaxSize
}

// String implements fmt.Stringer.
func (s Spec) String() string {
	size := fmt.Sprintf("%d-%dKB", s.MinSize>>10, s.MaxSize>>10)
	if s.FixedSize > 0 {
		size = fmt.Sprintf("%dKB", s.FixedSize>>10)
	}
	seq := ""
	if s.Sequence != SeqNone {
		seq = " seq=" + s.Sequence.String()
	}
	return fmt.Sprintf("%s wss=%dGB size=%s read%%=%d %s%s",
		s.Name, s.WSSBytes>>30, size, s.ReadPct, s.Pattern, seq)
}

// DefaultSpec is the paper's base workload: uniform random writes with
// sizes between 4 KiB and 1 MiB over a 16 GB working set.
func DefaultSpec() Spec {
	return Spec{
		Name:     "random-write",
		WSSBytes: 16 << 30,
		MinSize:  4 << 10,
		MaxSize:  1 << 20,
		ReadPct:  0,
		Pattern:  Random,
	}
}

// Item is one generated request.
type Item struct {
	Op    Op
	LPN   addr.LPN
	Pages int
	Data  content.Data // write payload
}

// Generator produces the request stream for a spec.
type Generator struct {
	spec     Spec
	r        *sim.RNG
	wssPages int64
	seqCur   addr.LPN // sequential cursor
	// pair state for sequence modes
	pairPending bool
	pairLPN     addr.LPN
	pairPages   int
	issued      int64
}

// NewGenerator builds a generator; the spec must validate.
func NewGenerator(spec Spec, r *sim.RNG) (*Generator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Generator{spec: spec, r: r, wssPages: spec.WSSBytes >> addr.PageShift}, nil
}

// Spec returns the workload specification.
func (g *Generator) Spec() Spec { return g.spec }

// Issued returns the number of items generated.
func (g *Generator) Issued() int64 { return g.issued }

func (g *Generator) pages() int {
	if g.spec.FixedSize > 0 {
		return addr.PagesFor(int64(g.spec.FixedSize))
	}
	minP := addr.PagesFor(int64(g.spec.MinSize))
	maxP := addr.PagesFor(int64(g.spec.MaxSize))
	if minP < 1 {
		minP = 1
	}
	return g.r.IntRange(minP, maxP)
}

func (g *Generator) randomLPN(pages int) addr.LPN {
	span := g.wssPages - int64(pages)
	if span <= 0 {
		return 0
	}
	return addr.LPN(g.r.Int63n(span + 1))
}

// Next produces the next request.
func (g *Generator) Next() Item {
	g.issued++
	if g.spec.Sequence != SeqNone {
		return g.nextPair()
	}
	pages := g.pages()
	var lpn addr.LPN
	if g.spec.Pattern == Sequential {
		if int64(g.seqCur)+int64(pages) > g.wssPages {
			g.seqCur = 0
		}
		lpn = g.seqCur
		g.seqCur += addr.LPN(pages)
	} else {
		lpn = g.randomLPN(pages)
	}
	op := OpWrite
	if g.r.Intn(100) < g.spec.ReadPct {
		op = OpRead
	}
	it := Item{Op: op, LPN: lpn, Pages: pages}
	if op == OpWrite {
		it.Data = content.Random(g.r, pages)
	}
	return it
}

// nextPair generates the X-after-Y pair streams: the first request of the
// pair goes to a fresh random address, the second request repeats that
// address ("each request is submitted on the address of the previously
// completed request").
func (g *Generator) nextPair() Item {
	first, second := g.spec.Sequence.ops()
	if !g.pairPending {
		pages := g.pages()
		g.pairLPN = g.randomLPN(pages)
		g.pairPages = pages
		g.pairPending = true
		it := Item{Op: first, LPN: g.pairLPN, Pages: pages}
		if first == OpWrite {
			it.Data = content.Random(g.r, pages)
		}
		return it
	}
	g.pairPending = false
	it := Item{Op: second, LPN: g.pairLPN, Pages: g.pairPages}
	if second == OpWrite {
		it.Data = content.Random(g.r, g.pairPages)
	}
	return it
}

// NextArrival returns the inter-arrival gap for open-loop pacing
// (exponential with mean 1/IOPS), or 0 for closed-loop specs.
func (g *Generator) NextArrival() sim.Duration {
	if g.spec.IOPS <= 0 {
		return 0
	}
	return sim.Seconds(g.r.ExpMean(1 / g.spec.IOPS))
}
