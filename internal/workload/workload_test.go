package workload

import (
	"math"
	"testing"
	"testing/quick"

	"powerfail/internal/addr"
	"powerfail/internal/sim"
)

func gen(t *testing.T, spec Spec) *Generator {
	t.Helper()
	g, err := NewGenerator(spec, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSizesWithinBounds(t *testing.T) {
	g := gen(t, Spec{WSSBytes: 1 << 30, MinSize: 4 << 10, MaxSize: 1 << 20})
	minP, maxP := 1, 256
	sawSmall, sawBig := false, false
	for i := 0; i < 5000; i++ {
		it := g.Next()
		if it.Pages < minP || it.Pages > maxP {
			t.Fatalf("pages = %d out of [%d,%d]", it.Pages, minP, maxP)
		}
		if it.Pages <= 8 {
			sawSmall = true
		}
		if it.Pages >= 248 {
			sawBig = true
		}
	}
	if !sawSmall || !sawBig {
		t.Fatal("size distribution did not span the range")
	}
}

func TestFixedSize(t *testing.T) {
	g := gen(t, Spec{WSSBytes: 1 << 30, FixedSize: 64 << 10})
	for i := 0; i < 100; i++ {
		if it := g.Next(); it.Pages != 16 {
			t.Fatalf("pages = %d, want 16", it.Pages)
		}
	}
}

func TestAddressesWithinWSS(t *testing.T) {
	wss := int64(1 << 28) // 256 MB = 65536 pages
	g := gen(t, Spec{WSSBytes: wss, MinSize: 4 << 10, MaxSize: 1 << 20})
	limit := addr.LPN(wss >> addr.PageShift)
	for i := 0; i < 5000; i++ {
		it := g.Next()
		if it.LPN < 0 || it.LPN+addr.LPN(it.Pages) > limit {
			t.Fatalf("request [%d,+%d) escapes WSS of %d pages", it.LPN, it.Pages, limit)
		}
	}
}

func TestReadPctMix(t *testing.T) {
	g := gen(t, Spec{WSSBytes: 1 << 30, FixedSize: 4 << 10, ReadPct: 30})
	reads := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if g.Next().Op == OpRead {
			reads++
		}
	}
	if frac := float64(reads) / n; math.Abs(frac-0.3) > 0.02 {
		t.Fatalf("read fraction = %.3f, want ~0.30", frac)
	}
}

func TestWritesCarryData(t *testing.T) {
	g := gen(t, Spec{WSSBytes: 1 << 30, FixedSize: 16 << 10})
	it := g.Next()
	if it.Op != OpWrite {
		t.Fatal("expected write")
	}
	if it.Data.Pages() != it.Pages {
		t.Fatal("payload size mismatch")
	}
}

func TestSequentialAdvancesAndWraps(t *testing.T) {
	g := gen(t, Spec{WSSBytes: 1 << 20, FixedSize: 256 << 10, Pattern: Sequential}) // 4 requests per lap
	var last addr.LPN = -1
	wrapped := false
	for i := 0; i < 12; i++ {
		it := g.Next()
		if it.LPN <= last && it.LPN == 0 {
			wrapped = true
		} else if it.LPN != last+addr.LPN(0) && last >= 0 && it.LPN != last+64 && it.LPN != 0 {
			t.Fatalf("sequential cursor jumped: %d -> %d", last, it.LPN)
		}
		last = it.LPN
	}
	if !wrapped {
		t.Fatal("sequential stream never wrapped")
	}
}

func TestPairSequences(t *testing.T) {
	cases := []struct {
		mode          SeqMode
		first, second Op
	}{
		{RAR, OpRead, OpRead},
		{RAW, OpWrite, OpRead},
		{WAR, OpRead, OpWrite},
		{WAW, OpWrite, OpWrite},
	}
	for _, c := range cases {
		g := gen(t, Spec{WSSBytes: 1 << 30, FixedSize: 8 << 10, Sequence: c.mode})
		for pair := 0; pair < 50; pair++ {
			a, b := g.Next(), g.Next()
			if a.Op != c.first || b.Op != c.second {
				t.Fatalf("%v: pair ops = %v,%v want %v,%v", c.mode, a.Op, b.Op, c.first, c.second)
			}
			if a.LPN != b.LPN || a.Pages != b.Pages {
				t.Fatalf("%v: second request must repeat the address", c.mode)
			}
			if c.mode == WAW && a.Data.Equal(b.Data) {
				t.Fatalf("WAW pair wrote identical data")
			}
		}
	}
}

func TestArrivalPacing(t *testing.T) {
	g := gen(t, Spec{WSSBytes: 1 << 30, FixedSize: 4 << 10, IOPS: 1000})
	var total sim.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		total += g.NextArrival()
	}
	mean := total.Seconds() / n
	if math.Abs(mean-0.001) > 0.0001 {
		t.Fatalf("mean inter-arrival = %.6fs, want ~0.001", mean)
	}
	closed := gen(t, Spec{WSSBytes: 1 << 30, FixedSize: 4 << 10})
	if closed.NextArrival() != 0 {
		t.Fatal("closed-loop spec should have zero arrival gap")
	}
}

func TestValidation(t *testing.T) {
	bad := []Spec{
		{WSSBytes: 0, FixedSize: 4096},
		{WSSBytes: 1 << 30, MinSize: 0, MaxSize: 0},
		{WSSBytes: 1 << 30, MinSize: 8192, MaxSize: 4096},
		{WSSBytes: 1 << 30, FixedSize: -1},
		{WSSBytes: 1 << 30, FixedSize: 4096, ReadPct: 101},
		{WSSBytes: 1 << 30, FixedSize: 4096, IOPS: -1},
		{WSSBytes: 1 << 20, FixedSize: 2 << 20}, // request larger than WSS
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Errorf("spec %d accepted: %+v", i, s)
		}
	}
	if DefaultSpec().Validate() != nil {
		t.Fatal("default spec invalid")
	}
}

// Property: every generated request stays inside the working set and is a
// whole number of pages, for arbitrary spec sizes.
func TestQuickGeneratorBounds(t *testing.T) {
	f := func(wssMB uint8, maxKB uint16, seed uint16) bool {
		wss := (int64(wssMB%64) + 2) << 20
		max := (int(maxKB%1024) + 4) << 10
		if int64(max) > wss {
			max = int(wss)
		}
		spec := Spec{WSSBytes: wss, MinSize: 4 << 10, MaxSize: max}
		if spec.Validate() != nil {
			return true // skip invalid combinations
		}
		g, err := NewGenerator(spec, sim.NewRNG(uint64(seed)))
		if err != nil {
			return false
		}
		limit := addr.LPN(wss >> addr.PageShift)
		for i := 0; i < 50; i++ {
			it := g.Next()
			if it.Pages < 1 || it.LPN < 0 || it.LPN+addr.LPN(it.Pages) > limit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStringers(t *testing.T) {
	if OpRead.String() != "read" || OpWrite.String() != "write" {
		t.Fatal("op strings")
	}
	if Random.String() != "random" || Sequential.String() != "sequential" {
		t.Fatal("pattern strings")
	}
	for _, m := range []SeqMode{SeqNone, RAR, RAW, WAR, WAW} {
		if m.String() == "" {
			t.Fatal("seq mode string empty")
		}
	}
	if DefaultSpec().String() == "" {
		t.Fatal("spec string empty")
	}
	if (Spec{WSSBytes: 1 << 30, FixedSize: 4096, Sequence: WAW}).String() == "" {
		t.Fatal("spec string empty")
	}
}

func TestIssuedCounter(t *testing.T) {
	g := gen(t, Spec{WSSBytes: 1 << 30, FixedSize: 4096})
	for i := 0; i < 7; i++ {
		g.Next()
	}
	if g.Issued() != 7 {
		t.Fatalf("issued = %d", g.Issued())
	}
	if g.Spec().FixedSize != 4096 {
		t.Fatal("Spec accessor wrong")
	}
}
