package blktrace

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"powerfail/internal/addr"
	"powerfail/internal/sim"
)

// IO is the btt-style per-IO assembly of one request's events: queueing,
// splitting, per-sub-request dispatch and completion. The paper's modified
// btt extracts exactly this view so that the Analyzer can tell complete
// requests (every sub-request reached C) from incomplete ones.
type IO struct {
	Req     uint64
	Op      OpKind
	LPN     addr.LPN
	Pages   int
	QueueAt sim.Time
	// Subs counts block-layer sub-requests; SubsDone of them completed and
	// SubsErrored failed.
	Subs          int
	SubsDone      int
	SubsErrored   int
	FirstDispatch sim.Time
	LastComplete  sim.Time
	TimedOut      bool
	Rejected      bool
	haveDispatch  bool
}

// Complete reports whether the request fully completed: it was issued, all
// sub-requests reached the C state, none errored, and it did not time out.
// This is the paper's "completed" flag.
func (io *IO) Complete() bool {
	return !io.Rejected && !io.TimedOut && io.Subs > 0 &&
		io.SubsDone == io.Subs && io.SubsErrored == 0
}

// Q2C returns the queue-to-complete latency, valid only for complete IOs.
func (io *IO) Q2C() sim.Duration { return io.LastComplete.Sub(io.QueueAt) }

// Assemble folds an event stream into per-IO records ordered by queue time.
func Assemble(events []Event) []*IO {
	byReq := make(map[uint64]*IO)
	var order []uint64
	get := func(e Event) *IO {
		io, ok := byReq[e.Req]
		if !ok {
			io = &IO{Req: e.Req, Op: e.Op, LPN: e.LPN, Pages: e.Pages, QueueAt: e.At}
			byReq[e.Req] = io
			order = append(order, e.Req)
		}
		return io
	}
	for _, e := range events {
		io := get(e)
		switch e.Act {
		case ActQueue:
			io.QueueAt = e.At
			io.Op = e.Op
			io.LPN = e.LPN
			io.Pages = e.Pages
		case ActSplit:
			io.Subs++
		case ActDispatch:
			if !io.haveDispatch || e.At < io.FirstDispatch {
				io.FirstDispatch = e.At
				io.haveDispatch = true
			}
		case ActComplete:
			io.SubsDone++
			if e.At > io.LastComplete {
				io.LastComplete = e.At
			}
		case ActError:
			io.SubsErrored++
		case ActTimeout:
			io.TimedOut = true
		case ActReject:
			io.Rejected = true
		}
	}
	out := make([]*IO, 0, len(order))
	for _, id := range order {
		out = append(out, byReq[id])
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].QueueAt < out[j].QueueAt })
	return out
}

// Summary aggregates per-IO statistics over a window.
type Summary struct {
	IOs       int
	Completed int
	Errored   int
	TimedOut  int
	Rejected  int
	Reads     int
	Writes    int
	AvgQ2C    sim.Duration
	MaxQ2C    sim.Duration
}

// Summarize computes aggregate statistics for a set of IOs.
func Summarize(ios []*IO) Summary {
	var s Summary
	var total sim.Duration
	for _, io := range ios {
		s.IOs++
		switch io.Op {
		case OpRead:
			s.Reads++
		case OpWrite:
			s.Writes++
		}
		switch {
		case io.Rejected:
			s.Rejected++
		case io.TimedOut:
			s.TimedOut++
		case io.Complete():
			s.Completed++
			q2c := io.Q2C()
			total += q2c
			if q2c > s.MaxQ2C {
				s.MaxQ2C = q2c
			}
		case io.SubsErrored > 0:
			s.Errored++
		}
	}
	if s.Completed > 0 {
		s.AvgQ2C = total / sim.Duration(s.Completed)
	}
	return s
}

// Latency summarises the Q2C distribution of completed IOs, btt-style.
type Latency struct {
	N   int
	Min sim.Duration
	P50 sim.Duration
	P90 sim.Duration
	P99 sim.Duration
	Max sim.Duration
}

// Latencies computes Q2C percentiles over the completed IOs in ios.
func Latencies(ios []*IO) Latency {
	var vals []sim.Duration
	for _, io := range ios {
		if io.Complete() {
			vals = append(vals, io.Q2C())
		}
	}
	if len(vals) == 0 {
		return Latency{}
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	pick := func(q float64) sim.Duration {
		i := int(q * float64(len(vals)-1))
		return vals[i]
	}
	return Latency{
		N:   len(vals),
		Min: vals[0],
		P50: pick(0.50),
		P90: pick(0.90),
		P99: pick(0.99),
		Max: vals[len(vals)-1],
	}
}

// DumpPerIO writes IOs in the modified btt --per-io-dump text format:
// one header line per request followed by indented timing fields.
func DumpPerIO(w io.Writer, ios []*IO) error {
	for _, io := range ios {
		state := "incomplete"
		switch {
		case io.Rejected:
			state = "rejected"
		case io.TimedOut:
			state = "timeout"
		case io.Complete():
			state = "complete"
		}
		_, err := fmt.Fprintf(w, "io req=%d op=%c lpn=%d pages=%d subs=%d done=%d err=%d state=%s\n"+
			"  q=%.9f d=%.9f c=%.9f\n",
			io.Req, io.Op, io.LPN, io.Pages, io.Subs, io.SubsDone, io.SubsErrored, state,
			io.QueueAt.Seconds(), io.FirstDispatch.Seconds(), io.LastComplete.Seconds())
		if err != nil {
			return err
		}
	}
	return nil
}

// ParsePerIO reads the DumpPerIO format back into per-IO records; the
// round trip is exercised by cmd/blkreport and tests.
func ParsePerIO(r io.Reader) ([]*IO, error) {
	sc := bufio.NewScanner(r)
	var out []*IO
	var cur *IO
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if len(text) == 0 {
			continue
		}
		if text[0] != ' ' {
			var op, state string
			io := &IO{}
			_, err := fmt.Sscanf(text, "io req=%d op=%s lpn=%d pages=%d subs=%d done=%d err=%d state=%s",
				&io.Req, &op, (*int64)(&io.LPN), &io.Pages, &io.Subs, &io.SubsDone, &io.SubsErrored, &state)
			if err != nil {
				return nil, fmt.Errorf("blktrace: parse line %d: %w", line, err)
			}
			if len(op) != 1 {
				return nil, fmt.Errorf("blktrace: parse line %d: bad op %q", line, op)
			}
			io.Op = OpKind(op[0])
			switch state {
			case "timeout":
				io.TimedOut = true
			case "rejected":
				io.Rejected = true
			}
			out = append(out, io)
			cur = io
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("blktrace: parse line %d: timing before header", line)
		}
		var q, d, c float64
		if _, err := fmt.Sscanf(text, "  q=%f d=%f c=%f", &q, &d, &c); err != nil {
			return nil, fmt.Errorf("blktrace: parse line %d: %w", line, err)
		}
		cur.QueueAt = sim.Time(sim.Seconds(q))
		cur.FirstDispatch = sim.Time(sim.Seconds(d))
		cur.LastComplete = sim.Time(sim.Seconds(c))
		cur.haveDispatch = cur.FirstDispatch != 0
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteEvents emits the raw event stream in the blkparse-like line format.
func WriteEvents(w io.Writer, events []Event) error {
	for _, e := range events {
		if _, err := fmt.Fprintln(w, e.String()); err != nil {
			return err
		}
	}
	return nil
}

// ParseEvents reads the WriteEvents format.
func ParseEvents(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if len(text) == 0 {
			continue
		}
		var secs float64
		var act, op string
		var e Event
		_, err := fmt.Sscanf(text, "%f %s %s req=%d sub=%d lpn=%d pages=%d",
			&secs, &act, &op, &e.Req, &e.Sub, (*int64)(&e.LPN), &e.Pages)
		if err != nil {
			return nil, fmt.Errorf("blktrace: parse line %d: %w", line, err)
		}
		if len(act) != 1 || len(op) != 1 {
			return nil, fmt.Errorf("blktrace: parse line %d: bad action/op", line)
		}
		e.At = sim.Time(sim.Seconds(secs))
		e.Act = Action(act[0])
		e.Op = OpKind(op[0])
		if !e.Act.Valid() {
			return nil, fmt.Errorf("blktrace: parse line %d: unknown action %q", line, act)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
