// Package blktrace reimplements, inside the simulation, the IO tracing
// pipeline the paper builds on: blktrace-style block-layer events, a
// blkparse-style text format, and a btt-style per-IO assembler (the paper
// modified btt's --per-io-dump to track sub-request completion). The
// Analyzer decides whether a request "completed" — all of its block-layer
// sub-requests reached the C state before the 30 s timeout — from this
// trace alone, just as the paper's software part does.
package blktrace

import (
	"fmt"

	"powerfail/internal/addr"
	"powerfail/internal/sim"
)

// Action identifies a block-layer event, mirroring blktrace's single-letter
// actions.
type Action byte

// Trace actions.
const (
	ActQueue    Action = 'Q' // request queued at the block layer
	ActSplit    Action = 'X' // request split into sub-requests
	ActDispatch Action = 'D' // sub-request dispatched to the device
	ActComplete Action = 'C' // sub-request completed by the device
	ActError    Action = 'E' // sub-request failed (device error)
	ActTimeout  Action = 'T' // request abandoned by the 30 s timer
	ActReject   Action = 'R' // request rejected before queueing (not issued)
)

// Valid reports whether a is a known action.
func (a Action) Valid() bool {
	switch a {
	case ActQueue, ActSplit, ActDispatch, ActComplete, ActError, ActTimeout, ActReject:
		return true
	}
	return false
}

// String implements fmt.Stringer.
func (a Action) String() string { return string(rune(a)) }

// OpKind is the request direction.
type OpKind byte

// Operations.
const (
	OpRead  OpKind = 'R'
	OpWrite OpKind = 'W'
	OpFlush OpKind = 'F'
)

// String implements fmt.Stringer.
func (o OpKind) String() string { return string(rune(o)) }

// Event is one block-layer trace record.
type Event struct {
	At    sim.Time
	Act   Action
	Op    OpKind
	Req   uint64 // request identifier
	Sub   int    // sub-request index within the request, -1 for whole-request events
	LPN   addr.LPN
	Pages int
}

// String renders the event in a blkparse-like single-line format.
func (e Event) String() string {
	return fmt.Sprintf("%.9f %c %c req=%d sub=%d lpn=%d pages=%d",
		e.At.Seconds(), e.Act, e.Op, e.Req, e.Sub, e.LPN, e.Pages)
}

// Tracer accumulates events. It is append-only; the analyzer folds the
// whole stream into its packets after each fault and Resets it.
type Tracer struct {
	events  []Event
	enabled bool
}

// NewTracer returns an enabled tracer.
func NewTracer() *Tracer { return &Tracer{enabled: true} }

// SetEnabled toggles recording.
func (t *Tracer) SetEnabled(on bool) { t.enabled = on }

// Record appends an event if tracing is enabled.
func (t *Tracer) Record(e Event) {
	if t.enabled {
		t.events = append(t.events, e)
	}
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int { return len(t.events) }

// Events returns the full stream (shared slice; callers must not modify).
func (t *Tracer) Events() []Event { return t.events }

// Reset discards all recorded events.
func (t *Tracer) Reset() { t.events = t.events[:0] }
