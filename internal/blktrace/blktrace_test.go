package blktrace

import (
	"bytes"
	"testing"
	"testing/quick"

	"powerfail/internal/addr"
	"powerfail/internal/sim"
)

func mkEvents() []Event {
	return []Event{
		{At: 1000, Act: ActQueue, Op: OpWrite, Req: 1, Sub: -1, LPN: 100, Pages: 256},
		{At: 1000, Act: ActSplit, Op: OpWrite, Req: 1, Sub: 0, LPN: 100, Pages: 128},
		{At: 1000, Act: ActSplit, Op: OpWrite, Req: 1, Sub: 1, LPN: 228, Pages: 128},
		{At: 1100, Act: ActDispatch, Op: OpWrite, Req: 1, Sub: 0, LPN: 100, Pages: 128},
		{At: 1200, Act: ActDispatch, Op: OpWrite, Req: 1, Sub: 1, LPN: 228, Pages: 128},
		{At: 2000, Act: ActComplete, Op: OpWrite, Req: 1, Sub: 0, LPN: 100, Pages: 128},
		{At: 2500, Act: ActComplete, Op: OpWrite, Req: 1, Sub: 1, LPN: 228, Pages: 128},
	}
}

func TestAssembleComplete(t *testing.T) {
	ios := Assemble(mkEvents())
	if len(ios) != 1 {
		t.Fatalf("ios = %d", len(ios))
	}
	io := ios[0]
	if !io.Complete() {
		t.Fatal("fully completed IO not recognised")
	}
	if io.Subs != 2 || io.SubsDone != 2 {
		t.Fatalf("subs=%d done=%d", io.Subs, io.SubsDone)
	}
	if io.Q2C() != sim.Duration(1500) {
		t.Fatalf("Q2C = %v", io.Q2C())
	}
	if io.FirstDispatch != 1100 || io.LastComplete != 2500 {
		t.Fatalf("d=%v c=%v", io.FirstDispatch, io.LastComplete)
	}
}

func TestAssembleIncomplete(t *testing.T) {
	evs := mkEvents()[:6] // second sub never completes
	ios := Assemble(evs)
	if ios[0].Complete() {
		t.Fatal("incomplete IO reported complete")
	}
}

func TestAssembleErrored(t *testing.T) {
	evs := mkEvents()[:6]
	evs = append(evs, Event{At: 2600, Act: ActError, Op: OpWrite, Req: 1, Sub: 1, LPN: 228, Pages: 128})
	ios := Assemble(evs)
	if ios[0].Complete() {
		t.Fatal("errored IO reported complete")
	}
	if ios[0].SubsErrored != 1 {
		t.Fatal("error not counted")
	}
}

func TestAssembleTimeoutAndReject(t *testing.T) {
	evs := []Event{
		{At: 10, Act: ActQueue, Op: OpRead, Req: 5, Sub: -1, LPN: 1, Pages: 1},
		{At: 10, Act: ActSplit, Op: OpRead, Req: 5, Sub: 0, LPN: 1, Pages: 1},
		{At: 999, Act: ActTimeout, Op: OpRead, Req: 5, Sub: -1, LPN: 1, Pages: 1},
		{At: 20, Act: ActReject, Op: OpWrite, Req: 6, Sub: -1, LPN: 2, Pages: 1},
	}
	ios := Assemble(evs)
	if len(ios) != 2 {
		t.Fatalf("ios = %d", len(ios))
	}
	if !ios[0].TimedOut || ios[0].Complete() {
		t.Fatal("timeout state wrong")
	}
	if !ios[1].Rejected {
		t.Fatal("reject state wrong")
	}
}

func TestAssembleOrdersByQueueTime(t *testing.T) {
	evs := []Event{
		{At: 50, Act: ActQueue, Op: OpRead, Req: 2, Sub: -1},
		{At: 10, Act: ActQueue, Op: OpRead, Req: 1, Sub: -1},
	}
	ios := Assemble(evs)
	if ios[0].Req != 1 || ios[1].Req != 2 {
		t.Fatal("not sorted by queue time")
	}
}

func TestSummarize(t *testing.T) {
	evs := mkEvents()
	evs = append(evs,
		Event{At: 3000, Act: ActQueue, Op: OpRead, Req: 2, Sub: -1, LPN: 0, Pages: 1},
		Event{At: 3000, Act: ActSplit, Op: OpRead, Req: 2, Sub: 0, LPN: 0, Pages: 1},
		Event{At: 3100, Act: ActError, Op: OpRead, Req: 2, Sub: 0, LPN: 0, Pages: 1},
	)
	s := Summarize(Assemble(evs))
	if s.IOs != 2 || s.Completed != 1 || s.Errored != 1 || s.Writes != 1 || s.Reads != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if s.MaxQ2C != sim.Duration(1500) || s.AvgQ2C != sim.Duration(1500) {
		t.Fatalf("q2c stats wrong: %+v", s)
	}
}

func TestPerIODumpRoundTrip(t *testing.T) {
	ios := Assemble(mkEvents())
	var buf bytes.Buffer
	if err := DumpPerIO(&buf, ios); err != nil {
		t.Fatal(err)
	}
	back, err := ParsePerIO(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 {
		t.Fatalf("parsed %d ios", len(back))
	}
	got, want := back[0], ios[0]
	if got.Req != want.Req || got.Op != want.Op || got.LPN != want.LPN ||
		got.Pages != want.Pages || got.Subs != want.Subs || got.SubsDone != want.SubsDone {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, want)
	}
	if got.Complete() != want.Complete() {
		t.Fatal("completeness lost in round trip")
	}
}

func TestEventLogRoundTrip(t *testing.T) {
	evs := mkEvents()
	var buf bytes.Buffer
	if err := WriteEvents(&buf, evs); err != nil {
		t.Fatal(err)
	}
	back, err := ParseEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(evs) {
		t.Fatalf("parsed %d events, want %d", len(back), len(evs))
	}
	for i := range evs {
		if back[i].Act != evs[i].Act || back[i].Req != evs[i].Req ||
			back[i].LPN != evs[i].LPN || back[i].Pages != evs[i].Pages {
			t.Fatalf("event %d mismatch: %+v vs %+v", i, back[i], evs[i])
		}
	}
}

// Property: any synthetic event stream survives the write/parse round trip
// with action, ids and geometry intact.
func TestQuickEventRoundTrip(t *testing.T) {
	acts := []Action{ActQueue, ActSplit, ActDispatch, ActComplete, ActError, ActTimeout, ActReject}
	ops := []OpKind{OpRead, OpWrite, OpFlush}
	f := func(n uint8, seed uint16) bool {
		count := int(n%20) + 1
		evs := make([]Event, count)
		s := uint64(seed)
		for i := range evs {
			s = s*6364136223846793005 + 1442695040888963407
			evs[i] = Event{
				At:    sim.Time(s % 1e9),
				Act:   acts[s%uint64(len(acts))],
				Op:    ops[(s>>8)%uint64(len(ops))],
				Req:   s % 1000,
				Sub:   int(s % 7),
				LPN:   addr.LPN(s % 100000),
				Pages: int(s%256) + 1,
			}
		}
		var buf bytes.Buffer
		if WriteEvents(&buf, evs) != nil {
			return false
		}
		back, err := ParseEvents(&buf)
		if err != nil || len(back) != len(evs) {
			return false
		}
		for i := range evs {
			if back[i].Act != evs[i].Act || back[i].Req != evs[i].Req || back[i].Pages != evs[i].Pages {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLatencies(t *testing.T) {
	var ios []*IO
	for i := 1; i <= 100; i++ {
		ios = append(ios, &IO{Req: uint64(i), QueueAt: 0,
			LastComplete: sim.Time(i) * sim.Time(sim.Millisecond),
			Subs:         1, SubsDone: 1})
	}
	// One incomplete IO must be excluded.
	ios = append(ios, &IO{Req: 999, Subs: 2, SubsDone: 1})
	l := Latencies(ios)
	if l.N != 100 {
		t.Fatalf("N = %d", l.N)
	}
	if l.Min != sim.Millisecond || l.Max != 100*sim.Millisecond {
		t.Fatalf("min=%v max=%v", l.Min, l.Max)
	}
	if l.P50 < 49*sim.Millisecond || l.P50 > 51*sim.Millisecond {
		t.Fatalf("p50 = %v", l.P50)
	}
	if l.P99 < 98*sim.Millisecond || l.P99 > 100*sim.Millisecond {
		t.Fatalf("p99 = %v", l.P99)
	}
	if empty := Latencies(nil); empty.N != 0 {
		t.Fatal("empty latency set")
	}
}

func TestTracerRecordAndReset(t *testing.T) {
	tr := NewTracer()
	tr.Record(Event{Act: ActQueue, Req: 1})
	tr.Record(Event{Act: ActQueue, Req: 2})
	evs := tr.Events()
	if len(evs) != 2 || tr.Len() != 2 || evs[1].Req != 2 {
		t.Fatal("Events wrong")
	}
	tr.Reset()
	if tr.Len() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestTracerDisable(t *testing.T) {
	tr := NewTracer()
	tr.SetEnabled(false)
	tr.Record(Event{Act: ActQueue})
	if tr.Len() != 0 {
		t.Fatal("disabled tracer recorded")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := ParseEvents(bytes.NewBufferString("not an event line\n")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ParsePerIO(bytes.NewBufferString("  q=1 d=2 c=3\n")); err == nil {
		t.Fatal("timing before header accepted")
	}
}

func TestActionValid(t *testing.T) {
	if !ActQueue.Valid() || Action('z').Valid() {
		t.Fatal("Valid wrong")
	}
}
