// Package sim provides the deterministic discrete-event simulation kernel
// that every other component of the platform runs on: a virtual nanosecond
// clock, a cancellable timer queue, and a seeded random number generator
// with forkable independent streams.
//
// All timing in the repository (PSU discharge, flash program latencies,
// host queueing, fault scheduling) is expressed in sim.Time/sim.Duration so
// that experiments are reproducible and run decoupled from wall-clock time.
package sim

import "fmt"

// Time is an absolute instant on the simulated clock, in nanoseconds since
// the start of the simulation.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration int64

// Common durations, mirroring package time.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
)

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns t as a floating-point number of seconds since time zero.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis returns t as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String formats the instant as seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Millis returns the duration as a floating-point number of milliseconds.
func (d Duration) Millis() float64 { return float64(d) / float64(Millisecond) }

// Micros returns the duration as a floating-point number of microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// String formats the duration using the most natural unit.
func (d Duration) String() string {
	switch {
	case d < 0:
		return "-" + (-d).String()
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.1fus", d.Micros())
	case d < Second:
		return fmt.Sprintf("%.2fms", d.Millis())
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

// Seconds converts a floating-point number of seconds into a Duration.
func Seconds(s float64) Duration { return Duration(s * float64(Second)) }

// Millis converts a floating-point number of milliseconds into a Duration.
func Millis(ms float64) Duration { return Duration(ms * float64(Millisecond)) }

// Micros converts a floating-point number of microseconds into a Duration.
func Micros(us float64) Duration { return Duration(us * float64(Microsecond)) }
