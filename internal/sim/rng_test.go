package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 equal values", same)
	}
}

func TestForkIndependence(t *testing.T) {
	root := NewRNG(7)
	a := root.Fork("component-a")
	b := root.Fork("component-b")
	if a.Uint64() == b.Uint64() {
		t.Fatal("forked streams start identically")
	}
	// Forking with the same label from the same state reproduces.
	r1, r2 := NewRNG(7), NewRNG(7)
	f1, f2 := r1.Fork("x"), r2.Fork("x")
	for i := 0; i < 100; i++ {
		if f1.Uint64() != f2.Uint64() {
			t.Fatal("same-label forks differ")
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntRangeInclusive(t *testing.T) {
	r := NewRNG(5)
	sawLo, sawHi := false, false
	for i := 0; i < 10000; i++ {
		v := r.IntRange(3, 6)
		if v < 3 || v > 6 {
			t.Fatalf("IntRange(3,6) = %d", v)
		}
		if v == 3 {
			sawLo = true
		}
		if v == 6 {
			sawHi = true
		}
	}
	if !sawLo || !sawHi {
		t.Fatal("IntRange never hit its bounds")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %g out of [0,1)", f)
		}
	}
}

func TestProbExtremes(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 100; i++ {
		if r.Prob(0) {
			t.Fatal("Prob(0) returned true")
		}
		if !r.Prob(1) {
			t.Fatal("Prob(1) returned false")
		}
	}
}

func TestProbMean(t *testing.T) {
	r := NewRNG(13)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Prob(0.3) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Prob(0.3) frequency = %.3f", got)
	}
}

func TestPoissonMean(t *testing.T) {
	r := NewRNG(17)
	for _, lambda := range []float64{0.5, 3, 20, 200} {
		sum := 0
		const n = 20000
		for i := 0; i < n; i++ {
			sum += r.Poisson(lambda)
		}
		mean := float64(sum) / n
		if math.Abs(mean-lambda) > lambda*0.05+0.05 {
			t.Fatalf("Poisson(%g) mean = %.2f", lambda, mean)
		}
	}
}

func TestPoissonZero(t *testing.T) {
	r := NewRNG(19)
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Fatal("Poisson of non-positive lambda should be 0")
	}
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(23)
	var sum, sumsq float64
	const n = 50000
	for i := 0; i < n; i++ {
		v := r.Norm(10, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sumsq/n - mean*mean)
	if math.Abs(mean-10) > 0.1 || math.Abs(sd-2) > 0.1 {
		t.Fatalf("Norm(10,2): mean=%.3f sd=%.3f", mean, sd)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(29)
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		sum += r.ExpMean(5)
	}
	if mean := sum / n; math.Abs(mean-5) > 0.2 {
		t.Fatalf("ExpMean(5) mean = %.3f", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(31)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestDurationRange(t *testing.T) {
	r := NewRNG(37)
	for i := 0; i < 1000; i++ {
		d := r.DurationRange(Millisecond, 5*Millisecond)
		if d < Millisecond || d > 5*Millisecond {
			t.Fatalf("DurationRange out of bounds: %v", d)
		}
	}
}

// Property: Int63n(n) stays within [0, n) for arbitrary positive n.
func TestQuickInt63nBounds(t *testing.T) {
	r := NewRNG(41)
	f := func(n int64) bool {
		if n <= 0 {
			n = -n + 1
		}
		v := r.Int63n(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestShuffle(t *testing.T) {
	r := NewRNG(43)
	vals := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	seen := make(map[int]bool)
	for _, v := range vals {
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Shuffle lost elements: %v", vals)
	}
}
