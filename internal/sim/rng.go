package sim

import "math"

// RNG is a small, fast, deterministic random number generator based on the
// splitmix64 sequence. It is not safe for concurrent use; the simulation is
// single-threaded by design. Independent streams for separate components
// are derived with Fork so that adding randomness consumption to one
// component does not perturb another.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Distinct seeds yield
// independent-looking sequences; seed 0 is valid.
func NewRNG(seed uint64) *RNG {
	r := &RNG{state: seed}
	// Warm the state so that small seeds diverge immediately.
	r.Uint64()
	return r
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Fork derives an independent generator labelled by label. Forking with the
// same label from generators in the same state yields the same stream.
func (r *RNG) Fork(label string) *RNG {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return NewRNG(r.Uint64() ^ h)
}

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Int63n returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	if n&(n-1) == 0 { // power of two
		return r.Int63() & (n - 1)
	}
	max := int64((1 << 63) - 1 - (1<<63)%uint64(n))
	v := r.Int63()
	for v > max {
		v = r.Int63()
	}
	return v % n
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int { return int(r.Int63n(int64(n))) }

// IntRange returns a uniform integer in [lo, hi] inclusive.
func (r *RNG) IntRange(lo, hi int) int {
	if hi < lo {
		panic("sim: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Prob reports true with probability p (clamped to [0,1]).
func (r *RNG) Prob(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Uniform returns a uniform float in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// DurationRange returns a uniform duration in [lo, hi] inclusive.
func (r *RNG) DurationRange(lo, hi Duration) Duration {
	if hi < lo {
		panic("sim: DurationRange with hi < lo")
	}
	return lo + Duration(r.Int63n(int64(hi-lo)+1))
}

// ExpMean returns an exponentially distributed value with the given mean.
func (r *RNG) ExpMean(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Norm returns a normally distributed value with mean mu and standard
// deviation sigma, via the Box-Muller transform.
func (r *RNG) Norm(mu, sigma float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mu + sigma*z
}

// Poisson returns a Poisson-distributed count with mean lambda. Knuth's
// method is used for small lambda and a normal approximation for large.
func (r *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 64 {
		v := int(math.Round(r.Norm(lambda, math.Sqrt(lambda))))
		if v < 0 {
			v = 0
		}
		return v
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomises the order of n elements using the provided swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}
