package sim

// The event kernel is the innermost loop of every experiment: a fleet
// campaign fires tens of millions of events, so the scheduler must not
// allocate per event. Timers live in an inline slot table recycled
// through a free list, the priority queue is a hand-rolled 4-ary min-heap
// of inline entries (no interface boxing, one cache line covers all four
// children of a node), and handles are (slot, generation) pairs so a
// stale handle can never cancel an unrelated timer that happens to reuse
// its slot. Stopping a timer removes its heap entry eagerly, so cancelled
// timers occupy no memory and Pending is a plain length read.

// Timer is a handle to a pending callback scheduled on a Kernel. Timers
// are one-shot; use Stop to cancel one that has not fired yet. The zero
// Timer is valid and behaves like a timer that never existed (Stop
// returns false, Pending/Fired/Stopped report false).
type Timer struct {
	k    *Kernel
	when Time
	slot int32
	gen  uint32
}

// timerSlot is the kernel-side state behind a Timer handle. A slot hosts
// one scheduled timer at a time; gen identifies the current occupancy and
// advances when the timer ends (fires or is stopped), which invalidates
// outstanding handles. endFired records how generation gen-1 ended, so a
// handle probed after its timer ended still answers Fired/Stopped
// correctly until the slot hosts a new timer that also ends.
type timerSlot struct {
	fn       func()
	gen      uint32
	pos      int32 // index into the heap, -1 when not scheduled
	endFired bool
}

// heapEnt is one inline priority-queue entry: ordering keys plus the slot
// holding the callback. Comparisons never chase a pointer.
type heapEnt struct {
	when Time
	seq  uint64
	slot int32
}

// When reports the instant at which the timer is due to fire.
func (t Timer) When() Time { return t.when }

// Pending reports whether the timer is still scheduled.
func (t Timer) Pending() bool {
	return t.k != nil && t.k.slots[t.slot].gen == t.gen
}

// Stop cancels the timer. It reports whether the cancellation prevented
// the callback from running (false if the timer already fired or was
// stopped, or for the zero Timer). The slot is reclaimed immediately.
func (t Timer) Stop() bool {
	if t.k == nil {
		return false
	}
	s := &t.k.slots[t.slot]
	if s.gen != t.gen {
		return false // already ended (or the slot moved on)
	}
	t.k.removeEnt(int(s.pos))
	t.k.retire(t.slot, false)
	return true
}

// Stopped reports whether the timer was cancelled before firing.
func (t Timer) Stopped() bool {
	if t.k == nil {
		return false
	}
	s := &t.k.slots[t.slot]
	return s.gen == t.gen+1 && !s.endFired
}

// Fired reports whether the timer's callback has run. Once the slot has
// hosted (and ended) a later timer the distinction from Stopped is gone;
// a long-stale handle reports Fired unless the slot's most recent ending
// is a known Stop of this handle's generation.
func (t Timer) Fired() bool {
	if t.k == nil {
		return false
	}
	s := &t.k.slots[t.slot]
	if s.gen == t.gen {
		return false // still pending
	}
	return s.gen != t.gen+1 || s.endFired
}

// Kernel is a single-threaded discrete-event scheduler. Events scheduled
// for the same instant fire in scheduling order (FIFO), which keeps
// experiments deterministic.
type Kernel struct {
	now       Time
	heap      []heapEnt
	slots     []timerSlot
	free      []int32
	seq       uint64
	processed uint64
}

// New returns a kernel with the clock at time zero and no pending events.
func New() *Kernel { return &Kernel{} }

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Processed returns the total number of events that have fired.
func (k *Kernel) Processed() uint64 { return k.processed }

// Pending returns the number of scheduled timers. Stopped timers are
// removed from the queue eagerly, so this is a length read, not a scan.
func (k *Kernel) Pending() int { return len(k.heap) }

// At schedules fn to run at instant t. Instants in the past run at the
// current time, preserving scheduling order. fn must not be nil.
func (k *Kernel) At(t Time, fn func()) Timer {
	if fn == nil {
		panic("sim: At called with nil callback")
	}
	if t < k.now {
		t = k.now
	}
	var slot int32
	if n := len(k.free); n > 0 {
		slot = k.free[n-1]
		k.free = k.free[:n-1]
	} else {
		slot = int32(len(k.slots))
		k.slots = append(k.slots, timerSlot{pos: -1})
	}
	s := &k.slots[slot]
	s.fn = fn
	s.pos = int32(len(k.heap))
	k.heap = append(k.heap, heapEnt{when: t, seq: k.seq, slot: slot})
	k.seq++
	k.siftUp(len(k.heap) - 1)
	return Timer{k: k, when: t, slot: slot, gen: s.gen}
}

// After schedules fn to run d after the current time. Negative durations
// are treated as zero.
func (k *Kernel) After(d Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return k.At(k.now.Add(d), fn)
}

// retire ends a slot's current occupancy (fired or stopped) and returns
// it to the free list.
func (k *Kernel) retire(slot int32, fired bool) {
	s := &k.slots[slot]
	s.fn = nil
	s.pos = -1
	s.endFired = fired
	s.gen++
	k.free = append(k.free, slot)
}

// Step fires the earliest pending event, advancing the clock to its
// timestamp. It reports whether an event was fired.
func (k *Kernel) Step() bool {
	if len(k.heap) == 0 {
		return false
	}
	ent := k.heap[0]
	k.removeEnt(0)
	fn := k.slots[ent.slot].fn
	k.retire(ent.slot, true)
	k.now = ent.when
	k.processed++
	fn()
	return true
}

// Run fires events until none remain and returns the number fired.
func (k *Kernel) Run() uint64 {
	start := k.processed
	for k.Step() {
	}
	return k.processed - start
}

// RunUntil fires every event scheduled at or before t, then advances the
// clock to t. It returns the number of events fired.
func (k *Kernel) RunUntil(t Time) uint64 {
	start := k.processed
	for len(k.heap) > 0 && k.heap[0].when <= t {
		k.Step()
	}
	if t > k.now {
		k.now = t
	}
	return k.processed - start
}

// RunFor advances the clock by d, firing all events in the window.
func (k *Kernel) RunFor(d Duration) uint64 { return k.RunUntil(k.now.Add(d)) }

// RunWhile fires events while cond returns true and events remain. It is
// the main loop used by experiment runners that wait for a condition (for
// example "device ready") without a hard deadline.
func (k *Kernel) RunWhile(cond func() bool) uint64 {
	start := k.processed
	for cond() && k.Step() {
	}
	return k.processed - start
}

// --- 4-ary min-heap over (when, seq) ---

// less orders entries by firing time, then scheduling order.
func (k *Kernel) less(a, b heapEnt) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// place writes ent at heap index i and keeps its slot's back-pointer
// current, so Stop can find the entry in O(1).
func (k *Kernel) place(i int, ent heapEnt) {
	k.heap[i] = ent
	k.slots[ent.slot].pos = int32(i)
}

func (k *Kernel) siftUp(i int) {
	ent := k.heap[i]
	for i > 0 {
		parent := (i - 1) >> 2
		if !k.less(ent, k.heap[parent]) {
			break
		}
		k.place(i, k.heap[parent])
		i = parent
	}
	k.place(i, ent)
}

func (k *Kernel) siftDown(i int) {
	n := len(k.heap)
	ent := k.heap[i]
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if k.less(k.heap[c], k.heap[min]) {
				min = c
			}
		}
		if !k.less(k.heap[min], ent) {
			break
		}
		k.place(i, k.heap[min])
		i = min
	}
	k.place(i, ent)
}

// removeEnt deletes the heap entry at index i, restoring heap order.
func (k *Kernel) removeEnt(i int) {
	n := len(k.heap) - 1
	moved := k.heap[n]
	k.heap = k.heap[:n]
	if i == n {
		return
	}
	k.place(i, moved)
	if i > 0 && k.less(moved, k.heap[(i-1)>>2]) {
		k.siftUp(i)
	} else {
		k.siftDown(i)
	}
}
