package sim

import "container/heap"

// Timer is a pending callback scheduled on a Kernel. Timers are one-shot;
// use Stop to cancel one that has not fired yet.
type Timer struct {
	when    Time
	seq     uint64
	fn      func()
	stopped bool
	fired   bool
}

// When reports the instant at which the timer is due to fire.
func (t *Timer) When() Time { return t.when }

// Stop cancels the timer. It reports whether the cancellation prevented the
// callback from running (false if the timer already fired or was stopped).
func (t *Timer) Stop() bool {
	if t.fired || t.stopped {
		return false
	}
	t.stopped = true
	t.fn = nil
	return true
}

// Stopped reports whether the timer was cancelled before firing.
func (t *Timer) Stopped() bool { return t.stopped }

// Fired reports whether the timer's callback has run.
func (t *Timer) Fired() bool { return t.fired }

type timerHeap []*Timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x interface{}) { *h = append(*h, x.(*Timer)) }
func (h *timerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// Kernel is a single-threaded discrete-event scheduler. Events scheduled
// for the same instant fire in scheduling order (FIFO), which keeps
// experiments deterministic.
type Kernel struct {
	now       Time
	heap      timerHeap
	seq       uint64
	processed uint64
}

// New returns a kernel with the clock at time zero and no pending events.
func New() *Kernel { return &Kernel{} }

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Processed returns the total number of events that have fired.
func (k *Kernel) Processed() uint64 { return k.processed }

// Pending returns the number of scheduled (possibly stopped) timers.
func (k *Kernel) Pending() int {
	n := 0
	for _, t := range k.heap {
		if !t.stopped {
			n++
		}
	}
	return n
}

// At schedules fn to run at instant t. Instants in the past run at the
// current time, preserving scheduling order. fn must not be nil.
func (k *Kernel) At(t Time, fn func()) *Timer {
	if fn == nil {
		panic("sim: At called with nil callback")
	}
	if t < k.now {
		t = k.now
	}
	tm := &Timer{when: t, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.heap, tm)
	return tm
}

// After schedules fn to run d after the current time. Negative durations
// are treated as zero.
func (k *Kernel) After(d Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return k.At(k.now.Add(d), fn)
}

// Step fires the earliest pending event, advancing the clock to its
// timestamp. It reports whether an event was fired.
func (k *Kernel) Step() bool {
	for len(k.heap) > 0 {
		t := heap.Pop(&k.heap).(*Timer)
		if t.stopped {
			continue
		}
		k.now = t.when
		t.fired = true
		k.processed++
		t.fn()
		return true
	}
	return false
}

// Run fires events until none remain and returns the number fired.
func (k *Kernel) Run() uint64 {
	start := k.processed
	for k.Step() {
	}
	return k.processed - start
}

// RunUntil fires every event scheduled at or before t, then advances the
// clock to t. It returns the number of events fired.
func (k *Kernel) RunUntil(t Time) uint64 {
	start := k.processed
	for {
		next, ok := k.peek()
		if !ok || next > t {
			break
		}
		k.Step()
	}
	if t > k.now {
		k.now = t
	}
	return k.processed - start
}

// RunFor advances the clock by d, firing all events in the window.
func (k *Kernel) RunFor(d Duration) uint64 { return k.RunUntil(k.now.Add(d)) }

// RunWhile fires events while cond returns true and events remain. It is
// the main loop used by experiment runners that wait for a condition (for
// example "device ready") without a hard deadline.
func (k *Kernel) RunWhile(cond func() bool) uint64 {
	start := k.processed
	for cond() && k.Step() {
	}
	return k.processed - start
}

func (k *Kernel) peek() (Time, bool) {
	for len(k.heap) > 0 {
		if k.heap[0].stopped {
			heap.Pop(&k.heap)
			continue
		}
		return k.heap[0].when, true
	}
	return 0, false
}
