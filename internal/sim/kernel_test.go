package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestKernelFiresInTimeOrder(t *testing.T) {
	k := New()
	var got []Time
	for _, d := range []Duration{50, 10, 30, 20, 40} {
		d := d
		k.After(d, func() { got = append(got, k.Now()) })
	}
	if n := k.Run(); n != 5 {
		t.Fatalf("Run fired %d events, want 5", n)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("events out of order: %v", got)
		}
	}
	if got[0] != Time(10) || got[4] != Time(50) {
		t.Fatalf("unexpected firing times: %v", got)
	}
}

func TestKernelSameInstantFIFO(t *testing.T) {
	k := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(Time(100), func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestKernelPastEventsRunNow(t *testing.T) {
	k := New()
	k.After(100, func() {})
	k.Run()
	fired := false
	k.At(Time(5), func() { fired = true }) // in the past
	if k.heap[0].when != k.Now() {
		t.Fatalf("past event scheduled at %v, want now %v", k.heap[0].when, k.Now())
	}
	k.Run()
	if !fired {
		t.Fatal("past event never fired")
	}
}

func TestTimerStop(t *testing.T) {
	k := New()
	fired := false
	tm := k.After(10, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop returned false on pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	k.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
	if !tm.Stopped() || tm.Fired() {
		t.Fatal("stopped timer state wrong")
	}
}

func TestStopAfterFire(t *testing.T) {
	k := New()
	tm := k.After(1, func() {})
	k.Run()
	if tm.Stop() {
		t.Fatal("Stop after firing returned true")
	}
	if !tm.Fired() {
		t.Fatal("Fired not set")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	k := New()
	fired := 0
	k.After(10, func() { fired++ })
	k.After(20, func() { fired++ })
	k.After(30, func() { fired++ })
	if n := k.RunUntil(Time(20)); n != 2 {
		t.Fatalf("RunUntil fired %d, want 2", n)
	}
	if k.Now() != Time(20) {
		t.Fatalf("clock at %v, want 20", k.Now())
	}
	if fired != 2 {
		t.Fatalf("fired=%d, want 2", fired)
	}
	k.RunFor(Duration(15))
	if fired != 3 || k.Now() != Time(35) {
		t.Fatalf("after RunFor: fired=%d now=%v", fired, k.Now())
	}
}

func TestRunWhile(t *testing.T) {
	k := New()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			k.After(1, tick)
		}
	}
	k.After(1, tick)
	k.RunWhile(func() bool { return count < 10 })
	if count != 10 {
		t.Fatalf("RunWhile stopped at count=%d, want 10", count)
	}
}

func TestPendingExcludesStopped(t *testing.T) {
	k := New()
	t1 := k.After(10, func() {})
	k.After(20, func() {})
	if k.Pending() != 2 {
		t.Fatalf("Pending=%d, want 2", k.Pending())
	}
	t1.Stop()
	if k.Pending() != 1 {
		t.Fatalf("Pending=%d after stop, want 1", k.Pending())
	}
}

// Regression (PR 9): stopped timers used to linger in the heap until
// popped, so a cut-heavy fleet run accumulated dead entries. Stop now
// reclaims the heap entry and the slot eagerly.
func TestStoppedTimersReclaimedEagerly(t *testing.T) {
	k := New()
	timers := make([]Timer, 1000)
	for i := range timers {
		timers[i] = k.After(Duration(i+1), func() {})
	}
	for _, tm := range timers {
		if !tm.Stop() {
			t.Fatal("Stop returned false on pending timer")
		}
	}
	if len(k.heap) != 0 {
		t.Fatalf("heap still holds %d entries after stopping every timer", len(k.heap))
	}
	if k.Pending() != 0 {
		t.Fatalf("Pending=%d, want 0", k.Pending())
	}
	// The slot table is recycled, not regrown.
	slots := len(k.slots)
	for i := range timers {
		timers[i] = k.After(Duration(i+1), func() {})
	}
	if len(k.slots) != slots {
		t.Fatalf("slot table grew from %d to %d across a full recycle", slots, len(k.slots))
	}
	if n := k.Run(); n != 1000 {
		t.Fatalf("Run fired %d, want 1000", n)
	}
}

// Regression (PR 9): a stale handle whose slot has been reused must not
// cancel (or report on) the unrelated timer now occupying the slot.
func TestStaleHandleCannotTouchReusedSlot(t *testing.T) {
	k := New()
	fired := false
	t1 := k.After(10, func() {})
	if !t1.Stop() {
		t.Fatal("Stop failed")
	}
	t2 := k.After(20, func() { fired = true }) // reuses t1's slot
	if t2.slot != t1.slot {
		t.Fatalf("free list did not reuse the slot (t1=%d t2=%d)", t1.slot, t2.slot)
	}
	if t1.Stop() {
		t.Fatal("stale handle cancelled the reused slot's timer")
	}
	if t1.Fired() {
		t.Fatal("stale stopped handle reports Fired")
	}
	if !t2.Pending() {
		t.Fatal("live timer lost its pending state")
	}
	k.Run()
	if !fired {
		t.Fatal("reused-slot timer never fired")
	}
	if !t2.Fired() || t2.Stopped() {
		t.Fatal("fired timer state wrong")
	}
}

// Pending is O(1): it must stay exact through heavy interleaved
// schedule/stop/fire churn without scanning.
func TestPendingExactUnderChurn(t *testing.T) {
	k := New()
	live := map[int]Timer{}
	next := 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 20; i++ {
			live[next] = k.After(Duration(1+(next%7)), func() {})
			next++
		}
		for id, tm := range live {
			if id%3 == 0 {
				tm.Stop()
				delete(live, id)
			}
		}
		if k.Pending() != len(live) {
			t.Fatalf("round %d: Pending=%d, want %d", round, k.Pending(), len(live))
		}
		k.RunFor(2)
		for id, tm := range live {
			if tm.Fired() {
				delete(live, id)
			}
		}
		if k.Pending() != len(live) {
			t.Fatalf("round %d after RunFor: Pending=%d, want %d", round, k.Pending(), len(live))
		}
	}
}

func TestZeroTimerIsInert(t *testing.T) {
	var tm Timer
	if tm.Stop() || tm.Pending() || tm.Fired() || tm.Stopped() || tm.When() != 0 {
		t.Fatal("zero Timer is not inert")
	}
}

func TestNilCallbackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At(nil) did not panic")
		}
	}()
	New().At(0, nil)
}

func TestNestedScheduling(t *testing.T) {
	k := New()
	var seq []string
	k.After(10, func() {
		seq = append(seq, "a")
		k.After(5, func() { seq = append(seq, "c") })
		k.After(1, func() { seq = append(seq, "b") })
	})
	k.Run()
	if len(seq) != 3 || seq[0] != "a" || seq[1] != "b" || seq[2] != "c" {
		t.Fatalf("nested order wrong: %v", seq)
	}
}

// Property: any batch of randomly timed events fires in sorted order.
func TestQuickEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		k := New()
		var fired []Time
		for _, d := range delays {
			k.After(Duration(d), func() { fired = append(fired, k.Now()) })
		}
		k.Run()
		if len(fired) != len(delays) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestProcessedCount(t *testing.T) {
	k := New()
	for i := 0; i < 7; i++ {
		k.After(Duration(i), func() {})
	}
	k.Run()
	if k.Processed() != 7 {
		t.Fatalf("Processed=%d, want 7", k.Processed())
	}
}
