package sim

import "testing"

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(0)
	t1 := t0.Add(3 * Second)
	if t1.Seconds() != 3 {
		t.Fatalf("Seconds = %g, want 3", t1.Seconds())
	}
	if d := t1.Sub(t0); d != 3*Second {
		t.Fatalf("Sub = %v, want 3s", d)
	}
	if t1.Millis() != 3000 {
		t.Fatalf("Millis = %g", t1.Millis())
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ns"},
		{2500, "2.5us"},
		{3 * Millisecond, "3.00ms"},
		{1500 * Millisecond, "1.500s"},
		{-2500, "-2.5us"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestConversions(t *testing.T) {
	if Seconds(1.5) != 1500*Millisecond {
		t.Fatal("Seconds conversion wrong")
	}
	if Millis(2) != 2*Millisecond {
		t.Fatal("Millis conversion wrong")
	}
	if Micros(7) != 7*Microsecond {
		t.Fatal("Micros conversion wrong")
	}
	if (2 * Millisecond).Micros() != 2000 {
		t.Fatal("Micros() wrong")
	}
}

func TestTimeString(t *testing.T) {
	if got := Time(1500 * Millisecond).String(); got != "1.500000s" {
		t.Fatalf("Time.String = %q", got)
	}
}
