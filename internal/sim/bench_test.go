package sim

import "testing"

// BenchmarkKernelScheduleFire measures the schedule→fire round trip that
// every simulated event pays. The callback is hoisted so the benchmark
// isolates the kernel's own cost; allocs/op must be zero in steady state.
func BenchmarkKernelScheduleFire(b *testing.B) {
	k := New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.After(Duration(i%97), fn)
		k.Step()
	}
}

// BenchmarkKernelDeepQueue keeps a deep pending queue (the fleet steady
// state: thousands of member completions in flight) while scheduling and
// firing, exercising real sift depths instead of a near-empty heap.
func BenchmarkKernelDeepQueue(b *testing.B) {
	k := New()
	fn := func() {}
	for i := 0; i < 4096; i++ {
		k.After(Duration(1+i%251), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.After(Duration(1+i%251), fn)
		k.Step()
	}
}

// BenchmarkKernelScheduleStop measures the cancel path: timeout timers
// are scheduled per IO and almost always stopped. Eager reclamation makes
// this allocation-free and keeps the heap from accumulating dead entries.
func BenchmarkKernelScheduleStop(b *testing.B) {
	k := New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm := k.After(Duration(1+i%97), fn)
		tm.Stop()
	}
	b.StopTimer()
	if len(k.heap) != 0 {
		b.Fatalf("heap holds %d entries after stop-only load", len(k.heap))
	}
}
