package runstore

import "math"

// welch computes the difference of means (new - old) with a Welch 95%
// confidence interval. The interval uses the Welch–Satterthwaite degrees
// of freedom and a Student-t quantile, like benchstat's delta column.
//
// Degenerate inputs degrade explicitly: with fewer than two samples on
// either side, or zero variance on both sides, the interval collapses to
// the point delta [delta, delta] and ok reports whether the interval is a
// real estimate (false for the n<2 case, where no variance exists to
// estimate from — unless the delta itself is zero, which needs none).
func welch(old, new []float64) (delta, lo, hi float64, ok bool) {
	mo, vo := meanVar(old)
	mn, vn := meanVar(new)
	delta = mn - mo
	if len(old) < 2 || len(new) < 2 {
		return delta, delta, delta, delta == 0
	}
	no, nn := float64(len(old)), float64(len(new))
	se2 := vo/no + vn/nn
	if se2 == 0 {
		// Every sample equal on both sides: the delta is exact.
		return delta, delta, delta, true
	}
	se := math.Sqrt(se2)
	// Welch–Satterthwaite degrees of freedom.
	df := se2 * se2 / (vo*vo/(no*no*(no-1)) + vn*vn/(nn*nn*(nn-1)))
	t := tQuantile975(df)
	return delta, delta - t*se, delta + t*se, true
}

func meanVar(xs []float64) (mean, variance float64) {
	n := float64(len(xs))
	if n == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= n
	if n < 2 {
		return mean, 0
	}
	for _, x := range xs {
		d := x - mean
		variance += d * d
	}
	return mean, variance / (n - 1)
}

// t975Table holds the two-sided 95% Student-t quantiles for integer
// degrees of freedom 1..30.
var t975Table = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// tQuantile975 returns the 0.975 quantile of Student's t distribution
// with df degrees of freedom (df may be fractional, from
// Welch–Satterthwaite). Table lookup with linear interpolation below 30
// degrees; the Cornish–Fisher expansion around the normal quantile above.
func tQuantile975(df float64) float64 {
	if df <= 1 {
		return t975Table[0]
	}
	if df <= 30 {
		i := int(df) // 1..30
		lo := t975Table[i-1]
		if df == float64(i) || i >= 30 {
			return lo
		}
		return lo + (df-float64(i))*(t975Table[i]-lo)
	}
	const z = 1.959963984540054 // Phi^-1(0.975)
	z3, z5 := z*z*z, z*z*z*z*z
	return z + (z3+z)/(4*df) + (5*z5+16*z3+3*z)/(96*df*df)
}
