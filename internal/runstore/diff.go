package runstore

import (
	"encoding/json"
	"fmt"
	"sort"

	"powerfail/internal/obs"
)

// Verdict classifies one metric's delta between two archives.
type Verdict string

// Verdicts. Indeterminate marks deltas whose confidence interval cannot
// be estimated (fewer than two samples a side with a nonzero delta):
// reported, never counted as a regression.
const (
	Unchanged     Verdict = "unchanged"
	Regressed     Verdict = "regressed"
	Improved      Verdict = "improved"
	Indeterminate Verdict = "~"
)

// Direction says which way a metric is allowed to move.
type Direction int

// Directions.
const (
	// HigherWorse flags upward deltas as regressions (loss rates,
	// unreachable commits, latency quantiles).
	HigherWorse Direction = iota
	// HigherBetter flags downward deltas as regressions (nines).
	HigherBetter
	// Informational deltas are reported but never verdicted beyond
	// changed/unchanged (obs histograms that are not durations).
	Informational
)

// MetricDelta is one per-figure metric compared across two archives.
type MetricDelta struct {
	Metric    string    `json:"metric"`
	Direction Direction `json:"-"`

	OldN    int     `json:"-"`
	NewN    int     `json:"-"`
	OldMean float64 `json:"old_mean"`
	NewMean float64 `json:"new_mean"`
	// Delta is NewMean - OldMean; [CILo, CIHi] is its Welch 95%
	// confidence interval (degenerate [Delta,Delta] when no variance
	// estimate exists).
	Delta float64 `json:"delta"`
	CILo  float64 `json:"ci_lo"`
	CIHi  float64 `json:"ci_hi"`

	Verdict Verdict `json:"verdict"`
}

// FigureDiff compares one figure present in both archives.
type FigureDiff struct {
	Figure string `json:"figure"`
	// Aligned counts the items matched by (figure, label) across the two
	// archives; OldOnly/NewOnly count the unmatched remainder.
	Aligned int           `json:"aligned"`
	OldOnly int           `json:"old_only,omitempty"`
	NewOnly int           `json:"new_only,omitempty"`
	Metrics []MetricDelta `json:"metrics"`
}

// DiffReport is the outcome of comparing two archives.
type DiffReport struct {
	Old, New string `json:"-"`

	Figures []FigureDiff `json:"figures"`

	Regressions  int `json:"regressions"`
	Improvements int `json:"improvements"`
	Unchanged_   int `json:"unchanged"`
}

// itemMetrics is the narrow view of a report's JSON the diff needs: the
// headline loss rate, the fleet nines, the recovery-policy ablation and
// the observability summary. Decoding is tolerant — absent sections stay
// nil and simply produce no samples.
type itemMetrics struct {
	Faults           int     `json:"faults"`
	DataLossPerFault float64 `json:"data_loss_per_fault"`
	Fleet            *struct {
		AvailabilityNines float64 `json:"availability_nines"`
		DurabilityNines   float64 `json:"durability_nines"`
	} `json:"fleet_stats"`
	TxnPolicies []struct {
		Policy      string `json:"policy"`
		LostCommits int64  `json:"lost_commits"`
		OutOfOrder  int64  `json:"out_of_order"`
	} `json:"txn_policies"`
	Obs *obs.Summary `json:"obs"`
}

// samples maps metric name -> per-item values for one figure of one
// archive, aligned by item label.
type samples map[string][]float64

// collect extracts the metric samples of one item record into s.
func (s samples) collect(rec *ItemRecord) error {
	var m itemMetrics
	if err := json.Unmarshal(rec.Report, &m); err != nil {
		return fmt.Errorf("item %s/%s: %w", rec.Figure, rec.Label, err)
	}
	s["loss/fault"] = append(s["loss/fault"], m.DataLossPerFault)
	if m.Fleet != nil {
		s["availability-nines"] = append(s["availability-nines"], m.Fleet.AvailabilityNines)
		s["durability-nines"] = append(s["durability-nines"], m.Fleet.DurabilityNines)
	}
	if len(m.TxnPolicies) > 0 {
		var hole, strict float64
		for _, p := range m.TxnPolicies {
			losses := float64(p.LostCommits + p.OutOfOrder)
			switch p.Policy {
			case "hole-tolerant":
				hole = losses
			case "strict-scan":
				strict = losses
			}
		}
		s["txn-losses"] = append(s["txn-losses"], hole)
		s["txn-unreachable"] = append(s["txn-unreachable"], strict-hole)
	}
	if m.Obs != nil {
		for _, h := range m.Obs.Histograms {
			s["obs:"+h.Name+"/p50"] = append(s["obs:"+h.Name+"/p50"], float64(h.P50))
			s["obs:"+h.Name+"/p99"] = append(s["obs:"+h.Name+"/p99"], float64(h.P99))
		}
	}
	return nil
}

// direction classifies a metric name.
func direction(metric string) Direction {
	switch metric {
	case "availability-nines", "durability-nines":
		return HigherBetter
	case "loss/fault", "txn-losses", "txn-unreachable":
		return HigherWorse
	}
	if len(metric) > 4 && metric[:4] == "obs:" {
		// Sim-time duration histograms (…_ns) are latencies: up is worse.
		// Other histograms (sizes, depths) are informational.
		base := metric[:len(metric)-4] // strip /p50 or /p99
		if len(base) > 3 && base[len(base)-3:] == "_ns" {
			return HigherWorse
		}
		return Informational
	}
	return Informational
}

// Diff compares two archives: items are aligned per figure by label (the
// spec identity a figure point keeps across code versions — the full
// spec-hash Key is deliberately not required to match, so two commits
// remain comparable), per-figure metric samples are tested with Welch 95%
// intervals, and every delta gets a verdict. Figures or items present on
// only one side are reported but not compared.
func Diff(old, new *Archive) (*DiffReport, error) {
	out := &DiffReport{Old: old.Path, New: new.Path}

	type figItems struct {
		byLabel map[string]*ItemRecord
		order   []string
	}
	index := func(a *Archive) (map[string]*figItems, []string) {
		figs := map[string]*figItems{}
		var order []string
		for i := range a.Items {
			rec := &a.Items[i]
			if rec.Error != "" || len(rec.Report) == 0 {
				continue
			}
			fi := figs[rec.Figure]
			if fi == nil {
				fi = &figItems{byLabel: map[string]*ItemRecord{}}
				figs[rec.Figure] = fi
				order = append(order, rec.Figure)
			}
			if _, dup := fi.byLabel[rec.Label]; !dup {
				fi.order = append(fi.order, rec.Label)
			}
			fi.byLabel[rec.Label] = rec
		}
		return figs, order
	}
	oldFigs, figOrder := index(old)
	newFigs, newOrder := index(new)
	// Compare in old-archive figure order; new-only figures are appended
	// as uncompared stubs.
	for _, fig := range newOrder {
		if _, ok := oldFigs[fig]; !ok {
			figOrder = append(figOrder, fig)
		}
	}

	for _, fig := range figOrder {
		of, nf := oldFigs[fig], newFigs[fig]
		fd := FigureDiff{Figure: fig}
		if of == nil || nf == nil {
			if of != nil {
				fd.OldOnly = len(of.byLabel)
			}
			if nf != nil {
				fd.NewOnly = len(nf.byLabel)
			}
			out.Figures = append(out.Figures, fd)
			continue
		}
		oldS, newS := samples{}, samples{}
		for _, label := range of.order {
			orec := of.byLabel[label]
			nrec, ok := nf.byLabel[label]
			if !ok {
				fd.OldOnly++
				continue
			}
			if err := oldS.collect(orec); err != nil {
				return nil, fmt.Errorf("runstore: %s: %w", old.Path, err)
			}
			if err := newS.collect(nrec); err != nil {
				return nil, fmt.Errorf("runstore: %s: %w", new.Path, err)
			}
			fd.Aligned++
		}
		for _, label := range nf.order {
			if _, ok := of.byLabel[label]; !ok {
				fd.NewOnly++
			}
		}

		names := make([]string, 0, len(oldS))
		for name := range oldS {
			if _, ok := newS[name]; ok {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		// loss/fault leads; the rest alphabetical.
		sort.SliceStable(names, func(i, j int) bool {
			return names[i] == "loss/fault" && names[j] != "loss/fault"
		})
		for _, name := range names {
			md := compare(name, oldS[name], newS[name])
			switch md.Verdict {
			case Regressed:
				out.Regressions++
			case Improved:
				out.Improvements++
			case Unchanged:
				out.Unchanged_++
			}
			fd.Metrics = append(fd.Metrics, md)
		}
		out.Figures = append(out.Figures, fd)
	}
	return out, nil
}

// compare runs the Welch test on one metric's sample pair and verdicts
// the delta.
func compare(name string, old, new []float64) MetricDelta {
	md := MetricDelta{
		Metric:    name,
		Direction: direction(name),
		OldN:      len(old),
		NewN:      len(new),
	}
	var lo, hi float64
	var ok bool
	md.OldMean, _ = meanVar(old)
	md.NewMean, _ = meanVar(new)
	md.Delta, lo, hi, ok = welch(old, new)
	md.CILo, md.CIHi = lo, hi
	switch {
	case !ok:
		md.Verdict = Indeterminate
	case lo <= 0 && hi >= 0 && !(md.Delta != 0 && lo == hi):
		// CI includes zero (the degenerate zero-variance nonzero delta is
		// excluded: [d,d] with d != 0 is a definite change).
		md.Verdict = Unchanged
	default:
		worse := md.Delta > 0
		if md.Direction == HigherBetter {
			worse = !worse
		}
		if md.Direction == Informational {
			// A definite change with no defined bad direction: call it
			// indeterminate rather than invent a polarity.
			md.Verdict = Indeterminate
		} else if worse {
			md.Verdict = Regressed
		} else {
			md.Verdict = Improved
		}
	}
	return md
}
