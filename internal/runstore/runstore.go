// Package runstore persists campaign runs as self-describing archives and
// computes differential reports between two archives (the benchstat-style
// comparison cmd/powerstat prints).
//
// An archive is a JSON-lines file:
//
//	{"kind":"manifest", ...}   one header: tool/Go version, VCS revision,
//	                           base seed, and the identity of every item
//	{"kind":"item", ...}       appended as each item completes: the item
//	                           key and its full report JSON (verbatim)
//	{"kind":"final", ...}      written once the campaign completed fully:
//	                           merged per-figure aggregates and wall time
//
// The per-item records are appended in completion order, which under a
// parallel campaign differs from item order; the item key — not the file
// position — is an item's identity. An interrupted campaign leaves a
// valid archive with no final record; resuming from it re-uses every
// journaled report byte-for-byte, so the resumed campaign's output is
// byte-identical to an uninterrupted run. A trailing partial line (a
// crash mid-append) is ignored on read.
package runstore

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// FormatVersion is the archive format this package writes.
const FormatVersion = 1

// ItemSpec identifies one catalog item in the manifest.
type ItemSpec struct {
	Index  int     `json:"index"`
	Figure string  `json:"figure"`
	Label  string  `json:"label"`
	Seed   uint64  `json:"seed"`
	X      float64 `json:"x"`
	// Key is the item's spec identity: a content hash of the item's
	// options and experiment spec. Resume matches journaled records
	// against fresh items by this key, so a changed spec re-runs.
	Key string `json:"key"`
}

// Manifest is the archive header.
type Manifest struct {
	V    int    `json:"v"`
	Tool string `json:"tool"`
	// Version/GoVersion/VCSRevision record what produced the archive
	// (best effort; empty outside a module build).
	Version     string `json:"version,omitempty"`
	GoVersion   string `json:"go"`
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	// Created is the wall-clock start, RFC3339. Process telemetry only:
	// nothing deterministic reads it back.
	Created string `json:"created,omitempty"`

	Figure   string  `json:"figure,omitempty"`
	Scale    float64 `json:"scale,omitempty"`
	BaseSeed uint64  `json:"base_seed,omitempty"`

	// Shard/ShardCount mark an archive written by a sharded run: only the
	// items whose global index is congruent to Shard modulo ShardCount were
	// executed and journaled. Item indices, seeds and keys are those of the
	// full campaign, so merging every shard's records reproduces exactly
	// the record set of an unsharded run. Both are zero (and omitted) for
	// ordinary archives, keeping pre-shard archive bytes unchanged.
	Shard      int `json:"shard,omitempty"`
	ShardCount int `json:"shard_count,omitempty"`

	Items []ItemSpec `json:"items"`
}

// ItemRecord is one completed item: its identity and its report exactly
// as the campaign marshaled it. Error records items that failed (their
// reports are never reused on resume).
type ItemRecord struct {
	Index  int             `json:"index"`
	Key    string          `json:"key"`
	Figure string          `json:"figure"`
	Label  string          `json:"label"`
	Seed   uint64          `json:"seed"`
	Error  string          `json:"error,omitempty"`
	Report json.RawMessage `json:"report,omitempty"`
}

// Final closes a fully-completed archive: totals, the merged per-figure
// aggregates (verbatim campaign JSON), and process telemetry.
type Final struct {
	Items     int             `json:"items"`
	Completed int             `json:"completed"`
	Failed    int             `json:"failed"`
	SimNS     int64           `json:"sim_ns"`
	Figures   json.RawMessage `json:"figures,omitempty"`
	WallNS    int64           `json:"wall_ns"`
	EventsPS  float64         `json:"events_per_sec,omitempty"`
}

// record is the on-disk envelope: a kind tag plus exactly one payload.
type record struct {
	Kind     string      `json:"kind"`
	Manifest *Manifest   `json:"manifest,omitempty"`
	Item     *ItemRecord `json:"item,omitempty"`
	Final    *Final      `json:"final,omitempty"`
}

// A Writer journals one campaign run to an archive file. Methods are not
// goroutine-safe; the campaign serializes appends on its result loop.
type Writer struct {
	f   *os.File
	w   *bufio.Writer
	err error
}

// Create opens path for writing and writes the manifest line. An existing
// file is truncated: an archive describes exactly one run.
func Create(path string, m Manifest) (*Writer, error) {
	m.V = FormatVersion
	if m.Created == "" {
		m.Created = time.Now().UTC().Format(time.RFC3339)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	w := &Writer{f: f, w: bufio.NewWriter(f)}
	if err := w.append(record{Kind: "manifest", Manifest: &m}); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

func (w *Writer) append(rec record) error {
	if w.err != nil {
		return w.err
	}
	b, err := json.Marshal(rec)
	if err == nil {
		_, err = w.w.Write(append(b, '\n'))
	}
	if err == nil {
		// Flush per record so an interrupted run leaves every completed
		// item on disk — the whole point of journaling.
		err = w.w.Flush()
	}
	if err != nil {
		w.err = fmt.Errorf("runstore: append: %w", err)
	}
	return w.err
}

// Append journals one completed (or failed) item.
func (w *Writer) Append(rec ItemRecord) error {
	return w.append(record{Kind: "item", Item: &rec})
}

// Finalize writes the final record. Call only when every item completed.
func (w *Writer) Finalize(f Final) error {
	return w.append(record{Kind: "final", Final: &f})
}

// Close flushes and closes the underlying file.
func (w *Writer) Close() error {
	if w.f == nil {
		return nil
	}
	flushErr := w.w.Flush()
	closeErr := w.f.Close()
	w.f = nil
	if w.err != nil {
		return w.err
	}
	if flushErr != nil {
		return fmt.Errorf("runstore: %w", flushErr)
	}
	if closeErr != nil {
		return fmt.Errorf("runstore: %w", closeErr)
	}
	return nil
}

// Archive is a loaded run archive.
type Archive struct {
	Path     string
	Manifest Manifest
	// Items holds every journaled item record in file (completion) order.
	Items []ItemRecord
	// Final is non-nil only for a fully-completed run.
	Final *Final

	byKey map[string]*ItemRecord
}

// Open reads the archive at path. A trailing partial line is tolerated;
// anything else malformed is an error. Later records for the same key
// shadow earlier ones.
func Open(path string) (*Archive, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	a := &Archive{Path: path}
	lines := bytes.Split(data, []byte("\n"))
	for i, line := range lines {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var rec record
		if err := json.Unmarshal(line, &rec); err != nil {
			if i == len(lines)-1 {
				break // torn final append from an interrupted run
			}
			return nil, fmt.Errorf("runstore: %s line %d: %w", path, i+1, err)
		}
		switch rec.Kind {
		case "manifest":
			if rec.Manifest == nil {
				return nil, fmt.Errorf("runstore: %s line %d: empty manifest", path, i+1)
			}
			a.Manifest = *rec.Manifest
		case "item":
			if rec.Item == nil {
				return nil, fmt.Errorf("runstore: %s line %d: empty item", path, i+1)
			}
			a.Items = append(a.Items, *rec.Item)
		case "final":
			a.Final = rec.Final
		default:
			return nil, fmt.Errorf("runstore: %s line %d: unknown record kind %q", path, i+1, rec.Kind)
		}
	}
	if a.Manifest.V == 0 {
		return nil, fmt.Errorf("runstore: %s: not a run archive (no manifest)", path)
	}
	if a.Manifest.V > FormatVersion {
		return nil, fmt.Errorf("runstore: %s: archive format v%d is newer than this tool (v%d)",
			path, a.Manifest.V, FormatVersion)
	}
	// Rebuild byKey over the final slice: append may have moved entries.
	a.byKey = make(map[string]*ItemRecord, len(a.Items))
	for i := range a.Items {
		a.byKey[a.Items[i].Key] = &a.Items[i]
	}
	return a, nil
}

// Lookup returns the journaled record for an item key, or nil.
func (a *Archive) Lookup(key string) *ItemRecord {
	return a.byKey[key]
}

// Merge combines the item records of several archives — typically the N
// archives of an N-way sharded run — into one in-memory archive suitable
// for resuming. Records keep their file order per archive; across
// archives, later records for the same key shadow earlier ones, matching
// Open's semantics for a single file. The merged manifest is the first
// archive's with the shard marker cleared; archives disagreeing on
// figure or scale are refused. The merged archive carries no final
// record: the campaign resumed from it writes its own.
func Merge(archives ...*Archive) (*Archive, error) {
	if len(archives) == 0 {
		return nil, fmt.Errorf("runstore: merge: no archives")
	}
	m := archives[0].Manifest
	for _, a := range archives[1:] {
		if a.Manifest.Figure != m.Figure || a.Manifest.Scale != m.Scale {
			return nil, fmt.Errorf("runstore: merge: %s is figure %q scale %g, but %s is figure %q scale %g",
				archives[0].Path, m.Figure, m.Scale, a.Path, a.Manifest.Figure, a.Manifest.Scale)
		}
	}
	m.Shard, m.ShardCount = 0, 0
	merged := &Archive{Path: "merged", Manifest: m}
	for _, a := range archives {
		merged.Items = append(merged.Items, a.Items...)
	}
	merged.byKey = make(map[string]*ItemRecord, len(merged.Items))
	for i := range merged.Items {
		merged.byKey[merged.Items[i].Key] = &merged.Items[i]
	}
	return merged, nil
}

// Completed counts journaled items that carry a report (not an error).
func (a *Archive) Completed() int {
	n := 0
	for i := range a.Items {
		if a.Items[i].Error == "" && len(a.Items[i].Report) > 0 {
			n++
		}
	}
	return n
}
