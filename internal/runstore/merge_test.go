package runstore

import (
	"encoding/json"
	"path/filepath"
	"testing"
)

// mergeArchive journals a manifest plus item records via the package's
// writeArchive test helper and returns the archive loaded back.
func mergeArchive(t *testing.T, path string, m Manifest, items ...ItemRecord) *Archive {
	t.Helper()
	writeArchive(t, path, m, items, nil)
	a, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestMergeCombinesAndShadows(t *testing.T) {
	dir := t.TempDir()
	rep := json.RawMessage(`{"faults":1}`)
	a := mergeArchive(t, filepath.Join(dir, "a.run"),
		Manifest{Tool: "test", Figure: "fig5", Scale: 0.1, Shard: 0, ShardCount: 2},
		ItemRecord{Index: 0, Key: "k0", Report: rep},
		ItemRecord{Index: 2, Key: "k2", Report: rep},
	)
	rep2 := json.RawMessage(`{"faults":2}`)
	b := mergeArchive(t, filepath.Join(dir, "b.run"),
		Manifest{Tool: "test", Figure: "fig5", Scale: 0.1, Shard: 1, ShardCount: 2},
		ItemRecord{Index: 1, Key: "k1", Report: rep},
		ItemRecord{Index: 2, Key: "k2", Report: rep2}, // duplicate key: later shadows
	)

	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Manifest.Shard != 0 || m.Manifest.ShardCount != 0 {
		t.Fatalf("merged manifest keeps shard marker %d/%d", m.Manifest.Shard, m.Manifest.ShardCount)
	}
	if len(m.Items) != 4 {
		t.Fatalf("merged items = %d, want 4 (records kept, later shadows in lookup)", len(m.Items))
	}
	for _, key := range []string{"k0", "k1", "k2"} {
		if m.Lookup(key) == nil {
			t.Fatalf("merged archive misses key %s", key)
		}
	}
	if got := string(m.Lookup("k2").Report); got != string(rep2) {
		t.Fatalf("k2 report = %s, want the later archive's %s", got, rep2)
	}
}

func TestMergeRefusesMismatch(t *testing.T) {
	dir := t.TempDir()
	a := mergeArchive(t, filepath.Join(dir, "a.run"), Manifest{Tool: "test", Figure: "fig5", Scale: 0.1})
	b := mergeArchive(t, filepath.Join(dir, "b.run"), Manifest{Tool: "test", Figure: "fig6", Scale: 0.1})
	if _, err := Merge(a, b); err == nil {
		t.Fatal("figure mismatch merged without error")
	}
	c := mergeArchive(t, filepath.Join(dir, "c.run"), Manifest{Tool: "test", Figure: "fig5", Scale: 0.2})
	if _, err := Merge(a, c); err == nil {
		t.Fatal("scale mismatch merged without error")
	}
	if _, err := Merge(); err == nil {
		t.Fatal("empty merge returned no error")
	}
}

// TestManifestShardFieldsOmitted: ordinary (unsharded) manifests must not
// grow new JSON keys — pre-shard archive bytes stay reproducible.
func TestManifestShardFieldsOmitted(t *testing.T) {
	b, err := json.Marshal(Manifest{Tool: "test"})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"shard", "shard_count"} {
		if jsonHasKey(b, key) {
			t.Fatalf("unsharded manifest JSON carries %q: %s", key, b)
		}
	}
}

func jsonHasKey(b []byte, key string) bool {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(b, &m); err != nil {
		return false
	}
	_, ok := m[key]
	return ok
}
