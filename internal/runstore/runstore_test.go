package runstore

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeArchive(t *testing.T, path string, m Manifest, items []ItemRecord, final *Final) {
	t.Helper()
	w, err := Create(path, m)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		if err := w.Append(it); err != nil {
			t.Fatal(err)
		}
	}
	if final != nil {
		if err := w.Finalize(*final); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestArchiveRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.jsonl")
	m := Manifest{
		Tool: "test", GoVersion: "go1.24", Figure: "fig5", Scale: 0.5, BaseSeed: 7,
		Items: []ItemSpec{{Index: 0, Figure: "fig5", Label: "x", Seed: 1, Key: "k0"}},
	}
	items := []ItemRecord{
		{Index: 0, Key: "k0", Figure: "fig5", Label: "x", Seed: 1, Report: json.RawMessage(`{"faults":3}`)},
		{Index: 1, Key: "k1", Figure: "fig5", Label: "y", Seed: 2, Error: "boom"},
	}
	final := &Final{Items: 2, Completed: 1, Failed: 1, SimNS: 42, Figures: json.RawMessage(`[{"figure":"fig5"}]`)}
	writeArchive(t, path, m, items, final)

	a, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if a.Manifest.V != FormatVersion || a.Manifest.Tool != "test" || a.Manifest.BaseSeed != 7 {
		t.Fatalf("manifest = %+v", a.Manifest)
	}
	if a.Manifest.Created == "" {
		t.Fatal("Create did not stamp Created")
	}
	if len(a.Items) != 2 {
		t.Fatalf("items = %d", len(a.Items))
	}
	if got := a.Lookup("k0"); got == nil || string(got.Report) != `{"faults":3}` {
		t.Fatalf("Lookup(k0) = %+v", got)
	}
	if got := a.Lookup("k1"); got == nil || got.Error != "boom" {
		t.Fatalf("Lookup(k1) = %+v", got)
	}
	if a.Lookup("nope") != nil {
		t.Fatal("Lookup of unknown key not nil")
	}
	// Errored items do not count as completed.
	if got := a.Completed(); got != 1 {
		t.Fatalf("Completed = %d, want 1", got)
	}
	if a.Final == nil || a.Final.SimNS != 42 || a.Final.Failed != 1 {
		t.Fatalf("final = %+v", a.Final)
	}
}

// TestArchiveTornTail: a crash mid-append leaves a partial last line; Open
// keeps every whole record and drops only the torn tail.
func TestArchiveTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.jsonl")
	writeArchive(t, path, Manifest{Tool: "test"}, []ItemRecord{
		{Key: "k0", Report: json.RawMessage(`{"faults":1}`)},
	}, nil)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kind":"item","item":{"key":"k1","repor`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	a, err := Open(path)
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	if a.Completed() != 1 || a.Lookup("k1") != nil {
		t.Fatalf("torn archive = %d completed, k1=%v", a.Completed(), a.Lookup("k1"))
	}

	// A malformed line that is NOT the tail is corruption, not tolerance.
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, append([]byte("garbage\n"), data...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("mid-file garbage accepted")
	}
}

// TestArchiveLaterRecordShadows: re-journaling on resume appends a second
// record for the same key; the later one wins in Lookup.
func TestArchiveLaterRecordShadows(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.jsonl")
	writeArchive(t, path, Manifest{Tool: "test"}, []ItemRecord{
		{Key: "k0", Report: json.RawMessage(`{"faults":1}`)},
		{Key: "k0", Report: json.RawMessage(`{"faults":2}`)},
	}, nil)
	a, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Lookup("k0"); string(got.Report) != `{"faults":2}` {
		t.Fatalf("Lookup(k0) = %s, want the later record", got.Report)
	}
}

func TestOpenRejections(t *testing.T) {
	dir := t.TempDir()

	notArchive := filepath.Join(dir, "not.jsonl")
	os.WriteFile(notArchive, []byte(`{"kind":"item","item":{"key":"k"}}`+"\n"), 0o644)
	if _, err := Open(notArchive); err == nil || !strings.Contains(err.Error(), "no manifest") {
		t.Fatalf("no-manifest error = %v", err)
	}

	future := filepath.Join(dir, "future.jsonl")
	os.WriteFile(future, []byte(`{"kind":"manifest","manifest":{"v":99}}`+"\n"), 0o644)
	if _, err := Open(future); err == nil || !strings.Contains(err.Error(), "newer") {
		t.Fatalf("future-version error = %v", err)
	}

	if _, err := Open(filepath.Join(dir, "missing.jsonl")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestWelch(t *testing.T) {
	// Degenerate: fewer than two samples a side. Zero delta is still an
	// exact answer; nonzero is not estimable.
	if d, lo, hi, ok := welch([]float64{3}, []float64{3}); d != 0 || lo != 0 || hi != 0 || !ok {
		t.Fatalf("n=1 equal: %g [%g,%g] %v", d, lo, hi, ok)
	}
	if d, _, _, ok := welch([]float64{3}, []float64{5}); d != 2 || ok {
		t.Fatalf("n=1 unequal: %g ok=%v, want not-ok point delta", d, ok)
	}
	// Zero variance both sides: exact interval.
	if d, lo, hi, ok := welch([]float64{1, 1, 1}, []float64{4, 4, 4}); d != 3 || lo != 3 || hi != 3 || !ok {
		t.Fatalf("zero-variance: %g [%g,%g] %v", d, lo, hi, ok)
	}
	// A clear separation: CI excludes zero and contains the true delta.
	old := []float64{10, 11, 9, 10.5}
	new := []float64{20, 21, 19, 20.5}
	d, lo, hi, ok := welch(old, new)
	if !ok || math.Abs(d-10) > 1e-9 {
		t.Fatalf("separated: delta %g ok=%v", d, ok)
	}
	if lo <= 0 || lo > d || hi < d {
		t.Fatalf("separated CI [%g, %g] around %g", lo, hi, d)
	}
	// Heavy overlap: CI straddles zero.
	if _, lo, hi, ok := welch([]float64{1, 2, 3, 4}, []float64{2, 3, 1, 4.5}); !ok || lo > 0 || hi < 0 {
		t.Fatalf("overlap CI [%g, %g]", lo, hi)
	}
}

func TestTQuantile975(t *testing.T) {
	if got := tQuantile975(1); got != 12.706 {
		t.Fatalf("df=1: %g", got)
	}
	if got := tQuantile975(30); got != 2.042 {
		t.Fatalf("df=30: %g", got)
	}
	// Interpolated values sit between the bracketing table entries.
	if got := tQuantile975(4.5); got <= t975Table[4] || got >= t975Table[3] {
		t.Fatalf("df=4.5: %g not in (%g, %g)", got, t975Table[4], t975Table[3])
	}
	// Monotone decreasing toward the normal quantile.
	prev := math.Inf(1)
	for _, df := range []float64{1, 2, 5, 10, 30, 60, 120, 1e6} {
		got := tQuantile975(df)
		if got >= prev {
			t.Fatalf("tQuantile975 not decreasing at df=%g: %g >= %g", df, got, prev)
		}
		prev = got
	}
	if got := tQuantile975(1e9); math.Abs(got-1.959963984540054) > 1e-6 {
		t.Fatalf("df→∞: %g", got)
	}
}

// diffArchive builds an on-disk archive whose items carry fabricated
// report JSON, for direction/verdict tests.
func diffArchive(t *testing.T, dir, name string, reports map[string]string) *Archive {
	t.Helper()
	path := filepath.Join(dir, name)
	var items []ItemRecord
	for label, rep := range reports {
		items = append(items, ItemRecord{Key: name + "/" + label, Figure: "f", Label: label,
			Report: json.RawMessage(rep)})
	}
	writeArchive(t, path, Manifest{Tool: "test"}, items, nil)
	a, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func findMetric(t *testing.T, d *DiffReport, name string) MetricDelta {
	t.Helper()
	for _, fd := range d.Figures {
		for _, md := range fd.Metrics {
			if md.Metric == name {
				return md
			}
		}
	}
	t.Fatalf("metric %s not in diff", name)
	return MetricDelta{}
}

// TestDiffDirections: loss rates regress upward, nines regress downward,
// and non-duration obs histograms never produce a verdict.
func TestDiffDirections(t *testing.T) {
	dir := t.TempDir()
	mk := func(loss, nines float64, depth int) string {
		b, _ := json.Marshal(map[string]any{
			"faults":              4,
			"data_loss_per_fault": loss,
			"fleet_stats":         map[string]any{"availability_nines": nines, "durability_nines": nines},
			"obs": map[string]any{
				"histograms": []map[string]any{
					{"name": "blockdev.queue_depth", "count": 1, "p50": depth, "p99": depth},
					{"name": "blockdev.write_latency_ns", "count": 1, "p50": depth * 100, "p99": depth * 100},
				},
			},
		})
		return string(b)
	}
	old := diffArchive(t, dir, "old", map[string]string{
		"a": mk(1.0, 5.0, 10), "b": mk(1.2, 5.1, 11), "c": mk(0.9, 4.9, 9),
	})
	// Losses way up, nines way down, depths way up.
	new := diffArchive(t, dir, "new", map[string]string{
		"a": mk(9.0, 2.0, 100), "b": mk(9.2, 2.1, 110), "c": mk(8.9, 1.9, 90),
	})

	d, err := Diff(old, new)
	if err != nil {
		t.Fatal(err)
	}
	if md := findMetric(t, d, "loss/fault"); md.Verdict != Regressed || md.Delta <= 0 {
		t.Fatalf("loss/fault: %+v", md)
	}
	if md := findMetric(t, d, "availability-nines"); md.Verdict != Regressed || md.Delta >= 0 {
		t.Fatalf("availability-nines: %+v", md)
	}
	if md := findMetric(t, d, "obs:blockdev.queue_depth/p50"); md.Verdict != Indeterminate {
		t.Fatalf("informational histogram verdicted: %+v", md)
	}
	if md := findMetric(t, d, "obs:blockdev.write_latency_ns/p99"); md.Verdict != Regressed {
		t.Fatalf("latency histogram: %+v", md)
	}
	if d.Regressions == 0 || d.Improvements != 0 {
		t.Fatalf("totals: %+v", d)
	}

	// The reverse comparison improves instead.
	rev, err := Diff(new, old)
	if err != nil {
		t.Fatal(err)
	}
	if md := findMetric(t, rev, "loss/fault"); md.Verdict != Improved {
		t.Fatalf("reverse loss/fault: %+v", md)
	}
	if md := findMetric(t, rev, "availability-nines"); md.Verdict != Improved {
		t.Fatalf("reverse availability-nines: %+v", md)
	}
}

// TestDiffAlignment: unmatched labels and figures are counted, not
// compared; errored items are excluded entirely.
func TestDiffAlignment(t *testing.T) {
	dir := t.TempDir()
	old := diffArchive(t, dir, "old", map[string]string{
		"a": `{"faults":1,"data_loss_per_fault":1}`,
		"b": `{"faults":1,"data_loss_per_fault":2}`,
	})
	path := filepath.Join(dir, "new")
	writeArchive(t, path, Manifest{Tool: "test"}, []ItemRecord{
		{Key: "n/a", Figure: "f", Label: "a", Report: json.RawMessage(`{"faults":1,"data_loss_per_fault":1}`)},
		{Key: "n/c", Figure: "f", Label: "c", Report: json.RawMessage(`{"faults":1,"data_loss_per_fault":3}`)},
		{Key: "n/err", Figure: "f", Label: "err", Error: "boom"},
		{Key: "n/g", Figure: "g", Label: "a", Report: json.RawMessage(`{"faults":1,"data_loss_per_fault":1}`)},
	}, nil)
	new, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}

	d, err := Diff(old, new)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Figures) != 2 {
		t.Fatalf("figures: %+v", d.Figures)
	}
	f := d.Figures[0]
	if f.Figure != "f" || f.Aligned != 1 || f.OldOnly != 1 || f.NewOnly != 1 {
		t.Fatalf("figure f alignment: %+v", f)
	}
	g := d.Figures[1]
	if g.Figure != "g" || g.Aligned != 0 || g.NewOnly != 1 || len(g.Metrics) != 0 {
		t.Fatalf("new-only figure: %+v", g)
	}
}
