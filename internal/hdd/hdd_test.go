package hdd

import (
	"testing"

	"powerfail/internal/addr"
	"powerfail/internal/blockdev"
	"powerfail/internal/content"
	"powerfail/internal/power"
	"powerfail/internal/sim"
)

type rig struct {
	k    *sim.Kernel
	psu  *power.PSU
	disk *Disk
}

func newRig(t *testing.T, prof Profile) *rig {
	t.Helper()
	k := sim.New()
	psu, err := power.New(k, power.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(k, sim.NewRNG(3), prof, psu)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{k: k, psu: psu, disk: d}
}

func (r *rig) write(t *testing.T, lpn addr.LPN, data content.Data) error {
	t.Helper()
	var out error
	done := false
	r.disk.Submit(blockdev.OpWrite, lpn, data.Pages(), data, func(err error, _ content.Data) {
		out = err
		done = true
	})
	r.k.RunWhile(func() bool { return !done })
	return out
}

func (r *rig) read(t *testing.T, lpn addr.LPN, pages int) (content.Data, error) {
	t.Helper()
	var out content.Data
	var rerr error
	done := false
	r.disk.Submit(blockdev.OpRead, lpn, pages, content.Data{}, func(err error, d content.Data) {
		out, rerr = d, err
		done = true
	})
	r.k.RunWhile(func() bool { return !done })
	return out, rerr
}

func TestRoundTrip(t *testing.T) {
	r := newRig(t, DefaultProfile())
	payload := content.Random(sim.NewRNG(1), 32)
	if err := r.write(t, 100, payload); err != nil {
		t.Fatal(err)
	}
	got, err := r.read(t, 100, 32)
	if err != nil || !got.Equal(payload) {
		t.Fatal("round trip failed")
	}
}

func TestMechanicalLatency(t *testing.T) {
	r := newRig(t, DefaultProfile())
	start := r.k.Now()
	r.write(t, 0, content.Random(sim.NewRNG(2), 1))
	elapsed := r.k.Now().Sub(start)
	// Seek (8 ms) + half-rotation (~4.2 ms at 7200 RPM) at minimum.
	if elapsed < 12*sim.Millisecond {
		t.Fatalf("write finished in %s; no mechanical latency", elapsed)
	}
}

// TestWriteThroughSurvivesPowerLoss: an acknowledged write on a
// write-through HDD is durable — the property that distinguishes it from
// the SSDs in this repository.
func TestWriteThroughSurvivesPowerLoss(t *testing.T) {
	r := newRig(t, DefaultProfile())
	payload := content.Random(sim.NewRNG(5), 16)
	if err := r.write(t, 50, payload); err != nil {
		t.Fatal(err)
	}
	r.psu.PowerOff()
	r.k.RunFor(2 * sim.Second)
	r.psu.PowerOn()
	r.k.RunFor(3 * sim.Second) // spin-up
	if !r.disk.Available() {
		t.Fatal("disk never recovered")
	}
	got, err := r.read(t, 50, 16)
	if err != nil || !got.Equal(payload) {
		t.Fatal("acknowledged write-through data lost")
	}
}

// TestTornSectorOnCut: cutting power mid-write tears exactly the sector
// under the head; the ACK never arrives.
func TestTornSectorOnCut(t *testing.T) {
	r := newRig(t, DefaultProfile())
	// 8 MB of media time (~53 ms) so the write straddles the ~41 ms
	// discharge between the cut command and the brownout.
	const pages = 2048
	payload := content.Random(sim.NewRNG(6), pages)
	acked := false
	r.disk.Submit(blockdev.OpWrite, 0, pages, payload, func(err error, _ content.Data) {
		acked = err == nil
	})
	r.k.RunFor(5 * sim.Millisecond)
	r.psu.PowerOff()
	r.k.RunFor(2 * sim.Second)
	if acked {
		t.Fatal("interrupted write was acknowledged")
	}
	if r.disk.Stats().TornSectors != 1 {
		t.Fatalf("torn sectors = %d, want 1", r.disk.Stats().TornSectors)
	}
	r.psu.PowerOn()
	r.k.RunFor(3 * sim.Second)
	got, err := r.read(t, 0, pages)
	if err != nil {
		t.Fatal(err)
	}
	matches, torn := 0, 0
	for i := 0; i < pages; i++ {
		switch got.Page(i) {
		case payload.Page(i):
			matches++
		case content.Zero:
			// never reached
		default:
			torn++
		}
	}
	if torn != 1 {
		t.Fatalf("torn pages = %d, want exactly 1", torn)
	}
	if matches == 0 {
		t.Fatal("no pages committed before the cut")
	}
}

// TestWriteCacheLosesDataLikeSSDs: enabling the HDD's volatile write
// buffer reintroduces the SSD-style FWA failure mode.
func TestWriteCacheLosesDataLikeSSDs(t *testing.T) {
	prof := DefaultProfile()
	prof.WriteCache = true
	r := newRig(t, prof)
	payload := content.Random(sim.NewRNG(7), 8)
	if err := r.write(t, 10, payload); err != nil {
		t.Fatal(err)
	}
	// ACK arrived (cache); cut before the platter catches up.
	r.psu.PowerOff()
	r.k.RunFor(2 * sim.Second)
	r.psu.PowerOn()
	r.k.RunFor(3 * sim.Second)
	got, err := r.read(t, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got.Equal(payload) {
		t.Skip("platter caught up before the cut on this timing")
	}
	if r.disk.Stats().CacheLost == 0 {
		t.Fatal("no cache loss recorded")
	}
}

func TestUnavailableFailsFast(t *testing.T) {
	r := newRig(t, DefaultProfile())
	r.psu.PowerOff()
	r.k.RunFor(60 * sim.Millisecond)
	_, err := r.read(t, 0, 1)
	if err != ErrUnavailable {
		t.Fatalf("err = %v", err)
	}
}

func TestOutOfRange(t *testing.T) {
	r := newRig(t, DefaultProfile())
	if err := r.write(t, addr.LPN(r.disk.Profile().UserPages()), content.Random(sim.NewRNG(8), 1)); err == nil {
		t.Fatal("out-of-range write accepted")
	}
}

func TestValidation(t *testing.T) {
	bad := Profile{}
	if bad.Validate() == nil {
		t.Fatal("zero profile accepted")
	}
	if DefaultProfile().Validate() != nil {
		t.Fatal("default profile invalid")
	}
}

// TestCutDuringSpinUpAbortsRecovery: a second power loss inside the
// spin-up window must cancel the pending recovery — the drive may not
// come back on the bus while the rail is down, and the next power-good
// must start a fresh spin-up.
func TestCutDuringSpinUpAbortsRecovery(t *testing.T) {
	r := newRig(t, DefaultProfile())
	r.psu.PowerOff()
	r.k.RunFor(2 * sim.Second)
	r.psu.PowerOn()
	r.k.RunFor(500 * sim.Millisecond) // mid spin-up (RecoveryTime is 2 s)
	r.psu.PowerOff()
	r.k.RunFor(5 * sim.Second)
	if r.disk.Available() {
		t.Fatal("drive became available with the rail down")
	}
	ready := false
	r.disk.NotifyReady(func() { ready = true })
	r.psu.PowerOn()
	r.k.RunFor(3 * sim.Second)
	if !r.disk.Available() || !ready {
		t.Fatalf("drive never recovered after the real power-good (available=%v ready=%v)",
			r.disk.Available(), ready)
	}
}
