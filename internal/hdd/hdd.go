// Package hdd models a conventional hard disk drive as a comparator for
// the SSDs under test. The paper's platform drives "the under test SSDs
// (or HDDs)" from the same PSU; an HDD makes a useful baseline because its
// write path is mechanical and write-through (no multi-millisecond ISPP,
// no volatile mapping table), so power faults produce a very different
// failure profile: at most the sector being written at the instant of the
// cut is torn, and nothing previously acknowledged is disturbed.
//
// The model implements blockdev.Device, so the whole platform — block
// layer, tracer, analyzer — runs unchanged against it.
package hdd

import (
	"errors"
	"fmt"

	"powerfail/internal/addr"
	"powerfail/internal/blockdev"
	"powerfail/internal/content"
	"powerfail/internal/power"
	"powerfail/internal/sim"
)

// Profile describes the drive's mechanics.
type Profile struct {
	Name       string
	CapacityGB int
	// RPM sets the rotational latency (half a revolution on average).
	RPM int
	// AvgSeek is the average seek time.
	AvgSeek sim.Duration
	// MediaBytesPerSec is the sustained transfer rate at the platter.
	MediaBytesPerSec float64
	// WriteCache enables the small volatile write buffer most desktop
	// drives ship with (the paper-relevant risk knob).
	WriteCache      bool
	WriteCachePages int
	// BrownoutVolts drops the host link, as for the SSDs.
	BrownoutVolts float64
	LoadOhms      float64
	FailFast      sim.Duration
	RecoveryTime  sim.Duration
}

// DefaultProfile is a 7200 RPM desktop drive with its write cache off
// (write-through), the configuration that makes HDDs power-fault tolerant.
func DefaultProfile() Profile {
	return Profile{
		Name:             "HDD",
		CapacityGB:       500,
		RPM:              7200,
		AvgSeek:          8 * sim.Millisecond,
		MediaBytesPerSec: 150e6,
		WriteCache:       false,
		WriteCachePages:  2048,
		BrownoutVolts:    4.5,
		LoadOhms:         30,
		FailFast:         500 * sim.Microsecond,
		RecoveryTime:     2 * sim.Second, // spin-up
	}
}

// Validate checks the profile.
func (p Profile) Validate() error {
	if p.CapacityGB <= 0 || p.RPM <= 0 || p.MediaBytesPerSec <= 0 {
		return fmt.Errorf("hdd: bad profile %+v", p)
	}
	return nil
}

// UserPages returns the exported capacity in 4 KiB pages.
func (p Profile) UserPages() int64 { return int64(p.CapacityGB) << 30 >> addr.PageShift }

func (p Profile) rotHalf() sim.Duration {
	return sim.Duration(30.0 / float64(p.RPM) * 1e9) // half a revolution
}

// ErrUnavailable mirrors the SSD error for a drive below brownout.
var ErrUnavailable = errors.New("hdd: device unavailable")

// Stats counts drive activity.
type Stats struct {
	Reads       int64
	Writes      int64
	Errors      int64
	TornSectors int64
	CacheLost   int64
	Deaths      int64
	Recoveries  int64
}

// Disk is the drive. Sector contents are fingerprints, like the SSD model.
type Disk struct {
	k    *sim.Kernel
	r    *sim.RNG
	prof Profile

	media map[addr.LPN]content.Fingerprint
	// cacheQ holds volatile write-cache entries awaiting the platter.
	cacheQ []cacheEnt

	available bool
	busyUntil sim.Time
	spinup    sim.Timer // pending recovery; cancelled by a new power loss
	// inFlightWrite tracks the page being written at any instant so a cut
	// can tear exactly that sector.
	cur   *writeJob
	stats Stats

	readyListeners []func()
	downListeners  []func()
}

type cacheEnt struct {
	lpn addr.LPN
	fp  content.Fingerprint
}

type writeJob struct {
	lpn     addr.LPN
	pages   int
	data    content.Data
	startAt sim.Time
	perPage sim.Duration
	done    func(error, content.Data)
	timer   sim.Timer
}

// New attaches a disk to the PSU rail.
func New(k *sim.Kernel, r *sim.RNG, prof Profile, psu *power.PSU) (*Disk, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	d := &Disk{
		k:         k,
		r:         r,
		prof:      prof,
		media:     make(map[addr.LPN]content.Fingerprint),
		available: true,
	}
	if psu != nil {
		psu.Connect("hdd-"+prof.Name, prof.LoadOhms)
		psu.NotifyBelow(prof.BrownoutVolts, d.onPowerLoss)
		psu.NotifyAbove(prof.BrownoutVolts+0.25, d.onPowerGood)
	}
	return d, nil
}

// Profile returns the drive profile.
func (d *Disk) Profile() Profile { return d.prof }

// Name implements blockdev.Drive.
func (d *Disk) Name() string { return d.prof.Name }

// UserPages implements blockdev.Drive.
func (d *Disk) UserPages() int64 { return d.prof.UserPages() }

// Stats returns the counters.
func (d *Disk) Stats() Stats { return d.stats }

// Available reports whether the drive answers the host.
func (d *Disk) Available() bool { return d.available }

// Ready implements blockdev.Drive.
func (d *Disk) Ready() bool { return d.available }

// NotifyReady registers fn to run every time the drive finishes spin-up
// after a power loss.
func (d *Disk) NotifyReady(fn func()) { d.readyListeners = append(d.readyListeners, fn) }

// NotifyDown registers fn to run every time the drive drops off the bus.
func (d *Disk) NotifyDown(fn func()) { d.downListeners = append(d.downListeners, fn) }

func (d *Disk) serviceStart() sim.Time {
	now := d.k.Now()
	if d.busyUntil > now {
		return d.busyUntil
	}
	return now
}

// Submit implements blockdev.Device.
func (d *Disk) Submit(op blockdev.Op, lpn addr.LPN, pages int, data content.Data, done func(err error, result content.Data)) {
	if !d.available {
		d.stats.Errors++
		d.k.After(d.prof.FailFast, func() { done(ErrUnavailable, content.Data{}) })
		return
	}
	if lpn < 0 || int64(lpn)+int64(pages) > d.prof.UserPages() {
		d.stats.Errors++
		d.k.After(d.prof.FailFast, func() { done(errors.New("hdd: out of range"), content.Data{}) })
		return
	}
	mech := d.prof.AvgSeek + d.prof.rotHalf()
	xfer := sim.Duration(float64(pages*addr.PageBytes) / d.prof.MediaBytesPerSec * 1e9)
	start := d.serviceStart().Add(mech)
	switch op {
	case blockdev.OpRead:
		d.busyUntil = start.Add(xfer)
		d.k.At(d.busyUntil, func() {
			if !d.available {
				done(ErrUnavailable, content.Data{})
				return
			}
			d.stats.Reads++
			done(nil, content.Gather(pages, func(i int) content.Fingerprint {
				return d.readPage(lpn + addr.LPN(i))
			}))
		})
	case blockdev.OpWrite:
		if d.prof.WriteCache && len(d.cacheQ)+pages <= d.prof.WriteCachePages {
			// Volatile buffer: instant ACK, platter catches up lazily.
			for i := 0; i < pages; i++ {
				d.cacheQ = append(d.cacheQ, cacheEnt{lpn + addr.LPN(i), data.Page(i)})
			}
			d.busyUntil = start.Add(xfer)
			d.k.At(d.busyUntil, func() { d.drainCache(pages) })
			d.k.After(100*sim.Microsecond, func() { done(nil, content.Data{}) })
			d.stats.Writes++
			return
		}
		// Write-through: the head commits sector by sector; completion
		// and ACK coincide.
		job := &writeJob{
			lpn: lpn, pages: pages, data: data,
			startAt: start,
			perPage: xfer / sim.Duration(pages),
			done:    done,
		}
		d.busyUntil = start.Add(xfer)
		d.cur = job
		job.timer = d.k.At(d.busyUntil, func() {
			d.cur = nil
			for i := 0; i < pages; i++ {
				d.media[lpn+addr.LPN(i)] = data.Page(i)
			}
			d.stats.Writes++
			done(nil, content.Data{})
		})
	default: // flush
		d.k.After(d.prof.FailFast, func() {
			d.cacheQ = d.flushAll()
			done(nil, content.Data{})
		})
	}
}

func (d *Disk) readPage(lpn addr.LPN) content.Fingerprint {
	// The volatile buffer is readable while powered.
	for i := len(d.cacheQ) - 1; i >= 0; i-- {
		if d.cacheQ[i].lpn == lpn {
			return d.cacheQ[i].fp
		}
	}
	return d.media[lpn]
}

func (d *Disk) drainCache(n int) {
	for i := 0; i < n && len(d.cacheQ) > 0; i++ {
		e := d.cacheQ[0]
		d.cacheQ = d.cacheQ[1:]
		d.media[e.lpn] = e.fp
	}
}

func (d *Disk) flushAll() []cacheEnt {
	for _, e := range d.cacheQ {
		d.media[e.lpn] = e.fp
	}
	return nil
}

// onPowerLoss models the cut: the sector under the head right now is
// torn; any volatile write-cache content is gone; the drive drops off the
// bus until power and spin-up return.
func (d *Disk) onPowerLoss() {
	// A cut during spin-up aborts the recovery; the drive stays off the
	// bus until the next power-good restarts it.
	if d.spinup.Pending() {
		d.spinup.Stop()
		d.spinup = sim.Timer{}
	}
	if !d.available {
		return
	}
	d.available = false
	d.stats.Deaths++
	for _, fn := range d.downListeners {
		fn()
	}
	if job := d.cur; job != nil {
		job.timer.Stop()
		elapsed := d.k.Now().Sub(job.startAt)
		if elapsed > 0 && job.perPage > 0 {
			done := int(elapsed / job.perPage)
			for i := 0; i < done && i < job.pages; i++ {
				d.media[job.lpn+addr.LPN(i)] = job.data.Page(i)
			}
			if done < job.pages {
				// The sector under the head is torn: unreadable garbage.
				d.media[job.lpn+addr.LPN(done)] = content.Mix(job.data.Page(done), d.r.Uint64())
				d.stats.TornSectors++
			}
		}
		// The host never hears the ACK; its block layer errors/times out.
		d.cur = nil
	}
	d.stats.CacheLost += int64(len(d.cacheQ))
	d.cacheQ = nil
	d.busyUntil = 0
}

func (d *Disk) onPowerGood() {
	if d.available || d.spinup.Pending() {
		return
	}
	d.spinup = d.k.After(d.prof.RecoveryTime, func() {
		d.spinup = sim.Timer{}
		d.available = true
		d.stats.Recoveries++
		for _, fn := range d.readyListeners {
			fn()
		}
	})
}
