package powerfail_test

import (
	"context"
	"strings"
	"testing"

	"powerfail"
)

// runFleetFigure executes the fleet catalog at a small scale and fails on
// any item error.
func runFleetFigure(t *testing.T, parallelism int) *powerfail.CampaignResult {
	t.Helper()
	items := smallItems(t, "fleet", 0.02)
	out, err := powerfail.NewCampaign(items,
		powerfail.WithParallelism(parallelism),
	).Run(context.Background())
	if err != nil {
		t.Fatalf("parallelism %d: %v", parallelism, err)
	}
	if out.Completed != len(items) {
		t.Fatalf("completed %d, want %d", out.Completed, len(items))
	}
	return out
}

// TestFleetCampaignParallelDeterminism: the satellite acceptance
// criterion — the "fleet" figure produces byte-identical reports at
// parallelism 1 and 8. Every fleet simulation owns its kernel and forks
// its RNG from the item seed, so worker scheduling can never leak into
// an availability or durability verdict.
func TestFleetCampaignParallelDeterminism(t *testing.T) {
	seq := runFleetFigure(t, 1)
	par := runFleetFigure(t, 8)
	seqEnc, parEnc := encodeReports(t, seq), encodeReports(t, par)
	for i := range seqEnc {
		if seqEnc[i] != parEnc[i] {
			t.Fatalf("fleet item %d (%s) diverged between parallelism 1 and 8:\n%s\n%s",
				i, seq.Results[i].Item.Label, seqEnc[i], parEnc[i])
		}
		if seq.Results[i].Report.Fleet == nil {
			t.Fatalf("fleet item %d (%s): report carries no fleet stats",
				i, seq.Results[i].Item.Label)
		}
	}
}

// TestFleetFigureCoverage: every advertised point of the fleet figure ran
// with cuts landing at the level its label names, and the spare-equipped
// PSU points moved real rebuild traffic through the block layer.
func TestFleetFigureCoverage(t *testing.T) {
	out := runFleetFigure(t, 4)
	domsSeen := map[string]bool{}
	levelsSeen := map[string]bool{}
	for _, res := range out.Results {
		parts := strings.Split(res.Item.Label, "/")
		if len(parts) != 3 {
			t.Fatalf("label shape changed: %q", res.Item.Label)
		}
		domsSeen[parts[0]] = true
		levelsSeen[parts[2]] = true

		s := res.Report.Fleet
		if s.Cuts == 0 {
			t.Errorf("%s: no cuts fired", res.Item.Label)
		}
		if got := s.CutsByLevel[parts[2]]; got != s.Cuts {
			t.Errorf("%s: %d/%d cuts landed at level %s", res.Item.Label, got, s.Cuts, parts[2])
		}
		if res.Report.Source != "fleet" {
			t.Errorf("%s: source = %q", res.Item.Label, res.Report.Source)
		}
		if parts[1] == "s4" && parts[2] == "psu" {
			if s.SpareTakes == 0 {
				t.Errorf("%s: spares never took over", res.Item.Label)
			}
			if s.RebuildReadBytes == 0 || s.RebuildWriteBytes == 0 {
				t.Errorf("%s: no rebuild traffic (r=%d w=%d)",
					res.Item.Label, s.RebuildReadBytes, s.RebuildWriteBytes)
			}
		}
	}
	for _, want := range []string{"deep", "flat"} {
		if !domsSeen[want] {
			t.Errorf("figure covers no %q domain points", want)
		}
	}
	for _, want := range []string{"psu", "rack", "room"} {
		if !levelsSeen[want] {
			t.Errorf("figure covers no %q cut-level points", want)
		}
	}
}

// TestFleetNinesOrderingSameSeed: the tentpole acceptance criterion at
// the public API — on one seed, availability nines strictly decrease as
// random cuts climb the tree from PSU to rack to room, because the blast
// radius grows from one bay per group to whole racks to the whole room.
func TestFleetNinesOrderingSameSeed(t *testing.T) {
	nines := make([]float64, 0, 3)
	for _, level := range []powerfail.FleetLevel{powerfail.FleetPSU, powerfail.FleetRack, powerfail.FleetRoom} {
		cfg := powerfail.DefaultFleetConfig()
		cfg.Arrays = 4
		cfg.Spares = 4
		cfg.Member.Pages = 1024
		cfg.Rebuild.Delay = powerfail.Second
		cfg.Faults.Level = level
		cfg.Faults.Count = 3
		cfg.Faults.Outage = 3 * powerfail.Second
		cfg.Duration = 20 * powerfail.Second
		rep, err := powerfail.Run(powerfail.Options{Seed: 9, Fleet: &cfg},
			powerfail.Experiment{Name: "nines-" + level.String()})
		if err != nil {
			t.Fatal(err)
		}
		nines = append(nines, rep.Fleet.AvailabilityNines)
	}
	if !(nines[0] > nines[1] && nines[1] > nines[2]) {
		t.Fatalf("availability nines not strictly decreasing psu→rack→room: %v", nines)
	}
}
