package powerfail_test

import (
	"testing"

	"powerfail"
	"powerfail/internal/sim"
)

func TestPublicAPIRun(t *testing.T) {
	prof := powerfail.ProfileA()
	prof.CapacityGB = 8
	w := powerfail.DefaultWorkload()
	w.WSSBytes = 1 << 30 // must fit the shrunken test drive
	rep, err := powerfail.Run(
		powerfail.Options{Seed: 5, Profile: prof},
		powerfail.Experiment{
			Name:             "api",
			Workload:         w,
			Faults:           5,
			RequestsPerFault: 10,
		})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults != 5 || rep.Requests == 0 {
		t.Fatalf("report: %+v", rep)
	}
}

func TestProfiles(t *testing.T) {
	if len(powerfail.Profiles()) != 3 {
		t.Fatal("expected the three Table I drives")
	}
	if powerfail.ProfileB().Cell != powerfail.TLC {
		t.Fatal("SSD B should be TLC")
	}
	if _, ok := powerfail.ProfileByName("C"); !ok {
		t.Fatal("ProfileByName failed")
	}
}

// catalogFigures is every figure id ItemsFor accepts besides "all".
var catalogFigures = []string{
	"tablei", "window", "fig5", "fig6", "seqrand", "fig7", "fig8", "fig9",
	"ablation", "array", "erasure", "cache", "txn", "txn-streams", "trace",
	"fleet",
}

func TestCatalogCoverage(t *testing.T) {
	total := 0
	for _, fig := range catalogFigures {
		items, err := powerfail.ItemsFor(fig, 0.01)
		if err != nil {
			t.Fatalf("%s: %v", fig, err)
		}
		if len(items) == 0 {
			t.Fatalf("%s: empty series", fig)
		}
		for _, it := range items {
			if it.Opts.Fleet != nil {
				// Fleet items carry no workload or fault-cycle spec; the
				// whole experiment lives in the fleet configuration.
				if err := it.Opts.Fleet.WithDefaults().Validate(); err != nil {
					t.Fatalf("%s/%s: %v", fig, it.Label, err)
				}
			} else if it.Opts.App.Enabled() {
				// Application-layer items carry no workload; the spec is
				// validated by NewRunner against the app configuration.
				if it.Spec.Faults <= 0 || it.Spec.RequestsPerFault <= 0 {
					t.Fatalf("%s/%s: bad fault cycle config", fig, it.Label)
				}
			} else if err := it.Spec.Validate(); err != nil {
				t.Fatalf("%s/%s: %v", fig, it.Label, err)
			}
			if it.Figure != fig {
				t.Fatalf("%s/%s: figure tag %q", fig, it.Label, it.Figure)
			}
		}
		total += len(items)
	}
	all, err := powerfail.ItemsFor("all", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != total {
		t.Fatalf("all = %d items, sum of figures = %d", len(all), total)
	}
	if _, err := powerfail.ItemsFor("nope", 1); err == nil {
		t.Fatal("unknown figure accepted")
	}
	if _, err := powerfail.ItemsFor("", 1); err == nil {
		t.Fatal("empty figure id accepted")
	}
}

// TestCatalogSeedsDeterministic: two ItemsFor calls produce the same item
// seeds — in particular for the new composite-topology figures, whose
// platforms are built from several forked RNG streams.
func TestCatalogSeedsDeterministic(t *testing.T) {
	for _, fig := range []string{"array", "cache"} {
		a, err := powerfail.ItemsFor(fig, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		b, err := powerfail.ItemsFor(fig, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: item count diverged", fig)
		}
		seen := map[uint64]string{}
		for i := range a {
			if a[i].Opts.Seed == 0 {
				t.Fatalf("%s/%s: zero seed", fig, a[i].Label)
			}
			if a[i].Opts.Seed != b[i].Opts.Seed || a[i].Label != b[i].Label {
				t.Fatalf("%s item %d not deterministic: %+v vs %+v", fig, i, a[i], b[i])
			}
			if prev, dup := seen[a[i].Opts.Seed]; dup {
				t.Fatalf("%s: %s and %s share seed %d", fig, prev, a[i].Label, a[i].Opts.Seed)
			}
			seen[a[i].Opts.Seed] = a[i].Label
		}
		if a[0].Opts.Topology.Kind != powerfail.TopoArray {
			t.Fatalf("%s items do not use the array topology", fig)
		}
	}
}

// TestArrayFigureRuns: the array catalog runs end to end through the
// public API with per-member attribution in every report.
func TestArrayFigureRuns(t *testing.T) {
	items, err := powerfail.ItemsFor("array", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	res := powerfail.RunCatalog(items[:2], nil) // raid0x2 and raid0x4
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Item.Label, r.Err)
		}
		if r.Report.ArrayStats == nil || len(r.Report.Members) == 0 {
			t.Fatalf("%s: no member attribution in report", r.Item.Label)
		}
		if r.Report.Cuts == 0 || r.Report.Restores == 0 {
			t.Fatalf("%s: cut/restore counts missing: %d/%d",
				r.Item.Label, r.Report.Cuts, r.Report.Restores)
		}
	}
}

func TestDischargeCurve(t *testing.T) {
	curve, brownout := powerfail.DischargeCurve(true, 10*sim.Millisecond, sim.Second)
	if len(curve) == 0 {
		t.Fatal("empty curve")
	}
	if curve[0].V != 5.0 {
		t.Fatalf("V(0) = %g", curve[0].V)
	}
	ms := brownout.Millis()
	if ms < 30 || ms > 50 {
		t.Fatalf("brownout at %.0f ms, want ~40", ms)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].V > curve[i-1].V {
			t.Fatal("discharge curve not monotonic")
		}
	}
	unloaded, _ := powerfail.DischargeCurve(false, 10*sim.Millisecond, sim.Second)
	if unloaded[len(unloaded)-1].V <= curve[len(curve)-1].V {
		t.Fatal("unloaded rail should sit higher than loaded at equal times")
	}
}

func TestRunCatalogSmall(t *testing.T) {
	items, err := powerfail.ItemsFor("seqrand", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	results := powerfail.RunCatalog(items, func(powerfail.CatalogResult) { calls++ })
	if len(results) != len(items) || calls != len(items) {
		t.Fatalf("results=%d calls=%d items=%d", len(results), calls, len(items))
	}
	for _, res := range results {
		if res.Err != nil {
			t.Fatalf("%s: %v", res.Item.Label, res.Err)
		}
		if res.Report.Faults == 0 {
			t.Fatalf("%s: no faults ran", res.Item.Label)
		}
	}
}
