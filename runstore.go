package powerfail

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"runtime"
	"runtime/debug"

	"powerfail/internal/runstore"
)

// Run-archive types, re-exported so campaign journaling (WithJournal,
// WithResume) and the powerstat comparison surface on the public API.
type (
	// RunManifest is a run archive's header: what produced it and the
	// identity of every item it set out to run.
	RunManifest = runstore.Manifest
	// RunArchive is a loaded run archive (see OpenRunArchive).
	RunArchive = runstore.Archive
	// RunDiff is the differential report between two run archives.
	RunDiff = runstore.DiffReport
)

// NewRunManifest builds a manifest header for WithJournal: tool name,
// figure id and scale, plus the Go version and VCS revision of the
// running binary (best effort). The campaign fills the item list.
func NewRunManifest(tool, figure string, scale float64) RunManifest {
	m := RunManifest{Tool: tool, Figure: figure, Scale: scale, GoVersion: runtime.Version()}
	if bi, ok := debug.ReadBuildInfo(); ok {
		m.Version = bi.Main.Version
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				m.VCSRevision = s.Value
			case "vcs.time":
				m.VCSTime = s.Value
			}
		}
	}
	return m
}

// OpenRunArchive loads the run archive at path (for WithResume or
// DiffRunArchives). Archives interrupted mid-run load fine: they simply
// have no final record.
func OpenRunArchive(path string) (*RunArchive, error) { return runstore.Open(path) }

// MergeRunArchives combines the item records of several run archives —
// typically the N archives of an N-way sharded sweep — into one
// in-memory archive for WithResume. Across archives, later records for
// the same item key shadow earlier ones; archives disagreeing on figure
// or scale are refused. A campaign over the full item list resumed from
// the merge emits output byte-identical to an unsharded run (items
// missing from every shard simply run locally).
func MergeRunArchives(archives ...*RunArchive) (*RunArchive, error) {
	return runstore.Merge(archives...)
}

// DiffRunArchives compares two run archives benchstat-style: items are
// aligned by (figure, label), per-figure metrics get Welch 95% intervals
// and a regressed/improved/unchanged verdict. cmd/powerstat prints the
// result.
func DiffRunArchives(old, new *RunArchive) (*RunDiff, error) { return runstore.Diff(old, new) }

// ItemKey returns a catalog item's spec identity: a content hash over its
// figure, label, x value, options and experiment spec (seed included).
// Campaign resume reuses a journaled report only when this key matches,
// so any change to what an item would run — seed, knobs, spec — makes it
// re-run rather than resume.
func ItemKey(it CatalogItem) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%g\x00", it.Figure, it.Label, it.X)
	enc := json.NewEncoder(h)
	// Encode errors (unmarshalable options cannot occur for plain-data
	// specs) would at worst widen the key to figure/label identity, which
	// only means such an item re-runs instead of resuming.
	_ = enc.Encode(it.Opts)
	_ = enc.Encode(it.Spec)
	return hex.EncodeToString(h.Sum(nil)[:16])
}
