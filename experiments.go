package powerfail

import (
	"context"
	"embed"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"powerfail/internal/array"
	"powerfail/internal/core"
	"powerfail/internal/fleet"
	"powerfail/internal/hdd"
	"powerfail/internal/power"
	"powerfail/internal/sim"
	"powerfail/internal/ssd"
	"powerfail/internal/trace"
	"powerfail/internal/txn"
	"powerfail/internal/workload"
)

// CatalogItem is one runnable point of a paper experiment: the platform
// options, the experiment spec, and the x-axis value it contributes to its
// figure.
type CatalogItem struct {
	// Figure identifies the paper artifact ("fig5", "fig7", "window", ...).
	Figure string
	// Label names the point ("read%=20", "size=64KB").
	Label string
	// X is the figure's x-axis value for this point.
	X    float64
	Opts Options
	Spec Experiment
}

// CatalogResult pairs an item with its report.
type CatalogResult struct {
	Item   CatalogItem
	Report *Report
	Err    error
	// Wall is the real elapsed time the item's experiment took. It is
	// process telemetry only — excluded from the JSON encoding so campaign
	// outputs stay deterministic across machines.
	Wall time.Duration
	// Reused reports that the result was loaded from a resume archive
	// (WithResume) instead of executed.
	Reused bool
	// raw holds the report's original JSON when the result came from a
	// resume archive; MarshalJSON re-emits it verbatim so a resumed
	// campaign's output is byte-identical to an uninterrupted run.
	raw json.RawMessage
}

// RunCatalog executes items sequentially, invoking progress (if non-nil)
// after each. It is a compatibility wrapper over NewCampaign; new code
// should build a Campaign directly for parallelism and cancellation.
func RunCatalog(items []CatalogItem, progress func(CatalogResult)) []CatalogResult {
	out, _ := NewCampaign(items, WithProgress(progress)).Run(context.Background())
	return out.Results
}

func scaled(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 5 {
		v = 5
	}
	return v
}

func baseOpts(seed uint64) Options {
	return Options{Seed: seed, Profile: ssd.ProfileA()}
}

func baseWrites(wssGB int) Workload {
	return Workload{
		Name:     "rand-write-4k-1m",
		WSSBytes: int64(wssGB) << 30,
		MinSize:  4 << 10,
		MaxSize:  1 << 20,
		ReadPct:  0,
		Pattern:  workload.Random,
	}
}

// Fig5Items reproduces Fig. 5: impact of request type. Read percentage
// sweeps {0,20,50,80,100} over random 4K-1M requests; >=300 faults per
// point at scale 1.
func Fig5Items(scale float64) []CatalogItem {
	var items []CatalogItem
	for i, readPct := range []int{0, 20, 50, 80, 100} {
		w := baseWrites(16)
		w.Name = fmt.Sprintf("read%d", readPct)
		w.ReadPct = readPct
		items = append(items, CatalogItem{
			Figure: "fig5",
			Label:  fmt.Sprintf("read%%=%d", readPct),
			X:      float64(readPct),
			Opts:   baseOpts(500 + uint64(i)),
			Spec: Experiment{
				Name:             "fig5-" + w.Name,
				Workload:         w,
				Faults:           scaled(300, scale),
				RequestsPerFault: 16,
			},
		})
	}
	return items
}

// Fig6Items reproduces Fig. 6: impact of working set size, WSS from 1 GB
// to 90 GB; >=200 faults per point at scale 1.
func Fig6Items(scale float64) []CatalogItem {
	var items []CatalogItem
	for i, wss := range []int{1, 10, 20, 30, 40, 50, 60, 70, 80, 90} {
		w := baseWrites(wss)
		w.Name = fmt.Sprintf("wss%dg", wss)
		items = append(items, CatalogItem{
			Figure: "fig6",
			Label:  fmt.Sprintf("wss=%dGB", wss),
			X:      float64(wss),
			Opts:   baseOpts(600 + uint64(i)),
			Spec: Experiment{
				Name:             "fig6-" + w.Name,
				Workload:         w,
				Faults:           scaled(200, scale),
				RequestsPerFault: 8,
			},
		})
	}
	return items
}

// SeqRandItems reproduces Section IV-D: fully random versus fully
// sequential writes over a 64 GB working set.
func SeqRandItems(scale float64) []CatalogItem {
	var items []CatalogItem
	for i, pat := range []workload.Pattern{workload.Random, workload.Sequential} {
		w := baseWrites(64)
		w.Pattern = pat
		w.Name = pat.String()
		items = append(items, CatalogItem{
			Figure: "seqrand",
			Label:  pat.String(),
			X:      float64(i),
			Opts:   baseOpts(700 + uint64(i)),
			Spec: Experiment{
				Name:             "ivd-" + w.Name,
				Workload:         w,
				Faults:           scaled(300, scale),
				RequestsPerFault: 40,
			},
		})
	}
	return items
}

// Fig7Items reproduces Fig. 7: impact of request size, fixed sizes 4 KB to
// 1 MB; >=800 faults per point at scale 1.
func Fig7Items(scale float64) []CatalogItem {
	var items []CatalogItem
	for i, kb := range []int{4, 16, 64, 256, 1024} {
		w := baseWrites(16)
		w.Name = fmt.Sprintf("size%dk", kb)
		w.MinSize, w.MaxSize = 0, 0
		w.FixedSize = kb << 10
		items = append(items, CatalogItem{
			Figure: "fig7",
			Label:  fmt.Sprintf("size=%dKB", kb),
			X:      float64(kb),
			Opts:   baseOpts(800 + uint64(i)),
			Spec: Experiment{
				Name:             "fig7-" + w.Name,
				Workload:         w,
				Faults:           scaled(800, scale),
				RequestsPerFault: 16,
			},
		})
	}
	return items
}

// Fig8Items reproduces Fig. 8: requested versus responded IOPS and the
// failure count, with open-loop arrivals; >=600 faults per point at
// scale 1. The host queue is capped so outage-time backlogs stay bounded.
//
// Substitution note (see EXPERIMENTS.md): the paper states 4 KiB-1 MiB
// request sizes yet reports responded IOPS saturating at ~6900, which is
// >3.5 GB/s — beyond SATA. We use a 4-64 KiB mix so the responded-IOPS
// saturation knee lands in the paper's range while preserving the
// rise-then-plateau shape of both series.
func Fig8Items(scale float64) []CatalogItem {
	var items []CatalogItem
	for i, iops := range []float64{1200, 2400, 6000, 12000, 20000, 25000, 30000} {
		w := baseWrites(16)
		w.Name = fmt.Sprintf("iops%d", int(iops))
		w.MinSize = 4 << 10
		w.MaxSize = 64 << 10
		w.IOPS = iops
		opts := baseOpts(900 + uint64(i))
		opts.Host.MaxSegPages = 128
		opts.Host.Depth = 32
		opts.Host.PendingCap = 256
		opts.Host.Timeout = 30 * sim.Second
		items = append(items, CatalogItem{
			Figure: "fig8",
			Label:  fmt.Sprintf("iops=%d", int(iops)),
			X:      iops,
			Opts:   opts,
			Spec: Experiment{
				Name:             "fig8-" + w.Name,
				Workload:         w,
				Faults:           scaled(600, scale),
				RequestsPerFault: 20,
			},
		})
	}
	return items
}

// Fig9Items reproduces Fig. 9: access sequences RAW, WAR, RAR, WAW, where
// each second request targets the previous request's address.
func Fig9Items(scale float64) []CatalogItem {
	var items []CatalogItem
	for i, mode := range []workload.SeqMode{workload.RAW, workload.WAR, workload.RAR, workload.WAW} {
		w := baseWrites(16)
		w.Name = mode.String()
		w.Sequence = mode
		items = append(items, CatalogItem{
			Figure: "fig9",
			Label:  mode.String(),
			X:      float64(i),
			Opts:   baseOpts(950 + uint64(i)),
			Spec: Experiment{
				Name:             "fig9-" + w.Name,
				Workload:         w,
				Faults:           scaled(300, scale),
				RequestsPerFault: 16,
			},
		})
	}
	return items
}

// WindowItems reproduces Section IV-A: the workload pauses after a chosen
// request's ACK and the fault lands a configurable delay later, sweeping
// the delay from 0 to 1000 ms; the paper reports data loss for faults up
// to ~700 ms after completion. Items for both cache-enabled and
// cache-disabled drives are produced.
func WindowItems(scale float64) []CatalogItem {
	var items []CatalogItem
	delays := []float64{0, 50, 100, 200, 300, 400, 500, 600, 700, 800, 1000}
	for ci, cacheOff := range []bool{false, true} {
		prof := ssd.ProfileA()
		tag := "cache"
		if cacheOff {
			prof = prof.WithCacheDisabled()
			tag = "nocache"
		}
		for i, ms := range delays {
			opts := baseOpts(1000 + uint64(ci*100+i))
			opts.Profile = prof
			items = append(items, CatalogItem{
				Figure: "window",
				Label:  fmt.Sprintf("delay=%dms/%s", int(ms), tag),
				X:      ms,
				Opts:   opts,
				Spec: Experiment{
					Name:             fmt.Sprintf("iva-delay%d-%s", int(ms), tag),
					Workload:         baseWrites(16),
					Faults:           scaled(60, scale),
					RequestsPerFault: 30,
					WindowMode:       true,
					PostACKDelay:     sim.Millis(ms),
				},
			})
		}
	}
	return items
}

// TableIItems runs the base workload against every Table I drive model.
func TableIItems(scale float64) []CatalogItem {
	var items []CatalogItem
	for i, prof := range ssd.Profiles() {
		opts := baseOpts(1100 + uint64(i))
		opts.Profile = prof
		items = append(items, CatalogItem{
			Figure: "tablei",
			Label:  "ssd-" + prof.Name,
			X:      float64(i),
			Opts:   opts,
			Spec: Experiment{
				Name:             "tablei-" + prof.Name,
				Workload:         baseWrites(16),
				Faults:           scaled(150, scale),
				RequestsPerFault: 16,
			},
		})
	}
	return items
}

// AblationItems exercises the design knobs DESIGN.md calls out: PSU
// discharge versus transistor-fast cut, supercapacitor protection, cache
// disabled, and the journal commit interval.
func AblationItems(scale float64) []CatalogItem {
	var items []CatalogItem
	add := func(label string, opts Options, spec Experiment) {
		items = append(items, CatalogItem{
			Figure: "ablation", Label: label, X: float64(len(items)),
			Opts: opts, Spec: spec,
		})
	}
	base := func(name string) Experiment {
		return Experiment{
			Name:             name,
			Workload:         baseWrites(16),
			Faults:           scaled(150, scale),
			RequestsPerFault: 16,
		}
	}

	// ABL-1: realistic PSU discharge vs high-speed transistor cut.
	slow := baseOpts(1200)
	add("cut=psu-discharge", slow, base("abl-cut-psu"))
	fast := baseOpts(1201)
	fast.PSU = power.Config{VNominal: 5, Capacitance: 2e-6, BleedOhms: 27.7, RiseTime: sim.Millis(1)}
	add("cut=transistor", fast, base("abl-cut-transistor"))

	// ABL-2: supercapacitor power-loss protection.
	plp := baseOpts(1202)
	plp.Profile = ssd.ProfileA().WithSuperCap()
	add("supercap=on", plp, base("abl-supercap"))

	// ABL-4: internal cache disabled.
	nocache := baseOpts(1203)
	nocache.Profile = ssd.ProfileA().WithCacheDisabled()
	add("cache=disabled", nocache, base("abl-nocache"))

	// ABL-3: journal commit interval sweep.
	for i, ms := range []float64{5, 10, 50, 200} {
		o := baseOpts(1210 + uint64(i))
		p := ssd.ProfileA()
		p.JournalTick = sim.Millis(ms)
		o.Profile = p
		add(fmt.Sprintf("journal=%dms", int(ms)), o, base(fmt.Sprintf("abl-journal%d", int(ms))))
	}
	return items
}

// arrayMember is the SSD model array points are built from: drive A with
// a small capacity so member FTL state stays cheap across a campaign.
func arrayMember() ssd.Profile {
	p := ssd.ProfileA()
	p.CapacityGB = 8
	return p
}

// arrayWrites is the array workload: random 4-64 KiB writes over a small
// working set, so every member sees traffic between consecutive faults.
func arrayWrites(name string) Workload {
	return Workload{
		Name:     name,
		WSSBytes: 2 << 30,
		MinSize:  4 << 10,
		MaxSize:  64 << 10,
		Pattern:  workload.Random,
	}
}

// ArrayItems is the "array" figure: RAID-0, RAID-1 and RAID-5 arrays of
// identical drives under the same correlated-fault schedule, sweeping the
// member count per level; >=60 faults per point at scale 1.
func ArrayItems(scale float64) []CatalogItem {
	points := []struct {
		label string
		level array.Level
		n     int
	}{
		{"raid0x2", array.RAID0, 2},
		{"raid0x4", array.RAID0, 4},
		{"raid1x2", array.RAID1, 2},
		{"raid1x3", array.RAID1, 3},
		{"raid5x3", array.RAID5, 3},
		{"raid5x5", array.RAID5, 5},
	}
	var items []CatalogItem
	for i, pt := range points {
		opts := Options{
			Seed:     1300 + uint64(i),
			Topology: ArrayTopology(RAIDConfig(pt.level, pt.n, arrayMember())),
		}
		items = append(items, CatalogItem{
			Figure: "array",
			Label:  pt.label,
			X:      float64(pt.n),
			Opts:   opts,
			Spec: Experiment{
				Name:             "array-" + pt.label,
				Workload:         arrayWrites(pt.label),
				Faults:           scaled(60, scale),
				RequestsPerFault: 12,
			},
		})
	}
	return items
}

// ErasureItems is the "erasure" figure: erasure-coded arrays under
// correlated power faults, crossing code strength (RAID-5, RAID-6,
// RS 8+3) × member mix (uniform drive-A members vs a mix with one
// large-cache QLC straggler) × cut severity (the rig's capacitive PSU
// discharge vs a near-instant transistor cut); >=40 faults per point at
// scale 1. Stronger codes buy reconstruction headroom but widen the
// multi-parity write hole; the mixed points show the weakest-member
// effect in MemberReport — the straggler's share of the failures
// dominates its peers'.
func ErasureItems(scale float64) []CatalogItem {
	codes := []struct {
		tag    string
		level  array.Level
		n      int
		parity int
	}{
		{"raid5", array.RAID5, 5, 0},
		{"raid6", array.RAID6, 6, 0},
		{"rs8+3", array.RS, 11, 3},
	}
	weak := ssd.ProfileQ()
	weak.CapacityGB = 8 // keep member FTL state campaign-cheap, like arrayMember
	cuts := []struct {
		tag string
		psu power.Config
	}{
		{"soft", power.Config{}}, // zero value: the Fig. 4 capacitive discharge
		{"hard", power.Config{VNominal: 5, Capacitance: 2e-6, BleedOhms: 27.7, RiseTime: sim.Millis(1)}},
	}
	var items []CatalogItem
	i := 0
	for _, code := range codes {
		for _, mix := range []string{"uniform", "mixed"} {
			members := make([]ssd.Profile, code.n)
			for j := range members {
				members[j] = arrayMember()
			}
			if mix == "mixed" {
				members[code.n-1] = weak
			}
			for _, cut := range cuts {
				label := fmt.Sprintf("%s/%s/%s", code.tag, mix, cut.tag)
				opts := Options{
					Seed: 1900 + uint64(i),
					Topology: ArrayTopology(array.Config{
						Level:   code.level,
						Members: members,
						Parity:  code.parity,
					}),
					PSU: cut.psu,
				}
				items = append(items, CatalogItem{
					Figure: "erasure",
					Label:  label,
					X:      float64(i),
					Opts:   opts,
					Spec: Experiment{
						Name:             "erasure-" + strings.NewReplacer("/", "-", "+", "").Replace(label),
						Workload:         arrayWrites(label),
						Faults:           scaled(40, scale),
						RequestsPerFault: 12,
					},
				})
				i++
			}
		}
	}
	return items
}

// CacheItems is the "cache" figure: an SSD cache over a desktop HDD in
// write-back versus write-through policy, for two cache drive models;
// >=60 faults per point at scale 1. The write-back points lose
// acknowledged data (dirty lines die in the cache SSD's DRAM); the
// write-through points do not.
func CacheItems(scale float64) []CatalogItem {
	caches := []ssd.Profile{arrayMember()}
	{
		b := ssd.ProfileB()
		b.CapacityGB = 8
		caches = append(caches, b)
	}
	var items []CatalogItem
	i := 0
	for _, cacheProf := range caches {
		for _, pol := range []array.CachePolicy{array.WriteBack, array.WriteThrough} {
			tag := "wb"
			if pol == array.WriteThrough {
				tag = "wt"
			}
			label := fmt.Sprintf("%s/%s", tag, cacheProf.Name)
			back := hdd.DefaultProfile()
			back.CapacityGB = 64
			opts := Options{
				Seed:     1400 + uint64(i),
				Topology: ArrayTopology(CacheConfig(cacheProf, back, pol)),
			}
			items = append(items, CatalogItem{
				Figure: "cache",
				Label:  label,
				X:      float64(i),
				Opts:   opts,
				Spec: Experiment{
					Name:             "cache-" + tag + "-" + cacheProf.Name,
					Workload:         arrayWrites(label),
					Faults:           scaled(60, scale),
					RequestsPerFault: 12,
				},
			})
			i++
		}
	}
	return items
}

// fleetDomainPoints are the two tree shapes the "fleet" figure contrasts:
// a deep 2×2×2 datacenter slice (8 PSU leaves behind intermediate rack and
// enclosure tiers) and a flat single-rack tree with the same leaf count in
// one enclosure row, so blast radius differences come from topology alone.
var fleetDomainPoints = []struct {
	tag string
	cfg fleet.DomainConfig
}{
	{"deep", fleet.DomainConfig{Racks: 2, EnclosuresPerRack: 2, PSUsPerEnclosure: 2}},
	{"flat", fleet.DomainConfig{Racks: 1, EnclosuresPerRack: 1, PSUsPerEnclosure: 8}},
}

// FleetItems is the "fleet" figure: availability and durability of a fleet
// of RAID-5-like groups on a fault-domain tree, sweeping tree shape (deep
// 2×2×2 vs flat 1×1×8) × spare count (0, 4) × random cut level (PSU, rack,
// room); >=6 cuts per point at scale 1. The y-axis material is
// Report.Fleet: availability and durability nines, rebuild windows and
// rebuild traffic. On a fixed seed the nines fall monotonically as the cut
// level climbs the tree.
func FleetItems(scale float64) []CatalogItem {
	levels := []struct {
		tag string
		l   fleet.Level
	}{
		{"psu", fleet.PSU},
		{"rack", fleet.Rack},
		{"room", fleet.Room},
	}
	var items []CatalogItem
	i := 0
	for _, dom := range fleetDomainPoints {
		for _, spares := range []int{0, 4} {
			for _, lv := range levels {
				cfg := fleet.Config{
					Domains:   dom.cfg,
					Arrays:    6,
					GroupSize: 4,
					Spares:    spares,
					Member:    fleet.MemberProfile{Pages: 2048},
					Rebuild:   fleet.RebuildPolicy{Delay: sim.Second},
					Faults: fleet.FaultPlan{
						Level:  lv.l,
						Count:  scaled(6, scale),
						Outage: 3 * sim.Second,
					},
					Duration: 25 * sim.Second,
				}
				label := fmt.Sprintf("%s/s%d/%s", dom.tag, spares, lv.tag)
				items = append(items, CatalogItem{
					Figure: "fleet",
					Label:  label,
					X:      float64(lv.l),
					Opts:   Options{Seed: 1800 + uint64(i), Fleet: &cfg},
					Spec: Experiment{
						Name: fmt.Sprintf("fleet-%s-s%d-%s", dom.tag, spares, lv.tag),
					},
				})
				i++
			}
		}
	}
	return items
}

// topoPoint is one device topology a figure sweeps.
type topoPoint struct {
	tag  string
	opts func(seed uint64) Options
}

// comparatorTopos is the topology pair the application ("txn") and
// replay ("trace") figures share: the small SSD A against a 64 GB
// write-through HDD, so both figures contrast the volatile-cache drive
// with the mechanical comparator under identical traffic.
func comparatorTopos() []topoPoint {
	return []topoPoint{
		{"ssd", func(seed uint64) Options {
			return Options{Seed: seed, Profile: arrayMember()}
		}},
		{"hdd", func(seed uint64) Options {
			back := hdd.DefaultProfile()
			back.CapacityGB = 64
			return Options{Seed: seed, Topology: HDDTopology(back)}
		}},
	}
}

// txnBarrierPoints is the commit-barrier sweep the "txn" and
// "txn-streams" figures share, so the two figures can never drift apart
// on barrier sets or labels.
var txnBarrierPoints = []struct {
	tag string
	b   txn.Barrier
}{
	{"flush", txn.FlushPerCommit},
	{"group", txn.GroupCommit},
	{"noflush", txn.NoFlush},
}

// TxnItems is the "txn" figure: the transactional WAL application layer
// under power faults, crossing commit barrier policy (flush-per-commit,
// group commit, no-flush) with device topology (single SSD, write-through
// HDD) and cut timing (early cuts land mid-transaction more often; late
// cuts give the volatile cache time to lie); >=40 faults per point at
// scale 1. The y-axis material is Report.TxnStats: lost commits, torn
// transactions and out-of-order durability per fault.
func TxnItems(scale float64) []CatalogItem {
	barriers := txnBarrierPoints
	topos := comparatorTopos()
	timings := []struct {
		tag string
		rpf int
	}{
		{"early", 10},
		{"late", 40},
	}
	var items []CatalogItem
	i := 0
	for _, bar := range barriers {
		for _, topo := range topos {
			for _, tm := range timings {
				cfg := txn.DefaultConfig()
				cfg.Barrier = bar.b
				// A batch of 4 lets group commit make progress even on the
				// mechanical comparator between early cuts.
				cfg.GroupEvery = 4
				opts := topo.opts(1500 + uint64(i))
				opts.App = TxnApp(cfg)
				label := fmt.Sprintf("%s/%s/%s", bar.tag, topo.tag, tm.tag)
				items = append(items, CatalogItem{
					Figure: "txn",
					Label:  label,
					X:      float64(i),
					Opts:   opts,
					Spec: Experiment{
						Name:             "txn-" + bar.tag + "-" + topo.tag + "-" + tm.tag,
						Faults:           scaled(40, scale),
						RequestsPerFault: tm.rpf,
					},
				})
				i++
			}
		}
	}
	return items
}

// txnStreamTopos is the topology triple the "txn-streams" figure sweeps:
// the volatile-cache SSD baseline, a RAID-5 array (write holes vs WAL
// atomicity under correlated faults), and an SSD cache over an HDD in
// write-back (group commit vs lost dirty lines).
func txnStreamTopos() []topoPoint {
	return []topoPoint{
		{"ssd", func(seed uint64) Options {
			return Options{Seed: seed, Profile: arrayMember()}
		}},
		{"raid5", func(seed uint64) Options {
			return Options{Seed: seed, Topology: ArrayTopology(RAIDConfig(RAID5, 3, arrayMember()))}
		}},
		{"cached-hdd", func(seed uint64) Options {
			back := DefaultHDD()
			back.CapacityGB = 64
			return Options{Seed: seed, Topology: ArrayTopology(CacheConfig(arrayMember(), back, WriteBack))}
		}},
	}
}

// TxnStreamItems is the "txn-streams" figure: the multi-stream WAL under
// power faults, crossing the stream count (1, 4, 8) with the commit
// barrier (flush-per-commit, group commit, no-flush) and the device
// topology (single SSD, RAID-5, write-back SSD-cache-over-HDD); >=30
// faults per point at scale 1. The closed-loop concurrency tracks the
// stream count so streams genuinely overlap on the wire and commit
// records interleave on the device. Every report carries the
// recovery-policy ablation (Report.TxnPolicies): the y-axis material is
// the per-policy loss counts, with strict-scan minus hole-tolerant being
// the durable-but-unreachable commits a first-tear-stops scan abandons.
// The streams=1 hole-tolerant rows reproduce the PR-3 "txn" engine on
// identical schedules.
func TxnStreamItems(scale float64) []CatalogItem {
	barriers := txnBarrierPoints
	topos := txnStreamTopos()
	var items []CatalogItem
	i := 0
	for _, n := range []int{1, 4, 8} {
		for _, bar := range barriers {
			for _, topo := range topos {
				cfg := txn.DefaultConfig()
				cfg.Streams = n
				cfg.Barrier = bar.b
				// A batch of 4 lets group commit make progress between
				// early cuts even on the slower composite topologies.
				cfg.GroupEvery = 4
				opts := topo.opts(1700 + uint64(i))
				opts.App = TxnApp(cfg)
				opts.Concurrency = n
				label := fmt.Sprintf("s%d/%s/%s", n, bar.tag, topo.tag)
				items = append(items, CatalogItem{
					Figure: "txn-streams",
					Label:  label,
					X:      float64(n),
					Opts:   opts,
					Spec: Experiment{
						Name:             fmt.Sprintf("txnstreams-s%d-%s-%s", n, bar.tag, topo.tag),
						Faults:           scaled(30, scale),
						RequestsPerFault: 12,
					},
				})
				i++
			}
		}
	}
	return items
}

// bundledTraces are the small MSR-style trace fixtures checked in under
// testdata/traces, embedded so the "trace" figure runs from any working
// directory.
//
//go:embed testdata/traces/*.csv
var bundledTraces embed.FS

// BundledTraceNames lists the checked-in trace fixtures, sorted.
func BundledTraceNames() []string {
	ents, err := bundledTraces.ReadDir("testdata/traces")
	if err != nil {
		panic(err) // embedded directory cannot be missing
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, strings.TrimSuffix(e.Name(), ".csv"))
	}
	sort.Strings(names)
	return names
}

// BundledTrace parses one of the checked-in trace fixtures by name (see
// BundledTraceNames).
func BundledTrace(name string) (*TraceWorkload, error) {
	f, err := bundledTraces.Open("testdata/traces/" + name + ".csv")
	if err != nil {
		return nil, fmt.Errorf("powerfail: unknown bundled trace %q (have %s)",
			name, strings.Join(BundledTraceNames(), " "))
	}
	defer f.Close()
	return ParseTrace(f, name)
}

// TraceItemsFor builds the trace-replay series for one parsed trace:
// topology (single SSD, write-through HDD) × pacing (closed loop,
// open loop at the trace's own arrival times), all under the same fault
// schedule; >=40 faults per point at scale 1. cmd/sweep's -trace flag
// runs it for an arbitrary trace file.
func TraceItemsFor(tr *TraceWorkload, scale float64) []CatalogItem {
	topos := comparatorTopos()
	modes := []trace.Mode{trace.ClosedLoop, trace.OpenLoop}
	var items []CatalogItem
	i := 0
	for _, topo := range topos {
		for _, mode := range modes {
			items = append(items, CatalogItem{
				Figure: "trace",
				Label:  fmt.Sprintf("%s/%s/%s", tr.Name, topo.tag, mode),
				X:      float64(i),
				Opts:   topo.opts(1600 + uint64(i)),
				Spec: Experiment{
					Name:             fmt.Sprintf("trace-%s-%s-%s", tr.Name, topo.tag, mode),
					Source:           SourceTrace,
					Trace:            TraceReplay(tr, mode),
					Faults:           scaled(40, scale),
					RequestsPerFault: 12,
				},
			})
			i++
		}
	}
	return items
}

// TraceItems is the "trace" figure: the bundled MSR-style fixtures
// replayed through the fault pipeline over the TraceItemsFor matrix.
func TraceItems(scale float64) []CatalogItem {
	var items []CatalogItem
	for ti, name := range BundledTraceNames() {
		tr, err := BundledTrace(name)
		if err != nil {
			panic(err) // checked-in fixtures always parse; tests pin this
		}
		sub := TraceItemsFor(tr, scale)
		for i := range sub {
			sub[i].Opts.Seed += uint64(100 * ti) // distinct seeds per fixture
			sub[i].X = float64(len(items) + i)
		}
		items = append(items, sub...)
	}
	return items
}

// FigureInfo describes one registered figure id for discovery (the sweep
// tool's -list).
type FigureInfo struct {
	ID    string
	Title string
	Items int
}

// figureEntry registers a figure id, its display title and its item
// builder. ItemsFor, AllItems and Figures all derive from this table, so
// a new figure registers in one place.
type figureEntry struct {
	id    string
	title string
	build func(scale float64) []CatalogItem
}

var figureRegistry = []figureEntry{
	{"tablei", "Table I — drive behaviour under the base workload", TableIItems},
	{"window", "Sec. IV-A — data loss vs fault delay after request completion", WindowItems},
	{"fig5", "Fig. 5 — impact of request type (read percentage)", Fig5Items},
	{"fig6", "Fig. 6 — impact of workload working set size", Fig6Items},
	{"seqrand", "Sec. IV-D — random vs sequential access pattern", SeqRandItems},
	{"fig7", "Fig. 7 — impact of request size", Fig7Items},
	{"fig8", "Fig. 8 — impact of requested IOPS", Fig8Items},
	{"fig9", "Fig. 9 — impact of access sequence (RAR/RAW/WAR/WAW)", Fig9Items},
	{"ablation", "Ablations — design-choice sensitivity", AblationItems},
	{"array", "Arrays — RAID-0/1/5 under correlated power faults", ArrayItems},
	{"erasure", "Erasure codes — RAID-5/6/RS(8+3) × member mix × cut severity", ErasureItems},
	{"cache", "SSD cache over HDD — write-back vs write-through under faults", CacheItems},
	{"txn", "Transactions — WAL barrier × topology × cut timing under faults", TxnItems},
	{"txn-streams", "Multi-stream WAL — streams × barrier × topology, recovery-policy ablation", TxnStreamItems},
	{"trace", "Trace replay — bundled MSR-style traces × topology × pacing", TraceItems},
	{"fleet", "Fleet — fault-domain tree × spares × cut level, availability nines", FleetItems},
}

// AllItems returns the full catalog at the given scale, in registry order.
func AllItems(scale float64) []CatalogItem {
	var items []CatalogItem
	for _, e := range figureRegistry {
		items = append(items, e.build(scale)...)
	}
	return items
}

// Figures enumerates the registered campaign figures with their titles
// and item counts at the given scale (fig4 runs no campaign and is not
// listed).
func Figures(scale float64) []FigureInfo {
	out := make([]FigureInfo, 0, len(figureRegistry))
	for _, e := range figureRegistry {
		out = append(out, FigureInfo{ID: e.id, Title: e.title, Items: len(e.build(scale))})
	}
	return out
}

// FigureTitle returns the display title for a figure id (the id itself
// when unknown).
func FigureTitle(id string) string {
	for _, e := range figureRegistry {
		if e.id == id {
			return e.title
		}
	}
	return id
}

// ItemsFor returns the catalog slice for a figure id ("fig5".."fig9",
// "window", "seqrand", "tablei", "ablation", "array", "erasure", "cache",
// "txn", "txn-streams", "trace", "fleet", "all"). Unknown ids error with
// the list of registered ids.
func ItemsFor(figure string, scale float64) ([]CatalogItem, error) {
	if figure == "all" {
		return AllItems(scale), nil
	}
	for _, e := range figureRegistry {
		if e.id == figure {
			return e.build(scale), nil
		}
	}
	known := make([]string, 0, len(figureRegistry)+1)
	for _, e := range figureRegistry {
		known = append(known, e.id)
	}
	known = append(known, "all")
	return nil, fmt.Errorf("powerfail: unknown figure %q (registered: %s)", figure, strings.Join(known, " "))
}

// VoltagePoint samples the PSU discharge curve.
type VoltagePoint struct {
	T sim.Duration // time since the cut
	V float64
}

// DischargeCurve reproduces Fig. 4: the 5 V rail's voltage after a cut,
// with or without one SSD attached, sampled every step until horizon.
// It also returns the instant the rail crossed 4.5 V (the SSD brownout).
func DischargeCurve(withSSD bool, step, horizon sim.Duration) (curve []VoltagePoint, brownoutAt sim.Duration) {
	k := sim.New()
	psu, err := power.New(k, power.DefaultConfig())
	if err != nil {
		panic(err)
	}
	if withSSD {
		psu.Connect("ssd", ssd.ProfileA().LoadOhms)
	}
	psu.PowerOff()
	cut := k.Now()
	brownoutAt = -1
	for t := sim.Duration(0); t <= horizon; t += step {
		v := psu.VoltageAt(cut.Add(t))
		curve = append(curve, VoltagePoint{T: t, V: v})
		if brownoutAt < 0 && v < 4.5 {
			brownoutAt = t
		}
	}
	return curve, brownoutAt
}

// Ensure the catalog compiles against the core types.
var _ = core.ExperimentSpec{}
