package powerfail_test

import (
	"context"
	"strings"
	"testing"

	"powerfail"
)

// runTxnStreamsFigure executes the txn-streams catalog at a small scale
// and fails on any item error.
func runTxnStreamsFigure(t *testing.T, parallelism int) *powerfail.CampaignResult {
	t.Helper()
	items := smallItems(t, "txn-streams", 0.02)
	out, err := powerfail.NewCampaign(items,
		powerfail.WithParallelism(parallelism),
	).Run(context.Background())
	if err != nil {
		t.Fatalf("parallelism %d: %v", parallelism, err)
	}
	if out.Completed != len(items) {
		t.Fatalf("completed %d, want %d", out.Completed, len(items))
	}
	return out
}

// TestTxnStreamsCampaignParallelDeterminism: the tentpole acceptance
// criterion — the "txn-streams" figure produces byte-identical reports
// at parallelism 1 and 8. Every stream pipeline, the round-robin
// scheduler and both recovery-policy replays run single-threaded per
// item from the item seed, so worker scheduling can never leak into a
// verdict.
func TestTxnStreamsCampaignParallelDeterminism(t *testing.T) {
	seq := runTxnStreamsFigure(t, 1)
	par := runTxnStreamsFigure(t, 8)
	seqEnc, parEnc := encodeReports(t, seq), encodeReports(t, par)
	for i := range seqEnc {
		if seqEnc[i] != parEnc[i] {
			t.Fatalf("txn-streams item %d (%s) diverged between parallelism 1 and 8:\n%s\n%s",
				i, seq.Results[i].Item.Label, seqEnc[i], parEnc[i])
		}
		if seq.Results[i].Report.TxnStats == nil || len(seq.Results[i].Report.TxnPolicies) != 2 {
			t.Fatalf("txn-streams item %d (%s): missing txn stats or policy ablation",
				i, seq.Results[i].Item.Label)
		}
	}
}

// TestTxnStreamsPolicyAblation: the recovery-policy acceptance pair over
// the whole figure — on every item (same schedule, same observations)
// the strict scan loses at least as much as the hole-tolerant replay,
// the headline TxnStats is the hole-tolerant row (the default primary
// policy, reproducing the PR-3 "txn" verdict semantics on the streams=1
// points), and the figure actually covers the stream counts and
// topologies it advertises.
func TestTxnStreamsPolicyAblation(t *testing.T) {
	out := runTxnStreamsFigure(t, 4)
	streamsSeen := map[string]bool{}
	toposSeen := map[string]bool{}
	var htLosses, strictLosses, unreachable int64
	for _, res := range out.Results {
		rep := res.Report
		parts := strings.Split(res.Item.Label, "/")
		if len(parts) != 3 {
			t.Fatalf("label shape changed: %q", res.Item.Label)
		}
		streamsSeen[parts[0]] = true
		toposSeen[parts[2]] = true

		ht := rep.TxnPolicy(powerfail.HoleTolerantRecovery)
		strict := rep.TxnPolicy(powerfail.StrictScanRecovery)
		if strict.Losses() < ht.Losses() {
			t.Fatalf("%s: strict-scan lost %d < hole-tolerant %d on the same schedule",
				res.Item.Label, strict.Losses(), ht.Losses())
		}
		if strict.ScanPages > ht.ScanPages {
			t.Fatalf("%s: strict scan read %d pages > hole-tolerant %d",
				res.Item.Label, strict.ScanPages, ht.ScanPages)
		}
		if *rep.TxnStats != ht {
			t.Fatalf("%s: headline TxnStats is not the hole-tolerant row", res.Item.Label)
		}
		if rep.TxnStats.Committed == 0 || rep.TxnStats.Evaluated == 0 {
			t.Fatalf("%s: engine idle", res.Item.Label)
		}
		if strings.HasPrefix(res.Item.Label, "s1/flush/") && ht.Losses() != 0 {
			t.Fatalf("%s: flush-per-commit on one stream lost %d transactions",
				res.Item.Label, ht.Losses())
		}
		htLosses += ht.Losses()
		strictLosses += strict.Losses()
		unreachable += rep.TxnUnreachable()
	}
	for _, want := range []string{"s1", "s4", "s8"} {
		if !streamsSeen[want] {
			t.Fatalf("figure misses stream count %s: %v", want, streamsSeen)
		}
	}
	for _, want := range []string{"ssd", "raid5", "cached-hdd"} {
		if !toposSeen[want] {
			t.Fatalf("figure misses topology %s: %v", want, toposSeen)
		}
	}
	if htLosses == 0 {
		t.Fatal("no txn-streams point lost transactions — volatile paths not reached")
	}
	if strictLosses < htLosses || unreachable != strictLosses-htLosses {
		t.Fatalf("ablation totals inconsistent: ht=%d strict=%d unreachable=%d",
			htLosses, strictLosses, unreachable)
	}
}
