// Command powerstat compares two campaign run archives benchstat-style:
// items are aligned by (figure, label), every per-figure reliability
// metric gets a delta with a Welch 95% confidence interval, and each
// delta is verdicted regressed / improved / unchanged against the
// metric's direction (loss rates and latency quantiles regress upward,
// availability and durability nines regress downward).
//
// Usage:
//
//	sweep -figure fig5 -journal old.run          # on the base commit
//	sweep -figure fig5 -journal new.run          # on the candidate
//	powerstat old.run new.run                    # human table
//	powerstat -json old.run new.run              # machine-readable diff
//	powerstat -all old.run new.run               # include unchanged rows
//
// Exit status: 0 when no metric regressed, 1 when at least one did, 2 on
// usage or archive errors — so CI can gate on `powerstat base.run pr.run`.
// Two archives of the same seeds and specs compare as all-unchanged with
// exact zero deltas (campaign output is deterministic).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"powerfail"
	"powerfail/internal/runstore"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit the diff as JSON instead of a table")
	showAll := flag.Bool("all", false, "print unchanged metrics too, not just changed ones")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: powerstat [-json] [-all] old.run new.run\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	oldA, err := powerfail.OpenRunArchive(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	newA, err := powerfail.OpenRunArchive(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	diff, err := powerfail.DiffRunArchives(oldA, newA)
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diff); err != nil {
			fatal(err)
		}
	} else {
		printDiff(diff, oldA, newA, *showAll)
	}
	if diff.Regressions > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "powerstat:", err)
	os.Exit(2)
}

func printDiff(d *powerfail.RunDiff, oldA, newA *powerfail.RunArchive, showAll bool) {
	fmt.Printf("old: %s (%s)\n", d.Old, describe(oldA))
	fmt.Printf("new: %s (%s)\n", d.New, describe(newA))

	for _, fd := range d.Figures {
		fmt.Printf("\n%s: %d items aligned", fd.Figure, fd.Aligned)
		if fd.OldOnly > 0 {
			fmt.Printf(", %d old-only", fd.OldOnly)
		}
		if fd.NewOnly > 0 {
			fmt.Printf(", %d new-only", fd.NewOnly)
		}
		fmt.Println()
		var rows []runstore.MetricDelta
		for _, md := range fd.Metrics {
			if showAll || md.Verdict != runstore.Unchanged {
				rows = append(rows, md)
			}
		}
		if len(rows) == 0 {
			if len(fd.Metrics) > 0 {
				fmt.Printf("  (all %d metrics unchanged)\n", len(fd.Metrics))
			}
			continue
		}
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "  metric\told\tnew\tdelta\t95%% CI\tverdict\n")
		for _, md := range rows {
			fmt.Fprintf(tw, "  %s\t%.4g\t%.4g\t%+.4g\t[%+.4g, %+.4g]\t%s\n",
				md.Metric, md.OldMean, md.NewMean, md.Delta, md.CILo, md.CIHi, md.Verdict)
		}
		tw.Flush()
	}
	fmt.Printf("\n%d regressed, %d improved, %d unchanged\n",
		d.Regressions, d.Improvements, d.Unchanged_)
}

// describe summarizes one archive's provenance for the header lines.
func describe(a *powerfail.RunArchive) string {
	m := a.Manifest
	s := fmt.Sprintf("%d items", a.Completed())
	if a.Final == nil {
		s += ", interrupted"
	}
	if m.GoVersion != "" {
		s += ", " + m.GoVersion
	}
	if m.VCSRevision != "" {
		rev := m.VCSRevision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += ", rev " + rev
	}
	return s
}
