// Command ssdinfo prints the Table I drive inventory and the derived model
// parameters (geometry, ECC budget, cache, power thresholds) for each
// profile, so experiments can be read against the hardware they model.
package main

import (
	"flag"
	"fmt"

	"powerfail/internal/ssd"
)

func main() {
	verbose := flag.Bool("v", false, "print derived model parameters")
	flag.Parse()

	fmt.Println("SSDs under test (Table I of the paper):")
	fmt.Println()
	fmt.Printf("%-4s %-8s %-10s %-14s %-14s %-6s %-6s\n",
		"SSD", "Size(GB)", "Interface", "InternalCache", "ECC", "Cell", "Year")
	for _, p := range ssd.Profiles() {
		cache := "No"
		if p.HasCache {
			cache = fmt.Sprintf("Yes(%dMB)", p.CacheMB)
		}
		year := "NA"
		if p.ReleaseYear > 0 {
			year = fmt.Sprintf("%d", p.ReleaseYear)
		}
		fmt.Printf("%-4s %-8d %-10s %-14s %-14s %-6s %-6s\n",
			p.Name, p.CapacityGB, p.Interface, cache,
			fmt.Sprintf("%s(%db/KB)", p.ECC.Scheme, p.ECC.CorrectPerKB), p.Cell, year)
	}
	if !*verbose {
		return
	}
	for _, p := range ssd.Profiles() {
		fmt.Printf("\n--- SSD %s model detail ---\n", p.Name)
		fmt.Printf("  geometry:        %s\n", p.Geometry())
		fmt.Printf("  user pages:      %d (4 KiB each)\n", p.UserPages())
		fmt.Printf("  channels:        %d\n", p.Channels)
		fmt.Printf("  nand timing:     read %s, program %s, erase %s\n",
			p.Timing.ReadPage, p.Timing.ProgramPage, p.Timing.EraseBlock)
		fmt.Printf("  base BER:        %.1e (endurance %d P/E)\n", p.BaseBER, p.EnduranceCycles)
		fmt.Printf("  ispp steps:      %d, pair-corrupt peak p=%.2f\n",
			p.Cell.ProgramSteps(), p.Cell.PairCorruptProb())
		fmt.Printf("  link:            %.0f MB/s, cmd overhead %s\n",
			p.LinkBytesPerSec/1e6, p.CmdOverhead)
		fmt.Printf("  power:           brownout %.2f V, controller reset %.2f V, load %.1f ohm\n",
			p.BrownoutVolts, p.DieVolts, p.LoadOhms)
		fmt.Printf("  flush policy:    high-water %dp, idle age %s, tick %s\n",
			p.FlushHighPages, p.FlushIdleAge, p.FlushTick)
		fmt.Printf("  mapping policy:  journal tick %s, run max %dp, OOB scan %dp/lane\n",
			p.JournalTick, p.RunMaxPages, p.ScanWindowPages)
	}
}
