// Package obsflag shares the -obs flag and its metric-dump helper across
// the powerfail commands, so cmd/powerfail and cmd/sweep expose the
// observability layer with identical flags and output.
package obsflag

import (
	"flag"
	"fmt"
	"io"

	"powerfail"
	"powerfail/internal/obs"
)

// Register installs the shared -obs flag on the default flag set and
// returns its value. Call before flag.Parse.
func Register() *bool {
	return flag.Bool("obs", false, "enable the observability layer (sim-time metrics summary)")
}

// Configure returns the observability configuration to attach to
// Options.Obs: the full default config when on, nil (observability off,
// byte-identical legacy output) otherwise. The returned pointer may be
// shared across items — experiments only read it.
func Configure(on bool) *powerfail.ObsConfig {
	if !on {
		return nil
	}
	cfg := powerfail.DefaultObsConfig()
	return &cfg
}

// Dump writes one summary as the deterministic text metric dump under a
// per-experiment header. A nil summary writes nothing, so callers can
// pass Report.Obs straight through.
func Dump(w io.Writer, name string, s *obs.Summary) error {
	if s == nil {
		return nil
	}
	if _, err := fmt.Fprintf(w, "# obs %s\n", name); err != nil {
		return err
	}
	return s.Dump(w)
}
