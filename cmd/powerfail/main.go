// Command powerfail runs a single power-fault injection experiment against
// a simulated drive and prints the analyzer's report, mirroring the
// paper's test-platform workflow: configure a workload, schedule faults,
// verify checksums, classify failures.
//
// Examples:
//
//	powerfail -profile A -faults 100 -write-pct 100
//	powerfail -profile B -faults 50 -size 4096 -pattern sequential
//	powerfail -profile A -faults 40 -sequence WAW -seed 7
//	powerfail -profile A -faults 30 -window-delay 200ms
//	powerfail -profile A -faults 200 -json > report.json
//	powerfail -profile A -faults 50 -obs      # + sim-time metric dump on stderr
//
// Ctrl-C cancels the experiment; the partial report is still printed.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"powerfail"
	"powerfail/cmd/internal/obsflag"
	"powerfail/internal/sim"
)

func main() {
	var (
		profile  = flag.String("profile", "A", "drive under test: A, B, C (Table I) or Q (QLC)")
		seed     = flag.Uint64("seed", 1, "experiment seed (reports reproduce per seed)")
		faults   = flag.Int("faults", 50, "power faults to inject")
		perFault = flag.Int("requests-per-fault", 16, "completed requests between faults")
		wssGB    = flag.Int("wss", 16, "working set size in GB")
		minKB    = flag.Int("min-size", 4, "minimum request size in KB")
		maxKB    = flag.Int("max-size", 1024, "maximum request size in KB")
		sizeB    = flag.Int("size", 0, "fixed request size in bytes (overrides min/max)")
		readPct  = flag.Int("read-pct", 0, "percentage of read requests")
		pattern  = flag.String("pattern", "random", "access pattern: random or sequential")
		sequence = flag.String("sequence", "", "paired accesses: RAR, RAW, WAR or WAW")
		iops     = flag.Float64("iops", 0, "requested IOPS (0 = closed loop)")
		nocache  = flag.Bool("disable-cache", false, "disable the drive's internal write cache")
		supercap = flag.Bool("supercap", false, "equip the drive with power-loss protection")
		window   = flag.Duration("window-delay", -1, "inject faults this long after a request's ACK (Sec. IV-A mode)")
		jsonOut  = flag.Bool("json", false, "print the report as JSON")
		obsOn    = obsflag.Register()
	)
	flag.Parse()

	prof, ok := powerfail.ProfileByName(*profile)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown profile %q; use A, B, C or Q\n", *profile)
		os.Exit(2)
	}
	if *nocache {
		prof = prof.WithCacheDisabled()
	}
	if *supercap {
		prof = prof.WithSuperCap()
	}

	w := powerfail.Workload{
		Name:     "cli",
		WSSBytes: int64(*wssGB) << 30,
		MinSize:  *minKB << 10,
		MaxSize:  *maxKB << 10,
		ReadPct:  *readPct,
		IOPS:     *iops,
	}
	if *sizeB > 0 {
		w.FixedSize = *sizeB
		w.MinSize, w.MaxSize = 0, 0
	}
	if strings.EqualFold(*pattern, "sequential") {
		w.Pattern = powerfail.SequentialPattern
	}
	switch strings.ToUpper(*sequence) {
	case "":
	case "RAR":
		w.Sequence = powerfail.RAR
	case "RAW":
		w.Sequence = powerfail.RAW
	case "WAR":
		w.Sequence = powerfail.WAR
	case "WAW":
		w.Sequence = powerfail.WAW
	default:
		fmt.Fprintf(os.Stderr, "unknown sequence %q\n", *sequence)
		os.Exit(2)
	}

	spec := powerfail.Experiment{
		Name:             "cli",
		Workload:         w,
		Faults:           *faults,
		RequestsPerFault: *perFault,
	}
	if *window >= 0 {
		spec.WindowMode = true
		spec.PostACKDelay = sim.Duration(window.Nanoseconds())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := powerfail.Options{Seed: *seed, Profile: prof, Obs: obsflag.Configure(*obsOn)}
	rep, err := powerfail.RunContext(ctx, opts, spec)
	if err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	interrupted := err != nil
	if interrupted {
		fmt.Fprintf(os.Stderr, "interrupted after %d/%d faults; partial report follows\n",
			rep.Faults, spec.Faults)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		fmt.Print(rep)
	}
	if *obsOn {
		// The metric dump goes to stderr so `-json -obs` keeps stdout as
		// pure report JSON (the summary is in the JSON too, as "obs").
		obsflag.Dump(os.Stderr, spec.Name, rep.Obs)
	}
	if interrupted {
		os.Exit(130)
	}
}
