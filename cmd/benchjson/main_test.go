package main

import "testing"

// TestParseBenchmemLine: -benchmem result lines carry B/op and allocs/op
// alongside ns/op and custom metrics; all of them land in the document so
// CI baselines track allocation regressions, not just time.
func TestParseBenchmemLine(t *testing.T) {
	name, iters, metrics, ok := parseBenchLine(
		"BenchmarkQueueSubmitComplete-8   \t 2000\t       120.8 ns/op\t       0 B/op\t       0 allocs/op")
	if !ok {
		t.Fatal("benchmem line did not parse")
	}
	if name != "BenchmarkQueueSubmitComplete" {
		t.Fatalf("name = %q (GOMAXPROCS suffix must be stripped)", name)
	}
	if iters != 2000 {
		t.Fatalf("iters = %d", iters)
	}
	for unit, want := range map[string]float64{"ns/op": 120.8, "B/op": 0, "allocs/op": 0} {
		got, present := metrics[unit]
		if !present || got != want {
			t.Fatalf("metrics[%q] = %v (present=%v), want %v", unit, got, present, want)
		}
	}
}

// TestParseCustomMetrics: b.ReportMetric units ride the same line.
func TestParseCustomMetrics(t *testing.T) {
	_, _, metrics, ok := parseBenchLine(
		"BenchmarkFleetCampaign-8   3\t 400000000 ns/op\t 2500000 events/s\t 120 B/op\t 2 allocs/op")
	if !ok {
		t.Fatal("line did not parse")
	}
	if metrics["events/s"] != 2.5e6 || metrics["allocs/op"] != 2 {
		t.Fatalf("metrics = %v", metrics)
	}
}

// TestParseRejectsNonBench: table rows and prose never parse as results.
func TestParseRejectsNonBench(t *testing.T) {
	for _, line := range []string{
		"ok  	powerfail	2.189s",
		"| point | faults |",
		"BenchmarkBroken-8 notanumber 12 ns/op",
	} {
		if _, _, _, ok := parseBenchLine(line); ok {
			t.Fatalf("line parsed as benchmark: %q", line)
		}
	}
}
