// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON document: benchmark name → per-metric means
// (ns/op, B/op, allocs/op, plus every custom b.ReportMetric unit such as
// events/s, losses/fault, faultcycles/s or sim_ms/fault). CI uses it to
// emit a BENCH_<date>.json artifact next to the raw bench.txt; the
// checked-in bench/BENCH_*.json files are the seeded baselines.
//
// Usage:
//
//	go test -bench . -benchtime 1x -count=6 ./... | benchjson > BENCH_2026-08-08.json
//	benchjson -in bench.txt -o BENCH_2026-08-08.json
//
// Repeated runs of one benchmark (-count > 1) average into a single
// entry with the sample count recorded, benchstat-style. Non-benchmark
// lines (test output, series tables) are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// entry accumulates one benchmark's samples.
type entry struct {
	Samples int                `json:"samples"`
	Iters   int64              `json:"iterations"`
	Metrics map[string]float64 `json:"metrics"`
}

type document struct {
	Date       string            `json:"date"`
	GoVersion  string            `json:"go"`
	GOOS       string            `json:"goos,omitempty"`
	GOARCH     string            `json:"goarch,omitempty"`
	Benchmarks map[string]*entry `json:"benchmarks"`
}

func main() {
	in := flag.String("in", "", "read bench output from this file (default stdin)")
	out := flag.String("o", "", "write JSON to this file (default stdout)")
	date := flag.String("date", time.Now().UTC().Format("2006-01-02"), "date stamp for the document")
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}

	doc := document{
		Date:       *date,
		GoVersion:  runtime.Version(),
		Benchmarks: map[string]*entry{},
	}
	sums := map[string]map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
			continue
		}
		name, iters, metrics, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		e := doc.Benchmarks[name]
		if e == nil {
			e = &entry{Metrics: map[string]float64{}}
			doc.Benchmarks[name] = e
			sums[name] = map[string]float64{}
		}
		e.Samples++
		e.Iters += iters
		for unit, v := range metrics {
			sums[name][unit] += v
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	for name, e := range doc.Benchmarks {
		for unit, sum := range sums[name] {
			e.Metrics[unit] = sum / float64(e.Samples)
		}
	}
	if len(doc.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark result lines in input"))
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// encoding/json sorts map keys, so the document is diff-friendly.
	if err := enc.Encode(doc); err != nil {
		fatal(err)
	}
}

// parseBenchLine decodes one `BenchmarkName-P  N  v1 unit1  v2 unit2 ...`
// result line. The -P GOMAXPROCS suffix is stripped so baselines compare
// across runner shapes.
func parseBenchLine(line string) (name string, iters int64, metrics map[string]float64, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", 0, nil, false
	}
	name = fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", 0, nil, false
	}
	metrics = map[string]float64{}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", 0, nil, false
		}
		metrics[fields[i+1]] = v
	}
	if len(metrics) == 0 {
		return "", 0, nil, false
	}
	return name, iters, metrics, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
