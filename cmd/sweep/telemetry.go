package main

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"powerfail"
	"powerfail/internal/obs"
)

// telemetry is the -listen endpoint's shared state. The campaign's
// progress callback feeds it (serialized on the Run goroutine); the HTTP
// handlers snapshot it under the mutex. The server only ever reads
// completed results, so scraping can never perturb the campaign's
// deterministic output.
type telemetry struct {
	mu     sync.Mutex
	start  time.Time
	total  int
	done   int
	failed int
	reused int
	events uint64

	figOrder []string
	figTotal map[string]int
	figDone  map[string]int

	obsParts []*obs.Summary
}

func newTelemetry(items []powerfail.CatalogItem) *telemetry {
	t := &telemetry{
		start:    time.Now(),
		total:    len(items),
		figTotal: map[string]int{},
		figDone:  map[string]int{},
	}
	for _, it := range items {
		if t.figTotal[it.Figure] == 0 {
			t.figOrder = append(t.figOrder, it.Figure)
		}
		t.figTotal[it.Figure]++
	}
	return t
}

// observe records one completed item.
func (t *telemetry) observe(res powerfail.CatalogResult) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.done++
	t.figDone[res.Item.Figure]++
	if res.Err != nil {
		t.failed++
	}
	if res.Reused {
		t.reused++
	}
	if res.Report != nil {
		t.events += res.Report.Events
		if res.Report.Obs != nil {
			t.obsParts = append(t.obsParts, res.Report.Obs)
		}
	}
}

// metrics serves the OpenMetrics text exposition: campaign progress,
// per-figure completion counters, live events/s, and the merged
// observability summary of every completed item so far.
func (t *telemetry) metrics(w http.ResponseWriter, _ *http.Request) {
	t.mu.Lock()
	defer t.mu.Unlock()
	w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")

	elapsed := time.Since(t.start).Seconds()
	eps := 0.0
	if elapsed > 0 {
		eps = float64(t.events) / elapsed
	}
	fmt.Fprintf(w, "# TYPE sweep_items gauge\nsweep_items %d\n", t.total)
	fmt.Fprintf(w, "# TYPE sweep_items_completed counter\nsweep_items_completed_total %d\n", t.done)
	fmt.Fprintf(w, "# TYPE sweep_items_failed counter\nsweep_items_failed_total %d\n", t.failed)
	fmt.Fprintf(w, "# TYPE sweep_items_reused counter\nsweep_items_reused_total %d\n", t.reused)
	fmt.Fprintf(w, "# TYPE sweep_sim_events counter\nsweep_sim_events_total %d\n", t.events)
	fmt.Fprintf(w, "# TYPE sweep_sim_events_per_second gauge\nsweep_sim_events_per_second %g\n", eps)
	fmt.Fprintf(w, "# TYPE sweep_elapsed_seconds gauge\nsweep_elapsed_seconds %g\n", elapsed)
	fmt.Fprintf(w, "# TYPE sweep_figure_items gauge\n")
	for _, fig := range t.figOrder {
		fmt.Fprintf(w, "sweep_figure_items{figure=%q} %d\n", fig, t.figTotal[fig])
	}
	fmt.Fprintf(w, "# TYPE sweep_figure_items_completed counter\n")
	for _, fig := range t.figOrder {
		fmt.Fprintf(w, "sweep_figure_items_completed_total{figure=%q} %d\n", fig, t.figDone[fig])
	}
	// One merged summary (not per-figure) keeps every obs family unique
	// in the exposition, as OpenMetrics requires.
	if merged := obs.MergeSummaries(t.obsParts); merged != nil {
		merged.WriteOpenMetrics(w, "powerfail_")
	}
	fmt.Fprintln(w, "# EOF")
}

// serveTelemetry binds addr and serves /metrics plus the net/http/pprof
// handlers in the background for the life of the process. It returns the
// bound address (useful with ":0").
func serveTelemetry(addr string, t *telemetry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("sweep: -listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", t.metrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "powerfail sweep telemetry\n\n/metrics      OpenMetrics exposition\n/debug/pprof  runtime profiles\n")
	})
	go http.Serve(ln, mux)
	return ln.Addr().String(), nil
}
