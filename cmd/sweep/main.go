// Command sweep regenerates the paper's tables and figures on the
// simulated platform. Each figure is a series of independent
// fault-injection experiments fanned out over a campaign worker pool; the
// output is a markdown table per figure with the same rows/series the
// paper plots, or the machine-readable campaign JSON.
//
// Usage:
//
//	sweep -set all -scale 0.2        # every figure at 20% of paper-size
//	sweep -set fig7 -scale 1         # Fig. 7 at full scale
//	sweep -set fig5 -parallel 8      # fan out over 8 workers
//	sweep -set fig5 -json            # emit the CampaignResult as JSON
//	sweep -set fig4                  # PSU discharge curves (no faults)
//	sweep -set tablei                # Table I inventory + per-drive runs
//
// Per-item reports depend only on each item's seed, never on -parallel:
// -parallel 8 produces the same tables as -parallel 1, just sooner.
// Ctrl-C cancels the campaign and prints the completed subset.
//
// Figure ids: tablei fig4 window fig5 fig6 seqrand fig7 fig8 fig9 ablation
// array erasure cache txn txn-streams trace fleet all; `sweep -list`
// enumerates them with titles and item counts. -figure is an alias for
// -set:
//
//	sweep -list                             # discover the registered figures
//	sweep -figure array -parallel 4 -json   # RAID-0/1/5 under correlated faults
//	sweep -figure erasure -parallel 4       # RAID-5/6/RS × member mix × cut severity
//	sweep -figure cache -scale 0.5          # write-back vs write-through SSD cache
//	sweep -figure txn -parallel 4           # WAL commits vs barrier policy and topology
//	sweep -figure txn-streams -parallel 4   # concurrent WAL streams + recovery-policy ablation
//	sweep -figure trace                     # bundled MSR-style traces through the pipeline
//	sweep -figure fleet -parallel 4         # fault-domain tree × spares × cut level, nines
//
// -trace replays an arbitrary MSR-style CSV block trace instead of a
// catalog figure, across the same topology × pacing matrix:
//
//	sweep -trace /data/msr/web_2.csv -parallel 4 -json
//
// Observability and process telemetry (all off by default; enabling them
// never changes experiment results):
//
//	sweep -figure fleet -progress            # live done/total, ETA, events/s on stderr
//	sweep -figure fleet -obs -v              # per-experiment metrics summaries
//	sweep -figure fleet -trace-out f.json    # merged Chrome trace for Perfetto
//	sweep -figure fig5 -cpuprofile cpu.pprof # CPU profile of the campaign
//	sweep -figure fig5 -memprofile mem.pprof # heap profile at exit
//	sweep -figure fig5 -listen :9090         # live /metrics (OpenMetrics) + /debug/pprof
//
// -progress writes to stderr, so `-json -progress` still emits clean JSON
// on stdout. -trace-out implies -obs; open the file at
// https://ui.perfetto.dev (one process track per experiment).
//
// Run archives (see DESIGN.md "Run store & differential reports"):
//
//	sweep -figure fig5 -journal fig5.run     # journal every item + final aggregates
//	sweep -figure fig5 -resume fig5.run      # resume: journaled items are not re-run
//	powerstat old.run new.run                # compare two archives, benchstat-style
//
// A journaled campaign appends each item's report to the archive as it
// completes, so an interrupted run (Ctrl-C, crash) keeps its finished
// items; -resume re-uses them byte-for-byte and the final output is
// identical to an uninterrupted run. -resume re-journals to the same
// file unless -journal names a different one.
//
// Sharded campaigns split one figure across machines (or CI jobs): each
// shard runs the items whose index ≡ i (mod n) with the seeds and item
// keys of the full campaign, and -merge re-aggregates the shard archives
// into output byte-identical to the unsharded run:
//
//	sweep -figure fleet -shard 0/2 -journal s0.run   # half the items
//	sweep -figure fleet -shard 1/2 -journal s1.run   # the other half
//	sweep -figure fleet -merge s0.run,s1.run -json   # == unsharded -json
//
// -merge must repeat the shard runs' -figure/-scale/-obs flags (item keys
// hash the full item spec); items missing from every shard run locally.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"powerfail"
	"powerfail/cmd/internal/obsflag"
	"powerfail/internal/sim"
	"powerfail/internal/ssd"
)

func main() {
	set := flag.String("set", "all", "figure id to regenerate (or 'all')")
	flag.StringVar(set, "figure", "all", "alias for -set")
	scale := flag.Float64("scale", 0.2, "fraction of the paper's fault counts")
	parallel := flag.Int("parallel", 1, "worker pool size (0 = GOMAXPROCS)")
	jsonOut := flag.Bool("json", false, "emit the CampaignResult as JSON instead of markdown")
	verbose := flag.Bool("v", false, "print every experiment report")
	list := flag.Bool("list", false, "list registered figure ids with titles and item counts, then exit")
	traceFile := flag.String("trace", "", "replay this MSR-style CSV block trace instead of a -figure catalog")
	progress := flag.Bool("progress", false, "live progress line on stderr (done/total, ETA, events/s)")
	obsOn := obsflag.Register()
	traceOut := flag.String("trace-out", "", "write a merged Chrome trace-event JSON file (implies -obs)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the campaign to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	journal := flag.String("journal", "", "journal the campaign to this run archive (resumable, powerstat-comparable)")
	resume := flag.String("resume", "", "resume from this run archive: journaled items are reused, not re-run")
	shardSpec := flag.String("shard", "", "run only shard i/n of the item list (format i/n); requires -journal")
	mergeSpec := flag.String("merge", "", "comma-separated shard archives to merge and re-aggregate (repeat the shards' -figure/-scale/-obs flags)")
	listen := flag.String("listen", "", "serve live telemetry on this address (/metrics OpenMetrics + /debug/pprof)")
	flag.Parse()

	if *list {
		printFigureList(*scale)
		return
	}

	if *parallel <= 0 {
		*parallel = runtime.GOMAXPROCS(0)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	if *traceFile != "" {
		// A trace run replaces the figure catalog; an explicit -set/-figure
		// alongside it would be silently discarded, so refuse the mix.
		explicitSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "set" || f.Name == "figure" {
				explicitSet = true
			}
		})
		if explicitSet {
			fmt.Fprintln(os.Stderr, "sweep: -trace replaces the figure catalog; drop -set/-figure")
			os.Exit(2)
		}
	}

	if *set == "fig4" {
		if *jsonOut {
			fmt.Fprintln(os.Stderr, "sweep: -json is not available for fig4 (discharge curves run no campaign)")
			os.Exit(2)
		}
		printFig4()
		return
	}
	var items []powerfail.CatalogItem
	if *traceFile != "" {
		tr, err := powerfail.ParseTraceFile(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "replaying %s\n", tr)
		items = powerfail.TraceItemsFor(tr, *scale)
	} else {
		if !*jsonOut {
			if *set == "tablei" || *set == "all" {
				printTableI()
			}
			if *set == "all" {
				printFig4()
			}
		}
		var err error
		items, err = powerfail.ItemsFor(*set, *scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	if cfg := obsflag.Configure(*obsOn || *traceOut != ""); cfg != nil {
		// One shared config: experiments read it, never write it. Each item
		// still builds its own independent registry and trace ring.
		for i := range items {
			items[i].Opts.Obs = cfg
		}
	}

	var tel *telemetry
	if *listen != "" {
		tel = newTelemetry(items)
		addr, err := serveTelemetry(*listen, tel)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "telemetry: http://%s/metrics (+ /debug/pprof)\n", addr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	var done int
	var events uint64
	copts := []powerfail.CampaignOption{
		powerfail.WithParallelism(*parallel),
		powerfail.WithProgress(func(res powerfail.CatalogResult) {
			done++
			if res.Report != nil {
				events += res.Report.Events
			}
			if tel != nil {
				tel.observe(res)
			}
			switch {
			case errors.Is(res.Err, context.Canceled):
				// Cancelled items were never run; one summary line suffices.
			case res.Err != nil:
				if *progress {
					fmt.Fprintln(os.Stderr)
				}
				fmt.Fprintf(os.Stderr, "FAIL %s/%s: %v\n", res.Item.Figure, res.Item.Label, res.Err)
			case *verbose && !*jsonOut:
				fmt.Printf("%s\n", res.Report)
			case *progress:
				printProgress(done, len(items), events, time.Since(start))
			default:
				fmt.Fprintf(os.Stderr, "done %s/%s (%.1fs wall)\n",
					res.Item.Figure, res.Item.Label, time.Since(start).Seconds())
			}
		}),
	}
	if *shardSpec != "" {
		if *mergeSpec != "" {
			fmt.Fprintln(os.Stderr, "sweep: -shard and -merge are mutually exclusive")
			os.Exit(2)
		}
		if *journal == "" {
			fmt.Fprintln(os.Stderr, "sweep: -shard requires -journal (the shard's output is its archive)")
			os.Exit(2)
		}
		var si, sn int
		if n, err := fmt.Sscanf(*shardSpec, "%d/%d", &si, &sn); n != 2 || err != nil || sn <= 0 || si < 0 || si >= sn {
			fmt.Fprintf(os.Stderr, "sweep: -shard %q: want i/n with 0 <= i < n\n", *shardSpec)
			os.Exit(2)
		}
		copts = append(copts, powerfail.WithShard(si, sn))
		fmt.Fprintf(os.Stderr, "shard %d/%d of %d items\n", si, sn, len(items))
	}
	if *mergeSpec != "" {
		if *resume != "" {
			fmt.Fprintln(os.Stderr, "sweep: -merge already resumes from the shard archives; drop -resume")
			os.Exit(2)
		}
		var archives []*powerfail.RunArchive
		for _, p := range strings.Split(*mergeSpec, ",") {
			a, aerr := powerfail.OpenRunArchive(strings.TrimSpace(p))
			if aerr != nil {
				fmt.Fprintln(os.Stderr, aerr)
				os.Exit(2)
			}
			archives = append(archives, a)
		}
		merged, merr := powerfail.MergeRunArchives(archives...)
		if merr != nil {
			fmt.Fprintln(os.Stderr, merr)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "merging %d shard archives (%d journaled items)\n",
			len(archives), merged.Completed())
		copts = append(copts, powerfail.WithResume(merged))
	}
	if *resume != "" {
		arch, aerr := powerfail.OpenRunArchive(*resume)
		if aerr != nil {
			fmt.Fprintln(os.Stderr, aerr)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "resuming from %s (%d journaled items)\n", *resume, arch.Completed())
		copts = append(copts, powerfail.WithResume(arch))
		if *journal == "" {
			// Re-journal over the same archive so the resumed run leaves a
			// complete one behind (the archive is fully in memory by now).
			*journal = *resume
		}
	}
	if *journal != "" {
		figID := *set
		if *traceFile != "" {
			figID = "trace"
		}
		copts = append(copts, powerfail.WithJournal(*journal, powerfail.NewRunManifest("sweep", figID, *scale)))
	}
	campaign := powerfail.NewCampaign(items, copts...)
	out, err := campaign.Run(ctx)
	if *progress {
		// Overwrite the live line with the completion summary the ETA line
		// was building toward: items, total wall time, sim-event rate.
		fmt.Fprintf(os.Stderr, "\r%-70s\n", fmt.Sprintf(
			"progress: %d/%d items done | total wall %.1fs | %s sim events/s",
			out.Completed, out.Items, out.WallTime.Seconds(), rate(out.EventsPerSec)))
	}
	if *traceOut != "" {
		if werr := writeChromeTrace(*traceOut, out); werr != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", werr)
			if err == nil {
				defer os.Exit(1)
			}
		} else {
			fmt.Fprintf(os.Stderr, "wrote Chrome trace to %s (open at https://ui.perfetto.dev)\n", *traceOut)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign: %v (%d/%d items completed)\n", err, out.Completed, out.Items)
	}
	if *journal != "" {
		fmt.Fprintf(os.Stderr, "run archive: %s\n", *journal)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		byFigure := map[string][]powerfail.CatalogResult{}
		var order []string
		for _, res := range out.Results {
			if errors.Is(res.Err, context.Canceled) {
				continue // only the completed subset makes the tables
			}
			if _, ok := byFigure[res.Item.Figure]; !ok {
				order = append(order, res.Item.Figure)
			}
			byFigure[res.Item.Figure] = append(byFigure[res.Item.Figure], res)
		}
		for _, fig := range order {
			printFigure(fig, byFigure[fig])
		}
		printSummaries(out)
		if *obsOn {
			// The merged per-figure metric dumps go to stderr, like every
			// other telemetry stream, so stdout stays pure markdown.
			for _, s := range out.Figures {
				obsflag.Dump(os.Stderr, "figure "+s.Figure, s.Obs)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "total wall time: %.1fs (simulated %.0fs, %d workers, %s sim events/s)\n",
		time.Since(start).Seconds(), out.SimTime.Seconds(), *parallel, rate(out.EventsPerSec))
	switch {
	case errors.Is(err, context.Canceled):
		os.Exit(130)
	case err != nil:
		os.Exit(1)
	}
}

// printProgress rewrites the live stderr status line: completed items,
// percentage, simulated-event throughput and a naive per-item-rate ETA.
func printProgress(done, total int, events uint64, elapsed time.Duration) {
	line := fmt.Sprintf("progress: %d/%d items (%d%%)", done, total, 100*done/total)
	if sec := elapsed.Seconds(); sec > 0 {
		line += fmt.Sprintf(" | %s events/s", rate(float64(events)/sec))
	}
	if done > 0 && done < total {
		eta := time.Duration(float64(elapsed) / float64(done) * float64(total-done)).Round(time.Second)
		line += fmt.Sprintf(" | eta %s", eta)
	}
	// Pad over any longer previous line before the carriage return.
	fmt.Fprintf(os.Stderr, "\r%-70s", line)
}

// rate renders an events-per-second figure compactly (12.3M, 456k, 789).
func rate(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.0fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// writeChromeTrace merges every completed item's structured trace into one
// Chrome trace-event JSON file, one process track per experiment.
func writeChromeTrace(path string, out *powerfail.CampaignResult) error {
	var procs []powerfail.ObsProcess
	for _, res := range out.Results {
		if res.Err != nil || res.Report == nil || len(res.Report.ObsTrace) == 0 {
			continue
		}
		procs = append(procs, powerfail.ObsProcess{
			Name:   res.Item.Figure + "/" + res.Item.Label,
			Events: res.Report.ObsTrace,
		})
	}
	if len(procs) == 0 {
		return fmt.Errorf("trace-out: no structured trace events captured (did every item fail?)")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := powerfail.WriteObsChromeTrace(f, procs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func printSummaries(out *powerfail.CampaignResult) {
	fmt.Printf("\n## Campaign summary\n\n")
	fmt.Printf("| figure | items | faults | data failures | FWA | IO errors | loss/fault mean ± 95%% CI |\n")
	fmt.Printf("|---|---:|---:|---:|---:|---:|---:|\n")
	for _, s := range out.Figures {
		fmt.Printf("| %s | %d/%d | %d | %d | %d | %d | %.2f ± %.2f |\n",
			s.Figure, s.Completed, s.Items, s.Faults, s.DataFailures, s.FWA, s.IOErrors,
			s.LossPerFault.Mean, s.LossPerFault.CI95)
	}
}

// printFigureList is the -list output: every registered campaign figure
// with its title and item count, plus the campaign-less fig4.
func printFigureList(scale float64) {
	fmt.Printf("%-10s %6s  %s\n", "figure", "items", "title")
	for _, fi := range powerfail.Figures(scale) {
		fmt.Printf("%-10s %6d  %s\n", fi.ID, fi.Items, fi.Title)
	}
	fmt.Printf("%-10s %6s  %s\n", "fig4", "-", "Fig. 4 — PSU discharge curves (no campaign)")
	fmt.Printf("%-10s %6s  %s\n", "all", "", "every campaign figure above")
	fmt.Printf("\nitem counts at -scale %g\n", scale)
}

func printFigure(fig string, results []powerfail.CatalogResult) {
	fmt.Printf("\n## %s\n\n", powerfail.FigureTitle(fig))
	txnMode := false
	for _, res := range results {
		if res.Err == nil && res.Report != nil && res.Report.TxnStats != nil {
			txnMode = true
			break
		}
	}
	if txnMode {
		// The last three columns are the recovery-policy ablation: what a
		// strict first-tear-stops log scan would lose on the same observed
		// state, and how many of those losses were durable on media but
		// unreachable behind the tear.
		fmt.Printf("| point | faults | committed | intact | lost-commit | torn | out-of-order | unacked | scan pages/fault | strict-lost | strict-torn | unreachable |\n")
		fmt.Printf("|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n")
		for _, res := range results {
			if res.Err != nil {
				fmt.Printf("| %s | ERROR: %v |\n", res.Item.Label, res.Err)
				continue
			}
			r, s := res.Report, res.Report.TxnStats
			scanPerFault := 0.0
			if r.Faults > 0 {
				scanPerFault = float64(s.ScanPages) / float64(r.Faults)
			}
			strict := r.TxnPolicy(powerfail.StrictScanRecovery)
			fmt.Printf("| %s | %d | %d | %d | %d | %d | %d | %d | %.0f | %d | %d | %d |\n",
				res.Item.Label, r.Faults, s.Committed, s.Intact, s.LostCommits,
				s.Torn, s.OutOfOrder, s.Unacked, scanPerFault,
				strict.LostCommits+strict.OutOfOrder, strict.Torn, r.TxnUnreachable())
		}
		return
	}
	fleetMode := false
	for _, res := range results {
		if res.Err == nil && res.Report != nil && res.Report.Fleet != nil {
			fleetMode = true
			break
		}
	}
	if fleetMode {
		// Availability nines count up+degraded intervals; durability nines
		// come from bytes lost when a group exceeds its redundancy.
		fmt.Printf("| point | cuts | declared | transient | spare takes | shortages | rebuilds | rebuild MiB | avail 9s | durab 9s | losses |\n")
		fmt.Printf("|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n")
		for _, res := range results {
			if res.Err != nil {
				fmt.Printf("| %s | ERROR: %v |\n", res.Item.Label, res.Err)
				continue
			}
			s := res.Report.Fleet
			rebuildMiB := float64(s.RebuildReadBytes+s.RebuildWriteBytes) / (1 << 20)
			fmt.Printf("| %s | %d | %d | %d | %d | %d | %d/%d | %.1f | %.2f | %.2f | %d |\n",
				res.Item.Label, s.Cuts, s.DeclaredFailures, s.TransientRecoveries,
				s.SpareTakes, s.SpareShortages, s.RebuildCompleted, s.RebuildWindows,
				rebuildMiB, s.AvailabilityNines, s.DurabilityNines, s.LossEvents)
		}
		return
	}
	traceMode := false
	for _, res := range results {
		if res.Err == nil && res.Report != nil && res.Report.TraceStats != nil {
			traceMode = true
			break
		}
	}
	if traceMode {
		fmt.Printf("| point | faults | data failures | FWA | IO errors | loss/fault | replayed | coverage | laps |\n")
		fmt.Printf("|---|---:|---:|---:|---:|---:|---:|---:|---:|\n")
		for _, res := range results {
			if res.Err != nil {
				fmt.Printf("| %s | ERROR: %v |\n", res.Item.Label, res.Err)
				continue
			}
			r, s := res.Report, res.Report.TraceStats
			fmt.Printf("| %s | %d | %d | %d | %d | %.2f | %d | %.0f%% | %d |\n",
				res.Item.Label, r.Faults, r.Counters.DataFailures, r.Counters.FWA,
				r.Counters.IOErrors, r.DataLossPerFault, s.Replayed, 100*s.Coverage, s.Laps)
		}
		return
	}
	fmt.Printf("| point | faults | data failures | FWA | IO errors | data loss/fault | responded IOPS |\n")
	fmt.Printf("|---|---:|---:|---:|---:|---:|---:|\n")
	for _, res := range results {
		if res.Err != nil {
			fmt.Printf("| %s | ERROR: %v |\n", res.Item.Label, res.Err)
			continue
		}
		r := res.Report
		fmt.Printf("| %s | %d | %d | %d | %d | %.2f | %.0f |\n",
			res.Item.Label, r.Faults, r.Counters.DataFailures, r.Counters.FWA,
			r.Counters.IOErrors, r.DataLossPerFault, r.RespondedIOPS)
	}
}

func printTableI() {
	fmt.Printf("\n## Table I — SSDs under test\n\n")
	fmt.Printf("| SSD | Size (GB) | Interface | Internal cache | ECC | Cell | Release year |\n")
	fmt.Printf("|---|---:|---|---|---|---|---|\n")
	for _, p := range ssd.Profiles() {
		cache := "No"
		if p.HasCache {
			cache = fmt.Sprintf("Yes (%d MB)", p.CacheMB)
		}
		year := "NA"
		if p.ReleaseYear > 0 {
			year = fmt.Sprintf("%d", p.ReleaseYear)
		}
		fmt.Printf("| %s | %d | %s | %s | %s (%d b/KB) | %s | %s |\n",
			p.Name, p.CapacityGB, p.Interface, cache, p.ECC.Scheme, p.ECC.CorrectPerKB,
			p.Cell, year)
	}
}

func printFig4() {
	fmt.Printf("\n## Fig. 4 — PSU output voltage during the discharge phase\n\n")
	for _, withSSD := range []bool{false, true} {
		label := "(a) no device attached"
		if withSSD {
			label = "(b) one SSD attached"
		}
		curve, brownout := powerfail.DischargeCurve(withSSD, 100*sim.Millisecond, 1600*sim.Millisecond)
		fmt.Printf("%s:\n\n| t (ms) | V |\n|---:|---:|\n", label)
		for _, pt := range curve {
			fmt.Printf("| %.0f | %.2f |\n", pt.T.Millis(), pt.V)
		}
		if withSSD {
			fine, b := powerfail.DischargeCurve(true, sim.Millisecond, 100*sim.Millisecond)
			_ = fine
			fmt.Printf("\nSSD brownout (4.5 V) crossing: %.0f ms after the cut\n", b.Millis())
		} else {
			_ = brownout
		}
		fmt.Println()
	}
}
