// Command blkreport is the repository's btt equivalent: it consumes a
// block-layer trace and produces the per-IO dump and summary the paper's
// analyzer is built on. It can also generate a demonstration trace by
// running a short workload against a simulated drive.
//
// Event logs use the unified powerfail-events v2 format (integer-ns
// timestamps, block and structured observability events interleaved on
// one clock; see internal/obs). Legacy headerless float-seconds logs are
// rejected with a hint; re-parse them with -legacy.
//
// Usage:
//
//	blkreport -demo                 # run a workload, print per-IO dump
//	blkreport -demo -events         # print the unified event log instead
//	blkreport < events.log          # summarize a saved unified event log
//	blkreport -timeline < events.log  # readable timeline of obs events
//	blkreport -legacy < old.log     # summarize a pre-v2 float-seconds log
//	blkreport -per-io < dump.txt    # summarize a saved per-IO dump
//	blkreport -validate-chrome f.json # check a Chrome trace-event export
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"powerfail/internal/addr"
	"powerfail/internal/blktrace"
	"powerfail/internal/blockdev"
	"powerfail/internal/content"
	"powerfail/internal/obs"
	"powerfail/internal/power"
	"powerfail/internal/sim"
	"powerfail/internal/ssd"
)

func main() {
	demo := flag.Bool("demo", false, "generate a demonstration trace")
	events := flag.Bool("events", false, "with -demo: print the unified event log instead of the per-IO dump")
	perIO := flag.Bool("per-io", false, "parse stdin as a per-IO dump rather than an event log")
	legacy := flag.Bool("legacy", false, "parse stdin as a pre-v2 headerless float-seconds event log")
	timeline := flag.Bool("timeline", false, "print a readable timeline of the structured obs events on stdin")
	validateChrome := flag.String("validate-chrome", "", "validate a Chrome trace-event JSON file and exit")
	flag.Parse()

	if *validateChrome != "" {
		f, err := os.Open(*validateChrome)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		n, err := obs.ValidateChromeTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "blkreport: %s: %v\n", *validateChrome, err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid Chrome trace, %d events\n", *validateChrome, n)
		return
	}

	if *demo {
		runDemo(*events)
		return
	}

	var ios []*blktrace.IO
	switch {
	case *perIO:
		parsed, err := blktrace.ParsePerIO(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ios = parsed
	case *legacy:
		evs, err := blktrace.ParseEvents(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ios = blktrace.Assemble(evs)
	default:
		obsEvents, blkEvents, err := obs.ReadUnifiedEvents(os.Stdin)
		if errors.Is(err, obs.ErrLegacyFormat) {
			fmt.Fprintf(os.Stderr, "blkreport: %v\nhint: re-run with -legacy to parse the old headerless float-seconds format\n", err)
			os.Exit(2)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *timeline {
			must(obs.WriteTimeline(os.Stdout, obsEvents))
			return
		}
		ios = blktrace.Assemble(blkEvents)
		if n := len(obsEvents); n > 0 {
			fmt.Printf("obs events=%d (use -timeline for the event timeline)\n", n)
		}
	}
	printSummary(ios)
}

func runDemo(rawEvents bool) {
	k := sim.New()
	rng := sim.NewRNG(1)
	psu, err := power.New(k, power.DefaultConfig())
	must(err)
	prof := ssd.ProfileA()
	prof.CapacityGB = 4
	dev, err := ssd.New(k, rng, prof, psu)
	must(err)
	tracer := blktrace.NewTracer()
	host, err := blockdev.New(k, dev, tracer, blockdev.DefaultConfig())
	must(err)
	set := obs.NewSet(obs.Config{Metrics: true, Trace: true})
	host.Observe(set.Scope("blockdev"))

	// A short mixed workload, with a power fault in the middle so the
	// dump shows errored and incomplete IOs too.
	for i := 0; i < 12; i++ {
		data := content.Random(rng, 1+rng.Intn(256))
		lpn := addr.LPN(rng.Intn(1 << 18))
		host.Submit(&blockdev.Request{Op: blockdev.OpWrite, LPN: lpn, Pages: data.Pages(), Data: data, Done: func(*blockdev.Request) {}})
	}
	k.RunFor(20 * sim.Millisecond)
	psu.PowerOff()
	for i := 0; i < 4; i++ {
		data := content.Random(rng, 8)
		host.Submit(&blockdev.Request{Op: blockdev.OpWrite, LPN: 4096, Pages: 8, Data: data, Done: func(*blockdev.Request) {}})
		k.RunFor(30 * sim.Millisecond)
	}
	k.RunFor(2 * sim.Second)

	if rawEvents {
		must(obs.WriteUnifiedEvents(os.Stdout, set.TraceEvents(), tracer.Events()))
		return
	}
	ios := blktrace.Assemble(tracer.Events())
	must(blktrace.DumpPerIO(os.Stdout, ios))
	fmt.Println()
	printSummary(ios)
}

func printSummary(ios []*blktrace.IO) {
	s := blktrace.Summarize(ios)
	fmt.Printf("ios=%d completed=%d errored=%d timedout=%d rejected=%d reads=%d writes=%d\n",
		s.IOs, s.Completed, s.Errored, s.TimedOut, s.Rejected, s.Reads, s.Writes)
	fmt.Printf("q2c avg=%s max=%s\n", s.AvgQ2C, s.MaxQ2C)
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
