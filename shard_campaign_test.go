package powerfail_test

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"powerfail"
)

// runShards executes an n-way sharded, journaled campaign over items and
// returns the loaded shard archives, verifying along the way that the
// shards partition the item set exactly.
func runShards(t *testing.T, items []powerfail.CatalogItem, parallelism, shards int) []*powerfail.RunArchive {
	t.Helper()
	dir := t.TempDir()
	var archives []*powerfail.RunArchive
	seen := map[string]int{}
	total := 0
	for s := 0; s < shards; s++ {
		path := filepath.Join(dir, fmt.Sprintf("shard%d.run", s))
		out, err := powerfail.NewCampaign(items,
			powerfail.WithParallelism(parallelism),
			powerfail.WithShard(s, shards),
			powerfail.WithJournal(path, powerfail.NewRunManifest("test", items[0].Figure, 0)),
		).Run(context.Background())
		if err != nil {
			t.Fatalf("shard %d/%d: %v", s, shards, err)
		}
		wantItems := 0
		for i := range items {
			if i%shards == s {
				wantItems++
			}
		}
		if out.Items != wantItems || out.Completed != wantItems {
			t.Fatalf("shard %d/%d ran %d/%d items, want %d", s, shards, out.Completed, out.Items, wantItems)
		}
		arch, err := powerfail.OpenRunArchive(path)
		if err != nil {
			t.Fatal(err)
		}
		if arch.Manifest.Shard != s || arch.Manifest.ShardCount != shards {
			t.Fatalf("shard %d/%d manifest marker = %d/%d", s, shards, arch.Manifest.Shard, arch.Manifest.ShardCount)
		}
		if len(arch.Manifest.Items) != len(items) {
			t.Fatalf("shard manifest lists %d items, want the full campaign's %d", len(arch.Manifest.Items), len(items))
		}
		if arch.Final == nil {
			t.Fatalf("completed shard %d/%d has no final record", s, shards)
		}
		for _, rec := range arch.Items {
			seen[rec.Key]++
		}
		total += len(arch.Items)
		archives = append(archives, arch)
	}
	if total != len(items) {
		t.Fatalf("shards journaled %d records in total, want %d", total, len(items))
	}
	for i, it := range items {
		if n := seen[powerfail.ItemKey(it)]; n != 1 {
			t.Fatalf("item %d journaled by %d shards, want exactly 1", i, n)
		}
	}
	return archives
}

// TestCampaignShardMergeByteIdentical is the acceptance criterion: run a
// figure as N journaled shards, merge the archives, and a campaign
// resumed from the merge emits JSON byte-identical to the unsharded run
// — at parallelism 1 and 8, even and uneven shard counts, with obs
// summaries riding along.
func TestCampaignShardMergeByteIdentical(t *testing.T) {
	for _, parallelism := range []int{1, 8} {
		for _, shards := range []int{2, 3} {
			t.Run(fmt.Sprintf("parallel=%d/shards=%d", parallelism, shards), func(t *testing.T) {
				items := obsItems(t, "fig5", 0.02, 0) // 5 items: 3 shards split unevenly
				full, err := powerfail.NewCampaign(items,
					powerfail.WithParallelism(parallelism),
				).Run(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				want := campaignJSON(t, full)

				archives := runShards(t, items, parallelism, shards)
				merged, err := powerfail.MergeRunArchives(archives...)
				if err != nil {
					t.Fatal(err)
				}
				if merged.Manifest.ShardCount != 0 {
					t.Fatalf("merged manifest still carries shard marker %d/%d",
						merged.Manifest.Shard, merged.Manifest.ShardCount)
				}
				out, err := powerfail.NewCampaign(items,
					powerfail.WithParallelism(parallelism),
					powerfail.WithResume(merged),
				).Run(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				for i, res := range out.Results {
					if !res.Reused {
						t.Fatalf("item %d re-ran after a full shard merge", i)
					}
				}
				if got := campaignJSON(t, out); got != want {
					t.Fatalf("merged campaign JSON differs from unsharded run\nmerged %d bytes, want %d",
						len(got), len(want))
				}
			})
		}
	}
}

// TestCampaignShardEmpty: more shards than items leaves some shards with
// zero work; they still journal valid, finalized, mergeable archives and
// the merge of all shards reproduces the unsharded output.
func TestCampaignShardEmpty(t *testing.T) {
	items := obsItems(t, "fig5", 0.02, 2)
	shards := len(items) + 1 // the last shard runs nothing

	full, err := powerfail.NewCampaign(items).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := campaignJSON(t, full)

	archives := runShards(t, items, 2, shards)
	empty := archives[len(archives)-1]
	if len(empty.Items) != 0 || empty.Final == nil || empty.Final.Items != 0 {
		t.Fatalf("empty shard archive: %d records, final %+v", len(empty.Items), empty.Final)
	}

	merged, err := powerfail.MergeRunArchives(archives...)
	if err != nil {
		t.Fatal(err)
	}
	out, err := powerfail.NewCampaign(items, powerfail.WithResume(merged)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := campaignJSON(t, out); got != want {
		t.Fatal("merge including an empty shard differs from unsharded run")
	}
}

// TestCampaignShardOutOfRange: an invalid shard index fails Run up front
// instead of silently running nothing.
func TestCampaignShardOutOfRange(t *testing.T) {
	items := smallItems(t, "fig5", 0.02)
	for _, bad := range [][2]int{{2, 2}, {-1, 2}} {
		_, err := powerfail.NewCampaign(items,
			powerfail.WithShard(bad[0], bad[1]),
		).Run(context.Background())
		if err == nil {
			t.Fatalf("shard %d/%d: Run returned nil error", bad[0], bad[1])
		}
	}
}
