// Discharge plots the PSU's output voltage after a cut (the paper's
// Fig. 4) as ASCII, with and without an SSD attached, and marks the 4.5 V
// brownout crossing the drive experiences roughly 40 ms after the cut.
package main

import (
	"fmt"
	"strings"

	"powerfail"
	"powerfail/internal/sim"
)

func main() {
	fmt.Println("PSU 5 V rail during the discharge phase (Fig. 4)")
	for _, withSSD := range []bool{false, true} {
		label := "(a) no device attached"
		if withSSD {
			label = "(b) one SSD attached"
		}
		curve, _ := powerfail.DischargeCurve(withSSD, 50*sim.Millisecond, 1500*sim.Millisecond)
		fmt.Printf("\n%s\n", label)
		for _, pt := range curve {
			bar := strings.Repeat("#", int(pt.V*12))
			fmt.Printf("%6.0f ms | %-62s %.2f V\n", pt.T.Millis(), bar, pt.V)
		}
	}
	_, brownout := powerfail.DischargeCurve(true, sim.Millisecond, 100*sim.Millisecond)
	fmt.Printf("\nWith the SSD attached the rail crosses 4.5 V (host link loss) %.0f ms after the cut;\n", brownout.Millis())
	fmt.Println("the paper measures ~40 ms, ~900 ms to full discharge loaded, ~1400 ms unloaded.")
}
