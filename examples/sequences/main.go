// Sequences reproduces the paper's Fig. 9 experiment at small scale: pairs
// of accesses where the second request targets the first one's address
// (RAR, RAW, WAR, WAW). WAW is the most vulnerable pattern — a fault can
// corrupt both the new write and the previously written data at that
// address — while RAR never loses data. The four points run as one
// campaign: fanned out over workers, streamed as they finish, reported in
// sweep order.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"runtime"

	"powerfail"
)

func main() {
	items := powerfail.Fig9Items(0.14) // ~40 faults per point
	fmt.Printf("Impact of access sequences (Fig. 9, scaled): %d faults per point\n",
		items[0].Spec.Faults)

	out, err := powerfail.NewCampaign(items,
		powerfail.WithParallelism(runtime.GOMAXPROCS(0)),
		powerfail.WithProgress(func(res powerfail.CatalogResult) {
			fmt.Fprintf(os.Stderr, "finished %s\n", res.Item.Label)
		}),
		powerfail.WithFailFast(),
	).Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-6s %-14s %-6s %-10s %-12s\n", "mode", "data failures", "FWA", "IO errors", "loss/fault")
	for _, res := range out.Results {
		rep := res.Report
		fmt.Printf("%-6s %-14d %-6d %-10d %-12.2f\n",
			res.Item.Label, rep.DataFailures(), rep.FWA(), rep.IOErrors(), rep.DataLossPerFault)
	}
	fmt.Println("\nExpected ordering: WAW >> RAW ~ WAR > RAR = 0.")
}
