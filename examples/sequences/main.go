// Sequences reproduces the paper's Fig. 9 experiment at small scale: pairs
// of accesses where the second request targets the first one's address
// (RAR, RAW, WAR, WAW). WAW is the most vulnerable pattern — a fault can
// corrupt both the new write and the previously written data at that
// address — while RAR never loses data.
package main

import (
	"fmt"
	"log"

	"powerfail"
)

func main() {
	fmt.Println("Impact of access sequences (Fig. 9, scaled): 40 faults per point")
	fmt.Printf("%-6s %-14s %-6s %-10s %-12s\n", "mode", "data failures", "FWA", "IO errors", "loss/fault")
	for _, mode := range []powerfail.SeqMode{powerfail.RAW, powerfail.WAR, powerfail.RAR, powerfail.WAW} {
		w := powerfail.DefaultWorkload()
		w.Sequence = mode
		rep, err := powerfail.Run(
			powerfail.Options{Seed: uint64(7 + int(mode)), Profile: powerfail.ProfileA()},
			powerfail.Experiment{
				Name:             mode.String(),
				Workload:         w,
				Faults:           40,
				RequestsPerFault: 16,
			},
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s %-14d %-6d %-10d %-12.2f\n",
			mode, rep.DataFailures(), rep.FWA(), rep.IOErrors(), rep.DataLossPerFault)
	}
	fmt.Println("\nExpected ordering: WAW >> RAW ~ WAR > RAR = 0.")
}
