// Txncompare runs the transactional WAL application layer under identical
// power-fault schedules and contrasts what the crash-consistency oracle
// reports across the commit-barrier × device matrix:
//
//   - flush-per-commit on the SSD: the barrier closes the volatile-cache
//     window, so every acknowledged transaction survives — at the price of
//     one flush per commit.
//   - no-flush on the SSD: commits acknowledge out of DRAM; after the cut
//     the oracle finds lost commits (the application-level false write
//     acknowledge) and, when the flusher raced ahead, out-of-order
//     durability.
//   - the same two policies on a write-through HDD: the mechanical ACK
//     already implies durability, so even no-flush loses nothing — the
//     paper's block-level contrast, reproduced at transaction granularity.
package main

import (
	"fmt"
	"log"

	"powerfail"
)

func run(name string, opts powerfail.Options) *powerfail.Report {
	rep, err := powerfail.Run(opts, powerfail.Experiment{
		Name:             name,
		Faults:           10,
		RequestsPerFault: 20,
	})
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	if rep.TxnStats == nil {
		log.Fatalf("%s: no TxnStats in the report", name)
	}
	return rep
}

func main() {
	ssdProf := powerfail.ProfileA()
	ssdProf.CapacityGB = 8
	hddTopo := powerfail.HDDTopology(powerfail.DefaultHDD())

	type point struct {
		name string
		opts powerfail.Options
	}
	var points []point
	for _, bar := range []struct {
		tag string
		b   powerfail.TxnBarrier
	}{
		{"flush-per-commit", powerfail.FlushPerCommit},
		{"no-flush", powerfail.NoFlushBarrier},
	} {
		cfg := powerfail.DefaultTxnConfig()
		cfg.Barrier = bar.b
		points = append(points,
			point{bar.tag + " / SSD", powerfail.Options{Seed: 7, Profile: ssdProf, App: powerfail.TxnApp(cfg)}},
			point{bar.tag + " / HDD", powerfail.Options{Seed: 7, Topology: hddTopo, App: powerfail.TxnApp(cfg)}},
		)
	}

	fmt.Println("WAL transactions under identical fault schedules (10 cuts each):")
	fmt.Printf("%-24s %-10s %-8s %-12s %-6s %-13s %-8s\n",
		"configuration", "committed", "intact", "lost-commit", "torn", "out-of-order", "unacked")
	var ssdNoFlushLost, flushLost int64
	for _, pt := range points {
		s := run(pt.name, pt.opts).TxnStats
		fmt.Printf("%-24s %-10d %-8d %-12d %-6d %-13d %-8d\n",
			pt.name, s.Committed, s.Intact, s.LostCommits, s.Torn, s.OutOfOrder, s.Unacked)
		switch pt.name {
		case "no-flush / SSD":
			ssdNoFlushLost = s.Losses()
		case "flush-per-commit / SSD", "flush-per-commit / HDD":
			flushLost += s.Losses()
		}
	}

	fmt.Println("\nThe flush barrier buys the WAL contract on volatile-cache flash;")
	fmt.Println("the write-through disk gets it for free; skipping the barrier on the")
	fmt.Println("SSD turns acknowledged commits into application-visible losses.")
	if flushLost != 0 {
		log.Fatal("BUG: flush-per-commit lost acknowledged transactions")
	}
	if ssdNoFlushLost == 0 {
		log.Fatal("BUG: no-flush on a volatile-cache SSD lost nothing")
	}
}
