// Hddcompare runs the same power-fault schedule against the simulated SSD
// and a write-through hard disk through the public Topology API. The HDD's
// mechanical, write-through path acknowledges only durable data, so it
// loses nothing it ACKed (at most it tears the single sector under the
// head, which is never acknowledged); the SSD loses acknowledged writes
// from its volatile cache and mapping table.
package main

import (
	"fmt"
	"log"

	"powerfail"
)

func main() {
	w := powerfail.Workload{
		Name:     "rand-write-4-64k",
		WSSBytes: 1 << 30,
		MinSize:  4 << 10,
		MaxSize:  64 << 10,
	}
	spec := powerfail.Experiment{
		Name:             "hddcompare",
		Workload:         w,
		Faults:           12,
		RequestsPerFault: 10,
	}

	ssdProf := powerfail.ProfileA()
	ssdProf.CapacityGB = 8
	ssdRep, err := powerfail.Run(powerfail.Options{Seed: 11, Profile: ssdProf}, spec)
	if err != nil {
		log.Fatal(err)
	}
	hddRep, err := powerfail.Run(powerfail.Options{
		Seed:     11,
		Topology: powerfail.HDDTopology(powerfail.DefaultHDD()),
	}, spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Identical fault schedules, 4-64 KiB random writes:")
	fmt.Printf("%-22s %-8s %-18s %-10s\n", "drive", "acked", "acked-then-lost", "io errors")
	for _, r := range []struct {
		name string
		rep  *powerfail.Report
	}{
		{"SSD A (write cache)", ssdRep},
		{"HDD (write-through)", hddRep},
	} {
		fmt.Printf("%-22s %-8d %-18d %-10d\n",
			r.name, r.rep.Completed, r.rep.DataLosses(), r.rep.IOErrors())
	}
	if hddRep.HDDStats != nil {
		fmt.Printf("\nHDD mechanics: %d torn sectors (in-flight at the cut, never ACKed), %d spin-ups\n",
			hddRep.HDDStats.TornSectors, hddRep.HDDStats.Recoveries)
	}
	fmt.Println("\nThe write-through disk never loses acknowledged data; the SSD does —")
	fmt.Println("the paper's core reliability concern with flash under power faults.")
	if hddRep.DataLosses() != 0 {
		log.Fatal("BUG: the write-through HDD lost acknowledged data")
	}
}
