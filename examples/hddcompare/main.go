// Hddcompare runs the same power-fault schedule against the simulated SSD
// and a write-through hard disk on the platform's block layer. The HDD's
// mechanical, write-through path acknowledges only durable data, so it
// loses nothing it ACKed (at most it tears the single sector under the
// head, which is never acknowledged); the SSD loses acknowledged writes
// from its volatile cache and mapping table.
package main

import (
	"fmt"
	"log"

	"powerfail/internal/addr"
	"powerfail/internal/blockdev"
	"powerfail/internal/content"
	"powerfail/internal/hdd"
	"powerfail/internal/power"
	"powerfail/internal/sim"
	"powerfail/internal/ssd"
)

const (
	faults        = 20
	writesPerCyle = 10
)

type result struct {
	acked, lost, ioErrors int
}

func main() {
	ssdRes := run("ssd")
	hddRes := run("hdd")
	fmt.Println("Identical fault schedules, 4-64 KiB random writes:")
	fmt.Printf("%-22s %-8s %-18s %-10s\n", "drive", "acked", "acked-then-lost", "io errors")
	fmt.Printf("%-22s %-8d %-18d %-10d\n", "SSD A (write cache)", ssdRes.acked, ssdRes.lost, ssdRes.ioErrors)
	fmt.Printf("%-22s %-8d %-18d %-10d\n", "HDD (write-through)", hddRes.acked, hddRes.lost, hddRes.ioErrors)
	fmt.Println("\nThe write-through disk never loses acknowledged data; the SSD does —")
	fmt.Println("the paper's core reliability concern with flash under power faults.")
	if hddRes.lost != 0 {
		log.Fatal("BUG: the write-through HDD lost acknowledged data")
	}
}

func run(kind string) result {
	k := sim.New()
	rng := sim.NewRNG(11)
	psu, err := power.New(k, power.DefaultConfig())
	must(err)

	var dev blockdev.Device
	switch kind {
	case "hdd":
		d, err := hdd.New(k, rng.Fork("hdd"), hdd.DefaultProfile(), psu)
		must(err)
		dev = d
	default:
		prof := ssd.ProfileA()
		prof.CapacityGB = 8
		d, err := ssd.New(k, rng.Fork("ssd"), prof, psu)
		must(err)
		dev = d
	}
	host, err := blockdev.New(k, dev, nil, blockdev.DefaultConfig())
	must(err)

	type packet struct {
		lpn   addr.LPN
		data  content.Data
		acked bool
	}
	var res result
	wrng := rng.Fork("workload")
	for cycle := 0; cycle < faults; cycle++ {
		var packets []*packet
		for i := 0; i < writesPerCyle; i++ {
			pages := 1 + wrng.Intn(16)
			p := &packet{lpn: addr.LPN(wrng.Intn(1 << 18)), data: content.Random(wrng, pages)}
			packets = append(packets, p)
			done := false
			host.Submit(&blockdev.Request{Op: blockdev.OpWrite, LPN: p.lpn, Pages: pages, Data: p.data,
				Done: func(r *blockdev.Request) {
					if r.Err == nil {
						p.acked = true
						res.acked++
					} else {
						res.ioErrors++
					}
					done = true
				}})
			k.RunWhile(func() bool { return !done })
		}
		// Fault right after the last ACK, then restore.
		psu.PowerOff()
		k.RunFor(2 * sim.Second)
		psu.PowerOn()
		k.RunFor(4 * sim.Second)
		// Verify every acknowledged packet.
		for _, p := range packets {
			if !p.acked {
				continue
			}
			var got content.Data
			done := false
			host.Submit(&blockdev.Request{Op: blockdev.OpRead, LPN: p.lpn, Pages: p.data.Pages(),
				Done: func(r *blockdev.Request) {
					got = r.Result
					done = true
				}})
			k.RunWhile(func() bool { return !done })
			if !got.Equal(p.data) {
				res.lost++
			}
		}
	}
	return res
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
