// Requesttype sweeps the read/write mix of the workload (the paper's
// Fig. 5 experiment, scaled down) as a parallel campaign: the five points
// are independent experiments, so they fan out over a worker pool and the
// table still comes back in sweep order, with a confidence interval on the
// figure's loss rate. As the share of reads grows, data losses fall, and a
// fully-read workload shows only IO errors.
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"

	"powerfail"
)

func main() {
	items := powerfail.Fig5Items(0.1) // 30 faults per point
	fmt.Printf("Impact of request type (Fig. 5, scaled): %d faults per point, %d workers\n",
		items[0].Spec.Faults, runtime.GOMAXPROCS(0))

	out, err := powerfail.NewCampaign(items,
		powerfail.WithParallelism(runtime.GOMAXPROCS(0)),
		powerfail.WithBaseSeed(100),
		powerfail.WithFailFast(),
	).Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-8s %-14s %-6s %-10s %-12s\n", "read%", "data failures", "FWA", "IO errors", "loss/fault")
	for _, res := range out.Results {
		rep := res.Report
		fmt.Printf("%-8.0f %-14d %-6d %-10d %-12.2f\n",
			res.Item.X, rep.DataFailures(), rep.FWA(), rep.IOErrors(), rep.DataLossPerFault)
	}
	s := out.Figures[0]
	fmt.Printf("\nfigure loss/fault: %.2f ± %.2f (95%% CI over %d points), simulated %.0fs in %.1fs wall\n",
		s.LossPerFault.Mean, s.LossPerFault.CI95, s.LossPerFault.N,
		out.SimTime.Seconds(), out.WallTime.Seconds())
	fmt.Println("\nExpected shape: losses shrink as reads displace writes;")
	fmt.Println("at 100% reads only IO errors remain (disk unavailability).")
}
