// Requesttype sweeps the read/write mix of the workload (the paper's
// Fig. 5 experiment, scaled down): as the share of reads grows, data
// losses fall, and a fully-read workload shows only IO errors.
package main

import (
	"fmt"
	"log"

	"powerfail"
)

func main() {
	fmt.Println("Impact of request type (Fig. 5, scaled): 30 faults per point")
	fmt.Printf("%-8s %-14s %-6s %-10s %-12s\n", "read%", "data failures", "FWA", "IO errors", "loss/fault")
	for _, readPct := range []int{0, 20, 50, 80, 100} {
		w := powerfail.DefaultWorkload()
		w.ReadPct = readPct
		rep, err := powerfail.Run(
			powerfail.Options{Seed: uint64(100 + readPct), Profile: powerfail.ProfileA()},
			powerfail.Experiment{
				Name:             fmt.Sprintf("read%d", readPct),
				Workload:         w,
				Faults:           30,
				RequestsPerFault: 16,
			},
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %-14d %-6d %-10d %-12.2f\n",
			readPct, rep.DataFailures(), rep.FWA(), rep.IOErrors(), rep.DataLossPerFault)
	}
	fmt.Println("\nExpected shape: losses shrink as reads displace writes;")
	fmt.Println("at 100% reads only IO errors remain (disk unavailability).")
}
