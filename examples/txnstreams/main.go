// Txnstreams runs the multi-stream WAL under identical power-fault
// schedules and contrasts two things the single-stream engine cannot
// show:
//
//   - Commit interleaving: with 8 streams issuing through the same host
//     queue, commit records from different streams mix on the device, so
//     a cut strands a different — usually larger — set of acknowledged
//     transactions than the one-stream pipeline, and out-of-order
//     durability can span streams.
//   - The recovery-policy ablation: every report judges the same
//     observed post-fault state under both a hole-tolerant replay (the
//     best any recovery could do) and a strict first-tear-stops scan.
//     The difference is the durable-but-unreachable commits — data the
//     device kept but a classic sequential log scan abandons.
package main

import (
	"fmt"
	"log"

	"powerfail"
)

func run(name string, streams int, opts powerfail.Options) *powerfail.Report {
	cfg := powerfail.DefaultTxnConfig()
	cfg.Streams = streams
	cfg.Barrier = powerfail.NoFlushBarrier
	opts.App = powerfail.TxnApp(cfg)
	opts.Concurrency = streams
	rep, err := powerfail.Run(opts, powerfail.Experiment{
		Name:             name,
		Faults:           10,
		RequestsPerFault: 20,
	})
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	if len(rep.TxnPolicies) == 0 {
		log.Fatalf("%s: no recovery-policy ablation in the report", name)
	}
	return rep
}

func main() {
	ssdProf := powerfail.ProfileA()
	ssdProf.CapacityGB = 8
	raid5 := powerfail.ArrayTopology(powerfail.RAIDConfig(powerfail.RAID5, 3, ssdProf))

	type point struct {
		name    string
		streams int
		opts    powerfail.Options
	}
	points := []point{
		{"1 stream  / SSD", 1, powerfail.Options{Seed: 11, Profile: ssdProf}},
		{"8 streams / SSD", 8, powerfail.Options{Seed: 11, Profile: ssdProf}},
		{"1 stream  / RAID-5", 1, powerfail.Options{Seed: 11, Topology: raid5}},
		{"8 streams / RAID-5", 8, powerfail.Options{Seed: 11, Topology: raid5}},
	}

	fmt.Println("Multi-stream WAL, no-flush commits, identical fault schedules (10 cuts):")
	fmt.Printf("%-20s %-10s %-14s %-12s %-13s\n",
		"configuration", "committed", "ht-losses", "strict-losses", "unreachable")
	var anyLoss, anyUnreachable int64
	for _, pt := range points {
		rep := run(pt.name, pt.streams, pt.opts)
		ht := rep.TxnPolicy(powerfail.HoleTolerantRecovery)
		strict := rep.TxnPolicy(powerfail.StrictScanRecovery)
		if strict.Losses() < ht.Losses() {
			log.Fatalf("BUG: %s: strict scan lost less (%d) than hole-tolerant (%d)",
				pt.name, strict.Losses(), ht.Losses())
		}
		fmt.Printf("%-20s %-10d %-14d %-12d %-13d\n",
			pt.name, ht.Committed, ht.Losses(), strict.Losses(), rep.TxnUnreachable())
		anyLoss += ht.Losses()
		anyUnreachable += rep.TxnUnreachable()
	}

	fmt.Println("\nThe strict scan stops at the first torn log slot, so every durable")
	fmt.Println("record behind a tear is abandoned: its losses can only exceed the")
	fmt.Println("hole-tolerant replay's, and the gap is commit data the device kept")
	fmt.Println("but a classic sequential recovery never reaches.")
	if anyLoss == 0 {
		log.Fatal("BUG: no-flush commits lost nothing across every topology")
	}
	_ = anyUnreachable // may legitimately be 0 on schedules without mid-log tears
}
