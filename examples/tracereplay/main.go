// Tracereplay contrasts synthetic and trace-driven traffic on the same
// device under the same fault schedule. The paper's evaluation uses a
// synthetic generator; real storage-reliability studies in its lineage
// validate against block traces (MSR/FIU-style), whose burstiness,
// skewed address reuse and mixed sizes stress the volatile paths
// differently. Both streams run through the identical pipeline — the
// block layer, the analyzer's shadow, the post-fault verification pass —
// so the loss-per-fault numbers are directly comparable.
package main

import (
	"fmt"
	"log"

	"powerfail"
)

const faults = 12

func run(name string, spec powerfail.Experiment) *powerfail.Report {
	prof := powerfail.ProfileA()
	prof.CapacityGB = 8
	spec.Name = name
	spec.Faults = faults
	spec.RequestsPerFault = 16
	rep, err := powerfail.Run(powerfail.Options{Seed: 11, Profile: prof}, spec)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	return rep
}

func main() {
	tr, err := powerfail.BundledTrace("msr-web")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replaying %s\n\n", tr)

	w := powerfail.DefaultWorkload()
	w.WSSBytes = 1 << 30 // match the trace's ~1 GiB extent on the 8 GB drive
	synthetic := run("synthetic", powerfail.Experiment{Workload: w})
	closed := run("trace/closed", powerfail.Experiment{
		Trace: powerfail.TraceReplay(tr, powerfail.TraceClosedLoop),
	})
	open := run("trace/open", powerfail.Experiment{
		Trace: powerfail.TraceReplay(tr, powerfail.TraceOpenLoop),
	})

	fmt.Printf("%-14s %-9s %-10s %-6s %-6s %-7s %-11s %s\n",
		"traffic", "source", "requests", "data", "fwa", "ioerr", "loss/fault", "coverage")
	for _, rep := range []*powerfail.Report{synthetic, closed, open} {
		coverage := "-"
		if s := rep.TraceStats; s != nil {
			coverage = fmt.Sprintf("%.0f%% x%d laps", 100*s.Coverage, s.Laps)
		}
		fmt.Printf("%-14s %-9s %-10d %-6d %-6d %-7d %-11.2f %s\n",
			rep.Name, rep.Source, rep.Requests, rep.Counters.DataFailures,
			rep.Counters.FWA, rep.Counters.IOErrors, rep.DataLossPerFault, coverage)
	}

	fmt.Println("\nSame drive, same fault schedule: the replayed trace's write")
	fmt.Println("stream hits the volatile cache exactly like the synthetic mix,")
	fmt.Println("so acknowledged-but-lost writes appear under both — the loss")
	fmt.Println("taxonomy generalizes beyond the paper's generator.")

	if synthetic.DataLosses() == 0 {
		log.Fatal("BUG: synthetic write workload lost nothing")
	}
	if closed.DataLosses() == 0 && open.DataLosses() == 0 {
		log.Fatal("BUG: trace replay lost nothing on a volatile-cache SSD")
	}
	if closed.Source != "trace" || synthetic.Source != "workload" {
		log.Fatal("BUG: reports do not record their IO source")
	}
}
