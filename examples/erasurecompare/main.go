// Erasurecompare contrasts erasure-code strength under identical
// correlated-fault schedules: RAID-5 (one parity), RAID-6 (P+Q over
// GF(256)) and an 8+3 Reed-Solomon array, each in a uniform drive-A build
// and a heterogeneous build carrying one large-cache QLC straggler. Every
// member shares the platform's single simulated PSU, so one cut hits the
// whole array mid-flight: stronger codes buy reconstruction headroom while
// widening the multi-parity write hole, and the per-member attribution
// shows the mixed arrays' failures concentrating on the weakest drive.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	"powerfail"
)

func main() {
	member := powerfail.ProfileA()
	member.CapacityGB = 8
	weak := powerfail.ProfileQ()
	weak.CapacityGB = 8

	mixed := func(level powerfail.ArrayLevel, n, parity int) powerfail.ArrayConfig {
		members := make([]powerfail.SSDProfile, n)
		for i := range members {
			members[i] = member
		}
		members[n-1] = weak
		cfg := powerfail.MixedRAIDConfig(level, members...)
		cfg.Parity = parity
		return cfg
	}

	configs := []struct {
		label string
		cfg   powerfail.ArrayConfig
	}{
		{"raid5/uniform", powerfail.RAIDConfig(powerfail.RAID5, 5, member)},
		{"raid5/mixed", mixed(powerfail.RAID5, 5, 0)},
		{"raid6/uniform", powerfail.RAIDConfig(powerfail.RAID6, 6, member)},
		{"raid6/mixed", mixed(powerfail.RAID6, 6, 0)},
		{"rs8+3/uniform", powerfail.RSConfig(8, 3, member)},
		{"rs8+3/mixed", mixed(powerfail.RS, 11, 3)},
	}

	w := powerfail.Workload{
		Name:     "erasure-writes",
		WSSBytes: 2 << 30,
		MinSize:  4 << 10,
		MaxSize:  64 << 10,
	}
	var items []powerfail.CatalogItem
	for i, tc := range configs {
		items = append(items, powerfail.CatalogItem{
			Figure: "erasurecompare",
			Label:  tc.label,
			X:      float64(i),
			Opts:   powerfail.Options{Seed: 11, Topology: powerfail.ArrayTopology(tc.cfg)},
			Spec: powerfail.Experiment{
				Name:             tc.label,
				Workload:         w,
				Faults:           12,
				RequestsPerFault: 12,
			},
		})
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	out, err := powerfail.NewCampaign(items, powerfail.WithParallelism(4)).Run(ctx)
	if err != nil {
		log.Fatalf("campaign: %v", err)
	}

	fmt.Println("Identical workload, fault schedule and seed per code:")
	fmt.Printf("%-14s %-8s %-6s %-8s %-7s %-7s %-11s %-10s\n",
		"code", "faults", "FWA", "data", "holes", "recon", "loss/fault", "iops")
	for _, res := range out.Results {
		r := res.Report
		var holes, recon int64
		if r.ArrayStats != nil {
			holes, recon = r.ArrayStats.WriteHoles, r.ArrayStats.Reconstructions
		}
		fmt.Printf("%-14s %-8d %-6d %-8d %-7d %-7d %-11.2f %-10.0f\n",
			res.Item.Label, r.Faults, r.Counters.FWA, r.Counters.DataFailures,
			holes, recon, r.DataLossPerFault, r.RespondedIOPS)
	}

	fmt.Println("\nPer-member attribution (the mixed arrays' weak member is last):")
	for _, res := range out.Results {
		fmt.Printf("  %s:\n", res.Item.Label)
		for _, m := range res.Report.Members {
			fmt.Printf("    member %d (%s): served r=%d w=%d, dirty-lost=%d, attributed data=%d fwa=%d\n",
				m.Index, m.Name, m.Reads, m.Writes, m.DirtyPagesLost, m.DataFailures, m.FWA)
		}
	}

	fmt.Println("\nEach added parity widens the set of survivable cuts — and the")
	fmt.Println("write hole: a RAID-6 small write must land 3 chunks, an 8+3 write 4.")
	fmt.Println("The mixed builds show the weakest-member effect: the QLC straggler's")
	fmt.Println("bigger, slower volatile cache concentrates the losses on its bays.")

	// The straggler should lose at least as many dirty pages as any uniform
	// sibling in the same code, in every mixed build.
	for _, res := range out.Results {
		members := res.Report.Members
		if len(members) == 0 {
			log.Fatalf("BUG: %s carries no member reports", res.Item.Label)
		}
		last := members[len(members)-1]
		if last.Name == "Q" && last.DirtyPagesLost == 0 && res.Report.Counters.DataFailures > 0 {
			log.Fatalf("BUG: %s: weak member lost no dirty pages despite data failures", res.Item.Label)
		}
	}
}
