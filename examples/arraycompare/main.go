// Arraycompare contrasts multi-device topologies under identical
// correlated-fault schedules: a RAID-1 mirror, a RAID-5 parity array, and
// an SSD cache over an HDD in both write policies, all built from the same
// drive model and driven by the same workload, fault count and seed. Every
// member of each array shares the platform's single simulated PSU, so one
// cut hits the whole array mid-flight — the regime where mirror
// divergence, parity write holes and lost dirty cache lines appear.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	"powerfail"
)

func main() {
	member := powerfail.ProfileA()
	member.CapacityGB = 8
	backing := powerfail.DefaultHDD()
	backing.CapacityGB = 64

	topologies := []struct {
		label string
		topo  powerfail.Topology
	}{
		{"raid1x2", powerfail.ArrayTopology(powerfail.RAIDConfig(powerfail.RAID1, 2, member))},
		{"raid5x3", powerfail.ArrayTopology(powerfail.RAIDConfig(powerfail.RAID5, 3, member))},
		{"cache-wb", powerfail.ArrayTopology(powerfail.CacheConfig(member, backing, powerfail.WriteBack))},
		{"cache-wt", powerfail.ArrayTopology(powerfail.CacheConfig(member, backing, powerfail.WriteThrough))},
	}

	w := powerfail.Workload{
		Name:     "array-writes",
		WSSBytes: 2 << 30,
		MinSize:  4 << 10,
		MaxSize:  64 << 10,
	}
	var items []powerfail.CatalogItem
	for i, tc := range topologies {
		items = append(items, powerfail.CatalogItem{
			Figure: "arraycompare",
			Label:  tc.label,
			X:      float64(i),
			Opts:   powerfail.Options{Seed: 7, Topology: tc.topo},
			Spec: powerfail.Experiment{
				Name:             tc.label,
				Workload:         w,
				Faults:           12,
				RequestsPerFault: 12,
			},
		})
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	out, err := powerfail.NewCampaign(items, powerfail.WithParallelism(4)).Run(ctx)
	if err != nil {
		log.Fatalf("campaign: %v", err)
	}

	fmt.Println("Identical workload, fault schedule and seed per topology:")
	fmt.Printf("%-10s %-22s %-8s %-6s %-8s %-11s %-10s\n",
		"topology", "device", "faults", "FWA", "data", "loss/fault", "iops")
	for _, res := range out.Results {
		r := res.Report
		fmt.Printf("%-10s %-22s %-8d %-6d %-8d %-11.2f %-10.0f\n",
			res.Item.Label, r.Profile, r.Faults, r.Counters.FWA, r.Counters.DataFailures,
			r.DataLossPerFault, r.RespondedIOPS)
	}

	fmt.Println("\nPer-member failure attribution:")
	for _, res := range out.Results {
		fmt.Printf("  %s:\n", res.Item.Label)
		for _, m := range res.Report.Members {
			fmt.Printf("    member %d (%s/%s): served r=%d w=%d, deaths=%d, dirty-lost=%d, attributed data=%d fwa=%d\n",
				m.Index, m.Name, m.Role, m.Reads, m.Writes, m.Deaths, m.DirtyPagesLost,
				m.DataFailures, m.FWA)
		}
	}

	fmt.Println("\nRedundancy softens but does not remove the volatile-cache problem")
	fmt.Println("(every mirror or parity member loses its DRAM to the same cut); only")
	fmt.Println("the write-through cache, which acknowledges after the mechanical")
	fmt.Println("backend, loses nothing — at a steep IOPS price.")

	for _, res := range out.Results {
		if res.Item.Label == "cache-wt" && res.Report.DataLosses() != 0 {
			log.Fatal("BUG: the write-through cache lost acknowledged data")
		}
	}
}
