// Quickstart: inject 25 power faults into the simulated SSD "A" while a
// random-write workload runs, and print the failure report — the minimal
// use of the public API. For sweeps of many experiments see the Campaign
// API (examples/requesttype, examples/sequences) and cmd/sweep.
package main

import (
	"fmt"
	"log"

	"powerfail"
)

func main() {
	report, err := powerfail.Run(
		powerfail.Options{
			Seed:    42,
			Profile: powerfail.ProfileA(),
		},
		powerfail.Experiment{
			Name:             "quickstart",
			Workload:         powerfail.DefaultWorkload(),
			Faults:           25,
			RequestsPerFault: 16,
		},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report)
	fmt.Printf("\nThe drive acknowledged %d writes and still lost %d of them\n",
		report.Writes, report.DataLosses())
	fmt.Printf("(%d outright data failures, %d false write-acknowledges).\n",
		report.DataFailures(), report.FWA())
}
