// Plpcompare contrasts three builds of the same drive under identical
// fault schedules: stock (volatile write cache), cache disabled, and with
// a supercapacitor (power-loss protection). It demonstrates the paper's
// findings that the cache is a major but not the only source of loss, and
// that PLP hardware eliminates the failure classes entirely — and shows
// how hand-built catalog items run as a campaign (every variant keeps the
// same seed, so all three drives see the same fault schedule).
package main

import (
	"context"
	"fmt"
	"log"

	"powerfail"
)

func main() {
	type variant struct {
		name string
		prof powerfail.SSDProfile
	}
	base := powerfail.ProfileA()
	variants := []variant{
		{"stock (write cache on)", base},
		{"internal cache disabled", base.WithCacheDisabled()},
		{"supercap (PLP)", base.WithSuperCap()},
	}

	var items []powerfail.CatalogItem
	for i, v := range variants {
		items = append(items, powerfail.CatalogItem{
			Figure: "plp",
			Label:  v.name,
			X:      float64(i),
			Opts:   powerfail.Options{Seed: 2024, Profile: v.prof},
			Spec: powerfail.Experiment{
				Name:             v.name,
				Workload:         powerfail.DefaultWorkload(),
				Faults:           40,
				RequestsPerFault: 16,
			},
		})
	}

	out, err := powerfail.NewCampaign(items,
		powerfail.WithParallelism(len(items)),
		powerfail.WithFailFast(),
	).Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Drive build vs data loss: 40 faults each, identical workload")
	fmt.Printf("%-26s %-14s %-6s %-10s %-12s\n", "variant", "data failures", "FWA", "IO errors", "loss/fault")
	for _, res := range out.Results {
		rep := res.Report
		fmt.Printf("%-26s %-14d %-6d %-10d %-12.2f\n",
			res.Item.Label, rep.DataFailures(), rep.FWA(), rep.IOErrors(), rep.DataLossPerFault)
	}
	fmt.Println("\nDisabling the cache reduces but does not eliminate losses (mapping-table")
	fmt.Println("and in-flight program corruption persist); the supercap build loses nothing.")
}
