// Plpcompare contrasts three builds of the same drive under identical
// fault schedules: stock (volatile write cache), cache disabled, and with
// a supercapacitor (power-loss protection). It demonstrates the paper's
// findings that the cache is a major but not the only source of loss, and
// that PLP hardware eliminates the failure classes entirely.
package main

import (
	"fmt"
	"log"

	"powerfail"
)

func main() {
	type variant struct {
		name string
		prof powerfail.SSDProfile
	}
	base := powerfail.ProfileA()
	variants := []variant{
		{"stock (write cache on)", base},
		{"internal cache disabled", base.WithCacheDisabled()},
		{"supercap (PLP)", base.WithSuperCap()},
	}

	fmt.Println("Drive build vs data loss: 40 faults each, identical workload")
	fmt.Printf("%-26s %-14s %-6s %-10s %-12s\n", "variant", "data failures", "FWA", "IO errors", "loss/fault")
	for _, v := range variants {
		rep, err := powerfail.Run(
			powerfail.Options{Seed: 2024, Profile: v.prof},
			powerfail.Experiment{
				Name:             v.name,
				Workload:         powerfail.DefaultWorkload(),
				Faults:           40,
				RequestsPerFault: 16,
			},
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s %-14d %-6d %-10d %-12.2f\n",
			v.name, rep.DataFailures(), rep.FWA(), rep.IOErrors(), rep.DataLossPerFault)
	}
	fmt.Println("\nDisabling the cache reduces but does not eliminate losses (mapping-table")
	fmt.Println("and in-flight program corruption persist); the supercap build loses nothing.")
}
