// Fleet runs three identical fleets — RAID-5-like groups spread over a
// room → rack → enclosure → PSU fault-domain tree — and cuts power at a
// different tier of the tree in each run, on the same seed. A PSU cut
// downs one bay per group (rack-local placement keeps group members on
// distinct PSUs), so spares absorb it; a rack cut downs whole groups; a
// room cut downs everything. Availability and durability nines fall
// monotonically as the cut level climbs the tree.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	"powerfail"
)

func main() {
	levels := []struct {
		label string
		level powerfail.FleetLevel
	}{
		{"psu", powerfail.FleetPSU},
		{"rack", powerfail.FleetRack},
		{"room", powerfail.FleetRoom},
	}

	var items []powerfail.CatalogItem
	for i, lv := range levels {
		cfg := powerfail.DefaultFleetConfig()
		cfg.Arrays = 8
		cfg.Spares = 4
		cfg.Member.Pages = 4096
		cfg.Faults.Level = lv.level
		cfg.Faults.Count = 4
		cfg.Faults.Outage = 3 * powerfail.Second
		items = append(items, powerfail.CatalogItem{
			Figure: "fleet",
			Label:  lv.label,
			X:      float64(i),
			// The seed is shared: only the cut level differs between runs.
			Opts: powerfail.Options{Seed: 42, Fleet: &cfg},
			Spec: powerfail.Experiment{Name: "fleet-" + lv.label},
		})
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	out, err := powerfail.NewCampaign(items, powerfail.WithParallelism(3)).Run(ctx)
	if err != nil {
		log.Fatalf("campaign: %v", err)
	}

	fmt.Println("Same fleet, same seed, cuts aimed at different tree levels:")
	fmt.Printf("%-6s %-6s %-9s %-11s %-10s %-12s %-9s %-9s %-7s\n",
		"cut", "cuts", "declared", "spare-take", "rebuilds", "rebuild-MiB", "avail-9s", "durab-9s", "losses")
	for _, res := range out.Results {
		s := res.Report.Fleet
		fmt.Printf("%-6s %-6d %-9d %-11d %-4d/%-4d %-12.1f %-9.2f %-9.2f %-7d\n",
			res.Item.Label, s.Cuts, s.DeclaredFailures, s.SpareTakes,
			s.RebuildCompleted, s.RebuildWindows,
			float64(s.RebuildReadBytes+s.RebuildWriteBytes)/(1<<20),
			s.AvailabilityNines, s.DurabilityNines, s.LossEvents)
	}

	fmt.Println("\nA single PSU cut degrades at most one bay per group, so spares")
	fmt.Println("rebuild it in the background; only overlapping PSU outages can exceed")
	fmt.Println("a group's redundancy. A rack cut downs every group in that rack at")
	fmt.Println("once, and a room cut is a full-site outage — the nines collapse to")
	fmt.Println("the outage fraction itself.")

	var prev float64 = powerfail.FleetNines(1)
	for _, res := range out.Results {
		n := res.Report.Fleet.AvailabilityNines
		if n > prev {
			log.Fatalf("BUG: nines rose from %.2f to %.2f as the cut level climbed", prev, n)
		}
		prev = n
	}
}
