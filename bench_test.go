// Benchmarks that regenerate every table and figure of the paper's
// evaluation. Each benchmark prints its figure's series once (at a reduced
// fault count; run cmd/sweep -scale 1 for paper-sized runs) and then times
// a representative experiment per iteration, reporting simulated fault
// cycles per second and data losses per fault as custom metrics.
package powerfail_test

import (
	"fmt"
	"sync"
	"testing"

	"powerfail"
	"powerfail/internal/sim"
)

// benchScale keeps the printed series cheap; shapes are already visible.
const benchScale = 0.04

var printOnce sync.Map

func printSeries(b *testing.B, figure, title string) {
	b.Helper()
	once, _ := printOnce.LoadOrStore(figure, &sync.Once{})
	once.(*sync.Once).Do(func() {
		items, err := powerfail.ItemsFor(figure, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		fmt.Printf("\n=== %s ===\n", title)
		fmt.Printf("%-22s %8s %8s %8s %8s %12s %10s\n",
			"point", "faults", "data", "fwa", "ioerr", "loss/fault", "iops")
		for _, res := range powerfail.RunCatalog(items, nil) {
			if res.Err != nil {
				b.Fatalf("%s: %v", res.Item.Label, res.Err)
			}
			r := res.Report
			fmt.Printf("%-22s %8d %8d %8d %8d %12.2f %10.0f\n",
				res.Item.Label, r.Faults, r.Counters.DataFailures, r.Counters.FWA,
				r.Counters.IOErrors, r.DataLossPerFault, r.RespondedIOPS)
		}
	})
}

// timeOne runs a small experiment per iteration so ns/op measures a full
// fault-injection cycle pipeline.
func timeOne(b *testing.B, opts powerfail.Options, spec powerfail.Experiment) {
	b.Helper()
	var losses, faults int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts.Seed = uint64(i + 1)
		rep, err := powerfail.Run(opts, spec)
		if err != nil {
			b.Fatal(err)
		}
		losses += rep.DataLosses()
		faults += rep.Faults
	}
	b.StopTimer()
	if faults > 0 {
		b.ReportMetric(float64(losses)/float64(faults), "losses/fault")
		b.ReportMetric(float64(faults)/b.Elapsed().Seconds(), "faultcycles/s")
	}
}

func benchOpts() powerfail.Options {
	prof := powerfail.ProfileA()
	prof.CapacityGB = 8 // small maps; policies identical
	return powerfail.Options{Profile: prof}
}

func benchSpec(mutate func(*powerfail.Experiment)) powerfail.Experiment {
	spec := powerfail.Experiment{
		Name:             "bench",
		Workload:         powerfail.DefaultWorkload(),
		Faults:           5,
		RequestsPerFault: 12,
	}
	spec.Workload.WSSBytes = 1 << 30
	if mutate != nil {
		mutate(&spec)
	}
	return spec
}

// BenchmarkExperimentAllocs times one small single-SSD fault-injection
// experiment per iteration with allocation reporting. allocs/op tracks
// the whole experiment — platform construction, event loop, content
// generation and verification — so it catches allocation regressions
// anywhere in the pipeline, while the kernel and blockdev benchmarks
// isolate the zero-alloc hot paths themselves.
func BenchmarkExperimentAllocs(b *testing.B) {
	opts := benchOpts()
	spec := benchSpec(nil)
	var faults int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts.Seed = uint64(i + 1)
		rep, err := powerfail.Run(opts, spec)
		if err != nil {
			b.Fatal(err)
		}
		faults += rep.Faults
	}
	b.StopTimer()
	if faults > 0 {
		b.ReportMetric(float64(faults)/b.Elapsed().Seconds(), "faultcycles/s")
	}
}

// BenchmarkTableISSDProfiles regenerates Table I behaviour: the base
// workload against each drive model.
func BenchmarkTableISSDProfiles(b *testing.B) {
	printSeries(b, "tablei", "Table I: drive models under the base workload")
	timeOne(b, benchOpts(), benchSpec(nil))
}

// BenchmarkFig4PSUDischarge regenerates the discharge curves and times the
// analytic voltage model.
func BenchmarkFig4PSUDischarge(b *testing.B) {
	once, _ := printOnce.LoadOrStore("fig4", &sync.Once{})
	once.(*sync.Once).Do(func() {
		fmt.Printf("\n=== Fig. 4: PSU discharge ===\n")
		for _, withSSD := range []bool{false, true} {
			curve, brownout := powerfail.DischargeCurve(withSSD, 100*sim.Millisecond, 1500*sim.Millisecond)
			fmt.Printf("withSSD=%v: V(0)=%.2f V(900ms)=%.2f V(1400ms)=%.2f brownout@%.0fms\n",
				withSSD, curve[0].V, curve[9].V, curve[14].V, brownout.Millis())
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = powerfail.DischargeCurve(true, 10*sim.Millisecond, 1500*sim.Millisecond)
	}
}

// BenchmarkSecIVAPostACKWindow regenerates the Section IV-A series: data
// loss as a function of the delay between a request's ACK and the fault.
func BenchmarkSecIVAPostACKWindow(b *testing.B) {
	printSeries(b, "window", "Sec. IV-A: fault delay after request completion")
	timeOne(b, benchOpts(), benchSpec(func(s *powerfail.Experiment) {
		s.WindowMode = true
		s.PostACKDelay = 100 * sim.Millisecond
	}))
}

// BenchmarkFig5RequestType regenerates the read-percentage sweep.
func BenchmarkFig5RequestType(b *testing.B) {
	printSeries(b, "fig5", "Fig. 5: impact of request type (read percentage)")
	timeOne(b, benchOpts(), benchSpec(func(s *powerfail.Experiment) {
		s.Workload.ReadPct = 50
	}))
}

// BenchmarkFig6WorkingSetSize regenerates the WSS sweep.
func BenchmarkFig6WorkingSetSize(b *testing.B) {
	printSeries(b, "fig6", "Fig. 6: impact of working set size")
	timeOne(b, benchOpts(), benchSpec(func(s *powerfail.Experiment) {
		s.Workload.WSSBytes = 4 << 30
	}))
}

// BenchmarkSecIVDAccessPattern regenerates random vs sequential.
func BenchmarkSecIVDAccessPattern(b *testing.B) {
	printSeries(b, "seqrand", "Sec. IV-D: random vs sequential writes")
	timeOne(b, benchOpts(), benchSpec(func(s *powerfail.Experiment) {
		s.Workload.Pattern = powerfail.SequentialPattern
	}))
}

// BenchmarkFig7RequestSize regenerates the request-size sweep.
func BenchmarkFig7RequestSize(b *testing.B) {
	printSeries(b, "fig7", "Fig. 7: impact of request size")
	timeOne(b, benchOpts(), benchSpec(func(s *powerfail.Experiment) {
		s.Workload.MinSize, s.Workload.MaxSize = 0, 0
		s.Workload.FixedSize = 4 << 10
	}))
}

// BenchmarkFig8RequestedIOPS regenerates the requested-IOPS sweep.
func BenchmarkFig8RequestedIOPS(b *testing.B) {
	printSeries(b, "fig8", "Fig. 8: requested vs responded IOPS and failures")
	timeOne(b, benchOpts(), benchSpec(func(s *powerfail.Experiment) {
		s.Workload.MaxSize = 64 << 10
		s.Workload.IOPS = 6000
	}))
}

// BenchmarkFig9AccessSequences regenerates the RAR/RAW/WAR/WAW bars.
func BenchmarkFig9AccessSequences(b *testing.B) {
	printSeries(b, "fig9", "Fig. 9: impact of access sequences")
	timeOne(b, benchOpts(), benchSpec(func(s *powerfail.Experiment) {
		s.Workload.Sequence = powerfail.WAW
	}))
}

// BenchmarkAblationCutSpeed compares the realistic PSU discharge against a
// transistor-fast cut (the platform-design ablation of DESIGN.md).
func BenchmarkAblationCutSpeed(b *testing.B) {
	printSeries(b, "ablation", "Ablations: cut speed, supercap, cache, journal interval")
	opts := benchOpts()
	opts.PSU = powerfail.PSUConfig{VNominal: 5, Capacitance: 2e-6, BleedOhms: 27.7, RiseTime: sim.Millisecond}
	timeOne(b, opts, benchSpec(nil))
}

// BenchmarkAblationSupercap times the power-loss-protected build.
func BenchmarkAblationSupercap(b *testing.B) {
	printSeries(b, "ablation", "Ablations")
	opts := benchOpts()
	opts.Profile = opts.Profile.WithSuperCap()
	timeOne(b, opts, benchSpec(nil))
}

// BenchmarkAblationCacheDisabled times the cache-off build.
func BenchmarkAblationCacheDisabled(b *testing.B) {
	printSeries(b, "ablation", "Ablations")
	opts := benchOpts()
	opts.Profile = opts.Profile.WithCacheDisabled()
	timeOne(b, opts, benchSpec(nil))
}

// BenchmarkAblationJournalInterval times a slow-journal build.
func BenchmarkAblationJournalInterval(b *testing.B) {
	printSeries(b, "ablation", "Ablations")
	opts := benchOpts()
	opts.Profile.JournalTick = 200 * sim.Millisecond
	timeOne(b, opts, benchSpec(nil))
}

// BenchmarkTraceReplay times a bundled-trace fault cycle end to end
// (parse once, replay per iteration).
func BenchmarkTraceReplay(b *testing.B) {
	printSeries(b, "trace", "Trace replay: bundled MSR-style traces")
	tr, err := powerfail.BundledTrace("msr-web")
	if err != nil {
		b.Fatal(err)
	}
	timeOne(b, benchOpts(), benchSpec(func(s *powerfail.Experiment) {
		s.Workload = powerfail.Workload{}
		s.Trace = powerfail.TraceReplay(tr, powerfail.TraceClosedLoop)
	}))
}

// BenchmarkFleetCampaign times a datacenter-scale fleet run — 100
// RAID-5-like groups plus spares on a 4×2×2 fault-domain tree with random
// PSU cuts — and reports simulated kernel events per second, the figure
// of merit for the fleet simulation layer.
func BenchmarkFleetCampaign(b *testing.B) {
	printSeries(b, "fleet", "Fleet: fault-domain tree × spares × cut level")
	cfg := powerfail.DefaultFleetConfig()
	cfg.Domains = powerfail.FleetDomains{Racks: 4, EnclosuresPerRack: 2, PSUsPerEnclosure: 2}
	cfg.Arrays = 100
	cfg.Spares = 8
	cfg.Member.Pages = 2048
	cfg.Faults.Count = 5
	spec := powerfail.Experiment{Name: "bench-fleet"}
	var events uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := powerfail.Run(powerfail.Options{Seed: uint64(i + 1), Fleet: &cfg}, spec)
		if err != nil {
			b.Fatal(err)
		}
		events += rep.Fleet.Events
	}
	b.StopTimer()
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkVerificationPipelining demonstrates the pipelined control
// reads: a large-RequestsPerFault experiment spends most of its simulated
// time re-reading packets after each fault, and Opts.Concurrency above 1
// keeps that many verification reads in flight. The workload is
// open-loop (IOPS-paced), so the concurrency knob changes only the
// verify/recovery pipeline, not the traffic: compare sim_ms/fault — the
// platform's wall-clock per fault cycle — between the serialized (1) and
// pipelined (8) variants.
func BenchmarkVerificationPipelining(b *testing.B) {
	w := powerfail.DefaultWorkload()
	w.WSSBytes = 1 << 30
	w.MinSize = 4 << 10
	w.MaxSize = 16 << 10
	w.IOPS = 20000
	spec := powerfail.Experiment{
		Name: "verify-pipe", Workload: w, Faults: 2, RequestsPerFault: 4000,
	}
	for _, conc := range []int{1, 8} {
		b.Run(fmt.Sprintf("concurrency=%d", conc), func(b *testing.B) {
			opts := benchOpts()
			opts.Concurrency = conc
			var simTotal powerfail.Duration
			faults := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				opts.Seed = uint64(i + 1)
				rep, err := powerfail.Run(opts, spec)
				if err != nil {
					b.Fatal(err)
				}
				simTotal += rep.SimDuration
				faults += rep.Faults
			}
			b.StopTimer()
			if faults > 0 {
				b.ReportMetric(simTotal.Seconds()*1000/float64(faults), "sim_ms/fault")
				b.ReportMetric(float64(faults)/b.Elapsed().Seconds(), "faultcycles/s")
			}
		})
	}
}
