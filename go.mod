module powerfail

go 1.24
