// Package powerfail is a simulation-backed reproduction of "Investigating
// Power Outage Effects on Reliability of Solid-State Drives" (Ahmadian et
// al., DATE 2018): a power-fault injection and failure detection platform
// for SSDs.
//
// The top-level entry point is the Campaign: a set of catalog items (the
// paper's evaluation is a matrix of hundreds of independent experiments
// per figure) executed over a bounded worker pool with streaming progress,
// context cancellation, deterministic ordering, per-figure aggregation
// (failure-rate means with 95% confidence intervals) and JSON output:
//
//	out, err := powerfail.NewCampaign(powerfail.Fig5Items(0.2),
//	    powerfail.WithParallelism(8),
//	    powerfail.WithBaseSeed(1),
//	).Run(ctx)
//
// Each experiment builds an independent single-threaded Platform, so the
// same (BaseSeed, items) pair reproduces byte-identical reports at any
// parallelism. Single experiments run through Run/RunContext:
//
//	rep, err := powerfail.Run(powerfail.Options{Seed: 1},
//	    powerfail.Experiment{
//	        Name:             "demo",
//	        Workload:         powerfail.DefaultWorkload(),
//	        Faults:           50,
//	        RequestsPerFault: 16,
//	    })
//
// The device side of the platform is selected by Options.Topology: the
// single SSD of the paper (the default), a single HDD comparator, or a
// multi-device array — RAID-0/1/5/6 or general m+k Reed-Solomon over
// SSDs, or an SSD cache fronting an HDD in write-back or write-through
// policy. Every member of an array hangs off the platform's one simulated
// PSU, exactly like the drives in the paper's rig share one
// Arduino-switched ATX supply, so a power cut is correlated across the
// whole array: parity write holes, mirror divergence and lost dirty cache
// lines emerge from the per-device models composing, not from scripted
// outcomes. Array members need not be identical — a heterogeneous mix
// (say TLC drives with one large-cache QLC straggler) makes the weakest
// member's contribution measurable through per-member failure
// attribution.
//
// Traffic comes from one of three IO sources behind a single pluggable
// interface: the paper's synthetic workload generator (the default), the
// transactional WAL application layer (Options.App), or an MSR-style
// block-trace replayer (Experiment.Trace, via ParseTrace/ParseTraceFile
// or the bundled fixtures) replaying real traces open- or closed-loop
// through the identical fault pipeline.
//
// The paper's hardware — an Arduino-controlled ATX supply whose slow
// capacitive discharge the drive under test experiences — and the drives
// themselves are modelled in detail (see DESIGN.md); the software part of
// the platform (fault scheduler, IO generator with checksummed data
// packets, blktrace/btt-based analyzer, and the data-failure / FWA /
// IO-error taxonomy) is implemented as published.
//
// Above the single-rig platform sits the fleet layer (Options.Fleet): a
// fault-domain tree of rooms, racks, enclosures and PSUs carrying hundreds
// of redundancy groups with standby spares and per-member rebuild state
// machines, where a cut targets any tree node and propagates to every
// drive beneath it. Rebuild traffic flows through each member's ordinary
// block layer, and reports gain availability/durability "nines" computed
// from the simulated up/degraded/down intervals. The classic single-PSU
// platform is the degenerate one-node tree, byte-identical by
// construction.
//
// The Experiments catalog reproduces every figure of the paper's
// evaluation, plus the "array", "erasure", "cache" and "fleet" figures
// over the composite and fleet topologies; cmd/sweep drives it from the command
// line (-parallel fans out, -json emits the machine-readable
// CampaignResult).
package powerfail

import (
	"context"
	"io"

	"powerfail/internal/array"
	"powerfail/internal/blockdev"
	"powerfail/internal/core"
	"powerfail/internal/flash"
	"powerfail/internal/fleet"
	"powerfail/internal/hdd"
	"powerfail/internal/obs"
	"powerfail/internal/power"
	"powerfail/internal/sim"
	"powerfail/internal/ssd"
	"powerfail/internal/trace"
	"powerfail/internal/txn"
	"powerfail/internal/workload"
)

// Re-exported types: the public API fronts the internal packages so that
// downstream users never import powerfail/internal/... directly.
type (
	// Options configures the platform (seed, drive profile, host block
	// layer, PSU electrical model, closed-loop concurrency).
	Options = core.Options
	// Experiment describes one fault-injection experiment.
	Experiment = core.ExperimentSpec
	// Report is the outcome of an experiment.
	Report = core.Report
	// Platform is a fully wired test platform instance.
	Platform = core.Platform
	// Runner executes one experiment on a platform.
	Runner = core.Runner
	// FailureKind classifies a request after verification.
	FailureKind = core.FailureKind
	// FaultOutcome is the per-fault failure breakdown.
	FaultOutcome = core.FaultOutcome

	// Workload describes an IO stream (sizes, mix, pattern, sequences).
	Workload = workload.Spec
	// SeqMode selects RAR/RAW/WAR/WAW paired accesses.
	SeqMode = workload.SeqMode
	// Pattern selects random or sequential addressing.
	Pattern = workload.Pattern

	// SSDProfile describes a drive model (Table I row).
	SSDProfile = ssd.Profile
	// HDDProfile describes a hard disk comparator drive.
	HDDProfile = hdd.Profile
	// PSUConfig is the supply's electrical model.
	PSUConfig = power.Config
	// HostConfig is the block-layer configuration.
	HostConfig = blockdev.Config
	// CellKind is the flash cell technology (SLC/MLC/TLC/QLC).
	CellKind = flash.CellKind

	// Topology selects the device side of the platform: single SSD
	// (default), single HDD, or a multi-device array whose members all
	// share the one simulated PSU.
	Topology = core.Topology
	// TopologyKind enumerates the topologies.
	TopologyKind = core.TopologyKind
	// ArrayConfig describes a composite device (RAID-0/1/5/6 or
	// Reed-Solomon members, stripe size and parity count, or the
	// SSD-cache-over-HDD pair and its policy).
	ArrayConfig = array.Config
	// ArrayLevel selects striping, mirroring, parity, or caching.
	ArrayLevel = array.Level
	// CachePolicy selects write-back or write-through for Cached arrays.
	CachePolicy = array.CachePolicy
	// ArrayStats are the array-level counters of a Report.
	ArrayStats = array.Stats
	// MemberReport is one array member's slice of a Report.
	MemberReport = core.MemberReport

	// AppConfig selects an optional application layer above the block
	// device; the zero value runs the paper's plain IO generator.
	AppConfig = core.AppConfig
	// TxnConfig tunes the write-ahead-log transaction engine (stream
	// count, pages per transaction, commit barrier, group size,
	// checkpoint cadence, log region size, primary recovery policy).
	TxnConfig = txn.Config
	// TxnBarrier selects the engine's commit durability policy.
	TxnBarrier = txn.Barrier
	// TxnRecoveryPolicy selects how a recovery scan treats torn log
	// slots; the oracle always judges every fault under all policies
	// (Report.TxnPolicies), the config picks the headline one.
	TxnRecoveryPolicy = txn.RecoveryPolicy
	// TxnStats carries the crash-consistency oracle's verdict counts in a
	// Report (intact / lost-commit / torn / out-of-order, oldest lost
	// sequence, recovery scan lengths) under one recovery policy.
	TxnStats = txn.Stats
	// TxnCycleVerdicts is one policy's per-fault verdict counts.
	TxnCycleVerdicts = txn.CycleVerdicts
	// TxnCycleOutcome is the oracle's per-fault breakdown across every
	// recovery policy (Report.TxnPerFault, index-aligned with
	// Report.PerFault).
	TxnCycleOutcome = txn.CycleOutcome

	// SourceKind selects the runner's IO source (synthetic workload,
	// transaction engine, or trace replay); the zero value infers it from
	// the rest of the configuration.
	SourceKind = core.SourceKind
	// TraceWorkload is a parsed block trace (see ParseTrace/ParseTraceFile
	// and BundledTrace).
	TraceWorkload = trace.Trace
	// TraceConfig selects a parsed trace and its replay pacing; assign a
	// pointer to Experiment.Trace.
	TraceConfig = trace.Config
	// TraceMode selects open-loop (original arrival times) or closed-loop
	// (as fast as possible) replay.
	TraceMode = trace.Mode
	// TraceStats carries replay coverage in a Report (rows replayed, laps,
	// coverage, scaled/clamped addresses).
	TraceStats = trace.Stats

	// FleetConfig describes a datacenter-scale fleet experiment: the
	// fault-domain tree (room → rack → enclosure → PSU), the population of
	// m+k redundancy groups (Parity bays each; default 1, RAID-5-like)
	// with standby spares, the rebuild policy, the fault plan over the
	// tree and the foreground workload. Assign a pointer to Options.Fleet
	// to run the fleet path instead of the single-device platform.
	FleetConfig = fleet.Config
	// FleetDomains sizes the fault-domain tree.
	FleetDomains = fleet.DomainConfig
	// FleetLevel is a fault-domain tier (room, rack, enclosure, PSU).
	FleetLevel = fleet.Level
	// FleetCutEvent is one scripted fault against a tree node.
	FleetCutEvent = fleet.CutEvent
	// FleetFaultPlan selects scripted or random cut targeting over the tree.
	FleetFaultPlan = fleet.FaultPlan
	// FleetRebuildPolicy tunes grace windows, rebuild chunking, backup
	// bandwidth and the controller cadence.
	FleetRebuildPolicy = fleet.RebuildPolicy
	// FleetWorkload shapes the per-group foreground traffic.
	FleetWorkload = fleet.WorkloadConfig
	// FleetMemberProfile is the lightweight member-drive service model.
	FleetMemberProfile = fleet.MemberProfile
	// FleetStats carries the fleet outcome in a Report: per-level cut
	// counts, rebuild windows and bytes moved, and availability/durability
	// nines from the simulated up/degraded/down intervals.
	FleetStats = fleet.Stats

	// ObsConfig enables the observability layer — a sim-time metrics
	// registry and/or a structured trace-event ring; assign a pointer to
	// Options.Obs. The nil default disables both and keeps reports
	// byte-identical to pre-observability runs.
	ObsConfig = obs.Config
	// ObsSummary is the metrics-registry snapshot a Report carries in its
	// optional "obs" section when enabled: sorted counter, gauge and
	// histogram snapshots plus trace-ring accounting.
	ObsSummary = obs.Summary
	// ObsEvent is one structured trace event (Report.ObsTrace).
	ObsEvent = obs.Event
	// ObsKind classifies structured trace events (power transitions,
	// rebuild state changes, transactions, recovery scans, queue depth,
	// block IO spans).
	ObsKind = obs.Kind
	// ObsProcess groups one experiment's events for Chrome trace export
	// (one "process" track per experiment in the Perfetto UI).
	ObsProcess = obs.Process

	// Duration and Time are simulated-clock units.
	Duration = sim.Duration
	Time     = sim.Time
)

// Failure kinds (Section III-B taxonomy).
const (
	FailNone    = core.FailNone
	FailData    = core.FailData
	FailFWA     = core.FailFWA
	FailIOError = core.FailIOError
)

// Access patterns and sequence modes.
const (
	RandomPattern     = workload.Random
	SequentialPattern = workload.Sequential
	SeqNone           = workload.SeqNone
	RAR               = workload.RAR
	RAW               = workload.RAW
	WAR               = workload.WAR
	WAW               = workload.WAW
)

// Cell technologies.
const (
	SLC = flash.SLC
	MLC = flash.MLC
	TLC = flash.TLC
	QLC = flash.QLC
)

// Device topologies.
const (
	TopoSSD   = core.TopoSSD
	TopoHDD   = core.TopoHDD
	TopoArray = core.TopoArray
)

// Array levels and cache policies. RAID6 rotates two parities (P+Q over
// GF(256)); RS is the general Reed-Solomon level whose parity count
// ArrayConfig.Parity picks.
const (
	RAID0  = array.RAID0
	RAID1  = array.RAID1
	RAID5  = array.RAID5
	Cached = array.Cached
	RAID6  = array.RAID6
	RS     = array.RS

	WriteBack    = array.WriteBack
	WriteThrough = array.WriteThrough
)

// Commit barrier policies for the transactional application layer.
const (
	// FlushPerCommit acknowledges a commit only after an OpFlush landed.
	FlushPerCommit = txn.FlushPerCommit
	// GroupCommitBarrier flushes once per TxnConfig.GroupEvery commits
	// (the batch fills across WAL streams).
	GroupCommitBarrier = txn.GroupCommit
	// NoFlushBarrier acknowledges on the device write ACK — exposing
	// volatile-cache lies at transaction granularity.
	NoFlushBarrier = txn.NoFlush
)

// Recovery-scan policies for the transactional application layer
// (TxnConfig.Policy selects the primary; Report.TxnPolicies carries the
// ablation under both).
const (
	// HoleTolerantRecovery replays every durable record, holes included:
	// the best any recovery implementation could do.
	HoleTolerantRecovery = txn.HoleTolerant
	// StrictScanRecovery stops each stream's scan at the first torn slot;
	// durable records behind the tear are unreachable.
	StrictScanRecovery = txn.StrictScan
)

// IO source kinds (Experiment.Source; SourceAuto infers from the rest of
// the configuration).
const (
	SourceAuto     = core.SourceAuto
	SourceWorkload = core.SourceWorkload
	SourceTxn      = core.SourceTxn
	SourceTrace    = core.SourceTrace
)

// Trace replay modes.
const (
	// TraceClosedLoop replays as fast as possible.
	TraceClosedLoop = trace.ClosedLoop
	// TraceOpenLoop replays with the original inter-arrival times.
	TraceOpenLoop = trace.OpenLoop
)

// Fault-domain tiers, widest blast radius first.
const (
	FleetRoom      = fleet.Room
	FleetRack      = fleet.Rack
	FleetEnclosure = fleet.Enclosure
	FleetPSU       = fleet.PSU
)

// Simulated time units.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// NewPlatform builds a wired platform (hardware part + device under test +
// host block layer) without running anything.
func NewPlatform(opts Options) (*Platform, error) { return core.NewPlatform(opts) }

// NewRunner prepares an experiment on a platform.
func NewRunner(p *Platform, spec Experiment) (*Runner, error) { return core.NewRunner(p, spec) }

// Run builds a platform and executes one experiment to completion.
func Run(opts Options, spec Experiment) (*Report, error) {
	return core.RunExperiment(context.Background(), opts, spec)
}

// RunContext is Run with cancellation: the simulation stops at the next
// poll point after ctx is done and returns the partial report with
// ctx.Err().
func RunContext(ctx context.Context, opts Options, spec Experiment) (*Report, error) {
	return core.RunExperiment(ctx, opts, spec)
}

// ProfileA, ProfileB and ProfileC return the Table I drive models.
func ProfileA() SSDProfile { return ssd.ProfileA() }

// ProfileB returns the TLC drive model of Table I.
func ProfileB() SSDProfile { return ssd.ProfileB() }

// ProfileC returns the second MLC drive model of Table I.
func ProfileC() SSDProfile { return ssd.ProfileC() }

// ProfileQ returns the QLC extension drive beyond Table I: dense, big
// volatile cache, slow programs — the weakest member of a heterogeneous
// array.
func ProfileQ() SSDProfile { return ssd.ProfileQ() }

// Profiles returns all stock drive models.
func Profiles() []SSDProfile { return ssd.Profiles() }

// ProfileByName finds a stock profile ("A", "B", "C", "Q").
func ProfileByName(name string) (SSDProfile, bool) { return ssd.ProfileByName(name) }

// DefaultWorkload is the paper's base workload: uniform random writes,
// 4 KiB-1 MiB, 16 GB working set.
func DefaultWorkload() Workload { return workload.DefaultSpec() }

// DefaultPSU returns the Fig. 4-calibrated supply model.
func DefaultPSU() PSUConfig { return power.DefaultConfig() }

// DefaultHDD returns the write-through desktop drive model.
func DefaultHDD() HDDProfile { return hdd.DefaultProfile() }

// HDDTopology selects a single hard disk behind the block layer.
func HDDTopology(prof HDDProfile) Topology {
	return Topology{Kind: TopoHDD, HDD: prof}
}

// ArrayTopology selects a composite device behind the block layer.
func ArrayTopology(cfg ArrayConfig) Topology {
	return Topology{Kind: TopoArray, Array: cfg}
}

// RAIDConfig builds an n-member array of identical drives at the given
// level (RAID0, RAID1, RAID5 or RAID6).
func RAIDConfig(level ArrayLevel, n int, member SSDProfile) ArrayConfig {
	members := make([]SSDProfile, n)
	for i := range members {
		members[i] = member
	}
	return ArrayConfig{Level: level, Members: members}
}

// RSConfig builds a data+parity Reed-Solomon array of identical drives:
// any parity simultaneous member losses stay reconstructable.
func RSConfig(data, parity int, member SSDProfile) ArrayConfig {
	cfg := RAIDConfig(RS, data+parity, member)
	cfg.Parity = parity
	return cfg
}

// MixedRAIDConfig builds a heterogeneous array from an explicit member
// list at the given level; capacity is the smallest member's times the
// data-member count, and MemberReport shows each drive's share of the
// failures (the weakest-member effect).
func MixedRAIDConfig(level ArrayLevel, members ...SSDProfile) ArrayConfig {
	return ArrayConfig{Level: level, Members: members}
}

// CacheConfig builds an SSD-cache-over-HDD array with the given policy.
func CacheConfig(cache SSDProfile, backing HDDProfile, policy CachePolicy) ArrayConfig {
	return ArrayConfig{Level: Cached, Cache: cache, Backing: backing, Policy: policy}
}

// ParseTrace parses an MSR-Cambridge-style CSV block trace from r (see
// internal/trace for the accepted formats). Assign the result to an
// Experiment via TraceReplay or a TraceConfig.
func ParseTrace(r io.Reader, name string) (*TraceWorkload, error) { return trace.Parse(r, name) }

// ParseTraceFile parses the block trace at path; the trace name is the
// base filename without its extension.
func ParseTraceFile(path string) (*TraceWorkload, error) { return trace.ParseFile(path) }

// TraceReplay returns the Experiment.Trace configuration replaying tr in
// the given mode. The experiment's Workload is ignored — the replayer
// generates the IO stream, scaled/clamped to the device's address space,
// looping over the trace for as long as the fault schedule needs.
func TraceReplay(tr *TraceWorkload, mode TraceMode) *TraceConfig {
	return &TraceConfig{Trace: tr, Mode: mode}
}

// DefaultTxnConfig returns the stock transaction-engine tuning: one WAL
// stream, 4 pages per transaction, flush-per-commit, checkpoint every 32
// commits, a 512-page log region, hole-tolerant primary recovery.
func DefaultTxnConfig() TxnConfig { return txn.DefaultConfig() }

// TxnApp enables the transactional WAL application layer with cfg; assign
// the result to Options.App. The experiment's Workload is ignored — the
// engine generates its own IO stream — and after every fault the recovery
// oracle classifies each acknowledged transaction into the Report's
// TxnStats.
func TxnApp(cfg TxnConfig) AppConfig { return AppConfig{Txn: &cfg} }

// DefaultFleetConfig returns the stock fleet: 8 single-parity groups of 4
// with 2 standby spares on a 2-rack × 2-enclosure × 2-PSU fault-domain
// tree, 3 random PSU-level cuts over 30 simulated seconds. Set Parity for
// RAID-6-like or wider m+k groups.
func DefaultFleetConfig() FleetConfig { return fleet.DefaultConfig() }

// FleetNines converts an availability or durability fraction into "nines"
// (0.999 → 3), capped at 12 for a run with no observed unavailability.
func FleetNines(x float64) float64 { return fleet.Nines(x) }

// DefaultObsConfig returns the full-observability configuration: metrics
// and tracing on, with the stock trace-ring capacity.
func DefaultObsConfig() ObsConfig {
	return ObsConfig{Metrics: true, Trace: true, TraceCap: obs.DefaultTraceCap}
}

// MergeObsSummaries merges per-experiment observability summaries into
// one (counters add, gauges sum, histograms merge bucket-exact); nil
// entries are skipped and an all-nil input returns nil. The merge is
// order-independent, so parallel campaigns aggregate deterministically.
func MergeObsSummaries(parts []*ObsSummary) *ObsSummary { return obs.MergeSummaries(parts) }

// WriteObsChromeTrace writes the processes' structured events as a Chrome
// trace-event JSON array loadable in Perfetto (https://ui.perfetto.dev)
// or chrome://tracing. Output bytes are deterministic for a given input.
func WriteObsChromeTrace(w io.Writer, procs []ObsProcess) error {
	return obs.WriteChromeTrace(w, procs)
}
