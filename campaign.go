package powerfail

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"powerfail/internal/core"
	"powerfail/internal/obs"
	"powerfail/internal/runstore"
	"powerfail/internal/sim"
)

// A Campaign executes a set of catalog items — typically one of the
// paper's figures, or the whole catalog — over a bounded pool of workers.
// Each item builds its own independent single-threaded Platform, so
// cross-experiment parallelism preserves per-experiment determinism:
// results are identical whatever the parallelism or scheduling order.
//
//	c := powerfail.NewCampaign(powerfail.Fig5Items(0.2),
//	    powerfail.WithParallelism(8),
//	    powerfail.WithProgress(func(res powerfail.CatalogResult) {
//	        log.Printf("done %s/%s", res.Item.Figure, res.Item.Label)
//	    }))
//	out, err := c.Run(ctx)
//
// Campaigns are single-use: build a new one per Run call.
type Campaign struct {
	items []CatalogItem
	cfg   campaignConfig
}

type campaignConfig struct {
	parallelism int
	progress    func(CatalogResult)
	baseSeed    uint64
	reseed      bool
	failFast    bool
	journalPath string
	manifest    runstore.Manifest
	resume      *runstore.Archive
	shard       int
	shardCount  int
}

// CampaignOption configures a Campaign.
type CampaignOption func(*campaignConfig)

// WithParallelism sets the number of worker goroutines (default 1, the
// sequential behaviour of the old RunCatalog loop). Values above the item
// count are clamped; values below 1 select 1.
func WithParallelism(n int) CampaignOption {
	return func(c *campaignConfig) { c.parallelism = n }
}

// WithProgress streams each CatalogResult to fn as its experiment
// completes. Calls are serialized on the Run goroutine and arrive in
// completion order, which under parallelism differs from item order; the
// returned CampaignResult is always in item order.
func WithProgress(fn func(CatalogResult)) CampaignOption {
	return func(c *campaignConfig) { c.progress = fn }
}

// WithBaseSeed overrides every item's Options.Seed with a seed derived
// from (s, item index) by a splitmix64-style mix. Derivation depends only
// on the index, never on scheduling, so a (BaseSeed, items) pair fully
// determines the campaign's reports at any parallelism.
func WithBaseSeed(s uint64) CampaignOption {
	return func(c *campaignConfig) { c.baseSeed, c.reseed = s, true }
}

// WithFailFast cancels the remaining items after the first experiment
// error and makes Run return that error. Without it, Run records item
// errors in the per-item results and keeps going.
func WithFailFast() CampaignOption {
	return func(c *campaignConfig) { c.failFast = true }
}

// WithJournal journals the run to an archive at path: the manifest m is
// written when Run starts (the campaign fills its item list with each
// item's ItemKey identity), one record is appended as each item
// completes, and a final record with the merged per-figure aggregates is
// written only when every item ran. An interrupted run therefore leaves a
// valid, resumable archive holding every item that had finished.
func WithJournal(path string, m RunManifest) CampaignOption {
	return func(c *campaignConfig) { c.journalPath, c.manifest = path, m }
}

// WithShard restricts the campaign to the items whose global index is
// congruent to shard modulo count (0 ≤ shard < count). Every shard sees
// the full item list — indices, derived seeds and item keys are those of
// the unsharded campaign — and executes a disjoint subset of it, so N
// journaled shard runs together produce exactly the item records an
// unsharded journaled run would. Merging the N archives
// (MergeRunArchives) and resuming a full campaign from the merge
// reproduces the unsharded output byte for byte. A count of zero (the
// default) disables sharding; shards past the item count simply run
// zero items and journal an empty, valid archive.
func WithShard(shard, count int) CampaignOption {
	return func(c *campaignConfig) { c.shard, c.shardCount = shard, count }
}

// WithResume reuses the journaled reports of a prior run loaded from a:
// items whose ItemKey matches a completed (non-error) record are not
// re-executed — the archived report bytes are decoded for aggregation and
// re-emitted verbatim in the campaign's JSON, so a resumed campaign's
// output is byte-identical to an uninterrupted run of the same items.
// Errored, missing or unparseable records run normally.
func WithResume(a *RunArchive) CampaignOption {
	return func(c *campaignConfig) { c.resume = a }
}

// NewCampaign plans a campaign over items. The item slice is copied, so
// later mutation of the caller's slice does not affect the campaign.
func NewCampaign(items []CatalogItem, opts ...CampaignOption) *Campaign {
	c := &Campaign{items: append([]CatalogItem(nil), items...)}
	c.cfg.parallelism = 1
	for _, o := range opts {
		o(&c.cfg)
	}
	if c.cfg.reseed {
		for i := range c.items {
			c.items[i].Opts.Seed = deriveSeed(c.cfg.baseSeed, i)
		}
	}
	return c
}

// deriveSeed mixes a base seed and an item index into an experiment seed
// (splitmix64 finalizer over base + (i+1)·golden-gamma).
func deriveSeed(base uint64, i int) uint64 {
	z := base + uint64(i+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Stat summarizes a sample of per-item values: mean with a 95% confidence
// half-width (normal approximation, 1.96·s/√n), plus the extremes.
type Stat struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	// CI95 is the 95% confidence half-width of the mean; the interval is
	// Mean ± CI95. Zero when fewer than two samples exist.
	CI95 float64 `json:"ci95"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

func newStat(samples []float64) Stat {
	s := Stat{N: len(samples)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = samples[0], samples[0]
	var sum float64
	for _, v := range samples {
		sum += v
		s.Min = math.Min(s.Min, v)
		s.Max = math.Max(s.Max, v)
	}
	s.Mean = sum / float64(s.N)
	if s.N < 2 {
		return s
	}
	var ss float64
	for _, v := range samples {
		d := v - s.Mean
		ss += d * d
	}
	s.CI95 = 1.96 * math.Sqrt(ss/float64(s.N-1)) / math.Sqrt(float64(s.N))
	return s
}

// FigureSummary aggregates the completed experiments of one figure.
type FigureSummary struct {
	Figure    string `json:"figure"`
	Items     int    `json:"items"`
	Completed int    `json:"completed"`

	Faults       int `json:"faults"`
	DataFailures int `json:"data_failures"`
	FWA          int `json:"fwa"`
	IOErrors     int `json:"io_errors"`

	// LossPerFault summarizes the per-item data-loss-per-fault rates
	// (the y-axis of most of the paper's figures).
	LossPerFault Stat `json:"loss_per_fault"`

	SimTime sim.Duration `json:"sim_ns"`

	// Obs merges the per-item observability summaries of the figure's
	// completed experiments (counters add, histograms merge bucket-exact).
	// It is nil unless items ran with Options.Obs enabled, keeping default
	// campaign JSON byte-identical to pre-observability output.
	Obs *obs.Summary `json:"obs,omitempty"`
}

// CampaignResult is the outcome of Campaign.Run: every item's result in
// item order, plus per-figure aggregation and totals.
type CampaignResult struct {
	// Results holds one entry per item, in item order regardless of
	// scheduling. Items the campaign never ran (cancellation, fail-fast)
	// carry the cancellation error and a nil report.
	Results []CatalogResult `json:"results"`
	// Figures aggregates completed results per figure, in first-appearance
	// item order.
	Figures []FigureSummary `json:"figures"`

	Items     int `json:"items"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`

	// WallTime is real elapsed time; SimTime sums the simulated duration
	// of completed experiments (the speed-up ratio of the platform).
	WallTime time.Duration `json:"wall_ns"`
	SimTime  sim.Duration  `json:"sim_ns"`

	// Events sums the simulator events processed by completed experiments;
	// EventsPerSec divides them by WallTime. Both are process telemetry
	// (live progress, benchmarking) and excluded from JSON so campaign
	// outputs stay machine-independent.
	Events       uint64  `json:"-"`
	EventsPerSec float64 `json:"-"`
}

// Run executes the campaign under ctx and returns when every item has
// either completed or been cancelled. Experiment errors are recorded per
// item and do not abort the campaign unless WithFailFast was given.
// Cancelling ctx stops in-flight experiments at their next poll point and
// marks unstarted items with the context's error; the partial
// CampaignResult is returned together with ctx.Err().
func (c *Campaign) Run(ctx context.Context) (*CampaignResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()

	if c.cfg.shardCount > 0 && (c.cfg.shard < 0 || c.cfg.shard >= c.cfg.shardCount) {
		return nil, fmt.Errorf("powerfail: shard %d out of range for count %d", c.cfg.shard, c.cfg.shardCount)
	}
	// sel holds the global indices this run executes: everything, or the
	// shard's congruence class. Global indices keep seeds, keys and
	// journal records identical to the unsharded campaign's.
	sel := make([]int, 0, len(c.items))
	for i := range c.items {
		if c.cfg.shardCount <= 1 || i%c.cfg.shardCount == c.cfg.shard {
			sel = append(sel, i)
		}
	}
	pos := make([]int, len(c.items)) // global index → position in sel/Results
	for p, gi := range sel {
		pos[gi] = p
	}

	// Item keys are needed for both journaling (manifest + records) and
	// resume lookup; computed once, outside the workers.
	var keys []string
	if c.cfg.journalPath != "" || c.cfg.resume != nil {
		keys = make([]string, len(c.items))
		for i := range c.items {
			keys[i] = ItemKey(c.items[i])
		}
	}
	var jw *runstore.Writer
	if c.cfg.journalPath != "" {
		m := c.cfg.manifest
		if m.GoVersion == "" {
			m.GoVersion = runtime.Version()
		}
		if c.cfg.reseed {
			m.BaseSeed = c.cfg.baseSeed
		}
		if c.cfg.shardCount > 0 {
			m.Shard, m.ShardCount = c.cfg.shard, c.cfg.shardCount
		}
		// The manifest always lists the full campaign — a shard archive
		// documents which subset of it the shard executed.
		m.Items = make([]runstore.ItemSpec, len(c.items))
		for i, it := range c.items {
			m.Items[i] = runstore.ItemSpec{
				Index: i, Figure: it.Figure, Label: it.Label,
				Seed: it.Opts.Seed, X: it.X, Key: keys[i],
			}
		}
		var err error
		jw, err = runstore.Create(c.cfg.journalPath, m)
		if err != nil {
			return nil, err
		}
	}

	workers := c.cfg.parallelism
	if workers < 1 {
		workers = 1
	}
	if workers > len(sel) {
		workers = len(sel)
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	type indexed struct {
		idx int
		res CatalogResult
	}
	idxCh := make(chan int)
	resCh := make(chan indexed)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range idxCh {
				it := c.items[idx]
				res := CatalogResult{Item: it}
				if rec := c.resumeRecord(keys, idx); rec != nil {
					rep := new(Report)
					if err := json.Unmarshal(rec.Report, rep); err == nil {
						res.Report, res.raw, res.Reused = rep, rec.Report, true
					}
				}
				if !res.Reused {
					if err := runCtx.Err(); err != nil {
						res.Err = err
					} else {
						t0 := time.Now()
						res.Report, res.Err = core.RunExperiment(runCtx, it.Opts, it.Spec)
						res.Wall = time.Since(t0)
					}
				}
				resCh <- indexed{idx, res}
			}
		}()
	}
	go func() {
		defer close(idxCh)
		for _, i := range sel {
			idxCh <- i
		}
	}()
	go func() {
		wg.Wait()
		close(resCh)
	}()

	out := &CampaignResult{
		Results: make([]CatalogResult, len(sel)),
		Items:   len(sel),
	}
	var firstErr error
	for r := range resCh {
		out.Results[pos[r.idx]] = r.res
		if r.res.Err != nil && firstErr == nil && !isCancellation(r.res.Err) {
			firstErr = r.res.Err
			if c.cfg.failFast {
				cancel()
			}
		}
		if jw != nil {
			c.journal(jw, r.idx, keys[r.idx], r.res)
		}
		if c.cfg.progress != nil {
			c.cfg.progress(r.res)
		}
	}

	out.WallTime = time.Since(start)
	c.aggregate(out)
	if out.WallTime > 0 {
		out.EventsPerSec = float64(out.Events) / out.WallTime.Seconds()
	}
	var journalErr error
	if jw != nil {
		if ctx.Err() == nil && out.Cancelled == 0 {
			if figs, err := json.Marshal(out.Figures); err == nil {
				jw.Finalize(runstore.Final{
					Items:     out.Items,
					Completed: out.Completed,
					Failed:    out.Failed,
					SimNS:     int64(out.SimTime),
					Figures:   figs,
					WallNS:    int64(out.WallTime),
					EventsPS:  out.EventsPerSec,
				})
			}
		}
		journalErr = jw.Close()
	}
	switch {
	case ctx.Err() != nil:
		return out, ctx.Err()
	case c.cfg.failFast && firstErr != nil:
		return out, firstErr
	case journalErr != nil:
		return out, journalErr
	default:
		return out, nil
	}
}

// resumeRecord returns the archived record to reuse for item idx, or nil
// (no resume archive, no match, or the match errored).
func (c *Campaign) resumeRecord(keys []string, idx int) *runstore.ItemRecord {
	if c.cfg.resume == nil {
		return nil
	}
	rec := c.cfg.resume.Lookup(keys[idx])
	if rec == nil || rec.Error != "" || len(rec.Report) == 0 {
		return nil
	}
	return rec
}

// journal appends one completed item to the run archive. Cancelled items
// are not journaled — a resumed run must execute them. A report is
// journaled with its exact JSON (the archived bytes for a reused item, a
// fresh marshal otherwise), which is what resume later re-emits.
func (c *Campaign) journal(jw *runstore.Writer, idx int, key string, res CatalogResult) {
	if res.Err != nil && isCancellation(res.Err) {
		return
	}
	rec := runstore.ItemRecord{
		Index:  idx,
		Key:    key,
		Figure: res.Item.Figure,
		Label:  res.Item.Label,
		Seed:   res.Item.Opts.Seed,
	}
	switch {
	case res.Err != nil:
		rec.Error = res.Err.Error()
	case res.raw != nil:
		rec.Report = res.raw
	case res.Report != nil:
		b, err := json.Marshal(res.Report)
		if err != nil {
			rec.Error = "marshal report: " + err.Error()
		} else {
			rec.Report = b
		}
	}
	jw.Append(rec)
}

func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// aggregate fills the totals and per-figure summaries from Results.
func (c *Campaign) aggregate(out *CampaignResult) {
	byFigure := map[string]*FigureSummary{}
	samples := map[string][]float64{}
	obsParts := map[string][]*obs.Summary{}
	var order []string
	for _, res := range out.Results {
		fig := res.Item.Figure
		s := byFigure[fig]
		if s == nil {
			s = &FigureSummary{Figure: fig}
			byFigure[fig] = s
			order = append(order, fig)
		}
		s.Items++
		switch {
		case res.Err == nil && res.Report != nil:
			out.Completed++
			s.Completed++
			rep := res.Report
			s.Faults += rep.Faults
			s.DataFailures += rep.Counters.DataFailures
			s.FWA += rep.Counters.FWA
			s.IOErrors += rep.Counters.IOErrors
			s.SimTime += rep.SimDuration
			out.SimTime += rep.SimDuration
			out.Events += rep.Events
			samples[fig] = append(samples[fig], rep.DataLossPerFault)
			obsParts[fig] = append(obsParts[fig], rep.Obs)
		case isCancellation(res.Err):
			out.Cancelled++
		default:
			out.Failed++
		}
	}
	for _, fig := range order {
		s := byFigure[fig]
		s.LossPerFault = newStat(samples[fig])
		s.Obs = obs.MergeSummaries(obsParts[fig])
		out.Figures = append(out.Figures, *s)
	}
}

// MarshalJSON renders the result with item errors as strings. A report
// loaded from a resume archive is re-emitted from its archived bytes
// (the encoder re-indents raw JSON, so indented output stays identical
// too) — byte-identity of resumed campaigns never depends on a report
// surviving an unmarshal/marshal round trip.
func (r CatalogResult) MarshalJSON() ([]byte, error) {
	var errStr string
	if r.Err != nil {
		errStr = r.Err.Error()
	}
	rep := r.raw
	if rep == nil && r.Report != nil {
		b, err := json.Marshal(r.Report)
		if err != nil {
			return nil, err
		}
		rep = b
	}
	return json.Marshal(struct {
		Figure string          `json:"figure"`
		Label  string          `json:"label"`
		X      float64         `json:"x"`
		Seed   uint64          `json:"seed"`
		Report json.RawMessage `json:"report,omitempty"`
		Error  string          `json:"error,omitempty"`
	}{
		Figure: r.Item.Figure,
		Label:  r.Item.Label,
		X:      r.Item.X,
		Seed:   r.Item.Opts.Seed,
		Report: rep,
		Error:  errStr,
	})
}
