package powerfail_test

import (
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"powerfail"
)

// campaignJSON marshals a campaign result the way cmd/sweep -json does,
// with the nondeterministic wall time zeroed so runs compare byte for
// byte.
func campaignJSON(t *testing.T, out *powerfail.CampaignResult) string {
	t.Helper()
	out.WallTime = 0
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestCampaignJournalArchive: a journaled campaign leaves a complete
// archive — manifest with every item's identity, one record per item,
// and a final record whose aggregates match the returned result.
func TestCampaignJournalArchive(t *testing.T) {
	items := obsItems(t, "seqrand", 0.02, 0)
	path := filepath.Join(t.TempDir(), "run.jsonl")

	out, err := powerfail.NewCampaign(items,
		powerfail.WithJournal(path, powerfail.NewRunManifest("test", "seqrand", 0.02)),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	arch, err := powerfail.OpenRunArchive(path)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(arch.Manifest.Items), len(items); got != want {
		t.Fatalf("manifest items = %d, want %d", got, want)
	}
	for i, spec := range arch.Manifest.Items {
		if want := powerfail.ItemKey(items[i]); spec.Key != want {
			t.Fatalf("item %d key = %q, want %q", i, spec.Key, want)
		}
		if spec.Figure != items[i].Figure || spec.Label != items[i].Label {
			t.Fatalf("item %d identity = %s/%s", i, spec.Figure, spec.Label)
		}
	}
	if got := arch.Completed(); got != out.Completed {
		t.Fatalf("archive completed = %d, want %d", got, out.Completed)
	}
	if arch.Final == nil {
		t.Fatal("completed run has no final record")
	}
	if arch.Final.Items != out.Items || arch.Final.Completed != out.Completed {
		t.Fatalf("final totals = %+v, want %d/%d", arch.Final, out.Items, out.Completed)
	}
	wantFigs, err := json.Marshal(out.Figures)
	if err != nil {
		t.Fatal(err)
	}
	if string(arch.Final.Figures) != string(wantFigs) {
		t.Fatalf("final figures JSON differs from the campaign's:\n%s\nvs\n%s",
			arch.Final.Figures, wantFigs)
	}
}

// TestCampaignResumeByteIdentical is the acceptance criterion: interrupt
// a journaled campaign mid-run via context cancel, resume from the
// archive, and the final campaign JSON is byte-identical to an
// uninterrupted run — at parallelism 1 and 8.
func TestCampaignResumeByteIdentical(t *testing.T) {
	for _, parallelism := range []int{1, 8} {
		t.Run(fmt.Sprintf("parallel=%d", parallelism), func(t *testing.T) {
			items := obsItems(t, "fig5", 0.02, 0) // 5 items, obs on: summaries ride the archive too
			path := filepath.Join(t.TempDir(), "run.jsonl")

			full, err := powerfail.NewCampaign(items,
				powerfail.WithParallelism(parallelism),
			).Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			want := campaignJSON(t, full)

			// Interrupt after two completions: the journal keeps exactly the
			// completed subset, with no final record.
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var mu sync.Mutex
			done := 0
			interrupted, err := powerfail.NewCampaign(items,
				powerfail.WithParallelism(parallelism),
				powerfail.WithJournal(path, powerfail.NewRunManifest("test", "fig5", 0.02)),
				powerfail.WithProgress(func(res powerfail.CatalogResult) {
					mu.Lock()
					defer mu.Unlock()
					if res.Err == nil {
						done++
						if done == 2 {
							cancel()
						}
					}
				}),
			).Run(ctx)
			if err == nil {
				t.Fatal("interrupted run returned nil error")
			}
			if interrupted.Completed >= len(items) {
				t.Skipf("campaign finished before the cancel landed (%d items)", interrupted.Completed)
			}

			arch, err := powerfail.OpenRunArchive(path)
			if err != nil {
				t.Fatal(err)
			}
			if arch.Final != nil {
				t.Fatal("interrupted archive has a final record")
			}
			if got := arch.Completed(); got == 0 || got != interrupted.Completed {
				t.Fatalf("archive completed = %d, campaign says %d", got, interrupted.Completed)
			}

			// Resume, re-journaling over the same file like sweep -resume.
			resumed, err := powerfail.NewCampaign(items,
				powerfail.WithParallelism(parallelism),
				powerfail.WithResume(arch),
				powerfail.WithJournal(path, powerfail.NewRunManifest("test", "fig5", 0.02)),
			).Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			reused := 0
			for _, res := range resumed.Results {
				if res.Reused {
					reused++
				}
			}
			if reused != arch.Completed() {
				t.Fatalf("reused %d items, archive had %d", reused, arch.Completed())
			}
			if got := campaignJSON(t, resumed); got != want {
				t.Fatalf("resumed campaign JSON differs from uninterrupted run\nresumed %d bytes, want %d",
					len(got), len(want))
			}

			// The re-journaled archive is now complete and resumable to a
			// fully-cached run that still matches byte for byte.
			arch2, err := powerfail.OpenRunArchive(path)
			if err != nil {
				t.Fatal(err)
			}
			if arch2.Final == nil || arch2.Completed() != len(items) {
				t.Fatalf("resumed archive incomplete: final=%v completed=%d", arch2.Final, arch2.Completed())
			}
			cached, err := powerfail.NewCampaign(items,
				powerfail.WithParallelism(parallelism),
				powerfail.WithResume(arch2),
			).Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if got := campaignJSON(t, cached); got != want {
				t.Fatal("fully-cached resume differs from uninterrupted run")
			}
		})
	}
}

// TestCampaignResumeRespectsItemKey: a resumed item whose spec changed
// (different seed) re-runs instead of reusing the stale report.
func TestCampaignResumeRespectsItemKey(t *testing.T) {
	items := smallItems(t, "seqrand", 0.02)
	path := filepath.Join(t.TempDir(), "run.jsonl")
	if _, err := powerfail.NewCampaign(items,
		powerfail.WithJournal(path, powerfail.RunManifest{}),
	).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	arch, err := powerfail.OpenRunArchive(path)
	if err != nil {
		t.Fatal(err)
	}

	changed := make([]powerfail.CatalogItem, len(items))
	copy(changed, items)
	changed[0].Opts.Seed += 1000
	out, err := powerfail.NewCampaign(changed, powerfail.WithResume(arch)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out.Results[0].Reused {
		t.Fatal("item with changed seed reused a stale archived report")
	}
	for i := 1; i < len(out.Results); i++ {
		if !out.Results[i].Reused {
			t.Fatalf("unchanged item %d was not reused", i)
		}
	}
}

// journalCampaign runs items journaled to a fresh archive and returns it
// loaded.
func journalCampaign(t *testing.T, items []powerfail.CatalogItem, name string) *powerfail.RunArchive {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if _, err := powerfail.NewCampaign(items,
		powerfail.WithParallelism(4),
		powerfail.WithJournal(path, powerfail.RunManifest{}),
	).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	arch, err := powerfail.OpenRunArchive(path)
	if err != nil {
		t.Fatal(err)
	}
	return arch
}

// TestRunDiffSameSeedsNoRegressions is the acceptance criterion: two
// archives of the same campaign compare as all-unchanged — zero
// regressions, zero improvements, exact zero deltas.
func TestRunDiffSameSeedsNoRegressions(t *testing.T) {
	items := smallItems(t, "fig5", 0.02)
	old := journalCampaign(t, items, "old.jsonl")
	new_ := journalCampaign(t, items, "new.jsonl")

	diff, err := powerfail.DiffRunArchives(old, new_)
	if err != nil {
		t.Fatal(err)
	}
	if diff.Regressions != 0 || diff.Improvements != 0 {
		t.Fatalf("same-seed diff: %d regressions, %d improvements", diff.Regressions, diff.Improvements)
	}
	if len(diff.Figures) != 1 || diff.Figures[0].Aligned != len(items) {
		t.Fatalf("alignment: %+v", diff.Figures)
	}
	for _, md := range diff.Figures[0].Metrics {
		// Identical seeds give identical samples: exact zero delta. The CI
		// still has width from cross-label variance but must contain zero.
		if md.Delta != 0 || md.OldMean != md.NewMean {
			t.Fatalf("metric %s: delta %g (means %g/%g), want exact zero", md.Metric, md.Delta, md.OldMean, md.NewMean)
		}
		if md.Verdict != "unchanged" {
			t.Fatalf("metric %s: verdict %s, want unchanged", md.Metric, md.Verdict)
		}
	}
}

// plpItems builds a small figure of identically-labelled points whose
// only difference across the two archives is supercapacitor power-loss
// protection — the canonical known-delta pair.
func plpItems(supercap bool) []powerfail.CatalogItem {
	var items []powerfail.CatalogItem
	for i := 0; i < 4; i++ {
		prof := powerfail.ProfileA()
		prof.CapacityGB = 8
		if supercap {
			prof = prof.WithSuperCap()
		}
		w := powerfail.DefaultWorkload()
		w.WSSBytes = 1 << 30
		items = append(items, powerfail.CatalogItem{
			Figure: "plp",
			Label:  fmt.Sprintf("seed%d", i),
			X:      float64(i),
			Opts:   powerfail.Options{Seed: uint64(40 + i), Profile: prof},
			Spec: powerfail.Experiment{
				Name:             "plp",
				Workload:         w,
				Faults:           8,
				RequestsPerFault: 12,
			},
		})
	}
	return items
}

// TestRunDiffKnownDelta is the acceptance criterion: comparing a
// PLP-off archive against a PLP-on archive flags the loss-rate change
// with a confidence interval excluding zero — improved in the off→on
// direction, regressed in the on→off direction.
func TestRunDiffKnownDelta(t *testing.T) {
	off := journalCampaign(t, plpItems(false), "off.jsonl")
	on := journalCampaign(t, plpItems(true), "on.jsonl")

	find := func(d *powerfail.RunDiff) (delta, lo, hi float64, verdict string) {
		t.Helper()
		for _, fd := range d.Figures {
			for _, md := range fd.Metrics {
				if md.Metric == "loss/fault" {
					return md.Delta, md.CILo, md.CIHi, string(md.Verdict)
				}
			}
		}
		t.Fatal("no loss/fault metric in diff")
		return 0, 0, 0, ""
	}

	fwd, err := powerfail.DiffRunArchives(off, on)
	if err != nil {
		t.Fatal(err)
	}
	delta, lo, hi, verdict := find(fwd)
	if delta >= 0 || verdict != "improved" {
		t.Fatalf("off→on loss/fault: delta %g verdict %s, want negative improvement", delta, verdict)
	}
	if lo <= 0 && hi >= 0 {
		t.Fatalf("off→on CI [%g, %g] does not exclude zero", lo, hi)
	}
	if fwd.Improvements == 0 {
		t.Fatalf("off→on reported no improvements: %+v", fwd)
	}

	rev, err := powerfail.DiffRunArchives(on, off)
	if err != nil {
		t.Fatal(err)
	}
	delta, lo, hi, verdict = find(rev)
	if delta <= 0 || verdict != "regressed" {
		t.Fatalf("on→off loss/fault: delta %g verdict %s, want positive regression", delta, verdict)
	}
	if lo <= 0 && hi >= 0 {
		t.Fatalf("on→off CI [%g, %g] does not exclude zero", lo, hi)
	}
	if rev.Regressions == 0 {
		t.Fatalf("on→off reported no regressions: %+v", rev)
	}
}
